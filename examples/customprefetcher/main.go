// Customprefetcher: plug a user-defined pollution filter into the
// simulator and compare it against the paper's PA and PC designs.
//
// The custom filter keys the history table on the XOR of the prefetched
// line address and the trigger PC — a "gskewed" hybrid that distinguishes
// (instruction, address) pairs the pure PA and PC keys must share.
//
//	go run ./examples/customprefetcher [-bench gzip]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func run(bench string, cfg repro.Config, filter repro.Filter) repro.Run {
	r, err := repro.Simulate(repro.Options{
		Benchmark:       bench,
		Config:          cfg,
		Filter:          filter, // nil means "build from cfg.Filter.Kind"
		MaxInstructions: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	bench := flag.String("bench", "gzip", "benchmark to evaluate")
	flag.Parse()

	base := repro.DefaultConfig()

	xorFilter, err := repro.NewCustomFilter("pa^pc",
		func(lineAddr, triggerPC uint64) uint64 { return lineAddr ^ (triggerPC >> 2) },
		4096)
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		label string
		run   repro.Run
	}{
		{"no filter", run(*bench, base, nil)},
		{"PA (paper)", run(*bench, base.WithFilter(repro.FilterPA), nil)},
		{"PC (paper)", run(*bench, base.WithFilter(repro.FilterPC), nil)},
		{"PA^PC (custom)", run(*bench, base, xorFilter)},
	}

	fmt.Printf("custom filter comparison on %s\n\n", *bench)
	fmt.Printf("%-16s %8s %10s %10s %10s\n", "filter", "IPC", "good", "bad", "rejected")
	for _, row := range rows {
		fmt.Printf("%-16s %8.3f %10d %10d %10d\n",
			row.label, row.run.IPC(),
			row.run.Prefetches.Good, row.run.Prefetches.Bad, row.run.FilterRejected)
	}
}
