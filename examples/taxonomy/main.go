// Taxonomy: instrument a run with the full Srinivasan prefetch taxonomy
// (the paper's reference [17]) and show how the filter's simple 2-way
// good/bad hardware classification relates to the 4-way ground truth.
//
//	go run ./examples/taxonomy [-bench em3d]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	bench := flag.String("bench", "em3d", "benchmark to classify")
	flag.Parse()

	run, err := repro.Simulate(repro.Options{
		Benchmark:       *bench,
		Config:          repro.DefaultConfig(), // no filtering: observe raw prefetches
		MaxInstructions: 2_000_000,
		Taxonomy:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := run.Taxonomy
	if c == nil {
		log.Fatal("taxonomy instrumentation missing")
	}

	fmt.Printf("prefetch taxonomy for %s (no filtering)\n\n", *bench)
	rows := []struct {
		label string
		class repro.TaxonomyClass
		note  string
	}{
		{"useful", repro.TaxUseful, "prefetched line used; victim not missed again"},
		{"conflicting", repro.TaxConflicting, "prefetched line used, but so was the victim"},
		{"polluting", repro.TaxPolluting, "line unused AND the victim was missed again"},
		{"useless", repro.TaxUseless, "line unused, victim not missed: pure traffic"},
	}
	for _, r := range rows {
		fmt.Printf("%-12s %6.1f%%   %s\n", r.label, 100*c.Frac(r.class), r.note)
	}
	good, bad := c.GoodBad()
	fmt.Printf("\n2-way projection the paper's PIB/RIB hardware sees: good=%d bad=%d\n", good, bad)
	fmt.Printf("simulator's own 2-way classification:              good=%d bad=%d\n",
		run.Prefetches.Good, run.Prefetches.Bad)
	fmt.Println("\nthe filter cannot tell polluting from useless — but it removes both,")
	fmt.Println("which is why the simple 2-bit scheme captures most of the benefit.")
}
