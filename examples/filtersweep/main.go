// Filtersweep: sweep the pollution filter's history table size on one
// benchmark (the §5.3 experiment, Figures 10-12, via the public API) and
// print how good/bad prefetch counts and IPC respond.
//
//	go run ./examples/filtersweep [-bench gzip]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark to sweep")
	flag.Parse()

	fmt.Printf("history-table sweep on %s (PA filter, 8KB L1)\n\n", *bench)
	fmt.Printf("%10s %10s %10s %10s %8s %10s\n",
		"entries", "bytes", "good", "bad", "IPC", "filtered")

	for _, entries := range []int{1024, 2048, 4096, 8192, 16384} {
		cfg := repro.DefaultConfig().WithFilter(repro.FilterPA).WithTableEntries(entries)
		run, err := repro.Simulate(repro.Options{
			Benchmark:       *bench,
			Config:          cfg,
			MaxInstructions: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %10d %10d %10d %8.3f %10d\n",
			entries, entries/4,
			run.Prefetches.Good, run.Prefetches.Bad, run.IPC(), run.Prefetches.Filtered)
	}

	fmt.Println("\npaper §5.3: gains flatten beyond 4096 entries (1KB) — the Table 1 default.")
}
