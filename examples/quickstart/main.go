// Quickstart: run one benchmark on the paper's default machine with and
// without the PC-based pollution filter and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const bench = "mcf"
	base := repro.DefaultConfig()

	baseline, err := repro.Simulate(repro.Options{
		Benchmark:       bench,
		Config:          base, // no filtering
		MaxInstructions: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	filtered, err := repro.Simulate(repro.Options{
		Benchmark:       bench,
		Config:          base.WithFilter(repro.FilterPC),
		MaxInstructions: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (8KB direct-mapped L1, NSP+SDP+software prefetching)\n\n", bench)
	fmt.Printf("%-22s %12s %12s\n", "", "no filter", "PC filter")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", baseline.IPC(), filtered.IPC())
	fmt.Printf("%-22s %12d %12d\n", "good prefetches", baseline.Prefetches.Good, filtered.Prefetches.Good)
	fmt.Printf("%-22s %12d %12d\n", "bad prefetches", baseline.Prefetches.Bad, filtered.Prefetches.Bad)
	fmt.Printf("%-22s %12d %12d\n", "filtered prefetches", baseline.Prefetches.Filtered, filtered.Prefetches.Filtered)
	fmt.Printf("%-22s %12d %12d\n", "prefetch L1 traffic", baseline.Traffic.PrefetchAccesses, filtered.Traffic.PrefetchAccesses)
	fmt.Printf("%-22s %12.4f %12.4f\n", "L1 miss rate", baseline.L1MissRate(), filtered.L1MissRate())

	speedup := (filtered.IPC() - baseline.IPC()) / baseline.IPC() * 100
	fmt.Printf("\nIPC speedup from pollution filtering: %+.1f%%\n", speedup)
}
