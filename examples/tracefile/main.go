// Tracefile: decouple workload generation from simulation. Generate a
// trace from a benchmark model, write it to disk in the PFTRACE1 binary
// format, read it back, and simulate from the file — the workflow for
// feeding the simulator externally captured traces.
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "pftrace")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := filepath.Join(dir, "em3d.pft")

	// 1. Generate a trace by simulating nothing: pull records straight
	//    from the workload model via a capture run, or simply collect from
	//    the public Record constructors. Here we synthesize a strided
	//    kernel with pointer-chase phases by hand.
	var recs []repro.Record
	pc := func(site int) uint64 { return 0x400000 + uint64(site)*4 }
	for i := 0; i < 300_000; i++ {
		// A 3KB inner loop (L1-resident across both regions) advancing
		// through a larger buffer every pass, so the trace shows hits,
		// misses, and prefetchable streams.
		base := uint64((i%96)*32) + uint64(i/4096)*4096
		recs = append(recs,
			repro.Record{Op: 1 /* load */, PC: pc(0), Addr: 0x100_0000 + base},
			repro.Record{Op: 0 /* alu */, PC: pc(1)},
			repro.Record{Op: 2 /* store */, PC: pc(2), Addr: 0x200_0c00 + base}, // offset 96 lines: disjoint L1 sets from the load region

			repro.Record{Op: 3 /* branch */, PC: pc(3), Addr: pc(0), Taken: true},
		)
	}

	// 2. Write it to disk.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteTrace(f, recs); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %d records to %s (%d bytes, %.1f bits/record)\n",
		len(recs), path, info.Size(), float64(info.Size()*8)/float64(len(recs)))

	// 3. Read it back and simulate from the decoded records.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := repro.ReadTrace(g)
	_ = g.Close() // read-only; a close error cannot lose data
	if err != nil {
		log.Fatal(err)
	}

	run, err := repro.Simulate(repro.Options{
		Benchmark:       "strided-kernel",
		Source:          repro.SliceSource(decoded),
		Config:          repro.DefaultConfig().WithFilter(repro.FilterPA),
		MaxInstructions: int64(len(decoded)),
		Warmup:          100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated from file: IPC %.3f, L1 miss %.4f, prefetches good=%d bad=%d filtered=%d\n",
		run.IPC(), run.L1MissRate(),
		run.Prefetches.Good, run.Prefetches.Bad, run.Prefetches.Filtered)
}
