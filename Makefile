# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keeping them here makes the gates reproducible locally.

GO ?= go

.PHONY: build test race lint fuzz-smoke bench-smoke trace-smoke fabric-smoke iprefetch-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector where goroutines actually meet (the concurrency
# harnesses, plus the packages whose tests drive them); the remaining
# simulation packages are single-goroutine by design.
race:
	$(GO) test -race ./internal/sched/ ./internal/server/ ./internal/metrics/ ./internal/experiments/ ./internal/fabric/ ./internal/frontend/ ./internal/tracefile/

# Static analysis: go vet plus pflint, the project linter
# (docs/LINTING.md). A finding anywhere fails the target.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/pflint ./...

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzConfigString -fuzztime=30s ./internal/config/
	$(GO) test -run=NONE -fuzz=FuzzHistoryTableIndex -fuzztime=30s ./internal/core/

# Real-trace pipeline smoke (docs/TRACES.md): convert the checked-in
# ChampSim fixture, assert the pinned fingerprint, replay the corpus.
trace-smoke:
	$(GO) build -o pftrace ./cmd/pftrace
	./pftrace convert -o sample.pftc -manifest corpus.json -name sample \
		internal/tracefile/testdata/sample.champsim.gz
	./pftrace info -json sample.pftc | \
		grep -q "$$(cat internal/tracefile/testdata/sample.fingerprint)"
	$(GO) run ./cmd/pfexperiments -traces corpus.json -n 20000 -warmup 5000
	$(GO) test -run 'TestSampleFixture|TestTraceComparisonDeterministicAcrossWorkers' \
		./internal/tracefile/ ./internal/experiments/

# Distributed-sweep smoke (docs/FABRIC.md): coordinator plus two
# workers over a shared CAS, one worker killed mid-sweep, determinism
# and CAS-hit assertions. Fully self-contained; see the script.
fabric-smoke:
	./scripts/fabric_smoke.sh

# I-side (iprefetcher x filter) matrix smoke (docs/FRONTEND.md): every
# registered instruction prefetcher crossed with none/pa on one
# benchmark, then the pinned per-backend fingerprints.
iprefetch-smoke:
	$(GO) run ./cmd/pfexperiments -iprefetch all -filters none,pa -bench mcf \
		-n 100000 -warmup 20000
	$(GO) test -run 'TestIPrefetchFingerprintPinned|TestIPrefetchAliasRunsIdentical' \
		./internal/experiments/

# Reduced bench matrix; see docs/PERFORMANCE.md for the full policy.
bench-smoke:
	$(GO) run ./cmd/pfexperiments -bench-json -jobs 4 \
		-n 50000 -warmup 10000 -bench mcf,gzip \
		-bench-out BENCH_smoke.json
