package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := repro.DefaultConfig().WithFilter(repro.FilterPC)
	run, err := repro.Simulate(repro.Options{
		Benchmark:       "mcf",
		Config:          cfg,
		MaxInstructions: 100_000,
		Warmup:          20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.IPC() <= 0 {
		t.Fatal("IPC should be positive")
	}
	if run.Filter != "pc" {
		t.Fatalf("filter = %q", run.Filter)
	}
}

func TestPublicBenchmarksList(t *testing.T) {
	if got := len(repro.PaperBenchmarks()); got != 10 {
		t.Fatalf("paper benchmarks = %d", got)
	}
	if got := len(repro.Benchmarks()); got < 13 {
		t.Fatalf("all benchmarks = %d (ten paper + micro models)", got)
	}
	names := repro.BenchmarkNames()
	if names[0] != "bh" || names[9] != "mcf" {
		t.Fatalf("names = %v", names)
	}
}

func TestPublicConfigs(t *testing.T) {
	if repro.DefaultConfig().L1.SizeBytes != 8192 {
		t.Fatal("default should be 8KB")
	}
	if repro.Config16K().L1.SizeBytes != 16*1024 {
		t.Fatal("16K preset wrong")
	}
	c := repro.Config32K()
	if c.L1.SizeBytes != 32*1024 || c.L1.LatencyCycles != 4 {
		t.Fatal("32K preset wrong")
	}
}

func TestPublicFilterConstructors(t *testing.T) {
	for _, mk := range []func(int) (repro.Filter, error){
		repro.NewPAFilter, repro.NewPCFilter, repro.NewHashedPAFilter,
	} {
		f, err := mk(4096)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Allow(repro.FilterRequest{LineAddr: 1}) {
			t.Fatal("fresh filter should allow")
		}
		if _, err := mk(1000); err == nil {
			t.Fatal("non-pow2 entries should fail")
		}
	}
}

func TestPublicCustomFilterInSimulation(t *testing.T) {
	// A custom filter keyed on the XOR of address and trigger PC.
	f, err := repro.NewCustomFilter("xor", func(la, pc uint64) uint64 { return la ^ (pc >> 2) }, 4096)
	if err != nil {
		t.Fatal(err)
	}
	run, err := repro.Simulate(repro.Options{
		Benchmark:       "em3d",
		Config:          repro.DefaultConfig(),
		Filter:          f,
		MaxInstructions: 100_000,
		Warmup:          20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Filter != "xor" {
		t.Fatalf("filter = %q", run.Filter)
	}
	if run.FilterQueries == 0 {
		t.Fatal("custom filter should be queried")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	recs := []repro.Record{
		{Op: 1, PC: 0x400000, Addr: 0x1000},                // load
		{Op: 0, PC: 0x400004},                              // alu
		{Op: 3, PC: 0x400008, Addr: 0x400020, Taken: true}, // branch
	}
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := repro.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records", len(got))
	}
	// And a trace can drive a simulation through the public API.
	big := make([]repro.Record, 0, 20000)
	for i := 0; i < 20000; i++ {
		big = append(big, repro.Record{Op: 1, PC: uint64(0x400000 + (i%64)*4), Addr: uint64((i % 2048) * 32)})
	}
	run, err := repro.Simulate(repro.Options{
		Source:          repro.SliceSource(big),
		Config:          repro.DefaultConfig(),
		MaxInstructions: int64(len(big)),
		Warmup:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Instructions != uint64(len(big)) {
		t.Fatalf("instructions = %d", run.Instructions)
	}
}

func TestPublicExperimentsIndex(t *testing.T) {
	exps := repro.Experiments()
	if len(exps) != 31 {
		t.Fatalf("experiments = %d", len(exps))
	}
	if _, ok := repro.ExperimentByID("fig6"); !ok {
		t.Fatal("fig6 should exist")
	}
	p := repro.DefaultExperimentParams()
	if p.Instructions == 0 {
		t.Fatal("default params empty")
	}
}

func TestPublicStaticFilterFlow(t *testing.T) {
	run, err := repro.SimulateStatic(repro.Options{
		Benchmark:       "gcc",
		Config:          repro.DefaultConfig(),
		MaxInstructions: 60_000,
		Warmup:          20_000,
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if run.Filter != "pa-static" {
		t.Fatalf("filter = %q", run.Filter)
	}
}

// TestHeadlineReproduction is the repo's flagship integration test: on the
// pollution-bound workloads the pollution filter must deliver the paper's
// qualitative result — the bulk of bad prefetches eliminated with an IPC
// improvement — at test-sized instruction budgets.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("headline reproduction needs full-size runs")
	}
	base := repro.DefaultConfig()
	var meanNone, meanPC float64
	benches := []string{"em3d", "perimeter", "gap", "mcf"}
	for _, bench := range benches {
		none, err := repro.Simulate(repro.Options{Benchmark: bench, Config: base, MaxInstructions: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		pc, err := repro.Simulate(repro.Options{
			Benchmark: bench, Config: base.WithFilter(repro.FilterPC), MaxInstructions: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		if pc.Prefetches.Bad*5 > none.Prefetches.Bad {
			t.Errorf("%s: bad prefetches %d -> %d (want >80%% reduction)",
				bench, none.Prefetches.Bad, pc.Prefetches.Bad)
		}
		meanNone += none.IPC()
		meanPC += pc.IPC()
	}
	if meanPC <= meanNone {
		t.Errorf("mean IPC with PC filter %.3f should beat baseline %.3f", meanPC/4, meanNone/4)
	}
}

func TestPublicAnalyzeTrace(t *testing.T) {
	var recs []repro.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, repro.Record{Op: 1, PC: uint64(0x400000 + (i%16)*4), Addr: uint64((i % 64) * 32)})
	}
	p, err := repro.AnalyzeTrace(repro.SliceSource(recs), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Accesses != 1000 || p.Footprint != 64 {
		t.Fatalf("profile: %d accesses, %d lines", p.Accesses, p.Footprint)
	}
	if mr := p.MissRate(128); mr > 0.07 {
		t.Fatalf("a 64-line loop in a 128-line cache should mostly hit, got %v", mr)
	}
}

func TestPublicInterleave(t *testing.T) {
	a := repro.SliceSource([]repro.Record{{Op: 0, PC: 0x100}})
	b := repro.SliceSource([]repro.Record{{Op: 0, PC: 0x200}})
	src, err := repro.InterleaveSource(1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("interleave yielded %d records", n)
	}
	if _, err := repro.InterleaveSource(0, a); err == nil {
		t.Fatal("bad quantum should fail")
	}
}

func TestPublicTaggedFilters(t *testing.T) {
	for _, mk := range []func(int, uint) (repro.Filter, error){
		repro.NewTaggedPAFilter, repro.NewTaggedPCFilter,
	} {
		f, err := mk(4096, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Allow(repro.FilterRequest{LineAddr: 1}) {
			t.Fatal("fresh tagged filter should allow")
		}
	}
}

func TestPublicFilterZoo(t *testing.T) {
	kinds := repro.FilterBackends()
	sweep := repro.SweepableFilterBackends()
	if len(kinds) == 0 || len(sweep) == 0 {
		t.Fatalf("empty registry: kinds=%v sweep=%v", kinds, sweep)
	}
	for _, s := range sweep {
		if s == string(repro.FilterStatic) {
			t.Fatal("static must not be sweepable")
		}
	}
	for _, k := range []repro.FilterKind{
		repro.FilterPerceptron, repro.FilterBloom, repro.FilterTournament,
	} {
		cfg := repro.DefaultConfig().WithFilter(k).Filter
		f, err := repro.NewFilterBackend(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !f.Allow(repro.FilterRequest{LineAddr: 0x1000}) {
			t.Fatalf("%s: fresh backend should allow a first touch", k)
		}
	}
	if _, err := repro.NewFilterBackend(repro.FilterConfig{Kind: "bogus", TableEntries: 64}); err == nil {
		t.Fatal("bogus kind should fail")
	}
}

func TestPublicLint(t *testing.T) {
	// The errcheck fixture is deliberately dirty; Lint must surface its
	// findings through the public wrapper in the canonical format.
	findings, err := repro.Lint(".", "./internal/lint/testdata/src/errs")
	if err != nil {
		t.Fatalf("Lint(errs fixture): %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("errs fixture produced no findings")
	}
	for _, f := range findings {
		if !strings.Contains(f, "errcheck/discard") {
			t.Fatalf("unexpected finding %q", f)
		}
	}

	// A clean core package must lint clean.
	clean, err := repro.Lint(".", "./internal/prefetch")
	if err != nil {
		t.Fatalf("Lint(prefetch): %v", err)
	}
	if len(clean) != 0 {
		t.Fatalf("internal/prefetch should be clean, got %v", clean)
	}

	// The v2 dataflow analyzers surface through the same wrapper: the
	// fabric fixture is dirty across lockflow and ctxflow, the prefetch
	// fixture across hwbudget.
	dirty, err := repro.Lint(".", "./internal/lint/testdata/src/fabric")
	if err != nil {
		t.Fatalf("Lint(fabric fixture): %v", err)
	}
	for _, rule := range []string{"lockflow/blocking", "lockflow/leak", "ctxflow/background", "ctxflow/goroutine"} {
		found := false
		for _, f := range dirty {
			if strings.Contains(f, rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fabric fixture surfaced no %s finding through repro.Lint; got %v", rule, dirty)
		}
	}
	hw, err := repro.Lint(".", "./internal/lint/testdata/src/prefetch")
	if err != nil {
		t.Fatalf("Lint(prefetch fixture): %v", err)
	}
	for _, rule := range []string{"hwbudget/map", "hwbudget/unsized", "hwbudget/growth"} {
		found := false
		for _, f := range hw {
			if strings.Contains(f, rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("prefetch fixture surfaced no %s finding through repro.Lint; got %v", rule, hw)
		}
	}
}
