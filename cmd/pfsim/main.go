// Command pfsim runs a single simulation: one benchmark on one machine
// configuration with one pollution-filter variant, and prints the full
// measurement set.
//
// Usage:
//
//	pfsim -bench mcf -filter pc -n 2000000
//	pfsim -bench gzip -filter pa -l1 32768 -l1lat 4 -ports 4
//	pfsim -bench wave5 -filter none -buffer
//	pfsim -tracein trace.pft -filter pa
//
// Observability:
//
//	pfsim -bench mcf -filter pa -trace out.jsonl   # cycle-stamped event trace
//	pfsim -bench mcf -filter pa -metrics           # metrics registry snapshot
//	pfsim -bench mcf -pprof localhost:6060         # live net/http/pprof server
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/metrics"
	"sort"

	"repro/internal/config"
	"repro/internal/isa"
	simmetrics "repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "mcf", "benchmark name (see -list)")
		traceIn  = flag.String("tracein", "", "run from a PFTRACE1 trace file instead of a benchmark model")
		filter   = flag.String("filter", "none", "pollution filter: none|pa|pc|adaptive|deadblock")
		entries  = flag.Int("entries", 4096, "history table entries (power of two)")
		n        = flag.Int64("n", 2_000_000, "measured instructions")
		warmup   = flag.Int64("warmup", 1_000_000, "warmup instructions (excluded from stats)")
		seed     = flag.Uint64("seed", 1, "workload/replacement seed")
		l1size   = flag.Int("l1", 8192, "L1 size in bytes")
		l1lat    = flag.Int("l1lat", 0, "L1 latency in cycles (0 = derive: 8KB→1, 32KB→4)")
		ports    = flag.Int("ports", 3, "L1 universal ports (3/4/5 pair with 1/2/3-cycle latency at 8KB)")
		buffer   = flag.Bool("buffer", false, "use the 16-entry dedicated prefetch buffer (§5.5)")
		noNSP    = flag.Bool("no-nsp", false, "disable next-sequence prefetching")
		noSDP    = flag.Bool("no-sdp", false, "disable shadow-directory prefetching")
		noSW     = flag.Bool("no-sw", false, "disable software prefetches")
		stride   = flag.Bool("stride", false, "enable the stride (RPT) prefetcher extension")
		corr     = flag.Bool("corr", false, "enable the miss-correlation prefetcher extension")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		jsonConf = flag.String("config", "", "load a full JSON machine config from this file")

		traceOut = flag.String("trace", "", "write a cycle-stamped JSONL event trace to this file")
		traceBuf = flag.Int("tracebuf", 1<<20, "event trace ring-buffer capacity (oldest events drop beyond this)")
		interval = flag.Uint64("interval", 100_000, "rollup interval in cycles for the -trace accuracy/coverage/pollution table (0 disables)")
		metricsF = flag.Bool("metrics", false, "print the simulation metrics registry snapshot (plus selected runtime/metrics)")
		pprofF   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-10s %-9s %-28s (paper: L1 %.4f, L2 %.4f)\n",
				s.Name, s.Suite, s.Input, s.PaperL1Miss, s.PaperL2Miss)
		}
		return
	}

	if *pprofF != "" {
		go func() {
			if err := http.ListenAndServe(*pprofF, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pfsim: pprof:", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofF)
	}

	cfg := config.Default()
	if *jsonConf != "" {
		data, err := os.ReadFile(*jsonConf)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.Parse(data)
		if err != nil {
			fatal(err)
		}
	}
	cfg.L1.SizeBytes = *l1size
	cfg = cfg.WithL1Ports(*ports)
	if *l1lat > 0 {
		cfg.L1.LatencyCycles = *l1lat
	} else if *l1size >= 32*1024 {
		cfg.L1.LatencyCycles = 4
	}
	cfg.Filter.Kind = config.FilterKind(*filter)
	cfg.Filter.TableEntries = *entries
	cfg.Buffer.Enable = *buffer
	cfg.Prefetch.EnableNSP = !*noNSP
	cfg.Prefetch.EnableSDP = !*noSDP
	cfg.Prefetch.EnableSoftware = !*noSW
	cfg.Prefetch.EnableStride = *stride
	cfg.Prefetch.EnableCorrelation = *corr
	cfg.Seed = *seed

	opts := sim.Options{
		Benchmark:       *bench,
		Config:          cfg,
		MaxInstructions: *n,
		Warmup:          *warmup,
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //pflint:allow errcheck read-only trace input; a close error cannot lose data
		r, err := isa.NewReader(f)
		if err != nil {
			fatal(err)
		}
		opts.Source = r
		opts.Benchmark = *traceIn
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(*traceBuf).WithInterval(*interval)
		opts.Trace = tracer
	}
	var reg *simmetrics.Registry
	if *metricsF {
		reg = simmetrics.New()
		opts.Metrics = reg
	}

	run, err := sim.Run(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark        %s\n", run.Benchmark)
	fmt.Printf("filter           %s\n", run.Filter)
	fmt.Printf("instructions     %d\n", run.Instructions)
	fmt.Printf("cycles           %d\n", run.Cycles)
	fmt.Printf("IPC              %.4f\n", run.IPC())
	fmt.Printf("L1 miss rate     %.4f (%d/%d)\n", run.L1MissRate(), run.L1DemandMisses, run.L1DemandAccesses)
	fmt.Printf("L2 miss rate     %.4f (%d/%d)\n", run.L2MissRate(), run.L2DemandMisses, run.L2DemandAccesses)
	fmt.Printf("branch accuracy  %.4f\n", 1-float64(run.BranchMispredictions)/max1(run.BranchPredictions))
	fmt.Println()
	fmt.Printf("prefetches issued   %d\n", run.Prefetches.Issued)
	fmt.Printf("  good              %d (%d still resident)\n", run.Prefetches.Good, run.Prefetches.ResidentGood)
	fmt.Printf("  bad               %d (%d still resident)\n", run.Prefetches.Bad, run.Prefetches.ResidentBad)
	fmt.Printf("  bad/good ratio    %.3f\n", run.Prefetches.BadGoodRatio())
	fmt.Printf("filtered            %d\n", run.Prefetches.Filtered)
	fmt.Printf("squashed (dup)      %d\n", run.Prefetches.Squashed)
	fmt.Printf("queue overflow      %d\n", run.Prefetches.Overflow)
	fmt.Println()
	fmt.Printf("L1 traffic: demand %d, prefetch %d (ratio %.3f)\n",
		run.Traffic.DemandAccesses, run.Traffic.PrefetchAccesses, run.Traffic.PrefetchRatio())
	fmt.Printf("L2 accesses %d (prefetch %d), memory %d (prefetch %d)\n",
		run.Traffic.L2Accesses, run.Traffic.PrefetchL2, run.Traffic.MemAccesses, run.Traffic.PrefetchMem)
	if len(run.BySource) > 0 {
		keys := make([]string, 0, len(run.BySource))
		for k := range run.BySource {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("prefetches by source:")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, run.BySource[k])
		}
		fmt.Println()
	}

	if tracer != nil {
		writeTrace(tracer, *traceOut)
	}
	if reg != nil {
		fmt.Println()
		fmt.Println("--- metrics snapshot ---")
		if _, err := reg.Snapshot().WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		dumpRuntimeMetrics()
	}
}

// writeTrace exports the JSONL event file and prints the interval
// rollup table (accuracy / coverage / pollution per interval).
func writeTrace(tracer *trace.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tracer.WriteJSONL(f); err != nil {
		_ = f.Close() // the write error takes precedence
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Printf("trace: %d events emitted, %d buffered to %s (%d overwrote the ring)\n",
		tracer.Total(), tracer.Total()-tracer.Dropped(), path, tracer.Dropped())
	rollups := tracer.Rollups()
	if len(rollups) == 0 {
		return
	}
	fmt.Printf("%-10s %8s %8s %8s %8s %9s %9s %10s\n",
		"interval", "issued", "filtered", "fills", "misses", "accuracy", "coverage", "pollution")
	for _, r := range rollups {
		fmt.Printf("%-10d %8d %8d %8d %8d %9.3f %9.3f %10.3f\n",
			r.Index, r.Issued(), r.Filtered(), r.Counts[trace.KindPrefetchFill],
			r.DemandMisses(), r.Accuracy(), r.Coverage(), r.PollutionRate())
	}
}

// dumpRuntimeMetrics prints a useful subset of runtime/metrics — the
// Go-runtime counterpart to the simulation registry, for profiling the
// simulator itself.
func dumpRuntimeMetrics() {
	names := []string{
		"/gc/heap/allocs:bytes",
		"/gc/heap/allocs:objects",
		"/gc/cycles/total:gc-cycles",
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/sched/goroutines:goroutines",
	}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	fmt.Println()
	fmt.Println("--- runtime/metrics ---")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Printf("%-40s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Printf("%-40s %g\n", s.Name, s.Value.Float64())
		}
	}
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfsim:", err)
	os.Exit(1)
}
