// Command pfsim runs a single simulation: one benchmark on one machine
// configuration with one pollution-filter variant, and prints the full
// measurement set.
//
// Usage:
//
//	pfsim -bench mcf -filter pc -n 2000000
//	pfsim -bench gzip -filter pa -l1 32768 -l1lat 4 -ports 4
//	pfsim -bench wave5 -filter none -buffer
//	pfsim -trace trace.pft -filter pa
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "mcf", "benchmark name (see -list)")
		traceIn  = flag.String("trace", "", "run from a PFTRACE1 trace file instead of a benchmark model")
		filter   = flag.String("filter", "none", "pollution filter: none|pa|pc|adaptive|deadblock")
		entries  = flag.Int("entries", 4096, "history table entries (power of two)")
		n        = flag.Int64("n", 2_000_000, "measured instructions")
		warmup   = flag.Int64("warmup", 1_000_000, "warmup instructions (excluded from stats)")
		seed     = flag.Uint64("seed", 1, "workload/replacement seed")
		l1size   = flag.Int("l1", 8192, "L1 size in bytes")
		l1lat    = flag.Int("l1lat", 0, "L1 latency in cycles (0 = derive: 8KB→1, 32KB→4)")
		ports    = flag.Int("ports", 3, "L1 universal ports (3/4/5 pair with 1/2/3-cycle latency at 8KB)")
		buffer   = flag.Bool("buffer", false, "use the 16-entry dedicated prefetch buffer (§5.5)")
		noNSP    = flag.Bool("no-nsp", false, "disable next-sequence prefetching")
		noSDP    = flag.Bool("no-sdp", false, "disable shadow-directory prefetching")
		noSW     = flag.Bool("no-sw", false, "disable software prefetches")
		stride   = flag.Bool("stride", false, "enable the stride (RPT) prefetcher extension")
		corr     = flag.Bool("corr", false, "enable the miss-correlation prefetcher extension")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		jsonConf = flag.String("config", "", "load a full JSON machine config from this file")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-10s %-9s %-28s (paper: L1 %.4f, L2 %.4f)\n",
				s.Name, s.Suite, s.Input, s.PaperL1Miss, s.PaperL2Miss)
		}
		return
	}

	cfg := config.Default()
	if *jsonConf != "" {
		data, err := os.ReadFile(*jsonConf)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.Parse(data)
		if err != nil {
			fatal(err)
		}
	}
	cfg.L1.SizeBytes = *l1size
	cfg = cfg.WithL1Ports(*ports)
	if *l1lat > 0 {
		cfg.L1.LatencyCycles = *l1lat
	} else if *l1size >= 32*1024 {
		cfg.L1.LatencyCycles = 4
	}
	cfg.Filter.Kind = config.FilterKind(*filter)
	cfg.Filter.TableEntries = *entries
	cfg.Buffer.Enable = *buffer
	cfg.Prefetch.EnableNSP = !*noNSP
	cfg.Prefetch.EnableSDP = !*noSDP
	cfg.Prefetch.EnableSoftware = !*noSW
	cfg.Prefetch.EnableStride = *stride
	cfg.Prefetch.EnableCorrelation = *corr
	cfg.Seed = *seed

	opts := sim.Options{
		Benchmark:       *bench,
		Config:          cfg,
		MaxInstructions: *n,
		Warmup:          *warmup,
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := isa.NewReader(f)
		if err != nil {
			fatal(err)
		}
		opts.Source = r
		opts.Benchmark = *traceIn
	}

	run, err := sim.Run(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark        %s\n", run.Benchmark)
	fmt.Printf("filter           %s\n", run.Filter)
	fmt.Printf("instructions     %d\n", run.Instructions)
	fmt.Printf("cycles           %d\n", run.Cycles)
	fmt.Printf("IPC              %.4f\n", run.IPC())
	fmt.Printf("L1 miss rate     %.4f (%d/%d)\n", run.L1MissRate(), run.L1DemandMisses, run.L1DemandAccesses)
	fmt.Printf("L2 miss rate     %.4f (%d/%d)\n", run.L2MissRate(), run.L2DemandMisses, run.L2DemandAccesses)
	fmt.Printf("branch accuracy  %.4f\n", 1-float64(run.BranchMispredictions)/max1(run.BranchPredictions))
	fmt.Println()
	fmt.Printf("prefetches issued   %d\n", run.Prefetches.Issued)
	fmt.Printf("  good              %d (%d still resident)\n", run.Prefetches.Good, run.Prefetches.ResidentGood)
	fmt.Printf("  bad               %d (%d still resident)\n", run.Prefetches.Bad, run.Prefetches.ResidentBad)
	fmt.Printf("  bad/good ratio    %.3f\n", run.Prefetches.BadGoodRatio())
	fmt.Printf("filtered            %d\n", run.Prefetches.Filtered)
	fmt.Printf("squashed (dup)      %d\n", run.Prefetches.Squashed)
	fmt.Printf("queue overflow      %d\n", run.Prefetches.Overflow)
	fmt.Println()
	fmt.Printf("L1 traffic: demand %d, prefetch %d (ratio %.3f)\n",
		run.Traffic.DemandAccesses, run.Traffic.PrefetchAccesses, run.Traffic.PrefetchRatio())
	fmt.Printf("L2 accesses %d (prefetch %d), memory %d (prefetch %d)\n",
		run.Traffic.L2Accesses, run.Traffic.PrefetchL2, run.Traffic.MemAccesses, run.Traffic.PrefetchMem)
	if len(run.BySource) > 0 {
		keys := make([]string, 0, len(run.BySource))
		for k := range run.BySource {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("prefetches by source:")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, run.BySource[k])
		}
		fmt.Println()
	}
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfsim:", err)
	os.Exit(1)
}
