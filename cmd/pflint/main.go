// Command pflint runs the repository's static-analysis suite
// (internal/lint): determinism, hotpath, hooks, configcov, errcheck,
// lockflow, ctxflow, and hwbudget analyzers encoding the simulator's
// standing invariants. It exits 1 when any finding survives, so CI can
// gate on it; see docs/LINTING.md for the rules and the //pflint:allow
// escape pragma.
//
// Usage:
//
//	pflint [-list] [-json] [-budget] [packages]
//
// Packages default to ./... relative to the working directory. -json
// switches findings to one JSON object per line (file/line/col/rule/
// message), the format .github/pflint-problem-matcher.json turns into
// inline PR annotations. -budget prints the per-backend storage-bits
// report (the hwbudget analyzer's runtime half) and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// jsonFinding is the -json wire form, kept flat for problem matchers.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and rules, then exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON, one object per line")
	budget := flag.Bool("budget", false, "print the per-backend storage-bits report, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pflint [-list] [-json] [-budget] [packages]\n\nAnalyzers (see docs/LINTING.md):\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			for _, r := range a.Rules {
				fmt.Printf("  %s\n", r)
			}
		}
		return
	}

	if *budget {
		lines := lint.BudgetReport()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			for _, l := range lines {
				if err := enc.Encode(l); err != nil {
					fmt.Fprintln(os.Stderr, "pflint:", err)
					os.Exit(2)
				}
			}
			return
		}
		fmt.Print(lint.FormatBudget(lines))
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pflint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && len(rel) < len(f.Pos.Filename) {
				f.Pos.Filename = rel
			}
		}
		if *asJSON {
			jf := jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Message: f.Msg}
			if err := enc.Encode(jf); err != nil {
				fmt.Fprintln(os.Stderr, "pflint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pflint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
