// Command pflint runs the repository's static-analysis suite
// (internal/lint): determinism, hotpath, hooks, configcov, and errcheck
// analyzers encoding the simulator's standing invariants. It exits 1
// when any finding survives, so CI can gate on it; see docs/LINTING.md
// for the rules and the //pflint:allow escape pragma.
//
// Usage:
//
//	pflint [-list] [packages]
//
// Packages default to ./... relative to the working directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and rules, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pflint [-list] [packages]\n\nAnalyzers (see docs/LINTING.md):\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			for _, r := range a.Rules {
				fmt.Printf("  %s\n", r)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pflint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && len(rel) < len(f.Pos.Filename) {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pflint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
