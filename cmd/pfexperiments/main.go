// Command pfexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	pfexperiments -list            # show available experiments
//	pfexperiments -exp fig6        # regenerate one figure
//	pfexperiments -all             # regenerate everything (results_full.txt)
//	pfexperiments -exp fig12 -csv  # CSV instead of aligned text
//	pfexperiments -all -n 5000000  # longer runs for tighter statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID (table1, table2, fig1..fig16, baselines, extras, ablation, taxonomy, energy, adaptivity, variance, multiprog, aggression, memlat)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiments and exit")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		md     = flag.Bool("md", false, "emit GitHub-flavored markdown")
		n      = flag.Int64("n", 2_000_000, "measured instructions per run")
		warmup = flag.Int64("warmup", 1_000_000, "warmup instructions per run")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		bench  = flag.String("bench", "", "comma-separated benchmark subset (default: all ten)")
		jobs   = flag.Int("j", 0, "parallel simulation workers for pre-warming (0 = GOMAXPROCS, 1 = serial)")
		met    = flag.Bool("metrics", false, "print harness telemetry (cache hits/misses, per-benchmark sim wall time) after the run")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	params := experiments.Params{Instructions: *n, Warmup: *warmup, Seed: *seed}
	if *bench != "" {
		params.Benchmarks = strings.Split(*bench, ",")
	}
	if *met {
		params.Metrics = metrics.New()
	}

	var targets []experiments.Experiment
	switch {
	case *all:
		targets = experiments.All()
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pfexperiments: unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		targets = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "pfexperiments: need -exp <id> or -all; try -list")
		os.Exit(1)
	}

	// Pre-warm the shared simulation matrix in parallel when running more
	// than one experiment; each experiment then reads memoized results.
	if len(targets) > 1 && *jobs != 1 {
		start := time.Now()
		if err := params.Prewarm(*jobs); err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: prewarm: %v\n", err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("pre-warmed %d simulations in %.1fs\n\n", params.CachedRuns(), time.Since(start).Seconds())
		}
	}

	for _, e := range targets {
		start := time.Now()
		table, err := e.Run(&params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		case *md:
			if err := table.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		default:
			fmt.Printf("=== %s: %s (%.1fs) ===\n", e.ID, e.Title, time.Since(start).Seconds())
			if err := table.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		}
	}

	if params.Metrics != nil {
		fmt.Println()
		fmt.Println("--- harness telemetry ---")
		if _, err := params.Metrics.Snapshot().WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pfexperiments:", err)
			os.Exit(1)
		}
	}
}
