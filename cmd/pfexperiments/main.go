// Command pfexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	pfexperiments -list              # show available experiments
//	pfexperiments -exp fig6          # regenerate one figure
//	pfexperiments -all               # regenerate everything (results_full.txt)
//	pfexperiments -all -jobs 8       # pre-warm on 8 work-stealing workers
//	pfexperiments -all -deadline 5m  # abandon queued sims past the deadline
//	pfexperiments -exp fig12 -csv    # CSV instead of aligned text
//	pfexperiments -all -n 5000000    # longer runs for tighter statistics
//	pfexperiments -bench-json        # timed bench matrix -> BENCH_baseline.json
//	pfexperiments -filters all       # head-to-head filter-backend comparison
//	pfexperiments -filters pa,perceptron,bloom -bench mcf
//	pfexperiments -generators all -filters all   # full (generator x filter) cross-product
//	pfexperiments -generators berti,ghb -filters pa -bench stream
//	pfexperiments -traces corpus.json            # trace corpus x filter zoo
//	pfexperiments -traces corpus.json -filters pa,perceptron
//	pfexperiments -iprefetch all -filters all    # I-side (iprefetcher x filter) cross-product
//	pfexperiments -iprefetch mana -filters pa -bench mcf
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/tracefile"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (table1, table2, fig1..fig16, baselines, extras, ablation, taxonomy, energy, adaptivity, variance, multiprog, aggression, memlat, filters, generators, traces, iprefetch)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		md       = flag.Bool("md", false, "emit GitHub-flavored markdown")
		n        = flag.Int64("n", 2_000_000, "measured instructions per run")
		warmup   = flag.Int64("warmup", 1_000_000, "warmup instructions per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all ten)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the simulation sweep (0 = none); queued sims past it are abandoned")
		met      = flag.Bool("metrics", false, "print harness telemetry (cache hits/misses, scheduler steals, per-benchmark sim wall time) after the run")
		benchOut = flag.String("bench-out", "BENCH_baseline.json", "output path for -bench-json")
		benchJSN = flag.Bool("bench-json", false, "run the timed (benchmark x filter) bench matrix and write a BENCH JSON report")
		filters  = flag.String("filters", "", "comma-separated filter backends to compare head to head, or \"all\" for every sweepable backend")
		gens     = flag.String("generators", "", "comma-separated prefetch generators to cross with -filters (or \"all\"); runs the (generator x filter) comparison")
		iprefs   = flag.String("iprefetch", "", "comma-separated instruction prefetchers to cross with -filters (or \"all\"); enables the front end and runs the (iprefetcher x filter) comparison")
		traces   = flag.String("traces", "", "trace-corpus manifest (docs/TRACES.md); registers each trace as benchmark trace:<name>, points the benchmark set at the corpus unless -bench overrides, and without another mode flag runs the corpus x filter comparison")
		traceVer = flag.Bool("verify-traces", false, "fully scan every corpus trace before running (per-chunk CRCs, stream fingerprint vs manifest)")
	)
	var jobs int
	flag.IntVar(&jobs, "jobs", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&jobs, "j", 0, "shorthand for -jobs")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	params := experiments.Params{Instructions: *n, Warmup: *warmup, Seed: *seed}
	var corpus []string
	if *traces != "" {
		names, err := tracefile.RegisterCorpus(config.TraceConfig{Manifest: *traces, Verify: *traceVer})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: trace corpus: %v\n", err)
			os.Exit(1)
		}
		corpus = names
		params.Benchmarks = names
	}
	if *bench != "" {
		params.Benchmarks = strings.Split(*bench, ",")
	}
	if *met || *benchJSN {
		params.Metrics = metrics.New()
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if *benchJSN {
		start := time.Now()
		report, err := params.BenchJSON(ctx, jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: bench-json: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			_ = f.Close() // the write error takes precedence
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench matrix: %d sims in %.1fs (serial-equivalent %.1fs, speedup %.2fx, %d steals) -> %s\n",
			len(report.Entries), time.Since(start).Seconds(),
			time.Duration(report.SerialWallNS).Seconds(), report.Speedup(), report.Steals, *benchOut)
		if *met {
			printTelemetry(&params)
		}
		return
	}

	if *iprefs != "" {
		iprefKinds := []string(nil) // "all" selects every registered backend
		if *iprefs != "all" {
			iprefKinds = strings.Split(*iprefs, ",")
		}
		filterKinds := []string(nil) // empty selects every sweepable backend
		if *filters != "" && *filters != "all" {
			filterKinds = strings.Split(*filters, ",")
		}
		rows, err := params.IFilterComparison(ctx, iprefKinds, filterKinds, jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: iprefetch: %v\n", err)
			os.Exit(1)
		}
		table := report.IPrefetchComparison("Instruction-prefetcher zoo crossed with filters (front end enabled)", rows)
		var werr error
		switch {
		case *csv:
			werr = table.WriteCSV(os.Stdout)
		case *md:
			werr = table.WriteMarkdown(os.Stdout)
		default:
			werr = table.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pfexperiments:", werr)
			os.Exit(1)
		}
		if *met {
			printTelemetry(&params)
		}
		return
	}

	if *gens != "" {
		genKinds := []string(nil) // "all" selects every registered generator
		if *gens != "all" {
			genKinds = strings.Split(*gens, ",")
		}
		filterKinds := []string(nil) // empty selects every sweepable backend
		if *filters != "" && *filters != "all" {
			filterKinds = strings.Split(*filters, ",")
		}
		rows, err := params.GeneratorComparison(ctx, genKinds, filterKinds, jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: generators: %v\n", err)
			os.Exit(1)
		}
		table := report.GeneratorComparison("Generator zoo crossed with filters (default machine)", rows)
		var werr error
		switch {
		case *csv:
			werr = table.WriteCSV(os.Stdout)
		case *md:
			werr = table.WriteMarkdown(os.Stdout)
		default:
			werr = table.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pfexperiments:", werr)
			os.Exit(1)
		}
		if *met {
			printTelemetry(&params)
		}
		return
	}

	if *filters != "" {
		kinds := []string(nil) // "all" selects every sweepable backend
		if *filters != "all" {
			kinds = strings.Split(*filters, ",")
		}
		rows, err := params.FilterComparison(ctx, kinds, jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: filters: %v\n", err)
			os.Exit(1)
		}
		table := report.FilterComparison("Filter backends head to head (default machine)", rows)
		var werr error
		switch {
		case *csv:
			werr = table.WriteCSV(os.Stdout)
		case *md:
			werr = table.WriteMarkdown(os.Stdout)
		default:
			werr = table.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pfexperiments:", werr)
			os.Exit(1)
		}
		if *met {
			printTelemetry(&params)
		}
		return
	}

	render := func(table *experiments.Table) {
		var werr error
		switch {
		case *csv:
			werr = table.WriteCSV(os.Stdout)
		case *md:
			werr = table.WriteMarkdown(os.Stdout)
		default:
			werr = table.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pfexperiments:", werr)
			os.Exit(1)
		}
	}

	if *traces != "" && *exp == "" && !*all {
		// Corpus mode: the manifest summary, then the (trace × filter)
		// comparison — the same pipeline -filters runs on the models.
		m, err := tracefile.LoadManifest(*traces)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: %v\n", err)
			os.Exit(1)
		}
		render(experiments.TraceCorpusTable(m))
		fmt.Println()
		rows, err := params.TraceComparison(ctx, corpus, nil, jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: traces: %v\n", err)
			os.Exit(1)
		}
		render(report.FilterComparison("Trace corpus crossed with filters (default machine)", rows))
		if *met {
			printTelemetry(&params)
		}
		return
	}

	var targets []experiments.Experiment
	switch {
	case *all:
		targets = experiments.All()
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pfexperiments: unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		targets = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "pfexperiments: need -exp <id>, -all, or -bench-json; try -list")
		os.Exit(1)
	}

	// Pre-warm the shared simulation matrix in parallel when running more
	// than one experiment; each experiment then reads memoized results.
	if len(targets) > 1 && jobs != 1 {
		start := time.Now()
		if err := params.PrewarmCtx(ctx, jobs); err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: prewarm: %v\n", err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("pre-warmed %d simulations in %.1fs\n\n", params.CachedRuns(), time.Since(start).Seconds())
		}
	}

	for _, e := range targets {
		start := time.Now()
		table, err := e.Run(&params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfexperiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		case *md:
			if err := table.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		default:
			fmt.Printf("=== %s: %s (%.1fs) ===\n", e.ID, e.Title, time.Since(start).Seconds())
			if err := table.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pfexperiments:", err)
				os.Exit(1)
			}
		}
	}

	if *met {
		printTelemetry(&params)
	}
}

// printTelemetry dumps the harness metrics snapshot when one is attached.
func printTelemetry(params *experiments.Params) {
	if params.Metrics == nil {
		return
	}
	fmt.Println()
	fmt.Println("--- harness telemetry ---")
	if _, err := params.Metrics.Snapshot().WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pfexperiments:", err)
		os.Exit(1)
	}
}
