// Command pfserved serves simulations over HTTP: the experiment harness
// as a daemon, batched on the work-stealing scheduler and cached behind
// the process-wide single-flight memo. See docs/SERVING.md for the API
// and docs/FABRIC.md for multi-node operation.
//
// Usage:
//
//	pfserved                          # listen on :8077
//	pfserved -addr :9000 -workers 8   # custom port, 8 sim workers
//	pfserved -queue 128 -max-concurrent 4
//	pfserved -trace-manifest corpus.json   # serve trace benchmarks too
//
//	# Distributed sweep fabric (docs/FABRIC.md): one coordinator deals
//	# cells to worker daemons and persists results in a shared CAS.
//	pfserved -role worker -addr :8078 -cas-dir /var/pfcas
//	pfserved -role worker -addr :8079 -cas-dir /var/pfcas
//	pfserved -role coordinator -cas-dir /var/pfcas \
//	    -workers http://localhost:8078,http://localhost:8079
//
// Endpoints: POST /v1/run, POST /v1/sweep (NDJSON when the request sets
// "stream"), POST+GET /v1/cell, GET /metrics, GET /healthz.
// SIGTERM/SIGINT drains gracefully: stop accepting, finish in-flight,
// then exit (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/tracefile"
)

func main() {
	var (
		addr         = flag.String("addr", ":8077", "listen address")
		role         = flag.String("role", "standalone", `"standalone" (serve and simulate locally), "worker" (same, meant to sit behind a coordinator), or "coordinator" (deal sweep cells to the -workers fleet instead of simulating)`)
		workers      = flag.String("workers", "", "standalone/worker roles: scheduler pool size per executing batch (integer; empty or 0 = GOMAXPROCS). coordinator role: comma-separated worker base URLs, e.g. http://host:8078,http://host:8079")
		casDir       = flag.String("cas-dir", "", "content-addressed result store directory; enables persistent result caching and GET /v1/cell lookups (share one directory across co-located daemons)")
		lease        = flag.Duration("lease", 2*time.Minute, "coordinator role: per-dispatch lease; a worker that has not answered within it forfeits the cell and it is re-dealt")
		perWorker    = flag.Int("per-worker", 2, "coordinator role: concurrent in-flight cells per worker (match the workers' -max-concurrent)")
		queue        = flag.Int("queue", 64, "admission queue depth; beyond it requests get 429")
		maxConc      = flag.Int("max-concurrent", 2, "concurrently executing request batches")
		maxSweep     = flag.Int("max-sweep", 4096, "largest accepted sweep matrix (deduplicated jobs)")
		maxInstr     = flag.Int64("max-instructions", 50_000_000, "per-request instruction budget cap")
		defInstr     = flag.Int64("n", 2_000_000, "default measured instructions per run")
		defWarmup    = flag.Int64("warmup", 1_000_000, "default warmup instructions per run")
		deadline     = flag.Duration("deadline", 2*time.Minute, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "largest per-request deadline a client may ask for")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		traceMan     = flag.String("trace-manifest", "", "trace-corpus manifest (docs/TRACES.md); registers each trace as benchmark trace:<name> and enables the sweep \"traces\" axis")
		traceVerify  = flag.Bool("trace-verify", false, "fully scan every corpus trace at startup (per-chunk CRCs, stream fingerprint vs manifest)")
	)
	flag.Parse()

	if *traceMan != "" {
		names, err := tracefile.RegisterCorpus(config.TraceConfig{Manifest: *traceMan, Verify: *traceVerify})
		if err != nil {
			fatalf("trace corpus: %v", err)
		}
		log.Printf("pfserved: trace corpus %s: registered %d benchmark(s) %v", *traceMan, len(names), names)
	}

	// One registry for everything — server, harness, CAS, and coordinator
	// telemetry all land in /metrics.
	m := metrics.New()
	cfg := server.Config{
		QueueDepth:          *queue,
		MaxConcurrent:       *maxConc,
		MaxSweepJobs:        *maxSweep,
		MaxInstructions:     *maxInstr,
		DefaultInstructions: *defInstr,
		DefaultWarmup:       *defWarmup,
		DefaultDeadline:     *deadline,
		MaxDeadline:         *maxDeadline,
		RetryAfter:          *retryAfter,
		Metrics:             m,
	}

	if *casDir != "" {
		cas, err := fabric.OpenCAS(*casDir, m)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.CAS = cas
		log.Printf("pfserved: content-addressed store at %s", cas.Dir())
	}

	switch *role {
	case "standalone", "worker":
		// -workers is the local scheduler pool size in these roles.
		if *workers != "" {
			n, err := strconv.Atoi(*workers)
			if err != nil {
				fatalf("-role %s: -workers must be an integer pool size, got %q", *role, *workers)
			}
			cfg.Workers = n
		}
	case "coordinator":
		// -workers is the fleet: comma-separated worker base URLs.
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fatalf("-role coordinator requires -workers with at least one worker URL (http://host:port,...)")
		}
		coord, err := fabric.New(fabric.Options{
			Workers:   urls,
			CAS:       cfg.CAS,
			Lease:     *lease,
			PerWorker: *perWorker,
			Metrics:   m,
		})
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Coordinator = coord
		log.Printf("pfserved: coordinating %d worker(s): %v", len(urls), urls)
	default:
		fatalf("unknown -role %q (standalone, worker, or coordinator)", *role)
	}

	srv := server.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-sigc
		log.Printf("pfserved: %v: draining (timeout %s)", sig, *drainTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Shutdown stops the listeners and waits for in-flight handlers.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("pfserved: shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("pfserved: %v", err)
		}
	}()

	log.Printf("pfserved: %s listening on %s (queue %d, %d concurrent batches)", *role, *addr, *queue, *maxConc)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	<-shutdownDone
	log.Printf("pfserved: drained, exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfserved: "+format+"\n", args...)
	os.Exit(1)
}
