// Command pfserved serves simulations over HTTP: the experiment harness
// as a daemon, batched on the work-stealing scheduler and cached behind
// the process-wide single-flight memo. See docs/SERVING.md for the API.
//
// Usage:
//
//	pfserved                          # listen on :8077
//	pfserved -addr :9000 -workers 8   # custom port, 8 sim workers
//	pfserved -queue 128 -max-concurrent 4
//	pfserved -trace-manifest corpus.json   # serve trace benchmarks too
//
// Endpoints: POST /v1/run, POST /v1/sweep, GET /metrics, GET /healthz.
// SIGTERM/SIGINT drains gracefully: stop accepting, finish in-flight,
// then exit (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/server"
	"repro/internal/tracefile"
)

func main() {
	var (
		addr         = flag.String("addr", ":8077", "listen address")
		workers      = flag.Int("workers", 0, "scheduler workers per executing batch (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth; beyond it requests get 429")
		maxConc      = flag.Int("max-concurrent", 2, "concurrently executing request batches")
		maxSweep     = flag.Int("max-sweep", 4096, "largest accepted sweep matrix (deduplicated jobs)")
		maxInstr     = flag.Int64("max-instructions", 50_000_000, "per-request instruction budget cap")
		defInstr     = flag.Int64("n", 2_000_000, "default measured instructions per run")
		defWarmup    = flag.Int64("warmup", 1_000_000, "default warmup instructions per run")
		deadline     = flag.Duration("deadline", 2*time.Minute, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "largest per-request deadline a client may ask for")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		traceMan     = flag.String("trace-manifest", "", "trace-corpus manifest (docs/TRACES.md); registers each trace as benchmark trace:<name> and enables the sweep \"traces\" axis")
		traceVerify  = flag.Bool("trace-verify", false, "fully scan every corpus trace at startup (per-chunk CRCs, stream fingerprint vs manifest)")
	)
	flag.Parse()

	if *traceMan != "" {
		names, err := tracefile.RegisterCorpus(config.TraceConfig{Manifest: *traceMan, Verify: *traceVerify})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfserved: trace corpus: %v\n", err)
			os.Exit(1)
		}
		log.Printf("pfserved: trace corpus %s: registered %d benchmark(s) %v", *traceMan, len(names), names)
	}

	srv := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		MaxConcurrent:       *maxConc,
		MaxSweepJobs:        *maxSweep,
		MaxInstructions:     *maxInstr,
		DefaultInstructions: *defInstr,
		DefaultWarmup:       *defWarmup,
		DefaultDeadline:     *deadline,
		MaxDeadline:         *maxDeadline,
		RetryAfter:          *retryAfter,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-sigc
		log.Printf("pfserved: %v: draining (timeout %s)", sig, *drainTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Shutdown stops the listeners and waits for in-flight handlers.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("pfserved: shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("pfserved: %v", err)
		}
	}()

	log.Printf("pfserved: listening on %s (queue %d, %d concurrent batches)", *addr, *queue, *maxConc)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pfserved: %v\n", err)
		os.Exit(1)
	}
	<-shutdownDone
	log.Printf("pfserved: drained, exiting")
}
