// Command pftrace generates, converts, inspects, and verifies binary
// trace files, decoupling workload generation from simulation. It speaks
// two formats: the legacy PFTRACE1 stream and the chunked, checksummed
// PFTC corpus format (docs/TRACES.md); info, dump, and analyze sniff the
// magic and accept either.
//
// Usage:
//
//	pftrace gen -bench em3d -n 1000000 -o em3d.pft
//	pftrace gen -bench mcf -n 1000000 -format pftc -o mcf.pftc
//	pftrace convert -o mcf.pftc mcf.champsim.gz
//	pftrace convert -o mcf.pftc -manifest corpus.json -name mcf mcf.champsim.gz
//	pftrace info em3d.pft
//	pftrace info -chunks mcf.pftc      # per-chunk sizes, CRCs, sha256s
//	pftrace info -json mcf.pftc        # machine-readable (CI fingerprint pinning)
//	pftrace dump -n 20 em3d.pft
//	pftrace analyze em3d.pft           # reuse-distance / working-set profile
//	pftrace analyze -bench mcf -n 500000
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/tracefile"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pftrace gen     -bench <name> -n <count> [-seed S] [-format pftrace1|pftc] -o <file>
  pftrace convert -o <out.pftc> [-chunk-bytes N] [-name NAME -manifest FILE] <in.champsim[.gz]>
  pftrace info    [-chunks] [-json] <file>
  pftrace dump    [-n count] <file>
  pftrace analyze [<file> | -bench <name> -n <count>]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pftrace:", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "benchmark model")
	n := fs.Int64("n", 1_000_000, "records to generate")
	seed := fs.Uint64("seed", 1, "generation seed")
	format := fs.String("format", "pftrace1", "output format: pftrace1 (legacy) or pftc (chunked, checksummed)")
	chunkBytes := fs.Int("chunk-bytes", 0, "pftc target chunk payload bytes (0 = default)")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		usage()
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	src := isa.NewLimitSource(spec.New(*seed), *n)
	switch *format {
	case "pftrace1":
		w, err := isa.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		// Close errors on a written file can lose buffered data; check
		// them. (Early fatal paths exit the process, releasing the fd.)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
	case "pftc":
		w, err := tracefile.NewWriter(f, tracefile.WriterOptions{ChunkBytes: *chunkBytes})
		if err != nil {
			fatal(err)
		}
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records (%d chunks) to %s\nfingerprint %x\n",
			w.Count(), len(w.Chunks()), *out, w.Fingerprint())
	default:
		fatal(fmt.Errorf("unknown format %q (want pftrace1 or pftc)", *format))
	}
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output PFTC file (required)")
	chunkBytes := fs.Int("chunk-bytes", 0, "target chunk payload bytes (0 = default 64 KiB)")
	name := fs.String("name", "", "benchmark name for -manifest (default: output basename without extension)")
	manifest := fs.String("manifest", "", "corpus manifest to create or update with the converted trace")
	_ = fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		usage()
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer func() { _ = in.Close() }() // read-only input
	src, err := tracefile.MaybeGzip(in)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	st, err := tracefile.ConvertChampSim(src, f, tracefile.WriterOptions{ChunkBytes: *chunkBytes})
	if err != nil {
		_ = f.Close() // the convert error takes precedence
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d instructions -> %d records (%d chunks) in %s\n",
		st.Instructions, st.Records, len(st.Chunks), *out)
	fmt.Printf("loads %d  stores %d  branches %d (%d taken)\n", st.Loads, st.Stores, st.Branches, st.Taken)
	fmt.Printf("fingerprint %s\n", st.Fingerprint)

	if *manifest == "" {
		return
	}
	bench := *name
	if bench == "" {
		base := filepath.Base(*out)
		bench = strings.TrimSuffix(base, filepath.Ext(base))
	}
	m := tracefile.Manifest{Version: tracefile.ManifestVersion}
	if _, err := os.Stat(*manifest); err == nil {
		if m, err = tracefile.LoadManifest(*manifest); err != nil {
			fatal(err)
		}
	}
	// Store the trace path relative to the manifest when possible, so the
	// corpus directory relocates as a unit.
	file := *out
	if rel, err := filepath.Rel(filepath.Dir(*manifest), *out); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	m.Upsert(tracefile.ManifestEntry{
		Name:          bench,
		File:          file,
		SHA256:        st.Fingerprint,
		Records:       st.Records,
		FormatVersion: tracefile.Version,
	})
	if err := tracefile.SaveManifest(*manifest, m); err != nil {
		fatal(err)
	}
	fmt.Printf("manifest %s: %s%s -> %s\n", *manifest, tracefile.BenchPrefix, bench, file)
}

// traceReader is the decode surface shared by the legacy PFTRACE1 reader
// and the PFTC reader.
type traceReader interface {
	isa.Source
	Err() error
}

// openTrace opens a trace of either format, sniffing the magic. The
// returned cleanup closes the file.
func openTrace(path string) (traceReader, func(), bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	cleanup := func() { _ = f.Close() } // read-only
	br := bufio.NewReaderSize(f, 1<<16)
	head, _ := br.Peek(len(tracefile.Magic))
	if bytes.Equal(head, tracefile.Magic[:]) {
		r, err := tracefile.NewReader(br, tracefile.ReaderOptions{})
		if err != nil {
			fatal(err)
		}
		return r, cleanup, true
	}
	r, err := isa.NewReader(br)
	if err != nil {
		fatal(err)
	}
	return r, cleanup, false
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	chunks := fs.Bool("chunks", false, "print the per-chunk table (PFTC only)")
	jsonOut := fs.Bool("json", false, "emit the full-scan summary as JSON (PFTC only)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r, cleanup, pftc := openTrace(fs.Arg(0))
	defer cleanup()
	if (*chunks || *jsonOut) && !pftc {
		fatal(fmt.Errorf("%s is a legacy PFTRACE1 trace; -chunks/-json need PFTC", fs.Arg(0)))
	}
	var counts [5]uint64
	var total, deps uint64
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		counts[rec.Op]++
		total++
		if rec.Dep {
			deps++
		}
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
	var info tracefile.Info
	if pftc {
		// Second pass: per-chunk descriptors plus full verification (CRCs
		// and the canonical stream fingerprint against the trailer).
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // read-only
		if info, err = tracefile.Inspect(f); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(info); err != nil {
			fatal(err)
		}
		return
	}
	if pftc {
		fmt.Printf("format    PFTC v%d (verified)\n", info.Version)
	} else {
		fmt.Printf("format    PFTRACE1\n")
	}
	fmt.Printf("records   %d\n", total)
	fmt.Printf("alu       %d\n", counts[isa.OpALU])
	fmt.Printf("load      %d (%d dependent)\n", counts[isa.OpLoad], deps)
	fmt.Printf("store     %d\n", counts[isa.OpStore])
	fmt.Printf("branch    %d\n", counts[isa.OpBranch])
	fmt.Printf("prefetch  %d\n", counts[isa.OpPrefetch])
	if pftc {
		fmt.Printf("chunks    %d\n", len(info.Chunks))
		fmt.Printf("sha256    %s\n", info.Fingerprint)
		if *chunks {
			fmt.Println()
			fmt.Printf("%5s  %8s  %8s  %-8s  %s\n", "chunk", "records", "bytes", "crc32c", "sha256")
			for i, c := range info.Chunks {
				fmt.Printf("%5d  %8d  %8d  %08x  %s\n", i, c.Records, c.Bytes, c.CRC32C, c.SHA256)
			}
		}
	}
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 20, "records to print")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r, cleanup, _ := openTrace(fs.Arg(0))
	defer cleanup()
	for i := 0; i < *n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		dep := ""
		if rec.Dep {
			dep = " dep"
		}
		switch rec.Op {
		case isa.OpBranch:
			fmt.Printf("%08x %-8s taken=%-5v target=%08x\n", rec.PC, rec.Op, rec.Taken, rec.Addr)
		case isa.OpALU:
			fmt.Printf("%08x %-8s\n", rec.PC, rec.Op)
		default:
			fmt.Printf("%08x %-8s addr=%08x%s\n", rec.PC, rec.Op, rec.Addr, dep)
		}
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	bench := fs.String("bench", "", "analyze a benchmark model instead of a file")
	n := fs.Int64("n", 1_000_000, "records to analyze when using -bench")
	seed := fs.Uint64("seed", 1, "generation seed for -bench")
	line := fs.Int("line", 32, "line size in bytes")
	_ = fs.Parse(args)

	var src isa.Source
	switch {
	case *bench != "":
		spec, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		src = isa.NewLimitSource(spec.New(*seed), *n)
	case fs.NArg() == 1:
		r, cleanup, _ := openTrace(fs.Arg(0))
		defer cleanup()
		src = r
	default:
		usage()
	}

	p, err := analysis.AnalyzeSource(src, *line, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("memory references  %d\n", p.Accesses)
	fmt.Printf("distinct lines     %d (%.1f KB footprint)\n", p.Footprint, float64(p.Footprint*uint64(*line))/1024)
	fmt.Printf("cold misses        %d (%.2f%%)\n", p.ColdMisses, 100*float64(p.ColdMisses)/float64(max(p.Accesses, 1)))
	fmt.Println()
	fmt.Println("reuse-distance histogram (lines):")
	for b, count := range p.Histogram {
		if count == 0 {
			continue
		}
		lo, hi := analysis.BucketRange(b)
		frac := float64(count) / float64(p.Accesses)
		bar := ""
		for i := 0; i < int(frac*60); i++ {
			bar += "#"
		}
		fmt.Printf("  [%7d,%7d)  %9d  %5.1f%%  %s\n", lo, hi, count, 100*frac, bar)
	}
	fmt.Println()
	fmt.Println("predicted fully-associative LRU miss rates:")
	for _, kb := range []int{8, 16, 32, 64, 256, 512} {
		lines := kb * 1024 / *line
		fmt.Printf("  %4d KB: %.4f\n", kb, p.MissRate(lines))
	}
	if ws := p.WorkingSet(0.01); ws > 0 {
		fmt.Printf("\nworking set (1%% miss target): %d lines = %d KB\n", ws, ws**line/1024)
	}
}
