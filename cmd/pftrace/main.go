// Command pftrace generates, inspects, and verifies binary PFTRACE1 trace
// files, decoupling workload generation from simulation.
//
// Usage:
//
//	pftrace gen -bench em3d -n 1000000 -o em3d.pft
//	pftrace info em3d.pft
//	pftrace dump -n 20 em3d.pft
//	pftrace analyze em3d.pft           # reuse-distance / working-set profile
//	pftrace analyze -bench mcf -n 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pftrace gen     -bench <name> -n <count> [-seed S] -o <file>
  pftrace info    <file>
  pftrace dump    [-n count] <file>
  pftrace analyze [<file> | -bench <name> -n <count>]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pftrace:", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "benchmark model")
	n := fs.Int64("n", 1_000_000, "records to generate")
	seed := fs.Uint64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		usage()
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w, err := isa.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	src := isa.NewLimitSource(spec.New(*seed), *n)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	// Close errors on a written file can lose buffered data; check them.
	// (Early fatal paths exit the process, which releases the fd.)
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
}

func openTrace(path string) *isa.Reader {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	r, err := isa.NewReader(f)
	if err != nil {
		fatal(err)
	}
	return r
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r := openTrace(fs.Arg(0))
	var counts [5]uint64
	var total, deps uint64
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		counts[rec.Op]++
		total++
		if rec.Dep {
			deps++
		}
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("records   %d\n", total)
	fmt.Printf("alu       %d\n", counts[isa.OpALU])
	fmt.Printf("load      %d (%d dependent)\n", counts[isa.OpLoad], deps)
	fmt.Printf("store     %d\n", counts[isa.OpStore])
	fmt.Printf("branch    %d\n", counts[isa.OpBranch])
	fmt.Printf("prefetch  %d\n", counts[isa.OpPrefetch])
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 20, "records to print")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r := openTrace(fs.Arg(0))
	for i := 0; i < *n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		dep := ""
		if rec.Dep {
			dep = " dep"
		}
		switch rec.Op {
		case isa.OpBranch:
			fmt.Printf("%08x %-8s taken=%-5v target=%08x\n", rec.PC, rec.Op, rec.Taken, rec.Addr)
		case isa.OpALU:
			fmt.Printf("%08x %-8s\n", rec.PC, rec.Op)
		default:
			fmt.Printf("%08x %-8s addr=%08x%s\n", rec.PC, rec.Op, rec.Addr, dep)
		}
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	bench := fs.String("bench", "", "analyze a benchmark model instead of a file")
	n := fs.Int64("n", 1_000_000, "records to analyze when using -bench")
	seed := fs.Uint64("seed", 1, "generation seed for -bench")
	line := fs.Int("line", 32, "line size in bytes")
	_ = fs.Parse(args)

	var src isa.Source
	switch {
	case *bench != "":
		spec, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		src = isa.NewLimitSource(spec.New(*seed), *n)
	case fs.NArg() == 1:
		src = openTrace(fs.Arg(0))
	default:
		usage()
	}

	p, err := analysis.AnalyzeSource(src, *line, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("memory references  %d\n", p.Accesses)
	fmt.Printf("distinct lines     %d (%.1f KB footprint)\n", p.Footprint, float64(p.Footprint*uint64(*line))/1024)
	fmt.Printf("cold misses        %d (%.2f%%)\n", p.ColdMisses, 100*float64(p.ColdMisses)/float64(max(p.Accesses, 1)))
	fmt.Println()
	fmt.Println("reuse-distance histogram (lines):")
	for b, count := range p.Histogram {
		if count == 0 {
			continue
		}
		lo, hi := analysis.BucketRange(b)
		frac := float64(count) / float64(p.Accesses)
		bar := ""
		for i := 0; i < int(frac*60); i++ {
			bar += "#"
		}
		fmt.Printf("  [%7d,%7d)  %9d  %5.1f%%  %s\n", lo, hi, count, 100*frac, bar)
	}
	fmt.Println()
	fmt.Println("predicted fully-associative LRU miss rates:")
	for _, kb := range []int{8, 16, 32, 64, 256, 512} {
		lines := kb * 1024 / *line
		fmt.Printf("  %4d KB: %.4f\n", kb, p.MissRate(lines))
	}
	if ws := p.WorkingSet(0.01); ws > 0 {
		fmt.Printf("\nworking set (1%% miss target): %d lines = %d KB\n", ws, ws**line/1024)
	}
}
