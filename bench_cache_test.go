package repro_test

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/xrand"
)

// newCacheForBench builds an L1 model for the cache micro-benchmark.
func newCacheForBench(cfg config.CacheConfig) (*cache.Cache, error) {
	return cache.New(cfg, xrand.New(2))
}
