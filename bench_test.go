// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, each regenerating that artifact end to end (workload generation,
// simulation of every scenario the figure compares, and metric
// extraction), plus micro-benchmarks of the core structures.
//
// The per-figure benchmarks run at a reduced instruction budget so
// `go test -bench=.` completes in minutes; `cmd/pfexperiments` runs the
// same experiments at full scale and is what EXPERIMENTS.md records.
package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	pfilter "repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchParams is the reduced budget per figure benchmark.
func benchParams() experiments.Params {
	return experiments.Params{Instructions: 120_000, Warmup: 40_000, Seed: 1}
}

// runExperiment drives one paper artifact per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchParams()
		tab, err := e.Run(&p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTable1(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)      { runExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkBaselines(b *testing.B) { runExperiment(b, "baselines") }
func BenchmarkExtras(b *testing.B)    { runExperiment(b, "extras") }
func BenchmarkAblation(b *testing.B)  { runExperiment(b, "ablation") }
func BenchmarkTaxonomy(b *testing.B)  { runExperiment(b, "taxonomy") }
func BenchmarkEnergy(b *testing.B)    { runExperiment(b, "energy") }
func BenchmarkFilters(b *testing.B)   { runExperiment(b, "filters") }

// BenchmarkAblationIndexing compares direct vs multiplicative-hash
// indexing of the history table on one aliasing-prone workload — the
// indexing design option DESIGN.md calls out.
func BenchmarkAblationIndexing(b *testing.B) {
	for _, mode := range []struct {
		name string
		mk   func(int) (repro.Filter, error)
	}{
		{"direct", repro.NewPAFilter},
		{"hash", repro.NewHashedPAFilter},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := mode.mk(4096)
				if err != nil {
					b.Fatal(err)
				}
				run, err := repro.Simulate(repro.Options{
					Benchmark:       "gzip",
					Config:          repro.DefaultConfig(),
					Filter:          f,
					MaxInstructions: 120_000,
					Warmup:          40_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.IPC(), "IPC")
			}
		})
	}
}

// --- Micro-benchmarks of the primary structures ---------------------------

func BenchmarkHistoryTableLookup(b *testing.B) {
	ht, err := core.NewHistoryTable(4096, 2, 2, core.IndexDirect)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = ht.Predict(uint64(i))
	}
	_ = sink
}

func BenchmarkHistoryTableTrain(b *testing.B) {
	ht, _ := core.NewHistoryTable(4096, 2, 2, core.IndexDirect)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ht.Update(uint64(i), i&1 == 0)
	}
}

func BenchmarkFilterAllow(b *testing.B) {
	f, _ := core.NewPC(4096, 2, 2, core.IndexDirect)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Allow(core.Request{LineAddr: uint64(i), TriggerPC: uint64(i) * 4})
	}
}

// BenchmarkFilterPredict compares the per-prefetch decision cost of the
// pollution-filter backends: the paper's 2-bit table against the learned
// backends from internal/filter. The stream mixes lines and PCs so table
// rows and perceptron features don't degenerate onto one entry.
func BenchmarkFilterPredict(b *testing.B) {
	mk := func(kind config.FilterKind) core.Filter {
		cfg := config.Default().Filter
		cfg.Kind = kind
		f, err := pfilter.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	for _, bc := range []struct {
		name string
		f    core.Filter
	}{
		{"table-pa", mk(config.FilterPA)},
		{"perceptron", mk(config.FilterPerceptron)},
		{"bloom", mk(config.FilterBloom)},
		{"tournament", mk(config.FilterTournament)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			// Warm the structures with mixed-outcome feedback first.
			for i := uint64(0); i < 8192; i++ {
				bc.f.Train(core.Feedback{
					LineAddr:   i * 0x40,
					TriggerPC:  0x400000 + i%257*4,
					Referenced: i%3 == 0,
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc.f.Allow(core.Request{
					LineAddr:  uint64(i) * 0x40,
					TriggerPC: 0x400000 + uint64(i)%257*4,
				})
			}
		})
	}
}

// BenchmarkFilterTrain measures the eviction-time training cost per
// backend (the hierarchy pays this on every L1 eviction of a prefetched
// line).
func BenchmarkFilterTrain(b *testing.B) {
	mk := func(kind config.FilterKind) core.Filter {
		cfg := config.Default().Filter
		cfg.Kind = kind
		f, err := pfilter.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	for _, bc := range []struct {
		name string
		f    core.Filter
	}{
		{"table-pa", mk(config.FilterPA)},
		{"perceptron", mk(config.FilterPerceptron)},
		{"bloom", mk(config.FilterBloom)},
		{"tournament", mk(config.FilterTournament)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.f.Train(core.Feedback{
					LineAddr:   uint64(i) * 0x40,
					TriggerPC:  0x400000 + uint64(i)%257*4,
					Referenced: i&1 == 0,
				})
			}
		})
	}
}

func BenchmarkPrefetchQueue(b *testing.B) {
	q, _ := prefetch.NewQueue(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(prefetch.Candidate{LineAddr: uint64(i)}, uint64(i))
		if i%2 == 1 {
			q.Dequeue()
			q.Dequeue()
		}
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	recs := isa.Collect(isa.NewLimitSource(spec.New(1), 100_000), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := isa.WriteTrace(&buf, recs); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	recs := isa.Collect(isa.NewLimitSource(spec.New(1), 100_000), 0)
	var buf bytes.Buffer
	if err := isa.WriteTrace(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.ReadTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range []string{"fpppp", "mcf"} {
		b.Run(name, func(b *testing.B) {
			spec, _ := workload.ByName(name)
			src := spec.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := src.Next(); !ok {
					b.Fatal("model exhausted")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput reports simulated instructions per second
// for the whole stack (workload -> CPU -> hierarchy -> filter).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			const n = 100_000
			for i := 0; i < b.N; i++ {
				_, err := sim.Run(sim.Options{
					Benchmark:       "wave5",
					Config:          config.Default().WithFilter(kind),
					MaxInstructions: n,
					Warmup:          -1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// BenchmarkCachePressure exercises the L1 model alone under a mixed
// hit/miss stream, isolating the cache from the rest of the stack.
func BenchmarkCachePressure(b *testing.B) {
	h := xrand.New(1)
	c := config.Default().L1
	cc, err := newCacheForBench(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		la := h.Uint64n(1 << 12)
		if _, hit := cc.Lookup(la); !hit {
			cc.Insert(la)
		}
	}
}

func init() {
	// Fail fast if the experiment registry ever drifts from the
	// artifacts the benchmarks above cover. The "traces" experiment has
	// no benchmark entry: without a registered corpus it renders a
	// note-only table, so there is nothing stable to time here.
	if got := len(experiments.All()); got != 31 {
		panic(fmt.Sprintf("bench harness out of date: %d experiments registered", got))
	}
}

// BenchmarkGeneratorObserve measures the per-access decision cost of
// every registered prefetch generator (internal/prefetch registry) on a
// mixed demand stream: a strided component so the local-delta and
// stride tables train, an irregular component so correlation and GHB
// chains churn, and a hit/miss mix so the latency and shadow tables see
// both edges. Pairs with BenchmarkFilterPredict: generator cost on one
// side of the pipeline, filter cost on the other.
func BenchmarkGeneratorObserve(b *testing.B) {
	for _, kind := range prefetch.Sweepable() {
		b.Run(kind, func(b *testing.B) {
			l2, err := cache.New(config.Default().L2, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			// WithGenerator fills the generator's default table budgets;
			// Default() leaves zoo fields unset to keep canonical
			// encodings stable.
			pcfg := config.Default().WithGenerator(config.PrefetchKind(kind)).Prefetch
			p, err := prefetch.New(config.PrefetchKind(kind), pcfg, prefetch.Env{L2: l2})
			if err != nil {
				b.Fatal(err)
			}
			emit := func(prefetch.Candidate) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := uint64(i)
				ev := prefetch.Event{
					PC:       0x400000 + n%257*4,
					LineAddr: 1<<20 + n%8 + n/8*(1+n%3),
					Cycle:    n * 4,
					L1Hit:    n%4 == 0,
					L2Hit:    n%4 == 1,
				}
				p.Observe(ev, emit)
			}
		})
	}
}
