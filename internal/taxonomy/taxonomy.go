// Package taxonomy implements the full prefetch classification of
// Srinivasan, Davidson and Tyson, "A Prefetch Taxonomy" (the paper's
// reference [17]).
//
// The paper deliberately simplifies this taxonomy to a two-way good/bad
// split because the full version "requires many additional bits to keep
// track of the replaced cache line and reference order for both replaced
// and prefetched cache line" (§3). This package implements what the
// hardware-simplified version leaves out, as simulator instrumentation:
// it tracks, for every prefetch, both whether the prefetched line was
// used and whether the line it displaced would have been used again, and
// derives the taxonomy classes:
//
//	Useful:      prefetched line referenced; victim not re-referenced.
//	             Pure win — a miss was converted into a hit for free.
//	Polluting:   prefetched line never referenced; victim re-referenced.
//	             Pure loss — the prefetch manufactured a miss.
//	Conflicting: prefetched line referenced, but the victim was also
//	             re-referenced. The prefetch traded one miss for another.
//	Useless:     neither the prefetched line nor the victim was touched
//	             again. No miss impact, pure traffic.
//
// Classification resolves lazily: a prefetch's class is decided when both
// its line and its victim have left the observation window (or at Finish).
// The tracker is pure instrumentation — it never affects timing — and the
// taxonomy experiment uses it to show how the paper's 2-way split maps
// onto the 4-way ground truth.
package taxonomy

import "fmt"

// Class is a taxonomy category.
type Class uint8

// The four taxonomy classes plus Pending (not yet resolved).
const (
	Pending Class = iota
	Useful
	Polluting
	Conflicting
	Useless
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Pending:
		return "pending"
	case Useful:
		return "useful"
	case Polluting:
		return "polluting"
	case Conflicting:
		return "conflicting"
	case Useless:
		return "useless"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Counts aggregates resolved classifications.
type Counts struct {
	Useful      uint64
	Polluting   uint64
	Conflicting uint64
	Useless     uint64
}

// Total returns all resolved prefetches.
func (c Counts) Total() uint64 {
	return c.Useful + c.Polluting + c.Conflicting + c.Useless
}

// Frac returns the fraction of total in the given class (0 when idle).
func (c Counts) Frac(class Class) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	var n uint64
	switch class {
	case Useful:
		n = c.Useful
	case Polluting:
		n = c.Polluting
	case Conflicting:
		n = c.Conflicting
	case Useless:
		n = c.Useless
	}
	return float64(n) / float64(t)
}

// GoodBad projects the taxonomy onto the paper's two-way split: good =
// prefetched line referenced (Useful + Conflicting), bad = never
// referenced (Polluting + Useless).
func (c Counts) GoodBad() (good, bad uint64) {
	return c.Useful + c.Conflicting, c.Polluting + c.Useless
}

// entry tracks one outstanding prefetch observation.
type entry struct {
	prefetchUsed bool
	prefetchDone bool // prefetched line has been evicted
	victimValid  bool // the fill displaced a valid line
	victimAddr   uint64
	victimReused bool
	victimDone   bool // victim window closed (re-fetched or timed out)
}

// Tracker observes fills, references, and evictions and resolves classes.
//
// Victim reuse detection: when a prefetch fill evicts line V, the tracker
// watches for the next demand access to V. If V is demand-missed again
// ("re-referenced after displacement"), the victim counts as reused. The
// watch closes when V is re-fetched or when `window` subsequent fills have
// passed without a reference (a displaced line whose reuse distance is
// that long would likely have been evicted anyway).
type Tracker struct {
	outstanding map[uint64]*entry   // prefetched line -> observation
	victims     map[uint64][]uint64 // victim line -> prefetched lines watching it
	// age-out bookkeeping: victim watches expire after `window` fills.
	order  []victimWatch
	window int
	fills  uint64

	Counts Counts
}

type victimWatch struct {
	victim   uint64
	prefetch uint64
	fillSeq  uint64
}

// NewTracker builds a tracker; window is the victim-reuse observation
// horizon in prefetch fills (a few hundred approximates L1 residency).
func NewTracker(window int) (*Tracker, error) {
	if window <= 0 {
		return nil, fmt.Errorf("taxonomy: window must be positive, got %d", window)
	}
	return &Tracker{
		outstanding: make(map[uint64]*entry),
		victims:     make(map[uint64][]uint64),
		window:      window,
	}, nil
}

// OnPrefetchFill records that a prefetch installed lineAddr, displacing
// victim (victimValid=false for fills into empty frames).
func (t *Tracker) OnPrefetchFill(lineAddr, victim uint64, victimValid bool) {
	t.fills++
	// A previous unresolved observation for this line is finalized as if
	// evicted silently, with its victim watch closed unused, so the slot
	// can be reused without losing a classification.
	if old, ok := t.outstanding[lineAddr]; ok {
		old.prefetchDone = true
		old.victimDone = true
		t.tryResolve(lineAddr, old)
	}
	e := &entry{victimValid: victimValid, victimAddr: victim}
	t.outstanding[lineAddr] = e
	if victimValid {
		t.victims[victim] = append(t.victims[victim], lineAddr)
		t.order = append(t.order, victimWatch{victim: victim, prefetch: lineAddr, fillSeq: t.fills})
	}
	t.expire()
}

// OnDemandRef records a demand access to lineAddr. It both marks a
// prefetched line as used and detects victim reuse.
func (t *Tracker) OnDemandRef(lineAddr uint64) {
	if e, ok := t.outstanding[lineAddr]; ok {
		e.prefetchUsed = true
	}
	if watchers, ok := t.victims[lineAddr]; ok {
		for _, pf := range watchers {
			if e, live := t.outstanding[pf]; live && e.victimAddr == lineAddr && !e.victimDone {
				e.victimReused = true
				e.victimDone = true
				t.tryResolve(pf, e)
			}
		}
		delete(t.victims, lineAddr)
	}
}

// OnEvict records that a prefetched line left the cache.
func (t *Tracker) OnEvict(lineAddr uint64) {
	if e, ok := t.outstanding[lineAddr]; ok {
		e.prefetchDone = true
		t.tryResolve(lineAddr, e)
	}
}

// expire closes victim watches older than the window.
func (t *Tracker) expire() {
	for len(t.order) > 0 && t.fills-t.order[0].fillSeq > uint64(t.window) {
		w := t.order[0]
		t.order = t.order[1:]
		if e, ok := t.outstanding[w.prefetch]; ok && e.victimAddr == w.victim && !e.victimDone {
			e.victimDone = true
			t.tryResolve(w.prefetch, e)
		}
		// Remove the watcher entry.
		if ws, ok := t.victims[w.victim]; ok {
			kept := ws[:0]
			for _, pf := range ws {
				if pf != w.prefetch {
					kept = append(kept, pf)
				}
			}
			if len(kept) == 0 {
				delete(t.victims, w.victim)
			} else {
				t.victims[w.victim] = kept
			}
		}
	}
}

// tryResolve classifies when both observation legs have closed.
func (t *Tracker) tryResolve(lineAddr uint64, e *entry) {
	victimClosed := !e.victimValid || e.victimDone
	if !e.prefetchDone || !victimClosed {
		return
	}
	switch {
	case e.prefetchUsed && e.victimReused:
		t.Counts.Conflicting++
	case e.prefetchUsed:
		t.Counts.Useful++
	case e.victimReused:
		t.Counts.Polluting++
	default:
		t.Counts.Useless++
	}
	delete(t.outstanding, lineAddr)
}

// ResetCounts zeroes the resolved-class counters while keeping open
// observations alive, so counts align with a measurement window that
// starts after warmup.
func (t *Tracker) ResetCounts() { t.Counts = Counts{} }

// Outstanding returns the number of unresolved observations.
func (t *Tracker) Outstanding() int { return len(t.outstanding) }

// Finish force-resolves everything still outstanding: open prefetch lines
// count as if evicted now, open victim watches as not-reused.
func (t *Tracker) Finish() {
	for lineAddr, e := range t.outstanding {
		e.prefetchDone = true
		e.victimDone = true
		t.tryResolve(lineAddr, e)
	}
	t.victims = make(map[uint64][]uint64)
	t.order = nil
}
