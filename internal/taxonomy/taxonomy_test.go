package taxonomy

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(64)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Fatal("zero window should fail")
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Pending: "pending", Useful: "useful", Polluting: "polluting",
		Conflicting: "conflicting", Useless: "useless",
	} {
		if c.String() != want {
			t.Errorf("%d = %q, want %q", c, c.String(), want)
		}
	}
}

func TestUsefulClassification(t *testing.T) {
	tr := mk(t)
	tr.OnPrefetchFill(100, 50, true) // prefetch 100 displaces 50
	tr.OnDemandRef(100)              // prefetched line used
	tr.OnEvict(100)                  // line leaves
	tr.Finish()                      // victim watch closes unused
	if tr.Counts.Useful != 1 || tr.Counts.Total() != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestPollutingClassification(t *testing.T) {
	tr := mk(t)
	tr.OnPrefetchFill(100, 50, true)
	tr.OnDemandRef(50) // the victim is re-referenced: manufactured miss
	tr.OnEvict(100)    // prefetched line dies untouched
	if tr.Counts.Polluting != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestConflictingClassification(t *testing.T) {
	tr := mk(t)
	tr.OnPrefetchFill(100, 50, true)
	tr.OnDemandRef(100) // prefetch used…
	tr.OnDemandRef(50)  // …but the victim was wanted too
	tr.OnEvict(100)
	if tr.Counts.Conflicting != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestUselessClassification(t *testing.T) {
	tr := mk(t)
	tr.OnPrefetchFill(100, 50, true)
	tr.OnEvict(100)
	tr.Finish()
	if tr.Counts.Useless != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestFillWithoutVictim(t *testing.T) {
	tr := mk(t)
	tr.OnPrefetchFill(100, 0, false) // empty frame: no victim leg
	tr.OnDemandRef(100)
	tr.OnEvict(100)
	if tr.Counts.Useful != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestVictimWindowExpiry(t *testing.T) {
	tr, _ := NewTracker(4)
	tr.OnPrefetchFill(100, 50, true)
	tr.OnEvict(100) // prefetch leg closed, victim watch open
	// Push the victim watch past the window with other fills.
	for i := uint64(0); i < 6; i++ {
		tr.OnPrefetchFill(200+i, 0, false)
	}
	// Victim 50 referenced too late: the watch already expired, so the
	// original prefetch resolved as useless.
	tr.OnDemandRef(50)
	if tr.Counts.Useless != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

func TestGoodBadProjection(t *testing.T) {
	c := Counts{Useful: 5, Conflicting: 2, Polluting: 3, Useless: 4}
	good, bad := c.GoodBad()
	if good != 7 || bad != 7 {
		t.Fatalf("projection = %d, %d", good, bad)
	}
}

func TestFrac(t *testing.T) {
	c := Counts{Useful: 1, Polluting: 1, Conflicting: 1, Useless: 1}
	for _, cl := range []Class{Useful, Polluting, Conflicting, Useless} {
		if c.Frac(cl) != 0.25 {
			t.Fatalf("Frac(%v) = %v", cl, c.Frac(cl))
		}
	}
	if (Counts{}).Frac(Useful) != 0 {
		t.Fatal("idle frac should be 0")
	}
}

func TestFinishClosesEverything(t *testing.T) {
	tr := mk(t)
	for i := uint64(0); i < 10; i++ {
		tr.OnPrefetchFill(i, 100+i, true)
	}
	tr.OnDemandRef(3)
	tr.Finish()
	if tr.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", tr.Outstanding())
	}
	if tr.Counts.Total() != 10 {
		t.Fatalf("total = %d", tr.Counts.Total())
	}
	if tr.Counts.Useful != 1 {
		t.Fatalf("counts = %+v", tr.Counts)
	}
}

// Property: every fill resolves to exactly one class after Finish.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		tr, _ := NewTracker(16)
		fills := uint64(0)
		seen := map[uint64]bool{}
		for _, op := range ops {
			line := uint64(op % 32)
			switch op % 3 {
			case 0:
				if !seen[line] {
					tr.OnPrefetchFill(line, uint64(op%8)+100, op%2 == 0)
					seen[line] = true
					fills++
				}
			case 1:
				tr.OnDemandRef(line)
			default:
				if seen[line] {
					tr.OnEvict(line)
					seen[line] = false
				}
			}
		}
		tr.Finish()
		return tr.Counts.Total() == fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
