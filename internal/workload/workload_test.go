package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestAllTenRegistered(t *testing.T) {
	want := []string{"bh", "em3d", "perimeter", "ijpeg", "fpppp", "gcc", "wave5", "gap", "gzip", "mcf"}
	if got := PaperNames(); len(got) != 10 {
		t.Fatalf("paper names = %v", got)
	}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("registered %d benchmarks: %v", len(names), names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("presentation order broken at %d: got %v", i, names)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("mcf")
	if !ok || s.Name != "mcf" || s.Suite != "spec2000" {
		t.Fatalf("ByName(mcf) = %+v, %v", s, ok)
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("unknown benchmark should miss")
	}
}

func TestSpecsComplete(t *testing.T) {
	for _, s := range All() {
		if s.Input == "" || s.Suite == "" || s.New == nil {
			t.Errorf("%s: incomplete spec %+v", s.Name, s)
		}
		if s.PaperL1Miss <= 0 || s.PaperL1Miss >= 1 {
			t.Errorf("%s: paper L1 miss %v out of range", s.Name, s.PaperL1Miss)
		}
		if s.PaperL2Miss < 0 || s.PaperL2Miss >= 1 {
			t.Errorf("%s: paper L2 miss %v out of range", s.Name, s.PaperL2Miss)
		}
	}
}

func TestModelsEmitValidRecords(t *testing.T) {
	for _, s := range All() {
		src := s.New(1)
		for i := 0; i < 20000; i++ {
			rec, ok := src.Next()
			if !ok {
				t.Fatalf("%s: model exhausted at %d (models must be infinite)", s.Name, i)
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("%s record %d: %v (%+v)", s.Name, i, err, rec)
			}
			if rec.Op.IsMem() && rec.Addr == 0 {
				t.Fatalf("%s record %d: memory op with zero address", s.Name, i)
			}
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	for _, s := range All() {
		a := isa.Collect(s.New(7), 5000)
		b := isa.Collect(s.New(7), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: seed-7 streams diverge at record %d", s.Name, i)
			}
		}
	}
}

func TestModelsSeedSensitive(t *testing.T) {
	for _, s := range All() {
		a := isa.Collect(s.New(1), 2000)
		b := isa.Collect(s.New(2), 2000)
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		// Loop-structure records coincide, but the streams must differ.
		if same == len(a) {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", s.Name)
		}
	}
}

// TestPropertyDeterministicPrefix: any prefix of any model is a function
// of (name, seed) only.
func TestPropertyDeterministicPrefix(t *testing.T) {
	specs := All()
	f := func(seed uint64, pick uint8, nRaw uint16) bool {
		s := specs[int(pick)%len(specs)]
		n := int(nRaw)%1000 + 1
		a := isa.Collect(s.New(seed), n)
		b := isa.Collect(s.New(seed), n)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionMix(t *testing.T) {
	for _, s := range All() {
		var mem, branch, total int
		src := s.New(3)
		for i := 0; i < 50000; i++ {
			rec, _ := src.Next()
			total++
			if rec.Op.IsMem() {
				mem++
			}
			if rec.Op == isa.OpBranch {
				branch++
			}
		}
		memFrac := float64(mem) / float64(total)
		brFrac := float64(branch) / float64(total)
		if memFrac < 0.15 || memFrac > 0.75 {
			t.Errorf("%s: memory fraction %.2f outside a plausible program mix", s.Name, memFrac)
		}
		if brFrac < 0.01 || brFrac > 0.35 {
			t.Errorf("%s: branch fraction %.2f outside a plausible program mix", s.Name, brFrac)
		}
	}
}

func TestSoftwarePrefetchPresence(t *testing.T) {
	// The compiler inserts prefetches in the regular codes; pointer codes
	// get none (the paper notes software prefetches are few but accurate).
	wantSW := map[string]bool{
		"ijpeg": true, "fpppp": true, "wave5": true,
		"bh": false, "em3d": false, "perimeter": false, "mcf": false, "gcc": false,
	}
	for name, want := range wantSW {
		s, _ := ByName(name)
		src := s.New(1)
		found := false
		for i := 0; i < 30000; i++ {
			rec, _ := src.Next()
			if rec.Op == isa.OpPrefetch {
				found = true
				break
			}
		}
		if found != want {
			t.Errorf("%s: software prefetch presence = %v, want %v", name, found, want)
		}
	}
}

func TestDepLoadsPresentInPointerCodes(t *testing.T) {
	for _, name := range []string{"bh", "em3d", "perimeter", "mcf", "gcc"} {
		s, _ := ByName(name)
		src := s.New(1)
		deps := 0
		for i := 0; i < 20000; i++ {
			rec, _ := src.Next()
			if rec.Dep {
				deps++
			}
		}
		if deps == 0 {
			t.Errorf("%s: pointer code should carry dependent loads", name)
		}
	}
}

func TestPCsLandInTextSegment(t *testing.T) {
	for _, s := range All() {
		src := s.New(1)
		for i := 0; i < 5000; i++ {
			rec, _ := src.Next()
			if rec.PC < defaultPCBase || rec.PC > defaultPCBase+1<<24 {
				t.Fatalf("%s: PC %#x outside the synthetic text segment", s.Name, rec.PC)
			}
		}
	}
}

func TestStaticFootprintIsRich(t *testing.T) {
	// The ctx mechanism must produce hundreds of distinct static PCs —
	// the PC-based filter's behaviour depends on it. (The micro models
	// are deliberately tiny kernels and are exempt.)
	for _, s := range Paper() {
		src := s.New(1)
		pcs := map[uint64]struct{}{}
		for i := 0; i < 100000; i++ {
			rec, _ := src.Next()
			pcs[rec.PC] = struct{}{}
		}
		if len(pcs) < 300 {
			t.Errorf("%s: only %d static PCs; models need realistic code footprints", s.Name, len(pcs))
		}
	}
}

func TestRegionWrap(t *testing.T) {
	r := Region{Base: 0x1000, Size: 64}
	if r.At(0) != 0x1000 || r.At(63) != 0x103f {
		t.Fatal("At within region wrong")
	}
	if r.At(64) != 0x1000 || r.At(65) != 0x1001 {
		t.Fatal("At must wrap at the region size")
	}
	if r.Lines() != 2 {
		t.Fatalf("Lines = %d", r.Lines())
	}
	if r.Line(2) != 0x1000 {
		t.Fatal("Line must wrap")
	}
}

func TestStagger(t *testing.T) {
	a, b := stagger(0x1000_0000, 1), stagger(0x1000_0000, 2)
	if a == b {
		t.Fatal("distinct slots must stagger differently")
	}
	if (a-b)%LineBytes != 0 {
		t.Fatal("stagger must stay line-aligned")
	}
	if a%8192 == b%8192 {
		t.Fatal("stagger must break 8KB set alignment")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	register(Spec{Name: "mcf"})
}

func TestEmitterPCStability(t *testing.T) {
	e := &E{pcBase: defaultPCBase}
	e.SetCtx(0)
	if e.PC(5) != defaultPCBase+5*4 {
		t.Fatalf("ctx 0 PC = %#x", e.PC(5))
	}
	e.ctx = 2
	if e.PC(5) != defaultPCBase+(2*ctxStride+5)*4 {
		t.Fatalf("ctx 2 PC = %#x", e.PC(5))
	}
}
