// Olden benchmark models: bh, em3d, perimeter — the pointer-intensive
// codes. Their hardware prefetches are largely wasted (next-line and
// shadow prefetches rarely predict pointer dereferences), which is exactly
// the cache-pollution source the paper's filter targets.
package workload

import "repro/internal/isa"

func init() {
	register(Spec{
		Name:        "bh",
		Suite:       "olden",
		Input:       "2048 bodies",
		PaperL1Miss: 0.0464,
		PaperL2Miss: 0.0026,
		New:         newBH,
	})
	register(Spec{
		Name:        "em3d",
		Suite:       "olden",
		Input:       "100 nodes 10 arity 10K iter",
		PaperL1Miss: 0.2161,
		PaperL2Miss: 0.0001,
		New:         newEM3D,
	})
	register(Spec{
		Name:        "perimeter",
		Suite:       "olden",
		Input:       "12 levels",
		PaperL1Miss: 0.0478,
		PaperL2Miss: 0.2709,
		New:         newPerimeter,
	})
}

// --- bh: Barnes-Hut N-body ------------------------------------------------
//
// Shape: a sequential sweep over the body array, and for each body an
// octree walk whose upper levels are hot (shared across bodies) and whose
// lower levels scatter over the node pool. Force accumulation runs on
// stack locals between node visits.

func newBH(seed uint64) isa.Source {
	const (
		bodyBytes = 32
		numBodies = 2048
		nodeSlot  = 128  // allocation pitch: 64B payload + cold fields
		numNodes  = 2560 // ~320KB node pool
		hotNodes  = 48   // top-of-tree nodes, effectively L1-resident
		walkDepth = 8
		hotDepth  = 7 // first levels of each walk touch hot nodes
		localsPer = 9 // stack accesses per node visit (force accumulation)
	)
	bodies := Region{Base: stagger(heapBase, 1), Size: numBodies * bodyBytes}
	nodes := Region{Base: stagger(heap2Base, 2), Size: numNodes * nodeSlot}
	stack := Region{Base: stagger(stackBase, 3), Size: 4096}

	body := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(32)
		// Load the body (two lines).
		base := bodies.At(body * bodyBytes)
		e.Load(0, base)
		e.Load(1, base+8)
		e.ALUBlock(2, 4)

		node := uint64(0)
		for d := 0; d < walkDepth; d++ {
			var addr uint64
			if d < hotDepth {
				// Upper tree: hot, small set.
				node = node*3 + 1 + e.Rng.Uint64n(2)
				addr = nodes.At((node % hotNodes) * nodeSlot)
			} else {
				// Lower tree: scattered over the full pool.
				node = node*7 + e.Rng.Uint64n(numNodes)
				addr = nodes.At((node % numNodes) * nodeSlot)
			}
			e.DepLoad(10+uint64(d), addr)
			if d >= hotDepth {
				e.Load(20+uint64(d), addr+32) // mass/quad moments half
			}
			// Force computation on locals.
			for l := 0; l < localsPer; l++ {
				if l%2 == 0 {
					e.Load(30+uint64(l), stack.At(uint64(l)*8))
				} else {
					e.ALU(40 + uint64(l))
				}
			}
			e.ALUBlock(50, 3)
			e.CondBranch(60, 0.75) // open/accept cell decision
		}
		// Update the body.
		e.Store(70, base)
		e.Store(71, base+16)
		e.ALUBlock(72, 3)
		e.LoopBranch(80, true)

		body = (body + 1) % numBodies
	})
}

// --- em3d: electromagnetic wave propagation --------------------------------
//
// Shape: iterate over E-nodes; each update reads `arity` scattered
// neighbour H-nodes. The node pool exceeds the L1 by ~32x but sits well
// inside the L2, giving Table 2's very high L1 / near-zero L2 miss pair.

func newEM3D(seed uint64) isa.Source {
	const (
		nodeSlot = 128  // 64B payload + cold graph metadata
		numNodes = 2048 // 256KB across both node classes
		arity    = 10
		// hotSpan is the window of recently placed neighbours; graph
		// placement gives roughly half the neighbour list spatial locality.
		hotSpan = 96
	)
	nodesE := Region{Base: stagger(heapBase, 1), Size: numNodes * nodeSlot / 2}
	nodesH := Region{Base: stagger(heap2Base, 2), Size: numNodes * nodeSlot / 2}
	stack := Region{Base: stagger(stackBase, 3), Size: 2048}

	node := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(32)
		// Node header: value + neighbour list pointer.
		base := nodesE.At(node * nodeSlot)
		e.Load(0, base)
		e.Load(1, base+8)
		for n := 0; n < arity; n++ {
			// Neighbour pointers were loaded from the list: serialized.
			// Placement locality keeps half the list near the node; the
			// rest scatters over the whole H-node pool.
			var nb uint64
			if n%10 < 7 {
				nb = (node + e.Rng.Uint64n(hotSpan)) % (numNodes / 2)
			} else {
				nb = e.Rng.Uint64n(numNodes / 2)
			}
			e.DepLoad(10+uint64(n), nodesH.At(nb*nodeSlot))
			e.Load(20+uint64(n), nodesH.At(nb*nodeSlot+32)) // value + coeff halves
			// Accumulate into locals.
			e.Load(30+uint64(n), stack.At(uint64(n)*8))
			e.Load(60+uint64(n), stack.At(uint64(n)*8+128))
			e.ALU(50 + uint64(n))
			e.ALU(70 + uint64(n))
		}
		e.Store(70, base)
		e.ALUBlock(71, 2)
		e.LoopBranch(80, true)

		node = (node + 1) % (numNodes / 2)
	})
}

// --- perimeter: quadtree image perimeter ----------------------------------
//
// Shape: depth-first traversal of a quadtree far larger than the L2. The
// traversal works subtree by subtree — a warm subtree window gives the L2
// its partial locality (Table 2: 27% local miss) — while the recursion
// stack stays L1-resident and supplies most of the demand accesses.

func newPerimeter(seed uint64) isa.Source {
	const (
		nodeSlot     = 64      // 32B node + allocator padding/cold fields
		numNodes     = 1 << 16 // 64K nodes = 4MB, 8x the L2
		windowNodes  = 1 << 12 // 4K-node subtree window = 256KB
		visitsPerWin = 5 * windowNodes
		localsPer    = 36
	)
	nodes := Region{Base: stagger(heapBase, 1), Size: numNodes * nodeSlot}
	stack := Region{Base: stagger(stackBase, 2), Size: 4096}

	window := uint64(0)
	visits := 0
	return newGen(seed, func(e *E) {
		e.SetCtx(32)
		if visits >= visitsPerWin {
			visits = 0
			window = e.Rng.Uint64n(numNodes / windowNodes)
		}
		visits++

		// Visit one node within the current subtree window, then one of
		// its children — allocated adjacently, so child visits run through
		// the following cache lines.
		idx := window*windowNodes + e.Rng.Uint64n(windowNodes)
		e.DepLoad(0, nodes.At(idx*nodeSlot))
		e.CondBranch(1, 0.6) // leaf / internal decision
		e.DepLoad(2, nodes.At((idx+1)*nodeSlot))
		// Recursion bookkeeping on the stack.
		for l := 0; l < localsPer; l++ {
			switch l % 3 {
			case 0:
				e.Load(10+uint64(l), stack.At(uint64(l)*8))
			case 1:
				e.Store(30+uint64(l), stack.At(uint64(l)*8))
			default:
				e.ALU(50 + uint64(l))
			}
		}
		e.ALUBlock(70, 4)
		e.LoopBranch(80, true)
	})
}
