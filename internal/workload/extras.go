// Extra workload models beyond the paper's ten benchmarks:
//
//   - stream: pure sequential sweeps (STREAM-triad-like) — the best case
//     for next-sequence prefetching, worst case for over-filtering.
//   - random: uniform random loads over a large region — every hardware
//     prefetch is useless, the best case for filtering.
//   - phased: alternates between the two on a long period. This is the
//     workload the static-vs-dynamic argument of §2 needs: a profile
//     collected during one phase is wrong for the other, while the
//     dynamic history table re-trains at every transition.
//
// They are registered in the same registry as the paper benchmarks (so
// pfsim/pftrace can use them by name) but are not part of workload.All's
// leading ten and are excluded from the paper-figure experiments.
package workload

import "repro/internal/isa"

func init() {
	register(Spec{
		Name:        "stream",
		Suite:       "micro",
		Input:       "synthetic triad",
		PaperL1Miss: 0.125, // analytic: one 32B line miss per 4 8B elements, 2 refs each
		PaperL2Miss: 0.01,
		New:         newStream,
	})
	register(Spec{
		Name:        "random",
		Suite:       "micro",
		Input:       "uniform 8MB",
		PaperL1Miss: 0.5, // analytic: the random load always misses; locals hit
		PaperL2Miss: 0.9,
		New:         newRandom,
	})
	register(Spec{
		Name:        "phased",
		Suite:       "micro",
		Input:       "stream/random alternating",
		PaperL1Miss: 0.3,
		PaperL2Miss: 0.4,
		New:         newPhased,
	})
}

// --- stream: a[i] = b[i] + s*c[i] over L2-resident arrays -------------------

func newStream(seed uint64) isa.Source {
	const (
		arrayBytes = 96 * 1024
		elemBytes  = 8
	)
	a := Region{Base: stagger(heapBase, 1), Size: arrayBytes}
	b := Region{Base: stagger(heap2Base, 2), Size: arrayBytes}
	c := Region{Base: stagger(heap3Base, 3), Size: arrayBytes}

	pos := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(16)
		off := pos * elemBytes
		e.Load(0, b.At(off))
		e.Load(1, c.At(off))
		e.ALUBlock(2, 2)
		e.Store(4, a.At(off))
		e.LoopBranch(10, true)
		pos = (pos + 1) % (arrayBytes / elemBytes)
	})
}

// --- random: uniform loads over a region far larger than the L2 -------------

func newRandom(seed uint64) isa.Source {
	const regionBytes = 8 << 20
	data := Region{Base: stagger(heapBase, 1), Size: regionBytes}
	stack := Region{Base: stagger(stackBase, 2), Size: 1024}

	return newGen(seed, func(e *E) {
		e.SetCtx(16)
		e.DepLoad(0, data.Line(e.Rng.Uint64n(data.Lines())))
		e.Load(1, stack.At(e.Rng.Uint64n(64)*8))
		e.ALUBlock(2, 2)
		e.LoopBranch(10, true)
	})
}

// --- phased: long alternating stream/random phases ---------------------------

// phasedPeriod is the number of rounds per phase; long enough that each
// phase dominates several filter-training lifetimes.
const phasedPeriod = 60_000

func newPhased(seed uint64) isa.Source {
	const (
		arrayBytes  = 96 * 1024
		elemBytes   = 8
		regionBytes = 8 << 20
	)
	a := Region{Base: stagger(heapBase, 1), Size: arrayBytes}
	b := Region{Base: stagger(heap2Base, 2), Size: arrayBytes}
	data := Region{Base: stagger(heap3Base, 3), Size: regionBytes}
	stack := Region{Base: stagger(stackBase, 4), Size: 1024}

	round := uint64(0)
	pos := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(16)
		if (round/phasedPeriod)%2 == 0 {
			// Streaming phase: prefetches are good; the filter must let
			// them through.
			off := pos * elemBytes
			e.Load(0, b.At(off))
			e.ALUBlock(1, 2)
			e.Store(3, a.At(off))
			pos = (pos + 1) % (arrayBytes / elemBytes)
		} else {
			// Random phase: prefetches are useless; the filter must shut
			// them off.
			e.DepLoad(32, data.Line(e.Rng.Uint64n(data.Lines())))
			e.Load(33, stack.At(e.Rng.Uint64n(64)*8))
			e.ALUBlock(34, 2)
		}
		e.LoopBranch(60, true)
		round++
	})
}
