// SPEC2000 benchmark models: gap, gzip, mcf — the large-footprint codes
// whose working sets overflow the L2 (Table 2 shows 22-32% local L2 miss
// rates), so bad prefetches on these benchmarks burn scarce memory
// bandwidth as well as L1 frames.
package workload

import "repro/internal/isa"

func init() {
	register(Spec{
		Name:        "gap",
		Suite:       "spec2000",
		Input:       "ref.in",
		PaperL1Miss: 0.0409,
		PaperL2Miss: 0.2247,
		New:         newGap,
	})
	register(Spec{
		Name:        "gzip",
		Suite:       "spec2000",
		Input:       "input.graphic",
		PaperL1Miss: 0.0597,
		PaperL2Miss: 0.3176,
		New:         newGzip,
	})
	register(Spec{
		Name:        "mcf",
		Suite:       "spec2000",
		Input:       "inp.in",
		PaperL1Miss: 0.0648,
		PaperL2Miss: 0.2426,
		New:         newMcf,
	})
}

// --- gap: computational group theory -----------------------------------------
//
// Shape: an interpreter loop over a hot dispatch core (L1-resident), with
// bag-of-words accesses into a multi-megabyte workspace. Most references
// hit the hot head; the workspace tail misses both caches.

func newGap(seed uint64) isa.Source {
	const (
		wsBytes   = 4 << 20 // 4MB workspace, 8x the L2
		hotBytes  = 4 * 1024
		objSlot   = 128 // 64B object + cold header/padding
		coldEvery = 8   // one cold workspace burst per N interpreter steps
	)
	ws := Region{Base: stagger(heapBase, 1), Size: wsBytes}
	hot := Region{Base: stagger(heap2Base, 2), Size: hotBytes}
	stack := Region{Base: stagger(stackBase, 3), Size: 2048}

	step := uint64(0)
	wsWindow := uint64(0)
	const wsWindowObjs = 512 // 32KB active region
	return newGen(seed, func(e *E) {
		e.SetCtx(64)
		// Interpreter dispatch: hot handler table + locals.
		e.Load(0, hot.At(e.Rng.Uint64n(hotBytes/8)*8))
		e.CondBranch(1, 0.7)
		for l := uint64(0); l < 8; l++ {
			if l%2 == 0 {
				e.Load(10+l, stack.At(l*8))
			} else {
				e.ALU(20 + l)
			}
		}
		// Periodic workspace access (bag element / large integer). The
		// collector keeps an active region hot in the L2; full-workspace
		// excursions miss everything.
		if step%coldEvery == 0 {
			var obj uint64
			if e.Rng.Bool(0.85) {
				obj = (wsWindow + e.Rng.Uint64n(wsWindowObjs)) % (wsBytes / objSlot)
			} else {
				obj = e.Rng.Uint64n(wsBytes / objSlot)
			}
			if step%(coldEvery*2048) == 0 {
				wsWindow = e.Rng.Uint64n(wsBytes/objSlot - wsWindowObjs)
			}
			e.DepLoad(30, ws.At(obj*objSlot))
			e.Load(31, ws.At(obj*objSlot+32))
			e.Store(32, ws.At(obj*objSlot))
		}
		e.ALUBlock(40, 4)
		e.LoopBranch(50, true)
		step++
	})
}

// --- gzip: LZ77 compression ----------------------------------------------------
//
// Shape: a sequential input stream that is fresh memory (misses the L2 —
// the source of Table 2's 32% L2 miss rate), a 32KB sliding window probed
// at match candidates (L1 misses, L2 hits), and a hash head table.

func newGzip(seed uint64) isa.Source {
	const (
		streamBytes = 24 << 20 // long input, touched once
		windowBytes = 32 * 1024
		hashBytes   = 64 * 1024
		outBytes    = 16 << 20 // compressed output, written once
	)
	stream := Region{Base: stagger(heapBase, 1), Size: streamBytes}
	hashes := Region{Base: stagger(heap2Base, 2), Size: hashBytes}
	window := Region{Base: stagger(heap3Base, 3), Size: windowBytes}
	out := Region{Base: stagger(heap3Base+0x0100_0000, 4), Size: outBytes}
	stack := Region{Base: stagger(stackBase, 5), Size: 2048}

	pos := uint64(0)
	outPos := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(64)
		// Read the next input bytes (sequential; one miss per line).
		e.Load(0, stream.At(pos))
		// Hash-head lookup for the current trigram: common trigrams keep a
		// hot head resident, rare ones scatter across the table.
		var h uint64
		if e.Rng.Bool(0.7) {
			h = e.Rng.Uint64n(2048 / 8)
		} else {
			h = e.Rng.Uint64n(hashBytes / 8)
		}
		e.Load(1, hashes.At(h*8))
		// Probe up to two match candidates: matches cluster in the most
		// recent stretch of the window, occasionally reaching far back.
		for m := uint64(0); m < 2; m++ {
			var cand uint64
			if e.Rng.Bool(0.8) {
				cand = (pos + windowBytes - 2048 + e.Rng.Uint64n(2048)) % windowBytes
			} else {
				cand = e.Rng.Uint64n(windowBytes)
			}
			e.DepLoad(10+m, window.At(cand))
			e.CondBranch(20+m, 0.4) // match length comparison
		}
		// Output/bookkeeping on locals (bit packing, length counters).
		for l := uint64(0); l < 39; l++ {
			if l%2 == 0 {
				e.Load(30+l, stack.At(l*8))
			} else {
				e.ALU(40 + l)
			}
		}
		e.Store(50, hashes.At(h*8))
		if pos%32 < 16 {
			e.Store(52, out.At(outPos))
			outPos += 12
		}
		e.ALUBlock(53, 3)
		e.LoopBranch(60, true)

		pos += 16 // consume input
	})
}

// --- mcf: single-depot vehicle scheduling ----------------------------------------
//
// Shape: the network-simplex pricing loop — serialized pointer chasing
// over a multi-megabyte arc array with a smaller node array, the canonical
// memory-latency-bound SPEC benchmark. Hardware prefetches almost never
// guess the next arc.

func newMcf(seed uint64) isa.Source {
	const (
		arcBytes  = 3 << 20 // 3MB of arcs
		arcSlot   = 128     // 64B arc struct + alignment padding
		numArcs   = arcBytes / arcSlot
		nodeBytes = 512 * 1024
		nodeSize  = 64
		// The pricing loop scans a basis window of arcs repeatedly before
		// moving on; the window supplies the L2 its partial locality.
		windowArcs   = 2048 // 256KB of 128B slots
		visitsPerWin = 16 * windowArcs
		localsPer    = 40
	)
	arcs := Region{Base: stagger(heapBase, 1), Size: arcBytes}
	nodesR := Region{Base: stagger(heap2Base, 2), Size: nodeBytes}
	stack := Region{Base: stagger(stackBase, 3), Size: 2048}

	window := uint64(0)
	visits := 0
	return newGen(seed, func(e *E) {
		e.SetCtx(48)
		if visits >= visitsPerWin {
			visits = 0
			window = e.Rng.Uint64n(numArcs / windowArcs)
		}
		visits++

		// Chase into the arc basis: mostly within the active window, with
		// excursions across the whole network. Some iterations work purely
		// on node potentials and temporaries.
		if e.Rng.Bool(0.5) {
			var arc uint64
			if e.Rng.Bool(0.85) {
				arc = window*windowArcs + e.Rng.Uint64n(windowArcs)
			} else {
				arc = e.Rng.Uint64n(numArcs)
			}
			e.DepLoad(0, arcs.At(arc*arcSlot))
			e.Load(1, arcs.At(arc*arcSlot+32)) // cost/ident in the second half
			e.ALUBlock(10, 2)
		}
		// Touch the endpoint's node: the active basis nodes stay hot.
		var n uint64
		if e.Rng.Bool(0.85) {
			n = e.Rng.Uint64n(1024 / nodeSize) // hot potentials, L1-resident
		} else {
			n = e.Rng.Uint64n(nodeBytes / nodeSize)
		}
		e.DepLoad(20, nodesR.At(n*nodeSize))
		e.CondBranch(21, 0.6) // reduced-cost test
		// Locals: potentials, flow temporaries.
		for l := uint64(0); l < localsPer; l++ {
			switch l % 3 {
			case 0:
				e.Load(30+l, stack.At(l*8))
			case 1:
				e.ALU(50 + l)
			default:
				e.ALU(70 + l)
			}
		}
		e.Store(90, stack.At(64))
		e.ALUBlock(91, 2)
		e.LoopBranch(99, true)
	})
}
