// SPEC95 benchmark models: ijpeg, fpppp, gcc, wave5.
//
// ijpeg, fpppp and wave5 carry the regular, compiler-prefetchable access
// patterns (block-strided and sequential sweeps) where hardware
// next-sequence prefetching earns its keep; gcc is the irregular, branchy
// control-code counterpoint whose prefetches the paper observes to be
// mostly ineffective.
package workload

import (
	"repro/internal/isa"
	"repro/internal/xrand"
)

func init() {
	register(Spec{
		Name:        "ijpeg",
		Suite:       "spec95",
		Input:       "penguin.ppm",
		PaperL1Miss: 0.0565,
		PaperL2Miss: 0.0235,
		New:         newIJpeg,
	})
	register(Spec{
		Name:        "fpppp",
		Suite:       "spec95",
		Input:       "natoms.in",
		PaperL1Miss: 0.0807,
		PaperL2Miss: 0.0003,
		New:         newFpppp,
	})
	register(Spec{
		Name:        "gcc",
		Suite:       "spec95",
		Input:       "cp-decl.i",
		PaperL1Miss: 0.0551,
		PaperL2Miss: 0.0221,
		New:         newGCC,
	})
	register(Spec{
		Name:        "wave5",
		Suite:       "spec95",
		Input:       "wave5.in",
		PaperL1Miss: 0.1387,
		PaperL2Miss: 0.0209,
		New:         newWave5,
	})
}

// --- ijpeg: JPEG compression ------------------------------------------------
//
// Shape: 8x8 pixel blocks pulled from a row-strided image, a DCT-like
// compute burst on locals, quantization against a hot table, and a
// sequential output stream. The compiler inserts prefetches for the next
// block's rows (regular, accurate). A fraction of blocks re-reads a
// recently processed reference block (motion of the working set keeps some
// L2 locality).

func newIJpeg(seed uint64) isa.Source {
	const (
		srcBytes   = 4 << 20    // raw input scanned once per pass (misses L2)
		imageBytes = 256 * 1024 // working image; mostly L2-resident
		rowStride  = 1024       // bytes between vertically adjacent pixels
		blockSize  = 8
		localsPer  = 9
		pfDistance = 2 // blocks ahead in the inner (X) loop
	)
	image := Region{Base: stagger(heapBase, 1), Size: imageBytes}
	src := Region{Base: stagger(heapBase+0x0800_0000, 5), Size: srcBytes}
	out := Region{Base: stagger(heap2Base, 2), Size: imageBytes / 2}
	quant := Region{Base: stagger(heap3Base, 3), Size: 2048}
	stack := Region{Base: stagger(stackBase, 4), Size: 4096}

	blockX, blockY := uint64(0), uint64(0)
	outPos := uint64(0)
	srcPos := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(64)
		base := blockY*blockSize*rowStride + blockX*blockSize
		// Fetch the block, row by row.
		for r := uint64(0); r < blockSize; r++ {
			rowAddr := image.At(base + r*rowStride)
			e.Load(0+r, rowAddr)
			e.Load(8+r, rowAddr+8)
			// Compiler-inserted prefetch: same rows, two blocks ahead in
			// the inner loop (short, accurate distance).
			if r == 0 {
				e.SoftPF(16, image.At(base+pfDistance*blockSize))
			}
			// Per-row compute on locals.
			for l := 0; l < localsPer; l++ {
				if l%3 == 0 {
					e.Load(20+uint64(l), stack.At(uint64(l)*8))
				} else {
					e.ALU(30 + uint64(l))
				}
			}
		}
		// DCT/quantization burst.
		e.ALUBlock(40, 20)
		for q := uint64(0); q < 8; q++ {
			e.Load(60+q, quant.At(q*32))
			e.ALU(70 + q)
		}
		// Entropy-coded output, sequential.
		for w := uint64(0); w < 4; w++ {
			e.Store(80+w, out.At(outPos))
			outPos += 8
		}
		// Pull fresh raw pixels from the scanned input file.
		e.Load(85, src.At(srcPos))
		srcPos += 6
		e.CondBranch(90, 0.65) // coefficient significance test
		e.LoopBranch(91, true)

		blockX++
		if blockX >= rowStride/blockSize {
			blockX = 0
			blockY = (blockY + 1) % (imageBytes / (blockSize * rowStride))
		}
	})
}

// --- fpppp: quantum chemistry two-electron integrals -------------------------
//
// Shape: extremely dense floating-point compute over a working set an
// order of magnitude larger than the L1 but tiny next to the L2, swept
// almost sequentially. The enormous basic blocks of the original appear
// as long ALU bursts between memory references.

func newFpppp(seed uint64) isa.Source {
	const (
		dataBytes = 96 * 1024
		pfAhead   = 6 // lines of software prefetch distance
	)
	data := Region{Base: stagger(heapBase, 1), Size: dataBytes}
	stack := Region{Base: stagger(stackBase, 2), Size: 2048}

	line := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(48)
		addr := data.Line(line)
		e.Load(0, addr)
		e.Load(1, addr+8)
		e.SoftPF(2, data.Line(line+pfAhead))
		// Long FP burst with register/stack traffic.
		for l := uint64(0); l < 9; l++ {
			e.Load(10+l, stack.At(l*8))
			e.ALUBlock(20+l*3, 3)
		}
		e.Store(40, addr+16)
		e.ALUBlock(41, 6)
		e.LoopBranch(50, true)

		line = (line + 1) % data.Lines()
	})
}

// --- gcc: compiler -----------------------------------------------------------
//
// Shape: short pointer chains over a megabyte of small heap objects with a
// Zipf-hot head, dense unpredictable branching, and little regularity —
// the benchmark whose prefetches the paper notes are "already ineffective"
// and get almost entirely filtered.

func newGCC(seed uint64) isa.Source {
	const (
		heapBytes = 352 * 1024 // parse/RTL pool; fits the L2, dwarfs the L1
		objSlot   = 64         // 32B object + allocator padding/cold fields
		chainLen  = 3
	)
	heap := Region{Base: stagger(heapBase, 1), Size: heapBytes}
	stack := Region{Base: stagger(stackBase, 2), Size: 4096}

	zipf := xrandZipf(heapBytes / objSlot)
	return newGen(seed, func(e *E) {
		e.SetCtx(96)
		// Walk a short chain of tree/rtx objects.
		for c := uint64(0); c < chainLen; c++ {
			obj := uint64(zipf.Draw(e.Rng))
			e.DepLoad(0+c, heap.At(obj*objSlot))
			e.CondBranch(10+c, 0.55) // tree-code dispatch, hard to predict
			e.ALUBlock(20+c*2, 2)
		}
		// Symbol table / local frame traffic.
		for l := uint64(0); l < 20; l++ {
			if l%2 == 0 {
				e.Load(40+l, stack.At(l*8))
			} else {
				e.ALU(50 + l)
			}
		}
		e.Store(60, stack.At(64))
		e.CondBranch(61, 0.5)
		e.LoopBranch(62, true)
	})
}

// --- wave5: plasma physics ----------------------------------------------------
//
// Shape: unit-stride sweeps over several particle/field arrays that
// together fit the L2 but dwarf the L1, with an occasional scatter phase
// indexing a larger grid — the classic vector-style code where sequential
// prefetching is highly effective.

func newWave5(seed uint64) isa.Source {
	const (
		arrays     = 6
		arrayBytes = 64 * 1024 // 6 x 64KB = 384KB total
		gridBytes  = 2 << 20   // scatter target, exceeds the L2
		elemBytes  = 8
		pfAhead    = 8
	)
	var arr [arrays]Region
	for i := range arr {
		arr[i] = Region{Base: stagger(heapBase+uint64(i)*0x0100_0000, i+1), Size: arrayBytes}
	}
	grid := Region{Base: stagger(heap3Base, 7), Size: gridBytes}
	stack := Region{Base: stagger(stackBase, 8), Size: 2048}

	pos := uint64(0)
	return newGen(seed, func(e *E) {
		e.SetCtx(48)
		off := pos * elemBytes
		// a[i] = f(b[i], c[i]) style triad across the arrays.
		e.Load(0, arr[0].At(off))
		e.Load(1, arr[1].At(off))
		e.Load(2, arr[2].At(off))
		if off%LineBytes == 0 {
			e.SoftPF(3, arr[0].At(off+pfAhead*LineBytes))
			e.SoftPF(4, arr[1].At(off+pfAhead*LineBytes))
		}
		e.Load(10, stack.At(0))
		e.Load(11, stack.At(8))
		e.ALUBlock(12, 5)
		e.Store(20, arr[3].At(off))
		// Occasional particle-to-grid scatter.
		if pos%64 == 0 {
			g := e.Rng.Uint64n(grid.Lines())
			e.Load(30, grid.Line(g))
			e.Store(31, grid.Line(g))
		}
		e.CondBranch(40, 0.8)
		e.LoopBranch(41, true)

		pos = (pos + 1) % (arrayBytes / elemBytes)
	})
}

// xrandZipf builds the shared Zipf sampler used by the irregular models:
// a skewed popularity distribution whose hot head stays cache-resident
// while the long tail generates the misses.
func xrandZipf(n int) *xrand.Zipf { return xrand.NewZipf(n, 1.25) }
