// Package workload provides the ten benchmark models the experiments run.
//
// The paper evaluates on Alpha binaries of bh, em3d, perimeter (Olden),
// ijpeg, fpppp, gcc, wave5 (SPEC95), and gap, gzip, mcf (SPEC2000). Those
// binaries and inputs are not reproducible here, so each benchmark is
// replaced by a deterministic synthetic model that emits an instruction
// trace with the same *memory-access shape* as the original: pointer
// chasing for the Olden codes and mcf, block-strided streaming for ijpeg,
// repeated dense sweeps for fpppp and wave5, branchy irregular heap access
// for gcc and gap, and a sliding-window stream for gzip. Model parameters
// (footprints, mix ratios) are tuned so the no-prefetch L1/L2 miss rates
// land near Table 2; EXPERIMENTS.md records the calibration.
//
// Every model is an infinite isa.Source: the simulator bounds the run by
// instruction count, mirroring the paper's "first 300M instructions"
// methodology. Generation is fully deterministic in the seed.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/xrand"
)

// Spec describes one benchmark model.
type Spec struct {
	// Name is the benchmark's canonical (paper) name.
	Name string
	// Suite is the originating suite: "olden", "spec95", or "spec2000".
	Suite string
	// Input mirrors Table 2's input-set column for documentation.
	Input string
	// PaperL1Miss and PaperL2Miss are Table 2's reference miss rates with
	// prefetching off (local rates), kept for calibration reports.
	PaperL1Miss float64
	PaperL2Miss float64
	// New constructs the model's infinite trace source.
	New func(seed uint64) isa.Source
}

// registry holds all models, populated by the per-suite files' init().
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate benchmark %q", s.Name))
	}
	registry[s.Name] = s
}

// RegisterExternal adds a benchmark beyond the built-in models — the
// hook trace-backed workloads (internal/tracefile) register through.
// Unlike the init-time register it reports duplicates as errors instead
// of panicking, since external corpora load at runtime from user input.
func RegisterExternal(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("workload: benchmark name must be set")
	}
	if s.New == nil {
		return fmt.Errorf("workload: benchmark %q has no source constructor", s.Name)
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("workload: benchmark %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// All returns every benchmark in the paper's presentation order.
func All() []Spec {
	order := []string{"bh", "em3d", "perimeter", "ijpeg", "fpppp", "gcc", "wave5", "gap", "gzip", "mcf"}
	out := make([]Spec, 0, len(registry))
	for _, name := range order {
		if s, ok := registry[name]; ok {
			out = append(out, s)
		}
	}
	// Append any extras (models registered beyond the paper's ten) in
	// deterministic order.
	var extra []string
	for name := range registry {
		found := false
		for _, o := range order {
			if o == name {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the benchmark names in presentation order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Paper returns only the paper's ten benchmarks, in Table 2 order —
// the set every paper-figure experiment runs on.
func Paper() []Spec {
	out := make([]Spec, 0, 10)
	for _, s := range All() {
		if s.Suite == "olden" || s.Suite == "spec95" || s.Suite == "spec2000" {
			out = append(out, s)
		}
	}
	return out
}

// PaperNames returns the paper benchmarks' names.
func PaperNames() []string {
	specs := Paper()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// ---------------------------------------------------------------------------
// Generator framework
// ---------------------------------------------------------------------------

// E is the emission context a model's round function writes records into.
// Helpers stamp synthetic PCs: every static "instruction site" in a model
// gets a distinct small integer, mapped into a code region at pcBase.
type E struct {
	buf []isa.Record
	// Rng drives every random decision of the model.
	Rng *xrand.Rand

	pcBase uint64
	ctx    uint64
}

const (
	defaultPCBase = 0x0040_0000 // synthetic text segment
	// LineBytes is the cache line size assumed when models compute
	// prefetch distances; it matches the Table 1 machines.
	LineBytes = 32
)

// ctxStride is the site-space distance between code contexts: each
// context gets its own copy of sites [0, ctxStride).
const ctxStride = 128

// SetCtx selects the active code context. Real programs reach the same
// logical loop through many static code paths — unrolled iterations,
// inlined copies, distinct call sites — so each dynamic round of a model
// draws one of k contexts, giving the trace a realistically large static
// instruction footprint (k*ctxStride sites). Without this, a PC-indexed
// predictor sees a degenerate handful of keys.
func (e *E) SetCtx(k int) {
	if k <= 0 {
		e.ctx = 0
		return
	}
	e.ctx = e.Rng.Uint64n(uint64(k))
}

// PC returns the synthetic program counter for an instruction site in the
// active context.
func (e *E) PC(site uint64) uint64 {
	return e.pcBase + (e.ctx*ctxStride+site)*isa.InstrBytes
}

// ALU emits one non-memory instruction.
func (e *E) ALU(site uint64) { e.buf = append(e.buf, isa.ALU(e.PC(site))) }

// ALUBlock emits n ALU instructions at consecutive sites starting at site,
// modeling a straight-line computation block.
func (e *E) ALUBlock(site uint64, n int) {
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, isa.ALU(e.PC(site+uint64(i))))
	}
}

// Load emits a demand load.
func (e *E) Load(site uint64, addr uint64) {
	e.buf = append(e.buf, isa.Load(e.PC(site), addr))
}

// DepLoad emits a load serialized behind the previous record (pointer
// chasing: the address came from the previous load's data).
func (e *E) DepLoad(site uint64, addr uint64) {
	e.buf = append(e.buf, isa.DepLoad(e.PC(site), addr))
}

// Store emits a demand store.
func (e *E) Store(site uint64, addr uint64) {
	e.buf = append(e.buf, isa.Store(e.PC(site), addr))
}

// SoftPF emits a compiler-inserted software prefetch.
func (e *E) SoftPF(site uint64, addr uint64) {
	e.buf = append(e.buf, isa.Prefetch(e.PC(site), addr))
}

// LoopBranch emits a backward branch (loop closing), taken unless last.
func (e *E) LoopBranch(site uint64, taken bool) {
	pc := e.PC(site)
	target := pc - 16*isa.InstrBytes
	e.buf = append(e.buf, isa.Branch(pc, target, taken))
}

// CondBranch emits a forward data-dependent branch taken with probability
// p; these are what stress the bimodal predictor.
func (e *E) CondBranch(site uint64, p float64) {
	pc := e.PC(site)
	target := pc + 8*isa.InstrBytes
	e.buf = append(e.buf, isa.Branch(pc, target, e.Rng.Bool(p)))
}

// gen adapts a per-round emission function into an infinite isa.Source.
type gen struct {
	e     *E
	round func(*E)
	pos   int
}

// newGen builds a source that repeatedly invokes round to refill its
// buffer. round must emit at least one record per call.
func newGen(seed uint64, round func(*E)) isa.Source {
	return &gen{
		e:     &E{Rng: xrand.New(seed), pcBase: defaultPCBase},
		round: round,
	}
}

// Next implements isa.Source.
func (g *gen) Next() (isa.Record, bool) {
	for g.pos >= len(g.e.buf) {
		g.e.buf = g.e.buf[:0]
		g.pos = 0
		g.round(g.e)
		if len(g.e.buf) == 0 {
			panic("workload: model round emitted no records")
		}
	}
	r := g.e.buf[g.pos]
	g.pos++
	return r, true
}

// ---------------------------------------------------------------------------
// Shared address-space layout helpers
// ---------------------------------------------------------------------------

// Region is a contiguous synthetic data region.
type Region struct {
	Base uint64
	Size uint64
}

// At returns the byte address at offset into the region (wrapped).
func (r Region) At(off uint64) uint64 { return r.Base + off%r.Size }

// Line returns the address of the i-th cache line in the region (wrapped).
func (r Region) Line(i uint64) uint64 { return r.At(i * LineBytes) }

// Lines returns how many cache lines the region spans.
func (r Region) Lines() uint64 { return r.Size / LineBytes }

// Standard bases keep models' regions disjoint from the text segment and
// from each other within a model.
const (
	heapBase  = 0x1000_0000
	heap2Base = 0x2000_0000
	heap3Base = 0x3000_0000
	stackBase = 0x7fff_0000
)

// stagger offsets a region base by a slot-specific odd number of cache
// lines. Without it, every region would start cache-size-aligned and
// same-offset accesses into different arrays would all collide in one set
// of the direct-mapped L1 — a pathological layout no real allocator
// produces.
func stagger(base uint64, slot int) uint64 {
	return base + uint64(slot)*37*LineBytes
}
