// Package frontend is the I-side of the machine: a fetch model that
// turns the retired instruction stream (synthetic workloads and PFTC
// traces alike flow through isa.Record, so both carry real PCs and
// taken-branch targets) into a cache-block instruction-fetch stream,
// plus a registry of config-constructible instruction prefetchers that
// observe that stream and emit block candidates. The hierarchy wires
// the fetch stream into an L1I beside the existing L1D→L2 path; this
// package deliberately knows nothing about caches or timing so the
// backends stay unit-testable in isolation.
package frontend

// Event is one step of the fetch-block stream: the front end crossed
// into a new instruction cache block. Same-block fetches are absorbed
// by the fetch unit and never become events.
type Event struct {
	// Block is the line-aligned address of the instruction block being
	// fetched (PC with the intra-line offset bits cleared).
	Block uint64
	// PC is the first instruction address fetched in the block — the
	// trigger PC instruction prefetchers key their tables on.
	PC uint64
	// Redirect is true when the block was entered by a control-flow
	// redirect (taken branch, or any non-sequential PC change) rather
	// than sequential fall-through from the previous block.
	Redirect bool
	// Miss is true when the block missed in the L1I; set by the
	// hierarchy before the event reaches the prefetcher.
	Miss bool
}

// Candidate is one instruction-prefetch request emitted by a backend.
type Candidate struct {
	// Block is the line-aligned address of the block to prefetch.
	Block uint64
	// TriggerPC is the fetch PC that triggered the candidate; it rides
	// into the L1I line for eviction-time filter training.
	TriggerPC uint64
	// Source names the generating backend ("nextline", "mana") for the
	// pollution filter's per-source provenance.
	Source string
}

// Prefetcher is one instruction-prefetch backend. Observe sees every
// fetch-block event in program order and may emit any number of
// candidates through emit; the hierarchy applies squash, filter, and
// queue-capacity policy downstream.
type Prefetcher interface {
	Name() string
	Observe(ev Event, emit func(Candidate))
}

// FetchUnit collapses an instruction-address stream into the
// fetch-block stream: one event per block transition, tagged with
// whether the transition was sequential or a redirect. Both the
// hierarchy (live fetch path) and the tracefile fetch-stream adapter
// embed one so synthetic and trace-driven streams agree by
// construction.
type FetchUnit struct {
	offBits  uint
	curBlock uint64
	live     bool
}

// NewFetchUnit returns a fetch unit for the given instruction-cache
// line size, which must be a power of two.
func NewFetchUnit(lineBytes int) FetchUnit {
	bits := uint(0)
	for b := lineBytes; b > 1; b >>= 1 {
		bits++
	}
	return FetchUnit{offBits: bits}
}

// Step advances the fetch unit to pc. It returns the line-aligned
// block address, whether the fetch crossed into a new block (only then
// does the front end touch the L1I), and whether the crossing was a
// redirect rather than sequential fall-through.
//
//pflint:hotpath
func (u *FetchUnit) Step(pc uint64) (block uint64, newBlock, redirect bool) {
	b := pc >> u.offBits
	if u.live && b == u.curBlock {
		return b << u.offBits, false, false
	}
	redirect = u.live && b != u.curBlock+1
	u.curBlock = b
	u.live = true
	return b << u.offBits, true, redirect
}

// Reset clears the fetch unit to its initial (no current block) state;
// the next Step always reports a new block.
func (u *FetchUnit) Reset() {
	u.live = false
	u.curBlock = 0
}
