// The instruction-prefetcher registry: named, config-constructible
// I-side backends, mirroring internal/prefetch's registry for the
// D-side generator zoo. Backends are built from a validated
// config.FrontendConfig via New; the registry is open so tests and
// downstream code can add experimental backends, and the
// "fetch-directed" alias resolves to "nextline" so either spelling
// builds the same machine.
package frontend

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/config"
)

// Constructor builds one instruction prefetcher from a front-end
// configuration.
type Constructor func(cfg config.FrontendConfig) (Prefetcher, error)

var (
	regMu    sync.RWMutex
	registry = map[config.IPrefetchKind]Constructor{}
)

// Register adds (or replaces) a backend constructor under kind. The
// canonical form of the kind is registered, so aliases resolve to the
// same constructor.
func Register(kind config.IPrefetchKind, ctor Constructor) {
	if ctor == nil {
		panic("frontend: nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[kind.Canonical()] = ctor
}

// Registered reports whether kind (or its canonical form) has a
// registered constructor.
func Registered(kind config.IPrefetchKind) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[kind.Canonical()]
	return ok
}

// Kinds returns every registered backend kind, sorted. Aliases
// (fetch-directed) are not listed; they resolve to their canonical
// kinds.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	//pflint:allow determinism/maprange key collection; the result is sorted below
	for k := range registry {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// New builds the backend kind names from cfg. An unregistered kind
// reports the registered alternatives.
func New(kind config.IPrefetchKind, cfg config.FrontendConfig) (Prefetcher, error) {
	regMu.RLock()
	ctor, ok := registry[kind.Canonical()]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("frontend: no registered instruction prefetcher for kind %q (registered: %v)", kind, Kinds())
	}
	return ctor(cfg)
}

// Sweepable returns the registered kinds that can run end-to-end in
// one pass — for instruction prefetchers that is all of them. This is
// the backend list "-iprefetch all" and the serving layer's iprefetch
// dimension expand to.
func Sweepable() []string {
	return Kinds()
}

func init() {
	Register(config.IPrefetchNextLine, func(cfg config.FrontendConfig) (Prefetcher, error) {
		return NewNextLine(cfg.Degree, cfg.L1I.LineBytes)
	})
	Register(config.IPrefetchMANA, func(cfg config.FrontendConfig) (Prefetcher, error) {
		return NewMANA(cfg.ManaRecordsLog2, cfg.ManaRegionLog2, cfg.Degree, cfg.L1I.LineBytes)
	})
}
