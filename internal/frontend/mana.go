package frontend

import (
	"fmt"

	"repro/internal/isa"
)

// MANA is a MANA-lite spatial-region instruction prefetcher (after
// Ansari et al., "MANA: Microarchitecting an Instruction Prefetcher",
// arXiv 2102.01764). The fetch stream is divided into spatial regions
// of 2^regionLog2 consecutive instruction blocks; while the front end
// executes inside a region the prefetcher records which blocks it
// touches as a footprint bitvector, and when the region is left the
// footprint is committed to a direct-indexed record table keyed by the
// trigger PC that *entered* the region. Re-entering a region through a
// PC whose record hits replays the recorded footprint as prefetch
// candidates, bounded by the configured degree. Both tables are
// bounded log2-sized budgets: 2^recordsLog2 records of one tag plus one
// 64-bit footprint each.
type MANA struct {
	recs []manaRecord
	mask uint64

	regionLog2 uint
	regionMask uint64
	offBits    uint

	degree int

	// live in-flight region being recorded
	recording bool
	curRegion uint64
	trigPC    uint64
	footprint uint64
}

type manaRecord struct {
	tag       uint64
	footprint uint64
	live      bool
}

// NewMANA builds the prefetcher from its log2 budgets. recordsLog2
// sizes the record table, regionLog2 the spatial region in blocks
// (at most 6: footprints are one 64-bit word).
func NewMANA(recordsLog2, regionLog2, degree, lineBytes int) (*MANA, error) {
	if recordsLog2 <= 0 || recordsLog2 > 16 {
		return nil, fmt.Errorf("frontend: mana records log2 budget must be in [1,16], got %d", recordsLog2)
	}
	if regionLog2 <= 0 || regionLog2 > 6 {
		return nil, fmt.Errorf("frontend: mana region log2 must be in [1,6], got %d", regionLog2)
	}
	if degree <= 0 {
		return nil, fmt.Errorf("frontend: mana degree must be positive, got %d", degree)
	}
	m := &MANA{
		recs:       make([]manaRecord, 1<<recordsLog2),
		mask:       uint64(1<<recordsLog2) - 1,
		regionLog2: uint(regionLog2),
		regionMask: uint64(1<<regionLog2) - 1,
		degree:     degree,
	}
	for b := lineBytes; b > 1; b >>= 1 {
		m.offBits++
	}
	return m, nil
}

// Name implements Prefetcher.
func (m *MANA) Name() string { return "mana" }

// index maps a trigger PC onto the record table. PCs are
// instruction-aligned, so the low address bits are dropped before
// masking to spread adjacent triggers across entries.
//
//pflint:hotpath
func (m *MANA) index(pc uint64) uint64 {
	return (pc / isa.InstrBytes) & m.mask
}

// Observe implements Prefetcher: accumulate the footprint while inside
// the current region; on a region change, commit the finished
// footprint under its trigger PC and replay the record (if any) for
// the region being entered.
//
//pflint:hotpath
func (m *MANA) Observe(ev Event, emit func(Candidate)) {
	blockIdx := ev.Block >> m.offBits
	region := blockIdx >> m.regionLog2
	bit := blockIdx & m.regionMask
	if m.recording && region == m.curRegion {
		m.footprint |= 1 << bit
		return
	}
	m.commit()
	// Replay the committed footprint for the region entered through
	// this trigger PC, skipping the block being fetched right now and
	// capping at degree candidates.
	if r := &m.recs[m.index(ev.PC)]; r.live && r.tag == ev.PC {
		issued := 0
		base := region << m.regionLog2
		for i := uint64(0); i <= m.regionMask && issued < m.degree; i++ {
			if i == bit || r.footprint&(1<<i) == 0 {
				continue
			}
			emit(Candidate{
				Block:     (base + i) << m.offBits,
				TriggerPC: ev.PC,
				Source:    "mana",
			})
			issued++
		}
	}
	m.recording = true
	m.curRegion = region
	m.trigPC = ev.PC
	m.footprint = 1 << bit
}

// commit stores the in-flight region footprint under its trigger PC.
//
//pflint:hotpath
func (m *MANA) commit() {
	if !m.recording {
		return
	}
	r := &m.recs[m.index(m.trigPC)]
	r.tag = m.trigPC
	r.footprint = m.footprint
	r.live = true
}

// Lookup returns the committed footprint recorded under trigger PC pc,
// if any — a test hook into the record table.
func (m *MANA) Lookup(pc uint64) (footprint uint64, ok bool) {
	r := m.recs[m.index(pc)]
	if !r.live || r.tag != pc {
		return 0, false
	}
	return r.footprint, true
}
