package frontend

// NextLine is the next-line/fetch-directed baseline: on every block the
// front end crosses into, it runs degree sequential blocks ahead of the
// fetch stream. Because the fetch unit already follows taken-branch
// redirects, the candidates track the *actual* fetch path, not the
// static fall-through — the classic fetch-directed-prefetching shape
// without a separate branch-predictor-driven engine.
type NextLine struct {
	degree    int
	lineBytes uint64
}

// NewNextLine returns the baseline with the given sequential depth.
func NewNextLine(degree, lineBytes int) (*NextLine, error) {
	return &NextLine{degree: degree, lineBytes: uint64(lineBytes)}, nil
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "nextline" }

// Observe emits the degree blocks sequentially following the fetched
// block.
//
//pflint:hotpath
func (n *NextLine) Observe(ev Event, emit func(Candidate)) {
	for i := 1; i <= n.degree; i++ {
		emit(Candidate{
			Block:     ev.Block + uint64(i)*n.lineBytes,
			TriggerPC: ev.PC,
			Source:    "nextline",
		})
	}
}
