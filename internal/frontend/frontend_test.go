package frontend

import (
	"testing"

	"repro/internal/config"
)

// TestFetchUnitStream pins the block-transition semantics: same-block
// PCs are absorbed, +1 transitions are sequential, everything else is
// a redirect (including backward jumps into an already-seen block).
func TestFetchUnitStream(t *testing.T) {
	u := NewFetchUnit(32)
	steps := []struct {
		pc       uint64
		block    uint64
		newBlock bool
		redirect bool
	}{
		{0x1000, 0x1000, true, false}, // first fetch: new block, not a redirect
		{0x1004, 0x1000, false, false},
		{0x101c, 0x1000, false, false},
		{0x1020, 0x1020, true, false}, // sequential fall-through
		{0x2000, 0x2000, true, true},  // forward jump
		{0x2010, 0x2000, false, false},
		{0x1010, 0x1000, true, true}, // backward jump
		{0x1020, 0x1020, true, false},
	}
	for i, s := range steps {
		block, newBlock, redirect := u.Step(s.pc)
		if block != s.block || newBlock != s.newBlock || redirect != s.redirect {
			t.Fatalf("step %d: Step(%#x) = (%#x,%v,%v), want (%#x,%v,%v)",
				i, s.pc, block, newBlock, redirect, s.block, s.newBlock, s.redirect)
		}
	}
	u.Reset()
	if _, newBlock, redirect := u.Step(0x1020); !newBlock || redirect {
		t.Fatal("after Reset the first Step must be a non-redirect new block")
	}
}

// TestNextLineDegree pins the baseline: degree sequential blocks per
// event, trigger provenance attached.
func TestNextLineDegree(t *testing.T) {
	n, err := NewNextLine(3, 32)
	if err != nil {
		t.Fatal(err)
	}
	var got []Candidate
	n.Observe(Event{Block: 0x1000, PC: 0x1004}, func(c Candidate) { got = append(got, c) })
	want := []Candidate{
		{Block: 0x1020, TriggerPC: 0x1004, Source: "nextline"},
		{Block: 0x1040, TriggerPC: 0x1004, Source: "nextline"},
		{Block: 0x1060, TriggerPC: 0x1004, Source: "nextline"},
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRegistry pins the registry contract: both backends registered,
// sorted kinds, alias resolution, and the unknown-kind error naming
// the registered set.
func TestRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 2 || kinds[0] != "mana" || kinds[1] != "nextline" {
		t.Fatalf("Kinds() = %v, want [mana nextline]", kinds)
	}
	if !Registered(config.IPrefetchFDIPAlias) {
		t.Fatal("fetch-directed alias must resolve to the nextline constructor")
	}
	fe := config.DefaultFrontend()
	fe.IPrefetch = config.IPrefetchNextLine
	p, err := New(config.IPrefetchFDIPAlias, fe)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "nextline" {
		t.Fatalf("alias built %q, want nextline", p.Name())
	}
	if _, err := New("bogus", fe); err == nil {
		t.Fatal("unknown kind must error")
	}
	if got := Sweepable(); len(got) != 2 {
		t.Fatalf("Sweepable() = %v", got)
	}
}
