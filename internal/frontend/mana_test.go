package frontend

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/xrand"
)

const testLineBytes = 32

// blockAddr returns the line-aligned address of block index i.
func blockAddr(i uint64) uint64 { return i * testLineBytes }

// observeBlocks feeds MANA a sequence of (block index, trigger PC)
// fetch events and collects everything it emits.
func observeBlocks(m *MANA, evs []Event) []Candidate {
	var out []Candidate
	for _, ev := range evs {
		m.Observe(ev, func(c Candidate) { out = append(out, c) })
	}
	return out
}

// TestMANAFootprintGolden pins the footprint record lifecycle: blocks
// touched inside a region set bits, leaving the region commits the
// footprint under the entering trigger PC, and re-entering through the
// same PC replays exactly the recorded blocks.
func TestMANAFootprintGolden(t *testing.T) {
	m, err := NewMANA(8, 3, 8, testLineBytes) // 256 records, 8-block regions
	if err != nil {
		t.Fatal(err)
	}
	trig := uint64(0x40_0000)
	// Region 0 holds block indices 0..7; touch blocks 1, 3, 4 entering
	// through trig, then leave for region 5 (block 40).
	evs := []Event{
		{Block: blockAddr(1), PC: trig},
		{Block: blockAddr(3), PC: trig + 4},
		{Block: blockAddr(4), PC: trig + 8},
	}
	if got := observeBlocks(m, evs); len(got) != 0 {
		t.Fatalf("cold table must emit nothing, got %d candidates", len(got))
	}
	if _, ok := m.Lookup(trig); ok {
		t.Fatal("footprint committed before the region was left")
	}
	// Leaving region 0 commits {1,3,4} under trig. The exiting PC is
	// chosen not to alias trig's record slot ((pc/4)&255 differs).
	observeBlocks(m, []Event{{Block: blockAddr(40), PC: 0x50_0004, Redirect: true}})
	fp, ok := m.Lookup(trig)
	if !ok {
		t.Fatal("footprint not committed on region exit")
	}
	if want := uint64(1<<1 | 1<<3 | 1<<4); fp != want {
		t.Fatalf("footprint = %#b, want %#b", fp, want)
	}

	// Re-enter region 0 through the same trigger PC at block 1: the
	// record replays blocks 3 and 4 (the fetched block itself is
	// skipped), tagged with the trigger and the "mana" source.
	got := observeBlocks(m, []Event{{Block: blockAddr(1), PC: trig, Redirect: true}})
	if len(got) != 2 {
		t.Fatalf("replay emitted %d candidates, want 2: %+v", len(got), got)
	}
	want := []Candidate{
		{Block: blockAddr(3), TriggerPC: trig, Source: "mana"},
		{Block: blockAddr(4), TriggerPC: trig, Source: "mana"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// The re-entry visit touched only block 1; leaving again must
	// *clear* the stale bits — the committed footprint is the last
	// visit's, not the union.
	observeBlocks(m, []Event{{Block: blockAddr(80), PC: 0x60_0000, Redirect: true}})
	fp, ok = m.Lookup(trig)
	if !ok {
		t.Fatal("footprint lost after second commit")
	}
	if want := uint64(1 << 1); fp != want {
		t.Fatalf("footprint after revisit = %#b, want %#b (stale bits must clear)", fp, want)
	}
}

// TestMANATriggerAliasing pins behaviour under the log2 record budget:
// two trigger PCs that collide in the table overwrite each other, and
// the full tag prevents the survivor's footprint from replaying for
// the evicted trigger.
func TestMANATriggerAliasing(t *testing.T) {
	const recordsLog2 = 2 // 4 records: trivial to alias
	m, err := NewMANA(recordsLog2, 3, 8, testLineBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Two instruction-aligned PCs with identical low index bits:
	// (pc/4) & 3 equal.
	trigA := uint64(0x1000) // (0x1000/4)&3 == 0
	trigB := uint64(0x2000) // (0x2000/4)&3 == 0
	if (trigA/isa.InstrBytes)&3 != (trigB/isa.InstrBytes)&3 {
		t.Fatal("test PCs do not alias; fix the constants")
	}

	// Record region 0 = {0,2} under trigA, then region 10 = {80} under
	// trigB, then leave. trigB's commit must evict trigA's record.
	observeBlocks(m, []Event{
		{Block: blockAddr(0), PC: trigA},
		{Block: blockAddr(2), PC: trigA + 4},
		{Block: blockAddr(80), PC: trigB, Redirect: true},   // commits trigA
		{Block: blockAddr(200), PC: 0x3004, Redirect: true}, // commits trigB
	})
	if _, ok := m.Lookup(trigA); ok {
		t.Fatal("aliased record for trigA survived trigB's commit")
	}
	if fp, ok := m.Lookup(trigB); !ok || fp != 1<<(80&7) {
		t.Fatalf("trigB footprint = %#b,%v; want bit %d set", fp, ok, 80&7)
	}
	// Re-entering region 0 through trigA must not replay trigB's
	// footprint: the tag mismatch suppresses it.
	if got := observeBlocks(m, []Event{{Block: blockAddr(0), PC: trigA, Redirect: true}}); len(got) != 0 {
		t.Fatalf("tag-mismatched record replayed %d candidates", len(got))
	}
}

// TestMANADegreeBound is the property test: over random fetch streams,
// no single Observe call may emit more candidates than the configured
// degree, and every emitted block must lie in the entered region and
// differ from the fetched block.
func TestMANADegreeBound(t *testing.T) {
	rng := xrand.New(0xabcdef)
	for _, degree := range []int{1, 2, 3, 5, 8} {
		m, err := NewMANA(6, 3, degree, testLineBytes)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20_000; step++ {
			// A handful of hot regions so records hit often.
			blockIdx := rng.Uint64() % 64
			pc := uint64(0x40_0000) + (rng.Uint64()%16)*isa.InstrBytes
			ev := Event{Block: blockAddr(blockIdx), PC: pc}
			emitted := 0
			region := blockIdx >> 3
			m.Observe(ev, func(c Candidate) {
				emitted++
				if c.Source != "mana" || c.TriggerPC != pc {
					t.Fatalf("step %d: bad provenance %+v", step, c)
				}
				got := (c.Block / testLineBytes) >> 3
				if got != region {
					t.Fatalf("step %d: candidate block %#x outside region %d", step, c.Block, region)
				}
				if c.Block == ev.Block {
					t.Fatalf("step %d: replayed the fetched block itself", step)
				}
			})
			if emitted > degree {
				t.Fatalf("step %d: emitted %d candidates, degree %d", step, emitted, degree)
			}
		}
	}
}

// TestMANABudgetValidation pins the constructor's log2-budget checks.
func TestMANABudgetValidation(t *testing.T) {
	cases := []struct{ recordsLog2, regionLog2, degree int }{
		{0, 3, 2}, {17, 3, 2}, {8, 0, 2}, {8, 7, 2}, {8, 3, 0},
	}
	for _, c := range cases {
		if _, err := NewMANA(c.recordsLog2, c.regionLog2, c.degree, testLineBytes); err == nil {
			t.Fatalf("NewMANA(%d,%d,%d) accepted an invalid budget", c.recordsLog2, c.regionLog2, c.degree)
		}
	}
}
