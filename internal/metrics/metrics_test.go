package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return the same handle")
	}
	c.Set(2)
	if got := c.Value(); got != 2 {
		t.Fatalf("after Set: %d, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	c.Inc()
	c.Add(3)
	c.Set(9)
	h.Observe(7)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1024} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1034 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	hv := r.Snapshot().Histograms["lat"]
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1024 -> 11.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 11: 1}
	for b, n := range want {
		if hv.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", b, hv.Buckets[b], n, hv.Buckets)
		}
	}
	if hv.Mean() == 0 {
		t.Fatal("mean must be nonzero")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*each {
		t.Fatalf("shared = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("hist").Count(); got != workers*each {
		t.Fatalf("hist count = %d, want %d", got, workers*each)
	}
}

// TestSnapshotDiffAdditive is the registry's interval-additivity
// property: for snapshots a <= b <= c of one registry,
// Diff(c,a) == Merge(Diff(b,a), Diff(c,b)).
func TestSnapshotDiffAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := New()
		names := []string{"a", "a.b", "a.c", "d"}
		mutate := func() {
			for i := 0; i < 20; i++ {
				n := names[rng.Intn(len(names))]
				if rng.Intn(2) == 0 {
					r.Counter(n).Add(uint64(rng.Intn(10)))
				} else {
					r.Histogram(n + ".h").Observe(uint64(rng.Intn(1 << 12)))
				}
			}
		}
		a := r.Snapshot()
		mutate()
		b := r.Snapshot()
		mutate()
		c := r.Snapshot()

		whole := c.Diff(a)
		parts := b.Diff(a).Merge(c.Diff(b))
		if !snapshotsEqual(whole, parts) {
			t.Fatalf("trial %d: Diff not additive:\nwhole=%+v\nparts=%+v", trial, whole, parts)
		}
	}
}

func snapshotsEqual(a, b Snapshot) bool {
	if len(a.Counters) != len(b.Counters) {
		return false
	}
	for n, v := range a.Counters {
		if b.Counters[n] != v {
			return false
		}
	}
	if len(a.Histograms) != len(b.Histograms) {
		return false
	}
	for n, hv := range a.Histograms {
		o, ok := b.Histograms[n]
		if !ok || o.Count != hv.Count || o.Sum != hv.Sum || len(o.Buckets) != len(hv.Buckets) {
			return false
		}
		for i, c := range hv.Buckets {
			if o.Buckets[i] != c {
				return false
			}
		}
	}
	return true
}

func TestSnapshotWriteTo(t *testing.T) {
	r := New()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Histogram("m.hist").Observe(10)
	var sb strings.Builder
	if _, err := r.Snapshot().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	ai, mi, zi := strings.Index(out, "a.first"), strings.Index(out, "m.hist"), strings.Index(out, "z.last")
	if ai < 0 || mi < 0 || zi < 0 || !(ai < mi && mi < zi) {
		t.Fatalf("dump not sorted:\n%s", out)
	}
}
