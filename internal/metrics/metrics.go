// Package metrics is the simulator's lock-free telemetry registry.
//
// A Registry holds named counters and histograms keyed by hierarchical
// dotted names ("sim.pf.good", "experiments.cache.hits"). Registration
// (the first lookup of a name) takes a mutex; every subsequent update is
// a single atomic add on a handle the caller caches, so instrumented hot
// paths stay lock-free and safe under `go test -race` even when many
// simulation workers share one registry.
//
// All update methods are nil-receiver safe: a component whose registry
// was never attached holds nil handles, and c.Inc() on a nil *Counter is
// a branch-predictable no-op. That is the "disabled" fast path the
// simulator relies on to keep un-instrumented runs at full speed.
//
// Snapshot captures a consistent-enough point-in-time copy of every
// value (each value is read atomically; the set as a whole is not a
// global atomic cut, which is fine for monotonic counters). Snapshots
// subtract (Diff) and add (Merge) component-wise, so interval deltas are
// additive: Diff(c,a) == Merge(Diff(b,a), Diff(c,b)) for any snapshots
// a ≤ b ≤ c of one registry.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or explicitly Set) uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set stores an absolute value (end-of-run gauges, warmup resets).
// No-op on a nil receiver.
func (c *Counter) Set(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i holds [2^(i-1), 2^i). 65 buckets cover all of
// uint64.
const histBuckets = 65

// Histogram is a lock-free power-of-two-bucketed histogram. It trades
// resolution for a fixed footprint and wait-free updates, which is what
// per-simulation latency/size distributions need.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns sum/count (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is the named-metric namespace. The zero value is not usable;
// call New. A nil *Registry is a valid "disabled" registry: Counter and
// Histogram return nil handles whose updates no-op.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramValue is the snapshot form of one histogram.
type HistogramValue struct {
	Count   uint64
	Sum     uint64
	Buckets map[int]uint64 // bucket exponent -> count; empty buckets omitted
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters   map[string]uint64
	Histograms map[string]HistogramValue
}

// Snapshot copies every registered value. Safe for concurrent use with
// updates; each individual value is read atomically. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Histograms: make(map[string]HistogramValue),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		hv := HistogramValue{Count: h.count.Load(), Sum: h.sum.Load(), Buckets: make(map[int]uint64)}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hv.Buckets[i] = n
			}
		}
		s.Histograms[name] = hv
	}
	return s
}

// Diff returns s - prev component-wise: the activity between the two
// snapshots. Names absent from prev count from zero; names absent from s
// are dropped. Counter diffs saturate at zero if a counter was Set
// backwards between snapshots.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		p := prev.Counters[name]
		if v >= p {
			d.Counters[name] = v - p
		} else {
			d.Counters[name] = 0
		}
	}
	for name, hv := range s.Histograms {
		p := prev.Histograms[name]
		dv := HistogramValue{Buckets: make(map[int]uint64)}
		if hv.Count >= p.Count {
			dv.Count = hv.Count - p.Count
		}
		if hv.Sum >= p.Sum {
			dv.Sum = hv.Sum - p.Sum
		}
		for i, n := range hv.Buckets {
			if pn := p.Buckets[i]; n > pn {
				dv.Buckets[i] = n - pn
			}
		}
		d.Histograms[name] = dv
	}
	return d
}

// Merge returns s + other component-wise, the inverse of Diff across
// adjacent intervals.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	m := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		m.Counters[name] = v
	}
	for name, v := range other.Counters {
		m.Counters[name] += v
	}
	merge := func(name string, hv HistogramValue) {
		cur, ok := m.Histograms[name]
		if !ok {
			cur = HistogramValue{Buckets: make(map[int]uint64)}
		}
		cur.Count += hv.Count
		cur.Sum += hv.Sum
		for i, n := range hv.Buckets {
			cur.Buckets[i] += n
		}
		m.Histograms[name] = cur
	}
	for name, hv := range s.Histograms {
		merge(name, hv)
	}
	for name, hv := range other.Histograms {
		merge(name, hv)
	}
	return m
}

// Names returns every metric name in the snapshot, sorted, counters and
// histograms interleaved lexicographically.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTo dumps the snapshot as "name value" lines in sorted order;
// histograms render as "name count=N sum=S mean=M". The deterministic
// order makes snapshots diffable in logs and tests.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, name := range s.Names() {
		var line string
		if v, ok := s.Counters[name]; ok {
			line = fmt.Sprintf("%-40s %d\n", name, v)
		} else {
			hv := s.Histograms[name]
			line = fmt.Sprintf("%-40s count=%d sum=%d mean=%.1f\n", name, hv.Count, hv.Sum, hv.Mean())
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
