package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.pf.good":             "sim_pf_good",
		"experiments.cache.hits":  "experiments_cache_hits",
		"already_fine:name":       "already_fine:name",
		"8wide":                   "_8wide",
		"":                        "_",
		"weird-name with spaces!": "weird_name_with_spaces_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBucketBound(t *testing.T) {
	// Bucket i holds values v with bits.Len64(v) == i; the bound must be
	// the largest such value.
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: ^uint64(0)}
	for i, want := range cases {
		if got := bucketBound(i); got != want {
			t.Errorf("bucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("server.run.requests").Add(3)
	h := r.Histogram("sched.job_wall_ns")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(5) // bucket 3 ([4,8))

	var buf bytes.Buffer
	n, err := r.Snapshot().WritePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if int64(len(out)) != n {
		t.Fatalf("reported %d bytes, wrote %d", n, len(out))
	}
	for _, want := range []string{
		"# TYPE server_run_requests counter\nserver_run_requests 3\n",
		"# TYPE sched_job_wall_ns histogram\n",
		"sched_job_wall_ns_bucket{le=\"0\"} 1\n",
		"sched_job_wall_ns_bucket{le=\"1\"} 2\n",
		"sched_job_wall_ns_bucket{le=\"7\"} 3\n",
		"sched_job_wall_ns_bucket{le=\"+Inf\"} 3\n",
		"sched_job_wall_ns_sum 6\n",
		"sched_job_wall_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if _, err := r.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := (Snapshot{}).WritePrometheus(&buf)
	if err != nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("empty snapshot: n=%d err=%v out=%q", n, err, buf.String())
	}
}
