// Prometheus text exposition (format version 0.0.4) of a Snapshot, so a
// registry can back an HTTP /metrics endpoint without importing any
// client library. Dotted names are sanitized to the Prometheus charset
// ("sim.pf.good" -> "sim_pf_good"); the power-of-two histogram buckets
// render as cumulative le-labelled buckets whose upper bounds are the
// largest value each bucket can hold (2^i - 1).

package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promName maps a dotted metric name onto the Prometheus identifier
// charset [a-zA-Z0-9_:], with a leading underscore if the name would
// otherwise start with a digit.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// bucketBound is the largest value bucket i can hold: bucket 0 counts
// zeros, bucket i counts [2^(i-1), 2^i). (1<<i)-1 covers every i,
// including i==64 where the shift wraps to 0 and the subtraction yields
// MaxUint64.
func bucketBound(i int) uint64 {
	return (uint64(1) << uint(i)) - 1
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters as counter families, histograms as histogram families
// with cumulative buckets, _sum, and _count. Output is sorted by name,
// so two snapshots of the same registry diff cleanly.
func (s Snapshot) WritePrometheus(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}

	cnames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		pn := promName(name)
		if err := emit("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return total, err
		}
	}

	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hv := s.Histograms[name]
		pn := promName(name)
		if err := emit("# TYPE %s histogram\n", pn); err != nil {
			return total, err
		}
		exps := make([]int, 0, len(hv.Buckets))
		for i := range hv.Buckets {
			exps = append(exps, i)
		}
		sort.Ints(exps)
		var cum uint64
		for _, i := range exps {
			cum += hv.Buckets[i]
			if err := emit("%s_bucket{le=\"%s\"} %d\n", pn, strconv.FormatUint(bucketBound(i), 10), cum); err != nil {
				return total, err
			}
		}
		if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n", pn, hv.Count, pn, hv.Sum, pn, hv.Count); err != nil {
			return total, err
		}
	}
	return total, nil
}
