package memdram

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("zero latency should fail")
	}
	if _, err := New(150, 0); err == nil {
		t.Fatal("zero channels should fail")
	}
}

func TestLatency(t *testing.T) {
	m, _ := New(150, 4)
	if m.Latency() != 150 {
		t.Fatalf("latency = %d", m.Latency())
	}
	if ready := m.Request(1000, false); ready != 1150 {
		t.Fatalf("ready = %d, want 1150", ready)
	}
}

func TestChannelConcurrency(t *testing.T) {
	m, _ := New(100, 2)
	// Two requests at the same cycle use separate channels.
	r1 := m.Request(0, false)
	r2 := m.Request(0, false)
	if r1 != 100 || r2 != 100 {
		t.Fatalf("parallel requests: %d, %d", r1, r2)
	}
	// Third queues behind the earliest-free channel.
	r3 := m.Request(0, false)
	if r3 != 200 {
		t.Fatalf("queued request ready = %d, want 200", r3)
	}
	if m.QueueStalls != 100 {
		t.Fatalf("stalls = %d", m.QueueStalls)
	}
}

func TestPrefetchTagging(t *testing.T) {
	m, _ := New(10, 1)
	m.Request(0, true)
	m.Request(100, false)
	m.Request(200, true)
	if m.Requests != 3 || m.PrefetchRequests != 2 {
		t.Fatalf("counts: %d total, %d prefetch", m.Requests, m.PrefetchRequests)
	}
}

func TestBacklogDrains(t *testing.T) {
	m, _ := New(10, 1)
	last := uint64(0)
	for i := 0; i < 5; i++ {
		last = m.Request(0, false)
	}
	if last != 50 {
		t.Fatalf("5 serialized requests on one channel should finish at 50, got %d", last)
	}
	// After the backlog, a late request sees an idle channel.
	if ready := m.Request(1000, false); ready != 1010 {
		t.Fatalf("idle-channel request ready = %d", ready)
	}
}
