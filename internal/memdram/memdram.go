// Package memdram models main memory behind the L2: a fixed leadoff
// latency (Table 1: 150 core cycles) plus the bus transfer time, with a
// small number of concurrently outstanding requests.
//
// The model is deliberately simple — the paper's machine uses a flat
// 150-cycle memory — but it tracks enough (request counts, busy banks) to
// expose the bandwidth pressure that aggressive prefetching creates.
package memdram

import "fmt"

// Memory is the DRAM model.
type Memory struct {
	latency  uint64
	channels []uint64 // per-channel busy-until, for limited concurrency

	Requests         uint64
	PrefetchRequests uint64
	QueueStalls      uint64 // cycles requests waited for a free channel
}

// New builds a memory with the given leadoff latency (cycles) and number
// of concurrently serviceable requests (channels/banks).
func New(latencyCycles, channels int) (*Memory, error) {
	if latencyCycles <= 0 {
		return nil, fmt.Errorf("memdram: latency must be positive, got %d", latencyCycles)
	}
	if channels <= 0 {
		return nil, fmt.Errorf("memdram: channels must be positive, got %d", channels)
	}
	return &Memory{latency: uint64(latencyCycles), channels: make([]uint64, channels)}, nil
}

// Latency returns the configured leadoff latency in cycles.
func (m *Memory) Latency() uint64 { return m.latency }

// Request schedules a memory access starting at cycle now and returns the
// cycle the line is available at the memory controller (before the bus
// transfer back). prefetch tags the request for accounting.
func (m *Memory) Request(now uint64, prefetch bool) (ready uint64) {
	// Pick the channel that frees earliest.
	best := 0
	for i := range m.channels {
		if m.channels[i] < m.channels[best] {
			best = i
		}
	}
	start := now
	if m.channels[best] > start {
		m.QueueStalls += m.channels[best] - start
		start = m.channels[best]
	}
	ready = start + m.latency
	m.channels[best] = ready
	m.Requests++
	if prefetch {
		m.PrefetchRequests++
	}
	return ready
}
