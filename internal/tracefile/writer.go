// The PFTC encoder: buffers records into chunks, stamps each chunk's
// CRC and sha256, and finalizes with the sentinel + trailer carrying
// the chunk-size-independent stream fingerprint.

package tracefile

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/isa"
)

// castagnoli is the CRC-32C table every chunk checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChunkInfo describes one finished chunk of a PFTC file.
type ChunkInfo struct {
	// Records is the record count of the chunk.
	Records uint32 `json:"records"`
	// Bytes is the payload length in bytes.
	Bytes uint32 `json:"bytes"`
	// CRC32C is the payload checksum from the chunk header.
	CRC32C uint32 `json:"crc32c"`
	// SHA256 is the hex sha256 of the payload bytes — the per-chunk
	// fingerprint CI pins for committed fixtures.
	SHA256 string `json:"sha256"`
}

// WriterOptions tune the encoder.
type WriterOptions struct {
	// ChunkBytes is the target payload size: the writer cuts a chunk at
	// the first record boundary at or past it. 0 selects
	// DefaultChunkBytes.
	ChunkBytes int
}

// Writer encodes records into a PFTC stream. Close finalizes the file;
// the underlying writer is not closed.
type Writer struct {
	w      *bufio.Writer
	target int

	chunk   []byte // current chunk payload
	chunkRecs uint32
	lastPC  uint64 // per-chunk PC-delta state

	canonPC uint64    // canonical (never-reset) PC-delta state
	canon   hash.Hash // sha256 over the canonical encoding
	scratch []byte    // canonical-encoding scratch buffer

	count  uint64
	chunks []ChunkInfo
	closed bool
	err    error
}

// NewWriter writes the file header and returns a streaming encoder.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	target := opts.ChunkBytes
	if target <= 0 {
		target = DefaultChunkBytes
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [fileHeaderLen]byte
	copy(hdr[:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("tracefile: writing header: %w", err)
	}
	return &Writer{w: bw, target: target, canon: sha256.New()}, nil
}

// Write encodes one record.
func (w *Writer) Write(r isa.Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefile: write after Close")
	}
	if err := r.Validate(); err != nil {
		w.err = err
		return err
	}
	w.chunk = appendRecord(w.chunk, r, &w.lastPC)
	w.chunkRecs++
	w.count++
	w.scratch = appendRecord(w.scratch[:0], r, &w.canonPC)
	w.canon.Write(w.scratch)
	if len(w.chunk) >= w.target {
		return w.flushChunk()
	}
	return nil
}

// flushChunk writes the buffered payload as one chunk.
func (w *Writer) flushChunk() error {
	if w.chunkRecs == 0 {
		return nil
	}
	var hdr [chunkHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(w.chunk)))
	binary.LittleEndian.PutUint32(hdr[4:8], w.chunkRecs)
	crc := crc32.Checksum(w.chunk, castagnoli)
	binary.LittleEndian.PutUint32(hdr[8:12], crc)
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(w.chunk); err != nil {
		w.err = err
		return err
	}
	sum := sha256.Sum256(w.chunk)
	w.chunks = append(w.chunks, ChunkInfo{
		Records: w.chunkRecs,
		Bytes:   uint32(len(w.chunk)),
		CRC32C:  crc,
		SHA256:  hex.EncodeToString(sum[:]),
	})
	w.chunk = w.chunk[:0]
	w.chunkRecs = 0
	w.lastPC = 0
	return nil
}

// Close flushes the final partial chunk and writes the sentinel and
// trailer. The underlying writer is not closed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	var tail [chunkHeaderLen + trailerLen]byte // sentinel is all zeros
	binary.LittleEndian.PutUint64(tail[chunkHeaderLen:], w.count)
	binary.LittleEndian.PutUint32(tail[chunkHeaderLen+8:], uint32(len(w.chunks)))
	copy(tail[chunkHeaderLen+16:], w.canon.Sum(nil))
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	w.closed = true
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Chunks returns the finished chunks' descriptors. Complete only after
// Close (the final partial chunk flushes there).
func (w *Writer) Chunks() []ChunkInfo { return w.chunks }

// Fingerprint returns the chunk-size-independent stream fingerprint of
// everything written so far (equal to the trailer's after Close).
func (w *Writer) Fingerprint() [32]byte {
	var sum [32]byte
	copy(sum[:], w.canon.Sum(nil))
	return sum
}

// Encode writes all of recs to w as one PFTC stream.
func Encode(w io.Writer, recs []isa.Record, opts WriterOptions) error {
	tw, err := NewWriter(w, opts)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Close()
}
