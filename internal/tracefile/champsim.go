// ChampSim-trace conversion: the front door for real program traces.
// ChampSim's input format (the one its tracer and the public SPEC trace
// collections use) is a flat stream of fixed 64-byte little-endian
// instruction records; this file streams them into PFTC.

package tracefile

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// champSimRecLen is the size of one ChampSim input_instr record:
// ip u64, is_branch u8, branch_taken u8, destination_registers [2]u8,
// source_registers [4]u8, destination_memory [2]u64, source_memory [4]u64.
const champSimRecLen = 64

const (
	champSimDestMem = 2
	champSimSrcMem  = 4
)

// champSimInstr is one decoded ChampSim instruction.
type champSimInstr struct {
	ip       uint64
	isBranch bool
	taken    bool
	destMem  [champSimDestMem]uint64
	srcMem   [champSimSrcMem]uint64
}

func decodeChampSim(buf []byte) champSimInstr {
	var in champSimInstr
	in.ip = binary.LittleEndian.Uint64(buf[0:8])
	in.isBranch = buf[8] != 0
	in.taken = buf[9] != 0
	// bytes 10:16 are the register id arrays — no memory semantics.
	for i := 0; i < champSimDestMem; i++ {
		in.destMem[i] = binary.LittleEndian.Uint64(buf[16+8*i:])
	}
	for i := 0; i < champSimSrcMem; i++ {
		in.srcMem[i] = binary.LittleEndian.Uint64(buf[32+8*i:])
	}
	return in
}

// ConvertStats summarizes one ChampSim → PFTC conversion.
type ConvertStats struct {
	// Instructions is the ChampSim instruction count consumed.
	Instructions uint64 `json:"instructions"`
	// Records is the PFTC record count produced (one x86 instruction can
	// expand to several RISC-like records: its loads, its stores, and its
	// branch or ALU op each become one record).
	Records uint64 `json:"records"`
	// Loads, Stores, Branches, Taken break the output down by kind.
	Loads    uint64 `json:"loads"`
	Stores   uint64 `json:"stores"`
	Branches uint64 `json:"branches"`
	Taken    uint64 `json:"taken"`
	// Chunks are the written chunks' descriptors.
	Chunks []ChunkInfo `json:"chunks"`
	// Fingerprint is the trailer's stream fingerprint, hex-encoded.
	Fingerprint string `json:"fingerprint"`
}

// ConvertChampSim streams a raw ChampSim instruction trace from r into a
// PFTC stream on w. The mapping (normative details in docs/TRACES.md):
//
//   - PCs are aligned down to isa.InstrBytes (x86 instruction pointers
//     are byte-granular; the simulated ISA requires 4-byte alignment).
//   - Each nonzero source_memory slot becomes a load record, each
//     nonzero destination_memory slot a store record, all at the
//     instruction's PC.
//   - A branch instruction adds a branch record whose taken-target is
//     the next instruction's PC (one-instruction lookahead); a final
//     taken branch with no successor falls back to PC+isa.InstrBytes.
//   - An instruction with no memory slots and no branch becomes one ALU
//     record, so the instruction mix (and IPC denominator) stays
//     faithful.
//
// Call ConvertChampSim with a plain reader; use MaybeGzip first if the
// input may be gzip-compressed.
func ConvertChampSim(r io.Reader, w io.Writer, opts WriterOptions) (ConvertStats, error) {
	tw, err := NewWriter(w, opts)
	if err != nil {
		return ConvertStats{}, err
	}
	var st ConvertStats
	br := bufio.NewReaderSize(r, 1<<16)
	var buf [champSimRecLen]byte

	var pending champSimInstr
	havePending := false
	emit := func(in champSimInstr, nextIP uint64) error {
		pc := in.ip &^ (isa.InstrBytes - 1)
		emitted := false
		for _, a := range in.srcMem {
			if a == 0 {
				continue
			}
			if err := tw.Write(isa.Load(pc, a)); err != nil {
				return err
			}
			st.Loads++
			emitted = true
		}
		for _, a := range in.destMem {
			if a == 0 {
				continue
			}
			if err := tw.Write(isa.Store(pc, a)); err != nil {
				return err
			}
			st.Stores++
			emitted = true
		}
		switch {
		case in.isBranch:
			target := nextIP &^ (isa.InstrBytes - 1)
			if err := tw.Write(isa.Branch(pc, target, in.taken)); err != nil {
				return err
			}
			st.Branches++
			if in.taken {
				st.Taken++
			}
		case !emitted:
			if err := tw.Write(isa.ALU(pc)); err != nil {
				return err
			}
		}
		st.Instructions++
		return nil
	}

	for {
		_, rerr := io.ReadFull(br, buf[:])
		if rerr == io.EOF {
			break
		}
		if rerr == io.ErrUnexpectedEOF {
			return ConvertStats{}, fmt.Errorf("tracefile: champsim input truncated mid-record after %d instructions", st.Instructions)
		}
		if rerr != nil {
			return ConvertStats{}, fmt.Errorf("tracefile: reading champsim input: %w", rerr)
		}
		in := decodeChampSim(buf[:])
		if havePending {
			if err := emit(pending, in.ip); err != nil {
				return ConvertStats{}, err
			}
		}
		pending, havePending = in, true
	}
	if havePending {
		// No successor: a taken branch's target falls back to PC+4.
		if err := emit(pending, pending.ip+isa.InstrBytes); err != nil {
			return ConvertStats{}, err
		}
	}
	if err := tw.Close(); err != nil {
		return ConvertStats{}, err
	}
	st.Records = tw.Count()
	st.Chunks = tw.Chunks()
	fp := tw.Fingerprint()
	st.Fingerprint = fmt.Sprintf("%x", fp[:])
	return st, nil
}

// MaybeGzip wraps r in a gzip reader when the stream starts with the
// gzip magic, passing plain streams through untouched. ChampSim trace
// collections ship as .gz (or .xz, which this repo cannot decode —
// re-compress those as gzip first).
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		// Too short to carry a gzip header; let the downstream decoder
		// report the real framing error.
		return br, nil
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tracefile: gzip input: %w", err)
		}
		return zr, nil
	}
	return br, nil
}
