package tracefile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"testing"

	"repro/internal/isa"
)

// champSimBytes encodes instructions in ChampSim's 64-byte layout.
func champSimBytes(t *testing.T, instrs []champSimInstr) []byte {
	t.Helper()
	var buf bytes.Buffer
	var rec [champSimRecLen]byte
	for _, in := range instrs {
		for i := range rec {
			rec[i] = 0
		}
		binary.LittleEndian.PutUint64(rec[0:8], in.ip)
		if in.isBranch {
			rec[8] = 1
		}
		if in.taken {
			rec[9] = 1
		}
		for i, a := range in.destMem {
			binary.LittleEndian.PutUint64(rec[16+8*i:], a)
		}
		for i, a := range in.srcMem {
			binary.LittleEndian.PutUint64(rec[32+8*i:], a)
		}
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

func TestConvertChampSim(t *testing.T) {
	instrs := []champSimInstr{
		{ip: 0x401003, srcMem: [champSimSrcMem]uint64{0x10000040, 0x10000080}}, // two loads, unaligned ip
		{ip: 0x401008, destMem: [champSimDestMem]uint64{0x20000000}},           // one store
		{ip: 0x40100c, isBranch: true, taken: true},                           // taken: target = next ip
		{ip: 0x401055},                                                        // pure ALU
		{ip: 0x401060, isBranch: true, taken: false},                          // not-taken branch
		{ip: 0x401064, srcMem: [champSimSrcMem]uint64{0x10000100},
			destMem: [champSimDestMem]uint64{0x20000040}}, // load + store, no ALU record
	}
	var out bytes.Buffer
	st, err := ConvertChampSim(bytes.NewReader(champSimBytes(t, instrs)), &out, WriterOptions{})
	if err != nil {
		t.Fatalf("ConvertChampSim: %v", err)
	}
	if st.Instructions != 6 || st.Loads != 3 || st.Stores != 2 || st.Branches != 2 || st.Taken != 1 {
		t.Fatalf("stats = %+v", st)
	}
	recs, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := []isa.Record{
		isa.Load(0x401000, 0x10000040), // ip 0x401003 aligned down
		isa.Load(0x401000, 0x10000080),
		isa.Store(0x401008, 0x20000000),
		isa.Branch(0x40100c, 0x401054, true), // target: next ip 0x401055 aligned down
		isa.ALU(0x401054),
		isa.Branch(0x401060, 0x401064, false),
		isa.Load(0x401064, 0x10000100),
		isa.Store(0x401064, 0x20000040),
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	if st.Records != uint64(len(want)) {
		t.Fatalf("stats.Records = %d, want %d", st.Records, len(want))
	}
}

func TestConvertChampSimFinalTakenBranch(t *testing.T) {
	instrs := []champSimInstr{
		{ip: 0x401000, isBranch: true, taken: true}, // no successor
	}
	var out bytes.Buffer
	if _, err := ConvertChampSim(bytes.NewReader(champSimBytes(t, instrs)), &out, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := isa.Branch(0x401000, 0x401000+isa.InstrBytes, true)
	if len(recs) != 1 || recs[0] != want {
		t.Fatalf("recs = %+v, want [%+v]", recs, want)
	}
}

func TestConvertChampSimTruncated(t *testing.T) {
	data := champSimBytes(t, []champSimInstr{{ip: 0x401000}, {ip: 0x401004}})
	var out bytes.Buffer
	if _, err := ConvertChampSim(bytes.NewReader(data[:len(data)-7]), &out, WriterOptions{}); err == nil {
		t.Fatal("converter accepted input truncated mid-record")
	}
}

func TestMaybeGzip(t *testing.T) {
	plain := champSimBytes(t, []champSimInstr{{ip: 0x401000}})
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string][]byte{"plain": plain, "gzip": gz.Bytes()} {
		r, err := MaybeGzip(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("%s: MaybeGzip: %v", name, err)
		}
		var out bytes.Buffer
		st, err := ConvertChampSim(r, &out, WriterOptions{})
		if err != nil {
			t.Fatalf("%s: convert: %v", name, err)
		}
		if st.Instructions != 1 {
			t.Fatalf("%s: %d instructions, want 1", name, st.Instructions)
		}
	}
}
