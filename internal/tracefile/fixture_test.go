package tracefile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
)

// sampleFingerprint pins the canonical stream fingerprint of the
// checked-in ChampSim fixture (testdata/sample.champsim.gz, regenerated
// deterministically by testdata/gen_sample.go). CI asserts the same
// value through pftrace info -json; testdata/sample.fingerprint holds
// it for the workflow. Update ONLY for an intentional change to the
// fixture or the converter's record mapping, and say so in the commit
// message.
const sampleFingerprint = "86624318b5d20ccc0d4e9387f0ccc86ea36e3971182f1b5dc7e09abd3fbce092"

// sampleChunks4K pins the per-chunk payload sha256s of the fixture
// converted at 4 KiB chunks: the exact file bytes, not just the stream
// identity.
var sampleChunks4K = []string{
	"bfc841e117d9f2a8c77e6a7316409072065711b0550027bcd004c206eb7d7bab",
	"0f3ee5cce23dc1976805445f4929c62d8f05fe46de79c57233db7354f104280e",
	"a8ef3635877bef809e827e2c1a06b8c80b6e2b34096aa6d841e339a514d61d60",
	"3ac6363e7882dccea4ececa8ed5681f4c74144fa79d86e706392650670727941",
	"f8c895836192f3f15071ce55ce431a2559f6c0061df460b87382717654ac6411",
}

// convertSample converts the checked-in fixture at the given chunk size.
func convertSample(t *testing.T, chunkBytes int) (ConvertStats, []byte) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "sample.champsim.gz"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }() // read-only
	src, err := MaybeGzip(f)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	st, err := ConvertChampSim(src, &out, WriterOptions{ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	return st, out.Bytes()
}

func TestSampleFixtureConvertPinned(t *testing.T) {
	st, raw := convertSample(t, 0)
	want := ConvertStats{
		Instructions: 3000, Records: 3000,
		Loads: 1000, Stores: 500, Branches: 500, Taken: 490,
	}
	if st.Instructions != want.Instructions || st.Records != want.Records ||
		st.Loads != want.Loads || st.Stores != want.Stores ||
		st.Branches != want.Branches || st.Taken != want.Taken {
		t.Fatalf("stats = %+v, want counts %+v", st, want)
	}
	if st.Fingerprint != sampleFingerprint {
		t.Fatalf("fingerprint = %s, want %s", st.Fingerprint, sampleFingerprint)
	}
	if len(st.Chunks) != 1 {
		t.Fatalf("default chunking produced %d chunks, want 1", len(st.Chunks))
	}

	// The converted stream must decode cleanly and stay inside the isa
	// contract (every record valid, PCs aligned).
	recs, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != st.Records {
		t.Fatalf("decoded %d records, stats say %d", len(recs), st.Records)
	}
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}

	// The fingerprint in testdata/sample.fingerprint (what CI greps for)
	// must match the pinned constant.
	pin, err := os.ReadFile(filepath.Join("testdata", "sample.fingerprint"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(pin)); got != sampleFingerprint {
		t.Fatalf("testdata/sample.fingerprint = %s, want %s", got, sampleFingerprint)
	}
}

func TestSampleFixtureChunkFingerprintsPinned(t *testing.T) {
	st, raw := convertSample(t, 4096)
	if st.Fingerprint != sampleFingerprint {
		t.Fatalf("4 KiB-chunk fingerprint = %s, want %s (must be chunk-size independent)", st.Fingerprint, sampleFingerprint)
	}
	if len(st.Chunks) != len(sampleChunks4K) {
		t.Fatalf("%d chunks, want %d", len(st.Chunks), len(sampleChunks4K))
	}
	for i, c := range st.Chunks {
		if c.SHA256 != sampleChunks4K[i] {
			t.Fatalf("chunk %d sha256 = %s, want %s", i, c.SHA256, sampleChunks4K[i])
		}
	}
	// Inspect must agree with the writer's descriptors byte for byte.
	info, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != sampleFingerprint {
		t.Fatalf("Inspect fingerprint = %s, want %s", info.Fingerprint, sampleFingerprint)
	}
	for i, c := range info.Chunks {
		if c != st.Chunks[i] {
			t.Fatalf("chunk %d: Inspect %+v, writer %+v", i, c, st.Chunks[i])
		}
	}
}

// TestSampleFixtureLookaheadTargets spot-checks the converter's branch
// handling on the fixture: every branch record's target is the next
// instruction's (aligned) PC — the loop head when taken, the fall-through
// when not.
func TestSampleFixtureLookaheadTargets(t *testing.T) {
	_, raw := convertSample(t, 0)
	recs, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var taken, notTaken uint64
	for i, r := range recs {
		if r.Op != isa.OpBranch {
			continue
		}
		if i+1 < len(recs) && r.Addr != recs[i+1].PC {
			t.Fatalf("branch %d: target %#x, next PC %#x", i, r.Addr, recs[i+1].PC)
		}
		if r.Taken {
			taken++
		} else {
			notTaken++
		}
	}
	if taken != 490 || notTaken != 10 {
		t.Fatalf("taken/not-taken = %d/%d, want 490/10", taken, notTaken)
	}
}
