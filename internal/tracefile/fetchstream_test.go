package tracefile

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// fetchTestRecords builds an executed-path record stream that walks
// several instruction blocks sequentially, takes a far branch, runs at
// the target, and branches back — so the fetch stream contains both
// sequential fall-throughs and redirects, and the PC deltas around the
// branches are large (multi-byte varints whose decoding depends on the
// per-chunk PC-delta reset).
func fetchTestRecords() []isa.Record {
	var recs []isa.Record
	pc := uint64(0x40_0000)
	run := func(n int) {
		for i := 0; i < n; i++ {
			recs = append(recs, isa.ALU(pc))
			pc += isa.InstrBytes
		}
	}
	jump := func(target uint64) {
		recs = append(recs, isa.Branch(pc, target, true))
		pc = target
	}
	run(20)         // ~2.5 blocks of straight-line code
	jump(0x7f_0000) // far taken branch: big positive PC delta
	run(10)         // land in a new region
	jump(0x40_0040) // far branch back: big negative PC delta
	run(12)
	jump(0x7f_0100) // and once more, so a branch also ends the stream region
	run(6)
	return recs
}

// collectFetchStream decodes enc as a fetch-block stream.
func collectFetchStream(t *testing.T, enc []byte, lineBytes int) []FetchBlock {
	t.Helper()
	fs, err := NewFetchStream(bytes.NewReader(enc), lineBytes, ReaderOptions{})
	if err != nil {
		t.Fatalf("NewFetchStream: %v", err)
	}
	var out []FetchBlock
	for {
		fb, ok := fs.Next()
		if !ok {
			break
		}
		out = append(out, fb)
	}
	if err := fs.Err(); err != nil {
		t.Fatalf("fetch stream error: %v", err)
	}
	return out
}

// encodeChunked encodes recs with the given chunk-size target and
// returns the bytes plus the per-chunk record counts.
func encodeChunked(t *testing.T, recs []isa.Record, chunkBytes int) ([]byte, []uint64) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var counts []uint64
	for _, ci := range w.Chunks() {
		counts = append(counts, uint64(ci.Records))
	}
	return buf.Bytes(), counts
}

// TestFetchStreamCrossChunk is the chunk-boundary regression test: the
// fetch-block stream must be byte-for-byte independent of how the
// writer chunked the records, including when a branch record (whose
// successor's PC delta is large) is the last record of a chunk. The
// adapter decodes through the ordinary Reader, so the per-chunk
// PC-delta reset is shared with the decoder by construction — this
// test pins that a future "optimized" private decode cannot drift.
func TestFetchStreamCrossChunk(t *testing.T) {
	recs := fetchTestRecords()
	const lineBytes = 32

	// Reference: one chunk holding every record.
	refEnc, refCounts := encodeChunked(t, recs, 1<<20)
	if len(refCounts) != 1 {
		t.Fatalf("reference encoding should be a single chunk, got %d", len(refCounts))
	}
	ref := collectFetchStream(t, refEnc, lineBytes)
	if len(ref) < 8 {
		t.Fatalf("fetch stream too short to be interesting: %d blocks", len(ref))
	}
	redirects := 0
	for _, fb := range ref {
		if fb.Redirect {
			redirects++
		}
	}
	if redirects < 3 {
		t.Fatalf("expected the far branches to appear as redirects, got %d", redirects)
	}

	// ChunkBytes=1 cuts a chunk after every record, so every branch
	// record is the last record of its chunk; intermediate sizes land
	// the cut on varying record boundaries, branches included.
	for _, chunkBytes := range []int{1, 3, 7, 16, 64} {
		enc, counts := encodeChunked(t, recs, chunkBytes)
		if len(counts) < 2 {
			t.Fatalf("ChunkBytes=%d produced a single chunk; want a multi-chunk encoding", chunkBytes)
		}
		if chunkBytes == 1 {
			// Prove the scenario named by the regression: some chunk's
			// last record is a taken branch with a far target.
			branchEndsChunk := false
			cum := uint64(0)
			for _, n := range counts {
				cum += n
				last := recs[cum-1]
				if last.Op == isa.OpBranch && last.Taken {
					branchEndsChunk = true
				}
			}
			if !branchEndsChunk {
				t.Fatal("no chunk ends on a taken-branch record; the regression scenario is not exercised")
			}
		}
		got := collectFetchStream(t, enc, lineBytes)
		if len(got) != len(ref) {
			t.Fatalf("ChunkBytes=%d: %d fetch blocks, want %d", chunkBytes, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("ChunkBytes=%d: fetch block %d = %+v, want %+v", chunkBytes, i, got[i], ref[i])
			}
		}
	}
}

// TestFetchStreamRejectsBadLineSize pins the constructor's validation.
func TestFetchStreamRejectsBadLineSize(t *testing.T) {
	enc, _ := encodeChunked(t, fetchTestRecords(), 1<<20)
	for _, lb := range []int{0, -1, 24} {
		if _, err := NewFetchStream(bytes.NewReader(enc), lb, ReaderOptions{}); err == nil {
			t.Fatalf("lineBytes=%d: want error, got nil", lb)
		}
	}
}
