// Corpus management: the manifest that names a set of PFTC traces and
// the registration path that turns each one into a first-class workload
// benchmark ("trace:<name>") next to the ten synthetic models.

package tracefile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/workload"
)

// BenchPrefix prefixes every registered trace benchmark's name, keeping
// the trace namespace disjoint from the synthetic models'.
const BenchPrefix = "trace:"

// ManifestVersion is the corpus manifest schema version this package
// reads and writes.
const ManifestVersion = 1

// ManifestEntry describes one trace in a corpus manifest.
type ManifestEntry struct {
	// Name is the benchmark name (registered as "trace:<name>").
	Name string `json:"name"`
	// File is the PFTC file path, relative to the manifest's directory
	// unless absolute.
	File string `json:"file"`
	// SHA256 is the hex stream fingerprint from the PFTC trailer — the
	// chunk-size-independent identity of the record sequence.
	SHA256 string `json:"sha256"`
	// Records is the trace's total record count.
	Records uint64 `json:"records"`
	// FormatVersion is the PFTC format version of the file.
	FormatVersion int `json:"format_version"`
}

// Manifest is a corpus manifest: the set of traces an experiment run or
// server instance exposes as benchmarks.
type Manifest struct {
	Version int             `json:"version"`
	Traces  []ManifestEntry `json:"traces"`
}

// Validate checks structural sanity: schema version, no duplicate or
// empty names, complete entries.
func (m Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("tracefile: manifest version %d, support %d", m.Version, ManifestVersion)
	}
	seen := map[string]bool{}
	for i, e := range m.Traces {
		switch {
		case e.Name == "":
			return fmt.Errorf("tracefile: manifest entry %d: empty name", i)
		case e.File == "":
			return fmt.Errorf("tracefile: manifest entry %q: empty file", e.Name)
		case len(e.SHA256) != 64:
			return fmt.Errorf("tracefile: manifest entry %q: sha256 must be 64 hex chars, got %d", e.Name, len(e.SHA256))
		case e.Records == 0:
			return fmt.Errorf("tracefile: manifest entry %q: zero records", e.Name)
		case e.FormatVersion != Version:
			return fmt.Errorf("tracefile: manifest entry %q: format version %d, support %d", e.Name, e.FormatVersion, Version)
		case seen[e.Name]:
			return fmt.Errorf("tracefile: manifest entry %q duplicated", e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}

// Upsert replaces the entry with e's name, or appends it.
func (m *Manifest) Upsert(e ManifestEntry) {
	for i := range m.Traces {
		if m.Traces[i].Name == e.Name {
			m.Traces[i] = e
			return
		}
	}
	m.Traces = append(m.Traces, e)
}

// LoadManifest reads and validates a corpus manifest.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("tracefile: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("tracefile: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// SaveManifest writes m to path as indented JSON with entries sorted by
// name, so regenerated manifests diff cleanly. Saving has no visible
// side effect on the caller: the sort happens on a copied slice, never
// through m's backing array.
func SaveManifest(path string, m Manifest) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	m.Traces = append([]ManifestEntry(nil), m.Traces...)
	sort.Slice(m.Traces, func(i, j int) bool { return m.Traces[i].Name < m.Traces[j].Name })
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tracefile: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("tracefile: writing manifest: %w", err)
	}
	return nil
}

// registered maps benchmark name → manifest sha256 for every trace this
// process has registered, making corpus re-registration (same manifest
// loaded by several subsystems) idempotent.
var (
	regMu      sync.Mutex
	registered = map[string]string{}
)

// RegisterCorpus loads the manifest named by cfg and registers each
// trace as a workload benchmark "trace:<name>". It returns the
// registered benchmark names in manifest-sorted order. Re-registering a
// name with the same sha256 is a no-op; a different sha256 is an error.
// With cfg.Verify, every file is fully scanned (CRC per chunk, stream
// fingerprint and record count against the manifest); otherwise only
// the file header is checked.
//
// Registration is all-or-nothing: every entry is validated — file
// check, conflict check, and workload-name availability — before any
// entry mutates the workload registry, so a failing manifest leaves the
// process exactly as it was.
func RegisterCorpus(cfg config.TraceConfig) ([]string, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := LoadManifest(cfg.Manifest)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(cfg.Manifest)
	regMu.Lock()
	defer regMu.Unlock()

	// Phase 1: validate every entry without touching any registry.
	type pending struct {
		bench string
		path  string
		e     ManifestEntry
	}
	var commits []pending
	names := make([]string, 0, len(m.Traces))
	for _, e := range m.Traces {
		bench := BenchPrefix + e.Name
		names = append(names, bench)
		if prev, ok := registered[bench]; ok {
			if prev == e.SHA256 {
				continue
			}
			return nil, fmt.Errorf("tracefile: %s already registered with sha256 %s, manifest has %s", bench, prev, e.SHA256)
		}
		if _, taken := workload.ByName(bench); taken {
			return nil, fmt.Errorf("tracefile: benchmark %q already exists in the workload registry", bench)
		}
		path := e.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if err := checkEntry(path, e, cfg.MaxChunkBytes, cfg.Verify); err != nil {
			return nil, err
		}
		commits = append(commits, pending{bench: bench, path: path, e: e})
	}

	// Phase 2: commit. Every entry passed validation, so registration
	// can only fail on a workload-name collision — which phase 1 ruled
	// out under the same lock.
	for _, c := range commits {
		c := c
		spec := workload.Spec{
			Name:  c.bench,
			Suite: "trace",
			Input: filepath.Base(c.e.File),
			New: func(seed uint64) isa.Source {
				// Replay is seed-independent: the trace is the program.
				return newFileSource(c.path, cfg.MaxChunkBytes)
			},
		}
		if err := workload.RegisterExternal(spec); err != nil {
			// Unreachable given phase 1; surface it rather than hide it.
			return nil, err
		}
		registered[c.bench] = c.e.SHA256
	}
	sort.Strings(names)
	return names, nil
}

// checkEntry validates a manifest entry's file: header-only by default,
// full scan (CRCs, fingerprint, record count) when full is set.
func checkEntry(path string, e ManifestEntry, maxChunk int, full bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tracefile: trace %q: %w", e.Name, err)
	}
	defer func() { _ = f.Close() }() // read-only
	if !full {
		if _, err := NewReader(f, ReaderOptions{MaxChunkBytes: maxChunk}); err != nil {
			return fmt.Errorf("tracefile: trace %q: %w", e.Name, err)
		}
		return nil
	}
	info, err := Inspect(f)
	if err != nil {
		return fmt.Errorf("tracefile: trace %q: %w", e.Name, err)
	}
	if info.Fingerprint != e.SHA256 {
		return fmt.Errorf("%w: trace %q: fingerprint %s, manifest has %s", ErrCorrupt, e.Name, info.Fingerprint, e.SHA256)
	}
	if info.Records != e.Records {
		return fmt.Errorf("%w: trace %q: %d records, manifest has %d", ErrCorrupt, e.Name, info.Records, e.Records)
	}
	return nil
}

// Registered returns every registered trace benchmark name, sorted —
// the list the server's 400 responses surface on an unknown trace.
func Registered() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsTraceBench reports whether name is in the trace benchmark namespace.
func IsTraceBench(name string) bool {
	return len(name) > len(BenchPrefix) && name[:len(BenchPrefix)] == BenchPrefix
}

// fileSource streams a PFTC file as an isa.Source, looping back to the
// start on a clean end of trace so it satisfies the workload contract
// (models are infinite sources; the simulator bounds runs by instruction
// count). Decode errors stop the stream and surface from Close.
type fileSource struct {
	path     string
	maxChunk int

	f        *os.File
	r        *Reader
	passRecs uint64
	err      error
	done     bool
}

func newFileSource(path string, maxChunk int) *fileSource {
	s := &fileSource{path: path, maxChunk: maxChunk}
	f, err := os.Open(path)
	if err != nil {
		s.fail(err)
		return s
	}
	s.f = f
	s.attach()
	return s
}

// attach builds a fresh Reader over the file's current start.
func (s *fileSource) attach() {
	r, err := NewReader(s.f, ReaderOptions{MaxChunkBytes: s.maxChunk})
	if err != nil {
		s.fail(err)
		return
	}
	s.r = r
	s.passRecs = 0
}

func (s *fileSource) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.done = true
}

// Next implements isa.Source.
func (s *fileSource) Next() (isa.Record, bool) {
	for !s.done {
		rec, ok := s.r.Next()
		if ok {
			s.passRecs++
			return rec, true
		}
		if err := s.r.Err(); err != nil {
			s.fail(err)
			break
		}
		if s.passRecs == 0 {
			// An empty trace can't loop; report exhaustion instead of
			// spinning.
			s.done = true
			break
		}
		if _, err := s.f.Seek(0, 0); err != nil {
			s.fail(err)
			break
		}
		s.attach()
	}
	return isa.Record{}, false
}

// Close releases the file and returns the first error the source hit
// (decode or I/O), so trace corruption surfaces as a run error. It is
// idempotent.
func (s *fileSource) Close() error {
	s.done = true
	if s.f != nil {
		cerr := s.f.Close()
		s.f = nil
		if s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}
