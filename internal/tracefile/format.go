// Package tracefile implements the PFTC chunked binary trace format —
// the on-disk contract that lets externally captured program traces
// (ChampSim conversions, synthetic-model captures, third-party tools)
// replay through the simulator as first-class benchmarks.
//
// docs/TRACES.md is the normative byte-level specification; this header
// is the summary. A PFTC file is:
//
//	file header (16 bytes):
//	  magic    [4]byte  "PFTC"
//	  version  uint16   format version (currently 1)
//	  flags    uint16   reserved, must be zero
//	  reserved uint64   must be zero
//	chunks (zero or more):
//	  chunk header (16 bytes):
//	    payload  uint32  payload length in bytes (> 0)
//	    records  uint32  records in this chunk (> 0)
//	    crc32c   uint32  CRC-32C (Castagnoli) of the payload bytes
//	    reserved uint32  must be zero
//	  payload: `records` delta/varint-encoded records (see below)
//	sentinel: an all-zero chunk header terminates the chunk stream
//	trailer (48 bytes):
//	  records     uint64   total record count across all chunks
//	  chunks      uint32   chunk count
//	  reserved    uint32   must be zero
//	  fingerprint [32]byte sha256 stream fingerprint (see below)
//
// All integers are little-endian. Each record is encoded as:
//
//	byte 0      op (low 6 bits) | dep flag (bit 6) | taken flag (bit 7)
//	varint      PC delta from the previous record's PC (zig-zag)
//	uvarint     absolute address — present only for memory ops
//	            (load/store/prefetch: the data address) and branches
//	            (the resolved target, taken or not)
//
// The PC-delta state resets to zero at every chunk boundary, so each
// chunk decodes independently of its predecessors: a reader can stream
// chunk by chunk in bounded memory, and a corrupt chunk is localized by
// its CRC. Records never straddle a chunk boundary — the writer cuts a
// chunk only between records, at the first boundary past the target
// payload size.
//
// The trailer's stream fingerprint is the sha256 of the *canonical*
// encoding: the same record codec with the PC-delta state never reset,
// as if the whole trace were one chunk. Two PFTC files holding the same
// record sequence therefore carry the same fingerprint regardless of
// chunk size — the identity the determinism guarantees (and the corpus
// manifest) pin. Per-chunk sha256 fingerprints additionally identify
// the exact bytes of each chunk of a specific file.
package tracefile

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Magic identifies a PFTC trace file.
var Magic = [4]byte{'P', 'F', 'T', 'C'}

// Version is the format version this package reads and writes.
const Version = 1

const (
	fileHeaderLen  = 16
	chunkHeaderLen = 16
	trailerLen     = 48

	takenFlag = 0x80
	depFlag   = 0x40
	opMask    = 0x3f
)

// DefaultChunkBytes is the writer's default target chunk payload size.
// 64 KiB keeps the reader's working set tiny while amortizing the
// 16-byte chunk header and the per-chunk hashing to noise.
const DefaultChunkBytes = 1 << 16

// DefaultMaxChunkBytes bounds the payload length a reader will accept
// from a chunk header before allocating — the guard that keeps a
// corrupt or hostile length field from turning into a huge allocation.
const DefaultMaxChunkBytes = 1 << 26 // 64 MiB

// Sentinel errors distinguishing the decode failure classes. Wrapped
// errors carry position detail; test with errors.Is.
var (
	// ErrBadMagic: the input does not start with the PFTC magic.
	ErrBadMagic = errors.New("tracefile: not a PFTC trace file")
	// ErrBadVersion: the file's format version is not supported.
	ErrBadVersion = errors.New("tracefile: unsupported format version")
	// ErrTruncated: the input ended mid-structure (chunk header,
	// payload, or trailer).
	ErrTruncated = errors.New("tracefile: truncated trace file")
	// ErrCorrupt: a structure decoded but its content is invalid (CRC
	// mismatch, bad record encoding, count mismatch, nonzero reserved
	// field, fingerprint mismatch).
	ErrCorrupt = errors.New("tracefile: corrupt trace file")
)

// appendRecord appends r's encoding to buf using *lastPC as the
// PC-delta state and returns the extended buffer. It is the single
// encoder both the chunk payloads and the canonical fingerprint stream
// share.
func appendRecord(buf []byte, r isa.Record, lastPC *uint64) []byte {
	head := byte(r.Op)
	if r.Taken {
		head |= takenFlag
	}
	if r.Dep {
		head |= depFlag
	}
	buf = append(buf, head)
	buf = binary.AppendVarint(buf, int64(r.PC)-int64(*lastPC))
	*lastPC = r.PC
	if recordHasAddr(r.Op) {
		buf = binary.AppendUvarint(buf, r.Addr)
	}
	return buf
}

// decodeRecord decodes one record from buf at offset off, updating the
// PC-delta state, and returns the record and the next offset.
func decodeRecord(buf []byte, off int, lastPC *uint64) (isa.Record, int, error) {
	if off >= len(buf) {
		return isa.Record{}, 0, fmt.Errorf("%w: record head past payload end", ErrCorrupt)
	}
	head := buf[off]
	off++
	var rec isa.Record
	rec.Op = isa.Op(head & opMask)
	rec.Taken = head&takenFlag != 0
	rec.Dep = head&depFlag != 0
	if !rec.Op.Valid() {
		return isa.Record{}, 0, fmt.Errorf("%w: invalid op byte %#x", ErrCorrupt, head)
	}
	delta, n := binary.Varint(buf[off:])
	if n <= 0 {
		return isa.Record{}, 0, fmt.Errorf("%w: bad PC-delta varint", ErrCorrupt)
	}
	off += n
	rec.PC = uint64(int64(*lastPC) + delta)
	*lastPC = rec.PC
	if recordHasAddr(rec.Op) {
		addr, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return isa.Record{}, 0, fmt.Errorf("%w: bad address uvarint", ErrCorrupt)
		}
		off += n
		rec.Addr = addr
	}
	return rec, off, nil
}

// recordHasAddr reports whether the encoding carries an address field.
// Branches always do (the resolved target, taken or not), so
// encode→decode is a lossless identity — unlike the legacy PFTRACE1
// stream, which dropped not-taken targets.
func recordHasAddr(op isa.Op) bool {
	return op.IsMem() || op == isa.OpBranch
}
