//go:build ignore

// Generates sample.champsim.gz, the checked-in ChampSim fixture the
// trace-smoke tests and CI convert and replay. Fully deterministic
// (fixed LCG, zero gzip ModTime), so regenerating it reproduces the
// checked-in bytes exactly:
//
//	cd internal/tracefile/testdata && go run gen_sample.go
//
// The workload is a synthetic loop nest: a strided walk over one array,
// an LCG-scattered walk over a second, a stack store, and a backward
// loop branch that falls through every 50th iteration — enough op and
// address variety to exercise every converter path (loads, stores,
// taken and not-taken branches, the final-branch lookahead fallback).
package main

import (
	"compress/gzip"
	"encoding/binary"
	"log"
	"os"
)

const (
	instructions = 3000
	recLen       = 64

	codeBase  = 0x0000000000401000
	arrayA    = 0x0000000010000000
	arrayB    = 0x0000000020000000
	stackBase = 0x00007ffe00000000
)

type rec struct {
	ip       uint64
	isBranch bool
	taken    bool
	destMem  [2]uint64
	srcMem   [4]uint64
}

func (r rec) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[0:8], r.ip)
	if r.isBranch {
		buf[8] = 1
	}
	if r.taken {
		buf[9] = 1
	}
	for i, a := range r.destMem {
		binary.LittleEndian.PutUint64(buf[16+8*i:], a)
	}
	for i, a := range r.srcMem {
		binary.LittleEndian.PutUint64(buf[32+8*i:], a)
	}
}

func main() {
	f, err := os.Create("sample.champsim.gz")
	if err != nil {
		log.Fatal(err)
	}
	zw, err := gzip.NewWriterLevel(f, gzip.BestCompression)
	if err != nil {
		log.Fatal(err)
	}

	lcg := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg >> 33
	}

	buf := make([]byte, recLen)
	emit := func(r rec) {
		r.encode(buf)
		if _, err := zw.Write(buf); err != nil {
			log.Fatal(err)
		}
	}

	// Six instructions per iteration; the last is the loop branch.
	n := 0
	for i := 0; n < instructions; i++ {
		pc := uint64(codeBase)
		emit(rec{ip: pc, srcMem: [4]uint64{arrayA + uint64(i)*64}})
		emit(rec{ip: pc + 4}) // ALU
		emit(rec{ip: pc + 8, srcMem: [4]uint64{arrayB + (next()%4096)*8}})
		emit(rec{ip: pc + 12, destMem: [2]uint64{stackBase + uint64(i%16)*8}})
		emit(rec{ip: pc + 16}) // ALU
		taken := i%50 != 49
		emit(rec{ip: pc + 20, isBranch: true, taken: taken})
		n += 6
	}

	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
