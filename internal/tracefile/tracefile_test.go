package tracefile

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/isa"
)

// genRecords builds a deterministic, varied record stream: strided and
// pointer-chasing loads, stores, branches with large PC jumps (negative
// deltas), software prefetches, and ALU padding.
func genRecords(n int) []isa.Record {
	recs := make([]isa.Record, 0, n)
	pc := uint64(0x0040_0000)
	addr := uint64(0x1000_0000)
	state := uint64(0x9e3779b97f4a7c15)
	for len(recs) < n {
		state = state*6364136223846793005 + 1442695040888963407
		pc += isa.InstrBytes * (1 + state%7)
		switch state % 6 {
		case 0:
			recs = append(recs, isa.Load(pc, addr))
			addr += 32
		case 1:
			recs = append(recs, isa.Store(pc, addr^(state>>32)&^31))
		case 2:
			recs = append(recs, isa.DepLoad(pc, 0x2000_0000+(state>>17)%(1<<20)))
		case 3:
			// Taken branch jumping backwards: exercises negative PC deltas
			// and the branch-target address field.
			target := pc - isa.InstrBytes*(state%64)
			recs = append(recs, isa.Branch(pc, target, true))
			pc = target
		case 4:
			recs = append(recs, isa.Branch(pc, pc+8*isa.InstrBytes, false))
		default:
			recs = append(recs, isa.ALU(pc))
		}
	}
	return recs
}

func encodeAll(t *testing.T, recs []isa.Record, chunkBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, recs, WriterOptions{ChunkBytes: chunkBytes}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripIdentity(t *testing.T) {
	recs := genRecords(5000)
	for _, chunkBytes := range []int{1, 64, 1024, 1 << 20} {
		data := encodeAll(t, recs, chunkBytes)
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("chunkBytes=%d: Decode: %v", chunkBytes, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("chunkBytes=%d: decoded %d records, want %d", chunkBytes, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("chunkBytes=%d: record %d = %+v, want %+v", chunkBytes, i, got[i], recs[i])
			}
		}
	}
}

func TestFingerprintStableAcrossChunkSizes(t *testing.T) {
	recs := genRecords(3000)
	var want [32]byte
	for i, chunkBytes := range []int{1, 128, 4096, 1 << 22} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, WriterOptions{ChunkBytes: chunkBytes})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		fp := w.Fingerprint()
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("chunkBytes=%d: fingerprint %x, want %x", chunkBytes, fp, want)
		}
		// The trailer agrees, and a verifying reader reproduces it.
		r, err := NewReader(bytes.NewReader(buf.Bytes()), ReaderOptions{VerifyFingerprint: true})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("chunkBytes=%d: verify decode: %v", chunkBytes, err)
		}
		got, ok := r.Fingerprint()
		if !ok || got != want {
			t.Fatalf("chunkBytes=%d: trailer fingerprint %x (ok=%v), want %x", chunkBytes, got, ok, want)
		}
	}
	if sha := sha256.Sum256(nil); want == sha {
		t.Fatal("fingerprint of a non-empty trace equals sha256 of nothing")
	}
}

func TestRecordsSpanChunkBoundaries(t *testing.T) {
	// A 1-byte chunk target forces a cut after every record: the stream
	// decodes across many chunk boundaries, and every chunk decodes
	// independently (PC-delta state reset per chunk).
	recs := genRecords(200)
	data := encodeAll(t, recs, 1)
	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Chunks) != len(recs) {
		t.Fatalf("got %d chunks, want one per record (%d)", len(info.Chunks), len(recs))
	}
	for i, c := range info.Chunks {
		if c.Records != 1 {
			t.Fatalf("chunk %d holds %d records, want 1", i, c.Records)
		}
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil || len(got) != len(recs) {
		t.Fatalf("Decode: %d records, err=%v", len(got), err)
	}
}

func TestWriterCutsOnlyAtRecordBoundaries(t *testing.T) {
	// Odd mid-record chunk targets: total decoded payload must still
	// partition exactly into whole records (no trailing bytes → no
	// ErrCorrupt) and chunk record counts must sum to the total.
	recs := genRecords(1000)
	for _, chunkBytes := range []int{3, 7, 13, 61} {
		data := encodeAll(t, recs, chunkBytes)
		info, err := Inspect(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("chunkBytes=%d: Inspect: %v", chunkBytes, err)
		}
		var sum uint64
		for i, c := range info.Chunks {
			if i < len(info.Chunks)-1 && int(c.Bytes) < chunkBytes {
				t.Fatalf("chunkBytes=%d: non-final chunk %d is %d bytes, cut before the target", chunkBytes, i, c.Bytes)
			}
			sum += uint64(c.Records)
		}
		if sum != uint64(len(recs)) {
			t.Fatalf("chunkBytes=%d: chunk record counts sum to %d, want %d", chunkBytes, sum, len(recs))
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil, WriterOptions{}); err != nil {
		t.Fatalf("Encode(empty): %v", err)
	}
	wantLen := fileHeaderLen + chunkHeaderLen + trailerLen // header + sentinel + trailer
	if buf.Len() != wantLen {
		t.Fatalf("empty trace is %d bytes, want %d", buf.Len(), wantLen)
	}
	recs, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode(empty): %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("decoded %d records from an empty trace", len(recs))
	}
	info, err := Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil || info.Records != 0 || len(info.Chunks) != 0 {
		t.Fatalf("Inspect(empty) = %+v, err=%v", info, err)
	}
}

func TestTruncatedFinalChunk(t *testing.T) {
	recs := genRecords(500)
	data := encodeAll(t, recs, 256)
	// Cut the stream at several depths: inside the trailer, inside the
	// sentinel, inside the final chunk's payload, inside a chunk header,
	// and inside the file header.
	for _, cut := range []int{len(data) - 10, len(data) - trailerLen - 4, len(data) - trailerLen - chunkHeaderLen - 5, fileHeaderLen + 3, 7} {
		_, err := Decode(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCRCMismatch(t *testing.T) {
	recs := genRecords(500)
	data := encodeAll(t, recs, 256)
	corrupt := bytes.Clone(data)
	corrupt[fileHeaderLen+chunkHeaderLen+5] ^= 0x41 // flip a byte inside chunk 0's payload
	_, err := Decode(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	data := encodeAll(t, genRecords(10), 0)

	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), ReaderOptions{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: err = %v, want ErrBadMagic", err)
	}

	bad = bytes.Clone(data)
	binary.LittleEndian.PutUint16(bad[4:6], 99)
	if _, err := NewReader(bytes.NewReader(bad), ReaderOptions{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: err = %v, want ErrBadVersion", err)
	}

	bad = bytes.Clone(data)
	bad[6] = 1 // reserved flags
	if _, err := NewReader(bytes.NewReader(bad), ReaderOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flags: err = %v, want ErrCorrupt", err)
	}
}

func TestTrailerCountMismatch(t *testing.T) {
	data := encodeAll(t, genRecords(100), 0)
	bad := bytes.Clone(data)
	// The trailer's record count is the first u64 of the final 48 bytes.
	binary.LittleEndian.PutUint64(bad[len(bad)-trailerLen:], 12345)
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFingerprintMismatchDetected(t *testing.T) {
	data := encodeAll(t, genRecords(100), 0)
	bad := bytes.Clone(data)
	bad[len(bad)-1] ^= 0xff // last fingerprint byte
	_, err := Decode(bytes.NewReader(bad))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// A non-verifying reader accepts the file (CRCs are intact) — the
	// fingerprint is an end-to-end identity, not a per-read gate.
	r, err := NewReader(bytes.NewReader(bad), ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("non-verifying read: %v", err)
	}
}

func TestOversizeChunkRejected(t *testing.T) {
	data := encodeAll(t, genRecords(2000), 1<<12)
	_, err := Decode(bytes.NewReader(data)) // sanity: valid as written
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(data), ReaderOptions{MaxChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader produced a record from a chunk above its size cap")
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriterRejectsInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(isa.Record{Op: isa.OpLoad, PC: 2}); err == nil { // misaligned PC
		t.Fatal("Write accepted a misaligned PC")
	}
}
