package tracefile

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/workload"
)

// writeCorpus writes a PFTC trace plus a one-entry manifest into dir and
// returns the manifest path and the trace's manifest entry.
func writeCorpus(t *testing.T, dir, name string, recs []isa.Record) (string, ManifestEntry) {
	t.Helper()
	tracePath := filepath.Join(dir, name+".pftc")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, WriterOptions{ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fp := w.Fingerprint()
	entry := ManifestEntry{
		Name:          name,
		File:          name + ".pftc",
		SHA256:        fmt.Sprintf("%x", fp[:]),
		Records:       w.Count(),
		FormatVersion: Version,
	}
	manifestPath := filepath.Join(dir, "corpus.json")
	if err := SaveManifest(manifestPath, Manifest{Version: ManifestVersion, Traces: []ManifestEntry{entry}}); err != nil {
		t.Fatal(err)
	}
	return manifestPath, entry
}

func TestRegisterCorpusAndReplay(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(300)
	manifest, _ := writeCorpus(t, dir, "corpus-replay", recs)

	names, err := RegisterCorpus(config.TraceConfig{Manifest: manifest, Verify: true})
	if err != nil {
		t.Fatalf("RegisterCorpus: %v", err)
	}
	if len(names) != 1 || names[0] != "trace:corpus-replay" {
		t.Fatalf("names = %v", names)
	}
	spec, ok := workload.ByName("trace:corpus-replay")
	if !ok {
		t.Fatal("trace benchmark not in the workload registry")
	}
	if spec.Suite != "trace" {
		t.Fatalf("suite = %q, want \"trace\"", spec.Suite)
	}

	// The source loops: draw 2.5 passes' worth of records and check the
	// stream repeats the trace exactly.
	src := spec.New(1)
	n := len(recs)*2 + len(recs)/2
	for i := 0; i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			t.Fatalf("source exhausted at %d (trace loops)", i)
		}
		if want := recs[i%len(recs)]; rec != want {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	cl, ok := src.(interface{ Close() error })
	if !ok {
		t.Fatal("trace source is not an io.Closer")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Re-registering the same manifest is a no-op.
	if _, err := RegisterCorpus(config.TraceConfig{Manifest: manifest}); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	found := false
	for _, n := range Registered() {
		if n == "trace:corpus-replay" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Registered() = %v, missing trace:corpus-replay", Registered())
	}
}

func TestRegisterCorpusVerifyCatchesTamper(t *testing.T) {
	dir := t.TempDir()
	manifest, entry := writeCorpus(t, dir, "corpus-tamper", genRecords(300))
	path := filepath.Join(dir, entry.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[fileHeaderLen+chunkHeaderLen] ^= 0x01 // flip a payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterCorpus(config.TraceConfig{Manifest: manifest, Verify: true}); err == nil {
		t.Fatal("Verify accepted a tampered trace")
	}
}

func TestRegisterCorpusConflict(t *testing.T) {
	dir := t.TempDir()
	manifest, _ := writeCorpus(t, dir, "corpus-conflict", genRecords(100))
	if _, err := RegisterCorpus(config.TraceConfig{Manifest: manifest}); err != nil {
		t.Fatal(err)
	}
	// Same name, different content → different sha256 → rejected.
	dir2 := t.TempDir()
	manifest2, _ := writeCorpus(t, dir2, "corpus-conflict", genRecords(101))
	_, err := RegisterCorpus(config.TraceConfig{Manifest: manifest2})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("err = %v, want already-registered conflict", err)
	}
}

// TestRegisterCorpusAllOrNothing pins the atomicity contract: a
// manifest whose later entry fails validation must leave the process
// exactly as it was — no trace registered, no workload mutated — even
// though earlier entries validated fine.
func TestRegisterCorpusAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	manifest, good := writeCorpus(t, dir, "corpus-atomic-good", genRecords(100))

	// Append a second entry whose file does not exist: it fails after the
	// first entry has already passed every check.
	m, err := LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	m.Upsert(ManifestEntry{
		Name:          "corpus-atomic-missing",
		File:          "does-not-exist.pftc",
		SHA256:        strings.Repeat("d", 64),
		Records:       1,
		FormatVersion: Version,
	})
	if err := SaveManifest(manifest, m); err != nil {
		t.Fatal(err)
	}

	before := Registered()
	if _, err := RegisterCorpus(config.TraceConfig{Manifest: manifest}); err == nil {
		t.Fatal("RegisterCorpus accepted a manifest with a missing file")
	}
	after := Registered()
	if len(after) != len(before) {
		t.Fatalf("failed registration mutated the trace registry: before %v, after %v", before, after)
	}
	if _, ok := workload.ByName(BenchPrefix + good.Name); ok {
		t.Fatalf("failed registration leaked %q into the workload registry", BenchPrefix+good.Name)
	}
	if _, ok := workload.ByName(BenchPrefix + "corpus-atomic-missing"); ok {
		t.Fatal("failed registration leaked the failing entry into the workload registry")
	}

	// Drop the bad entry: the same manifest now registers cleanly,
	// proving the failed attempt left nothing half-done behind.
	m.Traces = m.Traces[:0]
	m.Upsert(good)
	if err := SaveManifest(manifest, m); err != nil {
		t.Fatal(err)
	}
	names, err := RegisterCorpus(config.TraceConfig{Manifest: manifest})
	if err != nil {
		t.Fatalf("re-register after failed attempt: %v", err)
	}
	if len(names) != 1 || names[0] != BenchPrefix+good.Name {
		t.Fatalf("names = %v", names)
	}
}

// TestSaveManifestDoesNotReorderCaller pins that SaveManifest sorts a
// copy: the caller's entry order (and backing array) stay untouched.
func TestSaveManifestDoesNotReorderCaller(t *testing.T) {
	entries := []ManifestEntry{
		{Name: "zz", File: "zz.pftc", SHA256: strings.Repeat("a", 64), Records: 1, FormatVersion: Version},
		{Name: "aa", File: "aa.pftc", SHA256: strings.Repeat("b", 64), Records: 2, FormatVersion: Version},
		{Name: "mm", File: "mm.pftc", SHA256: strings.Repeat("c", 64), Records: 3, FormatVersion: Version},
	}
	m := Manifest{Version: ManifestVersion, Traces: entries}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"zz", "aa", "mm"} {
		if entries[i].Name != want {
			t.Fatalf("SaveManifest reordered the caller's slice: %v", entries)
		}
	}
	// The file itself is sorted.
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Traces[0].Name != "aa" || got.Traces[1].Name != "mm" || got.Traces[2].Name != "zz" {
		t.Fatalf("saved manifest not sorted: %+v", got.Traces)
	}
}

func TestManifestValidate(t *testing.T) {
	good := ManifestEntry{Name: "x", File: "x.pftc", SHA256: strings.Repeat("a", 64), Records: 1, FormatVersion: Version}
	cases := []struct {
		name string
		m    Manifest
	}{
		{"bad version", Manifest{Version: 2, Traces: []ManifestEntry{good}}},
		{"empty name", Manifest{Version: 1, Traces: []ManifestEntry{{File: "x", SHA256: good.SHA256, Records: 1, FormatVersion: 1}}}},
		{"empty file", Manifest{Version: 1, Traces: []ManifestEntry{{Name: "x", SHA256: good.SHA256, Records: 1, FormatVersion: 1}}}},
		{"short sha", Manifest{Version: 1, Traces: []ManifestEntry{{Name: "x", File: "x", SHA256: "ab", Records: 1, FormatVersion: 1}}}},
		{"zero records", Manifest{Version: 1, Traces: []ManifestEntry{{Name: "x", File: "x", SHA256: good.SHA256, FormatVersion: 1}}}},
		{"bad format version", Manifest{Version: 1, Traces: []ManifestEntry{{Name: "x", File: "x", SHA256: good.SHA256, Records: 1, FormatVersion: 9}}}},
		{"dup name", Manifest{Version: 1, Traces: []ManifestEntry{good, good}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", tc.name)
		}
	}
	if err := (Manifest{Version: 1, Traces: []ManifestEntry{good}}).Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestManifestUpsertAndRoundTrip(t *testing.T) {
	var m Manifest
	m.Version = ManifestVersion
	e := ManifestEntry{Name: "b", File: "b.pftc", SHA256: strings.Repeat("b", 64), Records: 2, FormatVersion: Version}
	m.Upsert(ManifestEntry{Name: "a", File: "a.pftc", SHA256: strings.Repeat("a", 64), Records: 1, FormatVersion: Version})
	m.Upsert(e)
	e.Records = 7
	m.Upsert(e) // replace, not append
	if len(m.Traces) != 2 || m.Traces[1].Records != 7 {
		t.Fatalf("Upsert: %+v", m.Traces)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 || got.Traces[0].Name != "a" || got.Traces[1].Records != 7 {
		t.Fatalf("round-trip: %+v", got.Traces)
	}
}

func TestIsTraceBench(t *testing.T) {
	if !IsTraceBench("trace:x") || IsTraceBench("mcf") || IsTraceBench("trace:") {
		t.Fatal("IsTraceBench misclassifies")
	}
}

func TestTraceConfigValidate(t *testing.T) {
	if err := (config.TraceConfig{}).Validate(); err == nil {
		t.Fatal("empty manifest path accepted")
	}
	if err := (config.TraceConfig{Manifest: "x", MaxChunkBytes: -1}).Validate(); err == nil {
		t.Fatal("negative max chunk bytes accepted")
	}
	if err := (config.TraceConfig{Manifest: "x"}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
