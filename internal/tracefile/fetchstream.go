// The fetch-stream adapter: turns a PFTC trace into the I-side
// cache-block instruction-fetch stream the front end consumes. The
// per-record PCs — including the lookahead-resolved taken-branch
// targets the converter stored — run through a frontend.FetchUnit, so
// the trace-driven stream and the live fetch path in internal/hier
// agree by construction.
//
// Decoding rides the ordinary Reader, never a private re-decode: the
// PC-delta state therefore resets at every chunk boundary exactly as
// the decoder's does, and the fetch stream is independent of how the
// writer chunked the records. The cross-chunk regression test pins
// this with a branch record sitting last in a chunk.

package tracefile

import (
	"fmt"
	"io"

	"repro/internal/frontend"
)

// FetchBlock is one step of the instruction-fetch block stream: the
// front end crossed into a new cache block.
type FetchBlock struct {
	// Block is the line-aligned address of the instruction block.
	Block uint64
	// PC is the first instruction address fetched in the block.
	PC uint64
	// Redirect is true when the block was entered by a control-flow
	// redirect rather than sequential fall-through.
	Redirect bool
}

// FetchStream derives the fetch-block stream from a PFTC trace.
type FetchStream struct {
	r  *Reader
	fu frontend.FetchUnit
}

// NewFetchStream validates the trace header and returns a streaming
// fetch-block decoder over lineBytes-sized instruction blocks.
func NewFetchStream(r io.Reader, lineBytes int, opts ReaderOptions) (*FetchStream, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("tracefile: fetch-stream line size must be a positive power of two, got %d", lineBytes)
	}
	rd, err := NewReader(r, opts)
	if err != nil {
		return nil, err
	}
	return &FetchStream{r: rd, fu: frontend.NewFetchUnit(lineBytes)}, nil
}

// Next returns the next fetch-block transition. Records whose PC stays
// within the current block are consumed silently; after exhaustion or
// a decode error it keeps returning false (Err distinguishes the two).
func (s *FetchStream) Next() (FetchBlock, bool) {
	for {
		rec, ok := s.r.Next()
		if !ok {
			return FetchBlock{}, false
		}
		block, newBlock, redirect := s.fu.Step(rec.PC)
		if !newBlock {
			continue
		}
		return FetchBlock{Block: block, PC: rec.PC, Redirect: redirect}, true
	}
}

// Err surfaces the decode error that ended the stream, if any.
func (s *FetchStream) Err() error { return s.r.Err() }

// Records returns the count of trace records consumed so far.
func (s *FetchStream) Records() uint64 { return s.r.Records() }
