// The PFTC decoder: streams chunk by chunk in bounded memory (one
// chunk payload resident at a time, buffer reused across chunks),
// verifying each chunk's CRC as it loads and the trailer's counts at
// the end. It implements isa.Source, so a trace file drops into every
// place a workload model fits.

package tracefile

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/isa"
)

// ReaderOptions tune the decoder.
type ReaderOptions struct {
	// MaxChunkBytes rejects chunk headers claiming a larger payload
	// before allocating. 0 selects DefaultMaxChunkBytes.
	MaxChunkBytes int
	// VerifyFingerprint re-computes the canonical stream fingerprint
	// while decoding and checks it against the trailer. Off by default:
	// the per-chunk CRCs already catch corruption; the sha256 re-hash is
	// for converters and corpus verification.
	VerifyFingerprint bool
}

// Reader decodes a PFTC stream. It implements isa.Source.
type Reader struct {
	r        *bufio.Reader
	maxChunk int

	payload []byte // current chunk payload (reused across chunks)
	off     int    // decode offset into payload
	recs    uint32 // records remaining in the current chunk
	lastPC  uint64 // per-chunk PC-delta state
	chunkIx int

	canon   hash.Hash // non-nil when VerifyFingerprint
	canonPC uint64
	scratch []byte

	count   uint64
	fp      [32]byte // trailer fingerprint, valid once done
	done    bool
	haveFP  bool
	err     error
}

// NewReader validates the file header and returns a streaming decoder.
func NewReader(r io.Reader, opts ReaderOptions) (*Reader, error) {
	maxChunk := opts.MaxChunkBytes
	if maxChunk <= 0 {
		maxChunk = DefaultMaxChunkBytes
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading file header: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrBadVersion, v, Version)
	}
	if binary.LittleEndian.Uint16(hdr[6:8]) != 0 || binary.LittleEndian.Uint64(hdr[8:16]) != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved file-header field", ErrCorrupt)
	}
	tr := &Reader{r: br, maxChunk: maxChunk}
	if opts.VerifyFingerprint {
		tr.canon = sha256.New()
	}
	return tr, nil
}

// Next implements isa.Source. After exhaustion or a decode error it
// keeps returning false; Err distinguishes a clean end from corruption.
func (t *Reader) Next() (isa.Record, bool) {
	if t.err != nil || t.done {
		return isa.Record{}, false
	}
	for t.recs == 0 {
		if !t.loadChunk() {
			return isa.Record{}, false
		}
	}
	rec, off, err := decodeRecord(t.payload, t.off, &t.lastPC)
	if err != nil {
		t.err = fmt.Errorf("chunk %d, record %d: %w", t.chunkIx-1, t.count, err)
		return isa.Record{}, false
	}
	t.off = off
	t.recs--
	if t.recs == 0 && t.off != len(t.payload) {
		t.err = fmt.Errorf("%w: chunk %d has %d trailing payload bytes", ErrCorrupt, t.chunkIx-1, len(t.payload)-t.off)
		return isa.Record{}, false
	}
	t.count++
	if t.canon != nil {
		t.scratch = appendRecord(t.scratch[:0], rec, &t.canonPC)
		t.canon.Write(t.scratch)
	}
	return rec, true
}

// loadChunk reads the next chunk header and payload, or the sentinel
// and trailer. It returns false when the stream is finished or failed.
func (t *Reader) loadChunk() bool {
	var hdr [chunkHeaderLen]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		t.err = fmt.Errorf("%w: reading chunk %d header: %v", ErrTruncated, t.chunkIx, err)
		return false
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	records := binary.LittleEndian.Uint32(hdr[4:8])
	crc := binary.LittleEndian.Uint32(hdr[8:12])
	if binary.LittleEndian.Uint32(hdr[12:16]) != 0 {
		t.err = fmt.Errorf("%w: chunk %d: nonzero reserved header field", ErrCorrupt, t.chunkIx)
		return false
	}
	if payloadLen == 0 && records == 0 && crc == 0 {
		t.finish()
		return false
	}
	if payloadLen == 0 || records == 0 {
		t.err = fmt.Errorf("%w: chunk %d: empty %s in a non-sentinel header", ErrCorrupt, t.chunkIx,
			map[bool]string{true: "payload", false: "record count"}[payloadLen == 0])
		return false
	}
	if int(payloadLen) > t.maxChunk {
		t.err = fmt.Errorf("%w: chunk %d claims %d payload bytes, cap is %d", ErrCorrupt, t.chunkIx, payloadLen, t.maxChunk)
		return false
	}
	if cap(t.payload) < int(payloadLen) {
		t.payload = make([]byte, payloadLen)
	}
	t.payload = t.payload[:payloadLen]
	if _, err := io.ReadFull(t.r, t.payload); err != nil {
		t.err = fmt.Errorf("%w: reading chunk %d payload: %v", ErrTruncated, t.chunkIx, err)
		return false
	}
	if got := crc32.Checksum(t.payload, castagnoli); got != crc {
		t.err = fmt.Errorf("%w: chunk %d CRC mismatch: header %08x, payload %08x", ErrCorrupt, t.chunkIx, crc, got)
		return false
	}
	t.off = 0
	t.recs = records
	t.lastPC = 0
	t.chunkIx++
	return true
}

// finish reads and verifies the trailer after the sentinel.
func (t *Reader) finish() {
	var tail [trailerLen]byte
	if _, err := io.ReadFull(t.r, tail[:]); err != nil {
		t.err = fmt.Errorf("%w: reading trailer: %v", ErrTruncated, err)
		return
	}
	total := binary.LittleEndian.Uint64(tail[0:8])
	chunks := binary.LittleEndian.Uint32(tail[8:12])
	if binary.LittleEndian.Uint32(tail[12:16]) != 0 {
		t.err = fmt.Errorf("%w: nonzero reserved trailer field", ErrCorrupt)
		return
	}
	if total != t.count {
		t.err = fmt.Errorf("%w: trailer claims %d records, decoded %d", ErrCorrupt, total, t.count)
		return
	}
	if int(chunks) != t.chunkIx {
		t.err = fmt.Errorf("%w: trailer claims %d chunks, decoded %d", ErrCorrupt, chunks, t.chunkIx)
		return
	}
	copy(t.fp[:], tail[16:48])
	t.haveFP = true
	if t.canon != nil {
		var got [32]byte
		copy(got[:], t.canon.Sum(nil))
		if got != t.fp {
			t.err = fmt.Errorf("%w: stream fingerprint mismatch: trailer %x, decoded %x", ErrCorrupt, t.fp, got)
			return
		}
	}
	t.done = true
}

// Err returns nil after a clean end of trace, or the decode error that
// stopped the reader.
func (t *Reader) Err() error { return t.err }

// Records returns how many records have been decoded so far.
func (t *Reader) Records() uint64 { return t.count }

// Fingerprint returns the trailer's stream fingerprint; ok is false
// until the trailer has been read (i.e. before a clean end of trace).
func (t *Reader) Fingerprint() ([32]byte, bool) { return t.fp, t.haveFP }

// Decode reads an entire PFTC stream into memory, verifying the stream
// fingerprint. Replay paths should stream through Reader instead; this
// is for tests and small fixtures.
func Decode(r io.Reader) ([]isa.Record, error) {
	tr, err := NewReader(r, ReaderOptions{VerifyFingerprint: true})
	if err != nil {
		return nil, err
	}
	var out []isa.Record
	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out, tr.Err()
}

// Info summarizes a PFTC file: the full-scan metadata pftrace info
// prints and corpus verification checks.
type Info struct {
	Version int         `json:"version"`
	Records uint64      `json:"records"`
	Chunks  []ChunkInfo `json:"chunks"`
	// Fingerprint is the trailer's stream fingerprint, hex-encoded.
	Fingerprint string `json:"fingerprint"`
}

// Inspect scans a whole PFTC stream: CRC-checks every chunk, re-hashes
// the canonical stream, verifies the trailer, and returns the per-chunk
// descriptors. Bounded memory, like Reader.
func Inspect(r io.Reader) (Info, error) {
	tr, err := NewReader(r, ReaderOptions{VerifyFingerprint: true})
	if err != nil {
		return Info{}, err
	}
	info := Info{Version: Version}
	chunkStart := 0
	flush := func() {
		// Summarize the chunk just finished from the reader's state.
		payload := tr.payload
		sum := sha256.Sum256(payload)
		info.Chunks = append(info.Chunks, ChunkInfo{
			Records: uint32(tr.count - uint64(chunkStart)),
			Bytes:   uint32(len(payload)),
			CRC32C:  crc32.Checksum(payload, castagnoli),
			SHA256:  fmt.Sprintf("%x", sum),
		})
		chunkStart = int(tr.count)
	}
	for {
		_, ok := tr.Next()
		if !ok {
			break
		}
		if tr.recs == 0 { // finished the current chunk
			flush()
		}
	}
	if err := tr.Err(); err != nil {
		return Info{}, err
	}
	info.Records = tr.count
	fp, _ := tr.Fingerprint()
	info.Fingerprint = fmt.Sprintf("%x", fp[:])
	return info, nil
}
