// Package pbuffer implements the dedicated prefetch buffer baseline of
// §5.5 (Chen et al. [5]): a small fully-associative buffer, probed in
// parallel with the L1 data cache, into which prefetched lines are
// allocated instead of the L1.
//
// A demand access that misses the L1 but hits the buffer promotes the line
// into the L1 (a referenced — good — prefetch). A line evicted from the
// buffer without ever being referenced is a bad prefetch. The buffer keeps
// the same PIB/RIB-style metadata as L1 lines so the pollution filter can
// be trained from buffer evictions when both mechanisms are combined.
package pbuffer

import (
	"fmt"
)

// Entry is one buffered prefetched line.
type Entry struct {
	Valid      bool
	LineAddr   uint64
	TriggerPC  uint64
	Software   bool
	Source     uint8 // generator id of the prefetch (core.Source)
	Referenced bool
	lru        uint64
}

// Buffer is the fully-associative prefetch buffer with true-LRU
// replacement (paper default: 16 entries).
type Buffer struct {
	entries []Entry
	tick    uint64

	Fills      uint64 // prefetched lines allocated
	Hits       uint64 // demand accesses satisfied by the buffer
	Evictions  uint64
	GoodEvicts uint64 // evicted after being referenced (promoted lines count here too)
	BadEvicts  uint64 // evicted without reference
}

// New builds a buffer with the given capacity.
func New(entries int) (*Buffer, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("pbuffer: entries must be positive, got %d", entries)
	}
	return &Buffer{entries: make([]Entry, entries)}, nil
}

// Capacity returns the number of entry frames.
func (b *Buffer) Capacity() int { return len(b.entries) }

// ValidEntries counts resident lines.
func (b *Buffer) ValidEntries() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].Valid {
			n++
		}
	}
	return n
}

// Contains reports residency without disturbing LRU state.
func (b *Buffer) Contains(lineAddr uint64) bool {
	for i := range b.entries {
		if b.entries[i].Valid && b.entries[i].LineAddr == lineAddr {
			return true
		}
	}
	return false
}

// Probe looks the line up on the demand path. On a hit the entry is marked
// referenced, removed from the buffer (the caller promotes it into the L1),
// and returned. Probing is what real hardware does in parallel with the L1
// tag match.
func (b *Buffer) Probe(lineAddr uint64) (Entry, bool) {
	for i := range b.entries {
		if b.entries[i].Valid && b.entries[i].LineAddr == lineAddr {
			b.Hits++
			e := b.entries[i]
			e.Referenced = true
			// Promotion removes the line from the buffer; it now lives in L1.
			b.entries[i] = Entry{}
			return e, true
		}
	}
	return Entry{}, false
}

// Insert allocates a prefetched line, evicting the LRU entry if full. The
// evicted entry (if any) is returned for filter training. Inserting an
// already-resident line refreshes its recency and reports no eviction.
func (b *Buffer) Insert(lineAddr, triggerPC uint64, software bool, source uint8) (evicted Entry, hadEviction bool) {
	b.tick++
	slot := -1
	for i := range b.entries {
		if b.entries[i].Valid && b.entries[i].LineAddr == lineAddr {
			b.entries[i].lru = b.tick
			return Entry{}, false
		}
	}
	for i := range b.entries {
		if !b.entries[i].Valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		for i := range b.entries {
			if b.entries[i].lru < b.entries[slot].lru {
				slot = i
			}
		}
		evicted = b.entries[slot]
		hadEviction = true
		b.Evictions++
		if evicted.Referenced {
			b.GoodEvicts++
		} else {
			b.BadEvicts++
		}
	}
	b.entries[slot] = Entry{
		Valid:     true,
		LineAddr:  lineAddr,
		TriggerPC: triggerPC,
		Software:  software,
		Source:    source,
		lru:       b.tick,
	}
	b.Fills++
	return evicted, hadEviction
}

// Drain invalidates every entry, returning them for end-of-run
// classification.
func (b *Buffer) Drain() []Entry {
	var out []Entry
	for i := range b.entries {
		if b.entries[i].Valid {
			out = append(out, b.entries[i])
			b.entries[i] = Entry{}
		}
	}
	return out
}
