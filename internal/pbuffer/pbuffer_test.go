package pbuffer

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero entries should fail")
	}
	b, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if b.Capacity() != 16 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
}

func TestInsertProbePromote(t *testing.T) {
	b, _ := New(4)
	b.Insert(100, 0x400000, false, 0)
	if !b.Contains(100) {
		t.Fatal("inserted line should be resident")
	}
	e, hit := b.Probe(100)
	if !hit || e.LineAddr != 100 || e.TriggerPC != 0x400000 {
		t.Fatalf("probe = %+v, %v", e, hit)
	}
	if !e.Referenced {
		t.Fatal("probe must mark the entry referenced")
	}
	// Promotion removes the line from the buffer.
	if b.Contains(100) {
		t.Fatal("promoted line must leave the buffer")
	}
	if b.Hits != 1 {
		t.Fatalf("hits = %d", b.Hits)
	}
}

func TestProbeMiss(t *testing.T) {
	b, _ := New(4)
	if _, hit := b.Probe(1); hit {
		t.Fatal("empty buffer should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	b, _ := New(2)
	b.Insert(1, 0, false, 0)
	b.Insert(2, 0, false, 0)
	// Refresh 1 via duplicate insert: 2 becomes LRU.
	b.Insert(1, 0, false, 0)
	evicted, had := b.Insert(3, 0, false, 0)
	if !had || evicted.LineAddr != 2 {
		t.Fatalf("expected eviction of 2, got %+v had=%v", evicted, had)
	}
	if b.BadEvicts != 1 || b.GoodEvicts != 0 {
		t.Fatalf("unreferenced eviction should count bad: %+v", *b)
	}
}

func TestDuplicateInsertNoEvict(t *testing.T) {
	b, _ := New(2)
	b.Insert(5, 0, false, 0)
	if _, had := b.Insert(5, 0, false, 0); had {
		t.Fatal("duplicate insert must not evict")
	}
	if b.ValidEntries() != 1 {
		t.Fatalf("entries = %d", b.ValidEntries())
	}
}

func TestFillsCounting(t *testing.T) {
	b, _ := New(4)
	b.Insert(1, 0, true, 0)
	b.Insert(2, 0, false, 0)
	b.Insert(1, 0, false, 0) // duplicate refresh still counts nothing new? It counts Fills.
	if b.Fills != 2 {
		t.Fatalf("fills = %d (duplicates refresh recency without a new fill)", b.Fills)
	}
}

func TestDrain(t *testing.T) {
	b, _ := New(4)
	b.Insert(1, 0, false, 0)
	b.Insert(2, 0, false, 0)
	b.Probe(1) // promote 1 away
	b.Insert(3, 0, true, 0)
	out := b.Drain()
	if len(out) != 2 {
		t.Fatalf("drained %d entries", len(out))
	}
	if b.ValidEntries() != 0 {
		t.Fatal("drain should empty the buffer")
	}
	// Software flag survives.
	found := false
	for _, e := range out {
		if e.LineAddr == 3 && e.Software {
			found = true
		}
	}
	if !found {
		t.Fatal("software flag lost in drain")
	}
}

func TestCapacityBound(t *testing.T) {
	b, _ := New(3)
	for la := uint64(0); la < 100; la++ {
		b.Insert(la, 0, false, 0)
		if b.ValidEntries() > 3 {
			t.Fatalf("buffer exceeded capacity at %d", la)
		}
	}
	if b.Evictions != 97 {
		t.Fatalf("evictions = %d", b.Evictions)
	}
}
