// Package bus models the bandwidth-limited interconnect between memory
// hierarchy levels.
//
// The paper's machine has a 64-byte-wide memory bus; excess prefetch
// traffic "throttles bus bandwidth", which is one of the two costs of bad
// prefetches (§1.3). The model is a busy-until occupancy channel: each
// line transfer reserves the bus for ceil(lineBytes/bytesPerCycle) cycles,
// and a request arriving while the bus is busy queues behind it. That is
// enough to make prefetch floods visibly delay demand misses.
package bus

import (
	"fmt"

	"repro/internal/trace"
)

// Bus is a single occupancy channel.
type Bus struct {
	bytesPerCycle int
	busyUntil     uint64

	// Trace, when non-nil, receives a cycle-stamped KindBusGrant event at
	// the grant cycle of every transfer. Purely observational; nil (the
	// default) costs one predictable branch per request.
	Trace *trace.Tracer

	// Stats
	Transfers     uint64 // line transfers performed
	BytesMoved    uint64
	BusyCycles    uint64 // cycles the bus spent transferring
	StallCycles   uint64 // cycles requests waited for the bus
	DemandXfers   uint64
	PrefetchXfers uint64
}

// New builds a bus moving bytesPerCycle bytes per core cycle.
func New(bytesPerCycle int) (*Bus, error) {
	if bytesPerCycle <= 0 {
		return nil, fmt.Errorf("bus: bytes per cycle must be positive, got %d", bytesPerCycle)
	}
	return &Bus{bytesPerCycle: bytesPerCycle}, nil
}

// TransferCycles returns the occupancy of one transfer of n bytes.
func (b *Bus) TransferCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64((n + b.bytesPerCycle - 1) / b.bytesPerCycle)
}

// Request schedules a transfer of n bytes requested at cycle now and
// returns the cycle at which the data has fully arrived. prefetch tags the
// transfer for traffic accounting.
func (b *Bus) Request(now uint64, n int, prefetch bool) (done uint64) {
	start := now
	if b.busyUntil > start {
		b.StallCycles += b.busyUntil - start
		start = b.busyUntil
	}
	occ := b.TransferCycles(n)
	b.busyUntil = start + occ
	b.Transfers++
	b.BytesMoved += uint64(n)
	b.BusyCycles += occ
	if prefetch {
		b.PrefetchXfers++
	} else {
		b.DemandXfers++
	}
	if b.Trace != nil {
		src := "demand"
		if prefetch {
			src = "prefetch"
		}
		b.Trace.Emit(trace.Event{Cycle: start, Kind: trace.KindBusGrant, Val: uint64(n), Source: src})
	}
	return b.busyUntil
}

// ResetStats zeroes the traffic counters while preserving the current
// reservation horizon, so in-progress transfers stay consistent across a
// warmup-boundary statistics reset.
func (b *Bus) ResetStats() {
	b.Transfers, b.BytesMoved, b.BusyCycles = 0, 0, 0
	b.StallCycles, b.DemandXfers, b.PrefetchXfers = 0, 0, 0
}

// BusyUntil exposes the current reservation horizon (for tests and the
// hierarchy's back-pressure heuristics).
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }

// Utilization returns busy cycles / elapsed cycles (0 when idle).
func (b *Bus) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(b.BusyCycles) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
