package bus

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative bandwidth should fail")
	}
}

func TestTransferCycles(t *testing.T) {
	b, _ := New(8)
	cases := []struct {
		bytes int
		want  uint64
	}{{0, 0}, {1, 1}, {8, 1}, {9, 2}, {32, 4}, {33, 5}}
	for _, tc := range cases {
		if got := b.TransferCycles(tc.bytes); got != tc.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestRequestIdleBus(t *testing.T) {
	b, _ := New(8)
	done := b.Request(100, 32, false)
	if done != 104 {
		t.Fatalf("done = %d, want 104", done)
	}
	if b.StallCycles != 0 {
		t.Fatalf("no stall expected, got %d", b.StallCycles)
	}
}

func TestRequestQueuesBehindBusy(t *testing.T) {
	b, _ := New(8)
	b.Request(100, 32, false) // busy until 104
	done := b.Request(101, 32, false)
	if done != 108 {
		t.Fatalf("queued transfer done = %d, want 108", done)
	}
	if b.StallCycles != 3 {
		t.Fatalf("stall = %d, want 3", b.StallCycles)
	}
}

func TestRequestAfterIdleGap(t *testing.T) {
	b, _ := New(8)
	b.Request(0, 32, false) // busy until 4
	done := b.Request(50, 32, false)
	if done != 54 {
		t.Fatalf("done = %d, want 54", done)
	}
}

func TestTrafficTagging(t *testing.T) {
	b, _ := New(8)
	b.Request(0, 32, true)
	b.Request(10, 32, false)
	b.Request(20, 32, true)
	if b.PrefetchXfers != 2 || b.DemandXfers != 1 || b.Transfers != 3 {
		t.Fatalf("tagging wrong: %+v", *b)
	}
	if b.BytesMoved != 96 {
		t.Fatalf("bytes = %d", b.BytesMoved)
	}
}

func TestUtilization(t *testing.T) {
	b, _ := New(8)
	if b.Utilization(100) != 0 {
		t.Fatal("idle utilization should be 0")
	}
	b.Request(0, 80, false) // 10 cycles busy
	if got := b.Utilization(100); got != 0.1 {
		t.Fatalf("utilization = %v", got)
	}
	if got := b.Utilization(5); got != 1 {
		t.Fatalf("utilization should clamp at 1, got %v", got)
	}
	if b.Utilization(0) != 0 {
		t.Fatal("zero elapsed should be 0")
	}
}

func TestResetStatsPreservesHorizon(t *testing.T) {
	b, _ := New(8)
	b.Request(0, 800, false)
	horizon := b.BusyUntil()
	b.ResetStats()
	if b.Transfers != 0 || b.BusyCycles != 0 || b.StallCycles != 0 {
		t.Fatal("counters should be zero after reset")
	}
	if b.BusyUntil() != horizon {
		t.Fatal("reservation horizon must survive a stats reset")
	}
}
