package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/tracefile"
)

var (
	srvCorpusOnce sync.Once
	srvCorpusErr  error
	srvBench      string
)

// registerServerCorpus converts the checked-in ChampSim fixture and
// registers it once per process. Registration is the only moment the
// trace file is read (the sweep tests stub runSim), so a t.TempDir-less
// throwaway dir is unnecessary: the manifest check happens before the
// first return.
func registerServerCorpus(t *testing.T) string {
	t.Helper()
	srvCorpusOnce.Do(func() { srvCorpusErr = buildServerCorpus(t) })
	if srvCorpusErr != nil {
		t.Fatal(srvCorpusErr)
	}
	return srvBench
}

func buildServerCorpus(t *testing.T) error {
	in, err := os.Open(filepath.Join("..", "tracefile", "testdata", "sample.champsim.gz"))
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }() // read-only
	src, err := tracefile.MaybeGzip(in)
	if err != nil {
		return err
	}
	dir := t.TempDir()
	out, err := os.Create(filepath.Join(dir, "sample.pftc"))
	if err != nil {
		return err
	}
	st, err := tracefile.ConvertChampSim(src, out, tracefile.WriterOptions{})
	if err != nil {
		_ = out.Close() // the convert error takes precedence
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	manifest := filepath.Join(dir, "corpus.json")
	m := tracefile.Manifest{Version: tracefile.ManifestVersion}
	m.Upsert(tracefile.ManifestEntry{
		Name:          "srv-sample",
		File:          "sample.pftc",
		SHA256:        st.Fingerprint,
		Records:       st.Records,
		FormatVersion: tracefile.Version,
	})
	if err := tracefile.SaveManifest(manifest, m); err != nil {
		return err
	}
	names, err := tracefile.RegisterCorpus(config.TraceConfig{Manifest: manifest, Verify: true})
	if err != nil {
		return err
	}
	srvBench = names[0]
	return nil
}

// TestSweepTracesAxis drives the traces sweep axis end to end: ["all"]
// expansion, prefix-optional names, and the trace benchmark appearing as
// ordinary result rows.
func TestSweepTracesAxis(t *testing.T) {
	bench := registerServerCorpus(t)
	for _, body := range []string{
		`{"traces":["all"],"filters":["pa"]}`,
		`{"traces":["srv-sample"],"filters":["pa"]}`,
		`{"traces":["` + bench + `"],"filters":["pa"]}`,
	} {
		calls := make(chan string, 64)
		s, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
		s.runSim = func(_ context.Context, _ *experiments.Params, b string, _ config.Config) (stats.Run, error) {
			calls <- b
			return stats.Run{Instructions: 1, Cycles: 2}, nil
		}
		status, respBody := post(t, ts.URL, "/v1/sweep", body)
		if status != 200 {
			t.Fatalf("%s: status = %d (body %s)", body, status, respBody)
		}
		var resp SweepResponse
		if err := json.Unmarshal(respBody, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Unique == 0 {
			t.Fatalf("%s: no jobs ran", body)
		}
		ran := false
		for len(calls) > 0 {
			if <-calls == bench {
				ran = true
			}
		}
		if !ran {
			t.Fatalf("%s: sweep never simulated %s", body, bench)
		}
		found := false
		for _, r := range resp.Results {
			if strings.HasPrefix(r.Name, bench+"/") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no result row for %s in %s", body, bench, respBody)
		}
	}
}

// TestSweepTracesExtendStandard checks that the traces axis adds to the
// standard matrix's benchmark set instead of replacing it.
func TestSweepTracesExtendStandard(t *testing.T) {
	bench := registerServerCorpus(t)
	calls := make(chan string, 1024)
	s, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	s.runSim = func(_ context.Context, _ *experiments.Params, b string, _ config.Config) (stats.Run, error) {
		calls <- b
		return stats.Run{Instructions: 1, Cycles: 2}, nil
	}
	status, body := post(t, ts.URL, "/v1/sweep", `{"standard":true,"benchmarks":["fpppp"],"traces":["all"]}`)
	if status != 200 {
		t.Fatalf("status = %d (body %s)", status, body)
	}
	sawModel, sawTrace := false, false
	for len(calls) > 0 {
		switch <-calls {
		case "fpppp":
			sawModel = true
		case bench:
			sawTrace = true
		}
	}
	if !sawModel || !sawTrace {
		t.Fatalf("standard+traces sweep ran model=%v trace=%v, want both", sawModel, sawTrace)
	}
}

// TestSweepUnknownTrace400 pins the 400 body: unknown traces name the
// registered corpus, on both the traces axis and the benchmarks list.
func TestSweepUnknownTrace400(t *testing.T) {
	bench := registerServerCorpus(t)
	_, ts := newTestServer(t, Config{MaxSweepJobs: 64})
	for _, body := range []string{
		`{"traces":["nope"]}`,
		`{"benchmarks":["trace:nope"]}`,
	} {
		status, respBody := post(t, ts.URL, "/v1/sweep", body)
		if status != 400 {
			t.Fatalf("%s: status = %d (body %s)", body, status, respBody)
		}
		if !strings.Contains(string(respBody), "nope") || !strings.Contains(string(respBody), bench) {
			t.Fatalf("%s: body %q should name the unknown trace and the registered corpus", body, respBody)
		}
	}
}
