// Package server is the simulation-as-a-service daemon behind cmd/pfserved.
//
// It turns the experiment harness into an HTTP service: POST /v1/run
// executes one (benchmark, config, seed) simulation, POST /v1/sweep a
// whole matrix, both on the internal/sched work-stealing pool and behind
// the process-wide single-flight memo — so concurrent identical requests
// perform one simulation and the second caller shares the result (the
// "experiments.cache.shared" counter in /metrics counts exactly that).
//
// Production hardening is the point of the package:
//
//   - Bounded admission: at most QueueDepth requests may be admitted at
//     once (queued or executing). Beyond that the server answers 429
//     with a Retry-After hint instead of buffering unbounded work.
//   - Bounded execution: at most MaxConcurrent admitted requests run
//     their scheduler batch at a time; the rest wait, deadline-aware,
//     in the admission queue.
//   - Deadlines: every request gets a context deadline (its own
//     deadline_ms, capped by MaxDeadline; DefaultDeadline otherwise)
//     that propagates through sched.Run into the simulation jobs.
//     Queued work past its deadline returns 504 without ever starting.
//   - Graceful drain: BeginDrain stops admitting new simulation
//     requests (503, and /healthz flips to 503 so load balancers eject
//     the instance); Drain waits until in-flight requests complete.
//     cmd/pfserved wires this to SIGTERM/SIGINT.
//   - Observability: /metrics serves the shared internal/metrics
//     registry in Prometheus text exposition format.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Config tunes the daemon. The zero value is usable: every field has a
// production-reasonable default (see withDefaults).
type Config struct {
	// Workers is the scheduler pool size per executing batch
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-unfinished requests; a full queue
	// answers 429 + Retry-After. Default 64.
	QueueDepth int
	// MaxConcurrent bounds simultaneously executing scheduler batches;
	// admitted requests beyond it wait (deadline-aware). Default 2.
	MaxConcurrent int
	// MaxSweepJobs rejects sweeps whose expanded matrix exceeds it
	// (413). Default 4096.
	MaxSweepJobs int
	// MaxInstructions caps the per-request instruction budget (400 when
	// exceeded). Default 50M.
	MaxInstructions int64
	// DefaultInstructions / DefaultWarmup apply when a request omits
	// them. Defaults: 2M / 1M (the harness defaults).
	DefaultInstructions int64
	DefaultWarmup       int64
	// DefaultDeadline applies when a request sends no deadline_ms;
	// MaxDeadline caps what a request may ask for. Defaults: 2m / 10m.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// Metrics receives service + harness telemetry and backs /metrics.
	// Nil allocates a fresh registry.
	Metrics *metrics.Registry
	// CAS, when non-nil, is the on-disk content-addressed result store:
	// it backs GET/fill on /v1/cell and becomes the persistent level
	// behind the in-process memo (experiments.RunStore), so results
	// survive restarts and repeated sweeps answer without simulating.
	CAS *fabric.CAS
	// Coordinator, when non-nil, turns this instance into a sweep
	// coordinator: /v1/run and /v1/sweep execute by dealing cells to the
	// coordinator's remote workers (CAS-first) instead of simulating
	// locally.
	Coordinator *fabric.Coordinator
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = 4096
	}
	if c.MaxInstructions <= 0 {
		c.MaxInstructions = 50_000_000
	}
	if c.DefaultInstructions <= 0 {
		c.DefaultInstructions = 2_000_000
	}
	if c.DefaultWarmup <= 0 {
		c.DefaultWarmup = 1_000_000
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	return c
}

// Server is the HTTP simulation service. Create with New; the zero
// value is not usable.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	slots    chan struct{} // admission queue tokens
	exec     chan struct{} // concurrent-batch tokens
	draining atomic.Bool
	inflight sync.WaitGroup

	// runSim executes one simulation; tests substitute a stub. The
	// default routes through the harness memo (experiments.RunSim).
	runSim func(ctx context.Context, p *experiments.Params, bench string, cfg config.Config) (stats.Run, error)
}

// New builds a Server from cfg (zero value accepted).
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg.withDefaults(),
		mux: http.NewServeMux(),
		runSim: func(ctx context.Context, p *experiments.Params, bench string, cfg config.Config) (stats.Run, error) {
			return p.RunSim(ctx, bench, cfg)
		},
	}
	s.slots = make(chan struct{}, s.cfg.QueueDepth)
	s.exec = make(chan struct{}, s.cfg.MaxConcurrent)
	s.routes()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry backing /metrics.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// BeginDrain flips the server into draining mode: /healthz and every
// /v1/* endpoint answer 503 from now on; in-flight requests continue.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until every in-flight request has completed or ctx
// expires.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	//pflint:allow ctxflow/goroutine the standard WaitGroup-to-channel bridge: exits as soon as the in-flight requests it waits on drain, which BeginDrain has already capped; ctx only bounds how long the caller waits
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// admit tries to take an admission slot without blocking.
func (s *Server) admit() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseSlot returns an admission slot.
func (s *Server) releaseSlot() { <-s.slots }

// paramsFor builds the harness Params for one request, sharing the
// service registry so harness telemetry lands in /metrics.
func (s *Server) paramsFor(instructions int64, warmup *int64, seed uint64) experiments.Params {
	if instructions <= 0 {
		instructions = s.cfg.DefaultInstructions
	}
	w := s.cfg.DefaultWarmup
	if warmup != nil {
		w = *warmup
	}
	p := experiments.Params{
		Instructions: instructions,
		Warmup:       w,
		Seed:         seed,
		Metrics:      s.cfg.Metrics,
	}
	if s.cfg.CAS != nil {
		p.Store = s.cfg.CAS
	}
	return p
}

// deadlineFor resolves a request's effective deadline.
func (s *Server) deadlineFor(deadlineMS int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// sweepCell pairs one deduplicated matrix item with its cache key — the
// execution unit every serving path (local pool, fabric, streaming)
// works in.
type sweepCell struct {
	item experiments.MatrixItem
	key  string
}

// cellOutcome is one cell's result, independent of where it ran.
type cellOutcome struct {
	run    *stats.Run
	err    error
	wallNS int64
	// source reports fabric provenance ("cas" or a worker URL); empty
	// for single-node execution.
	source string
}

// cellsFor builds the deduplicated cell list for a matrix (first
// occurrence wins), preserving item order.
func cellsFor(p *experiments.Params, items []experiments.MatrixItem) []sweepCell {
	seen := make(map[string]bool, len(items))
	cells := make([]sweepCell, 0, len(items))
	for _, it := range items {
		key := p.CacheKey(it.Bench, it.Config)
		if seen[key] {
			continue
		}
		seen[key] = true
		cells = append(cells, sweepCell{item: it, key: key})
	}
	return cells
}

// executeCells runs the deduplicated cells and returns one outcome per
// key. It waits, deadline-aware, for an execution token so at most
// MaxConcurrent batches run at once. emit, when non-nil, is called once
// per cell as its result lands (completion order, serialized) — the
// streaming hook. With a Coordinator configured, cells are dealt to the
// remote worker fleet (CAS-first); otherwise they run on the local
// work-stealing pool.
func (s *Server) executeCells(ctx context.Context, p *experiments.Params, cells []sweepCell, emit func(sweepCell, cellOutcome)) (map[string]cellOutcome, error) {
	select {
	case s.exec <- struct{}{}:
		defer func() { <-s.exec }()
	case <-ctx.Done():
		return nil, fmt.Errorf("server: queued past deadline: %w", ctx.Err())
	}

	outcomes := make(map[string]cellOutcome, len(cells))
	var mu sync.Mutex
	record := func(c sweepCell, o cellOutcome) {
		mu.Lock()
		outcomes[c.key] = o
		if emit != nil {
			emit(c, o)
		}
		mu.Unlock()
	}

	if s.cfg.Coordinator != nil {
		byKey := make(map[string]sweepCell, len(cells))
		fcells := make([]fabric.Cell, len(cells))
		for i, c := range cells {
			byKey[c.key] = c
			fcells[i] = fabric.Cell{Key: c.key, Bench: c.item.Bench, Config: c.item.Config, Generator: c.item.Generator}
		}
		fp := fabric.Params{Instructions: p.Instructions, Warmup: p.Warmup, Seed: p.Seed}
		ctxErr := s.cfg.Coordinator.Run(ctx, fp, fcells, p.CostModel(), func(r fabric.Result) {
			o := cellOutcome{wallNS: r.Wall.Nanoseconds(), source: r.Source, err: r.Err}
			if r.Err == nil {
				run := r.Run
				o.run = &run
			}
			record(byKey[r.Cell.Key], o)
		})
		return outcomes, ctxErr
	}

	cost := p.CostModel()
	jobs := make([]sched.Job, 0, len(cells))
	for _, c := range cells {
		c := c
		jobs = append(jobs, sched.Job{
			Key:  c.key,
			Cost: cost(c.item.Bench),
			Run: func(ctx context.Context) (any, error) {
				start := time.Now()
				r, err := s.runSim(ctx, p, c.item.Bench, c.item.Config)
				o := cellOutcome{wallNS: time.Since(start).Nanoseconds(), err: err}
				if err == nil {
					o.run = &r
				}
				record(c, o)
				return nil, err
			},
		})
	}
	_, ctxErr := sched.Run(ctx, jobs, sched.Options{Workers: s.cfg.Workers, Metrics: s.cfg.Metrics})
	// Cells the cancellation sweep never started have no outcome yet.
	for _, c := range cells {
		mu.Lock()
		_, ok := outcomes[c.key]
		mu.Unlock()
		if !ok {
			err := ctxErr
			if err == nil {
				err = fmt.Errorf("server: cell never ran")
			}
			record(c, cellOutcome{err: err})
		}
	}
	return outcomes, ctxErr
}
