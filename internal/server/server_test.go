package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// newTestServer starts an httptest server around a Server built from cfg.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status + response body.
func post(t *testing.T, base, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, b
}

// blockingRunner returns a runSim stub that signals entry and blocks
// until released (or the context expires).
func blockingRunner(entered chan<- struct{}, release <-chan struct{}) func(context.Context, *experiments.Params, string, config.Config) (stats.Run, error) {
	return func(ctx context.Context, _ *experiments.Params, _ string, _ config.Config) (stats.Run, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return stats.Run{Instructions: 1, Cycles: 1}, nil
		case <-ctx.Done():
			return stats.Run{}, ctx.Err()
		}
	}
}

func TestHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepJobs: 4, MaxInstructions: 1000})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantInBody               string
	}{
		{"bad json", "POST", "/v1/run", `{not json`, 400, "bad request body"},
		{"empty body", "POST", "/v1/run", ``, 400, "bad request body"},
		{"trailing garbage", "POST", "/v1/run", `{"benchmark":"mcf"} extra`, 400, "trailing data"},
		{"unknown field", "POST", "/v1/run", `{"benchmark":"mcf","bogus_field":1}`, 400, "bad request body"},
		{"missing benchmark", "POST", "/v1/run", `{}`, 400, "benchmark"},
		{"unknown benchmark", "POST", "/v1/run", `{"benchmark":"not-a-benchmark"}`, 400, "unknown benchmark"},
		{"unknown filter", "POST", "/v1/run", `{"benchmark":"mcf","filter":"bogus"}`, 400, "unknown filter"},
		{"bad cache size", "POST", "/v1/run", `{"benchmark":"mcf","cache_kb":13}`, 400, "cache_kb"},
		{"bad table entries", "POST", "/v1/run", `{"benchmark":"mcf","table_entries":100}`, 400, "power of two"},
		{"instructions cap", "POST", "/v1/run", `{"benchmark":"mcf","instructions":2000}`, 400, "cap"},
		{"run wrong method", "GET", "/v1/run", ``, 405, ""},
		{"sweep bad json", "POST", "/v1/sweep", `[1,2`, 400, "bad request body"},
		{"sweep unknown benchmark", "POST", "/v1/sweep", `{"benchmarks":["nope"]}`, 400, "unknown benchmark"},
		{"sweep unknown filter", "POST", "/v1/sweep", `{"benchmarks":["mcf"],"filters":["bogus"]}`, 400, "unknown filter"},
		{"oversized sweep", "POST", "/v1/sweep", `{}`, 413, "cap is 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body []byte
			switch tc.method {
			case "POST":
				status, body = post(t, ts.URL, tc.path, tc.body)
			default:
				status, body = get(t, ts.URL, tc.path)
			}
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			if tc.wantInBody != "" && !strings.Contains(string(body), tc.wantInBody) {
				t.Fatalf("body %q missing %q", body, tc.wantInBody)
			}
		})
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, body := get(t, ts.URL, "/healthz"); status != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", status, body)
	}
	status, body := get(t, ts.URL, "/metrics")
	if status != 200 {
		t.Fatalf("metrics = %d", status)
	}
	for _, want := range []string{"# TYPE", "server_queue_depth"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

func TestBackpressure(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxConcurrent: 1, Workers: 1, RetryAfter: 3 * time.Second})
	s.runSim = blockingRunner(entered, release)

	// Request 1 occupies the only admission slot.
	first := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`)
		first <- status
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the runner")
	}

	// The queue is full: the next request must bounce with 429.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"benchmark":"mcf"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status = %d (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	// Release: the in-flight request completes and the queue drains.
	close(release)
	if status := <-first; status != 200 {
		t.Fatalf("in-flight request after drain: status = %d", status)
	}
	if status, body := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`); status != 200 {
		t.Fatalf("post-drain request: status = %d (body %s)", status, body)
	}

	// The rejection is visible in /metrics.
	if _, body := get(t, ts.URL, "/metrics"); !strings.Contains(string(body), "server_rejected_backpressure 1") {
		t.Fatalf("metrics missing backpressure rejection:\n%s", body)
	}
}

func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 4, MaxConcurrent: 2, Workers: 1})
	s.runSim = blockingRunner(entered, release)

	first := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`)
		first <- status
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the runner")
	}

	s.BeginDrain()

	// New work is refused while draining...
	if status, _ := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`); status != http.StatusServiceUnavailable {
		t.Fatalf("draining run: status = %d, want 503", status)
	}
	if status, _ := post(t, ts.URL, "/v1/sweep", `{"benchmarks":["mcf"]}`); status != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: status = %d, want 503", status)
	}
	if status, _ := get(t, ts.URL, "/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status = %d, want 503", status)
	}

	// ...but the in-flight request completes with its full response.
	close(release)
	if status := <-first; status != 200 {
		t.Fatalf("in-flight request during drain: status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDeadlineExpiresInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2, MaxConcurrent: 1, Workers: 1})
	// Runner blocks until the request context expires.
	s.runSim = blockingRunner(make(chan struct{}, 1), nil)

	status, body := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf","deadline_ms":50}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status = %d (body %s)", status, body)
	}
}

func TestDeadlineExpiresWhileQueued(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 4, MaxConcurrent: 1, Workers: 1})
	s.runSim = blockingRunner(entered, release)
	defer close(release)

	first := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`)
		first <- status
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the runner")
	}

	// The execution token is held; a short-deadline request admitted
	// behind it must expire in the queue, not hang.
	status, body := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf","deadline_ms":50}`)
	if status != http.StatusGatewayTimeout || !strings.Contains(string(body), "queued") {
		t.Fatalf("queued-past-deadline: status = %d (body %s)", status, body)
	}
}

// TestConcurrentIdenticalRunsShareOneSimulation is the end-to-end
// acceptance check: two concurrent identical /v1/run requests perform
// ONE simulation, and the share is visible in /metrics.
func TestConcurrentIdenticalRunsShareOneSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 2})
	// A seed no other test uses keeps the process-wide memo cold for
	// this key.
	req := `{"benchmark":"fpppp","instructions":30000,"warmup":10000,"seed":990077}`

	var wg sync.WaitGroup
	cycles := make([]uint64, 2)
	for i := range cycles {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			status, body := post(t, ts.URL, "/v1/run", req)
			if status != 200 {
				t.Errorf("request %d: status = %d (body %s)", slot, status, body)
				return
			}
			var resp RunResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Errorf("request %d: %v", slot, err)
				return
			}
			if resp.Result.Run == nil || resp.Result.Run.Cycles == 0 {
				t.Errorf("request %d: empty run payload: %s", slot, body)
				return
			}
			cycles[slot] = resp.Result.Run.Cycles
		}(i)
	}
	wg.Wait()
	if cycles[0] != cycles[1] {
		t.Fatalf("identical requests disagree: %d vs %d cycles", cycles[0], cycles[1])
	}

	_, body := get(t, ts.URL, "/metrics")
	if !strings.Contains(string(body), "experiments_cache_misses 1") {
		t.Fatalf("expected exactly one simulation; /metrics:\n%s", grepLines(body, "experiments_cache"))
	}
	if !strings.Contains(string(body), "experiments_cache_shared 1") {
		t.Fatalf("memo share not visible; /metrics:\n%s", grepLines(body, "experiments_cache"))
	}
}

// grepLines filters exposition output for readable failure messages.
func grepLines(b []byte, substr string) string {
	var out bytes.Buffer
	for _, line := range strings.Split(string(b), "\n") {
		if strings.Contains(line, substr) {
			fmt.Fprintln(&out, line)
		}
	}
	return out.String()
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"filters":["none","pa","pa"],"instructions":30000,"warmup":10000,"seed":990078}`)
	if status != 200 {
		t.Fatalf("sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Jobs != 3 || resp.Unique != 2 {
		t.Fatalf("jobs=%d unique=%d, want 3/2 (duplicate pa cell must dedup)", resp.Jobs, resp.Unique)
	}
	if resp.Errors != 0 || len(resp.Results) != 2 {
		t.Fatalf("errors=%d results=%d: %s", resp.Errors, len(resp.Results), body)
	}
	names := map[string]bool{}
	for _, r := range resp.Results {
		names[r.Name] = true
		if r.IPC <= 0 || r.Run == nil {
			t.Fatalf("result %s has no payload: %+v", r.Name, r)
		}
	}
	if !names["fpppp/none"] || !names["fpppp/pa"] {
		t.Fatalf("unexpected result names: %v", names)
	}
}

func TestSweepStandardExpansion(t *testing.T) {
	calls := make(chan string, 256)
	s, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	s.runSim = func(_ context.Context, _ *experiments.Params, bench string, _ config.Config) (stats.Run, error) {
		calls <- bench
		return stats.Run{Instructions: 1, Cycles: 2}, nil
	}
	status, body := post(t, ts.URL, "/v1/sweep", `{"standard":true,"benchmarks":["fpppp"]}`)
	if status != 200 {
		t.Fatalf("standard sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// The standard matrix for one benchmark spans the filter triples,
	// table/port sweeps, buffer schemes, and the 16KB comparison.
	if resp.Unique < 15 {
		t.Fatalf("standard matrix expanded to only %d unique jobs", resp.Unique)
	}
	if got := len(calls); got != resp.Unique {
		t.Fatalf("runner executed %d jobs, response reports %d", got, resp.Unique)
	}
	for len(calls) > 0 {
		if b := <-calls; b != "fpppp" {
			t.Fatalf("standard sweep escaped the benchmark narrowing: ran %q", b)
		}
	}
}

func TestSimulationErrorSurfacesAs500(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.runSim = func(context.Context, *experiments.Params, string, config.Config) (stats.Run, error) {
		return stats.Run{}, fmt.Errorf("synthetic failure")
	}
	status, body := post(t, ts.URL, "/v1/run", `{"benchmark":"mcf"}`)
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "synthetic failure") {
		t.Fatalf("simulation failure: status = %d (body %s)", status, body)
	}
}

func TestSweepUnknownFilterRejectedWithBackendList(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"filters":["bogus"],"instructions":30000}`)
	if status != 400 {
		t.Fatalf("unknown filter: status = %d (body %s)", status, body)
	}
	var resp errorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bogus", "registered backends", "perceptron", "bloom", "tournament", "pa", "pc"} {
		if !strings.Contains(resp.Error, want) {
			t.Fatalf("400 body should name %q, got: %s", want, resp.Error)
		}
	}
	// Same contract on /v1/run.
	status, body = post(t, ts.URL, "/v1/run", `{"benchmark":"fpppp","filter":"bogus"}`)
	if status != 400 || !strings.Contains(string(body), "registered backends") {
		t.Fatalf("run unknown filter: status=%d body=%s", status, body)
	}
}

func TestSweepFiltersAllWithComparison(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"filters":["all"],"instructions":30000,"warmup":10000}`)
	if status != 200 {
		t.Fatalf("filters=all sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("errors=%d: %s", resp.Errors, body)
	}
	got := map[string]bool{}
	for _, r := range resp.Results {
		got[r.Filter] = true
	}
	for _, want := range []string{"none", "pa", "pc", "adaptive", "deadblock", "perceptron", "bloom", "tournament"} {
		if !got[want] {
			t.Fatalf("filters=all missing backend %q (got %v)", want, got)
		}
	}
	if got["static"] {
		t.Fatal("filters=all must skip the static filter")
	}
	if len(resp.Comparison) != len(resp.Results) {
		t.Fatalf("comparison rows = %d, results = %d", len(resp.Comparison), len(resp.Results))
	}
	var none, pa *int
	for i := range resp.Comparison {
		c := resp.Comparison[i]
		if c.Benchmark != "fpppp" {
			t.Fatalf("comparison row for unexpected benchmark: %+v", c)
		}
		if c.Accuracy < 0 || c.Accuracy > 1 || c.Coverage < 0 || c.Coverage > 1 {
			t.Fatalf("metrics out of range: %+v", c)
		}
		switch c.Filter {
		case "none":
			none = &i
			if c.IPCDelta != 0 {
				t.Fatalf("baseline delta must be 0: %+v", c)
			}
		case "pa":
			pa = &i
		}
	}
	if none == nil || pa == nil {
		t.Fatalf("comparison missing none/pa rows: %+v", resp.Comparison)
	}
	noneRow, paRow := resp.Comparison[*none], resp.Comparison[*pa]
	if diff := paRow.IPC - noneRow.IPC; diff != paRow.IPCDelta {
		t.Fatalf("pa delta %g inconsistent with IPCs %g/%g", paRow.IPCDelta, paRow.IPC, noneRow.IPC)
	}
}

func TestSweepUnknownGeneratorRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"generators":["bogus"],"instructions":30000}`)
	if status != 400 {
		t.Fatalf("unknown generator: status = %d (body %s)", status, body)
	}
	var resp errorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bogus", "registered generators", "nsp", "sdp", "stride", "corr", "berti", "ghb"} {
		if !strings.Contains(resp.Error, want) {
			t.Fatalf("400 body should name %q, got: %s", want, resp.Error)
		}
	}
}

func TestSweepGeneratorsAllCrossProduct(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 8, MaxSweepJobs: 64})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["stream"],"generators":["all"],"filters":["all"],"instructions":30000,"warmup":10000}`)
	if status != 200 {
		t.Fatalf("generators=all sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("errors=%d: %s", resp.Errors, body)
	}
	gens := map[string]map[string]bool{}
	for _, r := range resp.Results {
		if r.Generator == "" {
			t.Fatalf("generator-axis cell missing generator label: %+v", r)
		}
		if want := r.Benchmark + "/" + r.Generator + "/" + r.Filter; r.Name != want {
			t.Fatalf("cell name = %q, want %q", r.Name, want)
		}
		if gens[r.Generator] == nil {
			gens[r.Generator] = map[string]bool{}
		}
		gens[r.Generator][r.Filter] = true
	}
	if len(gens) < 5 {
		t.Fatalf("generators=all should cover >= 5 generators, got %d (%v)", len(gens), gens)
	}
	for _, g := range []string{"nsp", "sdp", "stride", "corr", "berti", "ghb"} {
		filters := gens[g]
		if filters == nil {
			t.Fatalf("generators=all missing generator %q", g)
		}
		if len(filters) < 6 {
			t.Fatalf("generator %q should cross >= 6 filters, got %d (%v)", g, len(filters), filters)
		}
	}
	if len(resp.Comparison) != 0 {
		t.Fatalf("generator sweep should use generator_comparison, got plain comparison: %d rows", len(resp.Comparison))
	}
	if len(resp.GeneratorComparison) != len(resp.Results) {
		t.Fatalf("generator comparison rows = %d, results = %d", len(resp.GeneratorComparison), len(resp.Results))
	}
	for _, c := range resp.GeneratorComparison {
		if c.Filter == "none" && c.IPCDelta != 0 {
			t.Fatalf("baseline delta must be 0: %+v", c)
		}
	}
}

func TestSweepGeneratorAliasCanonicalized(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"generators":["ghb-pc-delta","ghb","correlation"],"filters":["none"],"instructions":30000,"warmup":10000}`)
	if status != 200 {
		t.Fatalf("alias sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, r := range resp.Results {
		got[r.Generator]++
	}
	if len(got) != 2 || got["ghb"] != 1 || got["corr"] != 1 {
		t.Fatalf("aliases should canonicalize and dedup to ghb+corr, got %v", got)
	}
}

func TestSweepUnknownIPrefetchRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"iprefetch":["bogus"],"instructions":30000}`)
	if status != 400 {
		t.Fatalf("unknown iprefetcher: status = %d (body %s)", status, body)
	}
	var resp errorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bogus", "registered backends", "mana", "nextline"} {
		if !strings.Contains(resp.Error, want) {
			t.Fatalf("400 body should name %q, got: %s", want, resp.Error)
		}
	}
}

func TestSweepIPrefetchAndGeneratorsExclusive(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"iprefetch":["nextline"],"generators":["nsp"],"instructions":30000}`)
	if status != 400 {
		t.Fatalf("combined axes: status = %d (body %s)", status, body)
	}
	if !strings.Contains(string(body), "cannot be combined") {
		t.Fatalf("400 body should explain the axis conflict, got: %s", body)
	}
}

func TestSweepIPrefetchAllCrossProduct(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 8, MaxSweepJobs: 64})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["stream"],"iprefetch":["all"],"filters":["none","pa"],"instructions":30000,"warmup":10000}`)
	if status != 200 {
		t.Fatalf("iprefetch=all sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("errors=%d: %s", resp.Errors, body)
	}
	iprefs := map[string]map[string]bool{}
	for _, r := range resp.Results {
		if r.IPrefetcher == "" {
			t.Fatalf("iprefetch-axis cell missing label: %+v", r)
		}
		if want := r.Benchmark + "/i:" + r.IPrefetcher + "/" + r.Filter; r.Name != want {
			t.Fatalf("cell name = %q, want %q", r.Name, want)
		}
		if r.Run == nil || r.Run.Frontend == nil {
			t.Fatalf("iprefetch cell %s must carry the Frontend stats block", r.Name)
		}
		if iprefs[r.IPrefetcher] == nil {
			iprefs[r.IPrefetcher] = map[string]bool{}
		}
		iprefs[r.IPrefetcher][r.Filter] = true
	}
	for _, ip := range []string{"mana", "nextline"} {
		if len(iprefs[ip]) != 2 {
			t.Fatalf("iprefetch=all should cross %q with 2 filters, got %v", ip, iprefs[ip])
		}
	}
	if len(resp.Comparison) != 0 || len(resp.GeneratorComparison) != 0 {
		t.Fatalf("iprefetch sweep must use iprefetch_comparison only (plain=%d gen=%d)",
			len(resp.Comparison), len(resp.GeneratorComparison))
	}
	if len(resp.IPrefetchComparison) != len(resp.Results) {
		t.Fatalf("iprefetch comparison rows = %d, results = %d", len(resp.IPrefetchComparison), len(resp.Results))
	}
	for _, c := range resp.IPrefetchComparison {
		if c.Filter == "none" && c.IPCDelta != 0 {
			t.Fatalf("baseline delta must be 0: %+v", c)
		}
	}
}

func TestSweepIPrefetchAliasCanonicalized(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, MaxConcurrent: 2, Workers: 4})
	status, body := post(t, ts.URL, "/v1/sweep",
		`{"benchmarks":["fpppp"],"iprefetch":["fetch-directed","nextline"],"filters":["none"],"instructions":30000,"warmup":10000}`)
	if status != 200 {
		t.Fatalf("alias sweep: status = %d (body %s)", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, r := range resp.Results {
		got[r.IPrefetcher]++
	}
	if len(got) != 1 || got["nextline"] != 1 {
		t.Fatalf("alias should canonicalize and dedup to nextline, got %v", got)
	}
}
