// End-to-end fabric tests: real Server instances as workers behind a
// real Coordinator, with runSim stubbed to a fast deterministic function
// of the cache key — so the determinism contract (sharded result set ==
// single-node result set, byte for byte) is assertable in milliseconds.
package server

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// fakeSimFor returns a runSim stub whose result is a pure function of
// the cell's cache key — identical on every node, distinct per cell —
// and counts invocations.
func fakeSimFor(sims *atomic.Int64) func(context.Context, *experiments.Params, string, config.Config) (stats.Run, error) {
	return func(_ context.Context, p *experiments.Params, bench string, cfg config.Config) (stats.Run, error) {
		key := p.CacheKey(bench, cfg)
		// Mirror the production path's store contract (experiments.runCtx):
		// probe the persistent store before simulating, fill it after.
		if p.Store != nil {
			if r, ok := p.Store.GetRun(key); ok {
				return r, nil
			}
		}
		if sims != nil {
			sims.Add(1)
		}
		sum := sha256.Sum256([]byte(key))
		n := binary.BigEndian.Uint64(sum[:8]) % 1_000_000
		r := stats.Run{
			Benchmark:    bench,
			Filter:       string(cfg.Filter.Kind),
			Instructions: uint64(p.Instructions),
			Cycles:       uint64(p.Instructions) + n,
			Prefetches:   stats.Prefetches{Issued: n, Good: n / 2, Bad: n / 3},
		}
		if p.Store != nil {
			p.Store.PutRun(key, r)
		}
		return r, nil
	}
}

// cluster is one coordinator in front of worker Servers sharing a CAS.
type cluster struct {
	coord     *Server
	coordTS   *httptest.Server
	workers   []*httptest.Server
	cas       *fabric.CAS
	sims      *atomic.Int64 // total stub simulations across all workers
	coordSims *atomic.Int64 // stub simulations on the coordinator itself (must stay 0)
}

// newCluster builds n stub-simulating workers and a coordinator dealing
// to them. Worker servers keep running until the test ends unless the
// test closes them explicitly.
func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	cl := &cluster{sims: new(atomic.Int64), coordSims: new(atomic.Int64)}
	m := metrics.New()
	var err error
	cl.cas, err = fabric.OpenCAS(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ws := New(Config{CAS: cl.cas})
		ws.runSim = fakeSimFor(cl.sims)
		ts := httptest.NewServer(ws.Handler())
		t.Cleanup(ts.Close)
		cl.workers = append(cl.workers, ts)
		urls[i] = ts.URL
	}
	coord, err := fabric.New(fabric.Options{
		Workers: urls,
		CAS:     cl.cas,
		Lease:   10 * time.Second,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.coord = New(Config{CAS: cl.cas, Coordinator: coord, Metrics: m})
	cl.coord.runSim = fakeSimFor(cl.coordSims)
	cl.coordTS = httptest.NewServer(cl.coord.Handler())
	t.Cleanup(cl.coordTS.Close)
	return cl
}

// sweepBody is a small three-benchmark, three-filter sweep (9 cells).
const sweepBody = `{"benchmarks":["mcf","gzip","gcc"],"instructions":1000,"seed":7}`

// standaloneFingerprint runs the same sweep on a fresh single-node
// server with the same stub and returns its fingerprint.
func standaloneFingerprint(t *testing.T, body string) (string, SweepResponse) {
	t.Helper()
	s, ts := newTestServer(t, Config{})
	s.runSim = fakeSimFor(nil)
	status, b := post(t, ts.URL, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("standalone sweep: status %d: %s", status, b)
	}
	var resp SweepResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("standalone sweep reported %d errors", resp.Errors)
	}
	return resp.Fingerprint, resp
}

func TestFabricSweepMatchesStandalone(t *testing.T) {
	cl := newCluster(t, 2)
	status, b := post(t, cl.coordTS.URL, "/v1/sweep", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("fabric sweep: status %d: %s", status, b)
	}
	var resp SweepResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("fabric sweep reported %d errors: %s", resp.Errors, b)
	}
	if resp.Unique != 9 || len(resp.Results) != 9 {
		t.Fatalf("unique = %d, results = %d, want 9", resp.Unique, len(resp.Results))
	}
	for _, r := range resp.Results {
		if r.Source == "" || r.KeySHA == "" {
			t.Fatalf("result %s missing fabric provenance (source=%q key_sha=%q)", r.Name, r.Source, r.KeySHA)
		}
	}
	if cl.coordSims.Load() != 0 {
		t.Fatalf("coordinator simulated %d cells itself; it must only deal", cl.coordSims.Load())
	}
	if cl.sims.Load() != 9 {
		t.Fatalf("workers simulated %d cells, want 9", cl.sims.Load())
	}

	// The determinism contract: byte-identical to a single-node sweep.
	want, _ := standaloneFingerprint(t, sweepBody)
	if resp.Fingerprint != want {
		t.Fatalf("sharded fingerprint %s != standalone %s", resp.Fingerprint, want)
	}
}

func TestFabricRepeatSweepServedFromCAS(t *testing.T) {
	cl := newCluster(t, 2)
	status, b := post(t, cl.coordTS.URL, "/v1/sweep", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("first sweep: status %d: %s", status, b)
	}
	var first SweepResponse
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}
	simsAfterFirst := cl.sims.Load()

	status, b = post(t, cl.coordTS.URL, "/v1/sweep", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("repeat sweep: status %d: %s", status, b)
	}
	var second SweepResponse
	if err := json.Unmarshal(b, &second); err != nil {
		t.Fatal(err)
	}
	if second.CASHits != second.Unique {
		t.Fatalf("repeat sweep: cas_hits = %d, want %d (every cell)", second.CASHits, second.Unique)
	}
	if got := cl.sims.Load(); got != simsAfterFirst {
		t.Fatalf("repeat sweep simulated %d new cells, want 0", got-simsAfterFirst)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatal("CAS-served sweep fingerprint differs from the simulated one")
	}
	for _, r := range second.Results {
		if r.Source != "cas" {
			t.Fatalf("repeat sweep cell %s source = %q, want cas", r.Name, r.Source)
		}
	}
}

func TestFabricSurvivesWorkerDeath(t *testing.T) {
	cl := newCluster(t, 2)
	// Kill worker 0 before the sweep: every cell dealt to it is a
	// transport failure the coordinator must re-deal to worker 1.
	cl.workers[0].Close()

	status, b := post(t, cl.coordTS.URL, "/v1/sweep", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("sweep with dead worker: status %d: %s", status, b)
	}
	var resp SweepResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 {
		t.Fatalf("sweep with dead worker reported %d errors: %s", resp.Errors, b)
	}
	for _, r := range resp.Results {
		if r.Source != cl.workers[1].URL {
			t.Fatalf("cell %s source = %q, want the surviving worker %s", r.Name, r.Source, cl.workers[1].URL)
		}
	}
	want, _ := standaloneFingerprint(t, sweepBody)
	if resp.Fingerprint != want {
		t.Fatalf("post-death fingerprint %s != standalone %s", resp.Fingerprint, want)
	}
}

func TestCellEndpointExecuteAndFill(t *testing.T) {
	m := metrics.New()
	cas, err := fabric.OpenCAS(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{CAS: cas, Metrics: m})
	s.runSim = fakeSimFor(nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cfg := config.Default8K()
	body, err := json.Marshal(fabric.CellRequest{Bench: "mcf", Config: &cfg, Instructions: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Execute mode: first call simulates...
	status, b := post(t, ts.URL, "/v1/cell", string(body))
	if status != http.StatusOK {
		t.Fatalf("cell execute: status %d: %s", status, b)
	}
	var cr fabric.CellResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Run == nil || cr.Source != "sim" || cr.KeySHA != fabric.KeySHA(cr.Key) {
		t.Fatalf("cell execute: %+v, want a simulated run with a consistent address", cr)
	}

	// ...and the second answers from the CAS without executing.
	status, b = post(t, ts.URL, "/v1/cell", string(body))
	if status != http.StatusOK {
		t.Fatalf("cell re-execute: status %d: %s", status, b)
	}
	var cr2 fabric.CellResponse
	if err := json.Unmarshal(b, &cr2); err != nil {
		t.Fatal(err)
	}
	if cr2.Source != "cas" || cr2.Key != cr.Key {
		t.Fatalf("cell re-execute: source=%q key match=%v, want a CAS hit for the same key", cr2.Source, cr2.Key == cr.Key)
	}

	// GET by content address round-trips the envelope.
	status, b = get(t, ts.URL, "/v1/cell?sha="+cr.KeySHA)
	if status != http.StatusOK {
		t.Fatalf("cell get: status %d: %s", status, b)
	}
	var got fabric.CellResponse
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Key != cr.Key || got.Run == nil {
		t.Fatalf("cell get = %+v, want the stored envelope for %s", got, cr.Key)
	}

	// Fill mode inserts a foreign result without simulating.
	cfg16 := config.Default16K()
	fill := fabric.CellRequest{Bench: "gzip", Config: &cfg16, Instructions: 500, Seed: 9, Run: &stats.Run{Benchmark: "gzip", Instructions: 500, Cycles: 700}}
	fb, err := json.Marshal(fill)
	if err != nil {
		t.Fatal(err)
	}
	status, b = post(t, ts.URL, "/v1/cell", string(fb))
	if status != http.StatusOK {
		t.Fatalf("cell fill: status %d: %s", status, b)
	}
	var fr fabric.CellResponse
	if err := json.Unmarshal(b, &fr); err != nil {
		t.Fatal(err)
	}
	if run, ok := cas.GetRun(fr.Key); !ok || run.Cycles != 700 {
		t.Fatalf("filled entry not readable from the CAS (ok=%v run=%+v)", ok, run)
	}

	// Errors: bad sha length, unknown sha, unknown benchmark.
	if status, _ := get(t, ts.URL, "/v1/cell?sha=abc"); status != http.StatusBadRequest {
		t.Fatalf("short sha: status %d, want 400", status)
	}
	if status, _ := get(t, ts.URL, "/v1/cell?sha="+strings.Repeat("0", 64)); status != http.StatusNotFound {
		t.Fatalf("unknown sha: status %d, want 404", status)
	}
	if status, _ := post(t, ts.URL, "/v1/cell", `{"bench":"nope","config":`+mustJSON(t, cfg)+`}`); status != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: status %d, want 400", status)
	}
}

func TestCellEndpointWithoutCAS(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.runSim = fakeSimFor(nil)
	if status, _ := get(t, ts.URL, "/v1/cell?sha="+strings.Repeat("0", 64)); status != http.StatusNotImplemented {
		t.Fatalf("GET without CAS: status %d, want 501", status)
	}
	cfg := config.Default8K()
	fill := fabric.CellRequest{Bench: "mcf", Config: &cfg, Run: &stats.Run{}}
	fb, err := json.Marshal(fill)
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := post(t, ts.URL, "/v1/cell", string(fb)); status != http.StatusNotImplemented {
		t.Fatalf("fill without CAS: status %d, want 501", status)
	}
	// Execute mode still works — no store, it just simulates.
	body, err := json.Marshal(fabric.CellRequest{Bench: "mcf", Config: &cfg, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	status, b := post(t, ts.URL, "/v1/cell", string(body))
	if status != http.StatusOK {
		t.Fatalf("execute without CAS: status %d: %s", status, b)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSweepStreaming(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.runSim = fakeSimFor(nil)

	body := `{"benchmarks":["mcf","gzip"],"instructions":1000,"seed":7,"stream":true}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var results []RunResult
	var summary *SweepResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "result":
			if summary != nil {
				t.Fatal("result line after the summary line")
			}
			if line.Result == nil {
				t.Fatal("result line without a result")
			}
			results = append(results, *line.Result)
		case "summary":
			if line.Summary == nil {
				t.Fatal("summary line without a summary")
			}
			summary = line.Summary
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	if len(results) != 6 || summary.Unique != 6 || summary.Errors != 0 {
		t.Fatalf("streamed %d results, summary unique=%d errors=%d; want 6/6/0", len(results), summary.Unique, summary.Errors)
	}
	if len(summary.Results) != 0 {
		t.Fatal("summary line duplicates the results array")
	}

	// The stream and the buffered path agree byte for byte.
	want, buffered := standaloneFingerprint(t, `{"benchmarks":["mcf","gzip"],"instructions":1000,"seed":7}`)
	if summary.Fingerprint != want {
		t.Fatalf("streamed fingerprint %s != buffered %s", summary.Fingerprint, want)
	}
	if len(buffered.Results) != len(results) {
		t.Fatalf("streamed %d results, buffered %d", len(results), len(buffered.Results))
	}
}

func TestSweepStreamingCancellation(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, MaxConcurrent: 1})
	s.runSim = blockingRunner(entered, release)

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"benchmarks":["mcf","gzip","gcc"],"stream":true}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait for the first simulation to start, then cancel the request
	// mid-stream. The handler (and the sweep behind it) must unwind:
	// Drain must complete, i.e. no goroutine is stuck writing to a dead
	// client.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no simulation started")
	}
	cancel()
	close(release)

	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	s.BeginDrain()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("server did not drain after client cancellation: %v", err)
	}
}
