// Request/response codec for the simulation service: JSON shapes, their
// validation, and the expansion of sweep requests into (benchmark,
// config) matrices. Validation happens here, before admission, so a
// malformed request never occupies a queue slot.

package server

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/filter"
	"repro/internal/frontend"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tracefile"
	"repro/internal/workload"
)

// RunRequest is the body of POST /v1/run: one (benchmark, config, seed)
// simulation. Zero-valued fields take the server defaults; warmup is a
// pointer so an explicit 0 is distinguishable from absent.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	// Filter is the pollution-filter kind: "none" (default), "pa", "pc",
	// "static", "adaptive", or "deadblock".
	Filter string `json:"filter,omitempty"`
	// CacheKB is the L1 data cache size: 8 (default), 16, or 32.
	CacheKB int `json:"cache_kb,omitempty"`
	// TableEntries overrides the filter history-table length (power of two).
	TableEntries int `json:"table_entries,omitempty"`
	// L1Ports overrides the L1 port count (§5.4 port/latency pairing).
	L1Ports int `json:"l1_ports,omitempty"`
	// PrefetchBuffer routes prefetch fills into the dedicated buffer (§5.5).
	PrefetchBuffer bool `json:"prefetch_buffer,omitempty"`

	Instructions int64  `json:"instructions,omitempty"`
	Warmup       *int64 `json:"warmup,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	// DeadlineMS caps this request's wall time; capped by the server's
	// max deadline. 0 takes the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a batch of simulations,
// either an explicit benchmarks x filters cross product or the standard
// paper-evaluation matrix. Identical cells are deduplicated; identical
// in-flight simulations are shared process-wide through the memo.
type SweepRequest struct {
	// Standard expands the full standard evaluation matrix (every
	// (benchmark, config) pair the paper figures request), optionally
	// narrowed by Benchmarks. Filters/CacheKB are ignored when set.
	Standard bool `json:"standard,omitempty"`

	// Benchmarks to sweep; empty means the paper's ten.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Filters to cross with the benchmarks; empty means none/pa/pc.
	Filters []string `json:"filters,omitempty"`
	// Generators adds a third sweep axis: each named prefetch generator
	// (internal/prefetch registry; aliases resolve) runs alone against
	// every (benchmark, filter) cell, and the response carries the
	// per-(benchmark, generator, filter) comparison. ["all"] expands to
	// every registered generator. Empty keeps the config's default
	// generator mix and the plain filters comparison.
	Generators []string `json:"generators,omitempty"`
	// IPrefetch adds the I-side sweep axis: each named instruction
	// prefetcher (internal/frontend registry; aliases resolve) runs
	// with the front end enabled against every (benchmark, filter)
	// cell, and the response carries the per-(benchmark, iprefetcher,
	// filter) comparison. ["all"] expands to every registered backend.
	// Mutually exclusive with Generators: enabling the front end
	// replaces the D-side generator mix, so crossing the two axes in
	// one sweep would mislabel the cells.
	IPrefetch []string `json:"iprefetch,omitempty"`
	// Traces extends the benchmark axis with registered trace-corpus
	// benchmarks (internal/tracefile; loaded at startup via pfserved
	// -trace-manifest). Names resolve with or without the "trace:"
	// prefix; ["all"] expands to every registered trace. Unknown names
	// are a request error listing the registered corpus.
	Traces  []string `json:"traces,omitempty"`
	CacheKB int      `json:"cache_kb,omitempty"`

	// Stream switches the response to NDJSON: one result object per
	// line AS EACH CELL LANDS (completion order — CAS hits first), then
	// a final summary line. Without it the whole sweep is buffered into
	// one SweepResponse, as before.
	Stream bool `json:"stream,omitempty"`

	Instructions int64  `json:"instructions,omitempty"`
	Warmup       *int64 `json:"warmup,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	DeadlineMS   int64  `json:"deadline_ms,omitempty"`
}

// RunResult is one simulation's outcome inside a response.
type RunResult struct {
	// Name labels the cell as "<benchmark>/<filter>", or
	// "<benchmark>/<generator>/<filter>" on a generator sweep.
	Name      string `json:"name"`
	Benchmark string `json:"benchmark"`
	// Generator is the prefetch generator of a generator-axis cell;
	// empty on plain sweeps.
	Generator string `json:"generator,omitempty"`
	// IPrefetcher is the instruction prefetcher of an I-side-axis cell;
	// empty on plain sweeps.
	IPrefetcher string `json:"iprefetcher,omitempty"`
	Filter      string `json:"filter"`

	IPC        float64 `json:"ipc"`
	L1MissRate float64 `json:"l1_miss_rate"`
	// WallNS is this job's execution wall time on the pool; a cached or
	// shared result reports (near) zero.
	WallNS int64 `json:"wall_ns"`
	// KeySHA is the cell's content address (sha256 of its cache key) —
	// the CAS filename stem and the handle for GET /v1/cell?sha=….
	KeySHA string `json:"key_sha,omitempty"`
	// Source reports where a fabric-served cell came from: "cas", or
	// the worker URL that computed it. Empty on single-node execution.
	Source string `json:"source,omitempty"`

	Run   *stats.Run `json:"run,omitempty"`
	Error string     `json:"error,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Seed         uint64    `json:"seed"`
	Instructions int64     `json:"instructions"`
	Warmup       int64     `json:"warmup"`
	Result       RunResult `json:"result"`
}

// SweepResponse is the body of a successful POST /v1/sweep. Individual
// cell failures are reported per-result (and counted in Errors), not as
// an HTTP error: partial sweeps are useful.
type SweepResponse struct {
	Seed         uint64 `json:"seed"`
	Instructions int64  `json:"instructions"`
	Warmup       int64  `json:"warmup"`
	// Jobs is the requested cell count; Unique is after deduplication.
	Jobs   int `json:"jobs"`
	Unique int `json:"unique"`
	Errors int `json:"errors"`
	// WallNS is the whole sweep's wall time under the scheduler.
	WallNS  int64       `json:"wall_ns"`
	Results []RunResult `json:"results,omitempty"`
	// Fingerprint digests the successful cells (sha256 over sorted
	// key+run pairs; see fabric.Fingerprint). A sweep sharded across
	// workers and the same sweep on one node MUST report equal
	// fingerprints — the fabric's determinism contract.
	Fingerprint string `json:"fingerprint,omitempty"`
	// CASHits counts cells served from the content-addressed store
	// without simulating (fabric execution only).
	CASHits int `json:"cas_hits,omitempty"`
	// Comparison is the head-to-head view of the successful cells:
	// per-(benchmark, filter) classification counts, accuracy, coverage,
	// and IPC delta against the benchmark's unfiltered ("none") cell when
	// the sweep includes one.
	Comparison []report.FilterComparisonRow `json:"comparison,omitempty"`
	// GeneratorComparison replaces Comparison on generator sweeps: one
	// row per (benchmark, generator, filter) cell, IPC deltas against
	// the same (benchmark, generator) pair's unfiltered cell.
	GeneratorComparison []report.GeneratorComparisonRow `json:"generator_comparison,omitempty"`
	// IPrefetchComparison replaces Comparison on I-side sweeps: one row
	// per (benchmark, iprefetcher, filter) cell, IPC deltas against the
	// same (benchmark, iprefetcher) pair's unfiltered cell.
	IPrefetchComparison []report.IPrefetchComparisonRow `json:"iprefetch_comparison,omitempty"`
}

// StreamLine is one line of an NDJSON streaming sweep response
// (SweepRequest.Stream): Type "result" lines carry one cell each in
// completion order, and the single terminal Type "summary" line carries
// the sweep totals (fingerprint, error and CAS-hit counts, comparison —
// everything a buffered SweepResponse has except the Results array,
// which the stream already delivered). Error is set on the summary line
// when the sweep was cut short (deadline, cancellation).
type StreamLine struct {
	Type    string         `json:"type"`
	Result  *RunResult     `json:"result,omitempty"`
	Summary *SweepResponse `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// validateBenchmarks checks every name against the workload registry.
// Unknown names in the trace namespace list the registered corpus, the
// same contract the filter and generator axes follow for their zoos.
func validateBenchmarks(names []string) error {
	for _, b := range names {
		if b == "" {
			return fmt.Errorf("empty benchmark name")
		}
		if _, ok := workload.ByName(b); !ok {
			if tracefile.IsTraceBench(b) {
				return fmt.Errorf("unknown trace %q (registered traces: %v)", b, tracefile.Registered())
			}
			return fmt.Errorf("unknown benchmark %q", b)
		}
	}
	return nil
}

// appendUnique appends each list's elements to dst, skipping
// duplicates while preserving first-occurrence order.
func appendUnique(dst []string, lists ...[]string) []string {
	seen := make(map[string]bool, len(dst))
	for _, b := range dst {
		seen[b] = true
	}
	for _, list := range lists {
		for _, b := range list {
			if !seen[b] {
				seen[b] = true
				dst = append(dst, b)
			}
		}
	}
	return dst
}

// expandTraces resolves the traces dimension to registered trace
// benchmark names: ["all"] becomes the whole registered corpus, names
// resolve with or without the "trace:" prefix, and an unknown name is a
// request error (HTTP 400) listing the registered corpus.
func expandTraces(names []string) ([]string, error) {
	if len(names) == 1 && names[0] == "all" {
		reg := tracefile.Registered()
		if len(reg) == 0 {
			return nil, fmt.Errorf("no trace corpus registered (start the server with -trace-manifest)")
		}
		return reg, nil
	}
	out := make([]string, 0, len(names))
	seen := map[string]bool{}
	for _, name := range names {
		full := name
		if !tracefile.IsTraceBench(full) {
			full = tracefile.BenchPrefix + name
		}
		if _, ok := workload.ByName(full); !ok {
			return nil, fmt.Errorf("unknown trace %q (registered traces: %v)", name, tracefile.Registered())
		}
		if !seen[full] {
			seen[full] = true
			out = append(out, full)
		}
	}
	return out, nil
}

// buildConfig assembles a machine config from request knobs and
// validates it.
func buildConfig(filterName string, cacheKB, tableEntries, l1Ports int, prefetchBuffer bool) (config.Config, error) {
	var cfg config.Config
	switch cacheKB {
	case 0, 8:
		cfg = config.Default8K()
	case 16:
		cfg = config.Default16K()
	case 32:
		cfg = config.Default32K()
	default:
		return config.Config{}, fmt.Errorf("cache_kb must be 8, 16, or 32, got %d", cacheKB)
	}
	kind := config.FilterKind(filterName)
	if filterName == "" {
		kind = config.FilterNone
	}
	if !filter.Registered(kind) {
		return config.Config{}, fmt.Errorf("unknown filter %q (registered backends: %v)", filterName, filter.Kinds())
	}
	cfg = cfg.WithFilter(kind)
	if tableEntries > 0 {
		cfg = cfg.WithTableEntries(tableEntries)
	}
	if l1Ports > 0 {
		cfg = cfg.WithL1Ports(l1Ports)
	}
	if prefetchBuffer {
		cfg = cfg.WithPrefetchBuffer(true)
	}
	if err := cfg.Validate(); err != nil {
		return config.Config{}, err
	}
	return cfg, nil
}

// expandRun turns a validated RunRequest into its single matrix item.
func expandRun(req RunRequest) ([]experiments.MatrixItem, error) {
	if err := validateBenchmarks([]string{req.Benchmark}); err != nil {
		return nil, err
	}
	cfg, err := buildConfig(req.Filter, req.CacheKB, req.TableEntries, req.L1Ports, req.PrefetchBuffer)
	if err != nil {
		return nil, err
	}
	return []experiments.MatrixItem{{Bench: req.Benchmark, Config: cfg}}, nil
}

// expandSweep turns a validated SweepRequest into its matrix. p supplies
// the standard-matrix expansion (and carries the benchmark narrowing).
func expandSweep(req SweepRequest, p *experiments.Params) ([]experiments.MatrixItem, error) {
	if err := validateBenchmarks(req.Benchmarks); err != nil {
		return nil, err
	}
	traces, err := expandTraces(req.Traces)
	if err != nil {
		return nil, err
	}
	if req.Standard {
		if len(traces) > 0 {
			// The trace axis extends the standard matrix's benchmark set.
			base := p.Benchmarks
			if len(base) == 0 {
				base = workload.PaperNames()
			}
			p.Benchmarks = appendUnique(nil, base, traces)
		}
		return p.StandardMatrix(), nil
	}
	benches := req.Benchmarks
	if len(benches) == 0 && len(traces) == 0 {
		benches = workload.PaperNames()
	}
	benches = appendUnique(nil, benches, traces)
	filters := req.Filters
	if len(filters) == 0 {
		filters = []string{string(config.FilterNone), string(config.FilterPA), string(config.FilterPC)}
	} else if len(filters) == 1 && filters[0] == "all" {
		// The filters dimension expands to every sweepable backend in the
		// registry (the static filter needs a profiling run and is skipped).
		filters = filter.Sweepable()
	}
	gens, err := expandGenerators(req.Generators)
	if err != nil {
		return nil, err
	}
	iprefs, err := expandIPrefetch(req.IPrefetch)
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 && len(iprefs) > 0 {
		return nil, fmt.Errorf("the generators and iprefetch axes cannot be combined in one sweep (the front end replaces the D-side generator mix)")
	}
	items := make([]experiments.MatrixItem, 0, len(benches)*len(filters)*max(1, len(gens)+len(iprefs)))
	for _, f := range filters {
		cfg, err := buildConfig(f, req.CacheKB, 0, 0, false)
		if err != nil {
			return nil, err
		}
		switch {
		case len(gens) > 0:
			for _, g := range gens {
				gcfg := cfg.WithGenerator(g)
				for _, b := range benches {
					items = append(items, experiments.MatrixItem{Bench: b, Config: gcfg, Generator: string(g)})
				}
			}
		case len(iprefs) > 0:
			for _, ip := range iprefs {
				icfg := cfg.WithIPrefetch(ip)
				for _, b := range benches {
					items = append(items, experiments.MatrixItem{Bench: b, Config: icfg, IPrefetcher: string(ip)})
				}
			}
		default:
			for _, b := range benches {
				items = append(items, experiments.MatrixItem{Bench: b, Config: cfg})
			}
		}
	}
	return items, nil
}

// expandIPrefetch resolves the iprefetch dimension: ["all"] becomes
// every registered instruction-prefetcher kind, names resolve through
// their aliases, and an unknown kind is a request error (HTTP 400).
func expandIPrefetch(names []string) ([]config.IPrefetchKind, error) {
	if len(names) == 1 && names[0] == "all" {
		reg := frontend.Sweepable()
		out := make([]config.IPrefetchKind, len(reg))
		for i, ip := range reg {
			out[i] = config.IPrefetchKind(ip)
		}
		return out, nil
	}
	out := make([]config.IPrefetchKind, 0, len(names))
	seen := map[config.IPrefetchKind]bool{}
	for _, ip := range names {
		kind := config.IPrefetchKind(ip).Canonical()
		if !frontend.Registered(kind) {
			return nil, fmt.Errorf("unknown instruction prefetcher %q (registered backends: %v)", ip, frontend.Kinds())
		}
		if !seen[kind] {
			seen[kind] = true
			out = append(out, kind)
		}
	}
	return out, nil
}

// expandGenerators resolves the generators dimension: ["all"] becomes
// every registered generator kind, names resolve through their aliases,
// and an unknown kind is a request error (HTTP 400).
func expandGenerators(names []string) ([]config.PrefetchKind, error) {
	if len(names) == 1 && names[0] == "all" {
		reg := prefetch.Sweepable()
		out := make([]config.PrefetchKind, len(reg))
		for i, g := range reg {
			out[i] = config.PrefetchKind(g)
		}
		return out, nil
	}
	out := make([]config.PrefetchKind, 0, len(names))
	seen := map[config.PrefetchKind]bool{}
	for _, g := range names {
		kind := config.PrefetchKind(g).Canonical()
		if !prefetch.Registered(kind) {
			return nil, fmt.Errorf("unknown generator %q (registered generators: %v)", g, prefetch.Kinds())
		}
		if !seen[kind] {
			seen[kind] = true
			out = append(out, kind)
		}
	}
	return out, nil
}

// buildComparison derives the head-to-head rows from the successful
// sweep cells. IPC deltas are against the benchmark's "none" cell; a
// benchmark without one reports zero deltas.
func buildComparison(results []RunResult) []report.FilterComparisonRow {
	baseIPC := make(map[string]float64)
	for _, r := range results {
		if r.Run != nil && config.FilterKind(r.Filter).Canonical() == config.FilterNone {
			baseIPC[r.Benchmark] = r.IPC
		}
	}
	var rows []report.FilterComparisonRow
	for _, r := range results {
		if r.Run == nil {
			continue
		}
		cov := 0.0
		if denom := r.Run.Prefetches.Good + r.Run.L1DemandMisses; denom > 0 {
			cov = float64(r.Run.Prefetches.Good) / float64(denom)
		}
		delta := 0.0
		if base, ok := baseIPC[r.Benchmark]; ok {
			delta = r.IPC - base
		}
		rows = append(rows, report.FilterComparisonRow{
			Benchmark: r.Benchmark,
			Filter:    r.Filter,
			Good:      r.Run.Prefetches.Good,
			Bad:       r.Run.Prefetches.Bad,
			Filtered:  r.Run.Prefetches.Filtered,
			Accuracy:  r.Run.Prefetches.GoodFraction(),
			Coverage:  cov,
			IPC:       r.IPC,
			IPCDelta:  delta,
		})
	}
	report.SortFilterComparison(rows)
	return rows
}

// buildGeneratorComparison derives the cross-product rows from a
// generator sweep's successful cells. IPC deltas are against the same
// (benchmark, generator) pair's "none" cell; pairs without one report
// zero deltas.
func buildGeneratorComparison(results []RunResult) []report.GeneratorComparisonRow {
	baseIPC := make(map[string]float64)
	for _, r := range results {
		if r.Run != nil && config.FilterKind(r.Filter).Canonical() == config.FilterNone {
			baseIPC[r.Benchmark+"|"+r.Generator] = r.IPC
		}
	}
	var rows []report.GeneratorComparisonRow
	for _, r := range results {
		if r.Run == nil {
			continue
		}
		cov := 0.0
		if denom := r.Run.Prefetches.Good + r.Run.L1DemandMisses; denom > 0 {
			cov = float64(r.Run.Prefetches.Good) / float64(denom)
		}
		delta := 0.0
		if base, ok := baseIPC[r.Benchmark+"|"+r.Generator]; ok {
			delta = r.IPC - base
		}
		rows = append(rows, report.GeneratorComparisonRow{
			Generator: r.Generator,
			FilterComparisonRow: report.FilterComparisonRow{
				Benchmark: r.Benchmark,
				Filter:    r.Filter,
				Good:      r.Run.Prefetches.Good,
				Bad:       r.Run.Prefetches.Bad,
				Filtered:  r.Run.Prefetches.Filtered,
				Accuracy:  r.Run.Prefetches.GoodFraction(),
				Coverage:  cov,
				IPC:       r.IPC,
				IPCDelta:  delta,
			},
		})
	}
	report.SortGeneratorComparison(rows)
	return rows
}

// buildIPrefetchComparison derives the I-side cross-product rows from
// an iprefetch sweep's successful cells. IPC deltas are against the
// same (benchmark, iprefetcher) pair's "none" cell; pairs without one
// report zero deltas. The Frontend block is nil-guarded: a cell served
// from a store written before the front end existed degrades to zero
// I-side counts rather than failing the sweep.
func buildIPrefetchComparison(results []RunResult) []report.IPrefetchComparisonRow {
	baseIPC := make(map[string]float64)
	for _, r := range results {
		if r.Run != nil && config.FilterKind(r.Filter).Canonical() == config.FilterNone {
			baseIPC[r.Benchmark+"|"+r.IPrefetcher] = r.IPC
		}
	}
	var rows []report.IPrefetchComparisonRow
	for _, r := range results {
		if r.Run == nil {
			continue
		}
		delta := 0.0
		if base, ok := baseIPC[r.Benchmark+"|"+r.IPrefetcher]; ok {
			delta = r.IPC - base
		}
		row := report.IPrefetchComparisonRow{
			IPrefetcher: r.IPrefetcher,
			Benchmark:   r.Benchmark,
			Filter:      r.Filter,
			IPC:         r.IPC,
			IPCDelta:    delta,
		}
		if fe := r.Run.Frontend; fe != nil {
			row.Good = fe.Prefetches.Good
			row.Bad = fe.Prefetches.Bad
			row.Filtered = fe.Prefetches.Filtered
			row.FetchMissRate = fe.FetchMissRate()
			row.Pollution = fe.Pollution()
		}
		rows = append(rows, row)
	}
	report.SortIPrefetchComparison(rows)
	return rows
}

// resultForCell assembles one RunResult from a cell and its outcome,
// stamping the content address and fabric provenance.
func resultForCell(c sweepCell, o cellOutcome) RunResult {
	err := o.err
	if err == nil && o.run == nil {
		err = fmt.Errorf("cell produced no result")
	}
	res := resultFor(c.item, o.run, o.wallNS, err)
	res.KeySHA = fabric.KeySHA(c.key)
	res.Source = o.source
	return res
}

// resultFor assembles one RunResult from a matrix item and its run.
func resultFor(item experiments.MatrixItem, r *stats.Run, wallNS int64, err error) RunResult {
	name := item.Bench + "/" + string(item.Config.Filter.Kind)
	if item.Generator != "" {
		name = item.Bench + "/" + item.Generator + "/" + string(item.Config.Filter.Kind)
	}
	if item.IPrefetcher != "" {
		name = item.Bench + "/i:" + item.IPrefetcher + "/" + string(item.Config.Filter.Kind)
	}
	out := RunResult{
		Name:        name,
		Benchmark:   item.Bench,
		Generator:   item.Generator,
		IPrefetcher: item.IPrefetcher,
		Filter:      string(item.Config.Filter.Kind),
		WallNS:      wallNS,
	}
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Run = r
	out.IPC = r.IPC()
	out.L1MissRate = r.L1MissRate()
	return out
}
