// HTTP handlers: decode, validate, admit, execute, respond. Every
// response body is JSON except /healthz and /metrics (Prometheus text).

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/stats"
)

// maxBodyBytes bounds request bodies; sweeps are small JSON documents.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/cell", s.handleCellPost)
	s.mux.HandleFunc("GET /v1/cell", s.handleCellGet)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header are unrecoverable; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.cfg.Metrics.Counter("server.errors." + strconv.Itoa(status)).Inc()
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON strictly decodes one JSON document from the request body.
// It returns the HTTP status to answer with on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return http.StatusRequestEntityTooLarge, errors.New("request body too large")
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return http.StatusBadRequest, errors.New("bad request body: trailing data after JSON document")
	}
	return 0, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok") // client gone is not a server error
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Metrics
	// Queue-occupancy gauges, refreshed at scrape time.
	m.Counter("server.queue.used").Set(uint64(len(s.slots)))
	m.Counter("server.queue.depth").Set(uint64(cap(s.slots)))
	m.Counter("server.exec.active").Set(uint64(len(s.exec)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := m.Snapshot().WritePrometheus(w); err != nil {
		// Mid-stream write error: the connection is gone.
		return
	}
}

// admitAndExecute is the shared buffered serving path: take an admission
// slot (or 429), apply the deadline, run the cells, and translate
// context expiry into 504. On failure it has already written the
// response and returns ok=false.
func (s *Server) admitAndExecute(w http.ResponseWriter, r *http.Request, deadlineMS int64, p *experiments.Params, cells []sweepCell) (outcomes map[string]cellOutcome, wallNS int64, ok bool) {
	if !s.admit() {
		s.cfg.Metrics.Counter("server.rejected.backpressure").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, "admission queue full (%d requests in flight); retry later", cap(s.slots))
		return nil, 0, false
	}
	defer s.releaseSlot()

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(deadlineMS))
	defer cancel()

	start := time.Now()
	outcomes, err := s.executeCells(ctx, p, cells, nil)
	wall := time.Since(start)
	s.cfg.Metrics.Histogram("server.request.wall_ns").Observe(uint64(wall))
	if err != nil {
		s.cfg.Metrics.Counter("server.rejected.deadline").Inc()
		s.writeError(w, http.StatusGatewayTimeout, "request expired: %v", err)
		return nil, 0, false
	}
	return outcomes, wall.Nanoseconds(), true
}

// outcomeStatus maps a cell failure to its HTTP status.
func outcomeStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.cfg.Metrics.Counter("server.run.requests").Inc()
	if s.draining.Load() {
		s.cfg.Metrics.Counter("server.rejected.draining").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req RunRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Instructions > s.cfg.MaxInstructions {
		s.writeError(w, http.StatusBadRequest, "instructions %d exceeds the per-request cap %d", req.Instructions, s.cfg.MaxInstructions)
		return
	}
	items, err := expandRun(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	p := s.paramsFor(req.Instructions, req.Warmup, req.Seed)
	cells := cellsFor(&p, items)
	outcomes, _, ok := s.admitAndExecute(w, r, req.DeadlineMS, &p, cells)
	if !ok {
		return
	}

	c := cells[0]
	o := outcomes[c.key]
	if o.err != nil {
		s.writeError(w, outcomeStatus(o.err), "simulation failed: %v", o.err)
		return
	}
	s.cfg.Metrics.Counter("server.run.completed").Inc()
	writeJSON(w, http.StatusOK, RunResponse{
		Seed:         p.Seed,
		Instructions: p.Instructions,
		Warmup:       p.Warmup,
		Result:       resultForCell(c, o),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.cfg.Metrics.Counter("server.sweep.requests").Inc()
	if s.draining.Load() {
		s.cfg.Metrics.Counter("server.rejected.draining").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SweepRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Instructions > s.cfg.MaxInstructions {
		s.writeError(w, http.StatusBadRequest, "instructions %d exceeds the per-request cap %d", req.Instructions, s.cfg.MaxInstructions)
		return
	}

	p := s.paramsFor(req.Instructions, req.Warmup, req.Seed)
	if req.Standard {
		p.Benchmarks = req.Benchmarks
	}
	items, err := expandSweep(req, &p)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Deduplicate identical cells (first occurrence wins) and enforce
	// the sweep-size bound on the deduplicated matrix.
	cells := cellsFor(&p, items)
	if len(cells) > s.cfg.MaxSweepJobs {
		s.writeError(w, http.StatusRequestEntityTooLarge, "sweep expands to %d jobs, cap is %d", len(cells), s.cfg.MaxSweepJobs)
		return
	}

	if req.Stream {
		s.streamSweep(w, r, req, &p, cells, len(items))
		return
	}

	outcomes, wallNS, ok := s.admitAndExecute(w, r, req.DeadlineMS, &p, cells)
	if !ok {
		return
	}
	resp := buildSweepResponse(req, &p, cells, outcomes, len(items), wallNS, true)
	s.cfg.Metrics.Counter("server.sweep.completed").Inc()
	writeJSON(w, http.StatusOK, resp)
}

// streamSweep is the NDJSON serving path: one "result" line per cell in
// completion order (CAS hits land first), then one "summary" line.
// Admission failure (429) is an ordinary HTTP error; past admission the
// 200 status commits immediately — clients must not wait for headers
// while cells execute — so later failures (deadline, cancellation) ride
// the summary line's "error" field instead of the status code.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, p *experiments.Params, cells []sweepCell, jobs int) {
	if !s.admit() {
		s.cfg.Metrics.Counter("server.rejected.backpressure").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, "admission queue full (%d requests in flight); retry later", cap(s.slots))
		return
	}
	defer s.releaseSlot()

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(c sweepCell, o cellOutcome) {
		res := resultForCell(c, o)
		if err := enc.Encode(StreamLine{Type: "result", Result: &res}); err != nil {
			return // client gone; the request context cancels the rest
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	outcomes, err := s.executeCells(ctx, p, cells, emit)
	wall := time.Since(start)
	s.cfg.Metrics.Histogram("server.request.wall_ns").Observe(uint64(wall))
	if err != nil {
		s.cfg.Metrics.Counter("server.rejected.deadline").Inc()
	}
	summary := buildSweepResponse(req, p, cells, outcomes, jobs, wall.Nanoseconds(), false)
	line := StreamLine{Type: "summary", Summary: &summary}
	if err != nil {
		line.Error = err.Error()
	}
	_ = enc.Encode(line) // client gone mid-stream: nothing left to tell it
	if flusher != nil {
		flusher.Flush()
	}
	s.cfg.Metrics.Counter("server.sweep.completed").Inc()
}

// buildSweepResponse assembles the sweep summary (and, when
// includeResults is set, the per-cell results) from the outcome map.
func buildSweepResponse(req SweepRequest, p *experiments.Params, cells []sweepCell, outcomes map[string]cellOutcome, jobs int, wallNS int64, includeResults bool) SweepResponse {
	resp := SweepResponse{
		Seed:         p.Seed,
		Instructions: p.Instructions,
		Warmup:       p.Warmup,
		Jobs:         jobs,
		Unique:       len(cells),
		WallNS:       wallNS,
	}
	results := make([]RunResult, 0, len(cells))
	runs := make(map[string]stats.Run, len(cells))
	for _, c := range cells {
		o := outcomes[c.key]
		if o.err == nil && o.run != nil {
			runs[c.key] = *o.run
		} else {
			resp.Errors++
		}
		if o.source == "cas" {
			resp.CASHits++
		}
		results = append(results, resultForCell(c, o))
	}
	resp.Fingerprint = fabric.Fingerprint(runs)
	if len(req.Generators) > 0 {
		resp.GeneratorComparison = buildGeneratorComparison(results)
	} else if len(req.IPrefetch) > 0 {
		resp.IPrefetchComparison = buildIPrefetchComparison(results)
	} else {
		resp.Comparison = buildComparison(results)
	}
	if includeResults {
		resp.Results = results
	}
	return resp
}

// handleCellPost is the fabric's worker-side endpoint: execute one cell
// (Run absent) or fill the local CAS with a completed result (Run
// present). The coordinator cross-checks the returned key against its
// own, so key computation happens here with the same experiments code
// path every node runs.
func (s *Server) handleCellPost(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.cfg.Metrics.Counter("server.cell.requests").Inc()
	if s.draining.Load() {
		s.cfg.Metrics.Counter("server.rejected.draining").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req fabric.CellRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Config == nil {
		s.writeError(w, http.StatusBadRequest, "config is required")
		return
	}
	if err := validateBenchmarks([]string{req.Bench}); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.Config.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	if req.Instructions > s.cfg.MaxInstructions {
		s.writeError(w, http.StatusBadRequest, "instructions %d exceeds the per-request cap %d", req.Instructions, s.cfg.MaxInstructions)
		return
	}

	p := s.paramsFor(req.Instructions, req.Warmup, req.Seed)
	key := p.CacheKey(req.Bench, *req.Config)

	if req.Run != nil { // fill mode
		if s.cfg.CAS == nil {
			s.writeError(w, http.StatusNotImplemented, "no content-addressed store configured (-cas-dir)")
			return
		}
		if err := s.cfg.CAS.Put(key, *req.Run); err != nil {
			s.writeError(w, http.StatusInternalServerError, "cas fill: %v", err)
			return
		}
		s.cfg.Metrics.Counter("server.cell.fills").Inc()
		writeJSON(w, http.StatusOK, fabric.CellResponse{Key: key, KeySHA: fabric.KeySHA(key)})
		return
	}

	// Hot cells answer straight from the store without occupying an
	// execution slot.
	if s.cfg.CAS != nil {
		if run, ok, _ := s.cfg.CAS.Get(key); ok {
			s.cfg.Metrics.Counter("server.cell.completed").Inc()
			writeJSON(w, http.StatusOK, fabric.CellResponse{Key: key, KeySHA: fabric.KeySHA(key), Run: &run, Source: "cas"})
			return
		}
	}
	cells := []sweepCell{{item: experiments.MatrixItem{Bench: req.Bench, Config: *req.Config}, key: key}}
	outcomes, _, ok := s.admitAndExecute(w, r, req.DeadlineMS, &p, cells)
	if !ok {
		return
	}
	o := outcomes[key]
	if o.err != nil {
		s.writeError(w, outcomeStatus(o.err), "simulation failed: %v", o.err)
		return
	}
	s.cfg.Metrics.Counter("server.cell.completed").Inc()
	writeJSON(w, http.StatusOK, fabric.CellResponse{Key: key, KeySHA: fabric.KeySHA(key), Run: o.run, WallNS: o.wallNS, Source: "sim"})
}

// handleCellGet is the sha-addressed CAS lookup: GET /v1/cell?sha=<64
// hex chars> answers the stored envelope or 404. Read-only, so it stays
// available while draining.
func (s *Server) handleCellGet(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.cfg.CAS == nil {
		s.writeError(w, http.StatusNotImplemented, "no content-addressed store configured (-cas-dir)")
		return
	}
	sha := r.URL.Query().Get("sha")
	if len(sha) != 64 {
		s.writeError(w, http.StatusBadRequest, "sha must be 64 hex chars, got %d", len(sha))
		return
	}
	key, run, ok, err := s.cfg.CAS.GetSHA(sha)
	if err != nil {
		// A corrupt or mismatched entry reads as a miss; say why.
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, "no entry for %s", sha)
		return
	}
	writeJSON(w, http.StatusOK, fabric.CellResponse{Key: key, KeySHA: sha, Run: &run, Source: "cas"})
}
