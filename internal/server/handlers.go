// HTTP handlers: decode, validate, admit, execute, respond. Every
// response body is JSON except /healthz and /metrics (Prometheus text).

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/stats"
)

// maxBodyBytes bounds request bodies; sweeps are small JSON documents.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header are unrecoverable; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.cfg.Metrics.Counter("server.errors." + strconv.Itoa(status)).Inc()
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON strictly decodes one JSON document from the request body.
// It returns the HTTP status to answer with on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return http.StatusRequestEntityTooLarge, errors.New("request body too large")
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return http.StatusBadRequest, errors.New("bad request body: trailing data after JSON document")
	}
	return 0, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok") // client gone is not a server error
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Metrics
	// Queue-occupancy gauges, refreshed at scrape time.
	m.Counter("server.queue.used").Set(uint64(len(s.slots)))
	m.Counter("server.queue.depth").Set(uint64(cap(s.slots)))
	m.Counter("server.exec.active").Set(uint64(len(s.exec)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := m.Snapshot().WritePrometheus(w); err != nil {
		// Mid-stream write error: the connection is gone.
		return
	}
}

// admitAndExecute is the shared serving path: take an admission slot (or
// 429), apply the deadline, run the matrix on the pool, and translate
// context expiry into 504. On failure it has already written the
// response and returns ok=false.
func (s *Server) admitAndExecute(w http.ResponseWriter, r *http.Request, deadlineMS int64, p *experiments.Params, items []experiments.MatrixItem) (results map[string]sched.Result, wallNS int64, ok bool) {
	if !s.admit() {
		s.cfg.Metrics.Counter("server.rejected.backpressure").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, "admission queue full (%d requests in flight); retry later", cap(s.slots))
		return nil, 0, false
	}
	defer s.releaseSlot()

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(deadlineMS))
	defer cancel()

	start := time.Now()
	results, err := s.execute(ctx, p, items)
	wall := time.Since(start)
	s.cfg.Metrics.Histogram("server.request.wall_ns").Observe(uint64(wall))
	if err != nil {
		s.cfg.Metrics.Counter("server.rejected.deadline").Inc()
		s.writeError(w, http.StatusGatewayTimeout, "request expired: %v", err)
		return nil, 0, false
	}
	return results, wall.Nanoseconds(), true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.cfg.Metrics.Counter("server.run.requests").Inc()
	if s.draining.Load() {
		s.cfg.Metrics.Counter("server.rejected.draining").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req RunRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Instructions > s.cfg.MaxInstructions {
		s.writeError(w, http.StatusBadRequest, "instructions %d exceeds the per-request cap %d", req.Instructions, s.cfg.MaxInstructions)
		return
	}
	items, err := expandRun(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	p := s.paramsFor(req.Instructions, req.Warmup, req.Seed)
	results, _, ok := s.admitAndExecute(w, r, req.DeadlineMS, &p, items)
	if !ok {
		return
	}

	item := items[0]
	res := results[p.CacheKey(item.Bench, item.Config)]
	if res.Err != nil {
		status := http.StatusInternalServerError
		if errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		s.writeError(w, status, "simulation failed: %v", res.Err)
		return
	}
	run, okType := res.Value.(stats.Run)
	if !okType {
		s.writeError(w, http.StatusInternalServerError, "unexpected result type %T", res.Value)
		return
	}
	s.cfg.Metrics.Counter("server.run.completed").Inc()
	writeJSON(w, http.StatusOK, RunResponse{
		Seed:         p.Seed,
		Instructions: p.Instructions,
		Warmup:       p.Warmup,
		Result:       resultFor(item, &run, res.Wall.Nanoseconds(), nil),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.cfg.Metrics.Counter("server.sweep.requests").Inc()
	if s.draining.Load() {
		s.cfg.Metrics.Counter("server.rejected.draining").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SweepRequest
	if status, err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Instructions > s.cfg.MaxInstructions {
		s.writeError(w, http.StatusBadRequest, "instructions %d exceeds the per-request cap %d", req.Instructions, s.cfg.MaxInstructions)
		return
	}

	p := s.paramsFor(req.Instructions, req.Warmup, req.Seed)
	if req.Standard {
		p.Benchmarks = req.Benchmarks
	}
	items, err := expandSweep(req, &p)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Deduplicate identical cells (first occurrence wins) and enforce
	// the sweep-size bound on the deduplicated matrix.
	type cell struct {
		item experiments.MatrixItem
		key  string
	}
	seen := make(map[string]bool, len(items))
	cells := make([]cell, 0, len(items))
	for _, it := range items {
		key := p.CacheKey(it.Bench, it.Config)
		if seen[key] {
			continue
		}
		seen[key] = true
		cells = append(cells, cell{item: it, key: key})
	}
	if len(cells) > s.cfg.MaxSweepJobs {
		s.writeError(w, http.StatusRequestEntityTooLarge, "sweep expands to %d jobs, cap is %d", len(cells), s.cfg.MaxSweepJobs)
		return
	}

	unique := make([]experiments.MatrixItem, len(cells))
	for i, c := range cells {
		unique[i] = c.item
	}
	results, wallNS, ok := s.admitAndExecute(w, r, req.DeadlineMS, &p, unique)
	if !ok {
		return
	}

	resp := SweepResponse{
		Seed:         p.Seed,
		Instructions: p.Instructions,
		Warmup:       p.Warmup,
		Jobs:         len(items),
		Unique:       len(cells),
		WallNS:       wallNS,
		Results:      make([]RunResult, 0, len(cells)),
	}
	for _, c := range cells {
		res := results[c.key]
		if res.Err != nil {
			resp.Errors++
			resp.Results = append(resp.Results, resultFor(c.item, nil, res.Wall.Nanoseconds(), res.Err))
			continue
		}
		run, okType := res.Value.(stats.Run)
		if !okType {
			resp.Errors++
			resp.Results = append(resp.Results, resultFor(c.item, nil, res.Wall.Nanoseconds(), fmt.Errorf("unexpected result type %T", res.Value)))
			continue
		}
		resp.Results = append(resp.Results, resultFor(c.item, &run, res.Wall.Nanoseconds(), nil))
	}
	if len(req.Generators) > 0 {
		resp.GeneratorComparison = buildGeneratorComparison(resp.Results)
	} else {
		resp.Comparison = buildComparison(resp.Results)
	}
	s.cfg.Metrics.Counter("server.sweep.completed").Inc()
	writeJSON(w, http.StatusOK, resp)
}
