package victim

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero entries should fail")
	}
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 4 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
}

func TestInsertProbeRescue(t *testing.T) {
	c, _ := New(4)
	c.Insert(100, true)
	if !c.Contains(100) {
		t.Fatal("victim should be resident")
	}
	e, hit := c.Probe(100)
	if !hit || e.LineAddr != 100 || !e.Dirty {
		t.Fatalf("probe = %+v, %v", e, hit)
	}
	if c.Contains(100) {
		t.Fatal("rescued line must leave the buffer")
	}
	if c.Hits != 1 {
		t.Fatalf("hits = %d", c.Hits)
	}
}

func TestProbeMiss(t *testing.T) {
	c, _ := New(4)
	if _, hit := c.Probe(5); hit {
		t.Fatal("empty buffer should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(2)
	c.Insert(1, false)
	c.Insert(2, true)
	c.Insert(1, false) // refresh 1: 2 becomes LRU
	evicted, had := c.Insert(3, false)
	if !had || evicted.LineAddr != 2 || !evicted.Dirty {
		t.Fatalf("evicted = %+v, had=%v", evicted, had)
	}
	if c.DirtyOut != 1 {
		t.Fatalf("dirty out = %d", c.DirtyOut)
	}
}

func TestRecaptureMergesDirty(t *testing.T) {
	c, _ := New(2)
	c.Insert(7, false)
	if _, had := c.Insert(7, true); had {
		t.Fatal("recapture must not evict")
	}
	e, _ := c.Probe(7)
	if !e.Dirty {
		t.Fatal("recapture should merge the dirty bit")
	}
}

func TestCapacityBound(t *testing.T) {
	c, _ := New(3)
	for la := uint64(0); la < 50; la++ {
		c.Insert(la, false)
		if c.ValidEntries() > 3 {
			t.Fatal("exceeded capacity")
		}
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c, _ := New(4)
	c.Insert(9, false)
	c.Probe(9)
	c.ResetStats()
	if c.Fills != 0 || c.Hits != 0 {
		t.Fatal("stats should reset")
	}
	c.Insert(11, false)
	if !c.Contains(11) {
		t.Fatal("contents must survive reset")
	}
}
