// Package victim implements a victim cache (Jouppi, ISCA 1990): a small
// fully-associative buffer that catches lines evicted from a
// direct-mapped L1 and gives them a second chance on the next miss.
//
// The paper's machine has a direct-mapped 8KB L1, so every prefetch fill
// evicts the *only* resident line of its set — pollution and conflict
// misses are entangled. A victim cache is the classic hardware answer to
// conflict misses, which makes it the natural "how much of the filter's
// benefit could cheaper hardware capture?" comparison, evaluated by the
// victim ablation row.
//
// Classification semantics: the pollution filter's good/bad verdict is
// rendered at L1 eviction, exactly as in the paper; the victim cache
// operates below that point. A line rescued from the victim cache
// re-enters the L1 as a demand line (PIB clear) — its prefetch, if any,
// was already classified.
package victim

import "fmt"

// Entry is one buffered victim line.
type Entry struct {
	Valid    bool
	LineAddr uint64
	Dirty    bool
	lru      uint64
}

// Cache is the fully-associative victim buffer with true-LRU replacement.
type Cache struct {
	entries []Entry
	tick    uint64

	Fills     uint64 // L1 evictions captured
	Hits      uint64 // misses rescued
	Evictions uint64 // victims of the victim cache
	DirtyOut  uint64 // dirty lines pushed down on eviction
}

// New builds a victim cache with the given capacity.
func New(entries int) (*Cache, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("victim: entries must be positive, got %d", entries)
	}
	return &Cache{entries: make([]Entry, entries)}, nil
}

// Capacity returns the number of entry frames.
func (c *Cache) Capacity() int { return len(c.entries) }

// ValidEntries counts resident lines.
func (c *Cache) ValidEntries() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].Valid {
			n++
		}
	}
	return n
}

// Insert captures an evicted L1 line. If the buffer is full the LRU
// entry is evicted and returned so the caller can write it back.
func (c *Cache) Insert(lineAddr uint64, dirty bool) (evicted Entry, hadEviction bool) {
	c.tick++
	slot := -1
	for i := range c.entries {
		if c.entries[i].Valid && c.entries[i].LineAddr == lineAddr {
			// Re-captured before rescue: refresh in place.
			c.entries[i].Dirty = c.entries[i].Dirty || dirty
			c.entries[i].lru = c.tick
			return Entry{}, false
		}
	}
	for i := range c.entries {
		if !c.entries[i].Valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		for i := range c.entries {
			if c.entries[i].lru < c.entries[slot].lru {
				slot = i
			}
		}
		evicted = c.entries[slot]
		hadEviction = true
		c.Evictions++
		if evicted.Dirty {
			c.DirtyOut++
		}
	}
	c.entries[slot] = Entry{Valid: true, LineAddr: lineAddr, Dirty: dirty, lru: c.tick}
	c.Fills++
	return evicted, hadEviction
}

// Probe checks for lineAddr on an L1 miss. A hit removes the entry (the
// line swaps back into the L1) and returns it.
func (c *Cache) Probe(lineAddr uint64) (Entry, bool) {
	for i := range c.entries {
		if c.entries[i].Valid && c.entries[i].LineAddr == lineAddr {
			e := c.entries[i]
			c.entries[i] = Entry{}
			c.Hits++
			return e, true
		}
	}
	return Entry{}, false
}

// Contains reports residency without removal.
func (c *Cache) Contains(lineAddr uint64) bool {
	for i := range c.entries {
		if c.entries[i].Valid && c.entries[i].LineAddr == lineAddr {
			return true
		}
	}
	return false
}

// ResetStats zeroes the counters (warmup boundary); contents stay.
func (c *Cache) ResetStats() {
	c.Fills, c.Hits, c.Evictions, c.DirtyOut = 0, 0, 0, 0
}
