package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/xrand"
)

func mkCache(t *testing.T, size, line, assoc int, repl config.ReplacementPolicy) *Cache {
	t.Helper()
	c, err := New(config.CacheConfig{
		SizeBytes:     size,
		LineBytes:     line,
		Assoc:         assoc,
		LatencyCycles: 1,
		Ports:         1,
		Replacement:   repl,
	}, xrand.New(7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mkCache(t, 8192, 32, 1, config.ReplaceLRU)
	if got := c.Config().Sets(); got != 256 {
		t.Fatalf("sets = %d", got)
	}
	if got := c.Capacity(); got != 256 {
		t.Fatalf("capacity = %d", got)
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	c := mkCache(t, 8192, 32, 1, config.ReplaceLRU)
	for _, addr := range []uint64{0, 31, 32, 8191, 1 << 30} {
		la := c.LineAddr(addr)
		base := c.ByteAddr(la)
		if base > addr || addr-base >= 32 {
			t.Fatalf("addr %#x -> line %#x -> base %#x", addr, la, base)
		}
	}
}

func TestInsertThenLookupHits(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	for la := uint64(0); la < 16; la++ {
		c.Insert(la)
		if _, ok := c.Lookup(la); !ok {
			t.Fatalf("line %d should hit after insert", la)
		}
	}
}

func TestLookupMissOnEmpty(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("empty cache should miss")
	}
	if _, ok := c.Peek(5); ok {
		t.Fatal("empty cache should miss on Peek")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mkCache(t, 1024, 32, 1, config.ReplaceLRU) // 32 sets
	c.Insert(0)
	c.Insert(32) // same set (0 % 32 == 32 % 32)
	if c.Contains(0) {
		t.Fatal("direct-mapped conflict should evict line 0")
	}
	if !c.Contains(32) {
		t.Fatal("line 32 should be resident")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := mkCache(t, 4*32, 32, 4, config.ReplaceLRU) // 1 set, 4 ways
	for la := uint64(0); la < 4; la++ {
		c.Insert(la)
	}
	// Touch 0 to make it MRU; 1 becomes LRU.
	c.Lookup(0)
	_, evicted, had := c.Insert(100)
	if !had || evicted.Tag != 1 {
		t.Fatalf("expected eviction of line 1, got %+v had=%v", evicted, had)
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := mkCache(t, 4*32, 32, 4, config.ReplaceFIFO)
	for la := uint64(0); la < 4; la++ {
		c.Insert(la)
	}
	c.Lookup(0) // touching must NOT matter for FIFO
	_, evicted, had := c.Insert(100)
	if !had || evicted.Tag != 0 {
		t.Fatalf("FIFO should evict the oldest insert (0), got %+v", evicted)
	}
}

func TestRandomReplacementStaysInSet(t *testing.T) {
	c := mkCache(t, 4*32, 32, 4, config.ReplaceRandom)
	for la := uint64(0); la < 4; la++ {
		c.Insert(la)
	}
	_, evicted, had := c.Insert(100)
	if !had || evicted.Tag > 3 {
		t.Fatalf("random policy must evict a resident line, got %+v", evicted)
	}
}

func TestRandomRequiresRNG(t *testing.T) {
	_, err := New(config.CacheConfig{
		SizeBytes: 1024, LineBytes: 32, Assoc: 2,
		LatencyCycles: 1, Ports: 1, Replacement: config.ReplaceRandom,
	}, nil)
	if err == nil {
		t.Fatal("random replacement without RNG should fail")
	}
}

func TestReinsertResidentNoEviction(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	c.Insert(7)
	line, _, had := c.Insert(7)
	if had {
		t.Fatal("reinserting a resident line must not evict")
	}
	if line.Tag != 7 || !line.Valid {
		t.Fatalf("reinsert returned %+v", line)
	}
	if c.ValidLines() != 1 {
		t.Fatalf("ValidLines = %d", c.ValidLines())
	}
}

func TestReinsertClearsMetadata(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	line, _, _ := c.Insert(7)
	line.PIB, line.RIB, line.Dirty = true, true, true
	fresh, _, _ := c.Insert(7)
	if fresh.PIB || fresh.RIB || fresh.Dirty {
		t.Fatal("reinsert must reset line metadata")
	}
}

func TestMetadataPersistsAcrossLookup(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	line, _, _ := c.Insert(3)
	line.PIB = true
	line.TriggerPC = 0xbeef
	got, ok := c.Lookup(3)
	if !ok || !got.PIB || got.TriggerPC != 0xbeef {
		t.Fatalf("metadata lost: %+v", got)
	}
}

func TestEvictionCarriesMetadata(t *testing.T) {
	c := mkCache(t, 32, 32, 1, config.ReplaceLRU) // one line total
	line, _, _ := c.Insert(0)
	line.PIB, line.RIB = true, true
	line.TriggerPC = 0x1234
	_, evicted, had := c.Insert(1)
	if !had || !evicted.PIB || !evicted.RIB || evicted.TriggerPC != 0x1234 {
		t.Fatalf("evicted metadata lost: %+v", evicted)
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := mkCache(t, 2*32, 32, 2, config.ReplaceLRU)
	c.Insert(0)
	c.Insert(2) // same single set? sets = 1, both lines in set 0
	c.Peek(0)   // must NOT refresh 0
	_, evicted, _ := c.Insert(4)
	if evicted.Tag != 0 {
		t.Fatalf("Peek refreshed LRU: evicted %d", evicted.Tag)
	}
}

func TestInvalidate(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	line, _, _ := c.Insert(9)
	line.Dirty = true
	old, ok := c.Invalidate(9)
	if !ok || !old.Dirty {
		t.Fatalf("Invalidate = %+v, %v", old, ok)
	}
	if c.Contains(9) {
		t.Fatal("line should be gone")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double invalidate should miss")
	}
}

func TestForEachAndValidLines(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	for la := uint64(0); la < 10; la++ {
		c.Insert(la)
	}
	if got := c.ValidLines(); got != 10 {
		t.Fatalf("ValidLines = %d", got)
	}
	sum := uint64(0)
	c.ForEach(func(l *Line) { sum += l.Tag })
	if sum != 45 {
		t.Fatalf("ForEach visited wrong lines: sum %d", sum)
	}
}

func TestFlush(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	for la := uint64(0); la < 5; la++ {
		line, _, _ := c.Insert(la)
		if la%2 == 0 {
			line.Dirty = true
		}
	}
	if wb := c.Flush(); wb != 3 {
		t.Fatalf("Flush writebacks = %d, want 3", wb)
	}
	if c.ValidLines() != 0 {
		t.Fatal("flush should empty the cache")
	}
}

func TestStatsCounting(t *testing.T) {
	c := mkCache(t, 32, 32, 1, config.ReplaceLRU)
	line, _, _ := c.Insert(0)
	line.Dirty = true
	c.Insert(1) // evicts dirty line 0
	if c.Stats.Evictions != 1 || c.Stats.Writebacks != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle stats miss rate should be 0")
	}
	s.DemandAccesses, s.DemandMisses = 10, 3
	if s.MissRate() != 0.3 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

// Property: the cache never holds more lines than its capacity, and an
// inserted line is always immediately findable.
func TestPropertyCapacityAndResidency(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mkCache(t, 512, 32, 2, config.ReplaceLRU) // 16 frames
		for _, a := range addrs {
			la := uint64(a)
			c.Insert(la)
			if !c.Contains(la) {
				return false
			}
			if c.ValidLines() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: lines map to a stable set — evicting only happens between
// lines of equal set index.
func TestPropertySetStability(t *testing.T) {
	f := func(a, b uint16) bool {
		c := mkCache(t, 512, 32, 1, config.ReplaceLRU) // 16 sets direct-mapped
		la, lb := uint64(a), uint64(b)
		c.Insert(la)
		_, evicted, had := c.Insert(lb)
		if la == lb {
			return !had
		}
		if had {
			// eviction only if same set
			return la%16 == lb%16 && evicted.Tag == la
		}
		return la%16 != lb%16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := config.CacheConfig{SizeBytes: 0, LineBytes: 32, Assoc: 1, LatencyCycles: 1, Ports: 1, Replacement: config.ReplaceLRU}
	if _, err := New(bad, nil); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestPeekVictimEmptySet(t *testing.T) {
	c := mkCache(t, 1024, 32, 2, config.ReplaceLRU)
	if _, has := c.PeekVictim(5); has {
		t.Fatal("empty set has no victim")
	}
	c.Insert(5)
	// One way still free.
	if _, has := c.PeekVictim(5 + 16); has {
		t.Fatal("set with a free way has no victim")
	}
}

func TestPeekVictimResidentLine(t *testing.T) {
	c := mkCache(t, 2*32, 32, 2, config.ReplaceLRU)
	c.Insert(0)
	c.Insert(1)
	// Re-inserting a resident line evicts nothing.
	if _, has := c.PeekVictim(0); has {
		t.Fatal("resident line insert has no victim")
	}
}

func TestPeekVictimMatchesInsertLRU(t *testing.T) {
	c := mkCache(t, 4*32, 32, 4, config.ReplaceLRU)
	for la := uint64(0); la < 4; la++ {
		c.Insert(la)
	}
	c.Lookup(0) // 1 becomes LRU
	v, has := c.PeekVictim(100)
	if !has || v.Tag != 1 {
		t.Fatalf("preview = %+v, %v", v, has)
	}
	_, evicted, _ := c.Insert(100)
	if evicted.Tag != 1 {
		t.Fatalf("insert evicted %d, preview said 1", evicted.Tag)
	}
}

func TestPeekVictimMatchesInsertFIFO(t *testing.T) {
	c := mkCache(t, 4*32, 32, 4, config.ReplaceFIFO)
	for la := uint64(0); la < 4; la++ {
		c.Insert(la)
	}
	c.Lookup(0)
	v, has := c.PeekVictim(100)
	if !has || v.Tag != 0 {
		t.Fatalf("FIFO preview = %+v, %v", v, has)
	}
}

func TestPeekVictimDoesNotMutate(t *testing.T) {
	c := mkCache(t, 2*32, 32, 2, config.ReplaceLRU)
	c.Insert(0)
	c.Insert(2)
	c.PeekVictim(4)
	c.PeekVictim(4)
	// LRU order unchanged: 0 is still the victim.
	_, evicted, _ := c.Insert(4)
	if evicted.Tag != 0 {
		t.Fatalf("preview mutated LRU: evicted %d", evicted.Tag)
	}
}
