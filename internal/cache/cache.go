// Package cache implements the set-associative cache model used for both
// the L1 data cache and the unified L2 of the simulated machine.
//
// Beyond the usual tag/valid/dirty state, every line carries the two
// control bits the paper adds for pollution filtering:
//
//   - PIB (Prefetch Indication Bit): set when the line was brought in by a
//     prefetch rather than a demand miss.
//   - RIB (Reference Indication Bit): set on the first demand reference to
//     a prefetched line; only meaningful while PIB is set.
//
// The line also records the PC of the instruction that triggered the
// prefetch so the PC-based filter can be trained on eviction, and the
// shadow-directory state (shadow line address + confirmation bit) the SDP
// prefetcher keeps per L2 line. In real hardware these fields live in
// different structures; folding them into one Line keeps the simulator
// simple without changing observable behaviour.
package cache

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

// Line is one cache block's bookkeeping state. Tag stores the full line
// address (byte address >> offset bits) rather than the truncated hardware
// tag; the set index is recoverable from it, and keeping the whole address
// makes eviction feedback and inclusion checks trivial.
type Line struct {
	Valid bool
	Dirty bool
	Tag   uint64 // full line address

	// Pollution-filter metadata (paper §4).
	PIB       bool   // brought in by a prefetch
	RIB       bool   // demand-referenced since fill (valid only if PIB)
	TriggerPC uint64 // PC that triggered the prefetch (0 for demand fills)
	SoftPF    bool   // prefetch was a software prefetch instruction
	PFSource  uint8  // generator id of the prefetch (core.Source; 0 for demand fills)

	// Shadow-directory prefetching metadata (used when this cache is the
	// L2; see internal/prefetch.SDP).
	ShadowValid bool
	Shadow      uint64 // next line missed after this line was last accessed
	Confirm     bool   // the shadow prefetch was used since last issued

	// DeadSig is the dead-block predictor's per-line signature: a hash of
	// the PC that last touched the line (see internal/deadblock). Zero
	// means "no signature recorded".
	DeadSig uint64

	lru  uint64 // larger = more recently used
	fifo uint64 // insertion order for FIFO replacement
}

// Stats counts cache-level events. Demand and prefetch traffic are tracked
// separately because Figure 2 reports their split.
type Stats struct {
	DemandAccesses uint64 // loads + stores reaching this cache
	DemandHits     uint64
	DemandMisses   uint64
	PrefetchFills  uint64 // lines installed by the prefetch path
	DemandFills    uint64 // lines installed by demand misses
	Evictions      uint64
	Writebacks     uint64 // dirty evictions
}

// MissRate returns demand misses / demand accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(s.DemandAccesses)
}

// invalidTag marks an empty frame in the dense tag array. It cannot
// shadow a real line address: line addresses are byte addresses shifted
// right by the offset bits, so the all-ones pattern is out of range.
const invalidTag = ^uint64(0)

// Cache is a set-associative cache with configurable replacement.
// It is a purely functional state model: timing (latency, ports, bus) is
// imposed by the hierarchy and CPU models on top.
//
// Storage is a single flat Line slice (set-major) instead of a
// slice-of-sets: one indirection fewer per access, and neighbouring ways
// share cache lines of the HOST machine. The tag match itself scans a
// dense parallel []uint64 — a Line is ~100 bytes, so probing Line.Tag
// directly would touch one host cache line per way, while the dense
// array packs 8 ways per host line. Lookup/tag-match is the simulator's
// hottest operation (every demand access, duplicate squash, and
// residency re-check lands here); see docs/PERFORMANCE.md.
type Cache struct {
	cfg      config.CacheConfig
	lines    []Line   // set-major: ways of set s at [s*assoc, (s+1)*assoc)
	tags     []uint64 // tags[i] mirrors lines[i].Tag when valid, else invalidTag
	assoc    int
	setMask  uint64
	offBits  uint
	tick     uint64
	rng      *xrand.Rand
	policy   config.ReplacementPolicy
	replRand func(ways int) int

	Stats Stats
}

// New builds a cache from a validated configuration. rng is used only by
// the random replacement policy and may be nil for LRU/FIFO.
func New(cfg config.CacheConfig, rng *xrand.Rand) (*Cache, error) {
	if err := cfg.Validate("cache"); err != nil {
		return nil, err
	}
	if cfg.Replacement == config.ReplaceRandom && rng == nil {
		return nil, fmt.Errorf("cache: random replacement requires a PRNG")
	}
	frames := cfg.Sets() * cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		lines:   make([]Line, frames),
		tags:    make([]uint64, frames),
		assoc:   cfg.Assoc,
		setMask: uint64(cfg.Sets() - 1),
		offBits: log2(uint64(cfg.LineBytes)),
		rng:     rng,
		policy:  cfg.Replacement,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if rng != nil {
		c.replRand = func(ways int) int { return rng.Intn(ways) }
	}
	return c, nil
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.offBits }

// ByteAddr converts a line address back to the base byte address.
func (c *Cache) ByteAddr(lineAddr uint64) uint64 { return lineAddr << c.offBits }

// setIndex maps a line address to its set.
func (c *Cache) setIndex(lineAddr uint64) uint64 { return lineAddr & c.setMask }

// find scans the dense tag array for lineAddr's frame and returns its
// flat index, or -1. The tag array can only hold lineAddr at a frame
// whose Line actually stores it (Insert/Invalidate/Flush keep the two in
// lockstep), so no re-confirmation against the Line is needed.
//
//pflint:hotpath
func (c *Cache) find(lineAddr uint64) int {
	base := int(c.setIndex(lineAddr)) * c.assoc
	tags := c.tags[base : base+c.assoc]
	for i, t := range tags {
		if t == lineAddr {
			return base + i
		}
	}
	return -1
}

// Lookup finds the line, updating recency state on a hit. The returned
// pointer stays valid until the line is evicted; callers mutate metadata
// (RIB, dirty, shadow state) through it.
//
//pflint:hotpath
func (c *Cache) Lookup(lineAddr uint64) (*Line, bool) {
	if i := c.find(lineAddr); i >= 0 {
		c.tick++
		c.lines[i].lru = c.tick
		return &c.lines[i], true
	}
	return nil, false
}

// Peek finds the line without disturbing replacement state. Used by
// prefetch duplicate squashing and by tests.
func (c *Cache) Peek(lineAddr uint64) (*Line, bool) {
	if i := c.find(lineAddr); i >= 0 {
		return &c.lines[i], true
	}
	return nil, false
}

// Contains reports whether the line is resident.
func (c *Cache) Contains(lineAddr uint64) bool {
	return c.find(lineAddr) >= 0
}

// victim selects the way to replace in set (a full set's window of the
// flat line array).
func (c *Cache) victim(set []Line) int {
	switch c.policy {
	case config.ReplaceRandom:
		return c.replRand(len(set))
	case config.ReplaceFIFO:
		v := 0
		for i := range set {
			if set[i].fifo < set[v].fifo {
				v = i
			}
		}
		return v
	default: // LRU
		v := 0
		for i := range set {
			if set[i].lru < set[v].lru {
				v = i
			}
		}
		return v
	}
}

// Insert installs lineAddr, evicting a victim if the set is full. The
// returned evicted Line (by value) lets the caller run eviction feedback
// (filter training, writeback accounting). The returned pointer addresses
// the freshly installed line so the caller can set its metadata.
//
// Inserting a line that is already resident resets that line in place and
// reports no eviction.
//
//pflint:hotpath
func (c *Cache) Insert(lineAddr uint64) (installed *Line, evicted Line, hadEviction bool) {
	base := int(c.setIndex(lineAddr)) * c.assoc
	set := c.lines[base : base+c.assoc]
	tags := c.tags[base : base+c.assoc]
	c.tick++

	slot := -1
	for i, t := range tags {
		if t == lineAddr {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i, t := range tags {
			if t == invalidTag {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		slot = c.victim(set)
		evicted = set[slot]
		hadEviction = true
		c.Stats.Evictions++
		if evicted.Dirty {
			c.Stats.Writebacks++
		}
	}
	set[slot] = Line{Valid: true, Tag: lineAddr, lru: c.tick, fifo: c.tick}
	tags[slot] = lineAddr
	return &set[slot], evicted, hadEviction
}

// PeekVictim returns the line that Insert(lineAddr) would evict, without
// mutating any state. It reports false when the set still has a free
// frame (no eviction would occur) or the line is already resident. For
// the random policy the preview uses the LRU victim — previews must be
// side-effect free, and the caller only needs a representative occupant.
func (c *Cache) PeekVictim(lineAddr uint64) (*Line, bool) {
	base := int(c.setIndex(lineAddr)) * c.assoc
	set := c.lines[base : base+c.assoc]
	for _, t := range c.tags[base : base+c.assoc] {
		if t == invalidTag || t == lineAddr {
			return nil, false
		}
	}
	v := 0
	switch c.policy {
	case config.ReplaceFIFO:
		for i := range set {
			if set[i].fifo < set[v].fifo {
				v = i
			}
		}
	default: // LRU, and LRU-preview for random
		for i := range set {
			if set[i].lru < set[v].lru {
				v = i
			}
		}
	}
	return &set[v], true
}

// Invalidate removes a line if resident, returning its final state so the
// caller can process writeback/feedback.
func (c *Cache) Invalidate(lineAddr uint64) (Line, bool) {
	if i := c.find(lineAddr); i >= 0 {
		old := c.lines[i]
		c.lines[i] = Line{}
		c.tags[i] = invalidTag
		return old, true
	}
	return Line{}, false
}

// ForEach visits every valid line. Used for end-of-run classification of
// still-resident prefetched lines and by invariants in tests. The visit
// order is deterministic (set-major, way-minor).
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// ValidLines counts resident lines.
func (c *Cache) ValidLines() int {
	n := 0
	c.ForEach(func(*Line) { n++ })
	return n
}

// Capacity returns the total number of line frames.
func (c *Cache) Capacity() int { return c.cfg.Sets() * c.cfg.Assoc }

// DumpMetrics exports the cache's statistics and current occupancy into
// the registry under prefix ("sim.l1" -> "sim.l1.demand_hits", ...).
// Occupancy distinguishes demand-fetched lines from prefetched ones
// (and, among those, referenced vs. not) so a snapshot shows how much of
// the cache the prefetcher currently owns. No-op on a nil registry.
func (c *Cache) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	set := func(name string, v uint64) { reg.Counter(prefix + "." + name).Set(v) }
	set("demand_accesses", c.Stats.DemandAccesses)
	set("demand_hits", c.Stats.DemandHits)
	set("demand_misses", c.Stats.DemandMisses)
	set("demand_fills", c.Stats.DemandFills)
	set("prefetch_fills", c.Stats.PrefetchFills)
	set("evictions", c.Stats.Evictions)
	set("writebacks", c.Stats.Writebacks)
	var valid, pib, pibRef uint64
	c.ForEach(func(l *Line) {
		valid++
		if l.PIB {
			pib++
			if l.RIB {
				pibRef++
			}
		}
	})
	set("lines_valid", valid)
	set("lines_capacity", uint64(c.Capacity()))
	set("lines_prefetched", pib)
	set("lines_prefetched_referenced", pibRef)
}

// Flush invalidates everything, returning the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() (writebacks int) {
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].Dirty {
			writebacks++
		}
		c.lines[i] = Line{}
		c.tags[i] = invalidTag
	}
	return writebacks
}
