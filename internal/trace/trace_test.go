package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Cycle: 1, Kind: KindDemandMiss})
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Rollups() != nil {
		t.Fatal("nil tracer must be inert")
	}
	if tr.Enabled(KindDemandMiss) {
		t.Fatal("nil tracer reports nothing enabled")
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: KindDemandMiss})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle %d, want %d (oldest-first)", i, ev.Cycle, 6+i)
		}
	}
}

func TestEnableOnly(t *testing.T) {
	tr := New(16).EnableOnly(KindPrefetchIssue, KindPrefetchEvict)
	tr.Emit(Event{Kind: KindBusGrant})
	tr.Emit(Event{Kind: KindPrefetchIssue})
	tr.Emit(Event{Kind: KindDemandMiss})
	tr.Emit(Event{Kind: KindPrefetchEvict, Good: true})
	if tr.Total() != 2 {
		t.Fatalf("total = %d, want 2 (mask must drop the rest)", tr.Total())
	}
	if tr.Enabled(KindBusGrant) || !tr.Enabled(KindPrefetchIssue) {
		t.Fatal("Enabled disagrees with mask")
	}
}

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for k := KindPrefetchIssue; k < kindMax; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d name %q empty or duplicated", k, s)
		}
		seen[s] = true
	}
	if Kind(0).Valid() || kindMax.Valid() {
		t.Fatal("sentinels must be invalid")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Cycle: 5, Kind: KindPrefetchIssue, LineAddr: 0x21c0, PC: 0x4007f0, Source: "nsp"})
	tr.Emit(Event{Cycle: 9, Kind: KindPrefetchEvict, LineAddr: 0x21c0, Good: true})
	tr.Emit(Event{Cycle: 11, Kind: KindBusGrant, Val: 32, Source: "prefetch"})
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	// Every line must be valid standalone JSON with the expected fields.
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["cycle"] != float64(5) || first["kind"] != "prefetch_issue" ||
		first["line"] != "0x21c0" || first["pc"] != "0x4007f0" || first["src"] != "nsp" {
		t.Fatalf("line 0 fields wrong: %v", first)
	}
	var evict map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &evict); err != nil {
		t.Fatal(err)
	}
	if evict["good"] != true {
		t.Fatalf("evict line missing good: %v", evict)
	}
	var bus map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &bus); err != nil {
		t.Fatal(err)
	}
	if bus["bytes"] != float64(32) || bus["src"] != "prefetch" {
		t.Fatalf("bus line fields wrong: %v", bus)
	}
}

func TestRollups(t *testing.T) {
	tr := New(4).WithInterval(100)
	// Interval 0: 2 issues, 1 ref, 1 demand miss, 1 good + 1 bad evict.
	tr.Emit(Event{Cycle: 10, Kind: KindPrefetchIssue})
	tr.Emit(Event{Cycle: 20, Kind: KindPrefetchIssue})
	tr.Emit(Event{Cycle: 30, Kind: KindPrefetchRef})
	tr.Emit(Event{Cycle: 40, Kind: KindDemandMiss})
	tr.Emit(Event{Cycle: 50, Kind: KindPrefetchEvict, Good: true})
	tr.Emit(Event{Cycle: 60, Kind: KindPrefetchEvict, Good: false})
	// Interval 2 (interval 1 stays empty): a merge and bus traffic.
	tr.Emit(Event{Cycle: 250, Kind: KindPrefetchMerge})
	tr.Emit(Event{Cycle: 260, Kind: KindBusGrant, Val: 32})
	// Out-of-order arrival back into interval 0 must still attribute there.
	tr.Emit(Event{Cycle: 70, Kind: KindDemandMiss})

	rs := tr.Rollups()
	if len(rs) != 3 {
		t.Fatalf("got %d rollups, want 3 (gapless)", len(rs))
	}
	r0 := rs[0]
	if r0.Issued() != 2 || r0.DemandMisses() != 2 || r0.GoodEvicts != 1 || r0.BadEvicts != 1 {
		t.Fatalf("interval 0: %+v", r0)
	}
	if got := r0.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
	// Coverage: useful=1 (ref), misses=2 -> 1/3.
	if got := r0.Coverage(); got < 0.333 || got > 0.334 {
		t.Fatalf("coverage = %v, want 1/3", got)
	}
	if got := r0.PollutionRate(); got != 0.5 {
		t.Fatalf("pollution = %v, want 0.5", got)
	}
	if rs[1].Counts != (Rollup{}.Counts) {
		t.Fatalf("interval 1 should be empty: %+v", rs[1])
	}
	r2 := rs[2]
	if r2.Useful() != 1 || r2.BusBytes != 32 {
		t.Fatalf("interval 2: %+v", r2)
	}
	if r2.StartCycle != 200 || r2.EndCycle != 300 {
		t.Fatalf("interval 2 bounds [%d,%d)", r2.StartCycle, r2.EndCycle)
	}
	// Ring capacity (4) must not limit rollup accounting (9 events).
	if tr.Total() != 9 || len(tr.Events()) != 4 {
		t.Fatalf("total=%d buffered=%d", tr.Total(), len(tr.Events()))
	}
}

func TestRollupClampsAbsurdCycles(t *testing.T) {
	tr := New(4).WithInterval(10)
	tr.Emit(Event{Cycle: 5, Kind: KindDemandMiss})
	// End-of-run drain can stamp far-future cycles; they must clamp into
	// the last open interval instead of allocating 2^50 rollups.
	tr.Emit(Event{Cycle: 1 << 60, Kind: KindPrefetchEvict, Good: false})
	rs := tr.Rollups()
	if len(rs) != 1 || rs[0].BadEvicts != 1 {
		t.Fatalf("rollups = %+v", rs)
	}
}
