// Package trace records cycle-stamped simulation events — the prefetch
// lifecycle (issue, filter drop, fill, first reference, eviction
// classification, late arrival, MSHR merge), demand misses, and bus
// grants — in a fixed-capacity ring buffer with optional JSONL export
// and per-interval rollups.
//
// The paper's accounting (§3 good/bad classification, Figure 2 traffic
// splits, §5.4 port contention) is all end-of-run aggregates; the tracer
// is the instrument that makes the path between "prefetch issued" and
// "final IPC" inspectable. Rollups compute the interval-level accuracy /
// coverage / pollution telemetry that adaptive-filtering work (Jamet et
// al.'s two-level neural filter, ChampSim-style per-interval tracking)
// trains on.
//
// A nil *Tracer is a valid "disabled" tracer: Emit on it is a no-op, so
// instrumented components hold a possibly-nil pointer and pay only a
// branch on the hot path. The tracer is deliberately single-simulation
// state (like the hierarchy it observes) and is not safe for concurrent
// Emit; parallel harnesses attach one tracer per simulation.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Kind enumerates traceable events.
type Kind uint8

// Event kinds. The prefetch lifecycle is: Issue → Fill → Ref* → Evict
// (good) or Issue → Fill → Evict (bad), with Filter terminating the
// lifecycle before Issue, Late replacing Fill when the demand beat the
// prefetch, and Merge marking a demand miss that claimed an in-flight
// prefetch.
const (
	KindPrefetchIssue  Kind = iota + 1 // prefetch left the queue toward L2/memory
	KindPrefetchFilter                 // candidate dropped by the pollution filter
	KindPrefetchFill                   // prefetch fill installed in the L1/buffer
	KindPrefetchRef                    // first demand reference to a prefetched line
	KindPrefetchEvict                  // prefetched line evicted and classified
	KindPrefetchLate                   // fill arrived after a demand fetch (dropped, bad)
	KindPrefetchMerge                  // demand miss merged with an in-flight prefetch
	KindDemandMiss                     // L1 demand miss
	KindBusGrant                       // bus granted one line transfer
	kindMax                            // sentinel: number of kinds + 1
)

var kindNames = [...]string{
	KindPrefetchIssue:  "prefetch_issue",
	KindPrefetchFilter: "prefetch_filter",
	KindPrefetchFill:   "prefetch_fill",
	KindPrefetchRef:    "prefetch_ref",
	KindPrefetchEvict:  "prefetch_evict",
	KindPrefetchLate:   "prefetch_late",
	KindPrefetchMerge:  "prefetch_merge",
	KindDemandMiss:     "demand_miss",
	KindBusGrant:       "bus_grant",
}

// String returns the JSONL name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined event kind.
func (k Kind) Valid() bool { return k >= KindPrefetchIssue && k < kindMax }

// Event is one cycle-stamped occurrence. Which fields are meaningful
// depends on Kind: prefetch events carry LineAddr/PC/Source, eviction
// events carry Good, bus grants carry Bytes in Val, demand misses carry
// LineAddr/PC.
type Event struct {
	Cycle    uint64
	Kind     Kind
	LineAddr uint64
	PC       uint64
	Source   string // prefetch generator ("nsp", "sdp", "stride", "sw", ...)
	Good     bool   // eviction classification (KindPrefetchEvict only)
	Val      uint64 // generic payload: transfer bytes for KindBusGrant
}

// Tracer buffers the most recent events and accumulates rollups.
type Tracer struct {
	ring  []Event
	total uint64 // events ever emitted (ring keeps the last len(ring))
	mask  uint64 // enabled-kind bitmask; all kinds by default

	interval uint64 // rollup width in cycles; 0 disables rollups
	rollups  []Rollup
}

// maxRollups bounds rollup memory against pathological cycle stamps.
const maxRollups = 1 << 20

// New builds a tracer retaining the last capacity events (minimum 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity), mask: ^uint64(0)}
}

// WithInterval enables per-interval rollups of the given cycle width and
// returns the tracer for chaining.
func (t *Tracer) WithInterval(cycles uint64) *Tracer {
	t.interval = cycles
	return t
}

// EnableOnly restricts buffering and rollups to the given kinds
// (useful to drop noisy bus grants from long traces).
func (t *Tracer) EnableOnly(kinds ...Kind) *Tracer {
	t.mask = 0
	for _, k := range kinds {
		t.mask |= 1 << uint(k)
	}
	return t
}

// Enabled reports whether events of kind k are recorded. False on a nil
// tracer, so callers building an expensive Event can skip construction.
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.mask&(1<<uint(k)) != 0
}

// Emit records one event. No-op on a nil tracer or a masked-out kind.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.mask&(1<<uint(ev.Kind)) == 0 {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = ev
	}
	t.total++
	if t.interval > 0 {
		t.rollInto(ev)
	}
}

// Total returns the number of events ever emitted (buffered or not).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many emitted events have been overwritten in the
// ring (Total - buffered).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the buffered events oldest-first. The slice is freshly
// allocated; mutating it does not disturb the tracer.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if t.total > uint64(cap(t.ring)) {
		// Ring has wrapped: oldest entry sits at the write cursor.
		cur := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[cur:]...)
		out = append(out, t.ring[:cur]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// WriteJSONL writes the buffered events oldest-first, one JSON object
// per line:
//
//	{"cycle":1042,"kind":"prefetch_issue","line":"0x21c0","pc":"0x4007f0","src":"nsp"}
//
// Only meaningful fields are emitted per kind; line/pc render as hex
// strings for readability alongside objdump/trace output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	sw := stickyWriter{w: bufio.NewWriter(w)}
	for _, ev := range t.Events() {
		sw.writeEventJSON(ev)
		if sw.err != nil {
			return sw.err
		}
	}
	return sw.w.Flush()
}

// stickyWriter records the first write error and turns every later
// write into a no-op, so the render code below stays branch-free while
// still surfacing the failure (the errWriter pattern).
type stickyWriter struct {
	w   *bufio.Writer
	err error
}

func (s *stickyWriter) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

// writeEventJSON renders one event. Hand-rolled (not encoding/json) to
// keep field order stable and avoid per-event allocation on export.
func (s *stickyWriter) writeEventJSON(ev Event) {
	s.printf(`{"cycle":%d,"kind":%q`, ev.Cycle, ev.Kind.String())
	switch ev.Kind {
	case KindBusGrant:
		s.printf(`,"bytes":%d`, ev.Val)
		if ev.Source != "" {
			s.printf(`,"src":%q`, ev.Source)
		}
	default:
		s.printf(`,"line":"0x%x"`, ev.LineAddr)
		if ev.PC != 0 {
			s.printf(`,"pc":"0x%x"`, ev.PC)
		}
		if ev.Source != "" {
			s.printf(`,"src":%q`, ev.Source)
		}
		if ev.Kind == KindPrefetchEvict {
			s.printf(`,"good":%t`, ev.Good)
		}
	}
	s.printf("}\n")
}
