package trace

// Rollup aggregates one cycle interval of the event stream into the
// interval-level prefetch telemetry (accuracy, coverage, pollution
// pressure) that per-phase analysis and adaptive policies consume.
//
// The definitions follow the usual prefetching literature, restated on
// the signals this simulator actually observes:
//
//   - Accuracy: good evictions / classified evictions in the interval —
//     the paper's §3 classification, sampled per interval instead of
//     end-of-run.
//   - Coverage: useful prefetches (first references + MSHR merges) over
//     useful prefetches + demand misses — the fraction of would-be
//     misses the prefetcher absorbed.
//   - PollutionRate: bad evictions per demand miss — how much dead
//     prefetched data the interval's misses had to push through the
//     cache. (True pollution attribution needs a shadow tag store; this
//     ratio is the observable proxy.)
type Rollup struct {
	Index      int    // interval number (StartCycle / interval width)
	StartCycle uint64 // inclusive
	EndCycle   uint64 // exclusive

	Counts [kindMax]uint64 // events by Kind

	GoodEvicts uint64 // KindPrefetchEvict with Good=true
	BadEvicts  uint64 // KindPrefetchEvict with Good=false
	BusBytes   uint64 // total bytes granted on the bus
}

// Issued returns the interval's prefetch issue count.
func (r Rollup) Issued() uint64 { return r.Counts[KindPrefetchIssue] }

// Filtered returns the interval's filter-drop count.
func (r Rollup) Filtered() uint64 { return r.Counts[KindPrefetchFilter] }

// DemandMisses returns the interval's L1 demand miss count.
func (r Rollup) DemandMisses() uint64 { return r.Counts[KindDemandMiss] }

// Useful returns first references plus merges: prefetches that covered
// demand latency in this interval.
func (r Rollup) Useful() uint64 {
	return r.Counts[KindPrefetchRef] + r.Counts[KindPrefetchMerge]
}

// Accuracy returns good/(good+bad) evictions, or 0 when none classified.
func (r Rollup) Accuracy() float64 {
	n := r.GoodEvicts + r.BadEvicts
	if n == 0 {
		return 0
	}
	return float64(r.GoodEvicts) / float64(n)
}

// Coverage returns useful/(useful+demand misses), or 0 when idle.
func (r Rollup) Coverage() float64 {
	u := r.Useful()
	n := u + r.DemandMisses()
	if n == 0 {
		return 0
	}
	return float64(u) / float64(n)
}

// PollutionRate returns bad evictions per demand miss (0 when no misses).
func (r Rollup) PollutionRate() float64 {
	if r.DemandMisses() == 0 {
		return 0
	}
	return float64(r.BadEvicts) / float64(r.DemandMisses())
}

// rollInto accumulates ev into its interval's rollup, growing the
// rollup list on demand. Events may arrive slightly out of cycle order
// (bus grants are stamped at grant time, which can lead the emitting
// access); indexing by cycle keeps attribution exact regardless.
func (t *Tracer) rollInto(ev Event) {
	idx := int(ev.Cycle / t.interval)
	if idx >= maxRollups { // absurd stamp (e.g. end-of-run drain): clamp
		if n := len(t.rollups); n > 0 {
			idx = t.rollups[n-1].Index
		} else {
			idx = 0
		}
	}
	pos := t.findRollup(idx)
	r := &t.rollups[pos]
	r.Counts[ev.Kind]++
	switch ev.Kind {
	case KindPrefetchEvict:
		if ev.Good {
			r.GoodEvicts++
		} else {
			r.BadEvicts++
		}
	case KindBusGrant:
		r.BusBytes += ev.Val
	}
}

// findRollup returns the position of the rollup for interval idx,
// appending empty intervals as needed so Rollups() is gapless.
func (t *Tracer) findRollup(idx int) int {
	for len(t.rollups) == 0 || t.rollups[len(t.rollups)-1].Index < idx {
		next := len(t.rollups)
		t.rollups = append(t.rollups, Rollup{
			Index:      next,
			StartCycle: uint64(next) * t.interval,
			EndCycle:   uint64(next+1) * t.interval,
		})
	}
	if idx < len(t.rollups) {
		return idx
	}
	return len(t.rollups) - 1
}

// Rollups returns the accumulated intervals, oldest first, gapless from
// interval 0 through the last interval that saw an event. Nil when
// rollups are disabled or no events arrived.
func (t *Tracer) Rollups() []Rollup {
	if t == nil || len(t.rollups) == 0 {
		return nil
	}
	out := make([]Rollup, len(t.rollups))
	copy(out, t.rollups)
	return out
}

// Interval returns the rollup width in cycles (0 when disabled).
func (t *Tracer) Interval() uint64 {
	if t == nil {
		return 0
	}
	return t.interval
}
