package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// generatorFingerprintSHA256 pins the exact simulated behaviour of each
// registered prefetch generator, exactly like seedFingerprintSHA256 pins
// the filter zoo: the (paper benchmarks × {none, pa}) comparison rows at
// Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}, hashed. Any
// change to a generator's tables, training, or emission order shows up
// here. Update a constant ONLY for an intentional behaviour change, and
// say so in the commit message.
var generatorFingerprintSHA256 = map[string]string{
	"nsp":    "c7eed98df470353f0a287786a84473515557f31b7c47def1beb2e416a4569591",
	"sdp":    "32db876b3c44ee4422193acb54ea6d305626fb58017851ed61c493439fc80dc0",
	"stride": "631c22a4afa10879fa722b10d00e22ea22b947a90edcd36926eb6fe849dc62fb",
	"corr":   "0c9ec21fe7ed329d15c6f1cb5d2adbb8c1a6a63f6a0181096047e849b26fd3e9",
	"berti":  "4521514cc63e3e988c75addec71f2c1b61ff5581aff97f53f7d474deb1e7e397",
	"ghb":    "81321adaa04757898eac7858a4e57a157fdcff0758fb6cb54744851bf677e91f",
}

func generatorHash(t *testing.T, gen string, workers int) string {
	t.Helper()
	p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
	rows, err := p.GeneratorComparison(context.Background(), []string{gen}, []string{string(config.FilterPA)}, workers)
	if err != nil {
		t.Fatalf("GeneratorComparison(%s, workers=%d): %v", gen, workers, err)
	}
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal rows: %v", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// TestGeneratorFingerprintPinned extends the determinism contract to the
// generator zoo: every registered generator's comparison rows hash to
// the committed value, identically at 1, 4, and 8 workers.
func TestGeneratorFingerprintPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("per-generator fingerprints are a few seconds; skipped with -short")
	}
	for gen, want := range generatorFingerprintSHA256 {
		gen, want := gen, want
		t.Run(gen, func(t *testing.T) {
			for _, workers := range []int{1, 4, 8} {
				if got := generatorHash(t, gen, workers); got != want {
					t.Errorf("gen=%s workers=%d fingerprint = %s, want %s", gen, workers, got, want)
				}
			}
		})
	}
}

// TestGeneratorAliasRunsIdentical pins the alias contract from the
// prefetch registry: a simulation configured through the "correlation"
// and "ghb-pc-delta" aliases must produce byte-for-byte the stats of the
// canonical "corr"/"ghb" kinds.
func TestGeneratorAliasRunsIdentical(t *testing.T) {
	run := func(kind config.PrefetchKind) stats.Run {
		t.Helper()
		p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
		r, err := p.run("mcf", config.Default().WithGenerator(kind))
		if err != nil {
			t.Fatalf("run(%s): %v", kind, err)
		}
		return r
	}
	for _, pair := range [][2]config.PrefetchKind{
		{config.PrefetchCorrelationAlias, config.PrefetchCorrelation},
		{config.PrefetchGHBAlias, config.PrefetchGHB},
	} {
		alias, canon := run(pair[0]), run(pair[1])
		aj, _ := json.Marshal(alias)
		cj, _ := json.Marshal(canon)
		if string(aj) != string(cj) {
			t.Errorf("alias %q diverged from %q:\nalias: %s\ncanon: %s", pair[0], pair[1], aj, cj)
		}
	}
}
