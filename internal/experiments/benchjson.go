// The bench-JSON harness: a machine-readable performance baseline for
// the simulator, so every PR has a wall-clock trajectory to compare
// against (BENCH_baseline.json at the repo root; regression policy in
// docs/PERFORMANCE.md).
//
// Unlike Prewarm, the harness deliberately BYPASSES the memo cache:
// every entry is a fresh, timed simulation, because the product is the
// timing, not the result. Determinism still holds for the simulation
// outputs recorded alongside the timings (instructions, cycles, IPC) —
// those must be identical run-to-run; the wall-clock fields are
// machine-dependent by nature.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/frontend"
	"repro/internal/prefetch"
	"repro/internal/sched"
	"repro/internal/sim"
)

// BenchEntry is one timed simulation of the bench matrix.
type BenchEntry struct {
	// Name is "<benchmark>/<generator>/<filter>" (e.g. "mcf/nsp/pa"),
	// or "<benchmark>/i:<iprefetcher>/<filter>" for an I-side cell.
	Name      string `json:"name"`
	Benchmark string `json:"benchmark"`
	Generator string `json:"generator"`
	// IPrefetcher labels an I-side cell (front end enabled, Generator
	// empty); empty on the D-side matrix.
	IPrefetcher string `json:"iprefetcher,omitempty"`
	Filter      string `json:"filter"`

	// WallNS is the simulation's wall time in nanoseconds (machine-
	// dependent; the regression gate compares like-for-like machines).
	WallNS int64 `json:"wall_ns"`
	// MIPS is simulated instructions per wall-clock second / 1e6 — the
	// simulator-throughput headline number.
	MIPS float64 `json:"mips"`

	// Deterministic simulation outputs; identical across runs and
	// machines for a given seed/budget. A change here is a semantics
	// change, not a performance change.
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
}

// BenchReport is the bench-JSON document.
type BenchReport struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`

	// Matrix parameters.
	InstructionsPerRun int64    `json:"instructions_per_run"`
	WarmupPerRun       int64    `json:"warmup_per_run"`
	Seed               uint64   `json:"seed"`
	Benchmarks         []string `json:"benchmarks"`
	Generators         []string `json:"generators"`
	IPrefetchers       []string `json:"iprefetchers,omitempty"`
	Filters            []string `json:"filters"`

	// TotalWallNS is the whole sweep's wall time under the scheduler;
	// SerialWallNS is the sum of per-entry wall times (what a serial
	// sweep would cost). SerialWallNS/TotalWallNS is the harness speedup.
	TotalWallNS  int64 `json:"total_wall_ns"`
	SerialWallNS int64 `json:"serial_wall_ns"`
	Steals       int64 `json:"steals"`

	Entries []BenchEntry `json:"entries"`
}

// Speedup returns the parallel harness speedup over a serial sweep.
func (r *BenchReport) Speedup() float64 {
	if r.TotalWallNS == 0 {
		return 0
	}
	return float64(r.SerialWallNS) / float64(r.TotalWallNS)
}

// benchFilters is the reduced bench matrix: the paper's headline filter
// configurations plus the learned backends from internal/filter, so the
// baseline tracks the wall-clock cost of every backend a sweep can
// select. Sweeps (table sizes, ports, buffers) live in Prewarm; the
// bench harness wants stable, comparable, fast coverage.
var benchFilters = []config.FilterKind{
	config.FilterNone, config.FilterPA, config.FilterPC,
	config.FilterPerceptron, config.FilterBloom, config.FilterTournament,
}

// BenchJSON runs the reduced (benchmark x generator x filter) matrix
// through the work-stealing scheduler with `jobs` workers, timing every
// simulation, and returns the report. Every cell is a single-generator
// machine (config.WithGenerator) so the baseline tracks the wall-clock
// cost of each generator backend under each filter. The context cancels
// queued simulations.
func (p *Params) BenchJSON(ctx context.Context, jobs int) (*BenchReport, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	generators := prefetch.Sweepable()
	iprefetchers := frontend.Sweepable()
	type unit struct {
		name   string
		bench  string
		gen    config.PrefetchKind
		ipref  config.IPrefetchKind
		filter config.FilterKind
	}
	var units []unit
	for _, b := range p.benchmarks() {
		for _, g := range generators {
			for _, f := range benchFilters {
				units = append(units, unit{
					name:   b + "/" + g + "/" + string(f),
					bench:  b,
					gen:    config.PrefetchKind(g),
					filter: f,
				})
			}
		}
		// The I-side matrix: front end enabled, each instruction
		// prefetcher alone, so the baseline tracks the wall-clock cost
		// of the fetch model and each I-side backend under each filter.
		for _, ip := range iprefetchers {
			for _, f := range benchFilters {
				units = append(units, unit{
					name:   b + "/i:" + ip + "/" + string(f),
					bench:  b,
					ipref:  config.IPrefetchKind(ip),
					filter: f,
				})
			}
		}
	}

	cost := p.costModel()
	sjobs := make([]sched.Job, 0, len(units))
	for _, u := range units {
		u := u
		sjobs = append(sjobs, sched.Job{
			Key:  u.name,
			Cost: cost(u.bench),
			Run: func(ctx context.Context) (any, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				cfg := config.Default()
				if u.ipref != "" {
					cfg = cfg.WithIPrefetch(u.ipref)
				} else {
					cfg = cfg.WithGenerator(u.gen)
				}
				cfg = cfg.WithFilter(u.filter)
				cfg.Seed = p.Seed
				start := time.Now()
				r, err := sim.Run(sim.Options{
					Benchmark:       u.bench,
					Config:          cfg,
					MaxInstructions: p.Instructions,
					Warmup:          p.Warmup,
				})
				if err != nil {
					return nil, fmt.Errorf("bench %s: %w", u.name, err)
				}
				wall := time.Since(start)
				e := BenchEntry{
					Name:         u.name,
					Benchmark:    u.bench,
					Generator:    string(u.gen),
					IPrefetcher:  string(u.ipref),
					Filter:       string(u.filter),
					WallNS:       wall.Nanoseconds(),
					Instructions: r.Instructions,
					Cycles:       r.Cycles,
					IPC:          r.IPC(),
				}
				if secs := wall.Seconds(); secs > 0 {
					e.MIPS = float64(r.Instructions) / secs / 1e6
				}
				return e, nil
			},
		})
	}

	sweepStart := time.Now()
	results, ctxErr := sched.Run(ctx, sjobs, sched.Options{Workers: jobs, Metrics: p.Metrics})
	total := time.Since(sweepStart)
	if ctxErr != nil {
		return nil, ctxErr
	}

	report := &BenchReport{
		Schema:             3, // 2: generator axis; 3: I-side (iprefetcher) cells
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Jobs:               jobs,
		InstructionsPerRun: p.Instructions,
		WarmupPerRun:       p.Warmup,
		Seed:               p.Seed,
		Benchmarks:         p.benchmarks(),
		Generators:         generators,
		IPrefetchers:       iprefetchers,
		TotalWallNS:        total.Nanoseconds(),
	}
	for _, f := range benchFilters {
		report.Filters = append(report.Filters, string(f))
	}
	for _, u := range units {
		r := results[u.name]
		if r.Err != nil {
			return nil, r.Err
		}
		e, ok := r.Value.(BenchEntry)
		if !ok {
			return nil, fmt.Errorf("bench %s: unexpected result type %T", u.name, r.Value)
		}
		report.SerialWallNS += e.WallNS
		report.Entries = append(report.Entries, e)
	}
	sort.Slice(report.Entries, func(i, j int) bool { return report.Entries[i].Name < report.Entries[j].Name })
	if p.Metrics != nil {
		report.Steals = int64(p.Metrics.Snapshot().Counters["sched.steals"])
	}
	return report, nil
}

// WriteJSON emits the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
