// Figures 15-16: the §5.5 comparison of the PA/PC filters with and
// without a dedicated 16-entry fully-associative prefetch buffer.
package experiments

import (
	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "fig15", Title: "Bad/good ratio with a dedicated prefetch buffer (Figure 15)", Run: runFig15})
	register(Experiment{ID: "fig16", Title: "IPC with a dedicated prefetch buffer (Figure 16)", Run: runFig16})
}

// bufferSchemes enumerates the four §5.5 machines.
var bufferSchemes = []struct {
	label  string
	kind   config.FilterKind
	buffer bool
}{
	{"PA", config.FilterPA, false},
	{"PA+buf", config.FilterPA, true},
	{"PC", config.FilterPC, false},
	{"PC+buf", config.FilterPC, true},
}

func runBufferSweep(p *Params, metric func(stats.Run) float64, title, note string) (*Table, error) {
	cols := []string{"benchmark"}
	for _, s := range bufferSchemes {
		cols = append(cols, s.label)
	}
	t := report.New(title, cols...)
	means := make([][]float64, len(bufferSchemes))
	for _, name := range p.benchmarks() {
		row := []string{name}
		for i, s := range bufferSchemes {
			cfg := config.Default().WithFilter(s.kind).WithPrefetchBuffer(s.buffer)
			r, err := p.run(name, cfg)
			if err != nil {
				return nil, err
			}
			v := metric(r)
			row = append(row, report.F2(v))
			means[i] = append(means[i], v)
		}
		t.AddRow(row...)
	}
	meanRow := []string{"mean"}
	for i := range bufferSchemes {
		meanRow = append(meanRow, report.F2(stats.Mean(means[i])))
	}
	t.AddRow(meanRow...)
	t.AddNote("%s", note)
	return t, nil
}

func runFig15(p *Params) (*Table, error) {
	return runBufferSweep(p,
		func(r stats.Run) float64 { return r.Prefetches.BadGoodRatio() },
		"Figure 15 — bad/good ratio: filters with/without a 16-entry prefetch buffer",
		"paper: adding a dedicated prefetch buffer degrades the filters' effectiveness in most programs")
}

func runFig16(p *Params) (*Table, error) {
	return runBufferSweep(p,
		func(r stats.Run) float64 { return r.IPC() },
		"Figure 16 — IPC: filters with/without a 16-entry prefetch buffer",
		"paper: the buffer costs ~9%% IPC under PA and ~10%% under PC; gcc is nearly unaffected")
}
