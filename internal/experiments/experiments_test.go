package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/report"
)

// configDefaultForTest returns the default machine for cache-concurrency
// tests.
func configDefaultForTest() config.Config { return config.Default() }

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2",
		"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"baselines", "extras", "ablation", "taxonomy", "energy", "adaptivity", "variance", "multiprog", "aggression", "memlat", "filters", "generators", "traces", "iprefetch"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig6")
	if !ok || e.ID != "fig6" || e.Run == nil {
		t.Fatalf("ByID(fig6) = %+v, %v", e, ok)
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown ID should miss")
	}
}

func TestTable1Instant(t *testing.T) {
	p := DefaultParams()
	e, _ := ByID("table1")
	tab, err := e.Run(&p)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"8KB", "512KB", "150 core cycles", "4096 entries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

// smallParams shrink the runs so experiment plumbing is testable quickly.
func smallParams() Params {
	return Params{
		Instructions: 40_000,
		Warmup:       10_000,
		Seed:         1,
		Benchmarks:   []string{"fpppp", "mcf"},
	}
}

func TestFig1Small(t *testing.T) {
	p := smallParams()
	e, _ := ByID("fig1")
	tab, err := e.Run(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "fpppp") || !strings.Contains(out, "mcf") {
		t.Fatalf("benchmarks missing:\n%s", out)
	}
}

func TestFig6Small(t *testing.T) {
	p := smallParams()
	e, _ := ByID("fig6")
	tab, err := e.Run(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestCacheReusesRuns(t *testing.T) {
	p := smallParams()
	e1, _ := ByID("fig4")
	if _, err := e1.Run(&p); err != nil {
		t.Fatal(err)
	}
	cached := len(p.cache)
	// fig5 and fig6 use the same (benchmark, config) runs.
	e2, _ := ByID("fig5")
	if _, err := e2.Run(&p); err != nil {
		t.Fatal(err)
	}
	if len(p.cache) != cached {
		t.Fatalf("fig5 should be fully cache-served: %d -> %d entries", cached, len(p.cache))
	}
}

func TestUnknownBenchmarkSurfaces(t *testing.T) {
	p := smallParams()
	p.Benchmarks = []string{"nope"}
	e, _ := ByID("table2")
	if _, err := e.Run(&p); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Instructions != 2_000_000 || p.Warmup != 1_000_000 || p.Seed != 1 {
		t.Fatalf("defaults = %+v", p)
	}
	if len(p.benchmarks()) != 10 {
		t.Fatalf("default benchmarks = %v", p.benchmarks())
	}
}

func TestOrderKey(t *testing.T) {
	if !(orderKey("table1") < orderKey("table2") &&
		orderKey("table2") < orderKey("fig1") &&
		orderKey("fig9") < orderKey("fig10") &&
		orderKey("fig16") < orderKey("extras") &&
		orderKey("extras") < orderKey("ablation") &&
		orderKey("ablation") < orderKey("taxonomy") &&
		orderKey("taxonomy") < orderKey("energy")) {
		t.Fatal("ordering broken")
	}
}

func TestPrewarmFillsCache(t *testing.T) {
	p := Params{Instructions: 30_000, Warmup: 10_000, Seed: 1, Benchmarks: []string{"fpppp"}}
	if err := p.Prewarm(4); err != nil {
		t.Fatal(err)
	}
	warmed := p.CachedRuns()
	if warmed < 10 {
		t.Fatalf("prewarm cached only %d runs", warmed)
	}
	// The figure experiments must be fully cache-served afterwards.
	for _, id := range []string{"table2", "fig1", "fig4", "fig10", "fig13", "fig15"} {
		e, _ := ByID(id)
		if _, err := e.Run(&p); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if p.CachedRuns() != warmed {
		t.Fatalf("figures ran %d uncached simulations after prewarm", p.CachedRuns()-warmed)
	}
}

func TestPrewarmSurfacesErrors(t *testing.T) {
	p := Params{Instructions: 1000, Warmup: 0, Seed: 1, Benchmarks: []string{"not-a-benchmark"}}
	if err := p.Prewarm(2); err == nil {
		t.Fatal("unknown benchmark must surface from prewarm")
	}
}

func TestConcurrentRunsConsistent(t *testing.T) {
	// Hammer the memo cache from many goroutines; deterministic simulation
	// means every stored result for a key must be identical.
	p := Params{Instructions: 20_000, Warmup: 5_000, Seed: 1}
	cfg := configDefaultForTest()
	var wg sync.WaitGroup
	results := make([]uint64, 8)
	for i := range results {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			r, err := p.run("fpppp", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[slot] = r.Cycles
		}(i)
	}
	wg.Wait()
	for _, c := range results[1:] {
		if c != results[0] {
			t.Fatalf("concurrent runs disagreed: %v", results)
		}
	}
}

// TestEveryExperimentRunsSmall executes the entire registry at a reduced
// budget on two benchmarks, verifying each artifact generator end to end
// (the full-scale numbers live in results_full.txt).
func TestEveryExperimentRunsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is not short")
	}
	p := Params{
		Instructions: 30_000,
		Warmup:       10_000,
		Seed:         1,
		Benchmarks:   []string{"wave5", "mcf"},
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(&p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				// The traces experiment is note-only until a corpus is
				// registered; everything else must produce rows.
				if e.ID == "traces" && len(tab.Notes) > 0 {
					return
				}
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tab.Title == "" {
				t.Fatalf("%s has no title", e.ID)
			}
			// Text and CSV rendering must both succeed.
			if tab.String() == "" {
				t.Fatalf("%s rendered empty", e.ID)
			}
			var b strings.Builder
			if err := tab.WriteCSV(&b); err != nil {
				t.Fatalf("%s CSV: %v", e.ID, err)
			}
		})
	}
}

// TestCacheKeyIncludesSeedAndBudget pins the memo-cache key's contract:
// two Params that differ only in seed, instruction budget, or warmup
// must never share a cache entry, and the key must not depend on a
// caller having remembered to stamp Params.Seed into the Config (the
// key stamps it itself). Regression test for a bug where a Config
// carrying a stale Seed could alias runs across seeds.
func TestCacheKeyIncludesSeedAndBudget(t *testing.T) {
	base := Params{Instructions: 1000, Warmup: 100, Seed: 1}
	cfg := config.Default()

	variants := map[string]Params{
		"seed":         {Instructions: 1000, Warmup: 100, Seed: 2},
		"instructions": {Instructions: 2000, Warmup: 100, Seed: 1},
		"warmup":       {Instructions: 1000, Warmup: 200, Seed: 1},
	}
	baseKey := base.cacheKey("mcf", cfg)
	for name, p := range variants {
		if got := p.cacheKey("mcf", cfg); got == baseKey {
			t.Errorf("cache key ignores %s: %q", name, got)
		}
	}

	// The key must override any seed already present in the Config with
	// the Params seed, so a stale cfg.Seed cannot alias across seeds.
	stale := cfg
	stale.Seed = 999
	if base.cacheKey("mcf", stale) != base.cacheKey("mcf", cfg) {
		t.Error("cache key depends on caller-stamped cfg.Seed instead of Params.Seed")
	}

	// Distinct configs (e.g. different filters) must yield distinct keys.
	if base.cacheKey("mcf", cfg.WithFilter(config.FilterPC)) == baseKey {
		t.Error("cache key ignores the filter configuration")
	}
	// And distinct benchmarks must, too.
	if base.cacheKey("gzip", cfg) == baseKey {
		t.Error("cache key ignores the benchmark name")
	}
}

func TestFiltersExperimentSmall(t *testing.T) {
	p := smallParams()
	e, ok := ByID("filters")
	if !ok {
		t.Fatal("filters experiment not registered")
	}
	tab, err := e.Run(&p)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"perceptron", "bloom", "tournament", "pa", "pc", "none", "mcf", "fpppp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("filters table missing %q:\n%s", want, out)
		}
	}
}

func TestFilterComparisonRejectsUnknownKind(t *testing.T) {
	p := smallParams()
	if _, err := p.FilterComparison(context.Background(), []string{"bogus"}, 1); err == nil {
		t.Fatal("unknown kind must error")
	} else if !strings.Contains(err.Error(), "registered") {
		t.Fatalf("error should list registered kinds, got: %v", err)
	}
	if _, err := p.FilterComparison(context.Background(), []string{"static"}, 1); err == nil {
		t.Fatal("static kind must be refused in sweeps")
	}
}

func TestFilterComparisonBaselineDelta(t *testing.T) {
	p := smallParams()
	p.Benchmarks = []string{"mcf"}
	rows, err := p.FilterComparison(context.Background(), []string{"pa", "table-pa"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// none + pa (table-pa dedups onto pa) = 2 rows.
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (alias must dedup): %+v", len(rows), rows)
	}
	var none, pa *report.FilterComparisonRow
	for i := range rows {
		switch rows[i].Filter {
		case "none":
			none = &rows[i]
		case "pa":
			pa = &rows[i]
		}
	}
	if none == nil || pa == nil {
		t.Fatalf("missing rows: %+v", rows)
	}
	if none.IPCDelta != 0 {
		t.Errorf("baseline IPC delta = %g, want 0", none.IPCDelta)
	}
	if pa.IPC-none.IPC != pa.IPCDelta {
		t.Errorf("pa IPC delta inconsistent: %g vs %g-%g", pa.IPCDelta, pa.IPC, none.IPC)
	}
	if none.Filtered != 0 {
		t.Errorf("unfiltered run reports %d filtered prefetches", none.Filtered)
	}
	if pa.Accuracy < 0 || pa.Accuracy > 1 || pa.Coverage < 0 || pa.Coverage > 1 {
		t.Errorf("derived metrics out of range: %+v", *pa)
	}
}
