// The filters experiment: the pollution-filter zoo head to head. Every
// registered backend (internal/filter) runs over the benchmark suite on
// the default machine, against the unfiltered baseline, and the result is
// the per-(benchmark, backend) comparison table — classification counts,
// accuracy, coverage, and IPC delta. This is the evaluation pipeline the
// pluggable registry exists for: same machine, same training signal, only
// the prediction structure differs.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "filters",
		Title: "Pollution-filter backends head to head (internal/filter zoo)",
		Run: func(p *Params) (*Table, error) {
			rows, err := p.FilterComparison(context.Background(), filter.Sweepable(), 0)
			if err != nil {
				return nil, err
			}
			return report.FilterComparison("Filter backends head to head (default machine)", rows), nil
		},
	})
}

// filterConfig maps a backend kind onto the simulation config that runs
// it on the default machine.
func filterConfig(kind string) config.Config {
	return config.Default().WithFilter(config.FilterKind(kind))
}

// comparisonRow derives the head-to-head metrics for one finished run.
// Coverage counts the demand misses prefetching hid relative to the
// misses that remain: good / (good + L1 demand misses).
func comparisonRow(bench, kind string, r, base stats.Run) report.FilterComparisonRow {
	cov := 0.0
	if denom := r.Prefetches.Good + r.L1DemandMisses; denom > 0 {
		cov = float64(r.Prefetches.Good) / float64(denom)
	}
	return report.FilterComparisonRow{
		Benchmark: bench,
		Filter:    kind,
		Good:      r.Prefetches.Good,
		Bad:       r.Prefetches.Bad,
		Filtered:  r.Prefetches.Filtered,
		Accuracy:  r.Prefetches.GoodFraction(),
		Coverage:  cov,
		IPC:       r.IPC(),
		IPCDelta:  r.IPC() - base.IPC(),
	}
}

// FilterComparison runs every (benchmark × backend) cell — plus the
// unfiltered baseline each IPC delta needs — on the work-stealing
// scheduler and returns the sorted comparison rows. Kinds must name
// registered, sweepable backends; unknown kinds report the registry's
// alternatives. Workers <= 0 selects GOMAXPROCS.
func (p *Params) FilterComparison(ctx context.Context, kinds []string, workers int) ([]report.FilterComparisonRow, error) {
	if len(kinds) == 0 {
		kinds = filter.Sweepable()
	}
	for _, k := range kinds {
		kind := config.FilterKind(k)
		if kind.Canonical() == config.FilterStatic {
			return nil, fmt.Errorf("experiments: the static filter needs a profiling run and cannot join the sweep")
		}
		if !filter.Registered(kind) {
			return nil, fmt.Errorf("experiments: unknown filter kind %q (registered: %v)", k, filter.Kinds())
		}
	}
	// The baseline is a cell like any other; dedup in case the caller
	// asked for it explicitly.
	sweep := make([]string, 0, len(kinds)+1)
	seen := map[string]bool{}
	for _, k := range append([]string{string(config.FilterNone)}, kinds...) {
		canon := string(config.FilterKind(k).Canonical())
		if !seen[canon] {
			seen[canon] = true
			sweep = append(sweep, canon)
		}
	}

	cost := p.costModel()
	var jobs []sched.Job
	for _, bench := range p.benchmarks() {
		bench := bench
		for _, kind := range sweep {
			kind := kind
			jobs = append(jobs, sched.Job{
				Key:  bench + "|" + kind,
				Cost: cost(bench),
				Run: func(ctx context.Context) (any, error) {
					return p.runCtx(ctx, bench, filterConfig(kind))
				},
			})
		}
	}
	results, ctxErr := sched.Run(ctx, jobs, sched.Options{Workers: workers, Metrics: p.Metrics})
	if ctxErr != nil {
		return nil, ctxErr
	}
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, dedupJoin(errs)
	}

	var rows []report.FilterComparisonRow
	for _, bench := range p.benchmarks() {
		base := results[bench+"|"+string(config.FilterNone)].Value.(stats.Run)
		for _, kind := range sweep {
			r := results[bench+"|"+kind].Value.(stats.Run)
			rows = append(rows, comparisonRow(bench, kind, r, base))
		}
	}
	report.SortFilterComparison(rows)
	return rows, nil
}
