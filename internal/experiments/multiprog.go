// The multiprogramming experiment: filter behaviour under context
// switches.
//
// The paper evaluates single programs; real deep-submicron processors
// time-share. Context switches are the working-set changes §2 worries
// about, arriving every scheduling quantum: the cache refills with the
// incoming program's data and the history table's verdicts go stale. This
// experiment interleaves two benchmarks with very different prefetch
// behaviour (wave5: streaming, prefetch-friendly; mcf: pointer-chasing,
// prefetch-hostile) on a coarse quantum and compares the filters against
// no filtering on the combined trace.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "multiprog",
		Title: "Multiprogramming: filters under context switches (wave5 + mcf interleaved)",
		Run:   runMultiprog,
	})
}

// multiprogQuantum is the context-switch interval in records (~a few
// hundred microseconds of simulated time at these IPCs).
const multiprogQuantum = 50_000

func runMultiprog(p *Params) (*Table, error) {
	t := report.New("Multiprogrammed trace (wave5 ⇄ mcf, 50K-record quantum)",
		"scheme", "IPC", "vs none", "good", "bad", "filtered")

	const pair = "wave5+mcf"
	mkSource := func() (isa.Source, error) {
		a, ok := workload.ByName("wave5")
		if !ok {
			return nil, fmt.Errorf("experiments: wave5 missing")
		}
		b, ok := workload.ByName("mcf")
		if !ok {
			return nil, fmt.Errorf("experiments: mcf missing")
		}
		return isa.NewInterleaveSource(multiprogQuantum, a.New(p.Seed), b.New(p.Seed+1))
	}

	// Enough instructions for several quanta of each program.
	instr := p.Instructions
	if instr < 1_000_000 {
		instr = 1_000_000
	}
	runOne := func(kind config.FilterKind, filter core.Filter) (stats.Run, error) {
		src, err := mkSource()
		if err != nil {
			return stats.Run{}, err
		}
		cfg := config.Default().WithFilter(kind)
		cfg.Seed = p.Seed
		return sim.Run(sim.Options{
			Benchmark:       pair,
			Source:          src,
			Config:          cfg,
			Filter:          filter,
			MaxInstructions: instr,
			Warmup:          p.Warmup,
		})
	}

	none, err := runOne(config.FilterNone, nil)
	if err != nil {
		return nil, err
	}
	pa, err := runOne(config.FilterPA, nil)
	if err != nil {
		return nil, err
	}
	pc, err := runOne(config.FilterPC, nil)
	if err != nil {
		return nil, err
	}

	add := func(label string, r stats.Run) {
		t.AddRow(label, report.F2(r.IPC()),
			report.Pct(stats.Speedup(none.IPC(), r.IPC())),
			report.I(r.Prefetches.Good), report.I(r.Prefetches.Bad),
			report.I(r.Prefetches.Filtered))
	}
	add("none", none)
	add("PA", pa)
	add("PC", pc)

	t.AddNote("the interleave alternates a prefetch-friendly and a prefetch-hostile program through one shared" +
		" cache hierarchy and one shared history table; the dynamic filter must serve both at once")
	return t, nil
}
