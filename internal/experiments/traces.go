// The traces experiment: real-trace replay through the filter zoo. A
// registered trace corpus (internal/tracefile manifest) supplies the
// benchmarks; every trace runs against the sweepable filter backends on
// the default machine exactly like the synthetic models do, so a trace
// is a first-class row in the same comparison tables. The corpus is
// registered out-of-band (pfexperiments -traces, pfserved
// -trace-manifest, or tracefile.RegisterCorpus in code).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/report"
	"repro/internal/tracefile"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "traces",
		Title: "Trace corpus crossed with filter backends (real-trace replay)",
		Run: func(p *Params) (*Table, error) {
			if len(tracefile.Registered()) == 0 {
				t := report.New("Trace corpus crossed with filter backends")
				t.AddNote("no trace corpus registered; load one with pfexperiments -traces <manifest> (see docs/TRACES.md)")
				return t, nil
			}
			rows, err := p.TraceComparison(context.Background(), nil, nil, 0)
			if err != nil {
				return nil, err
			}
			return report.FilterComparison("Trace corpus crossed with filters (default machine)", rows), nil
		},
	})
}

// TraceComparison runs every (trace benchmark × filter backend) cell —
// plus the unfiltered baseline each IPC delta needs — and returns the
// comparison rows, exactly like FilterComparison but over a registered
// trace corpus instead of the synthetic models. Empty traces selects
// every registered trace; empty kinds selects every sweepable backend.
// Trace names must be registered (tracefile.RegisterCorpus); unknown
// names report the registered alternatives.
func (p *Params) TraceComparison(ctx context.Context, traces, kinds []string, workers int) ([]report.FilterComparisonRow, error) {
	if len(traces) == 0 {
		traces = tracefile.Registered()
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("experiments: no trace corpus registered (load a manifest with tracefile.RegisterCorpus)")
	}
	for _, tr := range traces {
		if _, ok := workload.ByName(tr); !ok || !tracefile.IsTraceBench(tr) {
			return nil, fmt.Errorf("experiments: unknown trace benchmark %q (registered traces: %v)", tr, tracefile.Registered())
		}
	}
	// Params is safely copyable (the cache lock is package-level); the
	// copy narrows the benchmark set to the corpus without touching the
	// caller's. Results still share the process-wide run memo.
	q := *p
	q.Benchmarks = traces
	return q.FilterComparison(ctx, kinds, workers)
}

// TraceCorpusTable renders a registered manifest as a report table — the
// corpus summary pfexperiments prints above the comparison.
func TraceCorpusTable(m tracefile.Manifest) *Table {
	t := report.New("Trace corpus", "benchmark", "file", "records", "format", "sha256")
	for _, e := range m.Traces {
		t.AddRow(tracefile.BenchPrefix+e.Name, e.File, report.I(e.Records), fmt.Sprintf("v%d", e.FormatVersion), e.SHA256)
	}
	t.AddNote("sha256 is the chunk-size-independent PFTC stream fingerprint (docs/TRACES.md)")
	return t
}
