package experiments

import "repro/internal/report"

// reportTable is the concrete table type experiments produce.
type reportTable = report.Table
