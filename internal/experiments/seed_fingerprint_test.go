package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// seedFingerprintSHA256 pins the exact simulated behaviour of the standard
// prewarm matrix (Params{Instructions: 10_000, Warmup: 2_000, Seed: 1})
// as of the introduction of the internal/filter registry. The table-family
// filter paths must stay bit-identical across refactors: any change to
// cache policy, prefetcher behaviour, the PA/PC filter tables, or the
// stats schema shows up here. Update this constant ONLY for an intentional
// behaviour change, and say so in the commit message.
const seedFingerprintSHA256 = "3970fc8e221e51af03c64c4a0df1993120aacea07acf2d33c52e76798acda8ba"

func prewarmHash(t *testing.T, workers int) string {
	t.Helper()
	p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
	if err := p.Prewarm(workers); err != nil {
		t.Fatalf("Prewarm(%d): %v", workers, err)
	}
	sum := sha256.Sum256(p.Fingerprint())
	return hex.EncodeToString(sum[:])
}

// TestSeedFingerprintPinned is the determinism contract: the full standard
// matrix hashes to the committed seed value, and the hash is identical at
// 1, 4, and 8 workers (scheduling must not leak into results).
func TestSeedFingerprintPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix fingerprint is a few seconds; skipped with -short")
	}
	for _, workers := range []int{1, 4, 8} {
		if got := prewarmHash(t, workers); got != seedFingerprintSHA256 {
			t.Errorf("workers=%d fingerprint = %s, want %s", workers, got, seedFingerprintSHA256)
		}
	}
}

// TestFilterAliasRunsIdentical pins the alias contract from the filter
// registry: a simulation configured with Filter.Kind "table-pa"/"table-pc"
// must produce byte-for-byte the stats of the canonical "pa"/"pc" kinds.
func TestFilterAliasRunsIdentical(t *testing.T) {
	run := func(kind config.FilterKind) stats.Run {
		t.Helper()
		p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
		r, err := p.run("mcf", config.Default().WithFilter(kind))
		if err != nil {
			t.Fatalf("run(%s): %v", kind, err)
		}
		return r
	}
	for _, pair := range [][2]config.FilterKind{
		{config.FilterTablePA, config.FilterPA},
		{config.FilterTablePC, config.FilterPC},
	} {
		alias, canon := run(pair[0]), run(pair[1])
		// The filter name differs cosmetically only through the kind label;
		// normalize before comparing whole Run structs.
		alias.Filter = canon.Filter
		aj, _ := json.Marshal(alias)
		cj, _ := json.Marshal(canon)
		if string(aj) != string(cj) {
			t.Errorf("alias %q diverged from %q:\nalias: %s\ncanon: %s", pair[0], pair[1], aj, cj)
		}
	}
}
