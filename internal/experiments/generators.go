// The generators experiment: the prefetch-generator zoo crossed with
// the pollution-filter zoo. Every registered generator (internal/
// prefetch) runs alone on the default machine against each requested
// filter backend plus the unfiltered baseline, so the filters are
// judged across the full spectrum of prefetch behaviour — sequential,
// shadow, stride, correlation, latency-aware local-delta, and
// GHB/PC-delta — not just the paper's NSP/SDP pair (ROADMAP item 3).
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "generators",
		Title: "Prefetch-generator zoo crossed with the filter zoo (internal/prefetch registry)",
		Run: func(p *Params) (*Table, error) {
			// A representative filter slice keeps the full experiment
			// suite tractable; pfexperiments -generators and the serving
			// layer expose the complete cross-product.
			filters := []string{string(config.FilterPA), string(config.FilterPerceptron)}
			rows, err := p.GeneratorComparison(context.Background(), prefetch.Sweepable(), filters, 0)
			if err != nil {
				return nil, err
			}
			return report.GeneratorComparison("Generator zoo crossed with filters (default machine)", rows), nil
		},
	})
}

// generatorConfig maps a (generator, filter) pair onto the simulation
// config running exactly that generator under exactly that filter on
// the default machine.
func generatorConfig(gen config.PrefetchKind, kind string) config.Config {
	return config.Default().WithGenerator(gen).WithFilter(config.FilterKind(kind))
}

// GeneratorComparison runs the (benchmark × generator × filter)
// cross-product — plus the unfiltered baseline of each (benchmark,
// generator) pair that the IPC deltas need — on the work-stealing
// scheduler and returns the sorted comparison rows. Gens must name
// registered generator kinds (aliases resolve); filters must name
// registered, sweepable filter backends. Empty slices select the full
// registries. Workers <= 0 selects GOMAXPROCS.
func (p *Params) GeneratorComparison(ctx context.Context, gens, filters []string, workers int) ([]report.GeneratorComparisonRow, error) {
	if len(gens) == 0 {
		gens = prefetch.Sweepable()
	}
	if len(filters) == 0 {
		filters = filter.Sweepable()
	}
	genSweep := make([]config.PrefetchKind, 0, len(gens))
	seenGen := map[config.PrefetchKind]bool{}
	for _, g := range gens {
		kind := config.PrefetchKind(g).Canonical()
		if !prefetch.Registered(kind) {
			return nil, fmt.Errorf("experiments: unknown generator kind %q (registered: %v)", g, prefetch.Kinds())
		}
		if !seenGen[kind] {
			seenGen[kind] = true
			genSweep = append(genSweep, kind)
		}
	}
	for _, k := range filters {
		kind := config.FilterKind(k)
		if kind.Canonical() == config.FilterStatic {
			return nil, fmt.Errorf("experiments: the static filter needs a profiling run and cannot join the sweep")
		}
		if !filter.Registered(kind) {
			return nil, fmt.Errorf("experiments: unknown filter kind %q (registered: %v)", k, filter.Kinds())
		}
	}
	filterSweep := make([]string, 0, len(filters)+1)
	seenFil := map[string]bool{}
	for _, k := range append([]string{string(config.FilterNone)}, filters...) {
		canon := string(config.FilterKind(k).Canonical())
		if !seenFil[canon] {
			seenFil[canon] = true
			filterSweep = append(filterSweep, canon)
		}
	}

	cost := p.costModel()
	var jobs []sched.Job
	for _, bench := range p.benchmarks() {
		bench := bench
		for _, gen := range genSweep {
			gen := gen
			for _, kind := range filterSweep {
				kind := kind
				jobs = append(jobs, sched.Job{
					Key:  bench + "|" + string(gen) + "|" + kind,
					Cost: cost(bench),
					Run: func(ctx context.Context) (any, error) {
						return p.runCtx(ctx, bench, generatorConfig(gen, kind))
					},
				})
			}
		}
	}
	results, ctxErr := sched.Run(ctx, jobs, sched.Options{Workers: workers, Metrics: p.Metrics})
	if ctxErr != nil {
		return nil, ctxErr
	}
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, dedupJoin(errs)
	}

	var rows []report.GeneratorComparisonRow
	for _, bench := range p.benchmarks() {
		for _, gen := range genSweep {
			base := results[bench+"|"+string(gen)+"|"+string(config.FilterNone)].Value.(stats.Run)
			for _, kind := range filterSweep {
				r := results[bench+"|"+string(gen)+"|"+kind].Value.(stats.Run)
				rows = append(rows, report.GeneratorComparisonRow{
					Generator:           string(gen),
					FilterComparisonRow: comparisonRow(bench, kind, r, base),
				})
			}
		}
	}
	report.SortGeneratorComparison(rows)
	return rows, nil
}
