// Figures 1-2 (motivation) and Figures 4-9 (main evaluation at 8KB and
// 32KB L1 caches).
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "fig1", Title: "Effectiveness of prefetches (Figure 1)", Run: runFig1})
	register(Experiment{ID: "fig2", Title: "Traffic distribution of L1 cache (Figure 2)", Run: runFig2})
	register(Experiment{ID: "fig4", Title: "Prefetch miss/hit counts, 8KB D-cache (Figure 4)",
		Run: func(p *Params) (*Table, error) { return runFigCounts(p, config.Default8K(), "8KB") }})
	register(Experiment{ID: "fig5", Title: "Bad/good prefetch ratios, 8KB D-cache (Figure 5)",
		Run: func(p *Params) (*Table, error) { return runFigRatio(p, config.Default8K(), "8KB") }})
	register(Experiment{ID: "fig6", Title: "IPC comparison, 8KB D-cache (Figure 6)",
		Run: func(p *Params) (*Table, error) { return runFigIPC(p, config.Default8K(), "8KB") }})
	register(Experiment{ID: "fig7", Title: "Prefetch miss/hit counts, 32KB D-cache (Figure 7)",
		Run: func(p *Params) (*Table, error) { return runFigCounts(p, config.Default32K(), "32KB") }})
	register(Experiment{ID: "fig8", Title: "Bad/good prefetch ratios, 32KB D-cache (Figure 8)",
		Run: func(p *Params) (*Table, error) { return runFigRatio(p, config.Default32K(), "32KB") }})
	register(Experiment{ID: "fig9", Title: "IPC comparison, 32KB D-cache (Figure 9)",
		Run: func(p *Params) (*Table, error) { return runFigIPC(p, config.Default32K(), "32KB") }})
}

// triple runs a benchmark under no filtering, the PA filter, and the PC
// filter on the given base machine.
func (p *Params) triple(bench string, base config.Config) (none, pa, pc stats.Run, err error) {
	if none, err = p.run(bench, base.WithFilter(config.FilterNone)); err != nil {
		return
	}
	if pa, err = p.run(bench, base.WithFilter(config.FilterPA)); err != nil {
		return
	}
	pc, err = p.run(bench, base.WithFilter(config.FilterPC))
	return
}

// runFig1 reproduces the good/bad prefetch distribution with no filtering:
// both counts normalized to total prefetches per benchmark.
func runFig1(p *Params) (*Table, error) {
	t := report.New("Figure 1 — effectiveness of prefetches (no filtering)",
		"benchmark", "good", "bad", "good frac", "bad frac")
	var fracs []float64
	for _, name := range p.benchmarks() {
		r, err := p.run(name, config.Default())
		if err != nil {
			return nil, err
		}
		total := r.Prefetches.Classified()
		if total == 0 {
			t.AddRow(name, "0", "0", "-", "-")
			continue
		}
		gf := float64(r.Prefetches.Good) / float64(total)
		t.AddRow(name, report.I(r.Prefetches.Good), report.I(r.Prefetches.Bad),
			report.Pct(gf), report.Pct(1-gf))
		fracs = append(fracs, 1-gf)
	}
	t.AddNote("mean bad fraction: %s (paper: 48%%; >50%% bad in 4 of 10 benchmarks)", report.Pct(stats.Mean(fracs)))
	return t, nil
}

// runFig2 reproduces the L1 traffic split between demand and prefetch
// accesses with no filtering.
func runFig2(p *Params) (*Table, error) {
	t := report.New("Figure 2 — traffic distribution of the L1 cache (no filtering)",
		"benchmark", "demand", "prefetch fills", "fills/demand", "probes/demand")
	var ratios, probeRatios []float64
	for _, name := range p.benchmarks() {
		r, err := p.run(name, config.Default())
		if err != nil {
			return nil, err
		}
		ratio := r.Traffic.PrefetchRatio()
		// Duplicate squashing is free of *penalty* but each squashed
		// candidate still probes the L1 tag array; counting probes is the
		// closer match to the paper's "traffic in terms of cache lines".
		probes := stats.SafeRatio(
			float64(r.Traffic.PrefetchAccesses+r.Prefetches.Squashed),
			float64(r.Traffic.DemandAccesses))
		ratios = append(ratios, ratio)
		probeRatios = append(probeRatios, probes)
		t.AddRow(name, report.I(r.Traffic.DemandAccesses), report.I(r.Traffic.PrefetchAccesses),
			report.F2(ratio), report.F2(probes))
	}
	t.AddNote("mean prefetch/demand: %s fills, %s tag probes (paper: 0.41, max 0.57, min 0.29)",
		report.F2(stats.Mean(ratios)), report.F2(stats.Mean(probeRatios)))
	return t, nil
}

// runFigCounts reproduces Figures 4/7: bad and good prefetch counts for
// the three scenarios, normalized to the good count without filtering.
func runFigCounts(p *Params, base config.Config, label string) (*Table, error) {
	t := report.New(fmt.Sprintf("Figure — prefetch counts, %s D-cache (normalized to good/none)", label),
		"benchmark", "bad none", "bad PA", "bad PC", "good none", "good PA", "good PC")
	var badPA, badPC, goodPA, goodPC, trafPA, trafPC []float64
	for _, name := range p.benchmarks() {
		none, pa, pc, err := p.triple(name, base)
		if err != nil {
			return nil, err
		}
		norm := float64(none.Prefetches.Good)
		if norm == 0 {
			norm = 1
		}
		n := func(v uint64) string { return report.F2(float64(v) / norm) }
		t.AddRow(name,
			n(none.Prefetches.Bad), n(pa.Prefetches.Bad), n(pc.Prefetches.Bad),
			n(none.Prefetches.Good), n(pa.Prefetches.Good), n(pc.Prefetches.Good))
		badPA = append(badPA, stats.Reduction(float64(none.Prefetches.Bad), float64(pa.Prefetches.Bad)))
		badPC = append(badPC, stats.Reduction(float64(none.Prefetches.Bad), float64(pc.Prefetches.Bad)))
		goodPA = append(goodPA, stats.Reduction(float64(none.Prefetches.Good), float64(pa.Prefetches.Good)))
		goodPC = append(goodPC, stats.Reduction(float64(none.Prefetches.Good), float64(pc.Prefetches.Good)))
		trafPA = append(trafPA, stats.Reduction(float64(none.Traffic.PrefetchAccesses), float64(pa.Traffic.PrefetchAccesses)))
		trafPC = append(trafPC, stats.Reduction(float64(none.Traffic.PrefetchAccesses), float64(pc.Traffic.PrefetchAccesses)))
	}
	t.AddNote("mean bad-prefetch reduction: PA %s, PC %s (paper %s: ~97%%/98%% at 8KB, 91%%/92%% at 32KB)",
		report.Pct(stats.Mean(badPA)), report.Pct(stats.Mean(badPC)), label)
	t.AddNote("mean good-prefetch reduction: PA %s, PC %s (paper: ~51%%/48%% at 8KB, 35%%/27%% at 32KB)",
		report.Pct(stats.Mean(goodPA)), report.Pct(stats.Mean(goodPC)))
	t.AddNote("mean prefetch-traffic reduction: PA %s, PC %s (paper: 75%%/74%% at 8KB, 52%%/47%% at 32KB)",
		report.Pct(stats.Mean(trafPA)), report.Pct(stats.Mean(trafPC)))
	return t, nil
}

// runFigRatio reproduces Figures 5/8: bad/good prefetch ratios for the
// three scenarios and the filters' mean ratio reduction.
func runFigRatio(p *Params, base config.Config, label string) (*Table, error) {
	t := report.New(fmt.Sprintf("Figure — bad/good prefetch ratios, %s D-cache", label),
		"benchmark", "none", "PA", "PC")
	var redPA, redPC []float64
	var aggBad, aggGood [3]uint64
	for _, name := range p.benchmarks() {
		none, pa, pc, err := p.triple(name, base)
		if err != nil {
			return nil, err
		}
		rn, rpa, rpc := none.Prefetches.BadGoodRatio(), pa.Prefetches.BadGoodRatio(), pc.Prefetches.BadGoodRatio()
		t.AddRow(name, report.F2(rn), report.F2(rpa), report.F2(rpc))
		redPA = append(redPA, stats.Reduction(rn, rpa))
		redPC = append(redPC, stats.Reduction(rn, rpc))
		for i, r := range []stats.Run{none, pa, pc} {
			aggBad[i] += r.Prefetches.Bad
			aggGood[i] += r.Prefetches.Good
		}
	}
	agg := func(i int) float64 { return stats.SafeRatio(float64(aggBad[i]), float64(aggGood[i])) }
	t.AddRow("aggregate", report.F2(agg(0)), report.F2(agg(1)), report.F2(agg(2)))
	t.AddNote("mean per-benchmark ratio reduction: PA %s, PC %s; benchmarks whose good count the filter"+
		" drives to ~0 (gcc, perimeter) make this mean unstable — the aggregate row (Σbad/Σgood) is the robust view",
		report.Pct(stats.Mean(redPA)), report.Pct(stats.Mean(redPC)))
	t.AddNote("aggregate ratio reduction: PA %s, PC %s (paper: 70%%/91%% at 8KB, 75%%/93%% at 32KB)",
		report.Pct(stats.Reduction(agg(0), agg(1))), report.Pct(stats.Reduction(agg(0), agg(2))))
	return t, nil
}

// runFigIPC reproduces Figures 6/9: IPC for the three scenarios.
func runFigIPC(p *Params, base config.Config, label string) (*Table, error) {
	t := report.New(fmt.Sprintf("Figure — IPC comparison, %s D-cache", label),
		"benchmark", "none", "PA", "PC", "PA speedup", "PC speedup")
	var spPA, spPC []float64
	for _, name := range p.benchmarks() {
		none, pa, pc, err := p.triple(name, base)
		if err != nil {
			return nil, err
		}
		sa := stats.Speedup(none.IPC(), pa.IPC())
		sc := stats.Speedup(none.IPC(), pc.IPC())
		spPA = append(spPA, sa)
		spPC = append(spPC, sc)
		t.AddRow(name, report.F2(none.IPC()), report.F2(pa.IPC()), report.F2(pc.IPC()),
			report.Pct(sa), report.Pct(sc))
	}
	t.AddNote("mean IPC speedup: PA %s, PC %s (paper: 8.2%%/9.1%% at 8KB, 7.0%%/8.1%% at 32KB)",
		report.Pct(stats.Mean(spPA)), report.Pct(stats.Mean(spPC)))
	return t, nil
}
