// Table 1 (system configuration) and Table 2 (benchmark properties).
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "System configuration (Table 1)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Benchmark properties: L1/L2 miss rates with prefetch off (Table 2)",
		Run:   runTable2,
	})
}

// runTable1 renders the default machine, verifying it matches Table 1.
func runTable1(p *Params) (*Table, error) {
	cfg := config.Default()
	t := report.New("Table 1 — system configuration", "parameter", "value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("issue/retire", fmt.Sprintf("%d inst/cycle", cfg.CPU.IssueWidth))
	add("reorder buffer", fmt.Sprintf("%d entries", cfg.CPU.ROBEntries))
	add("load/store queue", fmt.Sprintf("%d entries", cfg.CPU.LSQEntries))
	add("branch predictor", fmt.Sprintf("bimodal, %d entries", cfg.CPU.BimodalEntries))
	add("BTB", fmt.Sprintf("%d-way, %d sets", cfg.CPU.BTBAssoc, cfg.CPU.BTBSets))
	add("L1 D", fmt.Sprintf("%dKB, %db line, %d-way, %d cycle",
		cfg.L1.SizeBytes/1024, cfg.L1.LineBytes, cfg.L1.Assoc, cfg.L1.LatencyCycles))
	add("L1 D ports", fmt.Sprintf("%d", cfg.L1.Ports))
	add("L2", fmt.Sprintf("%dKB, %db line, %d-way, %d cycles",
		cfg.L2.SizeBytes/1024, cfg.L2.LineBytes, cfg.L2.Assoc, cfg.L2.LatencyCycles))
	add("L2 ports", fmt.Sprintf("%d", cfg.L2.Ports))
	add("memory latency", fmt.Sprintf("%d core cycles", cfg.MemoryLatency))
	add("prefetch queue", fmt.Sprintf("%d entries", cfg.Prefetch.QueueEntries))
	add("pollution filter", fmt.Sprintf("%d entries (%dB)", cfg.Filter.TableEntries, cfg.Filter.TableEntries/4))
	return t, nil
}

// runTable2 measures baseline miss rates with every prefetcher disabled,
// side by side with the paper's values for calibration.
func runTable2(p *Params) (*Table, error) {
	t := report.New("Table 2 — benchmark properties (prefetch off)",
		"benchmark", "input", "L1 miss", "paper L1", "L2 miss", "paper L2", "IPC")
	cfg := sim.NoPrefetchConfig(config.Default())
	for _, name := range p.benchmarks() {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		r, err := p.run(name, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, spec.Input,
			report.F(r.L1MissRate()), report.F(spec.PaperL1Miss),
			report.F(r.L2MissRate()), report.F(spec.PaperL2Miss),
			report.F2(r.IPC()))
	}
	t.AddNote("miss rates are local (misses per access at that level), matching the paper's convention")
	return t, nil
}
