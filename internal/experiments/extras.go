// The textual results of §5.2.1 that have no figure of their own:
// per-prefetcher (NSP-only / SDP-only) filter effectiveness, the 16KB
// bigger-cache comparison, the static-filter baseline, and the adaptive
// filter the paper sketches as an advanced feature.
package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "extras",
		Title: "§5.2.1 textual results: per-prefetcher filtering, 16KB cache, static filter, adaptive filter",
		Run:   runExtras,
	})
}

func runExtras(p *Params) (*Table, error) {
	t := report.New("§5.2.1 extras (means over all benchmarks)",
		"experiment", "scenario", "good/bad", "bad reduction", "good reduction", "mean IPC", "vs baseline")

	// --- NSP-only and SDP-only filtering -----------------------------------
	for _, hw := range []struct {
		label    string
		nsp, sdp bool
	}{{"NSP only", true, false}, {"SDP only", false, true}} {
		base := config.Default()
		base.Prefetch.EnableNSP = hw.nsp
		base.Prefetch.EnableSDP = hw.sdp
		base.Prefetch.EnableSoftware = false

		var gbRatios, badRed, goodRed, ipcNone, ipcPA []float64
		for _, name := range p.benchmarks() {
			none, err := p.run(name, base.WithFilter(config.FilterNone))
			if err != nil {
				return nil, err
			}
			pa, err := p.run(name, base.WithFilter(config.FilterPA))
			if err != nil {
				return nil, err
			}
			if none.Prefetches.Bad > 0 {
				gbRatios = append(gbRatios, float64(none.Prefetches.Good)/float64(none.Prefetches.Bad))
			}
			badRed = append(badRed, stats.Reduction(float64(none.Prefetches.Bad), float64(pa.Prefetches.Bad)))
			goodRed = append(goodRed, stats.Reduction(float64(none.Prefetches.Good), float64(pa.Prefetches.Good)))
			ipcNone = append(ipcNone, none.IPC())
			ipcPA = append(ipcPA, pa.IPC())
		}
		t.AddRow(hw.label, "PA filter",
			report.F2(stats.Mean(gbRatios)),
			report.Pct(stats.Mean(badRed)),
			report.Pct(stats.Mean(goodRed)),
			report.F2(stats.Mean(ipcPA)),
			report.Pct(stats.Speedup(stats.Mean(ipcNone), stats.Mean(ipcPA))))
	}
	t.AddNote("paper: NSP good/bad=1.8, filter removes 97.5%% bad / 48.1%% good; SDP good/bad=11.7, removes 68.3%% bad / 61.9%% good")

	// --- 16KB L1 without a filter vs 8KB L1 with a 1KB history table -------
	var ipc8none, ipc8pa, ipc16 []float64
	for _, name := range p.benchmarks() {
		r8n, err := p.run(name, config.Default8K().WithFilter(config.FilterNone))
		if err != nil {
			return nil, err
		}
		r8p, err := p.run(name, config.Default8K().WithFilter(config.FilterPA))
		if err != nil {
			return nil, err
		}
		r16, err := p.run(name, config.Default16K().WithFilter(config.FilterNone))
		if err != nil {
			return nil, err
		}
		ipc8none = append(ipc8none, r8n.IPC())
		ipc8pa = append(ipc8pa, r8p.IPC())
		ipc16 = append(ipc16, r16.IPC())
	}
	t.AddRow("16KB L1, no filter", "vs 8KB none", "-", "-", "-",
		report.F2(stats.Mean(ipc16)), report.Pct(stats.Speedup(stats.Mean(ipc8none), stats.Mean(ipc16))))
	t.AddRow("8KB L1 + 1KB table", "PA filter", "-", "-", "-",
		report.F2(stats.Mean(ipc8pa)), report.Pct(stats.Speedup(stats.Mean(ipc8none), stats.Mean(ipc8pa))))
	t.AddNote("paper: doubling the L1 gives ~20%% but costs 8KB of SRAM; the 1KB history table is the better spend per byte")

	// --- Static (profile-driven) filter baseline ----------------------------
	var ipcStatic, badRedS, goodRedS []float64
	for _, name := range p.benchmarks() {
		none, err := p.run(name, config.Default().WithFilter(config.FilterNone))
		if err != nil {
			return nil, err
		}
		st, err := sim.RunStatic(sim.Options{
			Benchmark:       name,
			Config:          config.Default(),
			MaxInstructions: p.Instructions,
			Warmup:          p.Warmup,
		}, core.PAKey, 0.5)
		if err != nil {
			return nil, err
		}
		ipcStatic = append(ipcStatic, st.IPC())
		badRedS = append(badRedS, stats.Reduction(float64(none.Prefetches.Bad), float64(st.Prefetches.Bad)))
		goodRedS = append(goodRedS, stats.Reduction(float64(none.Prefetches.Good), float64(st.Prefetches.Good)))
	}
	t.AddRow("static filter (profiled)", "PA keys", "-",
		report.Pct(stats.Mean(badRedS)), report.Pct(stats.Mean(goodRedS)),
		report.F2(stats.Mean(ipcStatic)),
		report.Pct(stats.Speedup(stats.Mean(ipc8none), stats.Mean(ipcStatic))))
	t.AddNote("paper (citing Srinivasan et al.): static filtering gains 2-4%%; the dynamic filter should beat it")

	// --- Adaptive filter (engage only when accuracy is low) ----------------
	var ipcAd []float64
	for _, name := range p.benchmarks() {
		r, err := p.run(name, config.Default().WithFilter(config.FilterAdaptive))
		if err != nil {
			return nil, err
		}
		ipcAd = append(ipcAd, r.IPC())
	}
	t.AddRow("adaptive filter", "PA, engage<50% acc", "-", "-", "-",
		report.F2(stats.Mean(ipcAd)), report.Pct(stats.Speedup(stats.Mean(ipc8none), stats.Mean(ipcAd))))
	t.AddNote("adaptive filtering (§5.2.1 'advanced features') avoids filtering accurate prefetchers like SDP/fpppp")

	return t, nil
}
