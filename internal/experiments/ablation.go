// Ablations beyond the paper: design choices DESIGN.md calls out.
//
//   - Indexing: the paper uses direct (low-bit) indexing into the history
//     table; multiplicative hashing spreads aliases differently.
//   - Initial counter: the paper relies on first-touch prefetches being
//     allowed (counters start weakly good). Starting at strongly-good or
//     weakly-bad shifts the allow/deny balance.
//   - Stride prefetcher: adding a Chen&Baer reference prediction table to
//     the prefetcher mix, with and without the PA filter.
//   - Tagged history table: partial tags remove aliasing interference at
//     a storage cost — and remove the aliasing-driven entry recovery the
//     untagged design benefits from.
package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "Design ablations: table indexing, initial counter, stride prefetcher",
		Run:   runAblation,
	})
}

func runAblation(p *Params) (*Table, error) {
	t := report.New("Ablations (means over all benchmarks, PA filter unless noted)",
		"variant", "mean IPC", "bad reduction", "good reduction", "filter reject rate")

	baseline := config.Default().WithFilter(config.FilterNone)
	var ipcNone []float64
	noneRuns := map[string]stats.Run{}
	for _, name := range p.benchmarks() {
		r, err := p.run(name, baseline)
		if err != nil {
			return nil, err
		}
		noneRuns[name] = r
		ipcNone = append(ipcNone, r.IPC())
	}
	t.AddRow("no filtering", report.F2(stats.Mean(ipcNone)), "-", "-", "-")

	addVariant := func(label string, mutate func(config.Config) config.Config) error {
		var ipc, badRed, goodRed, rej []float64
		for _, name := range p.benchmarks() {
			cfg := mutate(config.Default().WithFilter(config.FilterPA))
			r, err := p.run(name, cfg)
			if err != nil {
				return err
			}
			none := noneRuns[name]
			ipc = append(ipc, r.IPC())
			badRed = append(badRed, stats.Reduction(float64(none.Prefetches.Bad), float64(r.Prefetches.Bad)))
			goodRed = append(goodRed, stats.Reduction(float64(none.Prefetches.Good), float64(r.Prefetches.Good)))
			rej = append(rej, stats.SafeRatio(float64(r.FilterRejected), float64(r.FilterQueries)))
		}
		t.AddRow(label, report.F2(stats.Mean(ipc)), report.Pct(stats.Mean(badRed)),
			report.Pct(stats.Mean(goodRed)), report.Pct(stats.Mean(rej)))
		return nil
	}

	if err := addVariant("PA, direct index (paper)", func(c config.Config) config.Config { return c }); err != nil {
		return nil, err
	}
	// Initial-counter sweep: weakly-bad start rejects first-touch keys;
	// strongly-good start takes two bad evictions to reject.
	if err := addVariant("PA, init counter=1 (weakly bad)", func(c config.Config) config.Config {
		c.Filter.InitialCounter = 1
		return c
	}); err != nil {
		return nil, err
	}
	if err := addVariant("PA, init counter=3 (strongly good)", func(c config.Config) config.Config {
		c.Filter.InitialCounter = 3
		return c
	}); err != nil {
		return nil, err
	}
	// Tagged-table variants: stateful filters cannot go through the memo
	// cache, so these run uncached.
	addCustom := func(label string, mk func() (core.Filter, error)) error {
		var ipc, badRed, goodRed, rej []float64
		for _, name := range p.benchmarks() {
			f, err := mk()
			if err != nil {
				return err
			}
			r, err := sim.Run(sim.Options{
				Benchmark:       name,
				Config:          config.Default(),
				Filter:          f,
				MaxInstructions: p.Instructions,
				Warmup:          p.Warmup,
			})
			if err != nil {
				return err
			}
			none := noneRuns[name]
			ipc = append(ipc, r.IPC())
			badRed = append(badRed, stats.Reduction(float64(none.Prefetches.Bad), float64(r.Prefetches.Bad)))
			goodRed = append(goodRed, stats.Reduction(float64(none.Prefetches.Good), float64(r.Prefetches.Good)))
			rej = append(rej, stats.SafeRatio(float64(r.FilterRejected), float64(r.FilterQueries)))
		}
		t.AddRow(label, report.F2(stats.Mean(ipc)), report.Pct(stats.Mean(badRed)),
			report.Pct(stats.Mean(goodRed)), report.Pct(stats.Mean(rej)))
		return nil
	}
	if err := addCustom("PA, tagged table (8-bit tags)", func() (core.Filter, error) {
		return core.NewTaggedPA(4096, 8)
	}); err != nil {
		return nil, err
	}
	if err := addCustom("PA, hash index", func() (core.Filter, error) {
		return core.NewPA(4096, 2, 2, core.IndexHash)
	}); err != nil {
		return nil, err
	}

	// Victim cache (Jouppi): how much of the filter's benefit does a
	// conflict-miss fix capture — and do the two compose?
	if err := addVariant("8-entry victim cache, no filter", func(c config.Config) config.Config {
		c.Filter.Kind = config.FilterNone
		c.VictimEntries = 8
		return c
	}); err != nil {
		return nil, err
	}
	if err := addVariant("victim cache + PA filter", func(c config.Config) config.Config {
		c.VictimEntries = 8
		return c
	}); err != nil {
		return nil, err
	}
	// Bounded MSHRs: throttling memory-level parallelism interacts with
	// prefetch timeliness.
	if err := addVariant("PA + 8 MSHRs", func(c config.Config) config.Config {
		c.CPU.MSHRs = 8
		return c
	}); err != nil {
		return nil, err
	}

	// Stride prefetcher in the mix, unfiltered vs filtered.
	var ipcStrideNone, ipcStridePA []float64
	for _, name := range p.benchmarks() {
		cfgN := config.Default().WithFilter(config.FilterNone)
		cfgN.Prefetch.EnableStride = true
		rn, err := p.run(name, cfgN)
		if err != nil {
			return nil, err
		}
		cfgP := cfgN.WithFilter(config.FilterPA)
		rp, err := p.run(name, cfgP)
		if err != nil {
			return nil, err
		}
		ipcStrideNone = append(ipcStrideNone, rn.IPC())
		ipcStridePA = append(ipcStridePA, rp.IPC())
	}
	t.AddRow("+stride RPT, no filter", report.F2(stats.Mean(ipcStrideNone)), "-", "-", "-")
	t.AddRow("+stride RPT, PA filter", report.F2(stats.Mean(ipcStridePA)), "-", "-", "-")

	// Correlation prefetcher (reference [2]) in the mix.
	var ipcCorrNone, ipcCorrPA []float64
	for _, name := range p.benchmarks() {
		cfgN := config.Default().WithFilter(config.FilterNone)
		cfgN.Prefetch.EnableCorrelation = true
		rn, err := p.run(name, cfgN)
		if err != nil {
			return nil, err
		}
		rp, err := p.run(name, cfgN.WithFilter(config.FilterPA))
		if err != nil {
			return nil, err
		}
		ipcCorrNone = append(ipcCorrNone, rn.IPC())
		ipcCorrPA = append(ipcCorrPA, rp.IPC())
	}
	t.AddRow("+correlation, no filter", report.F2(stats.Mean(ipcCorrNone)), "-", "-", "-")
	t.AddRow("+correlation, PA filter", report.F2(stats.Mean(ipcCorrPA)), "-", "-", "-")
	t.AddNote("tagged tables remove aliasing interference but also the aliasing-driven recovery the paper's untagged design relies on")
	return t, nil
}
