// The adaptivity experiment: §2's central argument for dynamic filtering.
//
// "In theory, the profiling information can provide precise global
// information for a given input data set, however, it lacks the dynamic
// adaptivity during runtime when the working set changes."
//
// The paper asserts this; the `phased` micro workload lets us measure it.
// phased alternates between a streaming phase (every hardware prefetch is
// good) and a random phase (every hardware prefetch is useless) on a long
// period. A dynamic history table re-trains within each phase; a static
// profile is one fixed decision set that is wrong half the time; and an
// unfiltered machine eats the random phase's pollution.
package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "adaptivity",
		Title: "Dynamic vs static filtering across working-set changes (§2's argument, on the phased workload)",
		Run:   runAdaptivity,
	})
}

func runAdaptivity(p *Params) (*Table, error) {
	t := report.New("Phase-change adaptivity (phased workload: streaming ↔ random)",
		"scheme", "IPC", "vs none", "good kept", "bad kept", "filtered")

	// The phased workload needs several full phases inside the measured
	// window to expose adaptation; scale the budget up if the caller's is
	// small (each phase is ~60K rounds ≈ 400K instructions).
	instr := p.Instructions
	if instr < 3_000_000 {
		instr = 3_000_000
	}
	warm := p.Warmup
	if warm < 500_000 {
		warm = 500_000
	}
	runOne := func(kind config.FilterKind) (stats.Run, error) {
		cfg := config.Default().WithFilter(kind)
		cfg.Seed = p.Seed
		return sim.Run(sim.Options{
			Benchmark:       "phased",
			Config:          cfg,
			MaxInstructions: instr,
			Warmup:          warm,
		})
	}

	none, err := runOne(config.FilterNone)
	if err != nil {
		return nil, err
	}
	pa, err := runOne(config.FilterPA)
	if err != nil {
		return nil, err
	}
	adaptive, err := runOne(config.FilterAdaptive)
	if err != nil {
		return nil, err
	}
	probe, err := func() (stats.Run, error) {
		f, err := core.NewPA(config.Default().Filter.TableEntries, 2, 2, core.IndexDirect)
		if err != nil {
			return stats.Run{}, err
		}
		f.SetProbation(64) // one rejected prefetch in 64 issues anyway
		cfg := config.Default()
		cfg.Seed = p.Seed
		return sim.Run(sim.Options{
			Benchmark:       "phased",
			Config:          cfg,
			Filter:          f,
			MaxInstructions: instr,
			Warmup:          warm,
		})
	}()
	if err != nil {
		return nil, err
	}
	static, err := sim.RunStatic(sim.Options{
		Benchmark:       "phased",
		Config:          config.Default(),
		MaxInstructions: instr,
		Warmup:          warm,
	}, core.PAKey, 0.5)
	if err != nil {
		return nil, err
	}

	add := func(label string, r stats.Run) {
		t.AddRow(label,
			report.F2(r.IPC()),
			report.Pct(stats.Speedup(none.IPC(), r.IPC())),
			report.Pct(stats.SafeRatio(float64(r.Prefetches.Good), float64(none.Prefetches.Good))),
			report.Pct(stats.SafeRatio(float64(r.Prefetches.Bad), float64(none.Prefetches.Bad))),
			report.I(r.Prefetches.Filtered))
	}
	add("none", none)
	add("PA (dynamic)", pa)
	add("adaptive PA", adaptive)
	add("PA + probation (ext)", probe)
	add("static profile", static)

	t.AddNote("the streaming phase makes every NSP prefetch good and the random phase makes every prefetch useless;"+
		" a dynamic table re-trains at each transition (period %d rounds)", 60_000)
	t.AddNote("paper §2: static profiling \"lacks the dynamic adaptivity during runtime when the working set changes\"")
	t.AddNote("probation (an extension): 1-in-64 rejected prefetches issue anyway, keeping feedback alive so the" +
		" table can un-learn a phase's rejections — the pure paper design is absorbing once every entry trains bad")
	return t, nil
}
