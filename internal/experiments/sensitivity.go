// Sensitivity experiments on the paper's two framing assumptions:
//
//   - "aggression": §1.2 motivates the filter with ever more aggressive
//     prefetching. Sweeping the NSP degree (lines fetched per trigger)
//     should show the unfiltered machine degrading as prefetching grows
//     more aggressive while the filtered machine holds — i.e. the filter
//     is what *makes* aggressive prefetching safe.
//   - "memlat": §1 motivates everything with the growing CPU/memory speed
//     gap. Sweeping main-memory latency should show the filter's absolute
//     value growing with the gap (each avoided pollution miss is worth
//     more cycles).
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "aggression",
		Title: "Prefetch aggressiveness sweep: NSP degree 1/2/4 with and without the PA filter",
		Run:   runAggression,
	})
	register(Experiment{
		ID:    "memlat",
		Title: "Memory latency sweep: the filter's value vs the CPU/memory speed gap",
		Run:   runMemlat,
	})
}

func runAggression(p *Params) (*Table, error) {
	degrees := []int{1, 2, 4}
	cols := []string{"scheme"}
	for _, d := range degrees {
		cols = append(cols, fmt.Sprintf("degree %d", d))
	}
	t := report.New("Mean IPC vs NSP degree (all benchmarks, 8KB L1)", cols...)

	ipc := map[config.FilterKind]map[int][]float64{}
	traffic := map[int][]float64{}
	for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		ipc[kind] = map[int][]float64{}
		for _, d := range degrees {
			for _, bench := range p.benchmarks() {
				cfg := config.Default().WithFilter(kind)
				cfg.Prefetch.Degree = d
				r, err := p.run(bench, cfg)
				if err != nil {
					return nil, err
				}
				ipc[kind][d] = append(ipc[kind][d], r.IPC())
				if kind == config.FilterNone {
					traffic[d] = append(traffic[d], r.Traffic.PrefetchRatio())
				}
			}
		}
	}
	for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		row := []string{string(kind)}
		for _, d := range degrees {
			row = append(row, report.F2(stats.Mean(ipc[kind][d])))
		}
		t.AddRow(row...)
	}
	gainRow := []string{"PA gain"}
	trafRow := []string{"pf/demand (none)"}
	for _, d := range degrees {
		gainRow = append(gainRow, report.Pct(stats.Speedup(stats.Mean(ipc[config.FilterNone][d]), stats.Mean(ipc[config.FilterPA][d]))))
		trafRow = append(trafRow, report.F2(stats.Mean(traffic[d])))
	}
	t.AddRow(gainRow...)
	t.AddRow(trafRow...)
	t.AddNote("§1.2's premise quantified: the filter's gain should grow with prefetch aggressiveness — it is what makes aggressive prefetching safe")
	return t, nil
}

func runMemlat(p *Params) (*Table, error) {
	latencies := []int{75, 150, 300}
	cols := []string{"scheme"}
	for _, l := range latencies {
		cols = append(cols, fmt.Sprintf("%d cyc", l))
	}
	t := report.New("Mean IPC vs memory latency (all benchmarks, 8KB L1)", cols...)

	ipc := map[config.FilterKind]map[int][]float64{}
	for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		ipc[kind] = map[int][]float64{}
		for _, l := range latencies {
			for _, bench := range p.benchmarks() {
				cfg := config.Default().WithFilter(kind)
				cfg.MemoryLatency = l
				r, err := p.run(bench, cfg)
				if err != nil {
					return nil, err
				}
				ipc[kind][l] = append(ipc[kind][l], r.IPC())
			}
		}
	}
	for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		row := []string{string(kind)}
		for _, l := range latencies {
			row = append(row, report.F2(stats.Mean(ipc[kind][l])))
		}
		t.AddRow(row...)
	}
	gainRow := []string{"PA gain"}
	for _, l := range latencies {
		gainRow = append(gainRow, report.Pct(stats.Speedup(stats.Mean(ipc[config.FilterNone][l]), stats.Mean(ipc[config.FilterPA][l]))))
	}
	t.AddRow(gainRow...)
	t.AddNote("the speed-gap motivation of §1: every pollution miss the filter prevents is worth more cycles as memory gets relatively slower")
	return t, nil
}
