// Extension experiments beyond the paper's figures:
//
//   - "taxonomy": the full Srinivasan prefetch classification (the paper's
//     reference [17]), showing how the 2-way good/bad split the filter's
//     hardware uses maps onto the 4-way ground truth — in particular, what
//     fraction of "bad" prefetches are actively Polluting (manufactured a
//     miss) versus merely Useless (wasted traffic).
//   - "energy": the memory-system energy comparison substantiating §3's
//     "unnecessary energy consumption" motivation.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taxonomy"
)

func init() {
	register(Experiment{
		ID:    "taxonomy",
		Title: "Full prefetch taxonomy (Srinivasan et al. [17]) vs the paper's 2-way split",
		Run:   runTaxonomy,
	})
	register(Experiment{
		ID:    "energy",
		Title: "Memory-system energy: no filter vs PA vs PC (§3's energy motivation)",
		Run:   runEnergy,
	})
}

// runTaxonomyInstrumented executes one instrumented run outside the memo
// cache (the tracker is per-run state).
func runTaxonomyInstrumented(p *Params, bench string, cfg config.Config) (stats.Run, error) {
	cfg.Seed = p.Seed
	return sim.Run(sim.Options{
		Benchmark:       bench,
		Config:          cfg,
		MaxInstructions: p.Instructions,
		Warmup:          p.Warmup,
		Taxonomy:        true,
	})
}

func runTaxonomy(p *Params) (*Table, error) {
	t := report.New("Prefetch taxonomy (no filtering, 8KB D-cache)",
		"benchmark", "useful", "conflicting", "polluting", "useless", "2-way good", "2-way bad")
	var agg taxonomy.Counts
	for _, name := range p.benchmarks() {
		r, err := runTaxonomyInstrumented(p, name, config.Default())
		if err != nil {
			return nil, err
		}
		if r.Taxonomy == nil {
			return nil, fmt.Errorf("experiments: taxonomy instrumentation missing for %s", name)
		}
		c := *r.Taxonomy
		agg.Useful += c.Useful
		agg.Conflicting += c.Conflicting
		agg.Polluting += c.Polluting
		agg.Useless += c.Useless
		good, bad := c.GoodBad()
		t.AddRow(name,
			report.Pct(c.Frac(taxonomy.Useful)),
			report.Pct(c.Frac(taxonomy.Conflicting)),
			report.Pct(c.Frac(taxonomy.Polluting)),
			report.Pct(c.Frac(taxonomy.Useless)),
			report.I(good), report.I(bad))
	}
	good, bad := agg.GoodBad()
	t.AddRow("aggregate",
		report.Pct(agg.Frac(taxonomy.Useful)),
		report.Pct(agg.Frac(taxonomy.Conflicting)),
		report.Pct(agg.Frac(taxonomy.Polluting)),
		report.Pct(agg.Frac(taxonomy.Useless)),
		report.I(good), report.I(bad))
	t.AddNote("good = useful+conflicting, bad = polluting+useless: the projection the paper's 2-bit PIB/RIB hardware implements")
	t.AddNote("polluting prefetches manufacture a demand miss; useless ones only burn bandwidth — the filter removes both")
	return t, nil
}

func runEnergy(p *Params) (*Table, error) {
	t := report.New("Memory-system energy per instruction (nJ/instr)",
		"benchmark", "none", "PA", "PC", "PA saving", "PC saving")
	params := energy.DefaultParams()
	var perNone, perPA, perPC []float64
	for _, name := range p.benchmarks() {
		none, pa, pc, err := p.triple(name, config.Default())
		if err != nil {
			return nil, err
		}
		lineBytes := config.Default().L1.LineBytes
		bn, err := energy.Estimate(params, none, lineBytes)
		if err != nil {
			return nil, err
		}
		bp, err := energy.Estimate(params, pa, lineBytes)
		if err != nil {
			return nil, err
		}
		bc, err := energy.Estimate(params, pc, lineBytes)
		if err != nil {
			return nil, err
		}
		en := bn.PerInstruction(none.Instructions)
		ep := bp.PerInstruction(pa.Instructions)
		ec := bc.PerInstruction(pc.Instructions)
		perNone = append(perNone, en)
		perPA = append(perPA, ep)
		perPC = append(perPC, ec)
		t.AddRow(name, report.F2(en), report.F2(ep), report.F2(ec),
			report.Pct(stats.Reduction(en, ep)), report.Pct(stats.Reduction(en, ec)))
	}
	t.AddRow("mean", report.F2(stats.Mean(perNone)), report.F2(stats.Mean(perPA)), report.F2(stats.Mean(perPC)),
		report.Pct(stats.Reduction(stats.Mean(perNone), stats.Mean(perPA))),
		report.Pct(stats.Reduction(stats.Mean(perNone), stats.Mean(perPC))))
	t.AddNote("the history table's own energy is included (one op per query + per training event); it is negligible next to the L2/memory traffic it prevents")
	return t, nil
}
