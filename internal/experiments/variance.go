// The variance experiment: statistical robustness of the headline result.
//
// The paper reports single-run numbers (one binary, one input). Our
// synthetic workloads let us re-draw the "input" cheaply: every seed is a
// different instance of the same program model. This experiment repeats
// the Figure 6 headline (mean IPC speedup of the PA and PC filters at
// 8KB) across several seeds and reports mean ± standard deviation, so a
// reader can tell the reproduced effect from run-to-run noise.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "variance",
		Title: "Seed-to-seed variance of the headline IPC speedups (Figure 6 across 5 seeds)",
		Run:   runVariance,
	})
}

// varianceSeeds are the input-instance draws.
var varianceSeeds = []uint64{1, 2, 3, 5, 8}

func runVariance(p *Params) (*Table, error) {
	t := report.New("Headline speedup across seeds (8KB D-cache)",
		"seed", "mean IPC none", "mean IPC PA", "mean IPC PC", "PA speedup", "PC speedup")

	var spPA, spPC []float64
	for _, seed := range varianceSeeds {
		var ipcN, ipcA, ipcC []float64
		var perBenchPA, perBenchPC []float64
		for _, bench := range p.benchmarks() {
			runs := map[config.FilterKind]float64{}
			for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA, config.FilterPC} {
				cfg := config.Default().WithFilter(kind)
				cfg.Seed = seed
				r, err := sim.Run(sim.Options{
					Benchmark:       bench,
					Config:          cfg,
					MaxInstructions: p.Instructions,
					Warmup:          p.Warmup,
				})
				if err != nil {
					return nil, err
				}
				runs[kind] = r.IPC()
			}
			ipcN = append(ipcN, runs[config.FilterNone])
			ipcA = append(ipcA, runs[config.FilterPA])
			ipcC = append(ipcC, runs[config.FilterPC])
			// Figure 6's metric: per-benchmark speedups, then the mean.
			perBenchPA = append(perBenchPA, stats.Speedup(runs[config.FilterNone], runs[config.FilterPA]))
			perBenchPC = append(perBenchPC, stats.Speedup(runs[config.FilterNone], runs[config.FilterPC]))
		}
		sa := stats.Mean(perBenchPA)
		sc := stats.Mean(perBenchPC)
		spPA = append(spPA, sa)
		spPC = append(spPC, sc)
		t.AddRow(fmt.Sprintf("%d", seed),
			report.F2(stats.Mean(ipcN)), report.F2(stats.Mean(ipcA)), report.F2(stats.Mean(ipcC)),
			report.Pct(sa), report.Pct(sc))
	}
	mPA, sdPA := meanStdev(spPA)
	mPC, sdPC := meanStdev(spPC)
	t.AddRow("mean±sd", "", "", "",
		fmt.Sprintf("%s ± %s", report.Pct(mPA), report.Pct(sdPA)),
		fmt.Sprintf("%s ± %s", report.Pct(mPC), report.Pct(sdPC)))
	t.AddNote("paper single-run values: PA +8.2%%, PC +9.1%%; the reproduced effect must exceed the seed noise to count")
	return t, nil
}

// meanStdev returns the sample mean and standard deviation.
func meanStdev(xs []float64) (mean, sd float64) {
	mean = stats.Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
