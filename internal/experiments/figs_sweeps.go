// Figures 10-12 (history table size sweep) and Figures 13-14 (L1 port
// sweep), both run with the PA-based filter per §5.3/§5.4.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/stats"
)

// tableSizes is the §5.3 sweep: 1024 entries (256B) to 16384 (4KB).
var tableSizes = []int{1024, 2048, 4096, 8192, 16384}

// portCounts is the §5.4 sweep; WithL1Ports pairs each with its latency.
var portCounts = []int{3, 4, 5}

func init() {
	register(Experiment{ID: "fig10", Title: "Good prefetches vs history table size (Figure 10)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Bad prefetches vs history table size (Figure 11)", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "IPC vs history table size (Figure 12)", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Bad/good ratio vs number of L1 ports (Figure 13)", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "IPC vs number of L1 ports (Figure 14)", Run: runFig14})
}

// sweepTables runs the PA filter across the table-size sweep and hands
// each (benchmark, size) result to collect.
func sweepTables(p *Params, collect func(bench string, size int, r stats.Run)) error {
	for _, name := range p.benchmarks() {
		for _, size := range tableSizes {
			cfg := config.Default().WithFilter(config.FilterPA).WithTableEntries(size)
			r, err := p.run(name, cfg)
			if err != nil {
				return err
			}
			collect(name, size, r)
		}
	}
	return nil
}

func sizeColumns() []string {
	cols := []string{"benchmark"}
	for _, s := range tableSizes {
		cols = append(cols, fmt.Sprintf("%dE", s))
	}
	return cols
}

// runFig10 reports good prefetch counts normalized to the 4096-entry
// default, per benchmark.
func runFig10(p *Params) (*Table, error) {
	t := report.New("Figure 10 — good prefetches vs table size (normalized to 4096 entries)", sizeColumns()...)
	counts := map[string]map[int]uint64{}
	if err := sweepTables(p, func(b string, s int, r stats.Run) {
		if counts[b] == nil {
			counts[b] = map[int]uint64{}
		}
		counts[b][s] = r.Prefetches.Good
	}); err != nil {
		return nil, err
	}
	for _, name := range p.benchmarks() {
		row := []string{name}
		norm := float64(counts[name][4096])
		if norm == 0 {
			norm = 1
		}
		for _, s := range tableSizes {
			row = append(row, report.F2(float64(counts[name][s])/norm))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: good prefetches generally increase with longer tables; gap/gzip/mcf are nearly insensitive")
	return t, nil
}

// runFig11 reports bad prefetch counts normalized to the 4096-entry default.
func runFig11(p *Params) (*Table, error) {
	t := report.New("Figure 11 — bad prefetches vs table size (normalized to 4096 entries)", sizeColumns()...)
	counts := map[string]map[int]uint64{}
	if err := sweepTables(p, func(b string, s int, r stats.Run) {
		if counts[b] == nil {
			counts[b] = map[int]uint64{}
		}
		counts[b][s] = r.Prefetches.Bad
	}); err != nil {
		return nil, err
	}
	for _, name := range p.benchmarks() {
		row := []string{name}
		norm := float64(counts[name][4096])
		if norm == 0 {
			norm = 1
		}
		for _, s := range tableSizes {
			row = append(row, report.F2(float64(counts[name][s])/norm))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: bad prefetches can also rise with longer tables (first-touch entries are presumed good)")
	return t, nil
}

// runFig12 reports IPC across the table-size sweep.
func runFig12(p *Params) (*Table, error) {
	t := report.New("Figure 12 — IPC vs history table size (PA filter)", sizeColumns()...)
	ipc := map[string]map[int]float64{}
	if err := sweepTables(p, func(b string, s int, r stats.Run) {
		if ipc[b] == nil {
			ipc[b] = map[int]float64{}
		}
		ipc[b][s] = r.IPC()
	}); err != nil {
		return nil, err
	}
	means := map[int][]float64{}
	for _, name := range p.benchmarks() {
		row := []string{name}
		for _, s := range tableSizes {
			row = append(row, report.F2(ipc[name][s]))
			means[s] = append(means[s], ipc[name][s])
		}
		t.AddRow(row...)
	}
	meanRow := []string{"mean"}
	for _, s := range tableSizes {
		meanRow = append(meanRow, report.F2(stats.Mean(means[s])))
	}
	t.AddRow(meanRow...)
	t.AddNote("paper: ~6%% mean IPC gain from 2048 to 4096 entries; <1%% beyond 4096")
	return t, nil
}

// runFig13 reports bad/good prefetch ratios across the port sweep
// (3 ports/1 cycle, 4/2, 5/3 — §5.4's physical-design pairing).
func runFig13(p *Params) (*Table, error) {
	t := report.New("Figure 13 — bad/good ratio vs L1 ports (PA filter)",
		"benchmark", "3 ports", "4 ports", "5 ports")
	aggBad := map[int]uint64{}
	aggGood := map[int]uint64{}
	for _, name := range p.benchmarks() {
		row := []string{name}
		for _, ports := range portCounts {
			cfg := config.Default().WithFilter(config.FilterPA).WithL1Ports(ports)
			r, err := p.run(name, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F2(r.Prefetches.BadGoodRatio()))
			aggBad[ports] += r.Prefetches.Bad
			aggGood[ports] += r.Prefetches.Good
		}
		t.AddRow(row...)
	}
	agg := func(ports int) string {
		return report.F2(stats.SafeRatio(float64(aggBad[ports]), float64(aggGood[ports])))
	}
	t.AddRow("aggregate", agg(3), agg(4), agg(5))
	t.AddNote("paper: ratio drops ~6%% from 3 to 4 ports, ~2%% from 4 to 5 (fewer prefetches procrastinate)")
	return t, nil
}

// runFig14 reports IPC across the port sweep.
func runFig14(p *Params) (*Table, error) {
	t := report.New("Figure 14 — IPC vs L1 ports (PA filter)",
		"benchmark", "3 ports", "4 ports", "5 ports")
	means := map[int][]float64{}
	for _, name := range p.benchmarks() {
		row := []string{name}
		for _, ports := range portCounts {
			cfg := config.Default().WithFilter(config.FilterPA).WithL1Ports(ports)
			r, err := p.run(name, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F2(r.IPC()))
			means[ports] = append(means[ports], r.IPC())
		}
		t.AddRow(row...)
	}
	t.AddRow("mean", report.F2(stats.Mean(means[3])), report.F2(stats.Mean(means[4])), report.F2(stats.Mean(means[5])))
	t.AddNote("paper: ~4%% mean speedup from 3 to 4 ports, <1%% from 4 to 5 (longer latency offsets extra ports)")
	return t, nil
}
