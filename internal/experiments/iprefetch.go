// The iprefetch experiment: the instruction-prefetcher registry
// (internal/frontend) crossed with the pollution-filter zoo. Every
// registered I-side backend runs with the front end enabled — L1I
// beside the L1D, fetch misses stalling dispatch — against each
// requested filter plus the unfiltered baseline, so the eviction-time
// feedback loop is judged on instruction prefetches exactly as the
// D-side generators experiment judges it on data prefetches.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/filter"
	"repro/internal/frontend"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "iprefetch",
		Title: "Instruction-prefetcher zoo crossed with the filter zoo (internal/frontend registry)",
		Run: func(p *Params) (*Table, error) {
			// The same representative filter slice as the generators
			// experiment; pfexperiments -iprefetch and the serving layer
			// expose the complete cross-product.
			filters := []string{string(config.FilterPA), string(config.FilterPerceptron)}
			rows, err := p.IFilterComparison(context.Background(), frontend.Sweepable(), filters, 0)
			if err != nil {
				return nil, err
			}
			return report.IPrefetchComparison("Instruction-prefetcher zoo crossed with filters (front end enabled)", rows), nil
		},
	})
}

// iprefetchConfig maps an (iprefetcher, filter) pair onto the
// simulation config running the front end with exactly that backend
// under exactly that filter. The D-side hardware generators stay at
// the default machine's settings, so the filter sees both streams.
func iprefetchConfig(kind config.IPrefetchKind, fk string) config.Config {
	return config.Default().WithIPrefetch(kind).WithFilter(config.FilterKind(fk))
}

// iprefetchRow derives the I-side head-to-head metrics for one
// finished run. The Frontend block is present by construction (the
// config enabled the front end); the nil guard keeps a malformed
// store-served run from panicking the whole sweep.
func iprefetchRow(bench, ipref, fk string, r, base stats.Run) report.IPrefetchComparisonRow {
	row := report.IPrefetchComparisonRow{
		IPrefetcher: ipref,
		Benchmark:   bench,
		Filter:      fk,
		IPC:         r.IPC(),
		IPCDelta:    r.IPC() - base.IPC(),
	}
	if fe := r.Frontend; fe != nil {
		row.Good = fe.Prefetches.Good
		row.Bad = fe.Prefetches.Bad
		row.Filtered = fe.Prefetches.Filtered
		row.FetchMissRate = fe.FetchMissRate()
		row.Pollution = fe.Pollution()
	}
	return row
}

// IFilterComparison runs the (benchmark × iprefetcher × filter)
// cross-product — plus the unfiltered baseline of each (benchmark,
// iprefetcher) pair that the IPC deltas need — on the work-stealing
// scheduler and returns the sorted comparison rows. Iprefs must name
// registered instruction-prefetcher kinds (aliases resolve); filters
// must name registered, sweepable filter backends. Empty slices select
// the full registries. Workers <= 0 selects GOMAXPROCS.
func (p *Params) IFilterComparison(ctx context.Context, iprefs, filters []string, workers int) ([]report.IPrefetchComparisonRow, error) {
	if len(iprefs) == 0 {
		iprefs = frontend.Sweepable()
	}
	if len(filters) == 0 {
		filters = filter.Sweepable()
	}
	iprefSweep := make([]config.IPrefetchKind, 0, len(iprefs))
	seenIP := map[config.IPrefetchKind]bool{}
	for _, ip := range iprefs {
		kind := config.IPrefetchKind(ip).Canonical()
		if !frontend.Registered(kind) {
			return nil, fmt.Errorf("experiments: unknown instruction-prefetcher kind %q (registered: %v)", ip, frontend.Kinds())
		}
		if !seenIP[kind] {
			seenIP[kind] = true
			iprefSweep = append(iprefSweep, kind)
		}
	}
	for _, k := range filters {
		kind := config.FilterKind(k)
		if kind.Canonical() == config.FilterStatic {
			return nil, fmt.Errorf("experiments: the static filter needs a profiling run and cannot join the sweep")
		}
		if !filter.Registered(kind) {
			return nil, fmt.Errorf("experiments: unknown filter kind %q (registered: %v)", k, filter.Kinds())
		}
	}
	filterSweep := make([]string, 0, len(filters)+1)
	seenFil := map[string]bool{}
	for _, k := range append([]string{string(config.FilterNone)}, filters...) {
		canon := string(config.FilterKind(k).Canonical())
		if !seenFil[canon] {
			seenFil[canon] = true
			filterSweep = append(filterSweep, canon)
		}
	}

	cost := p.costModel()
	var jobs []sched.Job
	for _, bench := range p.benchmarks() {
		bench := bench
		for _, ipref := range iprefSweep {
			ipref := ipref
			for _, fk := range filterSweep {
				fk := fk
				jobs = append(jobs, sched.Job{
					Key:  bench + "|" + string(ipref) + "|" + fk,
					Cost: cost(bench),
					Run: func(ctx context.Context) (any, error) {
						return p.runCtx(ctx, bench, iprefetchConfig(ipref, fk))
					},
				})
			}
		}
	}
	results, ctxErr := sched.Run(ctx, jobs, sched.Options{Workers: workers, Metrics: p.Metrics})
	if ctxErr != nil {
		return nil, ctxErr
	}
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, dedupJoin(errs)
	}

	var rows []report.IPrefetchComparisonRow
	for _, bench := range p.benchmarks() {
		for _, ipref := range iprefSweep {
			base := results[bench+"|"+string(ipref)+"|"+string(config.FilterNone)].Value.(stats.Run)
			for _, fk := range filterSweep {
				r := results[bench+"|"+string(ipref)+"|"+fk].Value.(stats.Run)
				rows = append(rows, iprefetchRow(bench, string(ipref), fk, r, base))
			}
		}
	}
	report.SortIPrefetchComparison(rows)
	return rows, nil
}
