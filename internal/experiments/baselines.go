// The baselines experiment: every pollution-control approach the paper
// discusses, side by side on the default machine — the summary comparison
// the paper spreads across §5.2, §5.5 and related work.
//
//   - none:       aggressive prefetching, no control (the paper's baseline)
//   - pa / pc:    the paper's contribution
//   - adaptive:   §5.2.1's accuracy-gated variant
//   - static:     Srinivasan et al. profile-driven filter (related work)
//   - deadblock:  Lai et al. victim-liveness gate (related work [11])
//   - buffer:     Chen et al. dedicated prefetch buffer, no filter (§5.5)
package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "baselines",
		Title: "All pollution-control baselines side by side (8KB D-cache)",
		Run:   runBaselines,
	})
}

func runBaselines(p *Params) (*Table, error) {
	t := report.New("Pollution-control baselines (means over all benchmarks, 8KB L1)",
		"scheme", "mean IPC", "vs none", "bad reduction", "good reduction", "hardware cost")

	type scheme struct {
		label string
		cost  string
		run   func(bench string) (stats.Run, error)
	}
	mkKind := func(kind config.FilterKind) func(string) (stats.Run, error) {
		return func(bench string) (stats.Run, error) {
			return p.run(bench, config.Default().WithFilter(kind))
		}
	}
	schemes := []scheme{
		{"none", "—", mkKind(config.FilterNone)},
		{"PA filter (paper)", "1KB table + 2b/line", mkKind(config.FilterPA)},
		{"PC filter (paper)", "1KB table + 2b/line + PC path", mkKind(config.FilterPC)},
		{"adaptive PA (§5.2.1)", "1KB table + accuracy window", mkKind(config.FilterAdaptive)},
		{"static profile (Srinivasan)", "offline profile", func(bench string) (stats.Run, error) {
			return sim.RunStatic(sim.Options{
				Benchmark:       bench,
				Config:          config.Default(),
				MaxInstructions: p.Instructions,
				Warmup:          p.Warmup,
			}, core.PAKey, 0.5)
		}},
		{"dead-block gate (Lai)", "1KB table + sig/line", mkKind(config.FilterDeadBlock)},
		{"prefetch buffer (Chen)", "16-entry FA buffer", func(bench string) (stats.Run, error) {
			return p.run(bench, config.Default().WithPrefetchBuffer(true))
		}},
	}

	var baseIPC []float64
	baseRuns := map[string]stats.Run{}
	for _, name := range p.benchmarks() {
		r, err := schemes[0].run(name)
		if err != nil {
			return nil, err
		}
		baseRuns[name] = r
		baseIPC = append(baseIPC, r.IPC())
	}

	for _, s := range schemes {
		var ipc, badRed, goodRed []float64
		for _, name := range p.benchmarks() {
			r, err := s.run(name)
			if err != nil {
				return nil, err
			}
			base := baseRuns[name]
			ipc = append(ipc, r.IPC())
			badRed = append(badRed, stats.Reduction(float64(base.Prefetches.Bad), float64(r.Prefetches.Bad)))
			goodRed = append(goodRed, stats.Reduction(float64(base.Prefetches.Good), float64(r.Prefetches.Good)))
		}
		vs := stats.Speedup(stats.Mean(baseIPC), stats.Mean(ipc))
		if s.label == "none" {
			t.AddRow(s.label, report.F2(stats.Mean(ipc)), "—", "—", "—", s.cost)
			continue
		}
		t.AddRow(s.label, report.F2(stats.Mean(ipc)), report.Pct(vs),
			report.Pct(stats.Mean(badRed)), report.Pct(stats.Mean(goodRed)), s.cost)
	}
	t.AddNote("the dead-block gate protects live victims rather than predicting prefetch usefulness; with a direct-mapped L1 every prefetch has exactly one victim")
	t.AddNote("bad/good reductions for the buffer row reflect classification inside the buffer rather than the L1")
	return t, nil
}
