// Exported service entry points. The pfserved daemon (internal/server)
// drives the harness through these instead of the figure experiments:
// it expands request matrices the same way Prewarm does, schedules them
// on internal/sched, and shares simulations process-wide through the
// single-flight memo — so two concurrent identical requests perform one
// simulation.

package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/sched"
	"repro/internal/stats"
)

// MatrixItem is one (benchmark, config) cell of a sweep matrix.
type MatrixItem struct {
	Bench  string
	Config config.Config
	// Generator labels a generator-axis cell with the prefetch-generator
	// kind the config runs; empty on plain (benchmark, filter) sweeps.
	// It is presentation metadata only — the simulated machine is fully
	// described by Config.
	Generator string
	// IPrefetcher labels an I-side-axis cell with the instruction-
	// prefetcher kind the config's front end runs; empty otherwise.
	// Presentation metadata only, like Generator.
	IPrefetcher string
}

// StandardMatrix returns the full evaluation matrix the paper-figure
// experiments request — the same expansion Prewarm schedules. Narrow it
// by setting Params.Benchmarks.
func (p *Params) StandardMatrix() []MatrixItem {
	items := p.standardMatrix()
	out := make([]MatrixItem, len(items))
	for i, it := range items {
		out[i] = MatrixItem{Bench: it.bench, Config: it.cfg}
	}
	return out
}

// CacheKey returns the fully-qualified memo key for one simulation:
// benchmark, instruction budget, warmup, seed, and the canonical config
// encoding. Two requests with equal keys are guaranteed to share one
// simulation (see runMemo).
func (p *Params) CacheKey(bench string, cfg config.Config) string {
	return p.cacheKey(bench, cfg)
}

// RunSim executes (and memoizes) one simulation under ctx. It is the
// exported form of the harness's internal run path: cache probe, then
// process-wide single-flight through the bounded memo. Safe for
// concurrent use.
func (p *Params) RunSim(ctx context.Context, bench string, cfg config.Config) (stats.Run, error) {
	return p.runCtx(ctx, bench, cfg)
}

// CostModel returns the wall-time-histogram-backed scheduler cost
// estimator built from p.Metrics (constant-cost when no history exists).
func (p *Params) CostModel() sched.CostModel {
	return p.costModel()
}
