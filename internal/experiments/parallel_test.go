package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestPrewarmCancellationReportsContextErrorOnce pins the dedup fix: a
// cancelled prewarm stamps every unstarted job with the context error and
// then appends the context error itself, so without global dedup the
// joined message repeated the cancellation text.
func TestPrewarmCancellationReportsContextErrorOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Params{Instructions: 30_000, Warmup: 10_000, Seed: 1, Benchmarks: []string{"fpppp"}}
	err := p.PrewarmCtx(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prewarm: err = %v", err)
	}
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Fatalf("context error reported %d times, want 1:\n%s", n, err)
	}
}

// TestDedupJoinGlobal covers the case the consecutive-only collapse
// missed: duplicates separated by a message that sorts between them.
func TestDedupJoinGlobal(t *testing.T) {
	a := errors.New("context canceled")
	b := errors.New("experiments: bad benchmark")
	joined := dedupJoin([]error{a, b, errors.New("context canceled")})
	if joined == nil {
		t.Fatal("join of non-empty errs is nil")
	}
	if n := strings.Count(joined.Error(), a.Error()); n != 1 {
		t.Fatalf("duplicate survived global dedup (%d copies):\n%s", n, joined)
	}
	if !strings.Contains(joined.Error(), b.Error()) {
		t.Fatalf("distinct error lost:\n%s", joined)
	}
	if dedupJoin(nil) != nil {
		t.Fatal("dedupJoin(nil) must be nil")
	}
}
