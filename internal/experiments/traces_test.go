package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/tracefile"
)

// The sample corpus is registered process-globally (the workload registry
// keeps the file path for the binary's lifetime), so it lives in a
// process-lifetime temp dir cleaned up by TestMain, not a t.TempDir.
var (
	sampleCorpusOnce sync.Once
	sampleCorpusDir  string
	sampleCorpusErr  error
	sampleBench      string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sampleCorpusDir != "" {
		_ = os.RemoveAll(sampleCorpusDir)
	}
	os.Exit(code)
}

// registerSampleCorpus converts the checked-in ChampSim fixture into a
// one-trace corpus and registers it (verified), once per process.
func registerSampleCorpus(t *testing.T) string {
	t.Helper()
	sampleCorpusOnce.Do(func() { sampleCorpusErr = buildSampleCorpus() })
	if sampleCorpusErr != nil {
		t.Fatal(sampleCorpusErr)
	}
	return sampleBench
}

func buildSampleCorpus() error {
	in, err := os.Open(filepath.Join("..", "tracefile", "testdata", "sample.champsim.gz"))
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }() // read-only
	src, err := tracefile.MaybeGzip(in)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pftc-corpus-")
	if err != nil {
		return err
	}
	sampleCorpusDir = dir
	out, err := os.Create(filepath.Join(dir, "sample.pftc"))
	if err != nil {
		return err
	}
	st, err := tracefile.ConvertChampSim(src, out, tracefile.WriterOptions{})
	if err != nil {
		_ = out.Close() // the convert error takes precedence
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	manifest := filepath.Join(dir, "corpus.json")
	m := tracefile.Manifest{Version: tracefile.ManifestVersion}
	m.Upsert(tracefile.ManifestEntry{
		Name:          "exp-sample",
		File:          "sample.pftc",
		SHA256:        st.Fingerprint,
		Records:       st.Records,
		FormatVersion: tracefile.Version,
	})
	if err := tracefile.SaveManifest(manifest, m); err != nil {
		return err
	}
	names, err := tracefile.RegisterCorpus(config.TraceConfig{Manifest: manifest, Verify: true})
	if err != nil {
		return err
	}
	sampleBench = names[0]
	return nil
}

// TestTraceComparisonDeterministicAcrossWorkers replays the sample trace
// through the PA filter at 1, 4, and 8 workers: the comparison rows must
// be byte-identical (the trace is the program; scheduling must not leak
// into results).
func TestTraceComparisonDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay sweep is not short")
	}
	bench := registerSampleCorpus(t)
	var want string
	for _, workers := range []int{1, 4, 8} {
		p := Params{Instructions: 20_000, Warmup: 5_000, Seed: 1}
		rows, err := p.TraceComparison(context.Background(), []string{bench}, []string{"pa"}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows) == 0 {
			t.Fatalf("workers=%d: no rows", workers)
		}
		for _, r := range rows {
			if r.Benchmark != bench {
				t.Fatalf("workers=%d: row for %q, want %q", workers, r.Benchmark, bench)
			}
			if r.IPC <= 0 {
				t.Fatalf("workers=%d: non-positive IPC in %+v", workers, r)
			}
		}
		buf, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(buf); want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d rows diverged:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestTraceComparisonUnknownTrace lists the registered corpus in the
// error, mirroring the server's 400 body.
func TestTraceComparisonUnknownTrace(t *testing.T) {
	registerSampleCorpus(t)
	p := Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
	_, err := p.TraceComparison(context.Background(), []string{"trace:nope"}, []string{"pa"}, 1)
	if err == nil {
		t.Fatal("unknown trace accepted")
	}
	if !strings.Contains(err.Error(), "trace:nope") || !strings.Contains(err.Error(), "trace:exp-sample") {
		t.Fatalf("error %q should name the unknown trace and the registered corpus", err)
	}
}

// TestTracesExperimentWithCorpus runs the registered traces experiment
// end to end once a corpus exists.
func TestTracesExperimentWithCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay sweep is not short")
	}
	registerSampleCorpus(t)
	p := Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
	e, ok := ByID("traces")
	if !ok {
		t.Fatal("traces experiment not registered")
	}
	tab, err := e.Run(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("traces experiment produced no rows with a registered corpus")
	}
	if !strings.Contains(tab.String(), "trace:exp-sample") {
		t.Fatalf("table missing the corpus benchmark:\n%s", tab.String())
	}
}
