// Package experiments regenerates every table and figure of the paper's
// evaluation (§5), one experiment per artifact, plus the textual results
// of §5.2.1 and this reproduction's own ablations.
//
// Each experiment produces a report.Table whose rows/series mirror what
// the paper plots: the same benchmarks, the same scenarios, the same
// metrics. Absolute values differ (the substrate is a synthetic-workload
// simulator, not the authors' SimpleScalar/Alpha setup); EXPERIMENTS.md
// records paper-vs-measured for every artifact.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Params control an experiment run.
type Params struct {
	// Instructions measured per simulation (after warmup).
	Instructions int64
	// Warmup instructions excluded from measurement.
	Warmup int64
	// Seed for workload generation and randomized policies.
	Seed uint64
	// Benchmarks to include; empty means the paper's ten.
	Benchmarks []string
	// Metrics, when non-nil, receives harness telemetry: memo-cache
	// hits/misses ("experiments.cache.*"), per-benchmark simulation
	// wall-time histograms ("experiments.sim.wall_ns.<bench>"), and
	// Prewarm totals ("experiments.prewarm.*"). All updates are nil-safe,
	// so an unset registry costs nothing.
	Metrics *metrics.Registry
	// Store, when non-nil, is the persistent result level behind the
	// in-process single-flight memo: probed on memo miss before
	// simulating, filled after every simulation. pfserved wires the
	// on-disk fabric CAS here, making the memo the L1 of a persistent
	// hierarchy — "experiments.cache.misses" stays the true simulation
	// count (a store hit is NOT a miss), which is what lets operators
	// verify "zero simulations" sweeps from /metrics.
	Store RunStore

	cache map[string]stats.Run
}

// RunStore is a persistent key→result store (satisfied structurally by
// internal/fabric's CAS). Implementations swallow their own I/O errors:
// a broken store degrades to simulating, never to failing runs.
type RunStore interface {
	GetRun(key string) (stats.Run, bool)
	PutRun(key string, r stats.Run)
}

// DefaultParams returns the harness defaults: 2M measured instructions
// after 1M warmup (the paper uses 300M on native binaries; the synthetic
// models reach steady state far sooner).
func DefaultParams() Params {
	return Params{Instructions: 2_000_000, Warmup: 1_000_000, Seed: 1}
}

// benchmarks resolves the benchmark list: the paper's ten unless the
// caller narrowed or extended it.
func (p *Params) benchmarks() []string {
	if len(p.Benchmarks) > 0 {
		return p.Benchmarks
	}
	return workload.PaperNames()
}

// cacheKey identifies one memoizable simulation. Every field that can
// change the result is in the key EXPLICITLY — benchmark, instruction
// budget, warmup, and seed — ahead of the full canonical config encoding.
// The seed and budget segments are deliberately redundant with the config
// JSON: the key must stay collision-free even for a caller that builds a
// config without stamping p.Seed into it first (the bug class this
// construction closes; see TestCacheKeyIncludesSeedAndBudget).
func (p *Params) cacheKey(bench string, cfg config.Config) string {
	cfg.Seed = p.Seed
	b, err := json.Marshal(cfg)
	if err != nil {
		// config.Config is plain data; Marshal cannot fail in practice.
		b = []byte(fmt.Sprintf("marshal-error:%v", err))
	}
	return fmt.Sprintf("%s|n=%d|w=%d|seed=%d|%s", bench, p.Instructions, p.Warmup, p.Seed, b)
}

// runMemo single-flights concurrent simulations of the same key across
// the whole process: keys are fully qualified (benchmark, budget, seed,
// canonical config), so sharing results between Params instances is
// sound — the simulator is deterministic. The bound only limits how many
// completed results are retained for cross-Params reuse; the persistent
// per-Params store is p.cache.
var runMemo = sched.NewMemo[stats.Run](1024)

// run executes (and memoizes) one simulation.
func (p *Params) run(bench string, cfg config.Config) (stats.Run, error) {
	return p.runCtx(context.Background(), bench, cfg)
}

// runCtx is run with cancellation: the context is honoured between cache
// probe and simulation start (simulations themselves are short and run to
// completion once started). It is safe for concurrent use; goroutines
// racing on the same key single-flight through runMemo, so every distinct
// (benchmark, config, seed, budget) simulates exactly once per process.
func (p *Params) runCtx(ctx context.Context, bench string, cfg config.Config) (stats.Run, error) {
	cfg.Seed = p.Seed
	key := p.cacheKey(bench, cfg)
	if r, ok := p.cachedRun(key); ok {
		p.Metrics.Counter("experiments.cache.hits").Inc()
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		return stats.Run{}, err
	}
	computed := false
	r, err := runMemo.Do(ctx, key, func(context.Context) (stats.Run, error) {
		computed = true
		if p.Store != nil {
			if r, ok := p.Store.GetRun(key); ok {
				p.Metrics.Counter("experiments.cache.store_hits").Inc()
				return r, nil
			}
		}
		p.Metrics.Counter("experiments.cache.misses").Inc()
		start := time.Now()
		r, err := sim.Run(sim.Options{
			Benchmark:       bench,
			Config:          cfg,
			MaxInstructions: p.Instructions,
			Warmup:          p.Warmup,
		})
		if err != nil {
			return stats.Run{}, fmt.Errorf("experiments: %s: %w", bench, err)
		}
		p.Metrics.Histogram("experiments.sim.wall_ns." + bench).Observe(uint64(time.Since(start)))
		if p.Store != nil {
			p.Store.PutRun(key, r)
			p.Metrics.Counter("experiments.cache.store_fills").Inc()
		}
		return r, nil
	})
	if err != nil {
		return stats.Run{}, err
	}
	if !computed {
		// Another caller's simulation served this key — the cross-request
		// single-flight hit the service layer exposes in /metrics.
		p.Metrics.Counter("experiments.cache.shared").Inc()
	}
	p.storeRun(key, r)
	return r, nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the artifact key: "table1", "table2", "fig1" … "fig16",
	// "extras", "ablation".
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Run regenerates the artifact.
	Run func(p *Params) (*Table, error)
}

// Table aliases report.Table so callers don't need a second import; see
// the report package for rendering.
type Table = reportTable

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts table1, table2, fig1..fig16, extras, ablation.
func orderKey(id string) int {
	switch id {
	case "table1":
		return 0
	case "table2":
		return 1
	case "baselines":
		return 99
	case "extras":
		return 100
	case "ablation":
		return 101
	case "taxonomy":
		return 102
	case "energy":
		return 103
	case "adaptivity":
		return 104
	case "variance":
		return 105
	case "multiprog":
		return 106
	case "aggression":
		return 107
	case "memlat":
		return 108
	case "filters":
		return 109
	case "generators":
		return 110
	case "traces":
		return 111
	case "iprefetch":
		return 112
	}
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return 10 + n
	}
	return 1000
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns every experiment ID in paper order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}
