package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// iprefetchFingerprintSHA256 pins the exact simulated behaviour of each
// registered instruction prefetcher, exactly like the generator zoo's
// fingerprints pin the D-side: the ((paper benchmarks + the checked-in
// ChampSim fixture trace) × {none, pa}) comparison rows at
// Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}, hashed. Any
// change to the fetch model, the L1I wiring, a backend's tables, or
// the I-side filter feedback shows up here. Update a constant ONLY for
// an intentional behaviour change, and say so in the commit message.
var iprefetchFingerprintSHA256 = map[string]string{
	"nextline": "29b2e04a56091a269d0fe25ee0b3e8e15477cf70675ade3ca76d08229378c94f",
	"mana":     "4af73552877102b792e56da1fd5534ac664baa8d1211aefd2d6e5cd37ed0e934",
}

// iprefetchBenchmarks is the fingerprint corpus: the paper's ten
// synthetic workloads plus the real-trace fixture, so the trace-driven
// fetch stream is under the same determinism contract as the live one.
func iprefetchBenchmarks(t *testing.T) []string {
	t.Helper()
	return append(workload.PaperNames(), registerSampleCorpus(t))
}

func iprefetchHash(t *testing.T, ipref string, workers int) string {
	t.Helper()
	p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1,
		Benchmarks: iprefetchBenchmarks(t)}
	rows, err := p.IFilterComparison(context.Background(), []string{ipref}, []string{string(config.FilterPA)}, workers)
	if err != nil {
		t.Fatalf("IFilterComparison(%s, workers=%d): %v", ipref, workers, err)
	}
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal rows: %v", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// TestIPrefetchFingerprintPinned extends the determinism contract to
// the I-side: every registered instruction prefetcher's comparison rows
// hash to the committed value, identically at 1, 4, and 8 workers.
func TestIPrefetchFingerprintPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("per-backend fingerprints are a few seconds; skipped with -short")
	}
	for ipref, want := range iprefetchFingerprintSHA256 {
		ipref, want := ipref, want
		t.Run(ipref, func(t *testing.T) {
			for _, workers := range []int{1, 4, 8} {
				if got := iprefetchHash(t, ipref, workers); got != want {
					t.Errorf("ipref=%s workers=%d fingerprint = %s, want %s", ipref, workers, got, want)
				}
			}
		})
	}
}

// TestIPrefetchAliasRunsIdentical pins the alias contract from the
// frontend registry: a simulation configured through the
// "fetch-directed" alias must produce byte-for-byte the stats of the
// canonical "nextline" kind.
func TestIPrefetchAliasRunsIdentical(t *testing.T) {
	run := func(kind config.IPrefetchKind) stats.Run {
		t.Helper()
		p := &Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
		r, err := p.run("mcf", config.Default().WithIPrefetch(kind))
		if err != nil {
			t.Fatalf("run(%s): %v", kind, err)
		}
		return r
	}
	alias, canon := run(config.IPrefetchFDIPAlias), run(config.IPrefetchNextLine)
	aj, _ := json.Marshal(alias)
	cj, _ := json.Marshal(canon)
	if string(aj) != string(cj) {
		t.Errorf("alias %q diverged from %q:\nalias: %s\ncanon: %s",
			config.IPrefetchFDIPAlias, config.IPrefetchNextLine, aj, cj)
	}
}
