// Parallel pre-warming of the experiment cache.
//
// Every simulation is deterministic and independent, so the harness runs
// them concurrently and lets the experiments read memoized results.
// Prewarm enumerates the standard evaluation matrix — every (benchmark,
// config) pair the paper-figure experiments will request — and fills the
// cache through internal/sched's work-stealing pool: jobs are ordered
// longest-first by the per-benchmark wall-time histograms the harness
// records under "experiments.sim.wall_ns.<bench>", dealt into per-worker
// deques, and rebalanced by stealing. Results land in the cache under
// the cache lock; determinism of the final cache state is independent of
// worker count and steal order (see TestPrewarmParallelDeterminism).
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// cacheMu guards Params.cache. It is package-level rather than per-Params
// because Params is copied by value in places; all Params sharing a cache
// map share the zero-allocation global lock. Contention is irrelevant at
// simulation granularity (milliseconds per critical section).
var cacheMu sync.Mutex

// cachedRun is the synchronized read side of the memo cache.
func (p *Params) cachedRun(key string) (stats.Run, bool) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p.cache == nil {
		return stats.Run{}, false
	}
	r, ok := p.cache[key]
	return r, ok
}

// storeRun is the synchronized write side.
func (p *Params) storeRun(key string, r stats.Run) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p.cache == nil {
		p.cache = make(map[string]stats.Run)
	}
	p.cache[key] = r
}

// workItem is one simulation of the standard matrix.
type workItem struct {
	bench string
	cfg   config.Config
}

// standardMatrix enumerates every (benchmark, config) pair the
// paper-figure experiments request: the three-filter triples at 8KB and
// 32KB, the no-prefetch Table 2 runs, the table-size and port sweeps, the
// buffer schemes, and the 16KB comparison.
func (p *Params) standardMatrix() []workItem {
	var items []workItem
	add := func(cfg config.Config) {
		for _, b := range p.benchmarks() {
			items = append(items, workItem{bench: b, cfg: cfg})
		}
	}
	// Table 2: prefetch off.
	add(sim.NoPrefetchConfig(config.Default()))
	// Figures 1-9: filter triples on both cache sizes.
	for _, base := range []config.Config{config.Default8K(), config.Default32K()} {
		for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA, config.FilterPC} {
			add(base.WithFilter(kind))
		}
	}
	// Figures 10-12: table-size sweep (4096 already covered by the triple).
	for _, size := range tableSizes {
		add(config.Default().WithFilter(config.FilterPA).WithTableEntries(size))
	}
	// Figures 13-14: port sweep (3 ports covered above).
	for _, ports := range portCounts {
		add(config.Default().WithFilter(config.FilterPA).WithL1Ports(ports))
	}
	// Figures 15-16: buffer schemes.
	for _, s := range bufferSchemes {
		add(config.Default().WithFilter(s.kind).WithPrefetchBuffer(s.buffer))
	}
	// §5.2.1: 16KB comparison and the adaptive filter.
	add(config.Default16K().WithFilter(config.FilterNone))
	add(config.Default().WithFilter(config.FilterAdaptive))
	return items
}

// costModel builds the longest-runs-first estimator for the scheduler
// from whatever per-benchmark wall-time history the registry holds. With
// no registry (or no history yet) every job costs the same and sharding
// falls back to deterministic key order.
func (p *Params) costModel() sched.CostModel {
	return sched.CostFromSnapshot(p.Metrics.Snapshot(), "experiments.sim.wall_ns.", 1)
}

// Prewarm runs the standard matrix concurrently with the given number of
// workers (<=0 selects GOMAXPROCS) and fills the cache. See PrewarmCtx.
func (p *Params) Prewarm(workers int) error {
	return p.PrewarmCtx(context.Background(), workers)
}

// PrewarmCtx is Prewarm with cancellation: when ctx expires, queued
// simulations are abandoned (the cache keeps whatever completed) and the
// context error is reported alongside any simulation failures. Every
// failure is collected and returned joined (errors.Join), sorted by
// message so the report is deterministic regardless of steal order.
func (p *Params) PrewarmCtx(ctx context.Context, workers int) error {
	start := time.Now()
	items := p.standardMatrix()

	// Deduplicate by cache key so each simulation is scheduled exactly
	// once (sched single-flights duplicate keys anyway; deduplicating
	// here keeps the job count honest for telemetry).
	seen := make(map[string]workItem, len(items))
	order := make([]string, 0, len(items))
	for _, it := range items {
		key := p.cacheKey(it.bench, it.cfg)
		if _, dup := seen[key]; !dup {
			if _, hit := p.cachedRun(key); !hit {
				seen[key] = it
				order = append(order, key)
			}
		}
	}

	cost := p.costModel()
	jobs := make([]sched.Job, 0, len(seen))
	for _, key := range order {
		it := seen[key]
		jobs = append(jobs, sched.Job{
			Key:  key,
			Cost: cost(it.bench),
			Run: func(ctx context.Context) (any, error) {
				_, err := p.runCtx(ctx, it.bench, it.cfg)
				return nil, err
			},
		})
	}

	results, ctxErr := sched.Run(ctx, jobs, sched.Options{Workers: workers, Metrics: p.Metrics})

	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}

	p.Metrics.Counter("experiments.prewarm.sims").Add(uint64(len(seen)))
	p.Metrics.Counter("experiments.prewarm.errors").Add(uint64(len(errs)))
	p.Metrics.Histogram("experiments.prewarm.wall_ns").Observe(uint64(time.Since(start)))

	if ctxErr != nil {
		// Unstarted jobs already report the context error; append it
		// BEFORE sorting so dedupJoin sees the copies together no matter
		// what other failure messages sort between them.
		errs = append(errs, ctxErr)
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return dedupJoin(errs)
}

// dedupJoin joins errors with duplicate messages collapsed globally (the
// cancellation sweep stamps every unstarted job with the same ctx error,
// and those copies need not sort adjacent to the appended original).
func dedupJoin(errs []error) error {
	seen := make(map[string]bool, len(errs))
	out := errs[:0]
	for _, e := range errs {
		if seen[e.Error()] {
			continue
		}
		seen[e.Error()] = true
		out = append(out, e)
	}
	return errors.Join(out...)
}

// Fingerprint serializes every cached run in sorted key order — a
// byte-exact digest of the harness state. Two Prewarm invocations that
// are deterministic and complete (any worker count) must produce
// identical fingerprints.
func (p *Params) Fingerprint() []byte {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	keys := make([]string, 0, len(p.cache))
	for k := range p.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
		b, err := json.Marshal(p.cache[k])
		if err != nil {
			// stats.Run is plain data; Marshal cannot fail in practice.
			buf.WriteString("marshal error: " + err.Error())
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// CachedRuns reports how many simulations the cache currently holds.
func (p *Params) CachedRuns() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(p.cache)
}
