// Parallel pre-warming of the experiment cache.
//
// Every simulation is deterministic and independent, so the harness can
// run them concurrently and let the experiments read memoized results.
// Prewarm enumerates the standard evaluation matrix — every (benchmark,
// config) pair the paper-figure experiments will request — and fills the
// cache with a bounded worker pool, following the fixed-worker-pool idiom
// (share memory by communicating: jobs flow down a channel, results are
// installed under the cache lock).
package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// cacheMu guards Params.cache. It is package-level rather than per-Params
// because Params is copied by value in places; all Params sharing a cache
// map share the zero-allocation global lock. Contention is irrelevant at
// simulation granularity (milliseconds per critical section).
var cacheMu sync.Mutex

// cachedRun is the synchronized read side of the memo cache.
func (p *Params) cachedRun(key string) (stats.Run, bool) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p.cache == nil {
		return stats.Run{}, false
	}
	r, ok := p.cache[key]
	return r, ok
}

// storeRun is the synchronized write side.
func (p *Params) storeRun(key string, r stats.Run) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p.cache == nil {
		p.cache = make(map[string]stats.Run)
	}
	p.cache[key] = r
}

// workItem is one simulation of the standard matrix.
type workItem struct {
	bench string
	cfg   config.Config
}

// standardMatrix enumerates every (benchmark, config) pair the
// paper-figure experiments request: the three-filter triples at 8KB and
// 32KB, the no-prefetch Table 2 runs, the table-size and port sweeps, the
// buffer schemes, and the 16KB comparison.
func (p *Params) standardMatrix() []workItem {
	var items []workItem
	add := func(cfg config.Config) {
		for _, b := range p.benchmarks() {
			items = append(items, workItem{bench: b, cfg: cfg})
		}
	}
	// Table 2: prefetch off.
	add(sim.NoPrefetchConfig(config.Default()))
	// Figures 1-9: filter triples on both cache sizes.
	for _, base := range []config.Config{config.Default8K(), config.Default32K()} {
		for _, kind := range []config.FilterKind{config.FilterNone, config.FilterPA, config.FilterPC} {
			add(base.WithFilter(kind))
		}
	}
	// Figures 10-12: table-size sweep (4096 already covered by the triple).
	for _, size := range tableSizes {
		add(config.Default().WithFilter(config.FilterPA).WithTableEntries(size))
	}
	// Figures 13-14: port sweep (3 ports covered above).
	for _, ports := range portCounts {
		add(config.Default().WithFilter(config.FilterPA).WithL1Ports(ports))
	}
	// Figures 15-16: buffer schemes.
	for _, s := range bufferSchemes {
		add(config.Default().WithFilter(s.kind).WithPrefetchBuffer(s.buffer))
	}
	// §5.2.1: 16KB comparison and the adaptive filter.
	add(config.Default16K().WithFilter(config.FilterNone))
	add(config.Default().WithFilter(config.FilterAdaptive))
	return items
}

// Prewarm runs the standard matrix concurrently with the given number of
// workers (<=0 selects GOMAXPROCS) and fills the cache. Every failure is
// collected and returned joined (errors.Join), sorted by message so the
// report is deterministic regardless of worker scheduling; the cache
// keeps whatever completed successfully.
func (p *Params) Prewarm(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	items := p.standardMatrix()

	// Deduplicate by cache key so each simulation runs exactly once.
	seen := make(map[string]workItem, len(items))
	for _, it := range items {
		cfg := it.cfg
		cfg.Seed = p.Seed
		key := p.cacheKey(it.bench, cfg)
		if _, dup := seen[key]; !dup {
			if _, hit := p.cachedRun(key); !hit {
				seen[key] = it
			}
		}
	}

	jobs := make(chan workItem)
	var (
		errMu sync.Mutex
		errs  []error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				if _, err := p.run(it.bench, it.cfg); err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
			}
		}()
	}
	for _, it := range seen {
		jobs <- it
	}
	close(jobs)
	wg.Wait()

	p.Metrics.Counter("experiments.prewarm.sims").Add(uint64(len(seen)))
	p.Metrics.Counter("experiments.prewarm.errors").Add(uint64(len(errs)))
	p.Metrics.Histogram("experiments.prewarm.wall_ns").Observe(uint64(time.Since(start)))

	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errors.Join(errs...)
}

// Fingerprint serializes every cached run in sorted key order — a
// byte-exact digest of the harness state. Two Prewarm invocations that
// are deterministic and complete (any worker count) must produce
// identical fingerprints.
func (p *Params) Fingerprint() []byte {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	keys := make([]string, 0, len(p.cache))
	for k := range p.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
		b, err := json.Marshal(p.cache[k])
		if err != nil {
			// stats.Run is plain data; Marshal cannot fail in practice.
			buf.WriteString("marshal error: " + err.Error())
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// CachedRuns reports how many simulations the cache currently holds.
func (p *Params) CachedRuns() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(p.cache)
}
