// The prefetch queue (Table 1: 64 entries). Accepted prefetches wait here
// and contend with demand accesses for the L1 cache ports; the queue also
// performs the duplicate squashing the paper assumes ("all duplicate
// prefetches are squashed automatically with no penalty").
package prefetch

import "fmt"

// QueuedCandidate is a Candidate plus the cycle it entered the queue, so
// the port arbiter can reason about staleness.
type QueuedCandidate struct {
	Candidate
	EnqueueCycle uint64
}

// Queue is a bounded FIFO of pending prefetches with duplicate squashing.
//
// Duplicate lookup scans addrs, a dense ring of the queued line
// addresses that mirrors buf slot-for-slot. At hardware-realistic
// capacities (Table 1: 64 entries) a linear scan over a packed []uint64
// beats a map: no hashing on the simulator's hot enqueue/squash path, no
// per-entry heap allocation, and the whole mirror fits in a few host
// cache lines. Squashing also guarantees each address appears at most
// once, so the mirror needs no occurrence counting.
type Queue struct {
	buf   []QueuedCandidate
	addrs []uint64 // addrs[i] == buf[i].LineAddr for occupied slots
	head  int
	tail  int
	count int

	Enqueued  uint64
	Squashed  uint64 // duplicates dropped
	Overflows uint64 // dropped because the queue was full
	Dequeued  uint64
}

// NewQueue builds a queue with the given capacity.
func NewQueue(capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("prefetch: queue capacity must be positive, got %d", capacity)
	}
	return &Queue{
		buf:   make([]QueuedCandidate, capacity),
		addrs: make([]uint64, capacity),
	}, nil
}

// Len returns the number of queued prefetches.
func (q *Queue) Len() int { return q.count }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Contains reports whether a prefetch for the line is already queued.
// It scans only the occupied ring window, in (up to) two contiguous runs
// so the inner loops are simple range scans with no per-element modulo.
//
//pflint:hotpath
func (q *Queue) Contains(lineAddr uint64) bool {
	if q.head+q.count <= len(q.addrs) {
		for _, a := range q.addrs[q.head : q.head+q.count] {
			if a == lineAddr {
				return true
			}
		}
		return false
	}
	for _, a := range q.addrs[q.head:] {
		if a == lineAddr {
			return true
		}
	}
	for _, a := range q.addrs[:q.tail] {
		if a == lineAddr {
			return true
		}
	}
	return false
}

// Enqueue adds a candidate at cycle now. Duplicates of queued lines are
// squashed; a full queue drops the candidate. Both outcomes return false.
//
//pflint:hotpath
func (q *Queue) Enqueue(c Candidate, now uint64) bool {
	if q.Contains(c.LineAddr) {
		q.Squashed++
		return false
	}
	if q.count == len(q.buf) {
		q.Overflows++
		return false
	}
	q.buf[q.tail] = QueuedCandidate{Candidate: c, EnqueueCycle: now}
	q.addrs[q.tail] = c.LineAddr
	q.tail = (q.tail + 1) % len(q.buf)
	q.count++
	q.Enqueued++
	return true
}

// Front returns the oldest queued prefetch without removing it.
func (q *Queue) Front() (QueuedCandidate, bool) {
	if q.count == 0 {
		return QueuedCandidate{}, false
	}
	return q.buf[q.head], true
}

// Dequeue removes and returns the oldest queued prefetch.
//
//pflint:hotpath
func (q *Queue) Dequeue() (QueuedCandidate, bool) {
	if q.count == 0 {
		return QueuedCandidate{}, false
	}
	c := q.buf[q.head]
	q.buf[q.head] = QueuedCandidate{}
	q.addrs[q.head] = 0 // keep the mirror in lockstep: no ghost line addresses
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.Dequeued++
	return c, true
}

// Drain empties the queue, returning the remaining candidates in order.
func (q *Queue) Drain() []QueuedCandidate {
	out := make([]QueuedCandidate, 0, q.count)
	for {
		c, ok := q.Dequeue()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}
