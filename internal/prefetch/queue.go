// The prefetch queue (Table 1: 64 entries). Accepted prefetches wait here
// and contend with demand accesses for the L1 cache ports; the queue also
// performs the duplicate squashing the paper assumes ("all duplicate
// prefetches are squashed automatically with no penalty").
package prefetch

import "fmt"

// QueuedCandidate is a Candidate plus the cycle it entered the queue, so
// the port arbiter can reason about staleness.
type QueuedCandidate struct {
	Candidate
	EnqueueCycle uint64
}

// Queue is a bounded FIFO of pending prefetches with O(1) duplicate lookup.
type Queue struct {
	buf      []QueuedCandidate
	head     int
	tail     int
	count    int
	resident map[uint64]int // lineAddr -> occurrences in queue

	Enqueued  uint64
	Squashed  uint64 // duplicates dropped
	Overflows uint64 // dropped because the queue was full
	Dequeued  uint64
}

// NewQueue builds a queue with the given capacity.
func NewQueue(capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("prefetch: queue capacity must be positive, got %d", capacity)
	}
	return &Queue{
		buf:      make([]QueuedCandidate, capacity),
		resident: make(map[uint64]int, capacity),
	}, nil
}

// Len returns the number of queued prefetches.
func (q *Queue) Len() int { return q.count }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Contains reports whether a prefetch for the line is already queued.
func (q *Queue) Contains(lineAddr uint64) bool { return q.resident[lineAddr] > 0 }

// Enqueue adds a candidate at cycle now. Duplicates of queued lines are
// squashed; a full queue drops the candidate. Both outcomes return false.
func (q *Queue) Enqueue(c Candidate, now uint64) bool {
	if q.Contains(c.LineAddr) {
		q.Squashed++
		return false
	}
	if q.count == len(q.buf) {
		q.Overflows++
		return false
	}
	q.buf[q.tail] = QueuedCandidate{Candidate: c, EnqueueCycle: now}
	q.tail = (q.tail + 1) % len(q.buf)
	q.count++
	q.resident[c.LineAddr]++
	q.Enqueued++
	return true
}

// Front returns the oldest queued prefetch without removing it.
func (q *Queue) Front() (QueuedCandidate, bool) {
	if q.count == 0 {
		return QueuedCandidate{}, false
	}
	return q.buf[q.head], true
}

// Dequeue removes and returns the oldest queued prefetch.
func (q *Queue) Dequeue() (QueuedCandidate, bool) {
	if q.count == 0 {
		return QueuedCandidate{}, false
	}
	c := q.buf[q.head]
	q.buf[q.head] = QueuedCandidate{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	if n := q.resident[c.LineAddr]; n <= 1 {
		delete(q.resident, c.LineAddr)
	} else {
		q.resident[c.LineAddr] = n - 1
	}
	q.Dequeued++
	return c, true
}

// Drain empties the queue, returning the remaining candidates in order.
func (q *Queue) Drain() []QueuedCandidate {
	out := make([]QueuedCandidate, 0, q.count)
	for {
		c, ok := q.Dequeue()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}
