// Correlation-based prefetching (Charney & Reeves, the paper's reference
// [2]): "keeps prior L1 cache miss addresses and triggers prefetches by
// correlating subsequent misses to the history" (§1.1).
//
// The implementation is the classic pair-correlation table: a
// set-associative table keyed by miss line address whose entry holds the
// line that missed *next* last time. On a miss to A, the predictor looks
// up A; a hit on (A → B) prefetches B. Every miss also updates the entry
// of the previous miss, chaining the miss stream into pairs. This is the
// third hardware prefetcher family the paper names, completing the
// NSP/SDP/stride/correlation set, and it is exercised by the correlation
// ablation row.
package prefetch

import "fmt"

// corrEntry is one correlation pair.
type corrEntry struct {
	valid bool
	tag   uint64
	next  uint64 // the line that missed after this one last time
	lru   uint64
}

// Correlation is the pair-correlation miss prefetcher.
type Correlation struct {
	sets    [][]corrEntry
	setMask uint64
	tick    uint64

	lastMiss  uint64
	lastValid bool

	Triggers uint64
	Updates  uint64
}

// NewCorrelation builds a correlation table with the given power-of-two
// set count and associativity.
func NewCorrelation(sets, assoc int) (*Correlation, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("prefetch: correlation sets must be a positive power of two, got %d", sets)
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("prefetch: correlation associativity must be positive, got %d", assoc)
	}
	c := &Correlation{sets: make([][]corrEntry, sets), setMask: uint64(sets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]corrEntry, assoc)
	}
	return c, nil
}

func (c *Correlation) split(lineAddr uint64) (uint64, uint64) {
	return lineAddr & c.setMask, lineAddr >> 1 // full-ish tag; cheap
}

// lookup returns the correlated next line for a miss address.
func (c *Correlation) lookup(lineAddr uint64) (uint64, bool) {
	si, tag := c.split(lineAddr)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.tick++
			set[i].lru = c.tick
			return set[i].next, true
		}
	}
	return 0, false
}

// update records (prev → next) in the table.
func (c *Correlation) update(prev, next uint64) {
	si, tag := c.split(prev)
	set := c.sets[si]
	c.tick++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].next = next
			set[i].lru = c.tick
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = corrEntry{valid: true, tag: tag, next: next, lru: c.tick}
	c.Updates++
}

// Name implements Prefetcher.
func (c *Correlation) Name() string { return "corr" }

// Observe implements Prefetcher: the predictor watches the L1 miss
// stream only.
func (c *Correlation) Observe(ev Event, emit func(Candidate)) {
	if ev.L1Hit {
		return
	}
	// Chain the miss stream: the previous miss now knows its successor.
	if c.lastValid && c.lastMiss != ev.LineAddr {
		c.update(c.lastMiss, ev.LineAddr)
	}
	c.lastMiss = ev.LineAddr
	c.lastValid = true

	if next, ok := c.lookup(ev.LineAddr); ok && next != ev.LineAddr {
		c.Triggers++
		emit(Candidate{LineAddr: next, TriggerPC: ev.PC, Source: "corr"})
	}
}
