package prefetch

import "testing"

// ghbMiss drives one L1-missing access through Observe, discarding any
// emitted candidates unless a sink is given.
func ghbMiss(g *GHB, pc, line uint64, sink *[]Candidate) {
	emit := func(Candidate) {}
	if sink != nil {
		emit = func(c Candidate) { *sink = append(*sink, c) }
	}
	g.Observe(Event{PC: pc, LineAddr: line}, emit)
}

// TestGHBReconstructChain pins the link-chain walk: misses from two PCs
// interleave in the global ring, yet each PC's chain reconstructs only
// its own misses, newest-first.
func TestGHBReconstructChain(t *testing.T) {
	g, err := NewGHB(4, 8, 1) // 16-entry ring, 256-slot index
	if err != nil {
		t.Fatal(err)
	}
	pcA, pcB := uint64(0x400), uint64(0x800)
	if pcIndex(pcA)&g.idxMask == pcIndex(pcB)&g.idxMask {
		t.Fatalf("test PCs collide in the index table; pick different PCs")
	}

	// Interleave: A misses 10,20,30,40 with B misses 7,8,9 in between.
	ghbMiss(g, pcA, 10, nil)
	ghbMiss(g, pcB, 7, nil)
	ghbMiss(g, pcA, 20, nil)
	ghbMiss(g, pcB, 8, nil)
	ghbMiss(g, pcA, 30, nil)
	ghbMiss(g, pcB, 9, nil)
	ghbMiss(g, pcA, 40, nil)

	depth := g.reconstruct(g.idxPos[pcIndex(pcA)&g.idxMask])
	if depth != 4 {
		t.Fatalf("PC A chain depth = %d, want 4", depth)
	}
	for i, want := range []uint64{40, 30, 20, 10} {
		if g.chain[i] != want {
			t.Fatalf("chain[%d] = %d, want %d (newest-first)", i, g.chain[i], want)
		}
	}
	depth = g.reconstruct(g.idxPos[pcIndex(pcB)&g.idxMask])
	if depth != 3 {
		t.Fatalf("PC B chain depth = %d, want 3", depth)
	}
	for i, want := range []uint64{9, 8, 7} {
		if g.chain[i] != want {
			t.Fatalf("chain[%d] = %d, want %d (newest-first)", i, g.chain[i], want)
		}
	}
}

// TestGHBReconstructStopsAtOverwrittenEntries pins ring-overwrite
// validity: once the FIFO wraps, links that point at recycled positions
// are recognised as stale and terminate the walk instead of
// reconstructing another PC's (or a newer) miss.
func TestGHBReconstructStopsAtOverwrittenEntries(t *testing.T) {
	g, err := NewGHB(2, 8, 1) // tiny 4-entry ring forces overwrites
	if err != nil {
		t.Fatal(err)
	}
	pcA, pcB := uint64(0x400), uint64(0x800)

	// Two A misses, then four B misses that overwrite the entire ring.
	ghbMiss(g, pcA, 100, nil)
	ghbMiss(g, pcA, 200, nil)
	for i := uint64(0); i < 4; i++ {
		ghbMiss(g, pcB, 1000+i, nil)
	}

	// A's stored position now points at a recycled slot: depth 0.
	if depth := g.reconstruct(g.idxPos[pcIndex(pcA)&g.idxMask]); depth != 0 {
		t.Fatalf("stale chain depth = %d, want 0 after ring overwrite", depth)
	}
	// B's newest entry is valid, but its oldest link left the ring, so
	// the walk recovers exactly the ring's worth of B misses.
	if depth := g.reconstruct(g.idxPos[pcIndex(pcB)&g.idxMask]); depth != 4 {
		t.Fatalf("live chain depth = %d, want 4 (full ring)", depth)
	}
	for i, want := range []uint64{1003, 1002, 1001, 1000} {
		if g.chain[i] != want {
			t.Fatalf("chain[%d] = %d, want %d", i, g.chain[i], want)
		}
	}
}

// TestGHBNoSelfLinkAtRingCapacity pins the link-setup staleness check:
// when a PC's previous miss is exactly `size` pushes old, it occupies
// the very ring slot the new push overwrites, so the stored link must
// be cleared rather than left pointing at the new entry itself.
func TestGHBNoSelfLinkAtRingCapacity(t *testing.T) {
	g, err := NewGHB(2, 8, 1) // 4-entry ring
	if err != nil {
		t.Fatal(err)
	}
	pcA := uint64(0x400)
	ghbMiss(g, pcA, 100, nil) // position 0
	for i, pc := range []uint64{0x800, 0xc00, 0x1000} {
		ghbMiss(g, pc, 1000+uint64(i), nil) // positions 1..3
	}
	// Precondition: the fillers must not have evicted A's index entry.
	if g.idxTags[pcIndex(pcA)&g.idxMask] != pcA {
		t.Fatalf("filler PCs collided with A in the index table; pick different PCs")
	}

	// A's next miss reuses position 0 while its previous miss (also
	// position 0, exactly size pushes old) is being overwritten.
	ghbMiss(g, pcA, 200, nil)
	if g.links[0] != 0 {
		t.Fatalf("links[0] = %d, want 0 (self-referential link to the overwritten slot)", g.links[0])
	}
	// The chain from A's newest miss holds only that miss.
	if depth := g.reconstruct(g.idxPos[pcIndex(pcA)&g.idxMask]); depth != 1 || g.chain[0] != 200 {
		t.Fatalf("chain depth = %d chain[0] = %d, want 1, 200", depth, g.chain[0])
	}
}

// TestGHBDegreeProperty drives the accuracy gate through both regimes
// and asserts the degree contract: the degree never leaves
// [1, maxDegree], escalates only under sustained accuracy, and once the
// useful counters fall it de-escalates monotonically — one step per
// closed window — back to 1.
func TestGHBDegreeProperty(t *testing.T) {
	const maxDeg = 4
	g, err := NewGHB(10, 10, maxDeg)
	if err != nil {
		t.Fatal(err)
	}

	// Regime 1: a perfect unit stride. Every prediction is demanded a
	// step later, so accuracy stays ~100% and the degree must climb to
	// maxDegree without ever exceeding it.
	line := uint64(1 << 20)
	for i := 0; i < 2000; i++ {
		ghbMiss(g, 0x400, line, nil)
		line++
		if d := g.Degree(); d < 1 || d > maxDeg {
			t.Fatalf("degree %d left [1,%d] during accurate regime", d, maxDeg)
		}
	}
	if g.Degree() != maxDeg {
		t.Fatalf("degree = %d after accurate stride, want max %d", g.Degree(), maxDeg)
	}
	if g.Escalations == 0 || g.Useful == 0 {
		t.Fatalf("accurate regime recorded Escalations=%d Useful=%d, want both > 0", g.Escalations, g.Useful)
	}

	// Regime 2: the recurring delta 1 is always followed by a jump that
	// never repeats, so the fallback single-delta match keeps issuing
	// prefetches (toward the PREVIOUS jump) that are never demanded.
	// Useful counters starve and every closed window must step the
	// degree down by exactly one until it floors at 1.
	usefulBefore := g.Useful
	prevDeg := g.Degree()
	sawDecrease := false
	line = uint64(1 << 30)
	for i := 0; i < 4000; i++ {
		ghbMiss(g, 0x800, line, nil)
		line++ // delta 1: recurs, triggers the fallback match
		ghbMiss(g, 0x800, line, nil)
		line += uint64(1_000_000 + i*64) // unique jump: never predicted, never demanded

		d := g.Degree()
		if d < 1 || d > maxDeg {
			t.Fatalf("degree %d left [1,%d] during useless regime", d, maxDeg)
		}
		if d < prevDeg {
			if prevDeg-d != 1 {
				t.Fatalf("degree fell %d -> %d in one window; de-escalation must be single-step", prevDeg, d)
			}
			sawDecrease = true
		}
		if sawDecrease && d > prevDeg {
			t.Fatalf("degree rose %d -> %d while useful counters were starved", prevDeg, d)
		}
		prevDeg = d
	}
	if g.Degree() != 1 {
		t.Fatalf("degree = %d after useless regime, want floor 1", g.Degree())
	}
	if g.Useful != usefulBefore {
		t.Fatalf("useless regime still recorded %d useful prefetches", g.Useful-usefulBefore)
	}
	if g.DeEscalations < maxDeg-1 {
		t.Fatalf("DeEscalations = %d, want at least %d to fall from max to 1", g.DeEscalations, maxDeg-1)
	}
}
