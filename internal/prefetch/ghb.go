package prefetch

import "fmt"

// GHB is a PC/delta-correlation prefetcher built on a Global History
// Buffer (Nesbit & Smith): misses enter a FIFO ring, an index table
// maps each PC to its newest ring entry, and entries are chained by
// absolute position so a PC's miss history can be reconstructed without
// per-PC storage. Predictions come from matching the newest delta pair
// against the chain's past; the prefetch degree is accuracy-gated by
// useful-prefetch counters over a fixed issue window, escalating only
// while at least a quarter of issued prefetches are demanded.
type GHB struct {
	addrs []uint64
	links []uint32 // previous same-PC position + 1; 0 = end of chain
	size  uint32
	n     uint32 // entries pushed so far; newest is at position n-1

	idxTags []uint64
	idxPos  []uint32 // newest position + 1; 0 = invalid
	idxMask uint64

	issuedTags []uint64
	issuedMask uint64

	degree       int
	maxDegree    int
	windowIssued uint32
	windowUseful uint32

	// Scratch for chain walks, kept on the struct so Observe is
	// allocation-free.
	chain  [ghbChainLen]uint64
	deltas [ghbChainLen - 1]int64

	Triggers      uint64 // candidates emitted
	Useful        uint64 // issued prefetches later demanded
	Escalations   uint64 // degree increases
	DeEscalations uint64 // degree decreases
}

const (
	ghbChainLen    = 12 // miss addresses reconstructed per prediction
	ghbWindow      = 64 // issued prefetches per accuracy window
	ghbAccuracyMul = 4  // escalate while useful*4 >= issued (≥ 25%)
)

// NewGHB builds a GHB with 2^bufLog2 history entries, a 2^indexLog2 PC
// index table, and an accuracy-gated degree in [1, maxDegree].
func NewGHB(bufLog2, indexLog2, maxDegree int) (*GHB, error) {
	if bufLog2 < 1 || bufLog2 > 30 {
		return nil, fmt.Errorf("prefetch: ghb log2 budget must be in [1,30], got %d", bufLog2)
	}
	if indexLog2 < 1 || indexLog2 > 30 {
		return nil, fmt.Errorf("prefetch: ghb index log2 budget must be in [1,30], got %d", indexLog2)
	}
	if maxDegree < 1 {
		return nil, fmt.Errorf("prefetch: ghb max degree must be positive, got %d", maxDegree)
	}
	bufN := uint32(1) << bufLog2
	idxN := 1 << indexLog2
	return &GHB{
		addrs:      make([]uint64, bufN),
		links:      make([]uint32, bufN),
		size:       bufN,
		idxTags:    make([]uint64, idxN),
		idxPos:     make([]uint32, idxN),
		idxMask:    uint64(idxN - 1),
		issuedTags: make([]uint64, idxN),
		issuedMask: uint64(idxN - 1),
		degree:     1,
		maxDegree:  maxDegree,
	}, nil
}

// Name implements Prefetcher.
func (g *GHB) Name() string { return "ghb" }

// Degree is the current accuracy-gated prefetch degree, in
// [1, maxDegree].
func (g *GHB) Degree() int { return g.degree }

// Observe implements Prefetcher: every access probes the issued table
// for usefulness accounting; only L1 misses enter the history buffer
// and can trigger predictions.
func (g *GHB) Observe(ev Event, emit func(Candidate)) {
	g.probeIssued(ev.LineAddr)
	if ev.L1Hit {
		return
	}

	// Push the miss and chain it to this PC's previous miss.
	idx := pcIndex(ev.PC) & g.idxMask
	var prev uint32
	if g.idxTags[idx] == ev.PC {
		prev = g.idxPos[idx]
	}
	pos := g.n % g.size
	g.addrs[pos] = ev.LineAddr
	// Strict < here, not valid()'s <=: before g.n advances, an entry at
	// distance exactly size lives in the very ring slot this push
	// overwrites, so linking to it would store a self-referential link.
	if prev != 0 && g.n-(prev-1) < g.size {
		g.links[pos] = prev
	} else {
		g.links[pos] = 0
	}
	g.n++
	g.idxTags[idx] = ev.PC
	g.idxPos[idx] = g.n // position n-1, stored +1

	depth := g.reconstruct(g.n)
	if depth < 4 {
		return
	}
	for i := 0; i < depth-1; i++ {
		g.deltas[i] = int64(g.chain[i]) - int64(g.chain[i+1])
	}
	// Match the newest delta pair against its most recent past
	// occurrence; the deltas that followed it predict what comes next.
	// When no pair recurs, fall back to the newest single delta — the
	// weaker correlation still captures streams whose gaps vary.
	match := -1
	for i := 2; i < depth-2; i++ {
		if g.deltas[i] == g.deltas[0] && g.deltas[i+1] == g.deltas[1] {
			match = i
			break
		}
	}
	if match < 0 {
		for i := 1; i < depth-1; i++ {
			if g.deltas[i] == g.deltas[0] {
				match = i
				break
			}
		}
	}
	if match >= 0 {
		addr := int64(ev.LineAddr)
		for d := 0; d < g.degree && match-1-d >= 0; d++ {
			addr += g.deltas[match-1-d]
			if addr <= 0 {
				break
			}
			tgt := uint64(addr)
			g.Triggers++
			g.issuedTags[tgt&g.issuedMask] = tgt
			g.windowIssued++
			emit(Candidate{LineAddr: tgt, TriggerPC: ev.PC, Source: "ghb"})
		}
	}
	g.gateDegree()
}

// valid reports whether a stored position+1 still points inside the
// ring; entries older than size have been overwritten.
//
//pflint:hotpath
func (g *GHB) valid(p1 uint32) bool {
	return p1 != 0 && g.n-(p1-1) <= g.size
}

// reconstruct walks the same-PC link chain starting from stored
// position p1 (position+1), filling g.chain newest-first, and returns
// how many addresses were recovered.
//
//pflint:hotpath
func (g *GHB) reconstruct(p1 uint32) int {
	depth := 0
	for depth < ghbChainLen && g.valid(p1) {
		pos := (p1 - 1) % g.size
		g.chain[depth] = g.addrs[pos]
		depth++
		p1 = g.links[pos]
	}
	return depth
}

// probeIssued checks whether a demand access hits a line we prefetched;
// hits feed the accuracy window that gates the degree.
//
//pflint:hotpath
func (g *GHB) probeIssued(line uint64) {
	idx := line & g.issuedMask
	if g.issuedTags[idx] != line || line == 0 {
		return
	}
	g.issuedTags[idx] = 0
	g.Useful++
	g.windowUseful++
}

// gateDegree closes each accuracy window: escalate the degree while at
// least 1/ghbAccuracyMul of issued prefetches proved useful, otherwise
// de-escalate, never leaving [1, maxDegree].
//
//pflint:hotpath
func (g *GHB) gateDegree() {
	if g.windowIssued < ghbWindow {
		return
	}
	if g.windowUseful*ghbAccuracyMul >= g.windowIssued {
		if g.degree < g.maxDegree {
			g.degree++
			g.Escalations++
		}
	} else if g.degree > 1 {
		g.degree--
		g.DeEscalations++
	}
	g.windowIssued = 0
	g.windowUseful = 0
}
