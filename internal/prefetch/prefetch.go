// Package prefetch implements the aggressive prefetch generators the
// pollution filter polices, and the prefetch queue through which accepted
// prefetches contend for L1 ports.
//
// Two hardware prefetchers from the paper are implemented:
//
//   - NSP, tagged next-sequence prefetching (Smith [16]): each L1 line has
//     a tag bit set when the line was prefetched; a demand access that
//     misses the L1 or hits a tagged line triggers a prefetch of the next
//     sequential line.
//   - SDP, shadow directory prefetching (Pomerene et al. [13]): every L2
//     line carries a shadow line address — the next line missed after the
//     resident line was last accessed — plus a confirmation bit recording
//     whether the last shadow prefetch was used.
//
// A reference-prediction-table stride prefetcher (Chen & Baer) is included
// as a design-space extension beyond the paper's evaluation.
package prefetch

import (
	"fmt"

	"repro/internal/cache"
)

// Candidate is a prefetch the generators propose; it flows through the
// pollution filter, then (if allowed) the prefetch queue.
type Candidate struct {
	LineAddr  uint64 // line to prefetch
	TriggerPC uint64 // PC of the instruction that triggered it
	Software  bool   // compiler-inserted prefetch instruction
	Source    string // generator name, for per-source statistics
}

// Event describes one demand access, as seen by the hardware prefetchers.
type Event struct {
	PC          uint64
	LineAddr    uint64
	Cycle       uint64 // cycle the access was made; drives latency-aware generators
	IsStore     bool
	L1Hit       bool
	L1HitTagged bool // hit line had its prefetch tag (PIB) set
	L2Hit       bool // meaningful only when !L1Hit
}

// Prefetcher observes demand accesses and emits candidates.
type Prefetcher interface {
	Name() string
	Observe(ev Event, emit func(Candidate))
}

// NSP is tagged next-sequence prefetching. The tag bit is the L1 line's
// PIB, which the hierarchy reports in Event.L1HitTagged; NSP itself is
// stateless beyond its degree.
type NSP struct {
	degree int

	Triggers uint64
}

// NewNSP builds an NSP issuing `degree` sequential lines per trigger
// (paper: 1).
func NewNSP(degree int) (*NSP, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("prefetch: NSP degree must be positive, got %d", degree)
	}
	return &NSP{degree: degree}, nil
}

// Name implements Prefetcher.
func (n *NSP) Name() string { return "nsp" }

// Observe implements Prefetcher: trigger on an L1 miss or on a hit to a
// tagged (prefetched) line.
func (n *NSP) Observe(ev Event, emit func(Candidate)) {
	if ev.L1Hit && !ev.L1HitTagged {
		return
	}
	n.Triggers++
	for i := 1; i <= n.degree; i++ {
		emit(Candidate{
			LineAddr:  ev.LineAddr + uint64(i),
			TriggerPC: ev.PC,
			Source:    "nsp",
		})
	}
}

// SDP is shadow-directory prefetching. Its per-line state (shadow address,
// shadow-valid, confirmation bit) lives in the L2 cache's line metadata,
// exactly where the paper puts it.
type SDP struct {
	l2 *cache.Cache
	// lastLine is the most recently accessed L2 line; the next L2 miss
	// becomes its shadow.
	lastLine  uint64
	lastValid bool
	// pending associates an issued shadow line with the resident line
	// that predicted it, so a demand reference to the shadow can set the
	// predictor line's confirmation bit. Hardware keeps this association
	// implicitly via the prefetched line's tag — a bounded structure —
	// so the software model uses a direct-mapped table of the same
	// spirit: a colliding insert evicts the older association, exactly
	// as a hardware tag can only remember one owner.
	pending sdpPendingTable

	Triggers  uint64
	Confirmed uint64
}

// sdpPendingLog2 sizes the shadow→owner association table. 2^12 covers
// every line of the Table 1 L2 with headroom; the unbounded map it
// replaces leaked one entry per never-confirmed shadow for the whole
// run (and was flagged by hwbudget/map as unrealizable in hardware).
const sdpPendingLog2 = 12

// sdpPendingTable is a direct-mapped shadow→owner table, indexed by the
// shadow line address's low bits with the full address as tag.
type sdpPendingTable struct {
	shadow []uint64
	owner  []uint64
	valid  []bool
}

func newSDPPendingTable() sdpPendingTable {
	return sdpPendingTable{
		shadow: make([]uint64, 1<<sdpPendingLog2),
		owner:  make([]uint64, 1<<sdpPendingLog2),
		valid:  make([]bool, 1<<sdpPendingLog2),
	}
}

func (t *sdpPendingTable) index(shadow uint64) uint64 {
	return shadow & (1<<sdpPendingLog2 - 1)
}

// put records shadow→owner, evicting whatever association occupied the
// slot (the hardware tag can only remember one owner).
func (t *sdpPendingTable) put(shadow, owner uint64) {
	i := t.index(shadow)
	t.shadow[i], t.owner[i], t.valid[i] = shadow, owner, true
}

// take looks up and invalidates the association for shadow, if present.
func (t *sdpPendingTable) take(shadow uint64) (owner uint64, ok bool) {
	i := t.index(shadow)
	if !t.valid[i] || t.shadow[i] != shadow {
		return 0, false
	}
	t.valid[i] = false
	return t.owner[i], true
}

// NewSDP builds an SDP over the given L2 cache.
func NewSDP(l2 *cache.Cache) (*SDP, error) {
	if l2 == nil {
		return nil, fmt.Errorf("prefetch: SDP requires an L2 cache")
	}
	return &SDP{l2: l2, pending: newSDPPendingTable()}, nil
}

// Name implements Prefetcher.
func (s *SDP) Name() string { return "sdp" }

// Observe implements Prefetcher. Every demand access that reaches the L2
// (i.e. missed the L1) drives the shadow directory.
func (s *SDP) Observe(ev Event, emit func(Candidate)) {
	if ev.L1Hit {
		return // the L2 never sees this access
	}
	// A demand reference to a line that was issued as a shadow prefetch
	// confirms the predictor line's shadow.
	if owner, ok := s.pending.take(ev.LineAddr); ok {
		if line, resident := s.l2.Peek(owner); resident {
			line.Confirm = true
			s.Confirmed++
		}
	}

	if !ev.L2Hit {
		// This is the "next line missed": it becomes the shadow of the
		// previously accessed resident line.
		if s.lastValid {
			if line, resident := s.l2.Peek(s.lastLine); resident {
				if !line.ShadowValid || line.Shadow != ev.LineAddr {
					line.Shadow = ev.LineAddr
					line.ShadowValid = true
					line.Confirm = true // optimistic on a fresh shadow
				}
			}
		}
	} else {
		// Hit in L2: if the resident line has a confirmed shadow, prefetch it.
		if line, resident := s.l2.Peek(ev.LineAddr); resident && line.ShadowValid && line.Confirm {
			s.Triggers++
			line.Confirm = false // must be re-confirmed by an actual use
			s.pending.put(line.Shadow, ev.LineAddr)
			emit(Candidate{
				LineAddr:  line.Shadow,
				TriggerPC: ev.PC,
				Source:    "sdp",
			})
		}
	}
	s.lastLine = ev.LineAddr
	s.lastValid = true
}

// rptState is the 2-bit state machine of a reference prediction table
// entry (Chen & Baer): initial → transient → steady; no-prediction on
// repeated mismatches.
type rptState uint8

const (
	rptInitial rptState = iota
	rptTransient
	rptSteady
	rptNoPred
)

type rptEntry struct {
	valid    bool
	tag      uint64
	lastAddr uint64
	stride   int64
	state    rptState
}

// Stride is a PC-indexed reference prediction table prefetcher.
type Stride struct {
	entries []rptEntry
	mask    uint64

	Triggers uint64
}

// NewStride builds an RPT with the given power-of-two entry count.
func NewStride(entries int) (*Stride, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("prefetch: stride entries must be a positive power of two, got %d", entries)
	}
	return &Stride{entries: make([]rptEntry, entries), mask: uint64(entries - 1)}, nil
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// Observe implements Prefetcher: classic RPT state transitions on every
// demand access; prefetch lastAddr+stride in steady state.
func (s *Stride) Observe(ev Event, emit func(Candidate)) {
	idx := (ev.PC >> 2) & s.mask
	tag := (ev.PC >> 2) >> 12 // disambiguate beyond the index bits
	e := &s.entries[idx]
	if !e.valid || e.tag != tag {
		*e = rptEntry{valid: true, tag: tag, lastAddr: ev.LineAddr, stride: 0, state: rptInitial}
		return
	}
	stride := int64(ev.LineAddr) - int64(e.lastAddr)
	match := stride == e.stride && stride != 0
	switch e.state {
	case rptInitial:
		if match {
			e.state = rptSteady
		} else {
			e.stride = stride
			e.state = rptTransient
		}
	case rptTransient:
		if match {
			e.state = rptSteady
		} else {
			e.stride = stride
			e.state = rptNoPred
		}
	case rptSteady:
		if !match {
			e.state = rptInitial
			e.stride = stride
		}
	case rptNoPred:
		if match {
			e.state = rptTransient
		} else {
			e.stride = stride
		}
	}
	e.lastAddr = ev.LineAddr
	if e.state == rptSteady && e.stride != 0 {
		next := int64(ev.LineAddr) + e.stride
		if next > 0 {
			s.Triggers++
			emit(Candidate{LineAddr: uint64(next), TriggerPC: ev.PC, Source: "stride"})
		}
	}
}

// Composite fans one event out to several prefetchers in order.
type Composite struct {
	//pflint:allow hwbudget/unsized aggregate of already-budgeted generators, fixed at construction and bounded by the enabled-generator count; no table of its own
	parts []Prefetcher
}

// NewComposite combines prefetchers; a nil or empty list is valid and
// generates nothing.
func NewComposite(parts ...Prefetcher) *Composite { return &Composite{parts: parts} }

// Name implements Prefetcher.
func (c *Composite) Name() string { return "composite" }

// Observe implements Prefetcher.
func (c *Composite) Observe(ev Event, emit func(Candidate)) {
	for _, p := range c.parts {
		p.Observe(ev, emit)
	}
}

// Parts exposes the underlying prefetchers.
func (c *Composite) Parts() []Prefetcher { return c.parts }
