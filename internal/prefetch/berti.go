package prefetch

import "fmt"

// pcIndex mixes the whole PC into the low index bits so PCs that differ
// only above a table's index range (unrolled loop copies, inlined call
// sites at regular code strides) do not collide into one direct-mapped
// slot. The constants are the 64-bit finalizer from MurmurHash3.
//
//pflint:hotpath
func pcIndex(pc uint64) uint64 {
	pc ^= pc >> 33
	pc *= 0xff51afd7ed558ccd
	pc ^= pc >> 33
	return pc
}

// Berti is a latency-aware local-delta prefetcher in the style of the
// Berti proposal: a per-PC history table records the recent (line,
// cycle) footprint of each instruction, a reuse-latency table measures
// how long a miss takes to come back, and candidate deltas earn
// confidence only when a prefetch issued that far ahead would have
// arrived in time. A small shadow table remembers issued prefetches so
// later demand uses can be classified useful/timely.
//
// All three tables are log2-sized, direct-mapped, and allocation-free
// on the observe path.
type Berti struct {
	hist    []bertiEntry
	histMsk uint64

	latency latencyTable
	shadow  shadowTable

	// latEst is the integer-EWMA estimate of miss latency in cycles,
	// seeded so early timeliness checks are conservative.
	latEst uint32

	Triggers uint64 // candidates emitted
	Useful   uint64 // issued prefetches later demanded
	Timely   uint64 // useful prefetches that had arrived by the demand
}

const (
	bertiHistLen      = 8   // (line, cycle) pairs kept per PC
	bertiCandLen      = 8   // delta candidates tracked per PC
	bertiConfThresh   = 32  // confidence needed before a delta prefetches
	bertiConfMax      = 255 // 8-bit saturating counters; halved on saturation
	bertiTimelyBonus  = 4   // confidence gain for a timely delta
	bertiLateBonus    = 2   // confidence gain for a covering-but-late delta
	bertiSeedLatency  = 64  // initial latEst before any miss is measured
	bertiLatencyShift = 3   // EWMA weight: latEst += (observed-latEst)>>3
)

// bertiEntry is one per-PC record: a ring of recent accesses plus the
// delta candidates scored against them. Candidates are bit-packed as
// uint32(uint16(delta))<<8 | conf in the SNIPPETS idiom.
type bertiEntry struct {
	tag    uint64
	head   uint8
	count  uint8
	lines  [bertiHistLen]uint64
	cycles [bertiHistLen]uint64
	cand   [bertiCandLen]uint32
}

// latencyTable maps in-flight miss lines to the cycle the miss was
// seen, so the next touch of the line yields its reuse latency.
type latencyTable struct {
	tags   []uint64
	cycles []uint32
	mask   uint64
}

func newLatencyTable(log2 int) latencyTable {
	n := 1 << log2
	return latencyTable{tags: make([]uint64, n), cycles: make([]uint32, n), mask: uint64(n - 1)}
}

// insert records a miss for line at cycle, evicting whatever shared its
// direct-mapped slot.
//
//pflint:hotpath
func (t *latencyTable) insert(line, cycle uint64) {
	idx := line & t.mask
	t.tags[idx] = line
	t.cycles[idx] = uint32(cycle)
}

// take looks up line and, on a hit, removes it and returns the elapsed
// cycles since insert. The subtraction is uint32 so it stays correct
// across cycle-counter wraparound.
//
//pflint:hotpath
func (t *latencyTable) take(line, now uint64) (uint32, bool) {
	idx := line & t.mask
	if t.tags[idx] != line || t.tags[idx] == 0 {
		return 0, false
	}
	t.tags[idx] = 0
	return uint32(now) - t.cycles[idx], true
}

// shadowTable remembers recently issued prefetches: the target line and
// the issue cycle. The cycle is kept at 32 bits so elapsed-time
// classification stays correct for entries that sit far longer than the
// 2^16-cycle horizon a packed 16-bit stamp would allow.
type shadowTable struct {
	tags   []uint64
	cycles []uint32
	mask   uint64
}

func newShadowTable(log2 int) shadowTable {
	n := 1 << log2
	return shadowTable{tags: make([]uint64, n), cycles: make([]uint32, n), mask: uint64(n - 1)}
}

// NewBerti builds a Berti prefetcher with 2^historyLog2 PC entries, a
// 2^latencyLog2 reuse-latency table, and a 2^shadowLog2 shadow table.
func NewBerti(historyLog2, latencyLog2, shadowLog2 int) (*Berti, error) {
	for _, l := range [3]int{historyLog2, latencyLog2, shadowLog2} {
		if l < 1 || l > 30 {
			return nil, fmt.Errorf("prefetch: berti log2 budget must be in [1,30], got %d", l)
		}
	}
	n := 1 << historyLog2
	return &Berti{
		hist:    make([]bertiEntry, n),
		histMsk: uint64(n - 1),
		latency: newLatencyTable(latencyLog2),
		shadow:  newShadowTable(shadowLog2),
		latEst:  bertiSeedLatency,
	}, nil
}

// Name implements Prefetcher.
func (b *Berti) Name() string { return "berti" }

// Observe implements Prefetcher.
func (b *Berti) Observe(ev Event, emit func(Candidate)) {
	now := ev.Cycle

	// Close the latency loop: a touch of a line whose miss is still in
	// the latency table yields one reuse-latency sample. The EWMA step
	// must be signed: a sample below the estimate makes (lat - latEst)
	// negative, and the unsigned subtract-and-logical-shift form wraps
	// it to ~2^29, destroying the estimate.
	if lat, ok := b.latency.take(ev.LineAddr, now); ok {
		b.latEst = uint32(int64(b.latEst) + (int64(lat)-int64(b.latEst))>>bertiLatencyShift)
	}
	if !ev.L1Hit && !ev.L2Hit {
		b.latency.insert(ev.LineAddr, now)
	}

	// Classify issued prefetches the moment demand touches them.
	sIdx := ev.LineAddr & b.shadow.mask
	if b.shadow.tags[sIdx] == ev.LineAddr {
		b.shadow.tags[sIdx] = 0
		b.Useful++
		// uint32 subtraction stays correct across cycle-counter
		// wraparound, exactly like latencyTable.take.
		elapsed := uint32(now) - b.shadow.cycles[sIdx]
		if elapsed >= b.latEst {
			b.Timely++
		}
	}

	// Per-PC training and prediction.
	e := &b.hist[pcIndex(ev.PC)&b.histMsk]
	if e.tag != ev.PC {
		*e = bertiEntry{tag: ev.PC}
	}
	b.train(e, ev.LineAddr, now)

	// Push the access into the entry's history ring.
	e.lines[e.head] = ev.LineAddr
	e.cycles[e.head] = now
	e.head = (e.head + 1) % bertiHistLen
	if e.count < bertiHistLen {
		e.count++
	}

	if delta, ok := b.bestDelta(e); ok {
		next := int64(ev.LineAddr) + int64(delta)
		if next > 0 {
			b.Triggers++
			tgt := uint64(next)
			i := tgt & b.shadow.mask
			b.shadow.tags[i] = tgt
			b.shadow.cycles[i] = uint32(now)
			emit(Candidate{LineAddr: tgt, TriggerPC: ev.PC, Source: "berti"})
		}
	}
}

// train scores the deltas from every recorded prior access of this PC
// to the current line. A delta is timely when a prefetch issued at the
// prior access would have arrived (prior cycle + latency estimate) by
// now; timely deltas earn more confidence. On saturation every
// candidate is halved, so stale deltas age out.
//
//pflint:hotpath
func (b *Berti) train(e *bertiEntry, line, now uint64) {
	for j := uint8(0); j < e.count; j++ {
		slot := (e.head + bertiHistLen - 1 - j) % bertiHistLen
		delta := int64(line) - int64(e.lines[slot])
		if delta == 0 || delta < -32768 || delta > 32767 {
			continue
		}
		bonus := uint32(bertiLateBonus)
		if e.cycles[slot]+uint64(b.latEst) <= now {
			bonus = bertiTimelyBonus
		}
		packed := uint32(uint16(int16(delta))) << 8

		// Find the candidate tracking this delta, or the weakest slot.
		match := -1
		weakest := 0
		for k := 0; k < bertiCandLen; k++ {
			if e.cand[k]&^0xff == packed && e.cand[k] != 0 {
				match = k
				break
			}
			if e.cand[k]&0xff < e.cand[weakest]&0xff {
				weakest = k
			}
		}
		if match < 0 {
			// Established candidates are protected: a novel delta only
			// decays the weakest slot, and replaces it once it reaches
			// zero. Without this, irregular access patterns churn the
			// slots faster than any delta can reach the issue threshold.
			if conf := e.cand[weakest] & 0xff; conf > 0 {
				e.cand[weakest] = e.cand[weakest]&^0xff | (conf - 1)
			} else {
				e.cand[weakest] = packed | bonus
			}
			continue
		}
		conf := e.cand[match]&0xff + bonus
		if conf >= bertiConfMax {
			for k := 0; k < bertiCandLen; k++ {
				e.cand[k] = e.cand[k]&^0xff | (e.cand[k]&0xff)>>1
			}
			conf = e.cand[match]&0xff + bonus
		}
		e.cand[match] = packed | conf
	}
}

// bestDelta returns the highest-confidence delta at or above the issue
// threshold, first index winning ties so selection is deterministic.
//
//pflint:hotpath
func (b *Berti) bestDelta(e *bertiEntry) (int16, bool) {
	best := -1
	var bestConf uint32
	for k := 0; k < bertiCandLen; k++ {
		conf := e.cand[k] & 0xff
		if conf >= bertiConfThresh && conf > bestConf {
			best, bestConf = k, conf
		}
	}
	if best < 0 {
		return 0, false
	}
	return int16(uint16(e.cand[best] >> 8)), true
}
