package prefetch

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/xrand"
)

func collect(emitted *[]Candidate) func(Candidate) {
	return func(c Candidate) { *emitted = append(*emitted, c) }
}

func TestNSPValidation(t *testing.T) {
	if _, err := NewNSP(0); err == nil {
		t.Fatal("zero degree should fail")
	}
}

func TestNSPTriggersOnMiss(t *testing.T) {
	n, _ := NewNSP(1)
	var out []Candidate
	n.Observe(Event{PC: 0x400000, LineAddr: 10, L1Hit: false}, collect(&out))
	if len(out) != 1 || out[0].LineAddr != 11 || out[0].TriggerPC != 0x400000 || out[0].Source != "nsp" {
		t.Fatalf("out = %+v", out)
	}
}

func TestNSPTriggersOnTaggedHit(t *testing.T) {
	n, _ := NewNSP(1)
	var out []Candidate
	n.Observe(Event{LineAddr: 10, L1Hit: true, L1HitTagged: true}, collect(&out))
	if len(out) != 1 || out[0].LineAddr != 11 {
		t.Fatalf("tagged hit should trigger: %+v", out)
	}
}

func TestNSPSilentOnPlainHit(t *testing.T) {
	n, _ := NewNSP(1)
	var out []Candidate
	n.Observe(Event{LineAddr: 10, L1Hit: true, L1HitTagged: false}, collect(&out))
	if len(out) != 0 {
		t.Fatalf("plain hit must not trigger: %+v", out)
	}
}

func TestNSPDegree(t *testing.T) {
	n, _ := NewNSP(3)
	var out []Candidate
	n.Observe(Event{LineAddr: 100}, collect(&out))
	if len(out) != 3 {
		t.Fatalf("degree 3 should emit 3 candidates, got %d", len(out))
	}
	for i, c := range out {
		if c.LineAddr != uint64(101+i) {
			t.Fatalf("candidate %d = %+v", i, c)
		}
	}
	if n.Triggers != 1 {
		t.Fatalf("triggers = %d", n.Triggers)
	}
}

func newL2(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(config.CacheConfig{
		SizeBytes: 4096, LineBytes: 32, Assoc: 4,
		LatencyCycles: 15, Ports: 1, Replacement: config.ReplaceLRU,
	}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSDPValidation(t *testing.T) {
	if _, err := NewSDP(nil); err == nil {
		t.Fatal("nil L2 should fail")
	}
}

func TestSDPShadowFlow(t *testing.T) {
	l2 := newL2(t)
	s, _ := NewSDP(l2)
	var out []Candidate

	// Line A resident in L2; access it (L2 hit after an L1 miss).
	l2.Insert(100)
	s.Observe(Event{PC: 0x400000, LineAddr: 100, L2Hit: true}, collect(&out))
	if len(out) != 0 {
		t.Fatal("no shadow installed yet: nothing to prefetch")
	}

	// The next L2 miss (line 200) becomes A's shadow.
	s.Observe(Event{PC: 0x400004, LineAddr: 200, L2Hit: false}, collect(&out))
	line, ok := l2.Peek(100)
	if !ok || !line.ShadowValid || line.Shadow != 200 || !line.Confirm {
		t.Fatalf("shadow not installed: %+v", line)
	}

	// Re-access A: its confirmed shadow triggers a prefetch of 200.
	s.Observe(Event{PC: 0x400008, LineAddr: 100, L2Hit: true}, collect(&out))
	if len(out) != 1 || out[0].LineAddr != 200 || out[0].Source != "sdp" {
		t.Fatalf("shadow prefetch missing: %+v", out)
	}
	if line.Confirm {
		t.Fatal("issuing the shadow prefetch must clear the confirmation bit")
	}

	// Without re-confirmation, A's shadow must stay quiet.
	out = nil
	s.Observe(Event{PC: 0x40000c, LineAddr: 100, L2Hit: true}, collect(&out))
	if len(out) != 0 {
		t.Fatal("unconfirmed shadow must not re-trigger")
	}

	// A demand reference to the shadow line re-confirms it.
	s.Observe(Event{PC: 0x400010, LineAddr: 200, L2Hit: true}, collect(&out))
	if !line.Confirm {
		t.Fatal("use of the shadow line should set the confirmation bit")
	}
	if s.Confirmed != 1 || s.Triggers != 1 {
		t.Fatalf("stats: confirmed=%d triggers=%d", s.Confirmed, s.Triggers)
	}
}

func TestSDPIgnoresL1Hits(t *testing.T) {
	l2 := newL2(t)
	s, _ := NewSDP(l2)
	var out []Candidate
	l2.Insert(100)
	s.Observe(Event{LineAddr: 100, L1Hit: true}, collect(&out))
	s.Observe(Event{LineAddr: 300, L1Hit: true}, collect(&out))
	if line, _ := l2.Peek(100); line.ShadowValid {
		t.Fatal("L1 hits never reach the L2 shadow directory")
	}
}

func TestStrideValidation(t *testing.T) {
	if _, err := NewStride(3); err == nil {
		t.Fatal("non-pow2 entries should fail")
	}
}

func TestStrideDetectsConstantStride(t *testing.T) {
	s, _ := NewStride(64)
	var out []Candidate
	pc := uint64(0x400000)
	// Accesses with stride 2: steady after the second repeat.
	for i := uint64(0); i < 5; i++ {
		s.Observe(Event{PC: pc, LineAddr: 100 + i*2}, collect(&out))
	}
	if len(out) == 0 {
		t.Fatal("steady stride should prefetch")
	}
	last := out[len(out)-1]
	if last.LineAddr != 108+2 {
		t.Fatalf("expected prefetch of next stride (110), got %d", last.LineAddr)
	}
}

func TestStrideIgnoresIrregular(t *testing.T) {
	s, _ := NewStride(64)
	var out []Candidate
	pc := uint64(0x400000)
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		s.Observe(Event{PC: pc, LineAddr: rng.Uint64n(1 << 30)}, collect(&out))
	}
	if len(out) > 5 {
		t.Fatalf("random addresses generated %d prefetches", len(out))
	}
}

func TestStrideZeroStrideSilent(t *testing.T) {
	s, _ := NewStride(64)
	var out []Candidate
	for i := 0; i < 10; i++ {
		s.Observe(Event{PC: 0x400000, LineAddr: 42}, collect(&out))
	}
	if len(out) != 0 {
		t.Fatalf("repeated same-line accesses must not prefetch: %d", len(out))
	}
}

func TestStrideSeparatePCs(t *testing.T) {
	s, _ := NewStride(64)
	var outA, outB []Candidate
	for i := uint64(0); i < 5; i++ {
		s.Observe(Event{PC: 0x400000, LineAddr: 100 + i}, collect(&outA))
		s.Observe(Event{PC: 0x400004, LineAddr: 5000 + i*4}, collect(&outB))
	}
	if len(outA) == 0 || len(outB) == 0 {
		t.Fatal("both PCs should reach steady state")
	}
	if outB[len(outB)-1].LineAddr != 5016+4 {
		t.Fatalf("PC B stride wrong: %+v", outB[len(outB)-1])
	}
}

func TestCompositeFansOut(t *testing.T) {
	nsp, _ := NewNSP(1)
	st, _ := NewStride(64)
	c := NewComposite(nsp, st)
	if len(c.Parts()) != 2 || c.Name() != "composite" {
		t.Fatalf("composite: %+v", c)
	}
	var out []Candidate
	c.Observe(Event{PC: 0x400000, LineAddr: 10}, collect(&out))
	if len(out) != 1 { // NSP triggers; stride still warming
		t.Fatalf("fan-out produced %d", len(out))
	}
	// Empty composite is valid and silent.
	empty := NewComposite()
	empty.Observe(Event{LineAddr: 1}, collect(&out))
	if len(out) != 1 {
		t.Fatal("empty composite must emit nothing")
	}
}

func TestCorrelationValidation(t *testing.T) {
	if _, err := NewCorrelation(3, 2); err == nil {
		t.Fatal("non-pow2 sets should fail")
	}
	if _, err := NewCorrelation(16, 0); err == nil {
		t.Fatal("zero assoc should fail")
	}
}

func TestCorrelationLearnsMissPairs(t *testing.T) {
	c, _ := NewCorrelation(64, 2)
	var out []Candidate
	// Miss stream A, B, A: the second visit to A should prefetch B.
	c.Observe(Event{LineAddr: 100, L1Hit: false}, collect(&out))
	c.Observe(Event{LineAddr: 200, L1Hit: false}, collect(&out))
	if len(out) != 0 {
		t.Fatalf("cold table should not prefetch: %+v", out)
	}
	c.Observe(Event{LineAddr: 100, L1Hit: false}, collect(&out))
	if len(out) != 1 || out[0].LineAddr != 200 || out[0].Source != "corr" {
		t.Fatalf("correlated prefetch missing: %+v", out)
	}
	if c.Triggers != 1 {
		t.Fatalf("triggers = %d", c.Triggers)
	}
}

func TestCorrelationIgnoresHits(t *testing.T) {
	c, _ := NewCorrelation(64, 2)
	var out []Candidate
	c.Observe(Event{LineAddr: 100, L1Hit: true}, collect(&out))
	c.Observe(Event{LineAddr: 200, L1Hit: true}, collect(&out))
	c.Observe(Event{LineAddr: 100, L1Hit: true}, collect(&out))
	if len(out) != 0 {
		t.Fatal("hits must not train or trigger the miss correlator")
	}
}

func TestCorrelationUpdatesPair(t *testing.T) {
	c, _ := NewCorrelation(64, 2)
	var out []Candidate
	// A→B, then A→C: the newer successor wins.
	for _, stream := range [][]uint64{{100, 200}, {100, 300}} {
		for _, la := range stream {
			c.Observe(Event{LineAddr: la, L1Hit: false}, collect(&out))
		}
	}
	out = nil
	c.Observe(Event{LineAddr: 100, L1Hit: false}, collect(&out))
	if len(out) != 1 || out[0].LineAddr != 300 {
		t.Fatalf("pair not updated: %+v", out)
	}
}

func TestCorrelationRepeatedMissNoSelfLoop(t *testing.T) {
	c, _ := NewCorrelation(64, 2)
	var out []Candidate
	for i := 0; i < 5; i++ {
		c.Observe(Event{LineAddr: 42, L1Hit: false}, collect(&out))
	}
	if len(out) != 0 {
		t.Fatalf("self-correlation must not prefetch the missing line itself: %+v", out)
	}
}

func TestCorrelationLRUWithinSet(t *testing.T) {
	c, _ := NewCorrelation(1, 2) // single set, 2 ways
	var out []Candidate
	// Train pairs (10→11), (20→21); then (30→31) evicts the LRU (10).
	for _, la := range []uint64{10, 11, 20, 21, 10, 11} { // refresh 10
		c.Observe(Event{LineAddr: la, L1Hit: false}, collect(&out))
	}
	out = nil
	c.Observe(Event{LineAddr: 30, L1Hit: false}, collect(&out))
	c.Observe(Event{LineAddr: 31, L1Hit: false}, collect(&out))
	out = nil
	c.Observe(Event{LineAddr: 10, L1Hit: false}, collect(&out))
	if len(out) != 1 {
		t.Fatalf("refreshed entry should survive: %+v", out)
	}
}

// --- RPT state machine ---

// observeState drives one access and returns the entry's state for PC.
func rptStateOf(s *Stride, pc uint64) rptState {
	return s.entries[(pc>>2)&s.mask].state
}

func TestStrideRPTStateTransitions(t *testing.T) {
	s, _ := NewStride(64)
	pc := uint64(0x400000)
	var out []Candidate

	// First touch allocates in initial state, no prediction.
	s.Observe(Event{PC: pc, LineAddr: 100}, collect(&out))
	if got := rptStateOf(s, pc); got != rptInitial {
		t.Fatalf("after first touch: state = %d, want initial", got)
	}
	// A first (non-zero) stride observation: initial -> transient.
	s.Observe(Event{PC: pc, LineAddr: 104}, collect(&out))
	if got := rptStateOf(s, pc); got != rptTransient {
		t.Fatalf("after new stride: state = %d, want transient", got)
	}
	// The stride repeats: transient -> steady, and prediction starts.
	s.Observe(Event{PC: pc, LineAddr: 108}, collect(&out))
	if got := rptStateOf(s, pc); got != rptSteady {
		t.Fatalf("after confirmation: state = %d, want steady", got)
	}
	if len(out) != 1 || out[0].LineAddr != 112 || out[0].Source != "stride" {
		t.Fatalf("steady entry should prefetch 112 tagged stride: %+v", out)
	}
	// A mismatch in steady drops back to initial (not straight to noPred).
	s.Observe(Event{PC: pc, LineAddr: 200}, collect(&out))
	if got := rptStateOf(s, pc); got != rptInitial {
		t.Fatalf("steady mismatch: state = %d, want initial", got)
	}
}

func TestStrideRPTNoPredAndRecovery(t *testing.T) {
	s, _ := NewStride(64)
	pc := uint64(0x400000)
	var out []Candidate
	// Two successive mismatching strides: initial -> transient -> noPred.
	s.Observe(Event{PC: pc, LineAddr: 100}, collect(&out))
	s.Observe(Event{PC: pc, LineAddr: 110}, collect(&out)) // stride 10, transient
	s.Observe(Event{PC: pc, LineAddr: 113}, collect(&out)) // stride 3, noPred
	if got := rptStateOf(s, pc); got != rptNoPred {
		t.Fatalf("after two mismatches: state = %d, want noPred", got)
	}
	if len(out) != 0 {
		t.Fatalf("noPred must not prefetch: %+v", out)
	}
	// The new stride repeating climbs back: noPred -> transient -> steady.
	s.Observe(Event{PC: pc, LineAddr: 116}, collect(&out)) // stride 3 matches
	if got := rptStateOf(s, pc); got != rptTransient {
		t.Fatalf("noPred recovery: state = %d, want transient", got)
	}
	s.Observe(Event{PC: pc, LineAddr: 119}, collect(&out))
	if got := rptStateOf(s, pc); got != rptSteady {
		t.Fatalf("second match: state = %d, want steady", got)
	}
	if len(out) != 1 || out[0].LineAddr != 122 {
		t.Fatalf("recovered entry should predict 122: %+v", out)
	}
}

func TestStrideRPTTagMismatchReallocates(t *testing.T) {
	s, _ := NewStride(64)
	var out []Candidate
	pcA := uint64(0x400000)
	pcB := pcA + (64 << 2 << 12) // same index bits, different tag
	for i := uint64(0); i < 3; i++ {
		s.Observe(Event{PC: pcA, LineAddr: 100 + i*4}, collect(&out))
	}
	if got := rptStateOf(s, pcA); got != rptSteady {
		t.Fatalf("pcA should be steady, got %d", got)
	}
	// pcB collides on the index but not the tag: the entry reallocates
	// fresh (initial state) instead of training on pcA's history.
	s.Observe(Event{PC: pcB, LineAddr: 5000}, collect(&out))
	if got := rptStateOf(s, pcB); got != rptInitial {
		t.Fatalf("tag mismatch must reallocate to initial, got %d", got)
	}
	before := len(out)
	s.Observe(Event{PC: pcB, LineAddr: 5004}, collect(&out))
	if len(out) != before {
		t.Fatal("reallocated entry must not predict from stale stride")
	}
}

func TestStrideNegativeNextGuard(t *testing.T) {
	s, _ := NewStride(64)
	var out []Candidate
	pc := uint64(0x400000)
	// Descending stride larger than the address: next would go negative.
	for _, la := range []uint64{30, 20, 10} {
		s.Observe(Event{PC: pc, LineAddr: la}, collect(&out))
	}
	if got := rptStateOf(s, pc); got != rptSteady {
		t.Fatalf("descending stride should reach steady, got %d", got)
	}
	// 10 + (-10) = 0: the next > 0 guard suppresses the prediction.
	if len(out) != 0 {
		t.Fatalf("negative/zero next line must be suppressed: %+v", out)
	}
}

// --- composite fan-out and cross-part dedup ---

func TestCompositeFanOutOrderIsPartOrder(t *testing.T) {
	// Two stride prefetchers warmed on the same PC emit in part order.
	a, _ := NewStride(64)
	b, _ := NewStride(64)
	warm := func(s *Stride) {
		var sink []Candidate
		s.Observe(Event{PC: 0x400000, LineAddr: 100}, collect(&sink))
		s.Observe(Event{PC: 0x400000, LineAddr: 104}, collect(&sink))
	}
	warm(a)
	warm(b)
	c := NewComposite(a, b)
	var out []Candidate
	c.Observe(Event{PC: 0x400000, LineAddr: 108}, collect(&out))
	if len(out) != 2 {
		t.Fatalf("both parts should emit: %+v", out)
	}
	if out[0].LineAddr != 112 || out[1].LineAddr != 112 {
		t.Fatalf("both parts predict 112: %+v", out)
	}
}

func TestCompositeDuplicatesDedupAtQueue(t *testing.T) {
	// The composite itself does not dedup (the hierarchy's queue and
	// cache-containment checks do, and counting those squashes is part of
	// the stats contract). Two parts proposing the same line therefore
	// collapse to one queued prefetch.
	a, _ := NewNSP(1)
	b, _ := NewNSP(1)
	c := NewComposite(a, b)
	q, _ := NewQueue(8)
	var out []Candidate
	c.Observe(Event{PC: 0x400000, LineAddr: 10}, collect(&out))
	if len(out) != 2 {
		t.Fatalf("two NSPs should both propose: %+v", out)
	}
	enq := 0
	for _, cand := range out {
		if q.Enqueue(cand, 0) {
			enq++
		}
	}
	if enq != 1 || q.Len() != 1 {
		t.Fatalf("duplicate proposals must dedup at the queue: enq=%d len=%d", enq, q.Len())
	}
}
