package prefetch

import "testing"

// TestLatencyTableInsertTakeEvict pins the reuse-latency table mechanics:
// one sample per inserted miss, removal on take, direct-mapped eviction,
// and uint32-safe elapsed-cycle arithmetic across counter wraparound.
func TestLatencyTableInsertTakeEvict(t *testing.T) {
	lt := newLatencyTable(3) // 8 slots

	lt.insert(0x1000, 10)
	if lat, ok := lt.take(0x1000, 35); !ok || lat != 25 {
		t.Fatalf("take after insert = (%d,%v), want (25,true)", lat, ok)
	}
	// take removes the entry: a second probe of the same line misses.
	if _, ok := lt.take(0x1000, 40); ok {
		t.Fatal("second take hit; take must remove the entry")
	}

	// Two lines sharing the direct-mapped slot: the newer insert evicts
	// the older, which then misses.
	a, b := uint64(0x20), uint64(0x20+8) // same index under mask 7
	if a&lt.mask != b&lt.mask {
		t.Fatalf("test lines %#x/%#x do not collide under mask %#x", a, b, lt.mask)
	}
	lt.insert(a, 100)
	lt.insert(b, 110)
	if _, ok := lt.take(a, 120); ok {
		t.Fatal("evicted line still hit the latency table")
	}
	if lat, ok := lt.take(b, 125); !ok || lat != 15 {
		t.Fatalf("survivor take = (%d,%v), want (15,true)", lat, ok)
	}

	// Elapsed cycles survive uint32 cycle-counter wraparound.
	lt.insert(0x3000, (1<<32)-10)
	if lat, ok := lt.take(0x3000, (1<<32)+10); !ok || lat != 20 {
		t.Fatalf("wraparound take = (%d,%v), want (20,true)", lat, ok)
	}

	// Line 0 is the empty marker and can never hit.
	lt.insert(0, 5)
	if _, ok := lt.take(0, 10); ok {
		t.Fatal("line 0 must not hit; zero tags mark empty slots")
	}
}

// TestBertiBestDeltaHandBuiltPattern drives Observe with a pure +1-line
// stride from one PC, with accesses spaced far enough apart that every
// delta trains as timely (prior cycle + latEst <= now). The +1 delta is
// trained once more per access than +2, +2 once more than +3, and so on,
// so +1 must be the first to reach the issue threshold and every emitted
// candidate targets line+1.
func TestBertiBestDeltaHandBuiltPattern(t *testing.T) {
	b, err := NewBerti(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pc, base, gap = uint64(0x400), uint64(1 << 20), uint64(1000)

	var got []Candidate
	for i := uint64(0); i < 16; i++ {
		b.Observe(Event{PC: pc, LineAddr: base + i, Cycle: (i + 1) * gap},
			func(c Candidate) { got = append(got, c) })
	}
	if b.Triggers == 0 || len(got) == 0 {
		t.Fatal("strided PC never crossed the confidence threshold")
	}
	// With timely bonus 4 the +1 delta earns 4/access starting at the
	// second access; it crosses bertiConfThresh=32 on the 9th access,
	// and no emission may precede that.
	if uint64(len(got)) != b.Triggers {
		t.Fatalf("emitted %d candidates but Triggers=%d", len(got), b.Triggers)
	}
	if len(got) > 8 {
		t.Fatalf("emitted %d candidates over 16 accesses; threshold crossing allows at most 8", len(got))
	}
	for i, c := range got {
		if c.Source != "berti" {
			t.Fatalf("candidate %d source = %q, want berti", i, c.Source)
		}
		if c.TriggerPC != pc {
			t.Fatalf("candidate %d trigger PC = %#x, want %#x", i, c.TriggerPC, pc)
		}
	}
	// Every emission targets exactly one line ahead of its trigger.
	first := got[0].LineAddr
	for i, c := range got {
		if c.LineAddr != first+uint64(i) {
			t.Fatalf("candidate %d targets %#x, want %#x (stride +1)", i, c.LineAddr, first+uint64(i))
		}
	}

	// The winning candidate in the trained entry is delta +1.
	e := &b.hist[pcIndex(pc)&b.histMsk]
	if e.tag != pc {
		t.Fatalf("history entry tag = %#x, want %#x", e.tag, pc)
	}
	if delta, ok := b.bestDelta(e); !ok || delta != 1 {
		t.Fatalf("bestDelta = (%d,%v), want (1,true)", delta, ok)
	}
}

// TestBertiBestDeltaTieBreak pins the deterministic tie-break: equal
// confidence resolves to the lowest candidate index.
func TestBertiBestDeltaTieBreak(t *testing.T) {
	b, err := NewBerti(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := &bertiEntry{tag: 0x40}
	pack := func(delta int16, conf uint32) uint32 {
		return uint32(uint16(delta))<<8 | conf
	}
	e.cand[1] = pack(7, bertiConfThresh)
	e.cand[3] = pack(-2, bertiConfThresh) // same confidence, higher index
	if delta, ok := b.bestDelta(e); !ok || delta != 7 {
		t.Fatalf("bestDelta = (%d,%v), want first-index winner (7,true)", delta, ok)
	}
	// A strictly higher confidence beats the earlier index.
	e.cand[3] = pack(-2, bertiConfThresh+1)
	if delta, ok := b.bestDelta(e); !ok || delta != -2 {
		t.Fatalf("bestDelta = (%d,%v), want higher-confidence (-2,true)", delta, ok)
	}
	// Below threshold nothing is eligible.
	e.cand[1] = pack(7, bertiConfThresh-1)
	e.cand[3] = pack(-2, bertiConfThresh-1)
	if _, ok := b.bestDelta(e); ok {
		t.Fatal("bestDelta returned a candidate below the issue threshold")
	}
}
