package prefetch

import "testing"

// TestLatencyTableInsertTakeEvict pins the reuse-latency table mechanics:
// one sample per inserted miss, removal on take, direct-mapped eviction,
// and uint32-safe elapsed-cycle arithmetic across counter wraparound.
func TestLatencyTableInsertTakeEvict(t *testing.T) {
	lt := newLatencyTable(3) // 8 slots

	lt.insert(0x1000, 10)
	if lat, ok := lt.take(0x1000, 35); !ok || lat != 25 {
		t.Fatalf("take after insert = (%d,%v), want (25,true)", lat, ok)
	}
	// take removes the entry: a second probe of the same line misses.
	if _, ok := lt.take(0x1000, 40); ok {
		t.Fatal("second take hit; take must remove the entry")
	}

	// Two lines sharing the direct-mapped slot: the newer insert evicts
	// the older, which then misses.
	a, b := uint64(0x20), uint64(0x20+8) // same index under mask 7
	if a&lt.mask != b&lt.mask {
		t.Fatalf("test lines %#x/%#x do not collide under mask %#x", a, b, lt.mask)
	}
	lt.insert(a, 100)
	lt.insert(b, 110)
	if _, ok := lt.take(a, 120); ok {
		t.Fatal("evicted line still hit the latency table")
	}
	if lat, ok := lt.take(b, 125); !ok || lat != 15 {
		t.Fatalf("survivor take = (%d,%v), want (15,true)", lat, ok)
	}

	// Elapsed cycles survive uint32 cycle-counter wraparound.
	lt.insert(0x3000, (1<<32)-10)
	if lat, ok := lt.take(0x3000, (1<<32)+10); !ok || lat != 20 {
		t.Fatalf("wraparound take = (%d,%v), want (20,true)", lat, ok)
	}

	// Line 0 is the empty marker and can never hit.
	lt.insert(0, 5)
	if _, ok := lt.take(0, 10); ok {
		t.Fatal("line 0 must not hit; zero tags mark empty slots")
	}
}

// TestBertiBestDeltaHandBuiltPattern drives Observe with a pure +1-line
// stride from one PC, with accesses spaced far enough apart that every
// delta trains as timely (prior cycle + latEst <= now). The +1 delta is
// trained once more per access than +2, +2 once more than +3, and so on,
// so +1 must be the first to reach the issue threshold and every emitted
// candidate targets line+1.
func TestBertiBestDeltaHandBuiltPattern(t *testing.T) {
	b, err := NewBerti(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pc, base, gap = uint64(0x400), uint64(1 << 20), uint64(1000)

	var got []Candidate
	for i := uint64(0); i < 16; i++ {
		b.Observe(Event{PC: pc, LineAddr: base + i, Cycle: (i + 1) * gap},
			func(c Candidate) { got = append(got, c) })
	}
	if b.Triggers == 0 || len(got) == 0 {
		t.Fatal("strided PC never crossed the confidence threshold")
	}
	// With timely bonus 4 the +1 delta earns 4/access starting at the
	// second access; it crosses bertiConfThresh=32 on the 9th access,
	// and no emission may precede that.
	if uint64(len(got)) != b.Triggers {
		t.Fatalf("emitted %d candidates but Triggers=%d", len(got), b.Triggers)
	}
	if len(got) > 8 {
		t.Fatalf("emitted %d candidates over 16 accesses; threshold crossing allows at most 8", len(got))
	}
	for i, c := range got {
		if c.Source != "berti" {
			t.Fatalf("candidate %d source = %q, want berti", i, c.Source)
		}
		if c.TriggerPC != pc {
			t.Fatalf("candidate %d trigger PC = %#x, want %#x", i, c.TriggerPC, pc)
		}
	}
	// Every emission targets exactly one line ahead of its trigger.
	first := got[0].LineAddr
	for i, c := range got {
		if c.LineAddr != first+uint64(i) {
			t.Fatalf("candidate %d targets %#x, want %#x (stride +1)", i, c.LineAddr, first+uint64(i))
		}
	}

	// The winning candidate in the trained entry is delta +1.
	e := &b.hist[pcIndex(pc)&b.histMsk]
	if e.tag != pc {
		t.Fatalf("history entry tag = %#x, want %#x", e.tag, pc)
	}
	if delta, ok := b.bestDelta(e); !ok || delta != 1 {
		t.Fatalf("bestDelta = (%d,%v), want (1,true)", delta, ok)
	}
}

// TestBertiLatencyEWMASigned pins the signed EWMA update: a reuse-
// latency sample below the current estimate must move the estimate
// DOWN. The original unsigned form `latEst += (lat-latEst)>>shift`
// wrapped the negative difference and exploded the estimate from the
// 64-cycle seed to ~2^29 after a single 8-cycle sample, after which the
// timeliness checks never fired again.
func TestBertiLatencyEWMASigned(t *testing.T) {
	b, err := NewBerti(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	drop := func(Candidate) {}

	// An L2 miss enters the latency table; re-touching the line 8 cycles
	// later closes the loop with one 8-cycle sample.
	b.Observe(Event{PC: 0x40, LineAddr: 0x500, Cycle: 100}, drop)
	b.Observe(Event{PC: 0x40, LineAddr: 0x500, Cycle: 108}, drop)
	want := uint32(bertiSeedLatency + (8-bertiSeedLatency)>>bertiLatencyShift) // 64 - 7 = 57
	if b.latEst != want {
		t.Fatalf("latEst after 8-cycle sample = %d, want %d (must decrease, not wrap)", b.latEst, want)
	}

	// A sample above the estimate still raises it. The second touch
	// above re-inserted 0x500 (it was an L2 miss), so touch it again.
	b.Observe(Event{PC: 0x40, LineAddr: 0x500, Cycle: 108 + 121}, drop)
	want = 57 + (121-57)>>bertiLatencyShift // 57 + 8 = 65
	if b.latEst != want {
		t.Fatalf("latEst after 121-cycle sample = %d, want %d", b.latEst, want)
	}
}

// TestBertiShadowTimelyWideElapsed pins the 32-bit shadow issue stamp:
// a demand arriving more than 2^16 cycles after the prefetch was issued
// is unambiguously timely, where the old 16-bit-truncated stamp wrapped
// the elapsed time to ~10 cycles and misclassified it.
func TestBertiShadowTimelyWideElapsed(t *testing.T) {
	b, err := NewBerti(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	drop := func(Candidate) {}

	// A demand only 10 cycles after issue beat the prefetch home: useful
	// but not timely.
	early := uint64(0x700)
	i := early & b.shadow.mask
	b.shadow.tags[i] = early
	b.shadow.cycles[i] = 100
	b.Observe(Event{PC: 0x40, LineAddr: early, Cycle: 110, L1Hit: true}, drop)
	if b.Useful != 1 || b.Timely != 0 {
		t.Fatalf("early demand: Useful=%d Timely=%d, want 1,0", b.Useful, b.Timely)
	}

	// A demand 2^16+10 cycles after issue is long past the latency
	// estimate. Under 16-bit truncation the elapsed wrapped to 10 and
	// this counted as not timely.
	late := uint64(0x780)
	i = late & b.shadow.mask
	b.shadow.tags[i] = late
	b.shadow.cycles[i] = 100
	b.Observe(Event{PC: 0x40, LineAddr: late, Cycle: 100 + (1 << 16) + 10, L1Hit: true}, drop)
	if b.Useful != 2 || b.Timely != 1 {
		t.Fatalf("long-lived demand: Useful=%d Timely=%d, want 2,1", b.Useful, b.Timely)
	}
}

// TestBertiBestDeltaTieBreak pins the deterministic tie-break: equal
// confidence resolves to the lowest candidate index.
func TestBertiBestDeltaTieBreak(t *testing.T) {
	b, err := NewBerti(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := &bertiEntry{tag: 0x40}
	pack := func(delta int16, conf uint32) uint32 {
		return uint32(uint16(delta))<<8 | conf
	}
	e.cand[1] = pack(7, bertiConfThresh)
	e.cand[3] = pack(-2, bertiConfThresh) // same confidence, higher index
	if delta, ok := b.bestDelta(e); !ok || delta != 7 {
		t.Fatalf("bestDelta = (%d,%v), want first-index winner (7,true)", delta, ok)
	}
	// A strictly higher confidence beats the earlier index.
	e.cand[3] = pack(-2, bertiConfThresh+1)
	if delta, ok := b.bestDelta(e); !ok || delta != -2 {
		t.Fatalf("bestDelta = (%d,%v), want higher-confidence (-2,true)", delta, ok)
	}
	// Below threshold nothing is eligible.
	e.cand[1] = pack(7, bertiConfThresh-1)
	e.cand[3] = pack(-2, bertiConfThresh-1)
	if _, ok := b.bestDelta(e); ok {
		t.Fatal("bestDelta returned a candidate below the issue threshold")
	}
}
