// The generator registry: named, config-constructible prefetch
// generators, mirroring internal/filter's registry pattern for the
// pollution-filter zoo. Backends are built from a validated
// config.PrefetchConfig via New; the registry is open so tests and
// downstream code can add experimental generators, and aliases
// ("correlation", "ghb-pc-delta") resolve to their canonical kinds so
// either spelling builds the same machine.
package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/config"
)

// Env carries the pieces of the machine a generator may need beyond its
// own tables. Generators that don't use a field ignore it.
type Env struct {
	// L2 is the second-level cache; the shadow-directory generator keeps
	// its per-line state there, exactly where the paper puts it.
	L2 *cache.Cache
}

// Constructor builds one generator from a prefetch configuration.
type Constructor func(cfg config.PrefetchConfig, env Env) (Prefetcher, error)

var (
	regMu    sync.RWMutex
	registry = map[config.PrefetchKind]Constructor{}
)

// Register adds (or replaces) a generator constructor under kind. The
// canonical form of the kind is registered, so aliases resolve to the
// same constructor.
func Register(kind config.PrefetchKind, ctor Constructor) {
	if ctor == nil {
		panic("prefetch: nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[kind.Canonical()] = ctor
}

// Registered reports whether kind (or its canonical form) has a
// registered constructor.
func Registered(kind config.PrefetchKind) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[kind.Canonical()]
	return ok
}

// Kinds returns every registered generator kind, sorted. Aliases
// (correlation, ghb-pc-delta) are not listed; they resolve to their
// canonical kinds.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	//pflint:allow determinism/maprange key collection; the result is sorted below
	for k := range registry {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// New builds the generator kind names from cfg. An unregistered kind
// reports the registered alternatives.
func New(kind config.PrefetchKind, cfg config.PrefetchConfig, env Env) (Prefetcher, error) {
	regMu.RLock()
	ctor, ok := registry[kind.Canonical()]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("prefetch: no registered generator for kind %q (registered: %v)", kind, Kinds())
	}
	return ctor(cfg, env)
}

// Sweepable returns the registered kinds that can run end-to-end in one
// pass — for generators that is all of them. This is the backend list
// "-generators all" and the serving layer's generators dimension expand
// to.
func Sweepable() []string {
	return Kinds()
}

func init() {
	Register(config.PrefetchNSP, func(cfg config.PrefetchConfig, _ Env) (Prefetcher, error) {
		return NewNSP(cfg.Degree)
	})
	Register(config.PrefetchSDP, func(_ config.PrefetchConfig, env Env) (Prefetcher, error) {
		return NewSDP(env.L2)
	})
	Register(config.PrefetchStride, func(cfg config.PrefetchConfig, _ Env) (Prefetcher, error) {
		return NewStride(cfg.StrideEntries)
	})
	Register(config.PrefetchCorrelation, func(cfg config.PrefetchConfig, _ Env) (Prefetcher, error) {
		return NewCorrelation(cfg.CorrelationSets, cfg.CorrelationAssoc)
	})
	Register(config.PrefetchBerti, func(cfg config.PrefetchConfig, _ Env) (Prefetcher, error) {
		return NewBerti(cfg.BertiHistoryLog2, cfg.BertiLatencyLog2, cfg.BertiShadowLog2)
	})
	Register(config.PrefetchGHB, func(cfg config.PrefetchConfig, _ Env) (Prefetcher, error) {
		return NewGHB(cfg.GHBLog2, cfg.GHBIndexLog2, cfg.GHBMaxDegree)
	})
}
