package prefetch

import (
	"testing"
	"testing/quick"
)

// checkMirror asserts the documented invariant addrs[i] == buf[i].LineAddr
// for occupied slots, and that vacated slots are fully zeroed in both
// arrays (tests use nonzero line addresses so 0 marks "empty").
func checkMirror(t *testing.T, q *Queue) {
	t.Helper()
	for i := 0; i < q.count; i++ {
		idx := (q.head + i) % len(q.buf)
		if q.addrs[idx] != q.buf[idx].LineAddr {
			t.Fatalf("mirror diverged at slot %d: addrs=%#x buf=%#x", idx, q.addrs[idx], q.buf[idx].LineAddr)
		}
	}
	for i := q.count; i < len(q.buf); i++ {
		idx := (q.head + i) % len(q.buf)
		if q.addrs[idx] != 0 {
			t.Fatalf("ghost address %#x in vacated slot %d", q.addrs[idx], idx)
		}
		if q.buf[idx] != (QueuedCandidate{}) {
			t.Fatalf("stale candidate %+v in vacated slot %d", q.buf[idx], idx)
		}
	}
}

// TestQueueMirrorInvariantWraparound walks the ring through several full
// wraparounds with interleaved enqueues and dequeues, checking the mirror
// after every operation. Regression for Dequeue leaving addrs[head] set.
func TestQueueMirrorInvariantWraparound(t *testing.T) {
	q, _ := NewQueue(4)
	next := uint64(1)
	for round := 0; round < 6; round++ {
		// Fill to capacity, then drain below half, so head/tail cross the
		// array boundary at different offsets each round.
		for q.Len() < q.Cap() {
			if !q.Enqueue(Candidate{LineAddr: next, TriggerPC: next << 4}, next) {
				t.Fatalf("enqueue %#x failed", next)
			}
			next++
			checkMirror(t, q)
		}
		for q.Len() > 1 {
			before, _ := q.Front()
			c, ok := q.Dequeue()
			if !ok || c != before {
				t.Fatalf("dequeue = %+v ok=%v, front was %+v", c, ok, before)
			}
			checkMirror(t, q)
		}
	}
	// Drain the remainder: an empty ring must hold no ghosts at all.
	q.Drain()
	checkMirror(t, q)
	for i, a := range q.addrs {
		if a != 0 {
			t.Fatalf("drained queue still mirrors %#x at slot %d", a, i)
		}
	}
}

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue(0); err == nil {
		t.Fatal("zero capacity should fail")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q, _ := NewQueue(8)
	for i := uint64(0); i < 5; i++ {
		if !q.Enqueue(Candidate{LineAddr: i}, 100+i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := uint64(0); i < 5; i++ {
		c, ok := q.Dequeue()
		if !ok || c.LineAddr != i || c.EnqueueCycle != 100+i {
			t.Fatalf("dequeue %d = %+v", i, c)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue should fail")
	}
}

func TestQueueDuplicateSquash(t *testing.T) {
	q, _ := NewQueue(8)
	q.Enqueue(Candidate{LineAddr: 7}, 0)
	if q.Enqueue(Candidate{LineAddr: 7}, 1) {
		t.Fatal("duplicate should be squashed")
	}
	if q.Squashed != 1 || q.Len() != 1 {
		t.Fatalf("squash accounting: %+v", *q)
	}
	// After dequeue, the line may be enqueued again.
	q.Dequeue()
	if !q.Enqueue(Candidate{LineAddr: 7}, 2) {
		t.Fatal("line should be enqueueable after leaving the queue")
	}
}

func TestQueueOverflow(t *testing.T) {
	q, _ := NewQueue(2)
	q.Enqueue(Candidate{LineAddr: 1}, 0)
	q.Enqueue(Candidate{LineAddr: 2}, 0)
	if q.Enqueue(Candidate{LineAddr: 3}, 0) {
		t.Fatal("full queue should reject")
	}
	if q.Overflows != 1 {
		t.Fatalf("overflows = %d", q.Overflows)
	}
}

func TestQueueFront(t *testing.T) {
	q, _ := NewQueue(4)
	if _, ok := q.Front(); ok {
		t.Fatal("empty front should fail")
	}
	q.Enqueue(Candidate{LineAddr: 9}, 5)
	c, ok := q.Front()
	if !ok || c.LineAddr != 9 {
		t.Fatalf("front = %+v", c)
	}
	if q.Len() != 1 {
		t.Fatal("front must not dequeue")
	}
}

func TestQueueContains(t *testing.T) {
	q, _ := NewQueue(4)
	q.Enqueue(Candidate{LineAddr: 3}, 0)
	if !q.Contains(3) || q.Contains(4) {
		t.Fatal("contains wrong")
	}
	q.Dequeue()
	if q.Contains(3) {
		t.Fatal("dequeued line should be gone")
	}
}

func TestQueueDrain(t *testing.T) {
	q, _ := NewQueue(8)
	for i := uint64(0); i < 6; i++ {
		q.Enqueue(Candidate{LineAddr: i}, i)
	}
	out := q.Drain()
	if len(out) != 6 || q.Len() != 0 {
		t.Fatalf("drain = %d entries, len %d", len(out), q.Len())
	}
	for i, c := range out {
		if c.LineAddr != uint64(i) {
			t.Fatalf("drain order wrong at %d: %+v", i, c)
		}
	}
}

func TestQueueWrapAround(t *testing.T) {
	q, _ := NewQueue(3)
	// Cycle through the ring several times.
	for round := uint64(0); round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			if !q.Enqueue(Candidate{LineAddr: round*10 + i}, 0) {
				t.Fatalf("enqueue failed at round %d", round)
			}
		}
		for i := uint64(0); i < 3; i++ {
			c, ok := q.Dequeue()
			if !ok || c.LineAddr != round*10+i {
				t.Fatalf("round %d dequeue %d = %+v", round, i, c)
			}
		}
	}
	if q.Enqueued != 30 || q.Dequeued != 30 {
		t.Fatalf("counters: %+v", *q)
	}
}

// Property: Len never exceeds capacity and Contains matches queue contents.
func TestQueuePropertyInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		q, _ := NewQueue(4)
		resident := map[uint64]bool{}
		for _, op := range ops {
			line := uint64(op % 16)
			if op&0x80 == 0 {
				ok := q.Enqueue(Candidate{LineAddr: line}, 0)
				if ok {
					resident[line] = true
				}
			} else {
				c, ok := q.Dequeue()
				if ok {
					delete(resident, c.LineAddr)
				}
			}
			if q.Len() > q.Cap() {
				return false
			}
			for l := range resident {
				if !q.Contains(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueContainsAfterWraparound is the regression test for the PR 3
// ghost-line fix: Dequeue must zero the addrs mirror so that once the
// ring wraps (head+count > cap, the two-run Contains scan), lines that
// were dequeued neither report as present nor squash their own
// re-enqueue as a duplicate.
func TestQueueContainsAfterWraparound(t *testing.T) {
	q, _ := NewQueue(4)
	for _, a := range []uint64{0xA, 0xB, 0xC, 0xD} {
		if !q.Enqueue(Candidate{LineAddr: a}, 1) {
			t.Fatalf("enqueue %#x failed", a)
		}
	}
	// Vacate the first two slots, then wrap the tail back over them.
	q.Dequeue() // 0xA
	q.Dequeue() // 0xB
	if !q.Enqueue(Candidate{LineAddr: 0xE}, 2) {
		t.Fatal("enqueue 0xE failed")
	}
	// State: head=2, tail=1, count=3 — the occupied window wraps the
	// array boundary, so Contains takes the two-run path, and slot 1
	// (0xB's old home) is a vacated, zeroed mirror slot inside the array.
	if q.head+q.count <= q.Cap() {
		t.Fatalf("queue not wrapped (head=%d count=%d cap=%d); test must exercise the two-run scan", q.head, q.count, q.Cap())
	}

	for _, a := range []uint64{0xC, 0xD, 0xE} {
		if !q.Contains(a) {
			t.Fatalf("queued line %#x not found by wrapped Contains", a)
		}
	}
	for _, a := range []uint64{0xA, 0xB} {
		if q.Contains(a) {
			t.Fatalf("dequeued line %#x still reported present (ghost mirror entry)", a)
		}
	}

	// A dequeued line must be re-enqueueable, not squashed as a duplicate.
	squashedBefore := q.Squashed
	if !q.Enqueue(Candidate{LineAddr: 0xB}, 3) {
		t.Fatal("re-enqueue of dequeued line 0xB was rejected")
	}
	if q.Squashed != squashedBefore {
		t.Fatal("re-enqueue of dequeued line counted as a squashed duplicate")
	}
	if !q.Contains(0xB) {
		t.Fatal("re-enqueued line 0xB not found")
	}
}
