// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// workload model, every randomized replacement policy, and every synthetic
// input is driven by an xrand generator seeded from the experiment
// configuration, so a given (seed, config) pair always produces the same
// trace and therefore the same simulation result. The implementation is
// splitmix64 for seeding and xoshiro256** for the stream, both public-domain
// algorithms chosen for statistical quality and speed.
package xrand

import "math"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to derive well-distributed sub-seeds from a single user seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is not a
// valid generator; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as recommended by
// the xoshiro authors. Distinct seeds yield fully decorrelated streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway for belt and braces.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork derives an independent generator from r. The child stream is
// decorrelated from the parent and from other forks; forking N children in
// sequence is deterministic.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Rejection sampling on the top bits keeps the distribution exact.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two: mask is unbiased and branch-free
		return r.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p. Values of p outside [0,1] clamp.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean ≈ 1/p), at least 1. It is used for run lengths in the
// workload models. p is clamped to (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		p = 1e-9
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // safety bound; never hit with sane p
			break
		}
	}
	return n
}

// Perm fills a permutation of [0, n) using Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew s
// using inverse-CDF on a harmonic approximation. Heavier skew (larger s)
// concentrates mass on small indices. Used to model hot/cold data regions.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for n items with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	return z
}

// Draw samples an index in [0, n).
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
