package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if got, want := SplitMix64(&a), SplitMix64(&b); got != want {
			t.Fatalf("iteration %d: %#x != %#x", i, got, want)
		}
	}
}

func TestSplitMix64AdvancesState(t *testing.T) {
	s := uint64(7)
	v1 := SplitMix64(&s)
	v2 := SplitMix64(&s)
	if v1 == v2 {
		t.Fatal("consecutive outputs should differ")
	}
	if s == 7 {
		t.Fatal("state must advance")
	}
}

func TestNewDeterministic(t *testing.T) {
	r1, r2 := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	r1, r2 := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a dead stream")
	}
}

func TestForkDecorrelated(t *testing.T) {
	parent := New(9)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork correlated with parent: %d/100 matches", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	c1 := New(5).Fork()
	c2 := New(5).Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("forks of identical parents diverged at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) should panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nPowerOfTwoFast(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(77)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) must be false")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) must be true")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(negative) must be false")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(>1) must be true")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestGeometricAtLeastOne(t *testing.T) {
	r := New(29)
	for _, p := range []float64{0.01, 0.5, 0.99, 1, 2} {
		for i := 0; i < 100; i++ {
			if v := r.Geometric(p); v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", p, v)
			}
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(31)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	if mean < 3.6 || mean > 4.4 { // expected 4
		t.Fatalf("Geometric(0.25) mean %v, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(41)
	z := NewZipf(100, 1.2)
	for i := 0; i < 10000; i++ {
		if v := z.Draw(r); v < 0 || v >= 100 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(43)
	z := NewZipf(1000, 1.2)
	head := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if z.Draw(r) < 10 {
			head++
		}
	}
	// With s=1.2, the top 1% of items should carry far more than 1% of mass.
	if frac := float64(head) / n; frac < 0.2 {
		t.Fatalf("Zipf head mass %v, want heavy skew", frac)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) should panic")
		}
	}()
	NewZipf(0, 1)
}
