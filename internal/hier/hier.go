// Package hier composes the memory hierarchy of the simulated machine:
// L1 data cache → unified L2 → bus → main memory, plus the prefetch
// machinery (hardware prefetchers, pollution filter, prefetch queue, and
// the optional dedicated prefetch buffer of §5.5).
//
// The hierarchy owns the good/bad prefetch classification of §3: every
// prefetched line carries PIB/RIB metadata; a demand reference sets RIB;
// eviction (or end-of-run residency) classifies the prefetch and trains
// the pollution filter.
//
// Timing model. The hierarchy is driven by the CPU's cycle clock. Demand
// accesses compute their completion cycle through the levels (L1 hit
// latency, + L2 latency on an L1 miss, + memory latency and bus transfer
// on an L2 miss). Prefetches accepted by the filter wait in the prefetch
// queue, consume leftover L1 ports to issue, and complete asynchronously:
// a prefetch fill is installed only when its completion cycle arrives, so
// a prefetch that issues too late — e.g. because port contention kept it
// queued — arrives after the demand access it should have covered and is
// classified bad, reproducing the §5.4 "procrastination turns good
// prefetches into bad" effect.
package hier

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/deadblock"
	"repro/internal/frontend"
	"repro/internal/memdram"
	"repro/internal/metrics"
	"repro/internal/pbuffer"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/taxonomy"
	"repro/internal/trace"
	"repro/internal/victim"
	"repro/internal/xrand"
)

// inflight is a prefetch fill in transit from L2/memory toward the L1
// (or, when iside is set, toward the L1I).
type inflight struct {
	done      uint64 // cycle the fill arrives at the L1
	lineAddr  uint64
	triggerPC uint64
	software  bool
	iside     bool // instruction-prefetch fill headed for the L1I
	source    string
}

// inflightHeap is a hand-rolled min-heap of fills ordered by completion
// cycle. container/heap would box every Push/Pop operand into an `any`,
// which profiled as ~40% of all allocations in a simulation; the typed
// sift routines below allocate nothing.
type inflightHeap []inflight

// push inserts a fill, sifting up to restore heap order.
//
//pflint:hotpath
func (h *inflightHeap) push(f inflight) {
	// The backing array reaches steady-state capacity within the first few
	// thousand cycles; after that this append never allocates.
	//pflint:allow hotpath/append amortized growth of the heap's own backing array
	*h = append(*h, f)
	s := *h
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent].done <= s[i].done {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the earliest-completing fill.
//
//pflint:hotpath
func (h *inflightHeap) pop() inflight {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = inflight{}
	s = s[:n]
	*h = s
	// Sift down.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].done < s[small].done {
			small = l
		}
		if r < n && s[r].done < s[small].done {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// Hierarchy is the composed memory system.
type Hierarchy struct {
	cfg config.Config

	L1     *cache.Cache
	L2     *cache.Cache
	Buffer *pbuffer.Buffer // nil unless cfg.Buffer.Enable
	// Victim is the optional victim cache behind the L1 (nil unless
	// cfg.VictimEntries > 0).
	Victim *victim.Cache
	Bus    *bus.Bus
	Mem    *memdram.Memory

	Filter core.Filter
	HW     prefetch.Prefetcher // composite hardware prefetchers (may be empty)
	Queue  *prefetch.Queue

	// I-side front end (all nil unless cfg.Frontend is set). The L1I
	// sits beside the L1D and shares the single-ported L2; IHW is the
	// instruction-prefetch backend from the internal/frontend registry,
	// and IQueue holds its accepted candidates.
	L1I    *cache.Cache
	IHW    frontend.Prefetcher
	IQueue *prefetch.Queue
	fetch  frontend.FetchUnit

	// l2busyUntil serializes the single-ported L2 (pipelined occupancy).
	l2busyUntil uint64

	inflight    inflightHeap
	inflightSet map[uint64]inflight
	// merged counts, per line, prefetch fills that a demand miss already
	// claimed (MSHR merge); Tick consumes one count per matching heap
	// entry. A count (not a set): the same line can merge repeatedly if it
	// is evicted and re-prefetched while older fills are still queued.
	merged map[uint64]int

	// inflightISet/mergedI are the I-side twins of inflightSet/merged;
	// instruction and data streams track their outstanding fills in
	// separate sets so an I-block never collides with a D-line at the
	// same address. The fills themselves share the one inflight heap,
	// tagged by inflight.iside.
	inflightISet map[uint64]inflight
	mergedI      map[uint64]int

	// Classification and traffic counters (read via Snapshot).
	Pf      stats.Prefetches
	Traffic stats.Traffic
	// BySource counts issued prefetches per generator.
	BySource map[string]uint64

	// LatePrefetches counts fills that arrived after a demand access had
	// already brought the line in (classified bad).
	LatePrefetches uint64
	// Merged counts demand misses that merged with an in-flight prefetch
	// (MSHR behaviour); the prefetch classifies good.
	Merged uint64

	// I-side counters: IPf classifies instruction prefetches at L1I
	// eviction time exactly as Pf does for the D-side; FetchBlocks and
	// FetchMisses count the fetch-block stream presented to the L1I;
	// MergedI counts fetch misses that merged with an in-flight
	// instruction prefetch.
	IPf         stats.Prefetches
	FetchBlocks uint64
	FetchMisses uint64
	MergedI     uint64

	// Tax, when non-nil, records the full Srinivasan prefetch taxonomy
	// (reference [17]) alongside the paper's 2-way classification. Pure
	// instrumentation: it never affects timing or filtering.
	Tax *taxonomy.Tracker

	// Dead, when non-nil, enables the Lai et al. dead-block baseline: the
	// predictor observes the L1 access/eviction stream and gates each
	// prefetch on the predicted liveness of the line it would displace.
	Dead *deadblock.Predictor
	// DeadGated counts prefetches the dead-block gate dropped.
	DeadGated uint64

	// Trace, when non-nil, receives a cycle-stamped event for every
	// prefetch lifecycle transition, demand miss, and (via Bus.Trace) bus
	// grant. Attached by AttachObservability; nil by default so the
	// un-instrumented hot path pays one predictable branch per site.
	Trace *trace.Tracer
	// m holds live metric handles; all nil (no-op) unless attached.
	m hierMetrics
	// now is the cycle stamp for events raised from shared helpers
	// (eviction classification inside fills); maintained by the
	// entry points that carry a cycle argument.
	now uint64
	// emitFn is the single reusable candidate sink handed to the
	// prefetchers; it reads the cycle from h.now. Allocating a fresh
	// closure per demand access was ~30% of all simulation allocations.
	emitFn func(prefetch.Candidate)
	// iEmitFn is its I-side twin, handed to the instruction prefetcher.
	iEmitFn func(frontend.Candidate)
}

// hierMetrics are the hierarchy's live counters. Each handle is nil
// until AttachObservability registers it, and every update is nil-safe,
// so the disabled path costs one branch per site. The counters track the
// stats.Prefetches fields exactly: after Finish, "sim.pf.good" equals
// Run.Prefetches.Good, and so on — that equality is the contract the
// observability tests pin.
type hierMetrics struct {
	pfIssued, pfGood, pfBad, pfFiltered, pfSquashed, pfOverflow *metrics.Counter
	pfFills, pfRefs, pfLate, pfMerged                           *metrics.Counter
	demandAccesses, demandMisses                                *metrics.Counter
}

// reset zeroes every attached counter (warmup boundary).
func (m *hierMetrics) reset() {
	for _, c := range []*metrics.Counter{
		m.pfIssued, m.pfGood, m.pfBad, m.pfFiltered, m.pfSquashed, m.pfOverflow,
		m.pfFills, m.pfRefs, m.pfLate, m.pfMerged, m.demandAccesses, m.demandMisses,
	} {
		c.Set(0)
	}
}

// AttachObservability wires a tracer and/or metrics registry into the
// hierarchy (and its bus). Either may be nil. Must be called before the
// run starts; the attached instruments are purely observational and
// never alter simulation semantics.
func (h *Hierarchy) AttachObservability(tr *trace.Tracer, reg *metrics.Registry) {
	h.Trace = tr
	h.Bus.Trace = tr
	if reg == nil {
		h.m = hierMetrics{}
		return
	}
	h.m = hierMetrics{
		pfIssued:       reg.Counter("sim.pf.issued"),
		pfGood:         reg.Counter("sim.pf.good"),
		pfBad:          reg.Counter("sim.pf.bad"),
		pfFiltered:     reg.Counter("sim.pf.filtered"),
		pfSquashed:     reg.Counter("sim.pf.squashed"),
		pfOverflow:     reg.Counter("sim.pf.overflow"),
		pfFills:        reg.Counter("sim.pf.fills"),
		pfRefs:         reg.Counter("sim.pf.refs"),
		pfLate:         reg.Counter("sim.pf.late"),
		pfMerged:       reg.Counter("sim.pf.merged"),
		demandAccesses: reg.Counter("sim.demand.accesses"),
		demandMisses:   reg.Counter("sim.demand.misses"),
	}
}

// l2Occupancy is the pipelined issue interval of the single L2 port, in
// cycles. The L2 has a 15-cycle latency but accepts a new access every
// few cycles, as real pipelined SRAM arrays do.
const l2Occupancy = 2

// New builds the hierarchy from a validated config. The filter must be
// non-nil (use core.NewNull for no filtering).
func New(cfg config.Config, filter core.Filter, rng *xrand.Rand) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if filter == nil {
		return nil, fmt.Errorf("hier: filter must not be nil")
	}
	if rng == nil {
		rng = xrand.New(cfg.Seed)
	}
	l1, err := cache.New(cfg.L1, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("hier: l1: %w", err)
	}
	l2, err := cache.New(cfg.L2, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("hier: l2: %w", err)
	}
	b, err := bus.New(cfg.BusBytesPerCyc)
	if err != nil {
		return nil, err
	}
	mem, err := memdram.New(cfg.MemoryLatency, 4)
	if err != nil {
		return nil, err
	}
	q, err := prefetch.NewQueue(cfg.Prefetch.QueueEntries)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:         cfg,
		L1:          l1,
		L2:          l2,
		Bus:         b,
		Mem:         mem,
		Filter:      filter,
		Queue:       q,
		inflightSet: make(map[uint64]inflight),
		merged:      make(map[uint64]int),
		BySource:    make(map[string]uint64),
	}
	if cfg.Buffer.Enable {
		pb, err := pbuffer.New(cfg.Buffer.Entries)
		if err != nil {
			return nil, err
		}
		h.Buffer = pb
	}
	if cfg.VictimEntries > 0 {
		vc, err := victim.New(cfg.VictimEntries)
		if err != nil {
			return nil, err
		}
		h.Victim = vc
	}
	if cfg.Filter.Kind == config.FilterDeadBlock {
		db, err := deadblock.New(cfg.Filter.TableEntries)
		if err != nil {
			return nil, err
		}
		h.Dead = db
	}
	var parts []prefetch.Prefetcher
	env := prefetch.Env{L2: l2}
	for _, kind := range cfg.Prefetch.Enabled() {
		p, err := prefetch.New(kind, cfg.Prefetch, env)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	h.HW = prefetch.NewComposite(parts...)
	h.emitFn = func(c prefetch.Candidate) { h.submit(h.now, c) }
	if cfg.Frontend != nil {
		l1i, err := cache.New(cfg.Frontend.L1I, rng.Fork())
		if err != nil {
			return nil, fmt.Errorf("hier: l1i: %w", err)
		}
		h.L1I = l1i
		iq, err := prefetch.NewQueue(cfg.Frontend.QueueEntries)
		if err != nil {
			return nil, err
		}
		h.IQueue = iq
		if kind := cfg.Frontend.IPrefetch.Canonical(); kind != config.IPrefetchNone {
			ip, err := frontend.New(kind, *cfg.Frontend)
			if err != nil {
				return nil, err
			}
			h.IHW = ip
		}
		h.fetch = frontend.NewFetchUnit(cfg.Frontend.L1I.LineBytes)
		h.inflightISet = make(map[uint64]inflight)
		h.mergedI = make(map[uint64]int)
		h.iEmitFn = func(c frontend.Candidate) { h.submitI(h.now, c) }
	}
	return h, nil
}

// Config returns the machine configuration.
func (h *Hierarchy) Config() config.Config { return h.cfg }

// LineAddr converts a byte address to a line address.
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return h.L1.LineAddr(addr) }

// classifyEvicted handles a line leaving the L1: if it was a prefetch,
// classify it and train the filter.
func (h *Hierarchy) classifyEvicted(line cache.Line) {
	if h.Dead != nil {
		h.Dead.OnEvict(line)
	}
	if !line.PIB {
		return
	}
	if line.RIB {
		h.Pf.Good++
		h.m.pfGood.Inc()
	} else {
		h.Pf.Bad++
		h.m.pfBad.Inc()
	}
	if h.Trace != nil {
		h.Trace.Emit(trace.Event{Cycle: h.now, Kind: trace.KindPrefetchEvict,
			LineAddr: line.Tag, PC: line.TriggerPC, Good: line.RIB})
	}
	h.Filter.Train(core.Feedback{
		LineAddr:   line.Tag,
		TriggerPC:  line.TriggerPC,
		Referenced: line.RIB,
		Source:     core.Source(line.PFSource),
	})
	if h.Tax != nil {
		h.Tax.OnEvict(line.Tag)
	}
}

// l2Access models one access reaching the L2 at cycle `at`, returning the
// cycle data is available to fill the L1. prefetch tags traffic.
func (h *Hierarchy) l2Access(at uint64, lineAddr uint64, prefetchReq bool) (ready uint64, l2hit bool) {
	// Single L2 port: serialize pipelined access slots.
	start := at
	if h.l2busyUntil > start {
		start = h.l2busyUntil
	}
	h.l2busyUntil = start + l2Occupancy

	h.Traffic.L2Accesses++
	if prefetchReq {
		h.Traffic.PrefetchL2++
	} else {
		h.L2.Stats.DemandAccesses++
	}

	if line, hit := h.L2.Lookup(lineAddr); hit {
		_ = line
		if !prefetchReq {
			h.L2.Stats.DemandHits++
		}
		return start + uint64(h.cfg.L2.LatencyCycles), true
	}
	if !prefetchReq {
		h.L2.Stats.DemandMisses++
	}
	// Miss: main memory + bus transfer back.
	h.Traffic.MemAccesses++
	if prefetchReq {
		h.Traffic.PrefetchMem++
	}
	memReady := h.Mem.Request(start+uint64(h.cfg.L2.LatencyCycles), prefetchReq)
	arrive := h.Bus.Request(memReady, h.cfg.L2.LineBytes, prefetchReq)

	// Fill the L2. An L2 eviction may write back a dirty line over the bus.
	installed, evicted, hadEvict := h.L2.Insert(lineAddr)
	if prefetchReq {
		h.L2.Stats.PrefetchFills++
	} else {
		h.L2.Stats.DemandFills++
	}
	_ = installed
	if hadEvict && evicted.Dirty {
		h.Bus.Request(arrive, h.cfg.L2.LineBytes, false)
	}
	return arrive, false
}

// fillL1 installs a line into the L1 and processes the eviction feedback.
// The returned pointer addresses the installed line for metadata setup;
// the evicted line (when any) is returned for the taxonomy hooks.
func (h *Hierarchy) fillL1(lineAddr uint64, prefetchReq bool) (*cache.Line, cache.Line, bool) {
	installed, evicted, hadEvict := h.L1.Insert(lineAddr)
	if hadEvict {
		h.classifyEvicted(evicted)
		if h.Victim != nil {
			// The victim cache captures the eviction; its own victim (if
			// dirty) is what finally writes back.
			if ve, vEvict := h.Victim.Insert(evicted.Tag, evicted.Dirty); vEvict && ve.Dirty {
				h.writebackL2(ve.LineAddr)
			}
		} else if evicted.Dirty {
			h.writebackL2(evicted.Tag)
		}
	}
	if prefetchReq {
		h.L1.Stats.PrefetchFills++
	} else {
		h.L1.Stats.DemandFills++
	}
	return installed, evicted, hadEvict
}

// writebackL2 pushes a dirty line into the L2 off the critical path:
// pure occupancy on the L2 port, plus a bus transfer if the L2 must
// evict its own dirty victim to memory.
func (h *Hierarchy) writebackL2(lineAddr uint64) {
	h.l2busyUntil += l2Occupancy
	wb, _, wbEvict := h.L2.Insert(lineAddr)
	wb.Dirty = true
	if wbEvict {
		h.Bus.Request(h.l2busyUntil, h.cfg.L2.LineBytes, false)
	}
}

// DemandAccess runs one load/store through the hierarchy at cycle now and
// returns the cycle its data is available. The caller has already charged
// an L1 port for this access.
func (h *Hierarchy) DemandAccess(now uint64, pc, addr uint64, isStore bool) (done uint64) {
	lineAddr := h.L1.LineAddr(addr)
	h.now = now
	h.Traffic.DemandAccesses++
	h.L1.Stats.DemandAccesses++
	h.m.demandAccesses.Inc()
	if h.Tax != nil {
		h.Tax.OnDemandRef(lineAddr)
	}

	ev := prefetch.Event{PC: pc, LineAddr: lineAddr, IsStore: isStore}

	if line, hit := h.L1.Lookup(lineAddr); hit {
		h.L1.Stats.DemandHits++
		if h.Dead != nil {
			h.Dead.OnAccess(line, pc)
		}
		ev.L1Hit = true
		// The NSP tag is "consumed" by the first demand reference: a hit
		// on a not-yet-referenced prefetched line triggers the next-line
		// prefetch; later hits do not re-trigger.
		ev.L1HitTagged = line.PIB && !line.RIB
		if line.PIB && !line.RIB {
			line.RIB = true
			h.m.pfRefs.Inc()
			if h.Trace != nil {
				h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchRef,
					LineAddr: lineAddr, PC: pc})
			}
		}
		if isStore {
			line.Dirty = true
		}
		done = now + uint64(h.cfg.L1.LatencyCycles)
		h.observe(now, ev)
		return done
	}
	h.L1.Stats.DemandMisses++
	h.m.demandMisses.Inc()
	if h.Trace != nil {
		h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindDemandMiss,
			LineAddr: lineAddr, PC: pc})
	}

	// MSHR merge: a demand miss on a line with a prefetch already in
	// flight waits for the prefetch's fill instead of launching its own
	// request. The prefetch covered (part of) the miss latency, so the
	// line is installed as a referenced prefetch — it will classify good
	// at eviction and train the filter positively.
	if f, busy := h.inflightSet[lineAddr]; busy {
		delete(h.inflightSet, lineAddr)
		h.merged[lineAddr]++ // Tick will skip one matching heap entry
		h.Merged++
		h.m.pfMerged.Inc()
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchMerge,
				LineAddr: lineAddr, PC: f.triggerPC, Source: f.source})
		}
		line, evicted, hadEvict := h.fillL1(lineAddr, true)
		if h.Tax != nil {
			h.Tax.OnPrefetchFill(lineAddr, evicted.Tag, hadEvict)
			h.Tax.OnDemandRef(lineAddr) // the merging demand is the reference
		}
		line.PIB = true
		line.RIB = true
		line.TriggerPC = f.triggerPC
		line.SoftPF = f.software
		line.PFSource = uint8(core.SourceByName(f.source))
		if isStore {
			line.Dirty = true
		}
		done = f.done
		if min := now + uint64(h.cfg.L1.LatencyCycles); done < min {
			done = min
		}
		ev.L1Hit = true // the lower levels never see this access
		h.observe(now, ev)
		return done
	}

	// Probe the dedicated prefetch buffer in parallel with the L1.
	if h.Buffer != nil {
		if entry, hit := h.Buffer.Probe(lineAddr); hit {
			// Promotion: the prefetch was good. Classify and train now;
			// the line enters the L1 as an ordinary (PIB=0) line.
			h.Pf.Good++
			h.m.pfGood.Inc()
			h.m.pfRefs.Inc()
			if h.Trace != nil {
				h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchRef,
					LineAddr: lineAddr, PC: pc})
			}
			h.Filter.Train(core.Feedback{
				LineAddr:   entry.LineAddr,
				TriggerPC:  entry.TriggerPC,
				Referenced: true,
				Source:     core.Source(entry.Source),
			})
			installed, _, _ := h.fillL1(lineAddr, false)
			if isStore {
				installed.Dirty = true
			}
			ev.L1Hit = true // from the prefetchers' perspective: no L2 access
			h.observe(now, ev)
			return now + uint64(h.cfg.L1.LatencyCycles)
		}
	}

	// Probe the victim cache: a hit swaps the line back into the L1 in
	// one extra cycle, never touching the L2.
	if h.Victim != nil {
		if vEntry, hit := h.Victim.Probe(lineAddr); hit {
			installed, _, _ := h.fillL1(lineAddr, false)
			installed.Dirty = vEntry.Dirty || isStore
			if h.Dead != nil {
				h.Dead.OnFill(installed, pc)
			}
			ev.L1Hit = true // the lower levels never see this access
			h.observe(now, ev)
			return now + uint64(h.cfg.L1.LatencyCycles) + 1
		}
	}

	ready, l2hit := h.l2Access(now+uint64(h.cfg.L1.LatencyCycles), lineAddr, false)
	ev.L2Hit = l2hit
	installed, _, _ := h.fillL1(lineAddr, false)
	if h.Dead != nil {
		h.Dead.OnFill(installed, pc)
	}
	if isStore {
		installed.Dirty = true
	}
	h.observe(now, ev)
	return ready
}

// FrontendEnabled reports whether the I-side front end is modelled.
func (h *Hierarchy) FrontendEnabled() bool { return h.L1I != nil }

// classifyEvictedI handles a line leaving the L1I: if it was an
// instruction prefetch, classify it and train the shared pollution
// filter — the I-side twin of classifyEvicted, carrying the backend's
// source provenance into the feedback.
func (h *Hierarchy) classifyEvictedI(line cache.Line) {
	if !line.PIB {
		return
	}
	if line.RIB {
		h.IPf.Good++
	} else {
		h.IPf.Bad++
	}
	if h.Trace != nil {
		h.Trace.Emit(trace.Event{Cycle: h.now, Kind: trace.KindPrefetchEvict,
			LineAddr: line.Tag, PC: line.TriggerPC, Good: line.RIB})
	}
	h.Filter.Train(core.Feedback{
		LineAddr:   line.Tag,
		TriggerPC:  line.TriggerPC,
		Referenced: line.RIB,
		Source:     core.Source(line.PFSource),
	})
}

// fillL1I installs an instruction block into the L1I and classifies the
// eviction. I-lines are never dirty, so there is no writeback path.
func (h *Hierarchy) fillL1I(block uint64, prefetchReq bool) *cache.Line {
	installed, evicted, hadEvict := h.L1I.Insert(block)
	if hadEvict {
		h.classifyEvictedI(evicted)
	}
	if prefetchReq {
		h.L1I.Stats.PrefetchFills++
	} else {
		h.L1I.Stats.DemandFills++
	}
	return installed
}

// FetchAccess runs one instruction fetch through the front end at cycle
// now and returns the cycle the block is available. Same-block fetches
// are absorbed by the fetch unit and complete immediately; only block
// transitions touch the L1I. On a miss the front end stalls: the caller
// must not dispatch past the returned cycle.
func (h *Hierarchy) FetchAccess(now uint64, pc uint64) (done uint64) {
	block, newBlock, redirect := h.fetch.Step(pc)
	if !newBlock {
		return now
	}
	h.now = now
	h.FetchBlocks++
	h.L1I.Stats.DemandAccesses++
	ev := frontend.Event{Block: block, PC: pc, Redirect: redirect}

	if line, hit := h.L1I.Lookup(block); hit {
		h.L1I.Stats.DemandHits++
		if line.PIB && !line.RIB {
			line.RIB = true
		}
		h.observeI(now, ev)
		return now
	}
	h.L1I.Stats.DemandMisses++
	h.FetchMisses++
	ev.Miss = true

	// MSHR merge: a fetch miss on a block with an instruction prefetch
	// already in flight waits for that fill; the prefetch covered part
	// of the miss latency and is installed as a referenced prefetch.
	if f, busy := h.inflightISet[block]; busy {
		delete(h.inflightISet, block)
		h.mergedI[block]++ // tickI will skip one matching heap entry
		h.MergedI++
		line := h.fillL1I(block, true)
		line.PIB = true
		line.RIB = true
		line.TriggerPC = f.triggerPC
		line.PFSource = uint8(core.SourceByName(f.source))
		done = f.done
		if min := now + uint64(h.cfg.Frontend.L1I.LatencyCycles); done < min {
			done = min
		}
		h.observeI(now, ev)
		return done
	}

	// The fetch miss walks the shared L2 as a demand access — it is on
	// the critical path of the front end.
	ready, _ := h.l2Access(now+uint64(h.cfg.Frontend.L1I.LatencyCycles), block, false)
	h.fillL1I(block, false)
	h.observeI(now, ev)
	return ready
}

// observeI feeds a fetch-block event to the instruction prefetcher. The
// candidate sink is the pre-built h.iEmitFn, stamping candidates with
// h.now.
func (h *Hierarchy) observeI(now uint64, ev frontend.Event) {
	if h.IHW == nil {
		return
	}
	h.now = now
	h.IHW.Observe(ev, h.iEmitFn)
}

// submitI runs one instruction-prefetch candidate through duplicate
// squashing and the shared pollution filter, then enqueues it.
func (h *Hierarchy) submitI(now uint64, c frontend.Candidate) {
	if h.L1I.Contains(c.Block) {
		h.IPf.Squashed++
		return
	}
	if _, busy := h.inflightISet[c.Block]; busy {
		h.IPf.Squashed++
		return
	}
	if h.IQueue.Contains(c.Block) {
		h.IPf.Squashed++
		return
	}
	if !h.Filter.Allow(core.Request{LineAddr: c.Block, TriggerPC: c.TriggerPC, Source: core.SourceByName(c.Source)}) {
		h.IPf.Filtered++
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchFilter,
				LineAddr: c.Block, PC: c.TriggerPC, Source: c.Source})
		}
		return
	}
	if !h.IQueue.Enqueue(prefetch.Candidate{LineAddr: c.Block, TriggerPC: c.TriggerPC, Source: c.Source}, now) {
		h.IPf.Overflow++
	}
}

// IssueIPrefetches lets up to max queued instruction prefetches start
// their fills at cycle now. It must be called after the cycle's demand
// accesses and D-side prefetch issue, and it only takes the shared L2
// port when the port is otherwise idle: an instruction prefetch never
// claims a slot ahead of — or queues back-to-back against — the data
// path, so I-side fills cannot starve D-side demand misses. The
// contention tests pin this arbitration order.
func (h *Hierarchy) IssueIPrefetches(now uint64, max int) (used int) {
	if h.IQueue == nil {
		return 0
	}
	h.now = now
	lat := uint64(h.cfg.Frontend.L1I.LatencyCycles)
	for used < max {
		if h.l2busyUntil > now+lat {
			return used // the L2 port is claimed; yield to the data path
		}
		qc, ok := h.IQueue.Front()
		if !ok {
			return used
		}
		// Re-check residency: state may have changed while queued.
		if h.L1I.Contains(qc.LineAddr) {
			h.IQueue.Dequeue()
			h.IPf.Squashed++
			continue
		}
		if _, busy := h.inflightISet[qc.LineAddr]; busy {
			h.IQueue.Dequeue()
			h.IPf.Squashed++
			continue
		}
		h.IQueue.Dequeue()
		used++
		ready, _ := h.l2Access(now+lat, qc.LineAddr, true)
		h.IPf.Issued++
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchIssue,
				LineAddr: qc.LineAddr, PC: qc.TriggerPC, Source: qc.Source})
		}
		h.BySource[qc.Source]++
		f := inflight{
			done:      ready,
			lineAddr:  qc.LineAddr,
			triggerPC: qc.TriggerPC,
			iside:     true,
			source:    qc.Source,
		}
		h.inflight.push(f)
		h.inflightISet[qc.LineAddr] = f
	}
	return used
}

// tickI completes one instruction-prefetch fill popped off the shared
// heap: consume a merge marker, drop late fills as bad, or install the
// block into the L1I with its provenance metadata.
func (h *Hierarchy) tickI(f inflight) {
	if n := h.mergedI[f.lineAddr]; n > 0 {
		// A fetch miss already claimed this fill (see Tick for the
		// live-entry guard rationale).
		if cur, live := h.inflightISet[f.lineAddr]; !live || cur != f {
			if n == 1 {
				delete(h.mergedI, f.lineAddr)
			} else {
				h.mergedI[f.lineAddr] = n - 1
			}
			return
		}
	}
	delete(h.inflightISet, f.lineAddr)
	h.now = f.done
	if h.L1I.Contains(f.lineAddr) {
		// Late: the fetch stream already brought the block in.
		h.LatePrefetches++
		h.IPf.Bad++
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: f.done, Kind: trace.KindPrefetchLate,
				LineAddr: f.lineAddr, PC: f.triggerPC, Source: f.source})
		}
		h.Filter.Train(core.Feedback{
			LineAddr:   f.lineAddr,
			TriggerPC:  f.triggerPC,
			Referenced: false,
			Source:     core.SourceByName(f.source),
		})
		return
	}
	line := h.fillL1I(f.lineAddr, true)
	line.PIB = true
	line.RIB = false
	line.TriggerPC = f.triggerPC
	line.PFSource = uint8(core.SourceByName(f.source))
}

// SoftwarePrefetch routes a software prefetch instruction (identified in
// the LSQ) through the pollution filter into the prefetch queue. It does
// not consume an L1 port; the eventual fill does, via IssuePrefetches.
func (h *Hierarchy) SoftwarePrefetch(now uint64, pc, addr uint64) {
	if !h.cfg.Prefetch.EnableSoftware {
		return
	}
	h.submit(now, prefetch.Candidate{
		LineAddr:  h.L1.LineAddr(addr),
		TriggerPC: pc,
		Software:  true,
		Source:    "sw",
	})
}

// observe feeds the demand access to the hardware prefetchers and submits
// whatever they generate. The candidate sink is the pre-built h.emitFn,
// stamping candidates with h.now (maintained by every entry point that
// carries a cycle argument, including this one).
func (h *Hierarchy) observe(now uint64, ev prefetch.Event) {
	h.now = now
	ev.Cycle = now
	h.HW.Observe(ev, h.emitFn)
}

// squash records one duplicate-squashed prefetch.
func (h *Hierarchy) squash() {
	h.Pf.Squashed++
	h.m.pfSquashed.Inc()
}

// filtered records one candidate dropped before the queue (pollution
// filter or dead-block gate).
func (h *Hierarchy) filtered(now uint64, c prefetch.Candidate) {
	h.Pf.Filtered++
	h.m.pfFiltered.Inc()
	if h.Trace != nil {
		h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchFilter,
			LineAddr: c.LineAddr, PC: c.TriggerPC, Source: c.Source})
	}
}

// submit runs one candidate through duplicate squashing and the pollution
// filter, then enqueues it.
func (h *Hierarchy) submit(now uint64, c prefetch.Candidate) {
	// Squash duplicates: already resident, already in flight, or already
	// queued. No penalty (paper §5.1).
	if h.L1.Contains(c.LineAddr) {
		h.squash()
		return
	}
	if h.Buffer != nil && h.Buffer.Contains(c.LineAddr) {
		h.squash()
		return
	}
	if _, busy := h.inflightSet[c.LineAddr]; busy {
		h.squash()
		return
	}
	if h.Queue.Contains(c.LineAddr) {
		h.squash()
		return
	}

	if !h.Filter.Allow(core.Request{LineAddr: c.LineAddr, TriggerPC: c.TriggerPC, Software: c.Software, Source: core.SourceByName(c.Source)}) {
		h.filtered(now, c)
		return
	}
	if h.Dead != nil && !h.Dead.AllowPrefetch(h.L1, c.LineAddr) {
		h.DeadGated++
		h.filtered(now, c)
		return
	}
	if !h.Queue.Enqueue(c, now) {
		h.Pf.Overflow++
		h.m.pfOverflow.Inc()
	}
}

// IssuePrefetches lets up to ports queued prefetches start their fills at
// cycle now, returning how many L1 ports were consumed. Prefetches found
// to be redundant at issue time are squashed without consuming a port.
func (h *Hierarchy) IssuePrefetches(now uint64, ports int) (used int) {
	h.now = now
	for used < ports {
		qc, ok := h.Queue.Front()
		if !ok {
			return used
		}
		// Re-check residency: state may have changed while queued.
		if h.L1.Contains(qc.LineAddr) ||
			(h.Buffer != nil && h.Buffer.Contains(qc.LineAddr)) {
			h.Queue.Dequeue()
			h.squash()
			continue
		}
		if _, busy := h.inflightSet[qc.LineAddr]; busy {
			h.Queue.Dequeue()
			h.squash()
			continue
		}
		h.Queue.Dequeue()
		used++

		// The prefetch occupies an L1 port this cycle and then walks the
		// lower hierarchy like a demand miss, tagged as prefetch traffic.
		h.Traffic.PrefetchAccesses++
		ready, _ := h.l2Access(now+uint64(h.cfg.L1.LatencyCycles), qc.LineAddr, true)
		h.Pf.Issued++
		h.m.pfIssued.Inc()
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindPrefetchIssue,
				LineAddr: qc.LineAddr, PC: qc.TriggerPC, Source: qc.Source})
		}
		h.BySource[qc.Source]++
		f := inflight{
			done:      ready,
			lineAddr:  qc.LineAddr,
			triggerPC: qc.TriggerPC,
			software:  qc.Software,
			source:    qc.Source,
		}
		h.inflight.push(f)
		h.inflightSet[qc.LineAddr] = f
	}
	return used
}

// Tick completes prefetch fills whose data has arrived by cycle now. A
// fill whose line was demand-fetched while the prefetch was in flight is
// late: it is dropped and classified bad (the prefetch did not cover the
// demand access).
func (h *Hierarchy) Tick(now uint64) {
	for len(h.inflight) > 0 && h.inflight[0].done <= now {
		f := h.inflight.pop()
		if f.iside {
			h.tickI(f)
			continue
		}
		if n := h.merged[f.lineAddr]; n > 0 {
			// A demand miss already claimed this fill; the line was
			// installed (as a referenced prefetch) at merge time. Guard
			// against consuming the marker for a *live* in-flight entry
			// that happens to complete on the same cycle: merge markers
			// belong only to entries no longer tracked in inflightSet.
			if cur, live := h.inflightSet[f.lineAddr]; !live || cur != f {
				if n == 1 {
					delete(h.merged, f.lineAddr)
				} else {
					h.merged[f.lineAddr] = n - 1
				}
				continue
			}
		}
		delete(h.inflightSet, f.lineAddr)
		// Events from this fill are stamped at its arrival cycle, which
		// is exact even during the end-of-run drain (Tick(^uint64(0))).
		h.now = f.done
		if h.L1.Contains(f.lineAddr) || (h.Buffer != nil && h.Buffer.Contains(f.lineAddr)) {
			h.LatePrefetches++
			h.Pf.Bad++
			h.m.pfLate.Inc()
			h.m.pfBad.Inc()
			if h.Trace != nil {
				h.Trace.Emit(trace.Event{Cycle: f.done, Kind: trace.KindPrefetchLate,
					LineAddr: f.lineAddr, PC: f.triggerPC, Source: f.source})
			}
			h.Filter.Train(core.Feedback{
				LineAddr:   f.lineAddr,
				TriggerPC:  f.triggerPC,
				Referenced: false,
				Source:     core.SourceByName(f.source),
			})
			continue
		}
		if h.Trace != nil {
			h.Trace.Emit(trace.Event{Cycle: f.done, Kind: trace.KindPrefetchFill,
				LineAddr: f.lineAddr, PC: f.triggerPC, Source: f.source})
		}
		h.m.pfFills.Inc()
		if h.Buffer != nil {
			evicted, hadEvict := h.Buffer.Insert(f.lineAddr, f.triggerPC, f.software, uint8(core.SourceByName(f.source)))
			if hadEvict {
				if evicted.Referenced {
					h.Pf.Good++
					h.m.pfGood.Inc()
				} else {
					h.Pf.Bad++
					h.m.pfBad.Inc()
				}
				if h.Trace != nil {
					h.Trace.Emit(trace.Event{Cycle: f.done, Kind: trace.KindPrefetchEvict,
						LineAddr: evicted.LineAddr, PC: evicted.TriggerPC, Good: evicted.Referenced})
				}
				h.Filter.Train(core.Feedback{
					LineAddr:   evicted.LineAddr,
					TriggerPC:  evicted.TriggerPC,
					Referenced: evicted.Referenced,
					Source:     core.Source(evicted.Source),
				})
			}
			continue
		}
		line, evicted, hadEvict := h.fillL1(f.lineAddr, true)
		if h.Tax != nil {
			h.Tax.OnPrefetchFill(f.lineAddr, evicted.Tag, hadEvict)
		}
		line.PIB = true
		line.RIB = false
		line.TriggerPC = f.triggerPC
		line.SoftPF = f.software
		line.PFSource = uint8(core.SourceByName(f.source))
	}
}

// ResetStats zeroes every statistic accumulated so far while leaving all
// architectural state — cache contents, shadow directories, the filter's
// history table, queued and in-flight prefetches — warm. Used to exclude
// cold-start effects from measurement after a warmup phase.
func (h *Hierarchy) ResetStats() {
	h.Pf = stats.Prefetches{}
	h.Traffic = stats.Traffic{}
	h.BySource = make(map[string]uint64)
	h.LatePrefetches = 0
	h.Merged = 0
	h.DeadGated = 0
	h.IPf = stats.Prefetches{}
	h.FetchBlocks, h.FetchMisses, h.MergedI = 0, 0, 0
	if h.L1I != nil {
		h.L1I.Stats = cache.Stats{}
	}
	if h.IQueue != nil {
		h.IQueue.Enqueued, h.IQueue.Squashed, h.IQueue.Overflows, h.IQueue.Dequeued = 0, 0, 0, 0
	}
	h.m.reset()
	if h.Dead != nil {
		h.Dead.ResetStats()
	}
	h.L1.Stats = cache.Stats{}
	h.L2.Stats = cache.Stats{}
	h.Bus.ResetStats()
	h.Mem.Requests, h.Mem.PrefetchRequests, h.Mem.QueueStalls = 0, 0, 0
	h.Queue.Enqueued, h.Queue.Squashed, h.Queue.Overflows, h.Queue.Dequeued = 0, 0, 0, 0
	if r, ok := h.Filter.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
	if h.Tax != nil {
		h.Tax.ResetCounts()
	}
}

// QueuedPrefetches returns the current prefetch queue depth.
func (h *Hierarchy) QueuedPrefetches() int { return h.Queue.Len() }

// InFlight returns the number of outstanding prefetch fills.
func (h *Hierarchy) InFlight() int { return len(h.inflight) }

// Finish classifies state left at end of run: resident prefetched L1
// lines (by RIB), resident buffer entries (by Referenced), and completes
// all in-flight fills so counter conservation holds. Queued-but-unissued
// prefetches are counted as overflow casualties.
func (h *Hierarchy) Finish() {
	// Complete whatever is still in flight.
	h.Tick(^uint64(0))

	for _, qc := range h.Queue.Drain() {
		_ = qc
		h.Pf.Overflow++
		h.m.pfOverflow.Inc()
	}

	h.L1.ForEach(func(line *cache.Line) {
		if !line.PIB {
			return
		}
		if line.RIB {
			h.Pf.Good++
			h.Pf.ResidentGood++
			h.m.pfGood.Inc()
		} else {
			h.Pf.Bad++
			h.Pf.ResidentBad++
			h.m.pfBad.Inc()
		}
	})
	if h.Buffer != nil {
		for _, e := range h.Buffer.Drain() {
			if e.Referenced {
				h.Pf.Good++
				h.Pf.ResidentGood++
				h.m.pfGood.Inc()
			} else {
				h.Pf.Bad++
				h.Pf.ResidentBad++
				h.m.pfBad.Inc()
			}
		}
	}
	if h.IQueue != nil {
		for range h.IQueue.Drain() {
			h.IPf.Overflow++
		}
	}
	if h.L1I != nil {
		h.L1I.ForEach(func(line *cache.Line) {
			if !line.PIB {
				return
			}
			if line.RIB {
				h.IPf.Good++
				h.IPf.ResidentGood++
			} else {
				h.IPf.Bad++
				h.IPf.ResidentBad++
			}
		})
	}
	if h.Tax != nil {
		h.Tax.Finish()
	}
}
