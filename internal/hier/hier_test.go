package hier

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xrand"
)

// testConfig returns a small machine with hardware prefetching off, so
// tests can inject prefetches deliberately via the filter path.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.Prefetch.EnableNSP = false
	cfg.Prefetch.EnableSDP = false
	cfg.Prefetch.EnableSoftware = true
	return cfg
}

func newHier(t *testing.T, cfg config.Config, f core.Filter) *Hierarchy {
	t.Helper()
	if f == nil {
		f = core.NewNull()
	}
	h, err := New(cfg, f, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	bad := config.Default()
	bad.L1.SizeBytes = 0
	if _, err := New(bad, core.NewNull(), nil); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := New(config.Default(), nil, nil); err == nil {
		t.Fatal("nil filter should fail")
	}
}

func TestDemandHitLatency(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.DemandAccess(10, 0x400000, 0x1000, false) // cold miss fills the line
	done := h.DemandAccess(500, 0x400000, 0x1000, false)
	if done != 500+uint64(h.Config().L1.LatencyCycles) {
		t.Fatalf("hit latency = %d", done-500)
	}
	if h.L1.Stats.DemandHits != 1 || h.L1.Stats.DemandMisses != 1 {
		t.Fatalf("stats = %+v", h.L1.Stats)
	}
}

func TestDemandMissGoesToMemory(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	done := h.DemandAccess(0, 0x400000, 0x1000, false)
	// Cold miss: L1(1) + L2 miss(15) + memory(150) + bus — at least 166.
	if done < 166 {
		t.Fatalf("cold miss completed too fast: %d", done)
	}
	if h.Traffic.MemAccesses != 1 || h.L2.Stats.DemandMisses != 1 {
		t.Fatalf("traffic = %+v", h.Traffic)
	}
}

func TestDemandMissL2Hit(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.DemandAccess(0, 0x400000, 0x1000, false)
	// Evict from the tiny direct-mapped L1 by touching the conflicting set.
	h.DemandAccess(1000, 0x400000, 0x1000+8192, false)
	// Now the original line is L2-resident only.
	done := h.DemandAccess(2000, 0x400000, 0x1000, false)
	lat := done - 2000
	if lat < 16 || lat > 30 {
		t.Fatalf("L2 hit latency = %d, want ~16-18", lat)
	}
	if h.L2.Stats.DemandHits != 1 {
		t.Fatalf("L2 stats = %+v", h.L2.Stats)
	}
}

func TestStoreSetsDirtyAndWritesBack(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.DemandAccess(0, 0x400000, 0x1000, true)
	line, ok := h.L1.Peek(h.LineAddr(0x1000))
	if !ok || !line.Dirty {
		t.Fatal("store should dirty the line")
	}
	// Conflict eviction triggers a writeback into the L2.
	h.DemandAccess(1000, 0x400000, 0x1000+8192, false)
	if h.L1.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", h.L1.Stats.Writebacks)
	}
	l2line, ok := h.L2.Peek(h.LineAddr(0x1000))
	if !ok || !l2line.Dirty {
		t.Fatal("writeback must land dirty in the L2")
	}
}

func TestSoftwarePrefetchFlow(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	if h.Queue.Len() != 1 {
		t.Fatalf("queue len = %d", h.Queue.Len())
	}
	// Issue it and let it complete.
	used := h.IssuePrefetches(1, 3)
	if used != 1 {
		t.Fatalf("ports used = %d", used)
	}
	if h.InFlight() != 1 {
		t.Fatalf("in flight = %d", h.InFlight())
	}
	h.Tick(10_000)
	if h.InFlight() != 0 {
		t.Fatal("fill should have completed")
	}
	line, ok := h.L1.Peek(h.LineAddr(0x2000))
	if !ok || !line.PIB || line.RIB || line.TriggerPC != 0x400000 || !line.SoftPF {
		t.Fatalf("prefetched line metadata: %+v", line)
	}
	if h.Pf.Issued != 1 {
		t.Fatalf("issued = %d", h.Pf.Issued)
	}
}

func TestSoftwarePrefetchDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetch.EnableSoftware = false
	h := newHier(t, cfg, nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	if h.Queue.Len() != 0 {
		t.Fatal("disabled software prefetch must be ignored")
	}
}

func TestFilterRejectTerminatesPrefetch(t *testing.T) {
	f, _ := core.NewPA(64, 2, 2, core.IndexDirect)
	h := newHier(t, testConfig(), f)
	la := h.LineAddr(0x2000)
	// Train the line bad.
	f.Train(core.Feedback{LineAddr: la, Referenced: false})
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	if h.Queue.Len() != 0 {
		t.Fatal("rejected prefetch must not enter the queue")
	}
	if h.Pf.Filtered != 1 {
		t.Fatalf("filtered = %d", h.Pf.Filtered)
	}
}

func TestGoodPrefetchClassification(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	h.Tick(10_000)
	// Demand-reference the prefetched line: RIB set.
	h.DemandAccess(10_001, 0x400100, 0x2000, false)
	line, _ := h.L1.Peek(h.LineAddr(0x2000))
	if !line.RIB {
		t.Fatal("demand reference must set RIB")
	}
	// Evict it via the conflicting set: classifies good.
	h.DemandAccess(20_000, 0x400200, 0x2000+8192, false)
	if h.Pf.Good != 1 || h.Pf.Bad != 0 {
		t.Fatalf("classification = %+v", h.Pf)
	}
	// The filter was trained with Referenced=true.
	if h.Filter.Stats().TrainGood != 1 {
		t.Fatalf("filter stats = %+v", h.Filter.Stats())
	}
}

func TestBadPrefetchClassification(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	h.Tick(10_000)
	// Evict without ever referencing: bad.
	h.DemandAccess(20_000, 0x400200, 0x2000+8192, false)
	if h.Pf.Bad != 1 || h.Pf.Good != 0 {
		t.Fatalf("classification = %+v", h.Pf)
	}
	if h.Filter.Stats().TrainBad != 1 {
		t.Fatalf("filter stats = %+v", h.Filter.Stats())
	}
}

func TestMSHRMergeClassifiesGood(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	// Demand the line while the prefetch is still in flight.
	done := h.DemandAccess(2, 0x400100, 0x2000, false)
	if h.Merged != 1 {
		t.Fatalf("merged = %d", h.Merged)
	}
	if done < 10 {
		t.Fatalf("merged demand should wait for the fill, done=%d", done)
	}
	line, ok := h.L1.Peek(h.LineAddr(0x2000))
	if !ok || !line.PIB || !line.RIB {
		t.Fatalf("merged line should be a referenced prefetch: %+v", line)
	}
	// Completing the original fill must not double-install or classify.
	h.Tick(100_000)
	if h.LatePrefetches != 0 || h.Pf.Bad != 0 {
		t.Fatalf("merge misclassified: late=%d pf=%+v", h.LatePrefetches, h.Pf)
	}
}

func TestLatePrefetchClassifiedBad(t *testing.T) {
	cfg := testConfig()
	h := newHier(t, cfg, nil)
	// Demand fetch the line first (fills L1 immediately).
	h.DemandAccess(0, 0x400100, 0x2000, false)
	// A prefetch for a DIFFERENT line that will be resident when it lands:
	// prefetch, then demand-fetch the same line... demand merges instead.
	// To create a genuinely late prefetch, prefetch line X while X is
	// already resident — blocked by squash. Instead: prefetch X, evict it
	// in flight? Simplest: fetch on demand between issue and completion is
	// a merge, so lateness arises only via Buffer-less residency races.
	// Use the squash-free path: issue prefetch, then demand access AFTER
	// removing it from the in-flight set via Tick — covered by merge test.
	// Here we verify the Tick-time late path directly.
	h.SoftwarePrefetch(10, 0x400000, 0x3000)
	h.IssuePrefetches(11, 3)
	// Force-install the line as if a demand raced without the MSHR
	// noticing (e.g. filled by an overlapping writeback path).
	delete(h.inflightSet, h.LineAddr(0x3000))
	h.fillL1(h.LineAddr(0x3000), false)
	h.Tick(100_000)
	if h.LatePrefetches != 1 || h.Pf.Bad != 1 {
		t.Fatalf("late = %d, pf = %+v", h.LatePrefetches, h.Pf)
	}
}

func TestDuplicateSquashResident(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.DemandAccess(0, 0x400000, 0x2000, false) // line now L1-resident
	h.SoftwarePrefetch(10, 0x400000, 0x2000)
	if h.Queue.Len() != 0 || h.Pf.Squashed != 1 {
		t.Fatalf("resident duplicate not squashed: queue=%d squashed=%d", h.Queue.Len(), h.Pf.Squashed)
	}
}

func TestDuplicateSquashQueued(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.SoftwarePrefetch(1, 0x400004, 0x2000)
	if h.Queue.Len() != 1 || h.Pf.Squashed != 1 {
		t.Fatalf("queued duplicate not squashed: queue=%d squashed=%d", h.Queue.Len(), h.Pf.Squashed)
	}
}

func TestDuplicateSquashInFlight(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	h.SoftwarePrefetch(2, 0x400004, 0x2000)
	if h.Queue.Len() != 0 || h.Pf.Squashed != 1 {
		t.Fatalf("in-flight duplicate not squashed: queue=%d squashed=%d", h.Queue.Len(), h.Pf.Squashed)
	}
}

func TestIssueRespectsPortBudget(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	for i := 0; i < 10; i++ {
		h.SoftwarePrefetch(0, 0x400000+uint64(i)*4, uint64(0x2000+i*64))
	}
	if used := h.IssuePrefetches(1, 2); used != 2 {
		t.Fatalf("used = %d, want 2", used)
	}
	if h.Queue.Len() != 8 {
		t.Fatalf("queue len = %d", h.Queue.Len())
	}
	if used := h.IssuePrefetches(2, 0); used != 0 {
		t.Fatal("zero ports must issue nothing")
	}
}

func TestFinishClassifiesResidents(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	// Two prefetches: one referenced, one not.
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.SoftwarePrefetch(0, 0x400004, 0x3000)
	h.IssuePrefetches(1, 3)
	h.Tick(100_000)
	h.DemandAccess(100_001, 0x400100, 0x2000, false) // reference the first
	h.Finish()
	if h.Pf.Good != 1 || h.Pf.Bad != 1 {
		t.Fatalf("finish classification: %+v", h.Pf)
	}
	if h.Pf.ResidentGood != 1 || h.Pf.ResidentBad != 1 {
		t.Fatalf("resident accounting: %+v", h.Pf)
	}
}

func TestConservationGoodPlusBadEqualsIssued(t *testing.T) {
	h := newHier(t, config.Default(), nil) // hardware prefetchers on
	rng := xrand.New(42)
	cycle := uint64(0)
	for i := 0; i < 20000; i++ {
		cycle += 2
		h.Tick(cycle)
		addr := rng.Uint64n(1 << 20)
		h.DemandAccess(cycle, 0x400000+rng.Uint64n(256)*4, addr, rng.Bool(0.2))
		h.IssuePrefetches(cycle, 2)
	}
	h.Finish()
	if got := h.Pf.Good + h.Pf.Bad; got != h.Pf.Issued {
		t.Fatalf("classified %d != issued %d (good=%d bad=%d late=%d merged=%d)",
			got, h.Pf.Issued, h.Pf.Good, h.Pf.Bad, h.LatePrefetches, h.Merged)
	}
}

func TestBufferModePromotion(t *testing.T) {
	cfg := testConfig()
	cfg.Buffer.Enable = true
	h := newHier(t, cfg, nil)
	if h.Buffer == nil {
		t.Fatal("buffer should be built")
	}
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	h.Tick(100_000)
	if h.L1.Contains(h.LineAddr(0x2000)) {
		t.Fatal("buffer mode must not fill the L1 with prefetches")
	}
	if !h.Buffer.Contains(h.LineAddr(0x2000)) {
		t.Fatal("prefetch should land in the buffer")
	}
	// Demand hit in the buffer promotes into L1 and classifies good.
	done := h.DemandAccess(100_001, 0x400100, 0x2000, false)
	if done != 100_001+uint64(cfg.L1.LatencyCycles) {
		t.Fatalf("buffer hit latency = %d", done-100_001)
	}
	if !h.L1.Contains(h.LineAddr(0x2000)) {
		t.Fatal("promotion should install in the L1")
	}
	if h.Pf.Good != 1 {
		t.Fatalf("promotion should classify good: %+v", h.Pf)
	}
}

func TestBufferConservation(t *testing.T) {
	cfg := config.Default()
	cfg.Buffer.Enable = true
	h := newHier(t, cfg, nil)
	rng := xrand.New(43)
	cycle := uint64(0)
	for i := 0; i < 20000; i++ {
		cycle += 2
		h.Tick(cycle)
		h.DemandAccess(cycle, 0x400000+rng.Uint64n(256)*4, rng.Uint64n(1<<20), false)
		h.IssuePrefetches(cycle, 2)
	}
	h.Finish()
	if got := h.Pf.Good + h.Pf.Bad; got != h.Pf.Issued {
		t.Fatalf("buffer mode classified %d != issued %d", got, h.Pf.Issued)
	}
}

func TestResetStats(t *testing.T) {
	h := newHier(t, config.Default(), nil)
	rng := xrand.New(44)
	for i := uint64(0); i < 5000; i++ {
		h.Tick(i * 2)
		h.DemandAccess(i*2, 0x400000, rng.Uint64n(1<<20), false)
		h.IssuePrefetches(i*2, 2)
	}
	resident := h.L1.ValidLines()
	h.ResetStats()
	if h.Pf != (Hierarchy{}).Pf || h.Traffic.DemandAccesses != 0 {
		t.Fatalf("stats not reset: %+v", h.Pf)
	}
	if h.L1.Stats.DemandAccesses != 0 || h.L2.Stats.DemandAccesses != 0 {
		t.Fatal("cache stats not reset")
	}
	if h.L1.ValidLines() != resident {
		t.Fatal("reset must not flush the cache")
	}
}

func TestNSPChainThroughHierarchy(t *testing.T) {
	cfg := config.Default()
	cfg.Prefetch.EnableSDP = false
	cfg.Prefetch.EnableSoftware = false
	h := newHier(t, cfg, nil)
	// A miss on line 0x1000 should generate an NSP candidate for the next
	// line and queue it.
	h.DemandAccess(0, 0x400000, 0x1000, false)
	if h.Queue.Len() != 1 {
		t.Fatalf("NSP did not queue: len=%d", h.Queue.Len())
	}
	c, _ := h.Queue.Front()
	if c.LineAddr != h.LineAddr(0x1000)+1 || c.Source != "nsp" {
		t.Fatalf("candidate = %+v", c)
	}
}

func TestPrefetchTrafficTagged(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	if h.Traffic.PrefetchAccesses != 1 || h.Traffic.PrefetchL2 != 1 || h.Traffic.PrefetchMem != 1 {
		t.Fatalf("traffic = %+v", h.Traffic)
	}
	if h.BySource["sw"] != 1 {
		t.Fatalf("by source = %+v", h.BySource)
	}
}

func TestQueueOverflowCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetch.QueueEntries = 2
	h := newHier(t, cfg, nil)
	for i := 0; i < 5; i++ {
		h.SoftwarePrefetch(0, uint64(0x400000+i*4), uint64(0x2000+i*64))
	}
	if h.Pf.Overflow != 3 {
		t.Fatalf("overflow = %d, want 3", h.Pf.Overflow)
	}
}

func TestFinishCountsUnissuedQueueAsOverflow(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.SoftwarePrefetch(0, 0x400004, 0x3000)
	h.Finish() // never issued
	if h.Pf.Overflow != 2 {
		t.Fatalf("unissued prefetches should count as overflow: %+v", h.Pf)
	}
	if h.Pf.Classified() != 0 {
		t.Fatal("unissued prefetches must not classify")
	}
}

func TestDeadBlockWiring(t *testing.T) {
	cfg := testConfig()
	cfg.Filter.Kind = config.FilterDeadBlock
	h := newHier(t, cfg, nil)
	if h.Dead == nil {
		t.Fatal("dead-block predictor should be built")
	}
	// Fill the target set with a live (freshly accessed) line; a prefetch
	// into the conflicting line must be gated.
	h.DemandAccess(0, 0x400000, 0x2000, false)
	h.SoftwarePrefetch(10, 0x400004, 0x2000+8192)
	if h.DeadGated != 1 || h.Queue.Len() != 0 {
		t.Fatalf("gate: DeadGated=%d queue=%d", h.DeadGated, h.Queue.Len())
	}
	// A prefetch into an empty set passes.
	h.SoftwarePrefetch(11, 0x400008, 0x2000+64)
	if h.Queue.Len() != 1 {
		t.Fatal("free-frame prefetch should pass the gate")
	}
}

func TestL2HitPrefetchFasterThanMemory(t *testing.T) {
	h := newHier(t, testConfig(), nil)
	// Warm the L2 with the line, then evict from L1.
	h.DemandAccess(0, 0x400000, 0x2000, false)
	h.DemandAccess(1000, 0x400000, 0x2000+8192, false)
	// Prefetch the line back: should come from the L2, not memory.
	h.SoftwarePrefetch(2000, 0x400004, 0x2000)
	h.IssuePrefetches(2001, 3)
	before := h.Traffic.MemAccesses
	h.Tick(100_000)
	if h.Traffic.MemAccesses != before {
		t.Fatal("L2-resident prefetch must not touch memory")
	}
	if !h.L1.Contains(h.LineAddr(0x2000)) {
		t.Fatal("prefetch should have filled the L1")
	}
}

func TestVictimCacheRescue(t *testing.T) {
	cfg := testConfig()
	cfg.VictimEntries = 4
	h := newHier(t, cfg, nil)
	if h.Victim == nil {
		t.Fatal("victim cache should be built")
	}
	// Fill a line, evict it via a conflict, then re-demand it: the victim
	// cache must rescue it without an L2 access.
	h.DemandAccess(0, 0x400000, 0x2000, true) // dirty
	h.DemandAccess(1000, 0x400004, 0x2000+8192, false)
	if !h.Victim.Contains(h.LineAddr(0x2000)) {
		t.Fatal("eviction should land in the victim cache")
	}
	l2Before := h.L2.Stats.DemandAccesses
	done := h.DemandAccess(2000, 0x400008, 0x2000, false)
	if done != 2000+uint64(cfg.L1.LatencyCycles)+1 {
		t.Fatalf("victim rescue latency = %d", done-2000)
	}
	if h.L2.Stats.DemandAccesses != l2Before {
		t.Fatal("victim hit must not touch the L2")
	}
	line, ok := h.L1.Peek(h.LineAddr(0x2000))
	if !ok || !line.Dirty {
		t.Fatal("rescued line must return dirty")
	}
}

func TestVictimCacheDirtyWriteback(t *testing.T) {
	cfg := testConfig()
	cfg.VictimEntries = 1
	h := newHier(t, cfg, nil)
	h.DemandAccess(0, 0x400000, 0x2000, true)         // dirty line A
	h.DemandAccess(100, 0x400004, 0x2000+8192, false) // A -> victim cache
	h.DemandAccess(200, 0x400008, 0x3000, false)
	h.DemandAccess(300, 0x40000c, 0x3000+8192, false) // B evicts A from VC
	// A's dirty data must have reached the L2.
	l2line, ok := h.L2.Peek(h.LineAddr(0x2000))
	if !ok || !l2line.Dirty {
		t.Fatal("victim-cache eviction must write back dirty data")
	}
}

func TestVictimClassificationUnchanged(t *testing.T) {
	// The filter's verdict is rendered at L1 eviction regardless of the
	// victim cache below it.
	cfg := testConfig()
	cfg.VictimEntries = 4
	h := newHier(t, cfg, nil)
	h.SoftwarePrefetch(0, 0x400000, 0x2000)
	h.IssuePrefetches(1, 3)
	h.Tick(10_000)
	h.DemandAccess(20_000, 0x400200, 0x2000+8192, false) // evict unreferenced
	if h.Pf.Bad != 1 {
		t.Fatalf("classification must happen at L1 eviction: %+v", h.Pf)
	}
}
