package hier

import (
	"testing"

	"repro/internal/config"
	"repro/internal/frontend"
	"repro/internal/xrand"
)

// frontendConfig returns the small test machine with the front end
// enabled and the given instruction prefetcher.
func frontendConfig(kind config.IPrefetchKind) config.Config {
	cfg := testConfig()
	fe := config.DefaultFrontend()
	fe.IPrefetch = kind
	cfg.Frontend = &fe
	return cfg
}

// queueIPrefetch pushes one instruction-prefetch candidate straight
// into the I-queue via the submit path (filter is Null, so it passes).
func queueIPrefetch(t *testing.T, h *Hierarchy, block uint64) {
	t.Helper()
	before := h.IQueue.Len()
	h.submitI(h.now, frontend.Candidate{Block: block, TriggerPC: 0x40_0000, Source: "nextline"})
	if h.IQueue.Len() != before+1 {
		t.Fatalf("candidate %#x did not enqueue", block)
	}
}

// TestIPrefetchYieldsToDemand pins the shared-L2 arbitration order
// within a cycle: demand-class accesses (D-side misses and fetch
// misses) run first and claim the single L2 port; IssueIPrefetches —
// called last — must yield when the port is busy and only take an
// otherwise-idle slot. I-side fills therefore cannot starve demand.
func TestIPrefetchYieldsToDemand(t *testing.T) {
	h := newHier(t, frontendConfig(config.IPrefetchNone), nil)
	queueIPrefetch(t, h, 0x8000)

	// Cycle 100: a D-side demand miss claims the L2 port first...
	h.DemandAccess(100, 0x40_0000, 0x1000, false)
	// ...so the I-prefetch issue pass, which runs after it, yields.
	if used := h.IssueIPrefetches(100, 4); used != 0 {
		t.Fatalf("I-prefetch issued against a demand-busy L2 port (used=%d)", used)
	}
	if h.IQueue.Len() != 1 {
		t.Fatal("yielding must keep the candidate queued, not drop it")
	}

	// Once the port drains the prefetch goes out on the idle slot.
	idle := h.l2busyUntil + 10
	if used := h.IssueIPrefetches(idle, 4); used != 1 {
		t.Fatalf("idle-port issue used=%d, want 1", used)
	}
	if h.IPf.Issued != 1 {
		t.Fatalf("IPf.Issued = %d", h.IPf.Issued)
	}
}

// TestFetchMissClaimsPortBeforeIPrefetch pins the same order for the
// I-side's own demand class: a fetch miss is a demand access on the
// shared L2 and beats any queued instruction prefetch in its cycle.
func TestFetchMissClaimsPortBeforeIPrefetch(t *testing.T) {
	h := newHier(t, frontendConfig(config.IPrefetchNone), nil)
	queueIPrefetch(t, h, 0x8000)

	done := h.FetchAccess(100, 0x40_0000) // cold fetch miss → L2 → memory
	if done <= 100 {
		t.Fatalf("cold fetch miss completed instantly (done=%d)", done)
	}
	if h.FetchMisses != 1 || h.L1I.Stats.DemandMisses != 1 {
		t.Fatalf("fetch miss accounting: misses=%d l1i=%+v", h.FetchMisses, h.L1I.Stats)
	}
	if used := h.IssueIPrefetches(100, 4); used != 0 {
		t.Fatal("I-prefetch issued against a fetch-miss-busy L2 port")
	}
}

// TestIPrefetchNoBackToBackSlots pins the other half of the
// non-starvation guarantee: even with ports to spare, consecutive
// instruction prefetches never queue back-to-back L2 slots — the first
// issue makes the port busy, so the second yields to the data path.
func TestIPrefetchNoBackToBackSlots(t *testing.T) {
	h := newHier(t, frontendConfig(config.IPrefetchNone), nil)
	queueIPrefetch(t, h, 0x8000)
	queueIPrefetch(t, h, 0x8020)

	if used := h.IssueIPrefetches(100, 4); used != 1 {
		t.Fatalf("issued %d I-prefetches in one cycle, want exactly 1", used)
	}
	if h.IQueue.Len() != 1 {
		t.Fatalf("second candidate must stay queued, len=%d", h.IQueue.Len())
	}
	// A demand miss arriving right after waits at most one L2 occupancy
	// slot behind the single issued prefetch — never a convoy.
	start := uint64(100)
	busyBefore := h.l2busyUntil
	if busyBefore > start+l2Occupancy+uint64(h.cfg.Frontend.L1I.LatencyCycles) {
		t.Fatalf("one I-prefetch occupied the port for %d cycles", busyBefore-start)
	}
}

// TestFetchMSHRMergeWithIPrefetch pins the merge path: a fetch miss on
// a block with an instruction prefetch already in flight waits for that
// fill (not a fresh L2 walk) and installs it as a referenced prefetch,
// and the heap entry is consumed without double-classification.
func TestFetchMSHRMergeWithIPrefetch(t *testing.T) {
	h := newHier(t, frontendConfig(config.IPrefetchNone), nil)
	queueIPrefetch(t, h, 0x8000)
	if used := h.IssueIPrefetches(0, 1); used != 1 {
		t.Fatal("setup: prefetch did not issue")
	}
	fillDone := h.inflightISet[0x8000].done

	done := h.FetchAccess(5, 0x8004) // same block, mid-flight
	if done != fillDone {
		t.Fatalf("merged fetch done=%d, want the in-flight fill's %d", done, fillDone)
	}
	if h.MergedI != 1 {
		t.Fatalf("MergedI = %d", h.MergedI)
	}
	line, ok := h.L1I.Peek(0x8000)
	if !ok || !line.PIB || !line.RIB || line.TriggerPC != 0x40_0000 {
		t.Fatalf("merged line metadata: %+v (ok=%v)", line, ok)
	}
	// Draining the heap consumes the merge marker: no late-prefetch
	// misclassification, and the in-flight set is empty.
	h.Tick(^uint64(0) - 1)
	if h.IPf.Bad != 0 || h.LatePrefetches != 0 {
		t.Fatalf("merged fill misclassified: %+v late=%d", h.IPf, h.LatePrefetches)
	}
	if len(h.inflightISet) != 0 || len(h.mergedI) != 0 {
		t.Fatalf("I-side inflight state leaked: set=%d merged=%d", len(h.inflightISet), len(h.mergedI))
	}
}

// TestIConservationGoodPlusBadEqualsIssued is the I-side twin of the
// D-side conservation test: over a jumpy fetch stream with the
// next-line backend on, every issued instruction prefetch is
// classified exactly once.
func TestIConservationGoodPlusBadEqualsIssued(t *testing.T) {
	h := newHier(t, frontendConfig(config.IPrefetchNextLine), nil)
	rng := xrand.New(7)
	cycle := uint64(0)
	pc := uint64(0x40_0000)
	for i := 0; i < 20000; i++ {
		cycle += 2
		h.Tick(cycle)
		if done := h.FetchAccess(cycle, pc); done > cycle {
			cycle = done // front end stalls on the miss
		}
		if rng.Bool(0.1) { // taken branch: jump among a few hot regions
			pc = 0x40_0000 + rng.Uint64n(64)*1024
		} else {
			pc += 4
		}
		h.IssueIPrefetches(cycle, 1)
	}
	h.Finish()
	if got := h.IPf.Good + h.IPf.Bad; got != h.IPf.Issued {
		t.Fatalf("classified %d != issued %d (good=%d bad=%d late=%d mergedI=%d)",
			got, h.IPf.Issued, h.IPf.Good, h.IPf.Bad, h.LatePrefetches, h.MergedI)
	}
	if h.IPf.Issued == 0 || h.FetchMisses == 0 {
		t.Fatalf("stream too tame to test anything: %+v misses=%d", h.IPf, h.FetchMisses)
	}
	// D-side accounting must be untouched by I-side traffic.
	if h.Pf.Issued != 0 || h.L1.Stats.DemandAccesses != 0 {
		t.Fatalf("I-side run leaked into D-side stats: %+v l1=%+v", h.Pf, h.L1.Stats)
	}
}
