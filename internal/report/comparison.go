package report

import "sort"

// FilterComparisonRow is one (benchmark, filter backend) cell of a
// head-to-head filter comparison: the raw prefetch-classification counts
// plus the derived quality metrics the paper reports, and the IPC delta
// against the unfiltered run of the same benchmark.
type FilterComparisonRow struct {
	Benchmark string  `json:"benchmark"`
	Filter    string  `json:"filter"`
	Good      uint64  `json:"good"`
	Bad       uint64  `json:"bad"`
	Filtered  uint64  `json:"filtered"`
	Accuracy  float64 `json:"accuracy"` // good / (good + bad)
	Coverage  float64 `json:"coverage"` // good / (good + remaining demand misses)
	IPC       float64 `json:"ipc"`
	IPCDelta  float64 `json:"ipc_delta"` // relative to the "none" run of the benchmark
}

// SortFilterComparison orders rows benchmark-major, filter-minor, the
// stable order every renderer (CLI table, JSON response) presents.
func SortFilterComparison(rows []FilterComparisonRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Benchmark != rows[j].Benchmark {
			return rows[i].Benchmark < rows[j].Benchmark
		}
		return rows[i].Filter < rows[j].Filter
	})
}

// GeneratorComparisonRow is one (benchmark, generator, filter) cell of
// the cross-product sweep: the filter head-to-head metrics, attributed
// to the prefetch generator that produced the candidates. IPCDelta is
// against the unfiltered run of the same (benchmark, generator) pair.
type GeneratorComparisonRow struct {
	Generator string `json:"generator"`
	FilterComparisonRow
}

// SortGeneratorComparison orders rows benchmark-major, then generator,
// then filter — the stable order every renderer presents.
func SortGeneratorComparison(rows []GeneratorComparisonRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Benchmark != rows[j].Benchmark {
			return rows[i].Benchmark < rows[j].Benchmark
		}
		if rows[i].Generator != rows[j].Generator {
			return rows[i].Generator < rows[j].Generator
		}
		return rows[i].Filter < rows[j].Filter
	})
}

// GeneratorComparison renders the (generator × filter) cross-product
// table.
func GeneratorComparison(title string, rows []GeneratorComparisonRow) *Table {
	t := New(title, "benchmark", "generator", "filter", "good", "bad", "filtered",
		"accuracy", "coverage", "IPC", "dIPC")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Generator, r.Filter, I(r.Good), I(r.Bad), I(r.Filtered),
			Pct(r.Accuracy), Pct(r.Coverage), F(r.IPC), F(r.IPCDelta))
	}
	t.AddNote("accuracy = good/(good+bad); coverage = good/(good + L1 demand misses); dIPC vs the unfiltered (none) run of the same (benchmark, generator)")
	return t
}

// FilterComparison renders the head-to-head backend table.
func FilterComparison(title string, rows []FilterComparisonRow) *Table {
	t := New(title, "benchmark", "filter", "good", "bad", "filtered",
		"accuracy", "coverage", "IPC", "dIPC")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Filter, I(r.Good), I(r.Bad), I(r.Filtered),
			Pct(r.Accuracy), Pct(r.Coverage), F(r.IPC), F(r.IPCDelta))
	}
	t.AddNote("accuracy = good/(good+bad); coverage = good/(good + L1 demand misses); dIPC vs the unfiltered (none) run")
	return t
}

// IPrefetchComparisonRow is one (benchmark, instruction prefetcher,
// filter) cell of the I-side cross-product sweep: the instruction-
// prefetch classification counts, the front-end quality metrics
// (fetch-miss rate and I-pollution), and the IPC delta against the
// filterless run of the same (benchmark, iprefetcher) pair.
type IPrefetchComparisonRow struct {
	IPrefetcher   string  `json:"iprefetcher"`
	Benchmark     string  `json:"benchmark"`
	Filter        string  `json:"filter"`
	Good          uint64  `json:"good"`
	Bad           uint64  `json:"bad"`
	Filtered      uint64  `json:"filtered"`
	FetchMissRate float64 `json:"fetch_miss_rate"` // fetch misses / fetch blocks
	Pollution     float64 `json:"pollution"`       // bad / (good + bad)
	IPC           float64 `json:"ipc"`
	IPCDelta      float64 `json:"ipc_delta"` // vs the "none"-filter run of the pair
}

// SortIPrefetchComparison orders rows benchmark-major, then
// iprefetcher, then filter — the stable order every renderer presents.
func SortIPrefetchComparison(rows []IPrefetchComparisonRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Benchmark != rows[j].Benchmark {
			return rows[i].Benchmark < rows[j].Benchmark
		}
		if rows[i].IPrefetcher != rows[j].IPrefetcher {
			return rows[i].IPrefetcher < rows[j].IPrefetcher
		}
		return rows[i].Filter < rows[j].Filter
	})
}

// IPrefetchComparison renders the (iprefetcher × filter) cross-product
// table.
func IPrefetchComparison(title string, rows []IPrefetchComparisonRow) *Table {
	t := New(title, "benchmark", "iprefetcher", "filter", "good", "bad", "filtered",
		"fetch-miss", "I-pollution", "IPC", "dIPC")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.IPrefetcher, r.Filter, I(r.Good), I(r.Bad), I(r.Filtered),
			Pct(r.FetchMissRate), Pct(r.Pollution), F(r.IPC), F(r.IPCDelta))
	}
	t.AddNote("fetch-miss = L1I fetch misses / fetch blocks; I-pollution = bad/(good+bad) instruction prefetches; dIPC vs the unfiltered (none) run of the same (benchmark, iprefetcher)")
	return t
}
