package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	tb.AddNote("a note with %d", 42)
	out := tb.String()

	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "note: a note with 42") {
		t.Fatalf("missing note:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header and rows must align: "alpha" is the widest first column.
	var header, rowB string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
		}
		if strings.HasPrefix(l, "b") {
			rowB = l
		}
	}
	if header == "" || rowB == "" {
		t.Fatalf("missing lines:\n%s", out)
	}
	if strings.Index(header, "value") != strings.Index(rowB, "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row = %v", tb.Rows[0])
	}
	if tb.Rows[0][1] != "" || tb.Rows[0][2] != "" {
		t.Fatal("padding cells should be empty")
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.12345) != "0.1234" && F(0.12345) != "0.1235" {
		t.Fatalf("F = %q", F(0.12345))
	}
	if F2(1.2345) != "1.23" {
		t.Fatalf("F2 = %q", F2(1.2345))
	}
	if Pct(0.0912) != "9.1%" {
		t.Fatalf("Pct = %q", Pct(0.0912))
	}
	if I(42) != "42" {
		t.Fatalf("I = %q", I(42))
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty", "col")
	out := tb.String()
	if !strings.Contains(out, "col") {
		t.Fatalf("header missing:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("a|b", "1")
	tb.AddNote("footnote")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### demo", "| name | value |", "| --- | --- |", `a\|b`, "*footnote*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
