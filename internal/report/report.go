// Package report renders experiment results as aligned plain-text tables
// and CSV, the two formats the experiment CLI and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// F formats a float for table cells: fixed 4 significant decimals, compact.
func F(v float64) string { return fmt.Sprintf("%.4f", v) }

// F2 formats a float with 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// I formats an integer count.
func I(v uint64) string { return fmt.Sprintf("%d", v) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as GitHub-flavored markdown (pipes and
// a separator row), with notes as a trailing list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteByte('|')
		for _, cell := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
