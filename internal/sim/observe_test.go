package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestMetricsMatchRunAggregates pins the observability contract: after
// an instrumented run, the registry's live sim.pf.* counters equal the
// stats.Run aggregates exactly — same classification, same filter
// activity, across the warmup reset. An instrumented run must also
// return bit-identical results to an un-instrumented one.
func TestMetricsMatchRunAggregates(t *testing.T) {
	for _, filter := range []config.FilterKind{config.FilterNone, config.FilterPA} {
		reg := metrics.New()
		tr := trace.New(1 << 16).WithInterval(10_000)
		opts := Options{
			Benchmark:       "gzip",
			Config:          config.Default().WithFilter(filter),
			MaxInstructions: 50_000,
			Warmup:          10_000,
		}
		plain, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Trace = tr
		opts.Metrics = reg
		run, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if run.Cycles != plain.Cycles || run.Prefetches != plain.Prefetches {
			t.Fatalf("%s: instrumentation changed the simulation: %+v vs %+v",
				filter, run.Prefetches, plain.Prefetches)
		}

		s := reg.Snapshot()
		for name, want := range map[string]uint64{
			"sim.pf.issued":      run.Prefetches.Issued,
			"sim.pf.good":        run.Prefetches.Good,
			"sim.pf.bad":         run.Prefetches.Bad,
			"sim.pf.filtered":    run.Prefetches.Filtered,
			"sim.pf.squashed":    run.Prefetches.Squashed,
			"sim.pf.overflow":    run.Prefetches.Overflow,
			"sim.demand.misses":  run.L1DemandMisses,
			"sim.cpu.cycles":     run.Cycles,
			"sim.filter.queries": run.FilterQueries,
		} {
			if got := s.Counters[name]; got != want {
				t.Errorf("%s: metric %s = %d, want %d", filter, name, got, want)
			}
		}

		// The trace must carry the lifecycle: issues, fills, evictions.
		if tr.Total() == 0 {
			t.Fatalf("%s: no trace events", filter)
		}
		var issues, evicts uint64
		for _, r := range tr.Rollups() {
			issues += r.Issued()
			evicts += r.GoodEvicts + r.BadEvicts
		}
		if issues == 0 || evicts == 0 {
			t.Fatalf("%s: rollups missing lifecycle: issues=%d evicts=%d", filter, issues, evicts)
		}
		// Trace covers the whole run including warmup, so its issue count
		// can only meet or exceed the post-warmup aggregate.
		if issues < run.Prefetches.Issued {
			t.Errorf("%s: traced issues %d < measured %d", filter, issues, run.Prefetches.Issued)
		}

		// JSONL export: every line decodes, cycle-stamped, known kind.
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
		if len(lines) == 0 {
			t.Fatalf("%s: empty JSONL export", filter)
		}
		for i, line := range lines {
			var obj struct {
				Cycle *uint64 `json:"cycle"`
				Kind  string  `json:"kind"`
			}
			if err := json.Unmarshal(line, &obj); err != nil {
				t.Fatalf("%s: line %d not JSON: %v\n%s", filter, i, err, line)
			}
			if obj.Cycle == nil || obj.Kind == "" {
				t.Fatalf("%s: line %d missing cycle/kind: %s", filter, i, line)
			}
		}
	}
}

// TestMetricsFilterDump checks the filter's end-of-run table-state dump:
// counter distribution must sum to the table size.
func TestMetricsFilterDump(t *testing.T) {
	reg := metrics.New()
	_, err := Run(Options{
		Benchmark:       "mcf",
		Config:          config.Default().WithFilter(config.FilterPA),
		MaxInstructions: 30_000,
		Warmup:          -1,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	var sum uint64
	for _, name := range []string{
		"sim.filter.table.counter0", "sim.filter.table.counter1",
		"sim.filter.table.counter2", "sim.filter.table.counter3",
	} {
		sum += s.Counters[name]
	}
	if sum != 4096 {
		t.Fatalf("table counter distribution sums to %d, want 4096", sum)
	}
}
