package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run(Options{Benchmark: "quake3"}); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.L1.Ports = 0
	if _, err := Run(Options{Benchmark: "mcf", Config: cfg}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestZeroConfigUsesDefault(t *testing.T) {
	r, err := Run(Options{Benchmark: "fpppp", MaxInstructions: 20_000, Warmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 20_000 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.Benchmark != "fpppp" || r.Filter != "none" {
		t.Fatalf("labels: %q / %q", r.Benchmark, r.Filter)
	}
}

func TestExplicitSource(t *testing.T) {
	var recs []isa.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, isa.Load(uint64(0x400000+(i%32)*4), uint64((i%4096)*32)))
	}
	r, err := Run(Options{
		Source:          isa.NewSliceSource(recs),
		Config:          config.Default(),
		MaxInstructions: int64(len(recs)),
		Warmup:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "custom" {
		t.Fatalf("label = %q", r.Benchmark)
	}
	if r.Instructions != uint64(len(recs)) {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.L1DemandAccesses != uint64(len(recs)) {
		t.Fatalf("accesses = %d", r.L1DemandAccesses)
	}
}

func TestNoPrefetchConfigZeroesPrefetchStats(t *testing.T) {
	cfg := NoPrefetchConfig(config.Default())
	r, err := Run(Options{Benchmark: "wave5", Config: cfg, MaxInstructions: 100_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefetches.Issued != 0 || r.Traffic.PrefetchAccesses != 0 || r.FilterQueries != 0 {
		t.Fatalf("prefetch machinery leaked: %+v", r.Prefetches)
	}
}

func TestDeterministicRuns(t *testing.T) {
	opts := Options{Benchmark: "gzip", Config: config.Default().WithFilter(config.FilterPA),
		MaxInstructions: 100_000, Warmup: 20_000}
	r1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Prefetches != r2.Prefetches ||
		r1.L1DemandMisses != r2.L1DemandMisses {
		t.Fatalf("simulation is not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	mk := func(seed uint64) stats.Run {
		cfg := config.Default()
		cfg.Seed = seed
		r, err := Run(Options{Benchmark: "gcc", Config: cfg, MaxInstructions: 100_000, Warmup: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if mk(1).Cycles == mk(99).Cycles {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestCustomFilterInjected(t *testing.T) {
	f := core.NewNull()
	r, err := Run(Options{
		Benchmark:       "mcf",
		Config:          config.Default(),
		Filter:          f,
		MaxInstructions: 50_000,
		Warmup:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter != "none" {
		t.Fatalf("filter label = %q", r.Filter)
	}
	if f.Stats().Queries == 0 {
		t.Fatal("injected filter should have been consulted")
	}
	if r.FilterQueries != f.Stats().Queries {
		t.Fatal("run must report the injected filter's stats")
	}
}

func TestConservationInvariant(t *testing.T) {
	for _, bench := range []string{"em3d", "wave5", "mcf"} {
		r, err := Run(Options{Benchmark: bench, Config: config.Default(),
			MaxInstructions: 150_000, Warmup: -1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Prefetches.Classified() != r.Prefetches.Issued {
			t.Fatalf("%s: classified %d != issued %d", bench,
				r.Prefetches.Classified(), r.Prefetches.Issued)
		}
	}
}

func TestRunStaticFlow(t *testing.T) {
	r, err := RunStatic(Options{
		Benchmark:       "gcc",
		Config:          config.Default(),
		MaxInstructions: 80_000,
		Warmup:          20_000,
	}, core.PAKey, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter != "pa-static" {
		t.Fatalf("filter = %q", r.Filter)
	}
}

func TestRunStaticRejectsSourceAndFilter(t *testing.T) {
	if _, err := RunStatic(Options{Benchmark: "gcc", Filter: core.NewNull()}, core.PAKey, 0.5); err == nil {
		t.Fatal("explicit filter should be rejected")
	}
	if _, err := RunStatic(Options{Source: isa.NewSliceSource(nil)}, core.PAKey, 0.5); err == nil {
		t.Fatal("explicit source should be rejected")
	}
}

// Direction-of-effect integration tests: the paper's headline claims.

func TestFilterReducesBadPrefetches(t *testing.T) {
	base := config.Default()
	for _, bench := range []string{"em3d", "mcf", "perimeter"} {
		none, err := Run(Options{Benchmark: bench, Config: base, MaxInstructions: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		pa, err := Run(Options{Benchmark: bench, Config: base.WithFilter(config.FilterPA), MaxInstructions: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		if none.Prefetches.Bad == 0 {
			t.Fatalf("%s: baseline generated no bad prefetches to filter", bench)
		}
		red := stats.Reduction(float64(none.Prefetches.Bad), float64(pa.Prefetches.Bad))
		if red < 0.8 {
			t.Errorf("%s: PA filter removed only %.0f%% of bad prefetches", bench, red*100)
		}
	}
}

func TestFilterReducesPrefetchTraffic(t *testing.T) {
	base := config.Default()
	none, err := Run(Options{Benchmark: "em3d", Config: base, MaxInstructions: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Run(Options{Benchmark: "em3d", Config: base.WithFilter(config.FilterPA), MaxInstructions: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Traffic.PrefetchAccesses >= none.Traffic.PrefetchAccesses {
		t.Fatalf("filtered prefetch traffic %d should be below %d",
			pa.Traffic.PrefetchAccesses, none.Traffic.PrefetchAccesses)
	}
}

func TestFilterImprovesPollutedIPC(t *testing.T) {
	base := config.Default()
	for _, bench := range []string{"em3d", "mcf"} {
		none, err := Run(Options{Benchmark: bench, Config: base, MaxInstructions: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		pc, err := Run(Options{Benchmark: bench, Config: base.WithFilter(config.FilterPC), MaxInstructions: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		if pc.IPC() <= none.IPC() {
			t.Errorf("%s: PC filter IPC %.3f should beat unfiltered %.3f (pollution-bound workload)",
				bench, pc.IPC(), none.IPC())
		}
	}
}

func TestDeadBlockFilterRuns(t *testing.T) {
	cfg := config.Default().WithFilter(config.FilterDeadBlock)
	r, err := Run(Options{Benchmark: "mcf", Config: cfg, MaxInstructions: 100_000, Warmup: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter != "deadblock" {
		t.Fatalf("filter label = %q", r.Filter)
	}
	// The gate must actually drop something on a pollution-heavy workload.
	if r.Prefetches.Filtered == 0 {
		t.Fatal("dead-block gate dropped nothing on mcf")
	}
}

func TestDeadBlockGateProtectsLiveLines(t *testing.T) {
	// On the stream micro-workload every line is touched again soon, so
	// victims look live and the gate should be strict; on random, victims
	// are never re-touched and the gate should learn to open up.
	strict, err := Run(Options{Benchmark: "stream",
		Config: config.Default().WithFilter(config.FilterDeadBlock), MaxInstructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(Options{Benchmark: "random",
		Config: config.Default().WithFilter(config.FilterDeadBlock), MaxInstructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	strictRate := stats.SafeRatio(float64(strict.Prefetches.Filtered),
		float64(strict.Prefetches.Filtered+strict.Prefetches.Issued))
	looseRate := stats.SafeRatio(float64(loose.Prefetches.Filtered),
		float64(loose.Prefetches.Filtered+loose.Prefetches.Issued))
	if looseRate >= strictRate {
		t.Fatalf("dead-block gate: stream reject rate %.2f should exceed random %.2f",
			strictRate, looseRate)
	}
}

func TestMicroModelsRun(t *testing.T) {
	for _, bench := range []string{"stream", "random", "phased"} {
		r, err := Run(Options{Benchmark: bench, Config: config.Default(), MaxInstructions: 60_000, Warmup: 10_000})
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if r.Instructions != 60_000 {
			t.Fatalf("%s: retired %d", bench, r.Instructions)
		}
	}
}

func TestStreamLovesPrefetchingRandomHatesIt(t *testing.T) {
	// The two micro models bracket the prefetching design space: stream's
	// prefetches are nearly all good, random's nearly all bad.
	s, err := Run(Options{Benchmark: "stream", Config: config.Default(), MaxInstructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Options{Benchmark: "random", Config: config.Default(), MaxInstructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Prefetches.GoodFraction() < 0.8 {
		t.Fatalf("stream good fraction %.2f, want > 0.8", s.Prefetches.GoodFraction())
	}
	if r.Prefetches.GoodFraction() > 0.2 {
		t.Fatalf("random good fraction %.2f, want < 0.2", r.Prefetches.GoodFraction())
	}
}

func TestTaxonomyOptionPopulatesRun(t *testing.T) {
	r, err := Run(Options{Benchmark: "em3d", Config: config.Default(),
		MaxInstructions: 100_000, Warmup: 20_000, Taxonomy: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Taxonomy == nil {
		t.Fatal("taxonomy counts missing")
	}
	if r.Taxonomy.Total() == 0 {
		t.Fatal("taxonomy resolved nothing")
	}
	// The 4-way projection must be in the same ballpark as the 2-way
	// hardware classification (window heuristics allow modest drift).
	good, bad := r.Taxonomy.GoodBad()
	if good+bad == 0 || r.Prefetches.Classified() == 0 {
		t.Fatal("nothing classified")
	}
	ratio := float64(good+bad) / float64(r.Prefetches.Classified())
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("taxonomy total %d vs classified %d: drift too large", good+bad, r.Prefetches.Classified())
	}
}

// TestCalibrationBands is the workload-calibration regression guard:
// every paper benchmark's no-prefetch miss rates must stay in the same
// regime as Table 2 (see EXPERIMENTS.md for the exact values measured at
// full scale).
func TestCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full-size runs")
	}
	cfg := NoPrefetchConfig(config.Default())
	for _, spec := range workload.Paper() {
		r, err := Run(Options{Benchmark: spec.Name, Config: cfg,
			MaxInstructions: 2_000_000, Warmup: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		l1 := r.L1MissRate()
		if l1 < spec.PaperL1Miss/2.5 || l1 > spec.PaperL1Miss*2.5 {
			t.Errorf("%s: L1 miss %.4f outside 2.5x band of paper %.4f",
				spec.Name, l1, spec.PaperL1Miss)
		}
		// L2 regime: near-zero benchmarks stay < 10%; capacity-bound ones
		// stay in double digits.
		l2 := r.L2MissRate()
		if spec.PaperL2Miss < 0.05 && l2 > 0.12 {
			t.Errorf("%s: L2 miss %.4f should be near-zero (paper %.4f)",
				spec.Name, l2, spec.PaperL2Miss)
		}
		if spec.PaperL2Miss > 0.20 && (l2 < 0.08 || l2 > 0.60) {
			t.Errorf("%s: L2 miss %.4f should be capacity-bound like paper's %.4f",
				spec.Name, l2, spec.PaperL2Miss)
		}
	}
}
