// Package sim binds workload, CPU, memory hierarchy, prefetchers, and
// pollution filter into runnable simulations, and is the layer the public
// API, the experiment harness, and the CLIs drive.
package sim

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	pfilter "repro/internal/filter"
	"repro/internal/hier"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/taxonomy"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Options names what to simulate.
type Options struct {
	// Benchmark is a workload name from workload.Names(). Mutually
	// exclusive with Source.
	Benchmark string
	// Source supplies the trace directly (trace files, tests, custom
	// generators). When set, Benchmark is used only as a label.
	Source isa.Source
	// Config is the machine; zero value means config.Default().
	Config config.Config
	// Filter overrides the filter the config would build (used for custom
	// filters and for the static filter's two-phase flow). Optional.
	Filter core.Filter
	// MaxInstructions bounds the run; overrides Config.MaxInstructions
	// when positive.
	MaxInstructions int64
	// Warmup runs this many instructions before statistics collection
	// starts; caches, predictors, and the filter's history table stay warm
	// across the boundary. Negative disables warmup; zero selects
	// DefaultWarmup.
	Warmup int64
	// Taxonomy instruments the run with the full Srinivasan prefetch
	// taxonomy (reference [17]); the result lands in Run.Taxonomy.
	Taxonomy bool
	// Trace, when non-nil, receives cycle-stamped events for the whole
	// prefetch lifecycle (issue/filter/fill/reference/eviction), demand
	// misses, and bus grants. Purely observational. Warmup events are
	// recorded too; the trace is the full run's timeline.
	Trace *trace.Tracer
	// Metrics, when non-nil, receives live "sim.*" counters during the
	// run (reset at the warmup boundary alongside stats) and end-of-run
	// gauges for the CPU, caches, and filter. After Run returns, the
	// registry's sim.pf.good/bad/filtered counters equal the returned
	// Run.Prefetches aggregates exactly.
	Metrics *metrics.Registry
}

// DefaultInstructions is the per-run instruction budget experiments use
// when none is given. The paper runs 300M instructions per benchmark on
// native hardware; the synthetic models reach steady state much sooner.
const DefaultInstructions = 1_000_000

// DefaultWarmup is the instruction count excluded from measurement at the
// start of each run, long enough to populate the L2 and history table.
const DefaultWarmup = 1_000_000

// Run executes one simulation and returns its measurements.
func Run(opts Options) (stats.Run, error) {
	cfg := opts.Config
	if cfg.L1.SizeBytes == 0 { // zero value: use the paper's default machine
		cfg = config.Default()
	}
	if err := cfg.Validate(); err != nil {
		return stats.Run{}, err
	}

	src := opts.Source
	label := opts.Benchmark
	if src == nil {
		spec, ok := workload.ByName(opts.Benchmark)
		if !ok {
			return stats.Run{}, fmt.Errorf("sim: unknown benchmark %q", opts.Benchmark)
		}
		src = spec.New(cfg.Seed)
		label = spec.Name
	}
	if label == "" {
		label = "custom"
	}

	filter := opts.Filter
	if filter == nil {
		// The registry covers every backend, including the learned ones in
		// internal/filter; deadblock resolves to a pass-through core filter
		// because that baseline lives in the hierarchy (it needs the L1's
		// victim state).
		f, err := pfilter.New(cfg.Filter)
		if err != nil {
			return stats.Run{}, err
		}
		filter = f
	}

	maxInstr := cfg.MaxInstructions
	if opts.MaxInstructions > 0 {
		maxInstr = opts.MaxInstructions
	}
	if maxInstr == 0 {
		maxInstr = DefaultInstructions
	}

	h, err := hier.New(cfg, filter, xrand.New(cfg.Seed^0xfeed))
	if err != nil {
		return stats.Run{}, err
	}
	if opts.Taxonomy {
		// The victim-reuse window approximates L1 residency in fills.
		tr, err := taxonomy.NewTracker(cfg.L1.SizeBytes / cfg.L1.LineBytes)
		if err != nil {
			return stats.Run{}, err
		}
		h.Tax = tr
	}
	c, err := cpu.New(cfg.CPU, h)
	if err != nil {
		return stats.Run{}, err
	}
	if opts.Trace != nil || opts.Metrics != nil {
		h.AttachObservability(opts.Trace, opts.Metrics)
		c.AttachMetrics(opts.Metrics)
	}

	warmup := opts.Warmup
	switch {
	case warmup < 0:
		warmup = 0
	case warmup == 0:
		warmup = DefaultWarmup
	}

	res := c.Run(src, maxInstr, warmup)
	h.Finish()

	// Sources the simulator built itself (trace-backed workloads hold an
	// open file) are closed here; Close also surfaces any decode error
	// that silently ended the stream mid-run. Caller-supplied sources
	// stay caller-owned.
	if opts.Source == nil {
		if cl, ok := src.(io.Closer); ok {
			if cerr := cl.Close(); cerr != nil {
				return stats.Run{}, fmt.Errorf("sim: %s source: %w", label, cerr)
			}
		}
	}

	fs := filter.Stats()
	filterName := filter.Name()
	if h.Dead != nil {
		filterName = "deadblock"
	}
	run := stats.Run{
		Benchmark:    label,
		Filter:       filterName,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		Prefetches:   h.Pf,
		Traffic:      h.Traffic,

		L1DemandAccesses: h.L1.Stats.DemandAccesses,
		L1DemandMisses:   h.L1.Stats.DemandMisses,
		L2DemandAccesses: h.L2.Stats.DemandAccesses,
		L2DemandMisses:   h.L2.Stats.DemandMisses,

		BranchPredictions:    res.BranchPredictions,
		BranchMispredictions: res.BranchMispredictions,

		PortConflictCycles: res.PortConflictCycles,
		PrefetchPortWaits:  res.PrefetchPortWaits,

		FilterQueries:  fs.Queries,
		FilterRejected: fs.Rejected,

		BySource: h.BySource,
	}
	if h.Tax != nil {
		counts := h.Tax.Counts
		run.Taxonomy = &counts
	}
	if h.FrontendEnabled() {
		run.Frontend = &stats.Frontend{
			IPrefetcher:      string(cfg.Frontend.IPrefetch.Canonical()),
			FetchBlocks:      h.FetchBlocks,
			FetchMisses:      h.FetchMisses,
			FetchStallCycles: res.FetchStallCycles,
			Prefetches:       h.IPf,
		}
	}
	if reg := opts.Metrics; reg != nil {
		h.L1.DumpMetrics(reg, "sim.l1")
		h.L2.DumpMetrics(reg, "sim.l2")
		if d, ok := filter.(core.MetricsDumper); ok {
			d.DumpMetrics(reg, "sim.filter")
		}
		reg.Counter("sim.bus.transfers").Set(h.Bus.Transfers)
		reg.Counter("sim.bus.bytes_moved").Set(h.Bus.BytesMoved)
		reg.Counter("sim.bus.busy_cycles").Set(h.Bus.BusyCycles)
		reg.Counter("sim.bus.stall_cycles").Set(h.Bus.StallCycles)
		reg.Counter("sim.bus.demand_transfers").Set(h.Bus.DemandXfers)
		reg.Counter("sim.bus.prefetch_transfers").Set(h.Bus.PrefetchXfers)
	}
	return run, nil
}

// RunStatic performs the two-phase static-filter flow (§2's Srinivasan
// baseline): a profiling run with a pass-through collector, then a
// measured run with the frozen profile. key selects the profile's keying
// (core.PAKey or core.PCKey); minGoodFrac is the block threshold.
//
// The profiling run uses a perturbed seed — a different input data set —
// because that is the static approach's defining property: "the profiling
// information can provide precise global information for a given input
// data set, however, it lacks the dynamic adaptivity during runtime when
// the working set changes" (§2). Profiling the identical input would give
// the static filter an oracle the technique does not have in practice.
func RunStatic(opts Options, key core.KeyFunc, minGoodFrac float64) (stats.Run, error) {
	name := "pa"
	if opts.Filter != nil {
		return stats.Run{}, fmt.Errorf("sim: RunStatic builds its own filters; Options.Filter must be nil")
	}
	collector := core.NewProfileCollector(name, key)

	profOpts := opts
	profOpts.Filter = collector
	profOpts.Config.Seed = opts.Config.Seed ^ 0x7261696e // "rain": training input
	if _, err := Run(profOpts); err != nil {
		return stats.Run{}, fmt.Errorf("sim: profiling run: %w", err)
	}

	measured := opts
	measured.Filter = collector.Freeze(minGoodFrac)
	// A fresh source is built inside Run for named benchmarks; callers
	// passing an explicit Source must supply a replayable one themselves.
	if opts.Source != nil {
		return stats.Run{}, fmt.Errorf("sim: RunStatic requires a named benchmark (sources are single-use)")
	}
	return Run(measured)
}

// NoPrefetchConfig returns cfg with every prefetch generator disabled —
// the Table 2 measurement configuration.
func NoPrefetchConfig(cfg config.Config) config.Config {
	cfg.Prefetch.EnableNSP = false
	cfg.Prefetch.EnableSDP = false
	cfg.Prefetch.EnableStride = false
	cfg.Prefetch.EnableSoftware = false
	return cfg
}
