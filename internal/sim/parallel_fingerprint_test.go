package sim_test

// Parallel-determinism fingerprint: Prewarm with 8 workers must produce a
// byte-identical cache fingerprint to a serial Prewarm over the full
// standard evaluation matrix. This is the external test package (the
// experiments harness imports sim, so the test cannot live in package
// sim), and it must pass under `go test -race`.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// smallParams returns a tiny but full-matrix budget: every (benchmark,
// config) pair of the standard matrix, few enough instructions that the
// whole sweep stays under a few seconds.
func smallParams() experiments.Params {
	return experiments.Params{Instructions: 10_000, Warmup: 2_000, Seed: 1}
}

// TestPrewarmParallelDeterminism runs the standard matrix serially and
// with 4 and 8 work-stealing workers and requires byte-identical
// fingerprints at every width: the worker pool (and whatever steal
// interleaving it happens to produce) must not change any simulation
// result, only the wall time.
func TestPrewarmParallelDeterminism(t *testing.T) {
	serial := smallParams()
	if err := serial.Prewarm(1); err != nil {
		t.Fatal(err)
	}
	want := serial.Fingerprint()
	if len(want) == 0 {
		t.Fatal("serial Prewarm produced an empty fingerprint")
	}

	for _, workers := range []int{4, 8} {
		par := smallParams()
		if err := par.Prewarm(workers); err != nil {
			t.Fatal(err)
		}
		got := par.Fingerprint()

		if par.CachedRuns() != serial.CachedRuns() {
			t.Fatalf("workers=%d: cached runs differ: parallel %d, serial %d",
				workers, par.CachedRuns(), serial.CachedRuns())
		}
		if !bytes.Equal(got, want) {
			d := firstDiff(got, want)
			t.Fatalf("workers=%d: parallel fingerprint diverges from serial at byte %d:\nparallel: %s\nserial:   %s",
				workers, d, excerpt(got, d), excerpt(want, d))
		}
	}
}

// TestPrewarmJoinsAllErrors injects two bogus benchmark names and
// requires Prewarm to report both (errors.Join), not just the first,
// while still completing the valid benchmark's share of the matrix.
func TestPrewarmJoinsAllErrors(t *testing.T) {
	p := smallParams()
	p.Benchmarks = []string{"mcf", "nope1", "nope2"}
	err := p.Prewarm(4)
	if err == nil {
		t.Fatal("Prewarm with bogus benchmarks returned nil error")
	}
	for _, name := range []string{"nope1", "nope2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error missing %q: %v", name, err)
		}
	}
	// errors.Join wraps a slice; Unwrap() []error must expose >= 2 entries
	// (one per bogus benchmark per distinct config — at least 2).
	if u, ok := err.(interface{ Unwrap() []error }); !ok {
		t.Errorf("Prewarm error is not a joined error: %T", err)
	} else if n := len(u.Unwrap()); n < 2 {
		t.Errorf("joined error holds %d entries, want >= 2", n)
	}
	if p.CachedRuns() == 0 {
		t.Error("valid benchmark runs were not cached alongside the failures")
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func excerpt(b []byte, at int) string {
	lo := max(0, at-40)
	hi := min(len(b), at+40)
	return string(b[lo:hi])
}
