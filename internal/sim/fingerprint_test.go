package sim

import (
	"testing"

	"repro/internal/config"
)

// TestDeterminismFingerprint pins exact cycle and classification counts
// for a few (benchmark, filter) pairs at a fixed budget. The simulator is
// bit-deterministic, so these values are stable across platforms and Go
// versions; any change here means simulation *semantics* changed —
// intentionally (recalibration: update the table and re-run the
// experiment suite) or by accident (a bug).
func TestDeterminismFingerprint(t *testing.T) {
	fingerprints := []struct {
		bench  string
		filter config.FilterKind
		cycles uint64
		good   uint64
		bad    uint64
	}{
		{"fpppp", "none", 39898, 1278, 11},
		{"fpppp", "pa", 39898, 1279, 6},
		{"mcf", "none", 76348, 18, 945},
		{"mcf", "pa", 72702, 30, 700},
		{"gzip", "none", 73236, 802, 1230},
		{"gzip", "pa", 72671, 534, 718},
	}
	for _, fp := range fingerprints {
		r, err := Run(Options{
			Benchmark:       fp.bench,
			Config:          config.Default().WithFilter(fp.filter),
			MaxInstructions: 50_000,
			Warmup:          10_000,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", fp.bench, fp.filter, err)
		}
		if r.Cycles != fp.cycles || r.Prefetches.Good != fp.good || r.Prefetches.Bad != fp.bad {
			t.Errorf("%s/%s fingerprint drift: cycles=%d good=%d bad=%d, want %d/%d/%d",
				fp.bench, fp.filter, r.Cycles, r.Prefetches.Good, r.Prefetches.Bad,
				fp.cycles, fp.good, fp.bad)
		}
	}
}
