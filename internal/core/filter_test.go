package core

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestHistoryTableValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 1000} {
		if _, err := NewHistoryTable(n, 2, 2, IndexDirect); err == nil {
			t.Errorf("entries=%d should fail", n)
		}
	}
	if _, err := NewHistoryTable(16, 4, 2, IndexDirect); err == nil {
		t.Error("initial>3 should fail")
	}
	if _, err := NewHistoryTable(16, 2, 5, IndexDirect); err == nil {
		t.Error("threshold>3 should fail")
	}
}

func TestHistoryTableGeometry(t *testing.T) {
	ht, err := NewHistoryTable(4096, 2, 2, IndexDirect)
	if err != nil {
		t.Fatal(err)
	}
	if ht.Entries() != 4096 {
		t.Fatalf("entries = %d", ht.Entries())
	}
	// Table 1: 4096 2-bit counters = 1KB.
	if ht.SizeBytes() != 1024 {
		t.Fatalf("size = %dB, want 1024", ht.SizeBytes())
	}
}

func TestHistoryTableInitialPrediction(t *testing.T) {
	// Counters start weakly good (2): first-touch prefetches issue (§5.3).
	ht, _ := NewHistoryTable(64, 2, 2, IndexDirect)
	for key := uint64(0); key < 200; key++ {
		if !ht.Predict(key) {
			t.Fatalf("fresh key %d should predict good", key)
		}
	}
}

func TestHistoryTableTrainsToReject(t *testing.T) {
	ht, _ := NewHistoryTable(64, 2, 2, IndexDirect)
	key := uint64(5)
	ht.Update(key, false)
	if ht.Predict(key) {
		t.Fatal("one bad feedback from weakly-good should reject")
	}
	ht.Update(key, true)
	if !ht.Predict(key) {
		t.Fatal("one good feedback should recover to weakly-good")
	}
}

func TestHistoryTableSaturates(t *testing.T) {
	ht, _ := NewHistoryTable(64, 2, 2, IndexDirect)
	key := uint64(9)
	for i := 0; i < 10; i++ {
		ht.Update(key, true)
	}
	if ht.Counter(key) != 3 {
		t.Fatalf("counter = %d, want saturated 3", ht.Counter(key))
	}
	for i := 0; i < 10; i++ {
		ht.Update(key, false)
	}
	if ht.Counter(key) != 0 {
		t.Fatalf("counter = %d, want saturated 0", ht.Counter(key))
	}
}

func TestDirectIndexAliasing(t *testing.T) {
	ht, _ := NewHistoryTable(16, 2, 2, IndexDirect)
	// Keys 16 apart share an entry under direct indexing.
	ht.Update(3, false)
	ht.Update(3, false)
	if ht.Predict(3 + 16) {
		t.Fatal("aliased key should see the trained counter")
	}
	if ht.Index(3) != ht.Index(3+16) || ht.Index(3) != ht.Index(3+32) {
		t.Fatal("direct index must wrap at table size")
	}
}

func TestHashIndexInRange(t *testing.T) {
	ht, _ := NewHistoryTable(256, 2, 2, IndexHash)
	f := func(key uint64) bool { return ht.Index(key) < 256 }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndexSpreadsSequentialKeys(t *testing.T) {
	direct, _ := NewHistoryTable(256, 2, 2, IndexDirect)
	hashed, _ := NewHistoryTable(256, 2, 2, IndexHash)
	// Sequential keys occupy sequential direct entries but should spread
	// under hashing.
	seen := map[uint64]bool{}
	for k := uint64(0); k < 64; k++ {
		seen[hashed.Index(k)] = true
		if direct.Index(k) != k {
			t.Fatalf("direct index of %d = %d", k, direct.Index(k))
		}
	}
	if len(seen) < 32 {
		t.Fatalf("hash spread only %d/64 entries", len(seen))
	}
}

func TestKeyFuncs(t *testing.T) {
	if PAKey(0x1234, 0xdead) != 0x1234 {
		t.Error("PAKey must use the line address")
	}
	if PCKey(0x1234, 0x4000) != 0x1000 {
		t.Error("PCKey must use PC>>2")
	}
}

func TestNullFilter(t *testing.T) {
	n := NewNull()
	if n.Name() != "none" {
		t.Fatalf("name = %q", n.Name())
	}
	for i := 0; i < 10; i++ {
		if !n.Allow(Request{LineAddr: uint64(i)}) {
			t.Fatal("null filter must allow everything")
		}
	}
	n.Train(Feedback{Referenced: true})
	n.Train(Feedback{Referenced: false})
	n.Train(Feedback{Referenced: false})
	s := n.Stats()
	if s.Queries != 10 || s.Rejected != 0 || s.TrainGood != 1 || s.TrainBad != 2 {
		t.Fatalf("stats = %+v", s)
	}
	n.ResetStats()
	if n.Stats() != (Stats{}) {
		t.Fatal("reset should zero stats")
	}
}

func TestPAFilterLifecycle(t *testing.T) {
	f, err := NewPA(64, 2, 2, IndexDirect)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "pa" {
		t.Fatalf("name = %q", f.Name())
	}
	req := Request{LineAddr: 100, TriggerPC: 0x400000}
	if !f.Allow(req) {
		t.Fatal("fresh key should be allowed")
	}
	// A bad eviction rejects the line address…
	f.Train(Feedback{LineAddr: 100, TriggerPC: 0x400000, Referenced: false})
	if f.Allow(req) {
		t.Fatal("bad-trained line should be rejected")
	}
	// …but the decision keys on the address, not the PC.
	if !f.Allow(Request{LineAddr: 101, TriggerPC: 0x400000}) {
		t.Fatal("a different line from the same PC must pass the PA filter")
	}
	s := f.Stats()
	if s.Queries != 3 || s.Rejected != 1 || s.TrainBad != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPCFilterLifecycle(t *testing.T) {
	f, err := NewPC(64, 2, 2, IndexDirect)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "pc" {
		t.Fatalf("name = %q", f.Name())
	}
	f.Train(Feedback{LineAddr: 100, TriggerPC: 0x400000, Referenced: false})
	// Same PC, any line: rejected.
	if f.Allow(Request{LineAddr: 999, TriggerPC: 0x400000}) {
		t.Fatal("bad-trained PC should reject all its prefetches")
	}
	// Different PC in a different table entry: allowed. (0x400100 would
	// alias with 0x400000 in a 64-entry table: (pc>>2)&63 is equal.)
	if !f.Allow(Request{LineAddr: 100, TriggerPC: 0x400104}) {
		t.Fatal("other PCs must pass")
	}
}

func TestFilterRecoveryViaGoodFeedback(t *testing.T) {
	f, _ := NewPA(64, 2, 2, IndexDirect)
	f.Train(Feedback{LineAddr: 7, Referenced: false})
	if f.Allow(Request{LineAddr: 7}) {
		t.Fatal("should reject after bad training")
	}
	// An aliased key (7+64) trains the shared counter back up: the escape
	// mechanism that keeps the filter from permanently blacklisting
	// entries (§4.1's aliasing).
	f.Train(Feedback{LineAddr: 7 + 64, Referenced: true})
	if !f.Allow(Request{LineAddr: 7}) {
		t.Fatal("aliased good feedback should resurrect the entry")
	}
}

func TestCustomTableFilter(t *testing.T) {
	xor := func(lineAddr, triggerPC uint64) uint64 { return lineAddr ^ (triggerPC >> 2) }
	f, err := NewTableFilter("xor", xor, 64, 2, 2, IndexDirect)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "xor" {
		t.Fatalf("name = %q", f.Name())
	}
	f.Train(Feedback{LineAddr: 8, TriggerPC: 16, Referenced: false})
	if f.Allow(Request{LineAddr: 8, TriggerPC: 16}) {
		t.Fatal("same (addr,pc) pair should reject")
	}
	if !f.Allow(Request{LineAddr: 8, TriggerPC: 20}) {
		t.Fatal("different pair should pass")
	}
	if _, err := NewTableFilter("nil", nil, 64, 2, 2, IndexDirect); err == nil {
		t.Fatal("nil key func should fail")
	}
}

func TestTableFilterResetKeepsTableWarm(t *testing.T) {
	f, _ := NewPA(64, 2, 2, IndexDirect)
	f.Train(Feedback{LineAddr: 3, Referenced: false})
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Fatal("stats should be zero")
	}
	if f.Allow(Request{LineAddr: 3}) {
		t.Fatal("history table must stay warm across a stats reset")
	}
}

func TestRejectRate(t *testing.T) {
	var s Stats
	if s.RejectRate() != 0 {
		t.Fatal("idle reject rate should be 0")
	}
	s.Queries, s.Rejected = 4, 1
	if s.RejectRate() != 0.25 {
		t.Fatalf("reject rate = %v", s.RejectRate())
	}
}

// Property: a TableFilter's decision depends only on its key's counter —
// training key A never changes decisions for a key in a different entry.
func TestPropertyKeyIsolation(t *testing.T) {
	f := func(a, b uint16) bool {
		if a%64 == b%64 {
			return true // same entry: interference allowed
		}
		flt, _ := NewPA(64, 2, 2, IndexDirect)
		flt.Train(Feedback{LineAddr: uint64(a), Referenced: false})
		flt.Train(Feedback{LineAddr: uint64(a), Referenced: false})
		return flt.Allow(Request{LineAddr: uint64(b)})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the filter's Train/Allow sequence is deterministic.
func TestPropertyDeterminism(t *testing.T) {
	f := func(keys []uint16, outcomes []bool) bool {
		f1, _ := NewPC(128, 2, 2, IndexDirect)
		f2, _ := NewPC(128, 2, 2, IndexDirect)
		for i, k := range keys {
			ref := i < len(outcomes) && outcomes[i]
			fb := Feedback{LineAddr: uint64(k), TriggerPC: uint64(k) * 4, Referenced: ref}
			f1.Train(fb)
			f2.Train(fb)
			r := Request{LineAddr: uint64(k), TriggerPC: uint64(k) * 4}
			if f1.Allow(r) != f2.Allow(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromConfig(t *testing.T) {
	base := config.Default().Filter
	cases := []struct {
		kind config.FilterKind
		name string
	}{
		{config.FilterNone, "none"},
		{config.FilterPA, "pa"},
		{config.FilterPC, "pc"},
		{config.FilterAdaptive, "pa-adaptive"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Kind = tc.kind
		f, err := FromConfig(cfg)
		if err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if f.Name() != tc.name {
			t.Errorf("%s: name = %q, want %q", tc.kind, f.Name(), tc.name)
		}
	}
	// Static needs the two-phase flow.
	cfg := base
	cfg.Kind = config.FilterStatic
	if _, err := FromConfig(cfg); err == nil {
		t.Error("static kind should error out of FromConfig")
	}
	// Invalid config is rejected.
	cfg = base
	cfg.TableEntries = 1000
	if _, err := FromConfig(cfg); err == nil {
		t.Error("invalid table entries should fail")
	}
}

func TestProbationSampling(t *testing.T) {
	f, _ := NewPA(64, 2, 2, IndexDirect)
	f.SetProbation(4)
	// Train key 9 bad so it always rejects.
	f.Train(Feedback{LineAddr: 9, Referenced: false})
	f.Train(Feedback{LineAddr: 9, Referenced: false})
	allowed := 0
	for i := 0; i < 16; i++ {
		if f.Allow(Request{LineAddr: 9}) {
			allowed++
		}
	}
	// Every 4th rejection converts to a probationary issue: 4 of 16.
	if allowed != 4 {
		t.Fatalf("probation allowed %d of 16, want 4", allowed)
	}
	if f.ProbeAllows != 4 {
		t.Fatalf("ProbeAllows = %d", f.ProbeAllows)
	}
}

func TestProbationDisabledByDefault(t *testing.T) {
	f, _ := NewPA(64, 2, 2, IndexDirect)
	f.Train(Feedback{LineAddr: 9, Referenced: false})
	for i := 0; i < 100; i++ {
		if f.Allow(Request{LineAddr: 9}) {
			t.Fatal("paper-default filter must be purely absorbing")
		}
	}
}
