// Static profile-driven filter — the Srinivasan et al. baseline (§2).
//
// The static filter collects per-key good/bad statistics in an offline
// profiling run and then, in the measured run, drops every prefetch whose
// profiled bad count dominates. Unlike the dynamic history table it cannot
// adapt when the working set changes mid-run; the paper reports the
// dynamic filter outperforming it, and the extras experiment reproduces
// that comparison.
package core

import "sort"

// ProfileCollector is a pass-through Filter that records eviction feedback
// per key. Run a simulation with it installed, then Freeze the result into
// a Static filter for the measured run.
type ProfileCollector struct {
	key  KeyFunc
	name string
	//pflint:allow hwbudget/map offline software profile (paper §2 baseline), collected outside the measured run; never claimed as hardware state
	good map[uint64]uint64
	//pflint:allow hwbudget/map offline software profile (paper §2 baseline), collected outside the measured run; never claimed as hardware state
	bad   map[uint64]uint64
	stats Stats
}

// NewProfileCollector returns a collector keyed like the eventual filter
// (PAKey or PCKey).
func NewProfileCollector(name string, key KeyFunc) *ProfileCollector {
	return &ProfileCollector{
		key:  key,
		name: name,
		good: make(map[uint64]uint64),
		bad:  make(map[uint64]uint64),
	}
}

// Allow implements Filter; profiling never filters.
func (p *ProfileCollector) Allow(Request) bool {
	p.stats.Queries++
	return true
}

// Train implements Filter; it accumulates the profile.
func (p *ProfileCollector) Train(fb Feedback) {
	k := p.key(fb.LineAddr, fb.TriggerPC)
	if fb.Referenced {
		p.stats.TrainGood++
		p.good[k]++
	} else {
		p.stats.TrainBad++
		p.bad[k]++
	}
}

// Name implements Filter.
func (p *ProfileCollector) Name() string { return p.name + "-profile" }

// Stats implements Filter.
func (p *ProfileCollector) Stats() Stats { return p.stats }

// ResetStats zeroes the counters; the collected profile is state, not
// statistics, and survives (warmup boundary).
func (p *ProfileCollector) ResetStats() { p.stats = Stats{} }

// Keys returns the distinct keys observed, sorted (deterministic output
// for reports and tests).
func (p *ProfileCollector) Keys() []uint64 {
	seen := make(map[uint64]struct{}, len(p.good)+len(p.bad))
	//pflint:allow determinism/maprange set union; the result is sorted below
	for k := range p.good {
		seen[k] = struct{}{}
	}
	//pflint:allow determinism/maprange set union; the result is sorted below
	for k := range p.bad {
		seen[k] = struct{}{}
	}
	out := make([]uint64, 0, len(seen))
	//pflint:allow determinism/maprange key collection; the result is sorted below
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Freeze converts the collected profile into a static filter that rejects
// keys whose profiled good fraction is below minGoodFrac. Unprofiled keys
// are allowed (the profile has nothing against them).
func (p *ProfileCollector) Freeze(minGoodFrac float64) *Static {
	block := make(map[uint64]struct{})
	for _, k := range p.Keys() {
		g, b := p.good[k], p.bad[k]
		total := g + b
		if total == 0 {
			continue
		}
		if float64(g)/float64(total) < minGoodFrac {
			block[k] = struct{}{}
		}
	}
	return &Static{key: p.key, name: p.name, block: block}
}

// Static is the frozen profile-driven filter.
type Static struct {
	key  KeyFunc
	name string
	//pflint:allow hwbudget/map frozen software profile image, program-sized by construction; the paper's static baseline is software, and its unbounded size is part of the comparison
	block map[uint64]struct{}
	stats Stats
}

// Allow implements Filter.
func (s *Static) Allow(req Request) bool {
	s.stats.Queries++
	if _, blocked := s.block[s.key(req.LineAddr, req.TriggerPC)]; blocked {
		s.stats.Rejected++
		return false
	}
	return true
}

// Train implements Filter. A static filter never updates its decision set;
// feedback is only counted so good/bad statistics stay comparable.
func (s *Static) Train(fb Feedback) {
	if fb.Referenced {
		s.stats.TrainGood++
	} else {
		s.stats.TrainBad++
	}
}

// Name implements Filter.
func (s *Static) Name() string { return s.name + "-static" }

// Stats implements Filter.
func (s *Static) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (warmup boundary).
func (s *Static) ResetStats() { s.stats = Stats{} }

// BlockedKeys returns how many keys the profile blacklisted.
func (s *Static) BlockedKeys() int { return len(s.block) }

// ProfileCounts exposes the raw per-key tallies (diagnostics, reports).
func (p *ProfileCollector) ProfileCounts(key uint64) (good, bad uint64) {
	return p.good[key], p.bad[key]
}
