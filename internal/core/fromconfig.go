package core

import (
	"fmt"

	"repro/internal/config"
)

// FromConfig instantiates the table-family filters a configuration
// names. FilterStatic cannot be built here — it needs a profiling run
// first; use NewProfileCollector + Freeze (the experiment harness
// automates this). The learned backends (perceptron, bloom, tournament)
// live in internal/filter, whose registry wraps this constructor for
// the kinds below.
func FromConfig(cfg config.FilterConfig) (Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind.Canonical() {
	case config.FilterNone:
		return NewNull(), nil
	case config.FilterPA:
		return NewPA(cfg.TableEntries, cfg.InitialCounter, cfg.Threshold, IndexDirect)
	case config.FilterPC:
		return NewPC(cfg.TableEntries, cfg.InitialCounter, cfg.Threshold, IndexDirect)
	case config.FilterAdaptive:
		inner, err := NewPA(cfg.TableEntries, cfg.InitialCounter, cfg.Threshold, IndexDirect)
		if err != nil {
			return nil, err
		}
		return NewAdaptive(inner, cfg.AdaptiveAccuracy, cfg.AdaptiveWindow), nil
	case config.FilterStatic:
		return nil, fmt.Errorf("core: static filter requires a profiling run; use NewProfileCollector then Freeze")
	default:
		return nil, fmt.Errorf("core: unknown filter kind %q", cfg.Kind)
	}
}
