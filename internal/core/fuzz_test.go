package core

import (
	"testing"
)

// FuzzHistoryTableIndex fuzzes the filter's table indexing: for any
// address/PC pair, any power-of-two table size, and both indexing modes,
// Index must stay in bounds (Predict/Update/Counter all index the backing
// slice with it, so an out-of-bounds index is a panic in the hot path).
func FuzzHistoryTableIndex(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x400000), uint8(12), false)
	f.Add(uint64(0), uint64(0), uint8(0), true)
	f.Add(^uint64(0), ^uint64(0), uint8(20), true)
	f.Add(uint64(0xdeadbeef), uint64(0x7fffffffffff), uint8(5), false)

	f.Fuzz(func(t *testing.T, lineAddr, triggerPC uint64, sizeExp uint8, hash bool) {
		entries := 1 << (sizeExp % 21) // 1 .. 1M entries
		mode := IndexDirect
		if hash {
			mode = IndexHash
		}
		table, err := NewHistoryTable(entries, 2, 2, mode)
		if err != nil {
			t.Fatalf("NewHistoryTable(%d): %v", entries, err)
		}
		for _, key := range []uint64{PAKey(lineAddr, triggerPC), PCKey(lineAddr, triggerPC)} {
			if i := table.Index(key); i >= uint64(entries) {
				t.Fatalf("Index(%#x) = %d out of bounds for %d entries (mode %v)", key, i, entries, mode)
			}
			// The accessors must agree with Index and not panic.
			table.Update(key, key%2 == 0)
			_ = table.Predict(key)
			_ = table.Counter(key)
		}
		var dist int
		for _, n := range table.CounterDistribution() {
			dist += n
		}
		if dist != entries {
			t.Fatalf("counter distribution sums to %d, want %d", dist, entries)
		}
	})
}
