// Adaptive filter — the paper's proposed "advanced feature" (§5.2.1):
// "our pollution filter can be made adaptive to start filtering when the
// prefetching becomes too aggressive (with low accuracy)."
//
// The adaptive filter wraps a history-table filter and monitors observed
// prefetch accuracy over a sliding window of eviction feedback. While the
// measured good fraction stays at or above the engage threshold the filter
// passes everything through (the prefetcher is accurate; filtering would
// mostly cost good prefetches — the paper observes exactly this for SDP).
// When accuracy drops below the threshold, the history table's predictions
// take over. The table trains continuously either way, so it is warm the
// moment filtering engages.
package core

// Adaptive wraps an inner table filter with an accuracy-gated bypass.
type Adaptive struct {
	inner     *TableFilter
	threshold float64
	window    int

	// Sliding-window accounting over the last `window` feedback events.
	ring    []bool // true = good
	pos     int
	filled  int
	goodCnt int

	engaged bool
	// EngagedQueries counts queries decided by the table (vs bypassed).
	EngagedQueries uint64

	stats Stats
}

// NewAdaptive builds an adaptive filter around inner. Filtering engages
// while the windowed good fraction is below threshold; window is the
// number of feedback events the accuracy estimate covers.
func NewAdaptive(inner *TableFilter, threshold float64, window int) *Adaptive {
	if window <= 0 {
		window = 1024
	}
	return &Adaptive{
		inner:     inner,
		threshold: threshold,
		window:    window,
		ring:      make([]bool, window),
	}
}

// accuracy returns the good fraction over the current window; before the
// window first fills it is computed over what has been seen. With no
// feedback at all the prefetcher is presumed accurate (no filtering).
func (a *Adaptive) accuracy() float64 {
	if a.filled == 0 {
		return 1
	}
	return float64(a.goodCnt) / float64(a.filled)
}

// Engaged reports whether predictions currently come from the table.
func (a *Adaptive) Engaged() bool { return a.engaged }

// Allow implements Filter.
func (a *Adaptive) Allow(req Request) bool {
	a.stats.Queries++
	if !a.engaged {
		return true
	}
	a.EngagedQueries++
	// Delegate to the inner table but fold its decision into our stats;
	// the inner filter's own stats track only delegated queries.
	if a.inner.Allow(req) {
		return true
	}
	a.stats.Rejected++
	return false
}

// Train implements Filter: update the accuracy window, re-evaluate the
// engage state, and always train the inner table.
func (a *Adaptive) Train(fb Feedback) {
	if fb.Referenced {
		a.stats.TrainGood++
	} else {
		a.stats.TrainBad++
	}
	if a.filled == a.window {
		if a.ring[a.pos] {
			a.goodCnt--
		}
	} else {
		a.filled++
	}
	a.ring[a.pos] = fb.Referenced
	if fb.Referenced {
		a.goodCnt++
	}
	a.pos++
	if a.pos == a.window {
		a.pos = 0
	}
	a.engaged = a.accuracy() < a.threshold
	a.inner.Train(fb)
}

// Predict reports the current decision for req without touching stats:
// pass-through while disengaged, the inner table's prediction otherwise.
func (a *Adaptive) Predict(req Request) bool {
	if !a.engaged {
		return true
	}
	return a.inner.Predict(req)
}

// Name implements Filter.
func (a *Adaptive) Name() string { return a.inner.Name() + "-adaptive" }

// Stats implements Filter.
func (a *Adaptive) Stats() Stats { return a.stats }

// ResetStats zeroes the counters while keeping the accuracy window and
// the inner history table warm (warmup boundary).
func (a *Adaptive) ResetStats() {
	a.stats = Stats{}
	a.EngagedQueries = 0
	a.inner.ResetStats()
}

// Inner exposes the wrapped table filter.
func (a *Adaptive) Inner() *TableFilter { return a.inner }
