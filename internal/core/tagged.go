// Tagged history table — a hardware design alternative to the paper's
// untagged, direct-indexed table.
//
// §4.1 notes that "due to the limited length of the history table, the
// aliasing (or interference) problem could be severe for the PA-based
// filter". The classic mitigation is to add a partial tag per entry, as
// branch predictors like the agree/skewed families do: a lookup whose tag
// mismatches does not trust the (foreign) counter and falls back to the
// default allow-first-touch behaviour, and training steals the entry by
// installing its own tag.
//
// The trade-off is storage: with T tag bits per 2-bit counter the table
// is (T+2)/2 times larger than the paper's 1KB for the same entry count.
// The ablation experiment quantifies whether the aliasing it removes is
// worth the area — in the paper's setting (heavy aliasing is partly what
// keeps entries trained), tags can actually *hurt*, which is an
// interesting negative result the untagged design quietly depends on.
package core

import (
	"fmt"

	"repro/internal/predictor"
)

// taggedEntry is one tagged table slot.
type taggedEntry struct {
	valid   bool
	tag     uint16
	counter predictor.SatCounter
}

// TaggedTable is a history table with partial tags.
type TaggedTable struct {
	entries   []taggedEntry
	mask      uint64
	tagBits   uint
	initial   predictor.SatCounter
	threshold predictor.SatCounter

	// Mismatches counts lookups that hit a foreign tag (interference that
	// an untagged table would have silently absorbed).
	Mismatches uint64
}

// NewTaggedTable allocates a tagged table. tagBits (1..16) sets the
// partial-tag width; more bits, fewer false tag matches.
func NewTaggedTable(entries int, tagBits uint, initial, threshold uint8) (*TaggedTable, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("core: tagged table entries must be a positive power of two, got %d", entries)
	}
	if tagBits < 1 || tagBits > 16 {
		return nil, fmt.Errorf("core: tag bits must be in [1,16], got %d", tagBits)
	}
	if initial > 3 || threshold > 3 {
		return nil, fmt.Errorf("core: initial (%d) and threshold (%d) must be 2-bit values", initial, threshold)
	}
	return &TaggedTable{
		entries:   make([]taggedEntry, entries),
		mask:      uint64(entries - 1),
		tagBits:   tagBits,
		initial:   predictor.SatCounter(initial),
		threshold: predictor.SatCounter(threshold),
	}, nil
}

// split derives (index, tag) from a key: index from the low bits, tag
// from the bits just above them.
func (t *TaggedTable) split(key uint64) (uint64, uint16) {
	idx := key & t.mask
	shift := uint(0)
	for m := t.mask; m > 0; m >>= 1 {
		shift++
	}
	tag := uint16((key >> shift) & ((1 << t.tagBits) - 1))
	return idx, tag
}

// Predict returns the prediction for key. A tag mismatch (or an invalid
// entry) predicts with the initial counter — fresh keys behave exactly as
// they do in the untagged table.
func (t *TaggedTable) Predict(key uint64) bool {
	idx, tag := t.split(key)
	e := &t.entries[idx]
	if !e.valid || e.tag != tag {
		if e.valid {
			t.Mismatches++
		}
		return t.initial >= t.threshold
	}
	return e.counter >= t.threshold
}

// Update trains the entry for key, stealing it on a tag mismatch.
func (t *TaggedTable) Update(key uint64, good bool) {
	idx, tag := t.split(key)
	e := &t.entries[idx]
	if !e.valid || e.tag != tag {
		*e = taggedEntry{valid: true, tag: tag, counter: t.initial}
	}
	e.counter = e.counter.Update(good)
}

// Entries returns the table length.
func (t *TaggedTable) Entries() int { return len(t.entries) }

// SizeBytes returns the storage cost: (2 + tagBits + 1 valid) bits/entry.
func (t *TaggedTable) SizeBytes() int {
	bits := len(t.entries) * (2 + int(t.tagBits) + 1)
	return (bits + 7) / 8
}

// TaggedFilter is a pollution filter backed by a TaggedTable.
type TaggedFilter struct {
	table *TaggedTable
	key   KeyFunc
	name  string
	stats Stats
}

// NewTaggedPA builds a tagged Per-Address filter.
func NewTaggedPA(entries int, tagBits uint) (*TaggedFilter, error) {
	t, err := NewTaggedTable(entries, tagBits, 2, 2)
	if err != nil {
		return nil, err
	}
	return &TaggedFilter{table: t, key: PAKey, name: "pa-tagged"}, nil
}

// NewTaggedPC builds a tagged Program-Counter filter.
func NewTaggedPC(entries int, tagBits uint) (*TaggedFilter, error) {
	t, err := NewTaggedTable(entries, tagBits, 2, 2)
	if err != nil {
		return nil, err
	}
	return &TaggedFilter{table: t, key: PCKey, name: "pc-tagged"}, nil
}

// Allow implements Filter.
func (f *TaggedFilter) Allow(req Request) bool {
	f.stats.Queries++
	if f.table.Predict(f.key(req.LineAddr, req.TriggerPC)) {
		return true
	}
	f.stats.Rejected++
	return false
}

// Train implements Filter.
func (f *TaggedFilter) Train(fb Feedback) {
	if fb.Referenced {
		f.stats.TrainGood++
	} else {
		f.stats.TrainBad++
	}
	f.table.Update(f.key(fb.LineAddr, fb.TriggerPC), fb.Referenced)
}

// Name implements Filter.
func (f *TaggedFilter) Name() string { return f.name }

// Stats implements Filter.
func (f *TaggedFilter) Stats() Stats { return f.stats }

// ResetStats zeroes the counters, keeping the table warm.
func (f *TaggedFilter) ResetStats() { f.stats = Stats{} }

// Table exposes the underlying tagged table.
func (f *TaggedFilter) Table() *TaggedTable { return f.table }
