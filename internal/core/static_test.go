package core

import "testing"

func TestProfileCollectorPassThrough(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	for i := 0; i < 50; i++ {
		if !p.Allow(Request{LineAddr: uint64(i)}) {
			t.Fatal("collector must never filter")
		}
	}
	if p.Stats().Queries != 50 {
		t.Fatalf("queries = %d", p.Stats().Queries)
	}
	if p.Name() != "pa-profile" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestProfileFreezeBlocksBadKeys(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	// Key 1: always bad. Key 2: always good. Key 3: 50/50.
	for i := 0; i < 10; i++ {
		p.Train(Feedback{LineAddr: 1, Referenced: false})
		p.Train(Feedback{LineAddr: 2, Referenced: true})
		p.Train(Feedback{LineAddr: 3, Referenced: i%2 == 0})
	}
	s := p.Freeze(0.5)
	if s.Name() != "pa-static" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.Allow(Request{LineAddr: 1}) {
		t.Fatal("always-bad key must be blocked")
	}
	if !s.Allow(Request{LineAddr: 2}) {
		t.Fatal("always-good key must pass")
	}
	if !s.Allow(Request{LineAddr: 3}) {
		t.Fatal("50% good at threshold 0.5 must pass")
	}
	if !s.Allow(Request{LineAddr: 99}) {
		t.Fatal("unprofiled key must pass")
	}
	if s.BlockedKeys() != 1 {
		t.Fatalf("blocked = %d", s.BlockedKeys())
	}
}

func TestStaticNeverAdapts(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	p.Train(Feedback{LineAddr: 1, Referenced: false})
	s := p.Freeze(0.5)
	// Heavy good feedback in the measured run must not unblock key 1 —
	// that is the static filter's defining weakness (§2).
	for i := 0; i < 100; i++ {
		s.Train(Feedback{LineAddr: 1, Referenced: true})
	}
	if s.Allow(Request{LineAddr: 1}) {
		t.Fatal("static filter must not adapt at runtime")
	}
	st := s.Stats()
	if st.TrainGood != 100 {
		t.Fatalf("feedback accounting lost: %+v", st)
	}
}

func TestProfileKeysSortedDeterministic(t *testing.T) {
	p := NewProfileCollector("pc", PCKey)
	for _, k := range []uint64{40, 8, 24} {
		p.Train(Feedback{TriggerPC: k << 2, Referenced: true})
	}
	p.Train(Feedback{TriggerPC: 16 << 2, Referenced: false})
	keys := p.Keys()
	want := []uint64{8, 16, 24, 40}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestProfileCounts(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	p.Train(Feedback{LineAddr: 5, Referenced: true})
	p.Train(Feedback{LineAddr: 5, Referenced: true})
	p.Train(Feedback{LineAddr: 5, Referenced: false})
	g, b := p.ProfileCounts(5)
	if g != 2 || b != 1 {
		t.Fatalf("counts = %d, %d", g, b)
	}
}

func TestProfileResetKeepsProfile(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	p.Train(Feedback{LineAddr: 5, Referenced: false})
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("stats should reset")
	}
	if g, b := p.ProfileCounts(5); g != 0 || b != 1 {
		t.Fatal("profile data must survive a stats reset")
	}
}

func TestFreezeThresholds(t *testing.T) {
	p := NewProfileCollector("pa", PAKey)
	for i := 0; i < 3; i++ {
		p.Train(Feedback{LineAddr: 1, Referenced: true})
	}
	p.Train(Feedback{LineAddr: 1, Referenced: false}) // 75% good
	if s := p.Freeze(0.5); s.BlockedKeys() != 0 {
		t.Fatal("75% good should pass a 0.5 threshold")
	}
	if s := p.Freeze(0.9); s.BlockedKeys() != 1 {
		t.Fatal("75% good should be blocked at a 0.9 threshold")
	}
}
