// Package core implements the paper's contribution: the hardware cache
// pollution filter for aggressive prefetches.
//
// The filter sits between the prefetch generators (hardware prefetchers
// and software prefetch instructions) and the L1 data cache. For every
// in-flight prefetch it predicts — from a small direct-indexed history
// table of 2-bit saturating counters — whether the prefetched line would
// be referenced before eviction ("good") or never referenced ("bad"), and
// drops predicted-bad prefetches before they consume a cache port, bus
// bandwidth, or an L1 frame.
//
// Two indexing schemes are provided, matching §4.1 and §4.2:
//
//   - PA-based: the table is indexed by the prefetched cache-line address.
//   - PC-based: the table is indexed by the PC of the instruction that
//     triggered the prefetch.
//
// Training happens on L1 eviction: when a line with PIB set is evicted,
// its RIB (was it ever demand-referenced?) increments or decrements the
// counter its key maps to. Counters start weakly good so that first-touch
// prefetches are issued (§5.3 relies on this).
package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/predictor"
)

// Source identifies the prefetch generator that proposed a prefetch. It
// is carried through the filter request, the cache line's metadata, and
// the eviction-time feedback so feature-based filters (the perceptron
// backend in internal/filter) can learn per-generator behaviour.
type Source uint8

// Prefetch generators known to the simulator.
const (
	SrcOther       Source = iota // unknown / custom generator
	SrcNSP                       // tagged next-sequence prefetching
	SrcSDP                       // shadow-directory prefetching
	SrcStride                    // reference-prediction-table stride
	SrcCorrelation               // miss-pair correlation
	SrcSoftware                  // compiler-inserted prefetch instruction
	SrcBerti                     // Berti-style latency-aware local-delta
	SrcGHB                       // GHB/PC-delta correlation
	SrcINextLine                 // I-side next-line/fetch-directed baseline
	SrcIMANA                     // I-side MANA-lite spatial-region prefetcher
)

// SourceByName maps a prefetcher's registered name to its Source id.
func SourceByName(name string) Source {
	switch name {
	case "nsp":
		return SrcNSP
	case "sdp":
		return SrcSDP
	case "stride":
		return SrcStride
	case "corr":
		return SrcCorrelation
	case "sw":
		return SrcSoftware
	case "berti":
		return SrcBerti
	case "ghb":
		return SrcGHB
	case "nextline":
		return SrcINextLine
	case "mana":
		return SrcIMANA
	}
	return SrcOther
}

// Request describes an in-flight prefetch presented to the filter before
// it is enqueued toward the L1.
type Request struct {
	// LineAddr is the cache-line address of the prefetched data (byte
	// address with the line-offset bits stripped).
	LineAddr uint64
	// TriggerPC is the PC of the instruction that caused the prefetch: the
	// software prefetch instruction itself, or the memory instruction whose
	// cache access triggered the hardware prefetcher.
	TriggerPC uint64
	// Software marks compiler-inserted prefetch instructions.
	Software bool
	// Source identifies the generator that proposed the prefetch.
	Source Source
}

// Feedback is the eviction-time training signal: the identity of a
// prefetched line leaving the L1 and whether it was ever referenced.
type Feedback struct {
	LineAddr   uint64
	TriggerPC  uint64
	Referenced bool   // the line's RIB at eviction
	Source     Source // generator that proposed the prefetch
}

// Stats counts filter activity.
type Stats struct {
	Queries   uint64 // prefetches presented
	Rejected  uint64 // prefetches dropped
	TrainGood uint64 // feedback with Referenced=true
	TrainBad  uint64 // feedback with Referenced=false
}

// RejectRate returns rejected/queries (0 when idle).
func (s Stats) RejectRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Queries)
}

// Filter is the pollution-filter interface the simulator consults.
//
// Allow is called once per candidate prefetch; returning false terminates
// the prefetch (it never reaches the prefetch queue). Train is called once
// per evicted prefetched line.
type Filter interface {
	Allow(req Request) bool
	Train(fb Feedback)
	Name() string
	Stats() Stats
}

// Null is the no-filtering baseline: every prefetch is allowed. It still
// counts training feedback so good/bad statistics are comparable.
type Null struct{ stats Stats }

// NewNull returns the pass-through filter.
func NewNull() *Null { return &Null{} }

// Allow implements Filter; it always returns true.
func (n *Null) Allow(Request) bool {
	n.stats.Queries++
	return true
}

// Train implements Filter; it only counts.
func (n *Null) Train(fb Feedback) {
	if fb.Referenced {
		n.stats.TrainGood++
	} else {
		n.stats.TrainBad++
	}
}

// Name implements Filter.
func (n *Null) Name() string { return "none" }

// Predict implements the side-effect-free prediction used by tournament
// selectors: the pass-through filter always predicts "good".
func (n *Null) Predict(Request) bool { return true }

// ResetStats zeroes the counters (warmup boundary).
func (n *Null) ResetStats() { n.stats = Stats{} }

// Stats implements Filter.
func (n *Null) Stats() Stats { return n.stats }

// IndexMode selects how a key maps to a history-table entry.
type IndexMode int

// Indexing schemes. The paper uses direct indexing (low bits of the key);
// multiplicative hashing is provided as a design-space option and is used
// by the aliasing ablation benchmark.
const (
	IndexDirect IndexMode = iota
	IndexHash
)

// HistoryTable is the filter's prediction state: a power-of-two array of
// 2-bit saturating counters (Table 1 default: 4096 entries = 1KB). The
// counter storage is predictor.CounterTable — the same fabric behind the
// bimodal branch predictor.
type HistoryTable struct {
	counters  *predictor.CounterTable
	mask      uint64
	mode      IndexMode
	shift     uint // for multiplicative hashing
	threshold predictor.SatCounter
}

// NewHistoryTable allocates a table with the given power-of-two entry
// count. All counters start at initial; predictions are "good" when the
// counter is >= threshold.
func NewHistoryTable(entries int, initial, threshold uint8, mode IndexMode) (*HistoryTable, error) {
	if initial > 3 || threshold > 3 {
		return nil, fmt.Errorf("core: initial (%d) and threshold (%d) must be 2-bit values", initial, threshold)
	}
	ct, err := predictor.NewCounterTable(entries, predictor.SatCounter(initial))
	if err != nil {
		return nil, fmt.Errorf("core: history table: %w", err)
	}
	t := &HistoryTable{
		counters:  ct,
		mask:      uint64(entries - 1),
		mode:      mode,
		threshold: predictor.SatCounter(threshold),
	}
	bits := uint(0)
	for v := entries; v > 1; v >>= 1 {
		bits++
	}
	t.shift = 64 - bits
	return t, nil
}

// Index maps a key to its table entry.
func (t *HistoryTable) Index(key uint64) uint64 {
	if t.mode == IndexHash {
		return (key * 0x9e3779b97f4a7c15) >> t.shift
	}
	return key & t.mask
}

// Predict reports whether the counter for key predicts a good prefetch.
func (t *HistoryTable) Predict(key uint64) bool {
	return t.counters.At(t.Index(key)) >= t.threshold
}

// Update trains the counter for key: good increments, bad decrements.
func (t *HistoryTable) Update(key uint64, good bool) {
	t.counters.Update(t.Index(key), good)
}

// Counter exposes the raw counter for key (tests and introspection).
func (t *HistoryTable) Counter(key uint64) predictor.SatCounter {
	return t.counters.At(t.Index(key))
}

// Entries returns the table length.
func (t *HistoryTable) Entries() int { return t.counters.Len() }

// SizeBytes returns the storage cost: 2 bits per entry.
func (t *HistoryTable) SizeBytes() int { return t.counters.Len() / 4 }

// KeyFunc extracts the history-table key from a prefetch identity.
type KeyFunc func(lineAddr, triggerPC uint64) uint64

// PAKey keys on the prefetched cache-line address (§4.1).
func PAKey(lineAddr, _ uint64) uint64 { return lineAddr }

// PCKey keys on the trigger PC, offset by the instruction size (§4.2).
func PCKey(_, triggerPC uint64) uint64 { return triggerPC >> 2 }

// TableFilter is the history-table filter with a pluggable key function;
// PA- and PC-based filters are the two instantiations.
type TableFilter struct {
	table *HistoryTable
	key   KeyFunc
	name  string
	stats Stats

	// probation, when positive, lets every probation-th rejected prefetch
	// through anyway. The paper's filter is purely absorbing: a rejected
	// key generates no eviction feedback and can only recover through
	// aliasing. Probation keeps a trickle of feedback alive so the table
	// can un-learn a stale rejection after the working set changes — the
	// natural fix for the weakness the adaptivity experiment exposes.
	probation int
	// ProbeAllows counts rejections converted to probationary issues.
	ProbeAllows uint64
}

// SetProbation enables probationary sampling: every n-th rejected
// prefetch issues anyway (n <= 0 disables, the paper's behaviour).
func (f *TableFilter) SetProbation(n int) { f.probation = n }

// NewPA builds the Per-Address filter of §4.1.
func NewPA(entries int, initial, threshold uint8, mode IndexMode) (*TableFilter, error) {
	t, err := NewHistoryTable(entries, initial, threshold, mode)
	if err != nil {
		return nil, err
	}
	return &TableFilter{table: t, key: PAKey, name: "pa"}, nil
}

// NewPC builds the Program-Counter filter of §4.2.
func NewPC(entries int, initial, threshold uint8, mode IndexMode) (*TableFilter, error) {
	t, err := NewHistoryTable(entries, initial, threshold, mode)
	if err != nil {
		return nil, err
	}
	return &TableFilter{table: t, key: PCKey, name: "pc"}, nil
}

// NewTableFilter builds a filter with a custom key function, for design-
// space exploration (e.g. XOR of PA and PC).
func NewTableFilter(name string, key KeyFunc, entries int, initial, threshold uint8, mode IndexMode) (*TableFilter, error) {
	if key == nil {
		return nil, fmt.Errorf("core: key function must not be nil")
	}
	t, err := NewHistoryTable(entries, initial, threshold, mode)
	if err != nil {
		return nil, err
	}
	return &TableFilter{table: t, key: key, name: name}, nil
}

// Predict reports the table's current prediction for req without
// touching any statistics — the side-effect-free probe tournament
// selectors use to consult a backend they may not pick.
//
//pflint:hotpath
func (f *TableFilter) Predict(req Request) bool {
	return f.table.Predict(f.key(req.LineAddr, req.TriggerPC))
}

// Allow implements Filter.
//
//pflint:hotpath
func (f *TableFilter) Allow(req Request) bool {
	f.stats.Queries++
	if f.table.Predict(f.key(req.LineAddr, req.TriggerPC)) {
		return true
	}
	f.stats.Rejected++
	if f.probation > 0 && f.stats.Rejected%uint64(f.probation) == 0 {
		f.ProbeAllows++
		return true
	}
	return false
}

// Train implements Filter.
//
//pflint:hotpath
func (f *TableFilter) Train(fb Feedback) {
	if fb.Referenced {
		f.stats.TrainGood++
	} else {
		f.stats.TrainBad++
	}
	f.table.Update(f.key(fb.LineAddr, fb.TriggerPC), fb.Referenced)
}

// Name implements Filter.
func (f *TableFilter) Name() string { return f.name }

// ResetStats zeroes the counters while keeping the history table warm
// (warmup boundary).
func (f *TableFilter) ResetStats() { f.stats = Stats{} }

// Stats implements Filter.
func (f *TableFilter) Stats() Stats { return f.stats }

// Table exposes the underlying history table (introspection and tests).
func (f *TableFilter) Table() *HistoryTable { return f.table }

// CounterDistribution returns how many table entries currently sit at
// each 2-bit counter value — the filter's learned state in one glance
// (a table stuck at 0 has absorbed its working set; a table at the
// initial value has learned nothing).
func (t *HistoryTable) CounterDistribution() [4]int {
	return t.counters.Distribution()
}

// MetricsDumper is implemented by filters that can export their state
// into a metrics registry; the simulator type-asserts for it at the end
// of an instrumented run.
type MetricsDumper interface {
	DumpMetrics(reg *metrics.Registry, prefix string)
}

// DumpMetrics exports filter activity and the history-table counter
// distribution under prefix ("sim.filter" -> "sim.filter.queries", ...,
// "sim.filter.table.counter3"). No-op on a nil registry.
func (f *TableFilter) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	dumpFilterStats(reg, prefix, f.stats)
	reg.Counter(prefix + ".probe_allows").Set(f.ProbeAllows)
	dist := f.table.CounterDistribution()
	for v, n := range dist {
		reg.Counter(fmt.Sprintf("%s.table.counter%d", prefix, v)).Set(uint64(n))
	}
}

// DumpMetrics exports the pass-through filter's training counts.
func (n *Null) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	dumpFilterStats(reg, prefix, n.stats)
}

// DumpMetrics exports the adaptive wrapper's own stats plus its inner
// table filter's state under prefix+".inner".
func (a *Adaptive) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	dumpFilterStats(reg, prefix, a.stats)
	engaged := uint64(0)
	if a.engaged {
		engaged = 1
	}
	reg.Counter(prefix + ".engaged").Set(engaged)
	a.inner.DumpMetrics(reg, prefix+".inner")
}

// dumpFilterStats writes the common Stats block.
func dumpFilterStats(reg *metrics.Registry, prefix string, s Stats) {
	reg.Counter(prefix + ".queries").Set(s.Queries)
	reg.Counter(prefix + ".rejected").Set(s.Rejected)
	reg.Counter(prefix + ".train_good").Set(s.TrainGood)
	reg.Counter(prefix + ".train_bad").Set(s.TrainBad)
}
