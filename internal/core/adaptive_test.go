package core

import "testing"

func newAdaptive(t *testing.T, threshold float64, window int) *Adaptive {
	t.Helper()
	inner, err := NewPA(64, 2, 2, IndexDirect)
	if err != nil {
		t.Fatal(err)
	}
	return NewAdaptive(inner, threshold, window)
}

func TestAdaptiveStartsDisengaged(t *testing.T) {
	a := newAdaptive(t, 0.5, 16)
	if a.Engaged() {
		t.Fatal("no feedback yet: should be disengaged")
	}
	// Even a key the inner table would reject passes while disengaged.
	a.Inner().Train(Feedback{LineAddr: 1, Referenced: false})
	if !a.Allow(Request{LineAddr: 1}) {
		t.Fatal("disengaged adaptive filter must pass everything")
	}
}

func TestAdaptiveEngagesOnLowAccuracy(t *testing.T) {
	a := newAdaptive(t, 0.5, 16)
	for i := 0; i < 16; i++ {
		a.Train(Feedback{LineAddr: uint64(i), Referenced: false})
	}
	if !a.Engaged() {
		t.Fatal("all-bad feedback should engage filtering")
	}
	// Inner table has been trained bad for those keys: now rejected.
	if a.Allow(Request{LineAddr: 1}) {
		t.Fatal("engaged filter should reject bad-trained keys")
	}
	s := a.Stats()
	if s.Rejected == 0 {
		t.Fatalf("rejections should be counted: %+v", s)
	}
}

func TestAdaptiveDisengagesWhenAccuracyRecovers(t *testing.T) {
	a := newAdaptive(t, 0.5, 8)
	for i := 0; i < 8; i++ {
		a.Train(Feedback{LineAddr: uint64(i), Referenced: false})
	}
	if !a.Engaged() {
		t.Fatal("should engage")
	}
	// The window slides: 8 good feedbacks displace the bad ones.
	for i := 0; i < 8; i++ {
		a.Train(Feedback{LineAddr: uint64(100 + i), Referenced: true})
	}
	if a.Engaged() {
		t.Fatal("recovered accuracy should disengage filtering")
	}
}

func TestAdaptiveWindowSlides(t *testing.T) {
	a := newAdaptive(t, 0.5, 4)
	// good, good, bad, bad → 50%, not engaged (engage strictly below).
	a.Train(Feedback{Referenced: true})
	a.Train(Feedback{Referenced: true})
	a.Train(Feedback{Referenced: false})
	a.Train(Feedback{Referenced: false})
	if a.Engaged() {
		t.Fatal("exactly at threshold should not engage")
	}
	// One more bad displaces the oldest good: window = good,bad,bad,bad.
	a.Train(Feedback{Referenced: false})
	if !a.Engaged() {
		t.Fatal("window should have slid to low accuracy")
	}
}

func TestAdaptiveTrainsInnerWhileBypassed(t *testing.T) {
	a := newAdaptive(t, 0.01, 1024) // practically never engages
	for i := 0; i < 10; i++ {
		a.Train(Feedback{LineAddr: 7, Referenced: false})
	}
	// The inner table must be warm even though filtering never engaged.
	if a.Inner().Table().Counter(7) != 0 {
		t.Fatal("inner table should train while bypassed")
	}
}

func TestAdaptiveName(t *testing.T) {
	a := newAdaptive(t, 0.5, 16)
	if a.Name() != "pa-adaptive" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestAdaptiveDefaultWindow(t *testing.T) {
	inner, _ := NewPA(64, 2, 2, IndexDirect)
	a := NewAdaptive(inner, 0.5, 0)
	if a.window != 1024 {
		t.Fatalf("default window = %d", a.window)
	}
}

func TestAdaptiveEngagedQueries(t *testing.T) {
	a := newAdaptive(t, 0.99, 4)
	for i := 0; i < 4; i++ {
		a.Train(Feedback{Referenced: false})
	}
	a.Allow(Request{LineAddr: 50})
	a.Allow(Request{LineAddr: 51})
	if a.EngagedQueries != 2 {
		t.Fatalf("EngagedQueries = %d", a.EngagedQueries)
	}
	a.ResetStats()
	if a.EngagedQueries != 0 || a.Stats() != (Stats{}) {
		t.Fatal("reset should clear counters")
	}
	if !a.Engaged() {
		t.Fatal("engage state (accuracy window) must survive reset")
	}
}
