package core

import (
	"testing"
	"testing/quick"
)

func TestTaggedTableValidation(t *testing.T) {
	if _, err := NewTaggedTable(1000, 8, 2, 2); err == nil {
		t.Error("non-pow2 entries should fail")
	}
	if _, err := NewTaggedTable(64, 0, 2, 2); err == nil {
		t.Error("zero tag bits should fail")
	}
	if _, err := NewTaggedTable(64, 17, 2, 2); err == nil {
		t.Error("oversized tag should fail")
	}
	if _, err := NewTaggedTable(64, 8, 4, 2); err == nil {
		t.Error("bad initial should fail")
	}
}

func TestTaggedSizeBytes(t *testing.T) {
	tt, _ := NewTaggedTable(4096, 8, 2, 2)
	// 4096 * (2 + 8 + 1) bits = 45056 bits = 5632 bytes.
	if got := tt.SizeBytes(); got != 5632 {
		t.Fatalf("size = %d", got)
	}
	if tt.Entries() != 4096 {
		t.Fatalf("entries = %d", tt.Entries())
	}
}

func TestTaggedFreshKeyAllows(t *testing.T) {
	tt, _ := NewTaggedTable(64, 8, 2, 2)
	for key := uint64(0); key < 1000; key += 7 {
		if !tt.Predict(key) {
			t.Fatalf("fresh key %d should predict good", key)
		}
	}
}

func TestTaggedIsolatesAliases(t *testing.T) {
	tt, _ := NewTaggedTable(64, 8, 2, 2)
	// Keys 64 apart share an index but have different tags.
	tt.Update(3, false) // trains entry 3 with tag 0
	if tt.Predict(3) {
		t.Fatal("trained key should be rejected")
	}
	// The aliased key sees a tag mismatch, so it gets the default allow —
	// the interference the untagged table would have suffered is gone.
	if !tt.Predict(3 + 64) {
		t.Fatal("aliased key must not inherit a foreign counter")
	}
	if tt.Mismatches == 0 {
		t.Fatal("tag mismatch should be counted")
	}
}

func TestTaggedUpdateStealsEntry(t *testing.T) {
	tt, _ := NewTaggedTable(64, 8, 2, 2)
	tt.Update(3, false)
	// A different key training the same entry replaces the tag.
	tt.Update(3+64, false)
	if tt.Predict(3 + 64) {
		t.Fatal("stealing key should now own the entry")
	}
	// The original key is evicted: back to default allow.
	if !tt.Predict(3) {
		t.Fatal("evicted key should see the default prediction")
	}
}

func TestTaggedFilterLifecycle(t *testing.T) {
	f, err := NewTaggedPA(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "pa-tagged" {
		t.Fatalf("name = %q", f.Name())
	}
	if !f.Allow(Request{LineAddr: 5}) {
		t.Fatal("fresh key allowed")
	}
	f.Train(Feedback{LineAddr: 5, Referenced: false})
	if f.Allow(Request{LineAddr: 5}) {
		t.Fatal("trained-bad key rejected")
	}
	s := f.Stats()
	if s.Queries != 2 || s.Rejected != 1 || s.TrainBad != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Fatal("reset should zero stats")
	}
	if f.Allow(Request{LineAddr: 5}) {
		t.Fatal("table must stay warm across reset")
	}
}

func TestTaggedPCFilter(t *testing.T) {
	f, err := NewTaggedPC(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	f.Train(Feedback{TriggerPC: 0x400000, Referenced: false})
	if f.Allow(Request{LineAddr: 999, TriggerPC: 0x400000}) {
		t.Fatal("bad PC should reject regardless of address")
	}
}

// Property: tagged and untagged tables agree on keys that never alias.
func TestPropertyTaggedMatchesUntaggedWithoutAliasing(t *testing.T) {
	f := func(outcomes []bool) bool {
		tagged, _ := NewTaggedTable(64, 8, 2, 2)
		plain, _ := NewHistoryTable(64, 2, 2, IndexDirect)
		key := uint64(5) // single key: no aliasing possible
		for _, good := range outcomes {
			tagged.Update(key, good)
			plain.Update(key, good)
			if tagged.Predict(key) != plain.Predict(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
