// Package energy estimates the memory-system energy of a simulation run.
//
// The paper motivates pollution filtering partly with energy: aggressive
// but ineffective prefetches are "thrashing resources such as buses and
// caches, which lead to performance loss and unnecessary energy
// consumption" (§3). This package quantifies that claim with a simple
// event-energy model: every counted event of a run (L1/L2 accesses,
// memory requests, bus bytes, history-table operations) is charged a
// fixed per-event energy, plus a leakage term proportional to cycles.
//
// The default constants are illustrative magnitudes for a ~130nm-era
// design (the paper's deep-submicron context): they are NOT calibrated to
// a specific process, but their *ratios* (memory ≫ L2 ≫ L1 ≫ filter
// table) are what the comparison depends on, and those are robust.
package energy

import (
	"fmt"

	"repro/internal/stats"
)

// Params are per-event energies in nanojoules, plus leakage per cycle.
type Params struct {
	L1Access   float64 // full L1 tag+data access
	L1Probe    float64 // tag-only probe (duplicate squash checks)
	L2Access   float64
	MemAccess  float64 // DRAM leadoff
	BusPerByte float64
	TableOp    float64 // history-table lookup or update
	BufferOp   float64 // dedicated prefetch buffer probe/fill
	LeakPerCyc float64
}

// DefaultParams returns the illustrative constants.
func DefaultParams() Params {
	return Params{
		L1Access:   0.5,
		L1Probe:    0.1,
		L2Access:   2.4,
		MemAccess:  32,
		BusPerByte: 0.06,
		TableOp:    0.012, // 1KB array of 2-bit counters: tiny
		BufferOp:   0.25,  // 16-entry fully-associative CAM
		LeakPerCyc: 0.08,
	}
}

// Validate rejects negative energies.
func (p Params) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"l1", p.L1Access}, {"probe", p.L1Probe}, {"l2", p.L2Access},
		{"mem", p.MemAccess}, {"bus", p.BusPerByte}, {"table", p.TableOp},
		{"buffer", p.BufferOp}, {"leak", p.LeakPerCyc},
	} {
		if v.val < 0 {
			return fmt.Errorf("energy: %s energy must be non-negative, got %g", v.name, v.val)
		}
	}
	return nil
}

// Breakdown is a run's estimated energy by component, in nJ.
type Breakdown struct {
	L1      float64
	L2      float64
	Memory  float64
	Bus     float64
	Filter  float64 // history-table lookups + training updates
	Leakage float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.L1 + b.L2 + b.Memory + b.Bus + b.Filter + b.Leakage
}

// PerInstruction normalizes by retired instructions (nJ/instr).
func (b Breakdown) PerInstruction(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return b.Total() / float64(instructions)
}

// Estimate charges a run's event counts against the model.
//
// Event mapping:
//   - L1: demand accesses + prefetch fills at full access energy, plus
//     squashed duplicates at tag-probe energy.
//   - L2: all L2 accesses (demand and prefetch).
//   - Memory: all memory requests.
//   - Bus: one line transfer per memory access (lineBytes each way is
//     folded into the per-access byte count).
//   - Filter: one table op per query and one per training event.
func Estimate(p Params, run stats.Run, lineBytes int) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if lineBytes <= 0 {
		return Breakdown{}, fmt.Errorf("energy: line bytes must be positive, got %d", lineBytes)
	}
	var b Breakdown
	b.L1 = p.L1Access*float64(run.Traffic.DemandAccesses+run.Traffic.PrefetchAccesses) +
		p.L1Probe*float64(run.Prefetches.Squashed)
	b.L2 = p.L2Access * float64(run.Traffic.L2Accesses)
	b.Memory = p.MemAccess * float64(run.Traffic.MemAccesses)
	b.Bus = p.BusPerByte * float64(run.Traffic.MemAccesses) * float64(lineBytes)
	trainOps := run.Prefetches.Good + run.Prefetches.Bad // one update per classification
	b.Filter = p.TableOp * float64(run.FilterQueries+trainOps)
	b.Leakage = p.LeakPerCyc * float64(run.Cycles)
	return b, nil
}
