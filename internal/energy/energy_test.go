package energy

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	p := DefaultParams()
	p.MemAccess = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative energy should fail")
	}
}

func TestEstimateRejectsBadLine(t *testing.T) {
	if _, err := Estimate(DefaultParams(), stats.Run{}, 0); err == nil {
		t.Fatal("zero line bytes should fail")
	}
}

func TestEstimateComponents(t *testing.T) {
	p := Params{
		L1Access: 1, L1Probe: 0.5, L2Access: 10, MemAccess: 100,
		BusPerByte: 0.1, TableOp: 0.01, LeakPerCyc: 0.001,
	}
	run := stats.Run{
		Cycles:        1000,
		FilterQueries: 50,
		Prefetches:    stats.Prefetches{Good: 10, Bad: 20, Squashed: 40},
		Traffic: stats.Traffic{
			DemandAccesses:   100,
			PrefetchAccesses: 30,
			L2Accesses:       25,
			MemAccesses:      5,
		},
	}
	b, err := Estimate(p, run, 32)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("L1", b.L1, 130*1+40*0.5)         // 130 accesses + 40 probes
	check("L2", b.L2, 250)                  // 25 * 10
	check("Memory", b.Memory, 500)          // 5 * 100
	check("Bus", b.Bus, 5*32*0.1)           // 5 transfers * 32B
	check("Filter", b.Filter, 0.01*(50+30)) // 50 queries + 30 trainings
	check("Leakage", b.Leakage, 1)          // 1000 * 0.001
	check("Total", b.Total(), b.L1+b.L2+b.Memory+b.Bus+b.Filter+b.Leakage)
}

func TestPerInstruction(t *testing.T) {
	b := Breakdown{L1: 100}
	if b.PerInstruction(50) != 2 {
		t.Fatalf("per-instr = %v", b.PerInstruction(50))
	}
	if b.PerInstruction(0) != 0 {
		t.Fatal("zero instructions should be 0")
	}
}

func TestMemoryDominatesHierarchy(t *testing.T) {
	// The model's defining property: a memory access costs far more than
	// an L2 access, which costs more than an L1 access, which costs more
	// than a table op. The filter's energy argument rests on this.
	p := DefaultParams()
	if !(p.MemAccess > p.L2Access && p.L2Access > p.L1Access && p.L1Access > p.TableOp) {
		t.Fatalf("energy ordering broken: %+v", p)
	}
	if p.TableOp*2 > p.L1Access {
		t.Fatal("a filter op must be far cheaper than the L1 access it can save")
	}
}
