// Package predictor implements the branch prediction hardware of the
// simulated core and the 2-bit saturating counter shared with the pollution
// filter's history table.
//
// Table 1 of the paper specifies a 2048-entry bimodal predictor and a
// 4-way, 4096-set branch target buffer. The counter semantics are the
// classic Smith counter: increment on taken, decrement on not-taken,
// saturating at [0, 3]; values >= 2 predict taken.
package predictor

import "fmt"

// SatCounter is a 2-bit saturating counter. The zero value is a strongly
// not-taken counter.
type SatCounter uint8

// Counter bounds and the conventional state names.
const (
	StrongNotTaken SatCounter = 0
	WeakNotTaken   SatCounter = 1
	WeakTaken      SatCounter = 2
	StrongTaken    SatCounter = 3
	counterMax     SatCounter = 3
)

// Inc returns the counter incremented with saturation.
func (c SatCounter) Inc() SatCounter {
	if c >= counterMax {
		return counterMax
	}
	return c + 1
}

// Dec returns the counter decremented with saturation.
func (c SatCounter) Dec() SatCounter {
	if c == 0 {
		return 0
	}
	return c - 1
}

// Taken reports the counter's prediction with the standard >= 2 threshold.
func (c SatCounter) Taken() bool { return c >= WeakTaken }

// Update returns the counter trained toward the outcome.
func (c SatCounter) Update(taken bool) SatCounter {
	if taken {
		return c.Inc()
	}
	return c.Dec()
}

// Valid reports whether the counter holds a representable 2-bit value.
func (c SatCounter) Valid() bool { return c <= counterMax }

// CounterTable is the shared table-of-2-bit-counters fabric: a
// power-of-two array of SatCounters behind an index mask. The bimodal
// branch predictor and the pollution filter's history table are both
// instantiations of this one structure (the paper's filter deliberately
// reuses branch-predictor hardware idioms, and so does the code).
type CounterTable struct {
	counters []SatCounter
	mask     uint64
}

// NewCounterTable allocates a table with the given power-of-two entry
// count, every counter starting at initial.
func NewCounterTable(entries int, initial SatCounter) (*CounterTable, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: counter table entries must be a positive power of two, got %d", entries)
	}
	if !initial.Valid() {
		return nil, fmt.Errorf("predictor: initial counter must be a 2-bit value, got %d", initial)
	}
	t := &CounterTable{counters: make([]SatCounter, entries), mask: uint64(entries - 1)}
	for i := range t.counters {
		t.counters[i] = initial
	}
	return t, nil
}

// Mask returns the index mask (entries - 1).
func (t *CounterTable) Mask() uint64 { return t.mask }

// At returns the counter at idx (masked).
func (t *CounterTable) At(idx uint64) SatCounter { return t.counters[idx&t.mask] }

// Update trains the counter at idx (masked) toward the outcome.
func (t *CounterTable) Update(idx uint64, up bool) {
	i := idx & t.mask
	t.counters[i] = t.counters[i].Update(up)
}

// Len returns the table length.
func (t *CounterTable) Len() int { return len(t.counters) }

// Distribution returns how many entries sit at each 2-bit counter value.
func (t *CounterTable) Distribution() (dist [4]int) {
	for _, c := range t.counters {
		dist[c&3]++
	}
	return dist
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table *CounterTable
}

// NewBimodal allocates a predictor with the given power-of-two entry count.
// Counters start weakly taken, the usual reset state for loop-heavy code.
func NewBimodal(entries int) (*Bimodal, error) {
	t, err := NewCounterTable(entries, WeakTaken)
	if err != nil {
		return nil, fmt.Errorf("predictor: bimodal: %w", err)
	}
	return &Bimodal{table: t}, nil
}

func (b *Bimodal) index(pc uint64) uint64 { return pc >> 2 }

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc uint64) bool { return b.table.At(b.index(pc)).Taken() }

// Update trains the counter for pc toward the resolved direction.
func (b *Bimodal) Update(pc uint64, taken bool) {
	b.table.Update(b.index(pc), taken)
}

// Entries returns the table length.
func (b *Bimodal) Entries() int { return b.table.Len() }

// btbEntry is one BTB way: a tag and the cached target.
type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64 // larger = more recently used
}

// BTB is a set-associative branch target buffer with true-LRU replacement.
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	tick    uint64
}

// NewBTB allocates a BTB with the given power-of-two set count and
// associativity.
func NewBTB(sets, assoc int) (*BTB, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("predictor: BTB sets must be a positive power of two, got %d", sets)
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("predictor: BTB associativity must be positive, got %d", assoc)
	}
	b := &BTB{sets: make([][]btbEntry, sets), setMask: uint64(sets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, assoc)
	}
	return b, nil
}

func (b *BTB) split(pc uint64) (set, tag uint64) {
	idx := pc >> 2
	return idx & b.setMask, idx >> uint(trailingOnes(b.setMask))
}

// Lookup returns the cached target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	set, tag := b.split(pc)
	ways := b.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			b.tick++
			ways[i].lru = b.tick
			return ways[i].target, true
		}
	}
	return 0, false
}

// Insert records the resolved target for a taken branch at pc, evicting the
// least-recently-used way on conflict.
func (b *BTB) Insert(pc, target uint64) {
	set, tag := b.split(pc)
	ways := b.sets[set]
	b.tick++
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].target = target
			ways[i].lru = b.tick
			return
		}
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.tick}
}

// trailingOnes counts the number of set low bits in a contiguous low mask.
func trailingOnes(mask uint64) int {
	n := 0
	for mask&1 == 1 {
		n++
		mask >>= 1
	}
	return n
}

// Unit couples a bimodal predictor with a BTB and tracks accuracy, giving
// the CPU model a single prediction interface.
type Unit struct {
	Bimodal *Bimodal
	BTB     *BTB

	Predictions    uint64
	Mispredictions uint64
}

// NewUnit builds the Table 1 branch unit.
func NewUnit(bimodalEntries, btbSets, btbAssoc int) (*Unit, error) {
	bm, err := NewBimodal(bimodalEntries)
	if err != nil {
		return nil, err
	}
	btb, err := NewBTB(btbSets, btbAssoc)
	if err != nil {
		return nil, err
	}
	return &Unit{Bimodal: bm, BTB: btb}, nil
}

// Resolve runs the full predict-then-train flow for a resolved branch and
// reports whether the prediction was correct. A taken prediction with a BTB
// miss or a wrong cached target counts as a misprediction, matching
// fetch-redirect behaviour.
func (u *Unit) Resolve(pc uint64, taken bool, target uint64) (correct bool) {
	predTaken := u.Bimodal.Predict(pc)
	correct = predTaken == taken
	if correct && taken {
		cached, ok := u.BTB.Lookup(pc)
		if !ok || cached != target {
			correct = false
		}
	}
	u.Bimodal.Update(pc, taken)
	if taken {
		u.BTB.Insert(pc, target)
	}
	u.Predictions++
	if !correct {
		u.Mispredictions++
	}
	return correct
}

// Accuracy returns the fraction of correct predictions, or 1 when no
// branches have resolved.
func (u *Unit) Accuracy() float64 {
	if u.Predictions == 0 {
		return 1
	}
	return 1 - float64(u.Mispredictions)/float64(u.Predictions)
}
