package predictor

import (
	"testing"
	"testing/quick"
)

func TestSatCounterSaturation(t *testing.T) {
	c := StrongNotTaken
	for i := 0; i < 10; i++ {
		c = c.Dec()
	}
	if c != StrongNotTaken {
		t.Fatalf("Dec should saturate at 0, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.Inc()
	}
	if c != StrongTaken {
		t.Fatalf("Inc should saturate at 3, got %d", c)
	}
}

func TestSatCounterTakenThreshold(t *testing.T) {
	if StrongNotTaken.Taken() || WeakNotTaken.Taken() {
		t.Error("counters 0,1 must predict not-taken")
	}
	if !WeakTaken.Taken() || !StrongTaken.Taken() {
		t.Error("counters 2,3 must predict taken")
	}
}

func TestSatCounterUpdate(t *testing.T) {
	if WeakTaken.Update(true) != StrongTaken {
		t.Error("taken should increment")
	}
	if WeakTaken.Update(false) != WeakNotTaken {
		t.Error("not-taken should decrement")
	}
}

func TestSatCounterPropertyAlwaysValid(t *testing.T) {
	f := func(start uint8, steps []bool) bool {
		c := SatCounter(start % 4)
		for _, s := range steps {
			c = c.Update(s)
			if !c.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatCounterPropertyMonotoneStep(t *testing.T) {
	// One update moves the counter by at most 1.
	f := func(start uint8, taken bool) bool {
		c := SatCounter(start % 4)
		n := c.Update(taken)
		d := int(n) - int(c)
		if d < -1 || d > 1 {
			return false
		}
		if taken && d < 0 || !taken && d > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 1000} {
		if _, err := NewBimodal(n); err == nil {
			t.Errorf("NewBimodal(%d) should fail", n)
		}
	}
	if _, err := NewBimodal(2048); err != nil {
		t.Fatalf("NewBimodal(2048): %v", err)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(64)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400100)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("after 10 not-taken updates, should predict not-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("after 10 taken updates, should predict taken")
	}
}

func TestBimodalIndexingDistinct(t *testing.T) {
	b, _ := NewBimodal(1024)
	// Two PCs in different entries should train independently.
	pcA, pcB := uint64(0x1000), uint64(0x1004)
	for i := 0; i < 5; i++ {
		b.Update(pcA, true)
		b.Update(pcB, false)
	}
	if !b.Predict(pcA) || b.Predict(pcB) {
		t.Fatal("adjacent PCs should not interfere in a 1024-entry table")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b, _ := NewBimodal(16)
	// PCs 16 entries apart share a counter (pc>>2 & 15).
	pcA := uint64(0x100)
	pcB := pcA + 16*4
	for i := 0; i < 5; i++ {
		b.Update(pcA, true)
	}
	if !b.Predict(pcB) {
		t.Fatal("aliased PC should see the trained counter")
	}
}

func TestBTBValidation(t *testing.T) {
	if _, err := NewBTB(3, 4); err == nil {
		t.Error("non-pow2 sets should fail")
	}
	if _, err := NewBTB(16, 0); err == nil {
		t.Error("zero assoc should fail")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b, err := NewBTB(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("empty BTB should miss")
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Fatalf("Lookup = %#x, %v", tgt, ok)
	}
	// Update in place.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Fatalf("update failed: %#x", tgt)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b, _ := NewBTB(1, 2) // single set, 2 ways
	b.Insert(0x1000, 0xa)
	b.Insert(0x2000, 0xb)
	// Touch 0x1000 so 0x2000 is LRU.
	if _, ok := b.Lookup(0x1000); !ok {
		t.Fatal("0x1000 should hit")
	}
	b.Insert(0x3000, 0xc) // evicts 0x2000
	if _, ok := b.Lookup(0x2000); ok {
		t.Fatal("0x2000 should have been evicted")
	}
	if _, ok := b.Lookup(0x1000); !ok {
		t.Fatal("0x1000 should survive")
	}
	if _, ok := b.Lookup(0x3000); !ok {
		t.Fatal("0x3000 should be present")
	}
}

func TestUnitResolve(t *testing.T) {
	u, err := NewUnit(2048, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	pc, tgt := uint64(0x400000), uint64(0x400800)
	// First taken resolution: bimodal starts weakly-taken but BTB is cold,
	// so the redirect counts as a misprediction.
	if u.Resolve(pc, true, tgt) {
		t.Fatal("cold BTB taken branch should mispredict")
	}
	// Now the BTB knows the target.
	if !u.Resolve(pc, true, tgt) {
		t.Fatal("warm branch should predict correctly")
	}
	// Wrong cached target counts as misprediction.
	if u.Resolve(pc, true, tgt+64) {
		t.Fatal("target change should mispredict")
	}
	if u.Predictions != 3 {
		t.Fatalf("Predictions = %d", u.Predictions)
	}
	if u.Mispredictions != 2 {
		t.Fatalf("Mispredictions = %d", u.Mispredictions)
	}
}

func TestUnitAccuracy(t *testing.T) {
	u, _ := NewUnit(64, 16, 1)
	if u.Accuracy() != 1 {
		t.Fatal("idle unit should report accuracy 1")
	}
	pc := uint64(0x100)
	for i := 0; i < 100; i++ {
		u.Resolve(pc, false, 0)
	}
	if acc := u.Accuracy(); acc < 0.9 {
		t.Fatalf("steady not-taken branch accuracy %v", acc)
	}
}

func TestUnitValidation(t *testing.T) {
	if _, err := NewUnit(0, 16, 1); err == nil {
		t.Error("bad bimodal should fail")
	}
	if _, err := NewUnit(64, 0, 1); err == nil {
		t.Error("bad BTB should fail")
	}
}
