package fabric

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

func testRun(n uint64) stats.Run {
	return stats.Run{
		Benchmark:    "bench",
		Instructions: n,
		Cycles:       3 * n,
		Prefetches:   stats.Prefetches{Issued: n, Good: n / 2, Bad: n / 4},
	}
}

func openTestCAS(t *testing.T) (*CAS, *metrics.Registry) {
	t.Helper()
	m := metrics.New()
	c, err := OpenCAS(t.TempDir(), m)
	if err != nil {
		t.Fatalf("OpenCAS: %v", err)
	}
	return c, m
}

func TestCASRoundTrip(t *testing.T) {
	c, m := openTestCAS(t)
	key := "mcf|n=100|w=10|seed=1|{}"

	if _, ok, err := c.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v, want miss with no error", ok, err)
	}
	want := testRun(100)
	if err := c.Put(key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}

	// The sha-only lookup recovers the full key from the envelope.
	gotKey, got, ok, err := c.GetSHA(KeySHA(key))
	if err != nil || !ok {
		t.Fatalf("GetSHA: ok=%v err=%v", ok, err)
	}
	if gotKey != key || !reflect.DeepEqual(got, want) {
		t.Fatalf("GetSHA = (%q, %+v), want (%q, %+v)", gotKey, got, key, want)
	}

	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry", n, err)
	}
	snap := m.Snapshot()
	if snap.Counters["fabric.cas.fills"] != 1 || snap.Counters["fabric.cas.hits"] != 2 || snap.Counters["fabric.cas.misses"] != 1 {
		t.Fatalf("counters = %v, want 1 fill, 2 hits, 1 miss", snap.Counters)
	}
}

func TestCASPutIsIdempotent(t *testing.T) {
	c, _ := openTestCAS(t)
	key := "k"
	for i := 0; i < 3; i++ {
		if err := c.Put(key, testRun(7)); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
	}
	if n, _ := c.Len(); n != 1 {
		t.Fatalf("Len = %d after repeated Put of one key, want 1", n)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Join(c.Dir(), KeySHA(key)[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s survived a successful Put", e.Name())
		}
	}
}

func TestCASGetSHARejectsBadAddress(t *testing.T) {
	c, _ := openTestCAS(t)
	if _, _, _, err := c.GetSHA("short"); err == nil {
		t.Fatal("GetSHA accepted a 5-char address")
	}
}

func TestCASCorruptEntryReadsAsMiss(t *testing.T) {
	c, m := openTestCAS(t)
	key := "corrupt-me"
	if err := c.Put(key, testRun(1)); err != nil {
		t.Fatal(err)
	}
	path := c.path(KeySHA(key))
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss WITH error", ok, err)
	}

	// An entry whose stored key does not hash to its address is a lie:
	// also an error, never a wrong answer.
	bad, err := json.Marshal(envelope{Key: "some-other-key", Run: testRun(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatalf("mismatched entry: ok=%v err=%v, want miss WITH error", ok, err)
	}
	if m.Snapshot().Counters["fabric.cas.errors"] != 2 {
		t.Fatalf("errors counter = %d, want 2", m.Snapshot().Counters["fabric.cas.errors"])
	}
}

func TestCASRunStoreAdapterSwallowsErrors(t *testing.T) {
	c, _ := openTestCAS(t)
	key := "adapter"
	if _, ok := c.GetRun(key); ok {
		t.Fatal("GetRun hit on empty store")
	}
	c.PutRun(key, testRun(5))
	if r, ok := c.GetRun(key); !ok || !reflect.DeepEqual(r, testRun(5)) {
		t.Fatalf("GetRun = %+v, %v", r, ok)
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := map[string]stats.Run{"k1": testRun(1), "k2": testRun(2)}
	b := map[string]stats.Run{"k2": testRun(2), "k1": testRun(1)}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on map iteration order")
	}
	b["k2"] = testRun(3)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprint blind to a changed run")
	}
	delete(b, "k2")
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprint blind to a missing cell")
	}
}
