// Coordinator tests against fake HTTP workers: re-dealing around dead
// workers, permanent-failure classification, key cross-checking, and the
// CAS-first probe. The fake workers answer the real wire protocol but
// fabricate runs deterministically from the cell key, so every test can
// assert the exact result set.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
)

// testCells builds n distinct cells. Keys are synthetic: the coordinator
// never computes keys itself, it trusts Cell.Key and cross-checks the
// worker's answer — so tests control both sides.
func testCells(n int) []Cell {
	cfg := config.Default8K()
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Key:    fmt.Sprintf("bench%02d|n=100|w=10|seed=1|{}", i),
			Bench:  fmt.Sprintf("bench%02d", i),
			Config: cfg,
		}
	}
	return cells
}

// keyFor mirrors testCells' key construction — what an agreeing worker
// computes from the request it receives.
func keyFor(req CellRequest) string {
	return fmt.Sprintf("%s|n=%d|w=%d|seed=%d|{}", req.Bench, req.Instructions, *req.Warmup, req.Seed)
}

// runFor fabricates the deterministic result every honest worker returns
// for a key.
func runFor(key string) stats.Run {
	return stats.Run{Benchmark: key, Instructions: uint64(len(key)), Cycles: 2 * uint64(len(key))}
}

// fakeWorker serves the cell protocol; respond can rewrite the response
// (or answer itself and return false).
func fakeWorker(t *testing.T, hits *atomic.Int64, respond func(w http.ResponseWriter, cr *CellResponse) bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		var req CellRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key := keyFor(req)
		run := runFor(key)
		cr := CellResponse{Key: key, KeySHA: KeySHA(key), Run: &run, Source: "sim"}
		if respond != nil && !respond(w, &cr) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cr); err != nil {
			t.Errorf("fake worker encode: %v", err)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// collect runs the coordinator and gathers results by key.
func collect(t *testing.T, c *Coordinator, cells []Cell) map[string]Result {
	t.Helper()
	out := make(map[string]Result, len(cells))
	err := c.Run(context.Background(), Params{Instructions: 100, Warmup: 10, Seed: 1}, cells, sched.ConstCost(1), func(r Result) {
		if _, dup := out[r.Cell.Key]; dup {
			t.Errorf("cell %s emitted twice", r.Cell.Key)
		}
		out[r.Cell.Key] = r
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != len(cells) {
		t.Fatalf("emitted %d results, want %d", len(out), len(cells))
	}
	return out
}

func TestCoordinatorCompletesAndFillsCAS(t *testing.T) {
	cas, _ := openTestCAS(t)
	var hits atomic.Int64
	w1 := fakeWorker(t, &hits, nil)
	w2 := fakeWorker(t, &hits, nil)
	m := metrics.New()
	c, err := New(Options{Workers: []string{w1.URL, w2.URL}, CAS: cas, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	cells := testCells(8)
	out := collect(t, c, cells)
	for _, r := range out {
		if r.Err != nil {
			t.Fatalf("cell %s failed: %v", r.Cell.Key, r.Err)
		}
		if r.Source != w1.URL && r.Source != w2.URL {
			t.Fatalf("cell %s source = %q, want a worker URL", r.Cell.Key, r.Source)
		}
	}
	if n, _ := cas.Len(); n != len(cells) {
		t.Fatalf("CAS holds %d entries after the sweep, want %d", n, len(cells))
	}

	// Second identical sweep: every cell answers from the CAS pass, no
	// worker sees a single request.
	before := hits.Load()
	out2 := collect(t, c, cells)
	for _, r := range out2 {
		if r.Err != nil || r.Source != "cas" {
			t.Fatalf("repeat sweep cell %s: err=%v source=%q, want CAS hit", r.Cell.Key, r.Err, r.Source)
		}
	}
	if hits.Load() != before {
		t.Fatalf("repeat sweep dispatched %d requests, want 0", hits.Load()-before)
	}
	// The two sweeps agree byte for byte.
	runs1, runs2 := map[string]stats.Run{}, map[string]stats.Run{}
	for k, r := range out {
		runs1[k] = r.Run
	}
	for k, r := range out2 {
		runs2[k] = r.Run
	}
	if Fingerprint(runs1) != Fingerprint(runs2) {
		t.Fatal("CAS-served sweep fingerprint differs from the simulated one")
	}
}

func TestCoordinatorRedealsAroundDeadWorker(t *testing.T) {
	// Worker 0 is a corpse: its URL points at a closed listener, so every
	// dispatch is a transport failure. Its share of the deal must be
	// re-dealt to (or stolen by) worker 1 and the sweep must complete.
	corpse := httptest.NewServer(http.NotFoundHandler())
	corpseURL := corpse.URL
	corpse.Close()
	var hits atomic.Int64
	alive := fakeWorker(t, &hits, nil)

	m := metrics.New()
	c, err := New(Options{
		Workers:     []string{corpseURL, alive.URL},
		Lease:       5 * time.Second,
		MaxAttempts: 3,
		DeadAfter:   2,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}

	cells := testCells(10)
	out := collect(t, c, cells)
	for _, r := range out {
		if r.Err != nil {
			t.Fatalf("cell %s failed: %v", r.Cell.Key, r.Err)
		}
		if r.Source != alive.URL {
			t.Fatalf("cell %s source = %q, want the surviving worker", r.Cell.Key, r.Source)
		}
	}
	snap := m.Snapshot()
	if snap.Counters["fabric.workers.dead"] != 1 {
		t.Fatalf("workers.dead = %d, want 1", snap.Counters["fabric.workers.dead"])
	}
	if snap.Counters["fabric.cells.redealt"] == 0 && snap.Counters["fabric.cells.stolen"] == 0 {
		t.Fatal("no cells were re-dealt or stolen despite a dead worker")
	}
	if got := snap.Counters["fabric.cells.completed"]; got != uint64(len(cells)) {
		t.Fatalf("cells.completed = %d, want %d", got, len(cells))
	}
}

func TestCoordinatorAllWorkersDead(t *testing.T) {
	corpse := httptest.NewServer(http.NotFoundHandler())
	url := corpse.URL
	corpse.Close()
	c, err := New(Options{Workers: []string{url}, DeadAfter: 1, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells(4)
	got := 0
	err = c.Run(context.Background(), Params{Instructions: 100, Warmup: 10, Seed: 1}, cells, sched.ConstCost(1), func(r Result) {
		got++
		if r.Err == nil {
			t.Errorf("cell %s succeeded against a dead fleet", r.Cell.Key)
		}
	})
	if err != nil {
		t.Fatalf("Run returned %v; fleet death is reported per-cell, not as a run error", err)
	}
	if got != len(cells) {
		t.Fatalf("emitted %d results, want %d (every cell must fail explicitly)", got, len(cells))
	}
}

func TestCoordinatorPermanentFailureIsNotRetried(t *testing.T) {
	var hits atomic.Int64
	w := fakeWorker(t, &hits, func(rw http.ResponseWriter, _ *CellResponse) bool {
		http.Error(rw, "no such benchmark", http.StatusBadRequest)
		return false
	})
	c, err := New(Options{Workers: []string{w.URL}, MaxAttempts: 3, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells(3)
	out := collect(t, c, cells)
	for _, r := range out {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "status 400") {
			t.Fatalf("cell %s: err = %v, want a permanent status-400 failure", r.Cell.Key, r.Err)
		}
		if r.Attempts != 1 {
			t.Fatalf("cell %s dispatched %d times; 4xx must not be retried", r.Cell.Key, r.Attempts)
		}
	}
	if hits.Load() != int64(len(cells)) {
		t.Fatalf("worker saw %d requests, want exactly %d", hits.Load(), len(cells))
	}
}

func TestCoordinatorDetectsKeyMismatch(t *testing.T) {
	m := metrics.New()
	w := fakeWorker(t, nil, func(_ http.ResponseWriter, cr *CellResponse) bool {
		cr.Key = "a-disagreeing-key" // version skew
		return true
	})
	c, err := New(Options{Workers: []string{w.URL}, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, c, testCells(2))
	for _, r := range out {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "key mismatch") {
			t.Fatalf("cell %s: err = %v, want key mismatch", r.Cell.Key, r.Err)
		}
	}
	if m.Snapshot().Counters["fabric.key_mismatch"] != 2 {
		t.Fatalf("key_mismatch counter = %d, want 2", m.Snapshot().Counters["fabric.key_mismatch"])
	}
}

func TestCoordinatorHonoursCancellation(t *testing.T) {
	// A worker that never answers within the test's patience: cancelling
	// the run context must end Run promptly with every cell accounted for.
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for client
		// disconnects once the request body is consumed, and without that
		// this handler would outlive the cancelled dispatch.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(stall.Close)
	c, err := New(Options{Workers: []string{stall.URL}, Lease: time.Minute, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cells := testCells(3)
	emitted := make(chan Result, len(cells))
	done := make(chan error, 1)
	go func() {
		done <- c.Run(ctx, Params{Instructions: 100, Warmup: 10, Seed: 1}, cells, sched.ConstCost(1), func(r Result) {
			emitted <- r
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	close(emitted)
	n := 0
	for r := range emitted {
		n++
		if r.Err == nil {
			t.Errorf("cell %s reported success under cancellation", r.Cell.Key)
		}
	}
	if n != len(cells) {
		t.Fatalf("emitted %d results, want %d (cancelled cells must fail explicitly)", n, len(cells))
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted an empty worker list")
	}
	if _, err := New(Options{Workers: []string{"localhost:8078"}}); err == nil {
		t.Fatal("New accepted a schemeless worker URL")
	}
}
