// The on-disk content-addressed result store (CAS).
//
// Every completed simulation cell is stored under the sha256 of its
// fully-qualified cache key (experiments.CacheKey): the key names the
// simulation bit-exactly — benchmark, instruction budget, warmup, seed,
// canonical config encoding — so the store needs no invalidation, ever.
// A result is immutable: two writers racing on the same key write the
// same bytes, and the atomic-rename commit makes the race harmless.
//
// Layout (git-style fan-out so directories stay small at millions of
// entries):
//
//	<dir>/ab/abcdef…0123.json      one JSON envelope {key, run} per cell
//
// The envelope records the full key alongside the run so lookups can
// verify content addressing end to end (a sha collision or a corrupted
// file reads back as a miss, never as a wrong result) and so sha-only
// protocols (GET /v1/cell?sha=…) can recover the key.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// KeySHA returns the content address of a cache key: lowercase sha256
// hex, the CAS filename stem and the wire identity of a cell.
func KeySHA(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// envelope is the stored form of one cell result.
type envelope struct {
	// Key is the full cache key the run is addressed by.
	Key string `json:"key"`
	// Run is the simulation result.
	Run stats.Run `json:"run"`
}

// CAS is the on-disk store. All methods are safe for concurrent use by
// any number of processes sharing the directory: writes are atomic
// renames and entries are immutable.
type CAS struct {
	dir string
	m   *metrics.Registry
}

// OpenCAS opens (creating if needed) a store rooted at dir. The metrics
// registry is optional (nil-safe, like every registry in this repo) and
// receives "fabric.cas.hits", "fabric.cas.misses", "fabric.cas.fills"
// and "fabric.cas.errors" counters.
func OpenCAS(dir string, m *metrics.Registry) (*CAS, error) {
	if dir == "" {
		return nil, fmt.Errorf("fabric: cas directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: cas: %w", err)
	}
	return &CAS{dir: dir, m: m}, nil
}

// Dir returns the store's root directory.
func (c *CAS) Dir() string { return c.dir }

// path maps a content address to its file.
func (c *CAS) path(sha string) string {
	return filepath.Join(c.dir, sha[:2], sha+".json")
}

// Get returns the run stored under key, reporting ok=false on a miss.
// A present-but-unreadable or key-mismatched entry is an error AND a
// miss: callers fall back to simulating, and the error explains why the
// store did not help.
func (c *CAS) Get(key string) (stats.Run, bool, error) {
	_, run, ok, err := c.load(KeySHA(key), key)
	return run, ok, err
}

// GetSHA returns the (key, run) stored under a content address — the
// sha-only lookup the HTTP protocol uses.
func (c *CAS) GetSHA(sha string) (string, stats.Run, bool, error) {
	if len(sha) != 64 {
		return "", stats.Run{}, false, fmt.Errorf("fabric: cas: address must be 64 hex chars, got %d", len(sha))
	}
	return c.load(sha, "")
}

// load reads one envelope. wantKey, when non-empty, must match the
// stored key (content-address verification).
func (c *CAS) load(sha, wantKey string) (string, stats.Run, bool, error) {
	data, err := os.ReadFile(c.path(sha))
	if err != nil {
		if os.IsNotExist(err) {
			c.m.Counter("fabric.cas.misses").Inc()
			return "", stats.Run{}, false, nil
		}
		c.m.Counter("fabric.cas.errors").Inc()
		return "", stats.Run{}, false, fmt.Errorf("fabric: cas read %s: %w", sha, err)
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		c.m.Counter("fabric.cas.errors").Inc()
		return "", stats.Run{}, false, fmt.Errorf("fabric: cas entry %s corrupt: %w", sha, err)
	}
	if KeySHA(e.Key) != sha || (wantKey != "" && e.Key != wantKey) {
		c.m.Counter("fabric.cas.errors").Inc()
		return "", stats.Run{}, false, fmt.Errorf("fabric: cas entry %s holds a different key", sha)
	}
	c.m.Counter("fabric.cas.hits").Inc()
	return e.Key, e.Run, true, nil
}

// Put stores run under key. The write is atomic (temp file + rename
// within the store), so readers never observe a partial entry; entries
// are immutable, so overwriting a concurrent writer's identical bytes
// is harmless.
func (c *CAS) Put(key string, run stats.Run) error {
	sha := KeySHA(key)
	dst := c.path(sha)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas: %w", err)
	}
	data, err := json.Marshal(envelope{Key: key, Run: run})
	if err != nil {
		// envelope is plain data; Marshal cannot fail in practice.
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()        // best effort: the write already failed
		_ = os.Remove(tmpName) // best effort: leave no temp litter
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // best effort: leave no temp litter
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas write: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		_ = os.Remove(tmpName) // best effort: leave no temp litter
		c.m.Counter("fabric.cas.errors").Inc()
		return fmt.Errorf("fabric: cas commit: %w", err)
	}
	c.m.Counter("fabric.cas.fills").Inc()
	return nil
}

// Len walks the store and counts entries — an operational helper for
// tests and tooling, not a hot path.
func (c *CAS) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// GetRun and PutRun adapt the CAS to the experiments.RunStore interface
// (structural), making the store the persistent level behind the
// in-process single-flight memo: probe on memo miss, fill after
// simulation. Store errors are counted, not fatal — a broken disk
// degrades to simulating, never to failing requests.

// GetRun implements experiments.RunStore.
func (c *CAS) GetRun(key string) (stats.Run, bool) {
	r, ok, _ := c.Get(key) // error already counted in fabric.cas.errors
	return r, ok
}

// PutRun implements experiments.RunStore.
func (c *CAS) PutRun(key string, r stats.Run) {
	_ = c.Put(key, r) // error already counted in fabric.cas.errors
}
