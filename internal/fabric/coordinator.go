// Package fabric is the distributed sweep fabric: a coordinator that
// shards a sweep's cells across remote worker processes over HTTP,
// backed by an on-disk content-addressed store of completed results.
//
// It generalizes internal/sched's shard-aware work stealing from
// goroutines to processes:
//
//   - Cells are keyed by experiments.CacheKey — the same fully-qualified
//     key the in-process memo uses — so a cell computed anywhere is a
//     cell computed everywhere.
//   - The coordinator probes the CAS first: hot cells are answered from
//     disk in milliseconds without simulating at all. Only misses are
//     dealt.
//   - Misses are sorted longest-first by the scheduler's cost model and
//     dealt round-robin into per-worker deques. A worker connection that
//     runs dry pops from its own deque front and steals from the BACK of
//     a victim's deque — exactly sched's policy, with HTTP dispatch
//     where sched has a function call.
//   - Every dispatch carries a lease (a per-request deadline). A worker
//     that dies, or that misses its lease, forfeits the cell: it is
//     re-dealt to another worker, and a worker that fails repeatedly is
//     marked dead and dealt nothing further. The sweep completes as long
//     as one worker survives.
//   - Completed cells are written to the CAS (atomic rename, immutable
//     entries) and streamed to the caller as they land, in completion
//     order. Determinism is unaffected: cells are independent and keyed,
//     so the result SET is byte-identical to a single-node run no matter
//     how the race between workers plays out — the pinned-fingerprint
//     machinery enforces exactly that.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Cell is one simulation of a sweep: a fully-qualified cache key plus
// the (benchmark, config) pair a worker needs to recompute it.
type Cell struct {
	// Key is the experiments.CacheKey of the cell — its identity in the
	// CAS and the deduplication domain.
	Key string
	// Bench and Config describe the simulation.
	Bench  string
	Config config.Config
	// Generator is presentation metadata passed through to results.
	Generator string
}

// Params are the run parameters shared by every cell of a sweep.
type Params struct {
	Instructions int64
	Warmup       int64
	Seed         uint64
}

// Result is one completed (or failed) cell.
type Result struct {
	Cell Cell
	Run  stats.Run
	Err  error
	// Wall is the dispatch wall time (zero for CAS hits).
	Wall time.Duration
	// Source names where the result came from: "cas", or the worker URL
	// that computed it.
	Source string
	// Attempts counts dispatches (1 = first try; >1 means re-dealt).
	Attempts int
	// Stolen reports that the executing worker stole the cell from
	// another worker's deque.
	Stolen bool
}

// Options configure a Coordinator.
type Options struct {
	// Workers is the list of worker base URLs (e.g. "http://host:8077").
	// At least one is required.
	Workers []string
	// CAS, when non-nil, is probed before dealing and filled after every
	// completed cell.
	CAS *CAS
	// Lease bounds one dispatch: a worker that has not answered within
	// it forfeits the cell. Default 2m.
	Lease time.Duration
	// PerWorker is the number of concurrent in-flight cells per worker
	// (match it to the worker's -max-concurrent). Default 2.
	PerWorker int
	// MaxAttempts bounds how many times one cell may be dealt before it
	// is reported failed. Default 3.
	MaxAttempts int
	// DeadAfter marks a worker dead after this many consecutive
	// transport failures. Default 2.
	DeadAfter int
	// Client is the HTTP client for dispatches; nil uses a dedicated
	// client with sane connection pooling.
	Client *http.Client
	// Metrics receives fabric telemetry ("fabric.cells.*",
	// "fabric.cas.*", "fabric.workers.dead"). Nil-safe.
	Metrics *metrics.Registry
}

// Coordinator deals sweep cells to workers. Create with New; safe for
// concurrent use (each Run call has its own dealing state).
type Coordinator struct {
	opts Options
}

// New validates opts and builds a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fabric: at least one worker URL is required")
	}
	for _, w := range opts.Workers {
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("fabric: worker %q: URL must start with http:// or https://", w)
		}
	}
	if opts.Lease <= 0 {
		opts.Lease = 2 * time.Minute
	}
	if opts.PerWorker <= 0 {
		opts.PerWorker = 2
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 2
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.PerWorker,
		}}
	}
	return &Coordinator{opts: opts}, nil
}

// Workers returns the configured worker URLs.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.opts.Workers))
	copy(out, c.opts.Workers)
	return out
}

// CAS returns the coordinator's store (nil if none).
func (c *Coordinator) CAS() *CAS { return c.opts.CAS }

// dealState is one Run's shared dealing structure: per-worker deques
// over indices into the cell slice, guarded by one mutex + cond (cells
// are whole simulations; the lock is touched a few times per cell,
// never in a hot loop).
type dealState struct {
	mu   sync.Mutex
	cond *sync.Cond

	deques [][]int // per-worker FIFO; front = owner's end, back = thief's end
	dead   []bool
	alive  int
	// outstanding counts cells not yet emitted (queued or in flight).
	outstanding int
	cancelled   bool
}

// take returns the next cell index for worker self, blocking until work
// arrives (a re-deal), everything is done, the run is cancelled, or
// self is marked dead. stolen reports the cell came from a victim's
// deque.
func (d *dealState) take(self int) (idx int, stolen bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.outstanding == 0 || d.cancelled || d.dead[self] {
			return -1, false
		}
		if q := d.deques[self]; len(q) > 0 {
			idx = q[0]
			d.deques[self] = q[1:]
			return idx, false
		}
		// Scan victims round-robin from the right neighbour, stealing
		// their cheapest queued cell (dead workers' deques included —
		// someone must drain them).
		for k := 1; k < len(d.deques); k++ {
			v := (self + k) % len(d.deques)
			if q := d.deques[v]; len(q) > 0 {
				idx = q[len(q)-1]
				d.deques[v] = q[:len(q)-1]
				return idx, true
			}
		}
		// Nothing queued, but cells are in flight elsewhere: a failure
		// may re-deal one our way. Wait for the next event.
		d.cond.Wait()
	}
}

// redeal queues idx for the next alive worker after from.
func (d *dealState) redeal(idx, from int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	target := from
	for k := 1; k < len(d.deques); k++ {
		w := (from + k) % len(d.deques)
		if !d.dead[w] {
			target = w
			break
		}
	}
	d.deques[target] = append(d.deques[target], idx)
	d.cond.Broadcast()
}

// complete marks one cell emitted.
func (d *dealState) complete() {
	d.mu.Lock()
	d.outstanding--
	if d.outstanding == 0 {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// markDead flags a worker dead, reporting whether this call performed
// the transition (false if the worker was already dead — a worker's fan
// goroutines race to report the same corpse).
func (d *dealState) markDead(w int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[w] {
		return false
	}
	d.dead[w] = true
	d.alive--
	d.cond.Broadcast()
	return true
}

// cancel wakes every waiter for shutdown.
func (d *dealState) cancel() {
	d.mu.Lock()
	d.cancelled = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// drain removes and returns every still-queued cell index.
func (d *dealState) drain() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var rest []int
	for w := range d.deques {
		rest = append(rest, d.deques[w]...)
		d.deques[w] = nil
	}
	return rest
}

// Run executes cells across the worker fleet and calls emit once per
// cell as results land (CAS hits first, then remote completions in
// completion order). emit calls are serialized. cost orders the initial
// deal longest-first (sched's policy); pass sched.ConstCost(1) when no
// history exists. Run returns ctx.Err() when cancelled; per-cell
// failures are reported through emit, not the return value.
func (c *Coordinator) Run(ctx context.Context, p Params, cells []Cell, cost sched.CostModel, emit func(Result)) error {
	m := c.opts.Metrics
	var emitMu sync.Mutex
	send := func(r Result) {
		emitMu.Lock()
		emit(r)
		emitMu.Unlock()
	}

	// CAS pass: hot cells never touch a worker.
	pending := make([]int, 0, len(cells))
	for i := range cells {
		if c.opts.CAS != nil {
			if run, ok, _ := c.opts.CAS.Get(cells[i].Key); ok {
				send(Result{Cell: cells[i], Run: run, Source: "cas"})
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return ctx.Err()
	}

	// Longest-first, ties broken by key: the deal is deterministic.
	sort.Slice(pending, func(a, b int) bool {
		ca, cb := cost(cells[pending[a]].Bench), cost(cells[pending[b]].Bench)
		if ca != cb {
			return ca > cb
		}
		return cells[pending[a]].Key < cells[pending[b]].Key
	})

	workers := len(c.opts.Workers)
	d := &dealState{
		deques:      make([][]int, workers),
		dead:        make([]bool, workers),
		alive:       workers,
		outstanding: len(pending),
	}
	d.cond = sync.NewCond(&d.mu)
	for pos, idx := range pending {
		w := pos % workers
		d.deques[w] = append(d.deques[w], idx)
	}
	m.Counter("fabric.cells.dealt").Add(uint64(len(pending)))

	// Wake waiters if the caller cancels mid-sweep.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			d.cancel()
		case <-watchDone:
		}
	}()

	// attempts[idx] is owned by whichever goroutine holds idx; ownership
	// transfers through the deques under d.mu, so plain ints are sound.
	// strikes are shared by a worker's fan goroutines, hence atomic.
	attempts := make([]int, len(cells))
	strikes := make([]atomic.Int32, workers) // consecutive transport failures

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for f := 0; f < c.opts.PerWorker; f++ {
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				for {
					idx, stolen := d.take(self)
					if idx < 0 {
						return
					}
					if stolen {
						m.Counter("fabric.cells.stolen").Inc()
					}
					attempts[idx]++ // this goroutine owns idx until emit or redeal
					start := time.Now()
					run, retryable, err := c.dispatch(ctx, c.opts.Workers[self], p, cells[idx])
					wall := time.Since(start)
					m.Histogram("fabric.dispatch.wall_ns").Observe(uint64(wall))
					if err == nil {
						strikes[self].Store(0)
						if c.opts.CAS != nil {
							// A fill failure degrades the next sweep to
							// re-simulating; it does not fail this one.
							_ = c.opts.CAS.Put(cells[idx].Key, run)
						}
						m.Counter("fabric.cells.completed").Inc()
						send(Result{
							Cell: cells[idx], Run: run, Wall: wall,
							Source: c.opts.Workers[self], Attempts: attempts[idx], Stolen: stolen,
						})
						d.complete()
						continue
					}
					if retryable && ctx.Err() == nil && attempts[idx] < c.opts.MaxAttempts {
						m.Counter("fabric.cells.redealt").Inc()
						d.redeal(idx, self)
					} else {
						m.Counter("fabric.cells.failed").Inc()
						send(Result{
							Cell: cells[idx], Err: err, Wall: wall,
							Source: c.opts.Workers[self], Attempts: attempts[idx], Stolen: stolen,
						})
						d.complete()
					}
					if retryable {
						if int(strikes[self].Add(1)) >= c.opts.DeadAfter {
							if d.markDead(self) {
								m.Counter("fabric.workers.dead").Inc()
							}
							return
						}
					}
				}
			}(w)
		}
	}
	wg.Wait()
	close(watchDone)

	// Anything still queued never ran: every worker died, or the run was
	// cancelled.
	leftErr := ctx.Err()
	if leftErr == nil {
		leftErr = fmt.Errorf("fabric: every worker is dead")
	}
	for _, idx := range d.drain() {
		m.Counter("fabric.cells.failed").Inc()
		send(Result{Cell: cells[idx], Err: leftErr, Attempts: attempts[idx]})
	}
	return ctx.Err()
}

// dispatch posts one cell to a worker and decodes the result. retryable
// distinguishes transport/worker faults (re-deal the cell) from
// semantic failures (the cell itself is bad — no worker will succeed).
func (c *Coordinator) dispatch(ctx context.Context, workerURL string, p Params, cell Cell) (run stats.Run, retryable bool, err error) {
	warm := p.Warmup
	body, err := json.Marshal(CellRequest{
		Bench:        cell.Bench,
		Config:       &cell.Config,
		Instructions: p.Instructions,
		Warmup:       &warm,
		Seed:         p.Seed,
		DeadlineMS:   c.opts.Lease.Milliseconds(),
	})
	if err != nil {
		return stats.Run{}, false, fmt.Errorf("fabric: encode cell: %w", err)
	}
	leaseCtx, cancel := context.WithTimeout(ctx, c.opts.Lease)
	defer cancel()
	req, err := http.NewRequestWithContext(leaseCtx, http.MethodPost, workerURL+"/v1/cell", bytes.NewReader(body))
	if err != nil {
		return stats.Run{}, false, fmt.Errorf("fabric: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		// Connection refused, reset, or lease expiry: the worker is gone
		// or wedged — forfeit and re-deal.
		return stats.Run{}, true, fmt.Errorf("fabric: worker %s: %w", workerURL, err)
	}
	defer func() { _ = resp.Body.Close() }() // read side only
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return stats.Run{}, true, fmt.Errorf("fabric: worker %s: reading response: %w", workerURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		// 4xx means the cell (or this coordinator's request) is itself
		// invalid — re-dealing cannot help. Everything else is the
		// worker's problem and retryable.
		retryable = resp.StatusCode < 400 || resp.StatusCode >= 500 ||
			resp.StatusCode == http.StatusTooManyRequests
		return stats.Run{}, retryable, fmt.Errorf("fabric: worker %s: status %d: %s", workerURL, resp.StatusCode, truncate(data, 200))
	}
	var cr CellResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		return stats.Run{}, true, fmt.Errorf("fabric: worker %s: bad response: %w", workerURL, err)
	}
	if cr.Key != cell.Key {
		// Version skew: the worker canonicalizes the config differently.
		// Every worker of that build will disagree — not retryable.
		c.opts.Metrics.Counter("fabric.key_mismatch").Inc()
		return stats.Run{}, false, fmt.Errorf("fabric: worker %s: key mismatch (version skew?): got %s want %s",
			workerURL, KeySHA(cr.Key), KeySHA(cell.Key))
	}
	if cr.Run == nil {
		return stats.Run{}, true, fmt.Errorf("fabric: worker %s: response carries no run", workerURL)
	}
	return *cr.Run, false, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "…"
	}
	return string(b)
}
