// The fabric wire protocol: the JSON shapes the coordinator and
// internal/server's /v1/cell endpoint share, plus the result-set
// fingerprint both sides of the determinism contract compute.

package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"

	"repro/internal/config"
	"repro/internal/stats"
)

// CellRequest is the body of POST /v1/cell. Two modes:
//
//   - Execute (Run absent): simulate the (bench, config) cell under the
//     given budget and answer with the result. This is the dispatch the
//     coordinator sends a worker.
//   - Fill (Run present): insert a completed result into the receiver's
//     CAS without simulating — the remote-fill path (a worker pushing a
//     result upstream, or corpus tooling seeding a store).
//
// Unlike /v1/run's flattened knobs, Config is the FULL machine config:
// the fabric must express every cell a sweep can produce (generator
// axes included), and the full canonical encoding is what the cache key
// is built from.
type CellRequest struct {
	Bench  string         `json:"bench"`
	Config *config.Config `json:"config"`

	Instructions int64  `json:"instructions,omitempty"`
	Warmup       *int64 `json:"warmup,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	// DeadlineMS is the dispatch lease: the worker must answer within it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Run switches the request into fill mode.
	Run *stats.Run `json:"run,omitempty"`
}

// CellResponse is the body of a successful POST /v1/cell.
type CellResponse struct {
	// Key is the receiver-computed cache key; KeySHA its content
	// address. The coordinator cross-checks Key against its own to catch
	// version skew.
	Key    string `json:"key"`
	KeySHA string `json:"key_sha"`
	// Run is the cell result (absent on fill mode).
	Run *stats.Run `json:"run,omitempty"`
	// WallNS is the execution wall time on the worker; a memo- or
	// CAS-served cell reports (near) zero.
	WallNS int64 `json:"wall_ns"`
	// Source reports where the worker got the result: "cas" (served from
	// its store without executing) or "sim" (executed; possibly shared
	// through the in-process memo).
	Source string `json:"source,omitempty"`
}

// Fingerprint digests a result set: sha256 over "key\nrunJSON\n" lines
// in sorted key order — the same construction the harness's pinned
// fingerprints use. A sharded sweep and a single-node sweep over the
// same cells MUST produce equal fingerprints; that equality is the
// fabric's determinism contract and what the fabric-smoke CI job
// asserts.
func Fingerprint(runs map[string]stats.Run) string {
	keys := make([]string, 0, len(runs))
	for k := range runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
		b, err := json.Marshal(runs[k])
		if err != nil {
			// stats.Run is plain data; Marshal cannot fail in practice.
			h.Write([]byte("marshal error: " + err.Error()))
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
