package config

import (
	"testing"
)

// FuzzConfigString fuzzes the String→Parse round trip: any config that
// validates must serialize to JSON that parses back to the identical
// struct (Config is all value types, so == is exact), and the re-parsed
// config must re-serialize to the same bytes. This is the contract the
// experiment harness leans on — cfg.String() is the memo-cache key, so a
// lossy round trip would silently alias distinct machines.
func FuzzConfigString(f *testing.F) {
	f.Add(8*1024, 1, 3, 1, 4096, "pa", uint64(1), true, true, 1, 0)
	f.Add(32*1024, 4, 5, 3, 1024, "pc", uint64(7), false, true, 4, 16)
	f.Add(16*1024, 2, 4, 2, 64, "adaptive", uint64(42), true, false, 2, 8)
	f.Add(8*1024, 1, 3, 1, 4096, "none", uint64(0), false, false, 1, 0)
	f.Add(8*1024, 1, 3, 1, 4096, "perceptron", uint64(2), true, true, 2, 0)
	f.Add(8*1024, 1, 3, 1, 1024, "tournament", uint64(3), true, false, 1, 0)

	kinds := []FilterKind{
		FilterNone, FilterPA, FilterPC, FilterAdaptive, FilterDeadBlock,
		FilterPerceptron, FilterBloom, FilterTournament,
	}

	f.Fuzz(func(t *testing.T, l1Size, l1Assoc, l1Ports, l1Lat, tableEntries int,
		filter string, seed uint64, nsp, sdp bool, degree, victim int) {
		cfg := Default()
		cfg.L1.SizeBytes = l1Size
		cfg.L1.Assoc = l1Assoc
		cfg.L1.Ports = l1Ports
		cfg.L1.LatencyCycles = l1Lat
		cfg.Filter.TableEntries = tableEntries
		cfg.Filter.Kind = FilterKind(filter)
		for _, k := range kinds { // map arbitrary strings onto valid kinds too
			if filter == string(k) {
				cfg.Filter.Kind = k
			}
		}
		cfg.Seed = seed
		cfg.Prefetch.EnableNSP = nsp
		cfg.Prefetch.EnableSDP = sdp
		cfg.Prefetch.Degree = degree
		cfg.VictimEntries = victim

		if cfg.Validate() != nil {
			return // invalid machine: Parse would reject it by design
		}
		s := cfg.String()
		parsed, err := Parse([]byte(s))
		if err != nil {
			t.Fatalf("valid config failed to re-parse: %v\n%s", err, s)
		}
		if parsed != cfg {
			t.Fatalf("round trip changed the config:\nbefore: %+v\nafter:  %+v", cfg, parsed)
		}
		if again := parsed.String(); again != s {
			t.Fatalf("second serialization differs:\n%s\nvs\n%s", s, again)
		}
	})
}

// FuzzConfigParse throws arbitrary bytes at Parse: it must never panic,
// and anything it accepts must satisfy Validate and survive a
// String→Parse round trip unchanged.
func FuzzConfigParse(f *testing.F) {
	f.Add([]byte(Default().String()))
	f.Add([]byte(Default32K().WithFilter(FilterPC).String()))
	f.Add([]byte(`{"l1":{"size_bytes":-1}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return // rejected: fine
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Parse accepted a config Validate rejects: %v", err)
		}
		round, err := Parse([]byte(cfg.String()))
		if err != nil {
			t.Fatalf("accepted config failed round trip: %v", err)
		}
		if round != cfg {
			t.Fatalf("round trip changed accepted config:\nbefore: %+v\nafter:  %+v", cfg, round)
		}
	})
}

// FuzzPrefetchConfigValidate fuzzes the generator-zoo budget validation:
// an enabled Berti/GHB generator must reject zero, negative, and
// oversized log2 table budgets (and out-of-range GHB degrees), and any
// config that validates must construct real table sizes — 2^log2 stays
// in [2, 2^16] for every budget Validate accepted.
func FuzzPrefetchConfigValidate(f *testing.F) {
	f.Add(true, 6, 6, 6, false, 8, 7, 4)
	f.Add(true, 0, 6, 6, false, 8, 7, 4)    // zero history budget
	f.Add(true, 6, 17, 6, false, 8, 7, 4)   // oversized latency budget
	f.Add(false, 0, 0, 0, true, 10, 10, 4)  // ghb only
	f.Add(false, 0, 0, 0, true, -3, 10, 4)  // negative ghb budget
	f.Add(false, 0, 0, 0, true, 10, 64, 4)  // oversized index budget
	f.Add(false, 0, 0, 0, true, 10, 10, 0)  // zero degree
	f.Add(false, 0, 0, 0, true, 10, 10, 99) // oversized degree
	f.Add(true, 16, 16, 16, true, 16, 16, 16)

	f.Fuzz(func(t *testing.T, berti bool, bHist, bLat, bShadow int,
		ghb bool, gBuf, gIdx, gDeg int) {
		cfg := Default()
		cfg.Prefetch.EnableBerti = berti
		cfg.Prefetch.BertiHistoryLog2 = bHist
		cfg.Prefetch.BertiLatencyLog2 = bLat
		cfg.Prefetch.BertiShadowLog2 = bShadow
		cfg.Prefetch.EnableGHB = ghb
		cfg.Prefetch.GHBLog2 = gBuf
		cfg.Prefetch.GHBIndexLog2 = gIdx
		cfg.Prefetch.GHBMaxDegree = gDeg

		err := cfg.Prefetch.Validate()

		inRange := func(log2 int) bool { return log2 >= 1 && log2 <= 16 }
		wantOK := true
		if berti && (!inRange(bHist) || !inRange(bLat) || !inRange(bShadow)) {
			wantOK = false
		}
		if ghb && (!inRange(gBuf) || !inRange(gIdx) || gDeg < 1 || gDeg > 16) {
			wantOK = false
		}
		if wantOK && err != nil {
			t.Fatalf("in-range budgets rejected: %+v: %v", cfg.Prefetch, err)
		}
		if !wantOK && err == nil {
			t.Fatalf("out-of-range budgets accepted: %+v", cfg.Prefetch)
		}
		// Whole-config validation must agree with the prefetch section.
		if err == nil {
			if werr := cfg.Validate(); werr != nil {
				t.Fatalf("prefetch section valid but config invalid: %v", werr)
			}
		}
	})
}
