package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"issue width", c.CPU.IssueWidth, 8},
		{"retire width", c.CPU.RetireWidth, 8},
		{"ROB", c.CPU.ROBEntries, 128},
		{"LSQ", c.CPU.LSQEntries, 64},
		{"bimodal", c.CPU.BimodalEntries, 2048},
		{"BTB sets", c.CPU.BTBSets, 4096},
		{"BTB assoc", c.CPU.BTBAssoc, 4},
		{"L1 size", c.L1.SizeBytes, 8192},
		{"L1 line", c.L1.LineBytes, 32},
		{"L1 assoc", c.L1.Assoc, 1},
		{"L1 latency", c.L1.LatencyCycles, 1},
		{"L1 ports", c.L1.Ports, 3},
		{"L2 size", c.L2.SizeBytes, 512 * 1024},
		{"L2 assoc", c.L2.Assoc, 4},
		{"L2 latency", c.L2.LatencyCycles, 15},
		{"memory latency", c.MemoryLatency, 150},
		{"prefetch queue", c.Prefetch.QueueEntries, 64},
		{"filter entries", c.Filter.TableEntries, 4096},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if c.Filter.Kind != FilterNone {
		t.Errorf("default filter = %q, want none", c.Filter.Kind)
	}
}

func TestCacheSets(t *testing.T) {
	c := Default().L1
	if got := c.Sets(); got != 256 {
		t.Fatalf("8KB/32B direct-mapped should have 256 sets, got %d", got)
	}
	l2 := Default().L2
	if got := l2.Sets(); got != 4096 {
		t.Fatalf("512KB/32B 4-way should have 4096 sets, got %d", got)
	}
}

func TestPresets(t *testing.T) {
	if got := Default16K().L1.SizeBytes; got != 16*1024 {
		t.Errorf("Default16K L1 = %d", got)
	}
	c32 := Default32K()
	if c32.L1.SizeBytes != 32*1024 || c32.L1.LatencyCycles != 4 {
		t.Errorf("Default32K = %d bytes / %d cycles, want 32KB / 4", c32.L1.SizeBytes, c32.L1.LatencyCycles)
	}
	for _, c := range []Config{Default8K(), Default16K(), Default32K()} {
		if err := c.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestWithL1PortsPairing(t *testing.T) {
	// §5.4: 3 ports/1 cycle, 4/2, 5/3.
	for _, tc := range []struct{ ports, lat int }{{3, 1}, {4, 2}, {5, 3}} {
		c := Default().WithL1Ports(tc.ports)
		if c.L1.Ports != tc.ports || c.L1.LatencyCycles != tc.lat {
			t.Errorf("WithL1Ports(%d) = %d ports, %d cycles; want %d", tc.ports, c.L1.Ports, c.L1.LatencyCycles, tc.lat)
		}
	}
	// Unknown port counts leave the latency alone.
	c := Default().WithL1Ports(7)
	if c.L1.Ports != 7 || c.L1.LatencyCycles != 1 {
		t.Errorf("WithL1Ports(7) altered latency: %+v", c.L1)
	}
}

func TestWithHelpersDoNotMutate(t *testing.T) {
	base := Default()
	_ = base.WithFilter(FilterPA)
	_ = base.WithTableEntries(1024)
	_ = base.WithPrefetchBuffer(true)
	if base.Filter.Kind != FilterNone || base.Filter.TableEntries != 4096 || base.Buffer.Enable {
		t.Fatal("With* helpers must return copies")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero L1 size", func(c *Config) { c.L1.SizeBytes = 0 }, "size"},
		{"non-pow2 line", func(c *Config) { c.L1.LineBytes = 24 }, "line"},
		{"zero assoc", func(c *Config) { c.L2.Assoc = 0 }, "associativity"},
		{"indivisible", func(c *Config) { c.L1.SizeBytes = 8192 + 16 }, "divisible"},
		{"zero latency", func(c *Config) { c.L2.LatencyCycles = 0 }, "latency"},
		{"zero ports", func(c *Config) { c.L1.Ports = 0 }, "ports"},
		{"bad replacement", func(c *Config) { c.L1.Replacement = "mru" }, "replacement"},
		{"line mismatch", func(c *Config) { c.L2.LineBytes = 64 }, "line size"},
		{"zero mem latency", func(c *Config) { c.MemoryLatency = 0 }, "memory latency"},
		{"zero bus", func(c *Config) { c.BusBytesPerCyc = 0 }, "bus"},
		{"zero issue", func(c *Config) { c.CPU.IssueWidth = 0 }, "issue"},
		{"zero retire", func(c *Config) { c.CPU.RetireWidth = 0 }, "retire"},
		{"zero rob", func(c *Config) { c.CPU.ROBEntries = 0 }, "ROB"},
		{"zero lsq", func(c *Config) { c.CPU.LSQEntries = 0 }, "LSQ"},
		{"negative branch penalty", func(c *Config) { c.CPU.BranchPenalty = -1 }, "branch penalty"},
		{"non-pow2 bimodal", func(c *Config) { c.CPU.BimodalEntries = 1000 }, "bimodal"},
		{"non-pow2 btb", func(c *Config) { c.CPU.BTBSets = 3 }, "BTB"},
		{"zero btb assoc", func(c *Config) { c.CPU.BTBAssoc = 0 }, "BTB"},
		{"zero queue", func(c *Config) { c.Prefetch.QueueEntries = 0 }, "queue"},
		{"zero degree", func(c *Config) { c.Prefetch.Degree = 0 }, "degree"},
		{"bad stride", func(c *Config) { c.Prefetch.EnableStride = true; c.Prefetch.StrideEntries = 3 }, "stride"},
		{"bad filter kind", func(c *Config) { c.Filter.Kind = "magic" }, "filter"},
		{"non-pow2 table", func(c *Config) { c.Filter.TableEntries = 1000 }, "table"},
		{"big initial", func(c *Config) { c.Filter.InitialCounter = 4 }, "initial"},
		{"big threshold", func(c *Config) { c.Filter.Threshold = 7 }, "threshold"},
		{"bad adaptive acc", func(c *Config) { c.Filter.Kind = FilterAdaptive; c.Filter.AdaptiveAccuracy = 1.5 }, "adaptive"},
		{"bad adaptive window", func(c *Config) { c.Filter.Kind = FilterAdaptive; c.Filter.AdaptiveWindow = 0 }, "adaptive"},
		{"non-pow2 perceptron", func(c *Config) { c.Filter.PerceptronEntries = 1000 }, "perceptron"},
		{"negative perceptron theta", func(c *Config) { c.Filter.PerceptronTheta = -1 }, "theta"},
		{"non-pow2 bloom", func(c *Config) { c.Filter.BloomEntries = 1000 }, "bloom"},
		{"too many bloom hashes", func(c *Config) { c.Filter.BloomHashes = 9 }, "bloom hashes"},
		{"bloom reject overflow", func(c *Config) { c.Filter.BloomReject = 16 }, "reject"},
		{"psel bits overflow", func(c *Config) { c.Filter.TournamentPselBits = 21 }, "PSEL"},
		{"tournament side static", func(c *Config) { c.Filter.TournamentA = FilterStatic }, "tournament side"},
		{"tournament side nested", func(c *Config) { c.Filter.TournamentB = FilterTournament }, "tournament side"},
		{"tournament side unknown", func(c *Config) { c.Filter.TournamentB = "magic" }, "tournament side"},
		{"buffer zero entries", func(c *Config) { c.Buffer.Enable = true; c.Buffer.Entries = 0 }, "buffer"},
		{"negative max instructions", func(c *Config) { c.MaxInstructions = -1 }, "max instructions"},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNonPow2SetsRejected(t *testing.T) {
	c := Default()
	c.L1.SizeBytes = 3 * 32 * 1 // 3 sets
	if err := c.Validate(); err == nil {
		t.Fatal("3-set cache should be rejected")
	}
}

func TestFilterKindValid(t *testing.T) {
	for _, k := range []FilterKind{
		FilterNone, FilterPA, FilterPC, FilterStatic, FilterAdaptive,
		FilterDeadBlock, FilterPerceptron, FilterBloom, FilterTournament,
	} {
		if !k.Valid() {
			t.Errorf("%q should be valid", k)
		}
	}
	if FilterKind("bogus").Valid() {
		t.Error("bogus kind should be invalid")
	}
}

func TestReplacementPolicyValid(t *testing.T) {
	for _, p := range []ReplacementPolicy{ReplaceLRU, ReplaceFIFO, ReplaceRandom} {
		if !p.Valid() {
			t.Errorf("%q should be valid", p)
		}
	}
	if ReplacementPolicy("plru").Valid() {
		t.Error("plru should be invalid")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Default().WithFilter(FilterPC).WithTableEntries(8192)
	orig.Seed = 99
	data := []byte(orig.String())
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Filter.Kind != FilterPC || parsed.Filter.TableEntries != 8192 || parsed.Seed != 99 {
		t.Fatalf("round trip lost fields: %+v", parsed.Filter)
	}
	if parsed.String() != orig.String() {
		t.Fatal("round trip not identical")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("malformed JSON should fail")
	}
	if _, err := Parse([]byte(`{"l1":{"size_bytes":-1}}`)); err == nil {
		t.Fatal("invalid config should fail validation")
	}
}
