// Package config defines the structural parameters of the simulated machine.
//
// The default configuration mirrors Table 1 of the paper: an 8-wide
// out-of-order core with a 128-entry reorder buffer, 64-entry load/store
// queue, bimodal branch predictor, an 8KB direct-mapped single-cycle L1
// data cache with 3 universal ports, a 512KB 4-way 15-cycle L2, a 150-cycle
// main memory, a 64-entry prefetch queue, and a 4096-entry (1KB) pollution
// filter history table.
package config

import (
	"encoding/json"
	"fmt"
)

// FilterKind selects the pollution filter variant attached to the machine.
type FilterKind string

// Filter variants evaluated in the paper plus the extensions this repo adds.
const (
	FilterNone     FilterKind = "none"     // no filtering (baseline)
	FilterPA       FilterKind = "pa"       // per-address history table
	FilterPC       FilterKind = "pc"       // program-counter history table
	FilterStatic   FilterKind = "static"   // profile-driven static filter (Srinivasan et al. baseline)
	FilterAdaptive FilterKind = "adaptive" // PA table engaged only when prefetch accuracy is low (§5.2.1 "advanced features")
	// FilterDeadBlock gates prefetches on the predicted liveness of the
	// line they would displace — the Lai et al. dead-block baseline
	// (paper reference [11]), built from the same 2-bit counter fabric.
	FilterDeadBlock FilterKind = "deadblock"
	// FilterPerceptron is a hashed-perceptron filter (internal/filter):
	// per-feature weight tables over line address, trigger PC, and
	// prefetcher id, trained on the same eviction-time RIB signal.
	FilterPerceptron FilterKind = "perceptron"
	// FilterBloom is a counting-Bloom rejection filter with periodic
	// decay: bad evictions insert the line address, k saturated counters
	// above the reject threshold drop the prefetch.
	FilterBloom FilterKind = "bloom"
	// FilterTournament set-duels two backends with a PSEL counter:
	// sampled leader keys always use their backend, follower keys use
	// whichever backend the PSEL currently favours.
	FilterTournament FilterKind = "tournament"
)

// Aliases accepted anywhere a FilterKind is parsed; Canonical() folds
// them onto the paper kinds so configs naming either spelling build the
// same machine (and share memo cache entries).
const (
	FilterTablePA FilterKind = "table-pa" // alias of FilterPA
	FilterTablePC FilterKind = "table-pc" // alias of FilterPC
)

// Canonical resolves aliases to the canonical kind name.
func (k FilterKind) Canonical() FilterKind {
	switch k {
	case FilterTablePA:
		return FilterPA
	case FilterTablePC:
		return FilterPC
	}
	return k
}

// Valid reports whether k (or its canonical form) names a known filter
// kind.
func (k FilterKind) Valid() bool {
	switch k.Canonical() {
	case FilterNone, FilterPA, FilterPC, FilterStatic, FilterAdaptive, FilterDeadBlock,
		FilterPerceptron, FilterBloom, FilterTournament:
		return true
	}
	return false
}

// PrefetchKind names one prefetch generator backend in the generator
// zoo (internal/prefetch's registry), mirroring FilterKind for the
// filter zoo.
type PrefetchKind string

// Prefetch generators known to the simulator: the paper's two hardware
// prefetchers, the two classic extensions, and the generator-zoo
// additions.
const (
	PrefetchNSP         PrefetchKind = "nsp"    // tagged next-sequence prefetching (Smith)
	PrefetchSDP         PrefetchKind = "sdp"    // shadow-directory prefetching (Pomerene et al.)
	PrefetchStride      PrefetchKind = "stride" // reference-prediction-table stride (Chen & Baer)
	PrefetchCorrelation PrefetchKind = "corr"   // miss-pair correlation (Charney & Reeves)
	// PrefetchBerti is the Berti-style latency-aware local-delta
	// prefetcher (Navarro-Torres et al., MICRO 2022): per-PC history
	// table, reuse-latency table, and shadow timeliness tracking.
	PrefetchBerti PrefetchKind = "berti"
	// PrefetchGHB is the GHB/PC-delta-correlation prefetcher
	// (Nesbit & Smith): a global history buffer with per-PC linked
	// chains, delta-pair matching, and accuracy-gated degree throttling.
	PrefetchGHB PrefetchKind = "ghb"
)

// Aliases accepted anywhere a PrefetchKind is parsed; Canonical() folds
// them onto the canonical kinds so configs naming either spelling build
// the same machine (and share memo cache entries).
const (
	PrefetchCorrelationAlias PrefetchKind = "correlation"  // alias of PrefetchCorrelation
	PrefetchGHBAlias         PrefetchKind = "ghb-pc-delta" // alias of PrefetchGHB
)

// Canonical resolves aliases to the canonical kind name.
func (k PrefetchKind) Canonical() PrefetchKind {
	switch k {
	case PrefetchCorrelationAlias:
		return PrefetchCorrelation
	case PrefetchGHBAlias:
		return PrefetchGHB
	}
	return k
}

// Valid reports whether k (or its canonical form) names a known
// prefetch generator kind.
func (k PrefetchKind) Valid() bool {
	switch k.Canonical() {
	case PrefetchNSP, PrefetchSDP, PrefetchStride, PrefetchCorrelation, PrefetchBerti, PrefetchGHB:
		return true
	}
	return false
}

// PrefetchKinds returns every canonical generator kind in the
// deterministic composite order the hierarchy builds them in.
func PrefetchKinds() []PrefetchKind {
	return []PrefetchKind{PrefetchNSP, PrefetchSDP, PrefetchStride, PrefetchCorrelation, PrefetchBerti, PrefetchGHB}
}

// IPrefetchKind names an instruction-prefetch backend from the
// internal/frontend registry.
type IPrefetchKind string

// Instruction prefetchers known to the simulator.
const (
	// IPrefetchNone disables instruction prefetching: the L1I serves the
	// fetch stream on demand only.
	IPrefetchNone IPrefetchKind = "none"
	// IPrefetchNextLine is the next-line/fetch-directed baseline: run a
	// configurable number of sequential blocks ahead of the live fetch
	// stream (which already includes taken-branch redirects).
	IPrefetchNextLine IPrefetchKind = "nextline"
	// IPrefetchMANA is the MANA-lite spatial-region prefetcher
	// (Ansari et al., arXiv 2102.01764): per-region footprint records
	// keyed by the trigger PC that entered the region, replayed on
	// re-encounter, in bounded log2-sized tables.
	IPrefetchMANA IPrefetchKind = "mana"
)

// IPrefetchFDIPAlias is accepted anywhere an IPrefetchKind is parsed;
// Canonical() folds it onto IPrefetchNextLine so configs naming either
// spelling build the same machine (and share memo cache entries).
const IPrefetchFDIPAlias IPrefetchKind = "fetch-directed" // alias of IPrefetchNextLine

// Canonical resolves aliases to the canonical kind name.
func (k IPrefetchKind) Canonical() IPrefetchKind {
	if k == IPrefetchFDIPAlias {
		return IPrefetchNextLine
	}
	return k
}

// Valid reports whether k (or its canonical form) names a known
// instruction-prefetch kind.
func (k IPrefetchKind) Valid() bool {
	switch k.Canonical() {
	case IPrefetchNone, IPrefetchNextLine, IPrefetchMANA:
		return true
	}
	return false
}

// ReplacementPolicy selects how a set-associative cache picks a victim.
type ReplacementPolicy string

// Supported replacement policies.
const (
	ReplaceLRU    ReplacementPolicy = "lru"
	ReplaceFIFO   ReplacementPolicy = "fifo"
	ReplaceRandom ReplacementPolicy = "random"
)

// Valid reports whether p names a known policy.
func (p ReplacementPolicy) Valid() bool {
	switch p {
	case ReplaceLRU, ReplaceFIFO, ReplaceRandom:
		return true
	}
	return false
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total data capacity.
	SizeBytes int `json:"size_bytes"`
	// LineBytes is the cache line (block) size; must be a power of two.
	LineBytes int `json:"line_bytes"`
	// Assoc is the number of ways; 1 means direct-mapped.
	Assoc int `json:"assoc"`
	// LatencyCycles is the hit latency.
	LatencyCycles int `json:"latency_cycles"`
	// Ports is the number of universal (read/write) ports usable per cycle.
	Ports int `json:"ports"`
	// Replacement selects the victim policy for Assoc > 1.
	Replacement ReplacementPolicy `json:"replacement"`
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if c.LineBytes <= 0 || c.Assoc <= 0 {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Validate checks geometric and physical sanity.
func (c CacheConfig) Validate(name string) error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("%s: size must be positive, got %d", name, c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("%s: line size must be a positive power of two, got %d", name, c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("%s: associativity must be positive, got %d", name, c.Assoc)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("%s: size %d not divisible by line*assoc (%d*%d)", name, c.SizeBytes, c.LineBytes, c.Assoc)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("%s: set count %d must be a power of two", name, c.Sets())
	case c.LatencyCycles <= 0:
		return fmt.Errorf("%s: latency must be positive, got %d", name, c.LatencyCycles)
	case c.Ports <= 0:
		return fmt.Errorf("%s: ports must be positive, got %d", name, c.Ports)
	case !c.Replacement.Valid():
		return fmt.Errorf("%s: unknown replacement policy %q", name, c.Replacement)
	}
	return nil
}

// CPUConfig describes the out-of-order core.
type CPUConfig struct {
	IssueWidth  int `json:"issue_width"`  // instructions dispatched per cycle
	RetireWidth int `json:"retire_width"` // instructions retired per cycle
	ROBEntries  int `json:"rob_entries"`
	LSQEntries  int `json:"lsq_entries"`
	// BranchPenalty is the flush penalty in cycles on a mispredicted branch.
	BranchPenalty int `json:"branch_penalty"`
	// BimodalEntries sizes the bimodal predictor's 2-bit counter table.
	BimodalEntries int `json:"bimodal_entries"`
	// BTBSets and BTBAssoc size the branch target buffer.
	BTBSets  int `json:"btb_sets"`
	BTBAssoc int `json:"btb_assoc"`
	// MSHRs bounds concurrently outstanding demand load misses; 0 means
	// unlimited (the paper does not specify a bound, and the default
	// machine leaves memory-level parallelism to the LSQ/ROB limits).
	MSHRs int `json:"mshrs"`
}

// Validate checks the core parameters.
func (c CPUConfig) Validate() error {
	switch {
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu: issue width must be positive, got %d", c.IssueWidth)
	case c.RetireWidth <= 0:
		return fmt.Errorf("cpu: retire width must be positive, got %d", c.RetireWidth)
	case c.ROBEntries <= 0:
		return fmt.Errorf("cpu: ROB entries must be positive, got %d", c.ROBEntries)
	case c.LSQEntries <= 0:
		return fmt.Errorf("cpu: LSQ entries must be positive, got %d", c.LSQEntries)
	case c.BranchPenalty < 0:
		return fmt.Errorf("cpu: branch penalty must be non-negative, got %d", c.BranchPenalty)
	case c.BimodalEntries <= 0 || c.BimodalEntries&(c.BimodalEntries-1) != 0:
		return fmt.Errorf("cpu: bimodal entries must be a positive power of two, got %d", c.BimodalEntries)
	case c.BTBSets <= 0 || c.BTBSets&(c.BTBSets-1) != 0:
		return fmt.Errorf("cpu: BTB sets must be a positive power of two, got %d", c.BTBSets)
	case c.BTBAssoc <= 0:
		return fmt.Errorf("cpu: BTB associativity must be positive, got %d", c.BTBAssoc)
	case c.MSHRs < 0:
		return fmt.Errorf("cpu: MSHRs must be non-negative, got %d", c.MSHRs)
	}
	return nil
}

// PrefetchConfig controls the prefetch generators and queue.
type PrefetchConfig struct {
	// EnableNSP turns on tagged next-sequence prefetching.
	EnableNSP bool `json:"enable_nsp"`
	// EnableSDP turns on shadow-directory prefetching at the L2.
	EnableSDP bool `json:"enable_sdp"`
	// EnableStride turns on the reference-prediction-table stride prefetcher
	// (an extension beyond the paper's two hardware prefetchers).
	EnableStride bool `json:"enable_stride"`
	// EnableCorrelation turns on the miss-pair correlation prefetcher
	// (Charney & Reeves, the paper's reference [2] — extension).
	EnableCorrelation bool `json:"enable_correlation"`
	// EnableSoftware honours software prefetch records in the trace.
	EnableSoftware bool `json:"enable_software"`
	// QueueEntries is the prefetch queue depth (Table 1: 64).
	QueueEntries int `json:"queue_entries"`
	// Degree is how many sequential lines NSP fetches per trigger (paper: 1).
	Degree int `json:"degree"`
	// StrideEntries sizes the RPT when EnableStride is set.
	StrideEntries int `json:"stride_entries"`
	// CorrelationSets and CorrelationAssoc size the correlation table.
	CorrelationSets  int `json:"correlation_sets"`
	CorrelationAssoc int `json:"correlation_assoc"`

	// Generator-zoo backends (internal/prefetch registry). All table
	// budgets are log2-sized in the ChampSim exemplar idiom, and every
	// field is omitted from the JSON encoding when unset so
	// configurations that never name these backends keep their pre-zoo
	// canonical encoding — and therefore their memo cache keys and
	// harness fingerprints — byte-identical.

	// EnableBerti turns on the Berti-style latency-aware local-delta
	// prefetcher. Enabling it requires explicit table budgets
	// (WithGenerator fills in the defaults).
	EnableBerti bool `json:"enable_berti,omitempty"`
	// BertiHistoryLog2 sizes the per-PC history table (log2 entries).
	BertiHistoryLog2 int `json:"berti_history_log2,omitempty"`
	// BertiLatencyLog2 sizes the reuse-latency table (log2 entries).
	BertiLatencyLog2 int `json:"berti_latency_log2,omitempty"`
	// BertiShadowLog2 sizes the shadow table tracking issued prefetches
	// for usefulness/timeliness accounting (log2 entries).
	BertiShadowLog2 int `json:"berti_shadow_log2,omitempty"`

	// EnableGHB turns on the GHB/PC-delta-correlation prefetcher.
	// Enabling it requires explicit table budgets.
	EnableGHB bool `json:"enable_ghb,omitempty"`
	// GHBLog2 sizes the global history buffer (log2 entries).
	GHBLog2 int `json:"ghb_log2,omitempty"`
	// GHBIndexLog2 sizes the PC index table (log2 entries).
	GHBIndexLog2 int `json:"ghb_index_log2,omitempty"`
	// GHBMaxDegree is the ceiling of the accuracy-gated prefetch degree;
	// the live degree starts at 1 and never exceeds this.
	GHBMaxDegree int `json:"ghb_max_degree,omitempty"`
}

// Default generator-zoo table budgets, applied by WithGenerator. The
// log2 sizing keeps hardware cost explicit. The PC-indexed tables are
// sized for the workload models' deliberately large static instruction
// footprints (every model spreads its loop kernel over dozens of code
// contexts, like unrolled/inlined real programs): a 1024-entry history
// table plays the role a smaller set-associative one would in hardware.
const (
	DefaultBertiHistoryLog2 = 10
	DefaultBertiLatencyLog2 = 8
	DefaultBertiShadowLog2  = 8
	DefaultGHBLog2          = 13
	DefaultGHBIndexLog2     = 10
	DefaultGHBMaxDegree     = 4
)

// maxTableLog2 bounds every log2-sized generator budget: 2^16 entries is
// already far beyond hardware-realistic SRAM for these structures.
const maxTableLog2 = 16

// Enabled returns the enabled generator kinds in the deterministic
// order the hierarchy composes them: the historical NSP → SDP → stride
// → correlation order, then the zoo additions.
func (c PrefetchConfig) Enabled() []PrefetchKind {
	var kinds []PrefetchKind
	if c.EnableNSP {
		kinds = append(kinds, PrefetchNSP)
	}
	if c.EnableSDP {
		kinds = append(kinds, PrefetchSDP)
	}
	if c.EnableStride {
		kinds = append(kinds, PrefetchStride)
	}
	if c.EnableCorrelation {
		kinds = append(kinds, PrefetchCorrelation)
	}
	if c.EnableBerti {
		kinds = append(kinds, PrefetchBerti)
	}
	if c.EnableGHB {
		kinds = append(kinds, PrefetchGHB)
	}
	return kinds
}

// Validate checks the prefetch parameters.
func (c PrefetchConfig) Validate() error {
	switch {
	case c.QueueEntries <= 0:
		return fmt.Errorf("prefetch: queue entries must be positive, got %d", c.QueueEntries)
	case c.Degree <= 0:
		return fmt.Errorf("prefetch: degree must be positive, got %d", c.Degree)
	case c.EnableStride && (c.StrideEntries <= 0 || c.StrideEntries&(c.StrideEntries-1) != 0):
		return fmt.Errorf("prefetch: stride entries must be a positive power of two, got %d", c.StrideEntries)
	case c.EnableCorrelation && (c.CorrelationSets <= 0 || c.CorrelationSets&(c.CorrelationSets-1) != 0):
		return fmt.Errorf("prefetch: correlation sets must be a positive power of two, got %d", c.CorrelationSets)
	case c.EnableCorrelation && c.CorrelationAssoc <= 0:
		return fmt.Errorf("prefetch: correlation associativity must be positive, got %d", c.CorrelationAssoc)
	}
	if c.EnableBerti {
		for _, b := range []struct {
			name string
			log2 int
		}{
			{"berti history", c.BertiHistoryLog2},
			{"berti latency", c.BertiLatencyLog2},
			{"berti shadow", c.BertiShadowLog2},
		} {
			if b.log2 <= 0 || b.log2 > maxTableLog2 {
				return fmt.Errorf("prefetch: %s log2 budget must be in [1,%d], got %d", b.name, maxTableLog2, b.log2)
			}
		}
	}
	if c.EnableGHB {
		switch {
		case c.GHBLog2 <= 0 || c.GHBLog2 > maxTableLog2:
			return fmt.Errorf("prefetch: ghb log2 budget must be in [1,%d], got %d", maxTableLog2, c.GHBLog2)
		case c.GHBIndexLog2 <= 0 || c.GHBIndexLog2 > maxTableLog2:
			return fmt.Errorf("prefetch: ghb index log2 budget must be in [1,%d], got %d", maxTableLog2, c.GHBIndexLog2)
		case c.GHBMaxDegree <= 0 || c.GHBMaxDegree > 16:
			return fmt.Errorf("prefetch: ghb max degree must be in [1,16], got %d", c.GHBMaxDegree)
		}
	}
	return nil
}

// FilterConfig controls the pollution filter.
type FilterConfig struct {
	Kind FilterKind `json:"kind"`
	// TableEntries is the history table length; must be a power of two.
	// Table 1 default: 4096 entries (1KB of 2-bit counters).
	TableEntries int `json:"table_entries"`
	// InitialCounter seeds new table entries; the paper issues first-touch
	// prefetches, implying a weakly-good initial state (2).
	InitialCounter uint8 `json:"initial_counter"`
	// Threshold is the minimum counter value that predicts "good".
	Threshold uint8 `json:"threshold"`
	// AdaptiveAccuracy: when Kind is FilterAdaptive, filtering engages only
	// while the observed fraction of good prefetches is below this value.
	AdaptiveAccuracy float64 `json:"adaptive_accuracy"`
	// AdaptiveWindow: number of classified prefetches per accuracy sample.
	AdaptiveWindow int `json:"adaptive_window"`

	// Per-backend parameters for the internal/filter zoo. All are
	// optional (zero selects the backend's default) and omitted from the
	// JSON encoding when unset, so configurations that never name these
	// backends keep their pre-zoo canonical encoding — and therefore
	// their memo cache keys and harness fingerprints — byte-identical.

	// PerceptronEntries sizes each per-feature weight table (power of
	// two; default 1024).
	PerceptronEntries int `json:"perceptron_entries,omitempty"`
	// PerceptronTheta is the training threshold: weights train whenever
	// the prediction was wrong or |sum| <= theta (default 8).
	PerceptronTheta int `json:"perceptron_theta,omitempty"`

	// BloomEntries sizes the counting-Bloom counter array (power of two;
	// default 4096).
	BloomEntries int `json:"bloom_entries,omitempty"`
	// BloomHashes is the number of hash probes per key (default 2).
	BloomHashes int `json:"bloom_hashes,omitempty"`
	// BloomReject is the minimum count across all probes that predicts a
	// bad prefetch (default 2).
	BloomReject int `json:"bloom_reject,omitempty"`
	// BloomDecay halves every counter after this many trainings
	// (default 8192; negative disables decay).
	//pflint:allow configcov every value is legal: 0 selects the default, negative disables decay
	BloomDecay int `json:"bloom_decay,omitempty"`

	// TournamentA and TournamentB name the two duelling backends
	// (defaults: pa and perceptron). Neither may itself be a tournament,
	// static, or deadblock kind.
	TournamentA FilterKind `json:"tournament_a,omitempty"`
	TournamentB FilterKind `json:"tournament_b,omitempty"`
	// TournamentPselBits sizes the PSEL saturating counter (default 10).
	TournamentPselBits int `json:"tournament_psel_bits,omitempty"`
}

// Validate checks the filter parameters.
func (c FilterConfig) Validate() error {
	switch {
	case !c.Kind.Valid():
		return fmt.Errorf("filter: unknown kind %q", c.Kind)
	case c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0:
		return fmt.Errorf("filter: table entries must be a positive power of two, got %d", c.TableEntries)
	case c.InitialCounter > 3:
		return fmt.Errorf("filter: initial counter must be a 2-bit value, got %d", c.InitialCounter)
	case c.Threshold > 3:
		return fmt.Errorf("filter: threshold must be a 2-bit value, got %d", c.Threshold)
	}
	if c.Kind == FilterAdaptive {
		if c.AdaptiveAccuracy <= 0 || c.AdaptiveAccuracy >= 1 {
			return fmt.Errorf("filter: adaptive accuracy must be in (0,1), got %g", c.AdaptiveAccuracy)
		}
		if c.AdaptiveWindow <= 0 {
			return fmt.Errorf("filter: adaptive window must be positive, got %d", c.AdaptiveWindow)
		}
	}
	switch {
	case c.PerceptronEntries < 0 || (c.PerceptronEntries > 0 && c.PerceptronEntries&(c.PerceptronEntries-1) != 0):
		return fmt.Errorf("filter: perceptron entries must be a power of two, got %d", c.PerceptronEntries)
	case c.PerceptronTheta < 0:
		return fmt.Errorf("filter: perceptron theta must be non-negative, got %d", c.PerceptronTheta)
	case c.BloomEntries < 0 || (c.BloomEntries > 0 && c.BloomEntries&(c.BloomEntries-1) != 0):
		return fmt.Errorf("filter: bloom entries must be a power of two, got %d", c.BloomEntries)
	case c.BloomHashes < 0 || c.BloomHashes > 8:
		return fmt.Errorf("filter: bloom hashes must be in [0,8], got %d", c.BloomHashes)
	case c.BloomReject < 0 || c.BloomReject > 15:
		return fmt.Errorf("filter: bloom reject threshold must be in [0,15], got %d", c.BloomReject)
	case c.TournamentPselBits < 0 || c.TournamentPselBits > 20:
		return fmt.Errorf("filter: tournament PSEL bits must be in [0,20], got %d", c.TournamentPselBits)
	}
	for _, side := range []FilterKind{c.TournamentA, c.TournamentB} {
		if side == "" {
			continue
		}
		switch side.Canonical() {
		case FilterTournament, FilterStatic, FilterDeadBlock:
			return fmt.Errorf("filter: tournament side cannot be %q", side)
		}
		if !side.Valid() {
			return fmt.Errorf("filter: unknown tournament side %q", side)
		}
	}
	return nil
}

// BufferConfig controls the optional dedicated prefetch buffer (§5.5).
type BufferConfig struct {
	// Enable routes prefetch fills into the buffer instead of the L1.
	Enable bool `json:"enable"`
	// Entries is the fully-associative buffer capacity (paper: 16).
	Entries int `json:"entries"`
}

// Validate checks the buffer parameters.
func (c BufferConfig) Validate() error {
	if c.Enable && c.Entries <= 0 {
		return fmt.Errorf("prefetch buffer: entries must be positive, got %d", c.Entries)
	}
	return nil
}

// TraceConfig selects a real-trace corpus to expose as benchmarks. It
// is harness configuration, not machine configuration: it deliberately
// lives outside Config so that loading a corpus never perturbs the
// machine's canonical JSON encoding (and therefore memo cache keys and
// harness fingerprints). internal/tracefile.RegisterCorpus consumes it.
type TraceConfig struct {
	// Manifest is the path to the corpus manifest JSON (see
	// docs/TRACES.md for the schema).
	Manifest string `json:"manifest"`
	// Verify fully scans every trace at registration: per-chunk CRCs,
	// stream fingerprint, and record count against the manifest.
	// Off, only the file header is checked.
	Verify bool `json:"verify"`
	// MaxChunkBytes caps the chunk payload size a reader will accept;
	// 0 selects the decoder's default (64 MiB).
	MaxChunkBytes int `json:"max_chunk_bytes"`
}

// Validate checks the trace-corpus parameters.
func (c TraceConfig) Validate() error {
	if c.Manifest == "" {
		return fmt.Errorf("trace: manifest path must be set")
	}
	if c.MaxChunkBytes < 0 {
		return fmt.Errorf("trace: max chunk bytes must be non-negative, got %d", c.MaxChunkBytes)
	}
	return nil
}

// Default log2-sized table budgets for the MANA-lite instruction
// prefetcher: 1024 footprint records over 8-block (256B) regions.
const (
	DefaultManaRecordsLog2 = 10
	DefaultManaRegionLog2  = 3
)

// maxManaRegionLog2 bounds the spatial-region size: footprints are one
// 64-bit bitvector, so a region is at most 2^6 blocks.
const maxManaRegionLog2 = 6

// FrontendConfig describes the I-side front end: the L1I geometry, the
// instruction-prefetch backend, and its bounded table budgets. It hangs
// off Config as an optional pointer so machines that never model the
// instruction side keep their pre-frontend canonical JSON encoding —
// and therefore their memo cache keys and harness fingerprints —
// byte-identical.
type FrontendConfig struct {
	// L1I is the instruction cache beside the L1D; its line size must
	// match the L2's.
	L1I CacheConfig `json:"l1i"`
	// IPrefetch selects the instruction-prefetch backend ("none"
	// disables prefetching but keeps the L1I).
	IPrefetch IPrefetchKind `json:"iprefetch"`
	// QueueEntries bounds the instruction-prefetch request queue.
	QueueEntries int `json:"queue_entries"`
	// Degree caps the candidates a backend may emit per fetch-block
	// event (sequential depth for nextline, footprint replay width for
	// mana).
	Degree int `json:"degree"`
	// ManaRecordsLog2 is the log2 size of the MANA record table; only
	// meaningful (and only validated) when IPrefetch is "mana".
	ManaRecordsLog2 int `json:"mana_records_log2,omitempty"`
	// ManaRegionLog2 is the log2 spatial-region size in blocks, at most
	// 6 (footprints are one 64-bit bitvector per record).
	ManaRegionLog2 int `json:"mana_region_log2,omitempty"`
}

// DefaultFrontend returns the default I-side machine: an 8KB
// direct-mapped 1-cycle single-ported L1I matching the Table 1 L1D
// geometry, no instruction prefetching.
func DefaultFrontend() FrontendConfig {
	return FrontendConfig{
		L1I: CacheConfig{
			SizeBytes:     8 * 1024,
			LineBytes:     32,
			Assoc:         1,
			LatencyCycles: 1,
			Ports:         1,
			Replacement:   ReplaceLRU,
		},
		IPrefetch:    IPrefetchNone,
		QueueEntries: 32,
		Degree:       2,
	}
}

// Validate checks the front-end parameters against the L2 line size.
func (c FrontendConfig) Validate(l2LineBytes int) error {
	if err := c.L1I.Validate("l1i"); err != nil {
		return err
	}
	if c.L1I.LineBytes != l2LineBytes {
		return fmt.Errorf("frontend: l1i line size %d must equal l2 line size %d", c.L1I.LineBytes, l2LineBytes)
	}
	if !c.IPrefetch.Valid() {
		return fmt.Errorf("frontend: unknown instruction-prefetch kind %q", c.IPrefetch)
	}
	if c.QueueEntries <= 0 {
		return fmt.Errorf("frontend: queue entries must be positive, got %d", c.QueueEntries)
	}
	if c.Degree <= 0 || c.Degree > 16 {
		return fmt.Errorf("frontend: degree must be in [1,16], got %d", c.Degree)
	}
	if c.IPrefetch.Canonical() == IPrefetchMANA {
		if c.ManaRecordsLog2 <= 0 || c.ManaRecordsLog2 > maxTableLog2 {
			return fmt.Errorf("frontend: mana records log2 budget must be in [1,%d], got %d", maxTableLog2, c.ManaRecordsLog2)
		}
		if c.ManaRegionLog2 <= 0 || c.ManaRegionLog2 > maxManaRegionLog2 {
			return fmt.Errorf("frontend: mana region log2 must be in [1,%d], got %d", maxManaRegionLog2, c.ManaRegionLog2)
		}
	}
	return nil
}

// Config is the complete machine description.
type Config struct {
	CPU            CPUConfig      `json:"cpu"`
	L1             CacheConfig    `json:"l1"`
	L2             CacheConfig    `json:"l2"`
	MemoryLatency  int            `json:"memory_latency"` // core cycles (Table 1: 150)
	BusBytesPerCyc int            `json:"bus_bytes_per_cycle"`
	Prefetch       PrefetchConfig `json:"prefetch"`
	Filter         FilterConfig   `json:"filter"`
	Buffer         BufferConfig   `json:"buffer"`
	// Frontend enables the I-side model (L1I + fetch stream +
	// instruction prefetching); nil keeps the paper's D-side-only
	// machine and — via omitempty — its canonical JSON encoding.
	Frontend *FrontendConfig `json:"frontend,omitempty"`
	// VictimEntries adds a fully-associative victim cache behind the L1
	// (0 disables — the paper's machine). See internal/victim.
	VictimEntries int `json:"victim_entries"`
	// Seed drives every random decision in the run.
	//pflint:allow configcov any uint64 is a valid seed
	Seed uint64 `json:"seed"`
	// MaxInstructions bounds the run; 0 means run the trace to completion.
	MaxInstructions int64 `json:"max_instructions"`
}

// Default returns the Table 1 machine: 8KB direct-mapped 1-cycle 3-port L1.
func Default() Config {
	return Config{
		CPU: CPUConfig{
			IssueWidth:     8,
			RetireWidth:    8,
			ROBEntries:     128,
			LSQEntries:     64,
			BranchPenalty:  7,
			BimodalEntries: 2048,
			BTBSets:        4096,
			BTBAssoc:       4,
		},
		L1: CacheConfig{
			SizeBytes:     8 * 1024,
			LineBytes:     32,
			Assoc:         1,
			LatencyCycles: 1,
			Ports:         3,
			Replacement:   ReplaceLRU,
		},
		L2: CacheConfig{
			SizeBytes:     512 * 1024,
			LineBytes:     32,
			Assoc:         4,
			LatencyCycles: 15,
			Ports:         1,
			Replacement:   ReplaceLRU,
		},
		MemoryLatency:  150,
		BusBytesPerCyc: 8, // 64-byte-wide bus at memory speed ≈ 8B/core-cycle
		Prefetch: PrefetchConfig{
			EnableNSP:        true,
			EnableSDP:        true,
			EnableStride:     false,
			EnableSoftware:   true,
			QueueEntries:     64,
			Degree:           1,
			StrideEntries:    256,
			CorrelationSets:  1024,
			CorrelationAssoc: 2,
		},
		Filter: FilterConfig{
			Kind:             FilterNone,
			TableEntries:     4096,
			InitialCounter:   2,
			Threshold:        2,
			AdaptiveAccuracy: 0.5,
			AdaptiveWindow:   1024,
		},
		Buffer: BufferConfig{Enable: false, Entries: 16},
		Seed:   1,
	}
}

// Default8K is an alias for Default, named for symmetry with Default32K.
func Default8K() Config { return Default() }

// Default16K returns the §5.2.1 comparison machine: a 16KB L1, same latency,
// used to show that a 1KB history table beats simply doubling the cache.
func Default16K() Config {
	c := Default()
	c.L1.SizeBytes = 16 * 1024
	return c
}

// Default32K returns the §5.2.2 machine: 32KB L1 with a 4-cycle access.
func Default32K() Config {
	c := Default()
	c.L1.SizeBytes = 32 * 1024
	c.L1.LatencyCycles = 4
	return c
}

// WithFilter returns a copy of c using the given filter kind.
func (c Config) WithFilter(kind FilterKind) Config {
	c.Filter.Kind = kind
	return c
}

// WithTableEntries returns a copy of c with the history table resized.
func (c Config) WithTableEntries(entries int) Config {
	c.Filter.TableEntries = entries
	return c
}

// WithL1Ports returns a copy of c with the §5.4 port/latency pairing:
// 3 ports → 1 cycle, 4 ports → 2 cycles, 5 ports → 3 cycles (8KB L1).
func (c Config) WithL1Ports(ports int) Config {
	c.L1.Ports = ports
	switch ports {
	case 3:
		c.L1.LatencyCycles = 1
	case 4:
		c.L1.LatencyCycles = 2
	case 5:
		c.L1.LatencyCycles = 3
	}
	return c
}

// WithGenerator returns a copy of c running exactly one hardware
// prefetch generator: every generator (and software prefetching) is
// switched off, then the named kind is enabled with the default table
// budgets. This is the cell configuration of the (generator × filter)
// cross-product — it isolates one generator's candidate stream so the
// pollution filter is judged against that generator alone. An unknown
// kind leaves every generator off; Validate elsewhere rejects it.
func (c Config) WithGenerator(kind PrefetchKind) Config {
	p := &c.Prefetch
	p.EnableNSP, p.EnableSDP, p.EnableStride, p.EnableCorrelation = false, false, false, false
	p.EnableBerti, p.EnableGHB = false, false
	p.EnableSoftware = false
	switch kind.Canonical() {
	case PrefetchNSP:
		p.EnableNSP = true
	case PrefetchSDP:
		p.EnableSDP = true
	case PrefetchStride:
		p.EnableStride = true
	case PrefetchCorrelation:
		p.EnableCorrelation = true
	case PrefetchBerti:
		p.EnableBerti = true
		p.BertiHistoryLog2 = DefaultBertiHistoryLog2
		p.BertiLatencyLog2 = DefaultBertiLatencyLog2
		p.BertiShadowLog2 = DefaultBertiShadowLog2
	case PrefetchGHB:
		p.EnableGHB = true
		p.GHBLog2 = DefaultGHBLog2
		p.GHBIndexLog2 = DefaultGHBIndexLog2
		p.GHBMaxDegree = DefaultGHBMaxDegree
	}
	return c
}

// WithIPrefetch returns a copy of c with the I-side front end enabled
// and exactly one instruction-prefetch backend selected with its
// default table budgets. Like WithGenerator, every D-side generator
// (and software prefetching) is switched off so the pollution filter is
// judged against the instruction-prefetch stream alone — this is the
// cell configuration of the (iprefetcher × filter) cross-product.
func (c Config) WithIPrefetch(kind IPrefetchKind) Config {
	c = c.WithGenerator("")
	fe := DefaultFrontend()
	fe.IPrefetch = kind.Canonical()
	if fe.IPrefetch == IPrefetchMANA {
		fe.ManaRecordsLog2 = DefaultManaRecordsLog2
		fe.ManaRegionLog2 = DefaultManaRegionLog2
	}
	c.Frontend = &fe
	return c
}

// WithPrefetchBuffer returns a copy of c with the dedicated buffer toggled.
func (c Config) WithPrefetchBuffer(enable bool) Config {
	c.Buffer.Enable = enable
	return c
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate("l1"); err != nil {
		return err
	}
	if err := c.L2.Validate("l2"); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("l1 line size %d must equal l2 line size %d", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.MemoryLatency <= 0 {
		return fmt.Errorf("memory latency must be positive, got %d", c.MemoryLatency)
	}
	if c.BusBytesPerCyc <= 0 {
		return fmt.Errorf("bus bytes/cycle must be positive, got %d", c.BusBytesPerCyc)
	}
	if err := c.Prefetch.Validate(); err != nil {
		return err
	}
	if err := c.Filter.Validate(); err != nil {
		return err
	}
	if err := c.Buffer.Validate(); err != nil {
		return err
	}
	if c.Frontend != nil {
		if err := c.Frontend.Validate(c.L2.LineBytes); err != nil {
			return err
		}
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("victim entries must be non-negative, got %d", c.VictimEntries)
	}
	if c.MaxInstructions < 0 {
		return fmt.Errorf("max instructions must be non-negative, got %d", c.MaxInstructions)
	}
	return nil
}

// MarshalJSON round-trips through an alias to keep the default encoder.
func (c Config) String() string {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Sprintf("config{error: %v}", err)
	}
	return string(b)
}

// Parse decodes a JSON configuration and validates it.
func Parse(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
