// Binary trace file format.
//
// Layout: an 16-byte header ("PFTRACE1", record count as uint64 LE),
// followed by variable-length records. Each record is:
//
//	byte 0      op (low 6 bits) | dep flag (bit 6) | taken flag (bit 7)
//	varint      PC delta from previous PC (zig-zag encoded)
//	varint      Addr (absolute, only for ops that carry an address)
//
// PC deltas are almost always +4, so traces compress to ~3 bytes per
// ALU/branch record and ~8-10 bytes per memory record.
package isa

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var traceMagic = [8]byte{'P', 'F', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadMagic is returned when a trace file does not start with the
// expected magic bytes.
var ErrBadMagic = errors.New("isa: not a PFTRACE1 trace file")

const (
	takenFlag = 0x80
	depFlag   = 0x40
)

// Writer encodes records into a trace stream. Call Close to flush and
// finalize; the record count in the header is patched only by WriteTrace
// (which buffers), so streaming writers record a zero count and readers
// fall back to reading until EOF.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	err    error
}

// NewWriter writes a header and returns a streaming trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("isa: writing magic: %w", err)
	}
	var hdr [8]byte // record count unknown while streaming; zero = "until EOF"
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write encodes one record.
func (t *Writer) Write(r Record) error {
	if t.err != nil {
		return t.err
	}
	if err := r.Validate(); err != nil {
		t.err = err
		return err
	}
	head := byte(r.Op)
	if r.Taken {
		head |= takenFlag
	}
	if r.Dep {
		head |= depFlag
	}
	if err := t.w.WriteByte(head); err != nil {
		t.err = err
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(r.PC)-int64(t.lastPC))
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
		return err
	}
	t.lastPC = r.PC
	if r.Op.IsMem() || (r.Op == OpBranch && r.Taken) {
		n = binary.PutUvarint(buf[:], r.Addr)
		if _, err := t.w.Write(buf[:n]); err != nil {
			t.err = err
			return err
		}
	}
	t.count++
	return nil
}

// Count returns the number of records written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close flushes buffered data. The underlying writer is not closed.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace stream. It implements Source.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	err    error
}

// NewReader validates the header and returns a streaming trace reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: reading header: %w", err)
	}
	return &Reader{r: br}, nil
}

// Next implements Source. After exhaustion or a decode error, Next keeps
// returning false; check Err to distinguish clean EOF from corruption.
func (t *Reader) Next() (Record, bool) {
	if t.err != nil {
		return Record{}, false
	}
	head, err := t.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			t.err = err
		} else {
			t.err = io.EOF
		}
		return Record{}, false
	}
	var rec Record
	rec.Op = Op(head &^ (takenFlag | depFlag))
	rec.Taken = head&takenFlag != 0
	rec.Dep = head&depFlag != 0
	if !rec.Op.Valid() {
		t.err = fmt.Errorf("isa: invalid op byte %#x", head)
		return Record{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("isa: reading PC delta: %w", err)
		return Record{}, false
	}
	rec.PC = uint64(int64(t.lastPC) + delta)
	t.lastPC = rec.PC
	if rec.Op.IsMem() || (rec.Op == OpBranch && rec.Taken) {
		addr, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("isa: reading address: %w", err)
			return Record{}, false
		}
		rec.Addr = addr
	}
	return rec, true
}

// Err returns nil after a clean end of trace, or the decode error that
// stopped the reader.
func (t *Reader) Err() error {
	if t.err == io.EOF {
		return nil
	}
	return t.err
}

// WriteTrace encodes all of recs to w.
func WriteTrace(w io.Writer, recs []Record) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ReadTrace decodes an entire trace from r.
func ReadTrace(r io.Reader) ([]Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out, tr.Err()
}
