package isa

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at the trace reader: it must
// never panic and must either decode records cleanly or surface an error
// through Err(); re-encoding whatever decoded must round-trip.
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, and garbage.
	var valid bytes.Buffer
	_ = WriteTrace(&valid, []Record{
		ALU(0x400000),
		Load(0x400004, 0x1000),
		Branch(0x400008, 0x400020, true),
		Prefetch(0x40000c, 0x2000),
	})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	f.Add([]byte("PFTRACE1\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad magic/header: fine
		}
		var recs []Record
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if !rec.Op.Valid() {
				t.Fatalf("reader surfaced invalid op %d", rec.Op)
			}
			recs = append(recs, rec)
		}
		if r.Err() != nil {
			return // corrupt tail: fine, as long as it surfaced
		}
		// Whatever decoded cleanly must re-encode and decode identically.
		// (PC deltas can place PCs anywhere 4-aligned; realign before the
		// validity check the writer performs.)
		for i := range recs {
			recs[i].PC &^= 3
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, recs); err != nil {
			t.Fatalf("re-encode of cleanly decoded trace failed: %v", err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(got), len(recs))
		}
	})
}

// FuzzRecordEncode fuzzes single-record encoding parameters.
func FuzzRecordEncode(f *testing.F) {
	f.Add(uint8(1), true, false, uint64(0x400000), uint64(0x1234))
	f.Fuzz(func(t *testing.T, op uint8, taken, dep bool, pc, addr uint64) {
		rec := Record{Op: Op(op % 5), Taken: taken, Dep: dep, PC: pc &^ 3, Addr: addr}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, []Record{rec}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != 1 {
			t.Fatalf("decode: %v (%d records)", err, len(got))
		}
		want := rec
		if want.Op == OpBranch && !want.Taken {
			want.Addr = 0 // untaken branches don't carry targets
		}
		if !want.Op.IsMem() && want.Op != OpBranch {
			want.Addr = 0
		}
		g := got[0]
		if g.Op != want.Op || g.Taken != want.Taken || g.Dep != want.Dep || g.PC != want.PC {
			t.Fatalf("got %+v, want %+v", g, want)
		}
		if (want.Op.IsMem() || (want.Op == OpBranch && want.Taken)) && g.Addr != want.Addr {
			t.Fatalf("addr %#x, want %#x", g.Addr, want.Addr)
		}
	})
}
