// Package isa defines the instruction-level trace model the simulator
// consumes.
//
// The paper drives SimpleScalar with Alpha binaries; this reproduction is
// trace-driven instead. A trace is a stream of Record values, one per
// dynamic instruction. Only the properties the timing model needs are
// carried: the class of the instruction, its PC, the effective address for
// memory operations, and the outcome for branches. Software prefetch
// instructions (the Alpha "load into $r31" idiom) appear as explicit
// OpPrefetch records.
package isa

import "fmt"

// Op classifies a dynamic instruction.
type Op uint8

// Instruction classes. OpALU stands in for every non-memory, non-branch
// instruction (integer and floating point alike); the timing model only
// needs to know it occupies an issue slot and a ROB entry.
const (
	OpALU Op = iota
	OpLoad
	OpStore
	OpBranch
	OpPrefetch // software prefetch: non-blocking, non-faulting load hint
	opSentinel // internal: one past the last valid op
)

// String returns the mnemonic for the op class.
func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpPrefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined op class.
func (o Op) Valid() bool { return o < opSentinel }

// IsMem reports whether the op accesses the data cache.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore || o == OpPrefetch }

// Record is one dynamic instruction in a trace.
type Record struct {
	// Op is the instruction class.
	Op Op
	// Taken is meaningful only for OpBranch: the resolved direction.
	Taken bool
	// Dep marks a serialized data dependency on the previous record: the
	// instruction cannot issue until its predecessor completes. Workload
	// models set it on pointer-chasing loads, where each access address is
	// computed from the previous load's data; it is how the trace-driven
	// model preserves the (lack of) memory-level parallelism that makes
	// pointer codes latency-bound.
	Dep bool
	// PC is the instruction address. Instructions are 4 bytes (Alpha-like),
	// so distinct static instructions differ in PC by multiples of 4.
	PC uint64
	// Addr is the effective byte address for memory ops, or the branch
	// target for taken branches.
	Addr uint64
}

// InstrBytes is the fixed instruction size; PC-based filter keys strip the
// low bits implied by this (the paper: "PC offset by the instruction size").
const InstrBytes = 4

// Validate reports structural problems with a record.
func (r Record) Validate() error {
	if !r.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", uint8(r.Op))
	}
	if r.PC%InstrBytes != 0 {
		return fmt.Errorf("isa: PC %#x not %d-byte aligned", r.PC, InstrBytes)
	}
	return nil
}

// ALU returns an ALU record at pc.
func ALU(pc uint64) Record { return Record{Op: OpALU, PC: pc} }

// Load returns a load record.
func Load(pc, addr uint64) Record { return Record{Op: OpLoad, PC: pc, Addr: addr} }

// Store returns a store record.
func Store(pc, addr uint64) Record { return Record{Op: OpStore, PC: pc, Addr: addr} }

// Branch returns a branch record with its resolved direction and target.
func Branch(pc, target uint64, taken bool) Record {
	return Record{Op: OpBranch, PC: pc, Addr: target, Taken: taken}
}

// Prefetch returns a software-prefetch record.
func Prefetch(pc, addr uint64) Record { return Record{Op: OpPrefetch, PC: pc, Addr: addr} }

// DepLoad returns a load serialized behind the previous record (pointer
// chasing).
func DepLoad(pc, addr uint64) Record { return Record{Op: OpLoad, PC: pc, Addr: addr, Dep: true} }

// Source produces a stream of records. Next returns the next record and
// true, or a zero Record and false when the trace is exhausted.
//
// Sources are single-consumer and not safe for concurrent use.
type Source interface {
	Next() (Record, bool)
}

// SliceSource adapts a pre-built record slice into a Source. It is the
// workhorse for tests and for replaying decoded trace files.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource wraps recs; the slice is not copied.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records.
func (s *SliceSource) Len() int { return len(s.recs) }

// LimitSource caps an underlying source at n records.
type LimitSource struct {
	src  Source
	left int64
}

// NewLimitSource returns a Source that yields at most n records from src.
// n <= 0 yields nothing.
func NewLimitSource(src Source, n int64) *LimitSource {
	return &LimitSource{src: src, left: n}
}

// Next implements Source.
func (l *LimitSource) Next() (Record, bool) {
	if l.left <= 0 {
		return Record{}, false
	}
	r, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Record{}, false
	}
	l.left--
	return r, true
}

// FuncSource adapts a closure into a Source.
type FuncSource func() (Record, bool)

// Next implements Source.
func (f FuncSource) Next() (Record, bool) { return f() }

// Collect drains up to max records from src into a slice. max <= 0 drains
// everything; use with care on infinite generators.
func Collect(src Source, max int) []Record {
	var out []Record
	for max <= 0 || len(out) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// InterleaveSource round-robins between several sources, switching after
// `quantum` records — a coarse model of multiprogramming context switches
// over a shared cache hierarchy. The interleave ends when every source is
// exhausted; exhausted sources are skipped.
type InterleaveSource struct {
	srcs    []Source
	quantum int64
	cur     int
	used    int64
	done    []bool
	left    int
}

// NewInterleaveSource builds an interleaver. quantum must be positive and
// at least one source must be given.
func NewInterleaveSource(quantum int64, srcs ...Source) (*InterleaveSource, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("isa: interleave quantum must be positive, got %d", quantum)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("isa: interleave needs at least one source")
	}
	return &InterleaveSource{
		srcs:    srcs,
		quantum: quantum,
		done:    make([]bool, len(srcs)),
		left:    len(srcs),
	}, nil
}

// Next implements Source.
func (s *InterleaveSource) Next() (Record, bool) {
	for s.left > 0 {
		if s.done[s.cur] || s.used >= s.quantum {
			// Context switch to the next live source.
			s.used = 0
			for i := 0; i < len(s.srcs); i++ {
				s.cur = (s.cur + 1) % len(s.srcs)
				if !s.done[s.cur] {
					break
				}
			}
			if s.done[s.cur] {
				return Record{}, false
			}
		}
		rec, ok := s.srcs[s.cur].Next()
		if ok {
			s.used++
			return rec, true
		}
		s.done[s.cur] = true
		s.left--
		s.used = s.quantum // force a switch on the next call
	}
	return Record{}, false
}
