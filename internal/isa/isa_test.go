package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpALU:      "alu",
		OpLoad:     "load",
		OpStore:    "store",
		OpBranch:   "branch",
		OpPrefetch: "prefetch",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown op string %q", s)
	}
}

func TestOpValid(t *testing.T) {
	for _, op := range []Op{OpALU, OpLoad, OpStore, OpBranch, OpPrefetch} {
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
	}
	if Op(200).Valid() || opSentinel.Valid() {
		t.Error("out-of-range ops should be invalid")
	}
}

func TestIsMem(t *testing.T) {
	mem := map[Op]bool{
		OpALU: false, OpLoad: true, OpStore: true, OpBranch: false, OpPrefetch: true,
	}
	for op, want := range mem {
		if got := op.IsMem(); got != want {
			t.Errorf("%v.IsMem() = %v, want %v", op, got, want)
		}
	}
}

func TestConstructors(t *testing.T) {
	if r := ALU(0x1000); r.Op != OpALU || r.PC != 0x1000 {
		t.Errorf("ALU: %+v", r)
	}
	if r := Load(0x1000, 0x2000); r.Op != OpLoad || r.Addr != 0x2000 {
		t.Errorf("Load: %+v", r)
	}
	if r := Store(0x1000, 0x2000); r.Op != OpStore {
		t.Errorf("Store: %+v", r)
	}
	if r := Branch(0x1000, 0x3000, true); r.Op != OpBranch || !r.Taken || r.Addr != 0x3000 {
		t.Errorf("Branch: %+v", r)
	}
	if r := Prefetch(0x1000, 0x2000); r.Op != OpPrefetch {
		t.Errorf("Prefetch: %+v", r)
	}
	if r := DepLoad(0x1000, 0x2000); r.Op != OpLoad || !r.Dep {
		t.Errorf("DepLoad: %+v", r)
	}
}

func TestRecordValidate(t *testing.T) {
	if err := Load(0x1000, 4).Validate(); err != nil {
		t.Errorf("aligned record: %v", err)
	}
	if err := (Record{Op: Op(99), PC: 0}).Validate(); err == nil {
		t.Error("invalid op should fail")
	}
	if err := Load(0x1001, 4).Validate(); err == nil {
		t.Error("misaligned PC should fail")
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{ALU(4), Load(8, 100), Store(12, 200)}
	s := NewSliceSource(recs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, want := range recs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v ok=%v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source should return false")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Fatal("Reset should rewind")
	}
}

func TestLimitSource(t *testing.T) {
	base := NewSliceSource([]Record{ALU(4), ALU(8), ALU(12)})
	l := NewLimitSource(base, 2)
	if got := len(Collect(l, 0)); got != 2 {
		t.Fatalf("limit 2 yielded %d", got)
	}
	// Limit larger than the underlying source.
	base.Reset()
	l = NewLimitSource(base, 10)
	if got := len(Collect(l, 0)); got != 3 {
		t.Fatalf("limit 10 over 3 records yielded %d", got)
	}
	// Non-positive limit yields nothing.
	base.Reset()
	l = NewLimitSource(base, 0)
	if _, ok := l.Next(); ok {
		t.Fatal("limit 0 should be empty")
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	f := FuncSource(func() (Record, bool) {
		if n >= 2 {
			return Record{}, false
		}
		n++
		return ALU(uint64(n) * 4), true
	})
	if got := len(Collect(f, 0)); got != 2 {
		t.Fatalf("got %d records", got)
	}
}

func TestCollectMax(t *testing.T) {
	s := NewSliceSource([]Record{ALU(4), ALU(8), ALU(12), ALU(16)})
	if got := len(Collect(s, 2)); got != 2 {
		t.Fatalf("Collect max 2 got %d", got)
	}
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := NewInterleaveSource(0, NewSliceSource(nil)); err == nil {
		t.Fatal("zero quantum should fail")
	}
	if _, err := NewInterleaveSource(10); err == nil {
		t.Fatal("no sources should fail")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := NewSliceSource([]Record{ALU(0x100), ALU(0x104), ALU(0x108), ALU(0x10c)})
	b := NewSliceSource([]Record{ALU(0x200), ALU(0x204), ALU(0x208), ALU(0x20c)})
	s, err := NewInterleaveSource(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s, 0)
	wantPCs := []uint64{0x100, 0x104, 0x200, 0x204, 0x108, 0x10c, 0x208, 0x20c}
	if len(got) != len(wantPCs) {
		t.Fatalf("collected %d records", len(got))
	}
	for i, w := range wantPCs {
		if got[i].PC != w {
			t.Fatalf("record %d PC = %#x, want %#x (%v)", i, got[i].PC, w, got)
		}
	}
}

func TestInterleaveSkipsExhausted(t *testing.T) {
	a := NewSliceSource([]Record{ALU(0x100)})
	b := NewSliceSource([]Record{ALU(0x200), ALU(0x204), ALU(0x208)})
	s, _ := NewInterleaveSource(2, a, b)
	got := Collect(s, 0)
	if len(got) != 4 {
		t.Fatalf("collected %d records, want 4", len(got))
	}
	// After a exhausts, the rest come from b.
	for _, r := range got[1:] {
		if r.PC < 0x200 {
			t.Fatalf("record from exhausted source: %+v", r)
		}
	}
}

func TestInterleaveSingleSource(t *testing.T) {
	a := NewSliceSource([]Record{ALU(0x100), ALU(0x104)})
	s, _ := NewInterleaveSource(1, a)
	if got := len(Collect(s, 0)); got != 2 {
		t.Fatalf("got %d", got)
	}
}
