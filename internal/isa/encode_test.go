package isa

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomTrace(seed uint64, n int) []Record {
	r := xrand.New(seed)
	recs := make([]Record, 0, n)
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		pc += 4
		switch r.Intn(5) {
		case 0:
			recs = append(recs, ALU(pc))
		case 1:
			recs = append(recs, Load(pc, r.Uint64n(1<<40)))
		case 2:
			recs = append(recs, Store(pc, r.Uint64n(1<<40)))
		case 3:
			recs = append(recs, Branch(pc, (r.Uint64n(1<<30))<<2, r.Bool(0.5)))
		default:
			rec := Prefetch(pc, r.Uint64n(1<<40))
			rec.Dep = r.Bool(0.3)
			recs = append(recs, rec)
		}
	}
	return recs
}

func TestTraceRoundTrip(t *testing.T) {
	recs := randomTrace(1, 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		// Untaken branches don't carry their target through encoding.
		if want.Op == OpBranch && !want.Taken {
			want.Addr = 0
		}
		if got[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		recs := randomTrace(seed, n)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, recs); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			want := recs[i]
			if want.Op == OpBranch && !want.Taken {
				want.Addr = 0
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatalf("WriteTrace(nil): %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE_______"))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("PFT"))); err == nil {
		t.Fatal("short header should fail")
	}
}

func TestTruncatedBody(t *testing.T) {
	recs := randomTrace(2, 100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated trace should surface a decode error")
	}
}

func TestInvalidOpByte(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x3f) // op bits = 63: invalid
	buf.WriteByte(0x00) // pc delta 0
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("invalid op should stop the reader")
	}
	if r.Err() == nil {
		t.Fatal("invalid op should be an error")
	}
}

func TestWriterRejectsInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Op: Op(77), PC: 4}); err == nil {
		t.Fatal("invalid record should fail")
	}
	// Writer is poisoned after an error.
	if err := w.Write(ALU(4)); err == nil {
		t.Fatal("writes after an error should keep failing")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := w.Write(ALU(uint64(i) * 4)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestCompressionDensity(t *testing.T) {
	// Sequential ALU records should encode to ~2 bytes each.
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = ALU(uint64(0x400000 + i*4))
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()-16) / float64(len(recs))
	if perRecord > 3 {
		t.Fatalf("sequential ALU records cost %.1f bytes each, want <= 3", perRecord)
	}
}

func TestReaderAsSource(t *testing.T) {
	recs := randomTrace(3, 50)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var src Source = r // Reader must satisfy Source
	if got := len(Collect(src, 0)); got != 50 {
		t.Fatalf("collected %d", got)
	}
}
