package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses a function body (syntax only — the CFG builder needs
// no types) and returns its graph.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return FuncCFG(file.Decls[0].(*ast.FuncDecl).Body)
}

// blockWith returns the unique block with a top-level node matching the
// predicate. Matching is shallow on purpose: compound heads (select,
// range, switch tags) syntactically contain their clause bodies, but
// those bodies live in their own blocks.
func blockWith(t *testing.T, g *CFG, desc string, match func(ast.Node) bool) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if !match(n) {
				continue
			}
			if found != nil && found != b {
				t.Fatalf("%s appears in blocks %d and %d", desc, found.Index, b.Index)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no block contains %s", desc)
	}
	return found
}

// callTo matches an ExprStmt calling the named function.
func callTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// condIdent matches a bare identifier condition node.
func condIdent(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == name
	}
}

// branch matches a break/continue with the given label ("" = unlabeled).
func branch(tok token.Token, label string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		if !ok || br.Tok != tok {
			return false
		}
		got := ""
		if br.Label != nil {
			got = br.Label.Name
		}
		return got == label
	}
}

func hasSucc(t *testing.T, from, to *Block, desc string) {
	t.Helper()
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	t.Errorf("%s: block %d has no edge to block %d (succs %v)", desc, from.Index, to.Index, indices(from.Succs))
}

func indices(bs []*Block) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.Index
	}
	return out
}

func TestCFGShortCircuit(t *testing.T) {
	g := buildCFG(t, `
	if a && b {
		then()
	}
	rest()
`)
	bA := blockWith(t, g, "cond a", condIdent("a"))
	bB := blockWith(t, g, "cond b", condIdent("b"))
	bThen := blockWith(t, g, "then()", callTo("then"))
	bRest := blockWith(t, g, "rest()", callTo("rest"))
	if bA == bB {
		t.Fatalf("short-circuit operands share block %d; && must split", bA.Index)
	}
	hasSucc(t, bA, bB, "a true evaluates b")
	hasSucc(t, bA, bRest, "a false skips the body")
	hasSucc(t, bB, bThen, "a && b true enters the body")
	hasSucc(t, bB, bRest, "b false skips the body")
	hasSucc(t, bThen, bRest, "body falls through")
}

func TestCFGShortCircuitOr(t *testing.T) {
	g := buildCFG(t, `
	if a || b {
		then()
	} else {
		other()
	}
`)
	bA := blockWith(t, g, "cond a", condIdent("a"))
	bB := blockWith(t, g, "cond b", condIdent("b"))
	bThen := blockWith(t, g, "then()", callTo("then"))
	bOther := blockWith(t, g, "other()", callTo("other"))
	hasSucc(t, bA, bThen, "a true short-circuits into the body")
	hasSucc(t, bA, bB, "a false evaluates b")
	hasSucc(t, bB, bThen, "b true enters the body")
	hasSucc(t, bB, bOther, "both false take the else")
}

func TestCFGLabeledBranches(t *testing.T) {
	g := buildCFG(t, `
outer:
	for ; c; post() {
		for {
			if a {
				break outer
			}
			if b {
				continue outer
			}
			if d {
				break
			}
			inner()
		}
		mid()
	}
	rest()
`)
	bBreakOuter := blockWith(t, g, "break outer", branch(token.BREAK, "outer"))
	bContOuter := blockWith(t, g, "continue outer", branch(token.CONTINUE, "outer"))
	bBreak := blockWith(t, g, "break", branch(token.BREAK, ""))
	bPost := blockWith(t, g, "post()", callTo("post"))
	bMid := blockWith(t, g, "mid()", callTo("mid"))
	bRest := blockWith(t, g, "rest()", callTo("rest"))
	hasSucc(t, bBreakOuter, bRest, "break outer exits both loops")
	hasSucc(t, bContOuter, bPost, "continue outer runs the outer post")
	hasSucc(t, bBreak, bMid, "unlabeled break exits only the inner loop")
	for _, s := range bBreakOuter.Succs {
		if s == bMid {
			t.Errorf("break outer must not stop at the inner loop's exit")
		}
	}
}

func TestCFGDeferAndEarlyReturn(t *testing.T) {
	g := buildCFG(t, `
	defer release()
	if a {
		return
	}
	work()
`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	if id, ok := g.Defers[0].Fun.(*ast.Ident); !ok || id.Name != "release" {
		t.Fatalf("deferred call is %v, want release()", g.Defers[0].Fun)
	}
	bRet := blockWith(t, g, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	bWork := blockWith(t, g, "work()", callTo("work"))
	hasSucc(t, bRet, g.Exit, "early return reaches Exit")
	hasSucc(t, bWork, g.Exit, "fall-off-the-end reaches Exit")
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildCFG(t, `
	if a {
		panic("boom")
	}
	work()
`)
	bPanic := blockWith(t, g, "panic", callTo("panic"))
	if len(bPanic.Succs) != 1 || bPanic.Succs[0] != g.Exit {
		t.Fatalf("panic block succs %v, want only Exit (block %d)", indices(bPanic.Succs), g.Exit.Index)
	}
}

func TestCFGSelectAndRangeHeadsAreShallow(t *testing.T) {
	g := buildCFG(t, `
	select {
	case <-ch:
		one()
	default:
		two()
	}
	for range items {
		body()
	}
	rest()
`)
	bSel := blockWith(t, g, "select head", func(n ast.Node) bool {
		_, ok := n.(*ast.SelectStmt)
		return ok
	})
	bOne := blockWith(t, g, "one()", callTo("one"))
	bTwo := blockWith(t, g, "two()", callTo("two"))
	if bOne == bSel || bTwo == bSel {
		t.Fatalf("clause bodies must not share the select head block")
	}
	hasSucc(t, bSel, bOne, "head branches to the comm clause")
	hasSucc(t, bSel, bTwo, "head branches to the default clause")

	bRange := blockWith(t, g, "range head", func(n ast.Node) bool {
		_, ok := n.(*ast.RangeStmt)
		return ok
	})
	bBody := blockWith(t, g, "body()", callTo("body"))
	if bBody == bRange {
		t.Fatalf("range body must not share the head block")
	}
	hasSucc(t, bRange, bBody, "range head enters the body")
	hasSucc(t, bBody, bRange, "range body loops back")
}
