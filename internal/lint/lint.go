// Package lint is pflint's engine: a stdlib-only static-analysis suite
// that machine-checks the simulator's standing invariants — replay
// determinism in the core packages, allocation discipline on the
// annotated hot paths, the nil-guarded observability-hook pattern,
// config validation coverage, and discarded errors — so the guarantees
// pinned by TestSeedFingerprintPinned rest on CI, not convention.
//
// The suite is built directly on go/parser + go/types driven off
// `go list -json` (see load.go); the module has zero external
// dependencies and the linter keeps it that way.
//
// # Rules and pragmas
//
// Each analyzer reports findings as "file:line:col: rule: message".
// A finding is suppressed by an escape pragma on the same line or the
// line directly above:
//
//	//pflint:allow <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a pragma with no reason, an unknown rule
// name, or one that suppresses nothing is itself a finding, so escapes
// cannot rot silently. Hot-path functions opt in with a
// `//pflint:hotpath` directive in their doc comment. docs/LINTING.md
// documents every rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one self-contained check run against every loaded package.
type Analyzer struct {
	// Name is the analyzer identifier; every rule it reports is
	// "<name>/<check>".
	Name string
	// Doc is a one-line description for `pflint -list`.
	Doc string
	// Rules lists every rule the analyzer can report.
	Rules []string
	// Run reports the analyzer's findings for one package. Suppression
	// (pragmas) is applied by the engine afterwards.
	Run func(p *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer(),
		hotpathAnalyzer(),
		hooksAnalyzer(),
		configcovAnalyzer(),
		errcheckAnalyzer(),
		lockflowAnalyzer(),
		ctxflowAnalyzer(),
		hwbudgetAnalyzer(),
	}
}

// Rule names, kept in one place so pragma validation and docs agree.
const (
	RuleDetTime     = "determinism/time"
	RuleDetRand     = "determinism/rand"
	RuleDetEnv      = "determinism/env"
	RuleDetMapRange = "determinism/maprange"

	RuleHotAlloc   = "hotpath/alloc"
	RuleHotAppend  = "hotpath/append"
	RuleHotFmt     = "hotpath/fmt"
	RuleHotIface   = "hotpath/iface"
	RuleHotClosure = "hotpath/closure"

	RuleHooksGuard = "hooks/guard"

	RuleConfigCov = "configcov/unvalidated"

	RuleErrcheck = "errcheck/discard"

	RuleLockBlocking = "lockflow/blocking"
	RuleLockLeak     = "lockflow/leak"

	RuleCtxDrop       = "ctxflow/drop"
	RuleCtxBackground = "ctxflow/background"
	RuleCtxGoroutine  = "ctxflow/goroutine"

	RuleHWMap     = "hwbudget/map"
	RuleHWUnsized = "hwbudget/unsized"
	RuleHWGrowth  = "hwbudget/growth"

	// Engine-level pragma hygiene rules (not suppressible).
	RulePragmaMalformed = "pragma/malformed"
	RulePragmaUnknown   = "pragma/unknown-rule"
	RulePragmaUnused    = "pragma/unused"
)

// knownRules is every rule a pragma may legally name.
var knownRules = map[string]bool{
	RuleDetTime: true, RuleDetRand: true, RuleDetEnv: true, RuleDetMapRange: true,
	RuleHotAlloc: true, RuleHotAppend: true, RuleHotFmt: true, RuleHotIface: true, RuleHotClosure: true,
	RuleHooksGuard: true,
	RuleConfigCov:  true,
	RuleErrcheck:   true,
	RuleLockBlocking: true, RuleLockLeak: true,
	RuleCtxDrop: true, RuleCtxBackground: true, RuleCtxGoroutine: true,
	RuleHWMap: true, RuleHWUnsized: true, RuleHWGrowth: true,
}

// knownAnalyzers lets a pragma suppress a whole analyzer by name.
var knownAnalyzers = map[string]bool{
	"determinism": true, "hotpath": true, "hooks": true, "configcov": true, "errcheck": true,
	"lockflow": true, "ctxflow": true, "hwbudget": true,
}

// coreNames is the deterministic core: packages whose simulated state
// feeds the pinned fingerprints. Harness packages (sched, experiments,
// server, trace, metrics, report, workload, ...) are deliberately
// absent — they may read clocks and schedule freely, as long as their
// serialized output is sorted (which errcheck/tests cover separately).
// Membership is by import-path base so the lint fixtures under
// testdata/src can stand in for real core packages.
var coreNames = map[string]bool{
	"sim": true, "cpu": true, "cache": true, "hier": true, "filter": true,
	"prefetch": true, "predictor": true, "pbuffer": true, "bus": true,
	"memdram": true, "deadblock": true, "victim": true, "core": true,
	"frontend": true,
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info

	pragmas        []*allowPragma
	pragmaFindings []Finding // malformed/unknown-rule, collected at parse time
}

// IsCore reports whether the package belongs to the deterministic core.
func (p *Package) IsCore() bool { return coreNames[path.Base(p.ImportPath)] }

// Position resolves a token.Pos against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// finding builds a Finding at pos.
func (p *Package) finding(pos token.Pos, rule, format string, args ...any) Finding {
	return Finding{Pos: p.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// allowPragma is one parsed //pflint:allow comment.
type allowPragma struct {
	file   string
	line   int
	col    int
	rules  []string
	reason string
	used   bool
}

// parsePragmas indexes every pflint directive in a file and records
// malformed ones as findings.
func (p *Package) parsePragmas(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//pflint:") {
				continue
			}
			pos := p.Position(c.Pos())
			directive := strings.TrimPrefix(text, "//pflint:")
			switch {
			case directive == "hotpath" || strings.HasPrefix(directive, "hotpath "):
				// Handled by hotpathFuncs; nothing to index here.
			case strings.HasPrefix(directive, "allow"):
				rest := strings.TrimPrefix(directive, "allow")
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					p.pragmaFindings = append(p.pragmaFindings, Finding{
						Pos: pos, Rule: RulePragmaMalformed,
						Msg: "allow pragma names no rule; use //pflint:allow <rule> <reason>",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					p.pragmaFindings = append(p.pragmaFindings, Finding{
						Pos: pos, Rule: RulePragmaMalformed,
						Msg: fmt.Sprintf("allow pragma for %s has no reason; every escape must say why", fields[0]),
					})
					continue
				}
				for _, r := range rules {
					if !knownRules[r] && !knownAnalyzers[r] {
						p.pragmaFindings = append(p.pragmaFindings, Finding{
							Pos: pos, Rule: RulePragmaUnknown,
							Msg: fmt.Sprintf("allow pragma names unknown rule %q", r),
						})
					}
				}
				p.pragmas = append(p.pragmas, &allowPragma{
					file: pos.Filename, line: pos.Line, col: pos.Column,
					rules: rules, reason: reason,
				})
			default:
				p.pragmaFindings = append(p.pragmaFindings, Finding{
					Pos: pos, Rule: RulePragmaMalformed,
					Msg: fmt.Sprintf("unknown pflint directive %q (known: allow, hotpath)", "//pflint:"+directive),
				})
			}
		}
	}
}

// suppressed reports whether a pragma on the finding's line (or the line
// directly above) allows it, marking the pragma used.
func (p *Package) suppressed(f Finding) bool {
	hit := false
	for _, pr := range p.pragmas {
		if pr.file != f.Pos.Filename || (pr.line != f.Pos.Line && pr.line != f.Pos.Line-1) {
			continue
		}
		for _, r := range pr.rules {
			if r == f.Rule || r == analyzerOf(f.Rule) {
				pr.used = true
				hit = true
			}
		}
	}
	return hit
}

// analyzerOf returns the analyzer component of a rule name.
func analyzerOf(rule string) string {
	if i := strings.IndexByte(rule, '/'); i >= 0 {
		return rule[:i]
	}
	return rule
}

// hotpathDirective reports whether a function's doc comment carries the
// //pflint:hotpath annotation.
func hotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//pflint:hotpath" || strings.HasPrefix(c.Text, "//pflint:hotpath ") {
			return true
		}
	}
	return false
}

// HotpathFunctions returns the qualified names of every function in the
// package annotated //pflint:hotpath, e.g. "hier.(*inflightHeap).push".
// The annotation regression test pins the set for the real tree.
func HotpathFunctions(p *Package) []string {
	var out []string
	for _, f := range p.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hotpathDirective(fd) {
				continue
			}
			out = append(out, path.Base(p.ImportPath)+"."+funcName(fd))
		}
	}
	sort.Strings(out)
	return out
}

// funcName renders a method as (*T).name / T.name and a function as name.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// Run applies the analyzers to every package, resolves pragmas, and
// returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		var raw []Finding
		for _, a := range analyzers {
			raw = append(raw, a.Run(p)...)
		}
		for _, f := range raw {
			if !p.suppressed(f) {
				out = append(out, f)
			}
		}
		out = append(out, p.pragmaFindings...)
		for _, pr := range p.pragmas {
			if !pr.used {
				out = append(out, Finding{
					Pos:  token.Position{Filename: pr.file, Line: pr.line, Column: pr.col},
					Rule: RulePragmaUnused,
					Msg:  fmt.Sprintf("allow pragma for %s suppresses nothing; remove the stale escape", strings.Join(pr.rules, ",")),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
