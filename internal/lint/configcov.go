// The configcov analyzer: every exported field of the exported structs
// in internal/config must be read by some Validate method in the
// package. The filter zoo grew a bug class where a new knob was parsed
// and plumbed but silently never validated; this closes it structurally.
// Bool fields are exempt (both values are always legal), and a field
// whose full value range really is valid carries an explicit
// //pflint:allow configcov/unvalidated pragma on its declaration.

package lint

import (
	"go/ast"
	"go/types"
	"path"
)

func configcovAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "configcov",
		Doc:   "require every exported config struct field to be read in a Validate method",
		Rules: []string{RuleConfigCov},
		Run:   configcovRun,
	}
}

func configcovRun(p *Package) []Finding {
	if path.Base(p.ImportPath) != "config" {
		return nil
	}

	// Pass 1: every field object read anywhere inside a Validate method.
	validated := make(map[types.Object]bool)
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Validate" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
					validated[obj] = true
				}
				return true
			})
		}
	}

	// Pass 2: every exported field of every exported struct type.
	var out []Finding
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						obj, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if isBool(obj.Type()) {
							continue // both values always legal; nothing to validate
						}
						if !validated[obj] {
							out = append(out, p.finding(name.Pos(), RuleConfigCov,
								"exported config field %s.%s is never read by any Validate method; validate it or annotate why every value is legal",
								ts.Name.Name, name.Name))
						}
					}
				}
			}
		}
	}
	return out
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
