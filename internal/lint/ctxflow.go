// The ctxflow analyzer: context discipline for the request/dispatch
// paths. Three rules:
//
//   - ctxflow/drop: a function that accepts a context.Context must
//     thread it — every context-typed argument it passes to a callee
//     must derive from the parameter (the parameter itself, a
//     context.With* of it, or a value assigned from one). Passing a
//     fresh context severs cancellation: the callee outlives the
//     request that spawned it. Tracked as a forward taint analysis
//     over the CFG, so re-assignments (`ctx = context.WithTimeout…`)
//     are followed flow-sensitively.
//   - ctxflow/background: context.Background()/context.TODO() are
//     forbidden inside sched/server/fabric — the request/dispatch
//     packages. Roots belong in main; everything below receives one.
//   - ctxflow/goroutine: every `go func` in server/fabric must be
//     cancellable — its body selects on a ctx/done channel, receives
//     from a channel, or checks in with a sync.WaitGroup the parent
//     waits on. A goroutine with none of those outlives Shutdown
//     silently.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxBackgroundPackages: where Background()/TODO() are forbidden.
var ctxBackgroundPackages = map[string]bool{"sched": true, "server": true, "fabric": true}

// ctxGoroutinePackages: where every go-statement must be cancellable.
var ctxGoroutinePackages = map[string]bool{"server": true, "fabric": true}

func ctxflowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "ctxflow",
		Doc:   "context threading, no fresh roots in dispatch paths, cancellable goroutines",
		Rules: []string{RuleCtxDrop, RuleCtxBackground, RuleCtxGoroutine},
		Run:   ctxflowRun,
	}
}

func ctxflowRun(p *Package) []Finding {
	c := &ctxflowChecker{p: p}
	base := pkgBase(p)
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcName(fd)
			if ctxBackgroundPackages[base] {
				c.checkBackground(fd.Body)
			}
			if ctxGoroutinePackages[base] {
				c.checkGoroutines(name, fd.Body)
			}
			// The taint analysis runs per function body — the decl's and
			// each literal's, since a closure taking its own ctx is a
			// function in its own right.
			c.checkThreading(name, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkThreading(name+".func", fl.Type, fl.Body)
				}
				return true
			})
		}
	}
	return c.findings
}

type ctxflowChecker struct {
	p        *Package
	findings []Finding
}

func (c *ctxflowChecker) report(pos token.Pos, rule, format string, args ...any) {
	c.findings = append(c.findings, c.p.finding(pos, rule, format, args...))
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ── ctxflow/background ────────────────────────────────────────────────

// checkBackground flags every context.Background()/TODO() call in the
// body, including inside function literals (they run in this package's
// dispatch path all the same).
func (c *ctxflowChecker) checkBackground(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBackgroundCall(c.p, call) {
			return true
		}
		sel := unparen(call.Fun).(*ast.SelectorExpr)
		c.report(call.Pos(), RuleCtxBackground,
			"context.%s() in a dispatch-path package; accept a ctx from the caller instead of minting a root", sel.Sel.Name)
		return true
	})
}

// isBackgroundCall reports whether e is context.Background() or
// context.TODO().
func isBackgroundCall(p *Package, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	pkgPath, ok := packageQualifier(p, sel)
	return ok && pkgPath == "context"
}

// ── ctxflow/goroutine ─────────────────────────────────────────────────

// checkGoroutines requires every `go func(){...}()` to be cancellable:
// the body mentions a Done()/Err() on some context, contains a select
// or a channel receive (so it can observe shutdown), or signals a
// sync.WaitGroup the parent waits on.
func (c *ctxflowChecker) checkGoroutines(name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // `go method()` — the method body is checked where it is declared
		}
		if !c.cancellable(fl.Body) {
			c.report(gs.Pos(), RuleCtxGoroutine,
				"goroutine in %s is not cancellable: select on ctx.Done(), receive from a shutdown channel, or register with a WaitGroup", name)
		}
		return true
	})
}

// cancellable reports whether a goroutine body can observe shutdown.
func (c *ctxflowChecker) cancellable(body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			ok = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = true // blocks on a channel the parent controls
			}
		case *ast.CallExpr:
			if sel, isSel := unparen(n.Fun).(*ast.SelectorExpr); isSel {
				switch sel.Sel.Name {
				case "Done", "Err":
					if isCtxType(c.p.TypeOf(sel.X)) {
						ok = true
					}
					if pkgPath, typeName, has := methodReceiver(c.p, sel); has &&
						pkgPath == "sync" && typeName == "WaitGroup" && sel.Sel.Name == "Done" {
						ok = true
					}
				}
			}
		}
		return !ok
	})
	return ok
}

// ── ctxflow/drop ──────────────────────────────────────────────────────

// ctxParams returns the names of a function's context.Context
// parameters (the taint seeds).
func (c *ctxflowChecker) ctxParams(ft *ast.FuncType) []string {
	var out []string
	if ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		if !isCtxType(c.p.TypeOf(f.Type)) {
			continue
		}
		for _, name := range f.Names {
			if name.Name != "_" {
				out = append(out, name.Name)
			}
		}
	}
	return out
}

func (c *ctxflowChecker) checkThreading(name string, ft *ast.FuncType, body *ast.BlockStmt) {
	seeds := c.ctxParams(ft)
	if len(seeds) == 0 {
		return
	}
	g := FuncCFG(body)
	entry := taintSet{}
	for _, s := range seeds {
		entry[s] = true
	}
	fl := &flow[taintSet]{
		entry: entry,
		eq:    taintEq,
		join:  taintJoin,
		transfer: func(n ast.Node, in taintSet) taintSet {
			return c.taintTransfer(n, in)
		},
	}
	in := fl.solve(g)
	for _, b := range g.Blocks {
		f := in[b.Index]
		for _, n := range b.Nodes {
			c.checkNodeArgs(name, n, f)
			f = c.taintTransfer(n, f)
		}
	}
}

// taintSet is the dataflow fact: variables holding a context derived
// from the function's ctx parameter.
type taintSet map[string]bool

func taintEq(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func taintJoin(a, b taintSet) taintSet {
	grew := false
	for k := range b {
		if !a[k] {
			grew = true
			break
		}
	}
	if !grew {
		return a
	}
	out := make(taintSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// taintTransfer propagates derivation through assignments. Compound
// CFG nodes (range heads, selects) carry no context assignments worth
// tracking, so only assign/decl statements matter.
func (c *ctxflowChecker) taintTransfer(n ast.Node, in taintSet) taintSet {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return c.taintAssign(n.Lhs, n.Rhs, in)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return in
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, id := range vs.Names {
				lhs[i] = id
			}
			in = c.taintAssign(lhs, vs.Values, in)
		}
		return in
	default:
		return in
	}
}

func (c *ctxflowChecker) taintAssign(lhs, rhs []ast.Expr, in taintSet) taintSet {
	set := func(s taintSet, name string, tainted bool) taintSet {
		if name == "_" || s[name] == tainted {
			return s
		}
		out := make(taintSet, len(s)+1)
		for k := range s {
			out[k] = true
		}
		if tainted {
			out[name] = true
		} else {
			delete(out, name)
		}
		return out
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			id, ok := unparen(lhs[i]).(*ast.Ident)
			if !ok || !isCtxType(c.p.TypeOf(lhs[i])) {
				continue
			}
			in = set(in, id.Name, c.exprDerived(rhs[i], in))
		}
		return in
	}
	// Multi-value form: ctx, cancel := context.WithTimeout(parent, d).
	if len(rhs) == 1 {
		call, ok := unparen(rhs[0]).(*ast.CallExpr)
		derived := ok && c.callDerives(call, in)
		for _, l := range lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || !isCtxType(c.p.TypeOf(l)) {
				continue
			}
			in = set(in, id.Name, derived)
		}
	}
	return in
}

// exprDerived reports whether e evaluates to a context derived from
// the ctx parameter under the current fact.
func (c *ctxflowChecker) exprDerived(e ast.Expr, in taintSet) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return in[e.Name]
	case *ast.CallExpr:
		return c.callDerives(e, in)
	}
	return false
}

// callDerives reports whether a call returns a context derived from a
// tainted one: any call fed a derived context qualifies (context.With*
// in particular), as does (*http.Request).Context() — the server's
// per-request root.
func (c *ctxflowChecker) callDerives(call *ast.CallExpr, in taintSet) bool {
	for _, a := range call.Args {
		if isCtxType(c.p.TypeOf(a)) && c.exprDerived(a, in) {
			return true
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
		if pkgPath, typeName, ok := methodReceiver(c.p, sel); ok {
			return pkgPath == "net/http" && typeName == "Request"
		}
	}
	return false
}

// checkNodeArgs flags context-typed call arguments that do not derive
// from the ctx parameter. Direct Background()/TODO() arguments inside
// the gated packages are left to ctxflow/background (one finding per
// sin, not two).
func (c *ctxflowChecker) checkNodeArgs(name string, n ast.Node, in taintSet) {
	if _, ok := n.(*ast.SelectStmt); ok {
		return // clause bodies are separate blocks
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		n = r.X
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range call.Args {
			if !isCtxType(c.p.TypeOf(a)) || c.exprDerived(a, in) {
				continue
			}
			if isBackgroundCall(c.p, a) && ctxBackgroundPackages[pkgBase(c.p)] {
				continue
			}
			c.report(a.Pos(), RuleCtxDrop,
				"%s accepts a ctx but passes a context not derived from it to %s; thread the parameter", name, types.ExprString(call.Fun))
		}
		return true
	})
}
