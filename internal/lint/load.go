// Package loading for pflint: a stdlib-only loader driven off
// `go list -deps -json`, which emits packages in dependency order
// (dependencies strictly before dependents). Each package is parsed
// with go/parser and type-checked with go/types against a cache of the
// already-checked imports, so the whole module plus its stdlib closure
// checks in one pass with no external tooling.
//
// Dependencies that were not named by the patterns (DepOnly, which
// includes the entire stdlib closure) are checked with
// IgnoreFuncBodies and lenient error handling: only their exported
// shape matters for analyzing the targets. CGO_ENABLED=0 is forced so
// stdlib packages with cgo variants (net, os/user) list their pure-Go
// fallbacks and remain self-contained under source type-checking.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
)

// goListPkg is the subset of `go list -json` output the loader needs.
type goListPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *goListError
}

type goListError struct {
	Err string
}

// pkgImporter resolves imports from the cache of already-checked
// packages; go list -deps guarantees the order makes that sufficient.
type pkgImporter struct {
	cache map[string]*types.Package
	// fallback resolves stray paths (e.g. an import added between the
	// list and the parse); it should effectively never be hit.
	fallback types.Importer
}

func (i *pkgImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.cache[path]; ok {
		return p, nil
	}
	if i.fallback != nil {
		return i.fallback.Import(path)
	}
	return nil, fmt.Errorf("package %q not listed as a dependency", path)
}

// Load lists the packages matching patterns (relative to dir), parses
// and type-checks them plus their whole dependency closure, and returns
// the pattern-matched packages ready for analysis. Test files are
// excluded by construction: `go list` reports them separately from
// GoFiles, and the suite's rules apply to non-test code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Name,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*goListPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := &goListPkg{}
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	cache := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := &pkgImporter{cache: cache, fallback: importer.ForCompiler(fset, "source", nil)}
	var out []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}

		var info *types.Info
		var typeErrs []error
		conf := types.Config{
			Importer:    imp,
			FakeImportC: true,
			// Dependency packages only contribute their exported shape;
			// skipping their function bodies keeps a whole-tree load fast.
			IgnoreFuncBodies: lp.DepOnly,
			Error: func(err error) {
				if !lp.DepOnly {
					typeErrs = append(typeErrs, err)
				}
			},
		}
		if !lp.DepOnly {
			info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, typeErrs[0])
		}
		if err != nil && !lp.DepOnly {
			return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, err)
		}
		cache[lp.ImportPath] = tpkg
		if lp.DepOnly {
			continue
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			Info:       info,
		}
		for _, f := range files {
			p.parsePragmas(f)
		}
		out = append(out, p)
	}
	return out, nil
}
