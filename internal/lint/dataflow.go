// A small forward-dataflow framework over the CFGs of cfg.go.
// Analyzers instantiate it with a fact lattice (join + equality) and a
// per-node transfer function; the solver runs the standard worklist to
// a fixpoint and hands back every block's entry fact, from which an
// analyzer replays transfers node by node to attach findings to
// positions. Facts must be treated as immutable: transfer returns a
// fresh value when it changes anything.

package lint

import "go/ast"

// flow is one forward-dataflow problem over a CFG.
type flow[F any] struct {
	// entry is the fact at function entry.
	entry F
	// eq reports fact equality (fixpoint detection).
	eq func(a, b F) bool
	// join merges facts at a control-flow merge.
	join func(a, b F) F
	// transfer applies one node's effect.
	transfer func(n ast.Node, in F) F
}

// solve runs the worklist to fixpoint and returns the entry fact of
// every block, indexed by Block.Index. Blocks the fixpoint never
// reaches (unreachable code) keep the entry fact, so analyzers still
// see their nodes under the most conservative assumption available.
func (fl *flow[F]) solve(g *CFG) []F {
	in := make([]F, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	for i := range in {
		in[i] = fl.entry
	}
	seen[g.Entry.Index] = true

	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := fl.blockOut(b, in[b.Index])
		for _, s := range b.Succs {
			next := out
			if seen[s.Index] {
				next = fl.join(in[s.Index], out)
				if fl.eq(next, in[s.Index]) {
					continue
				}
			}
			in[s.Index] = next
			seen[s.Index] = true
			work = append(work, s)
		}
	}
	return in
}

// blockOut applies every node of b to the entry fact.
func (fl *flow[F]) blockOut(b *Block, f F) F {
	for _, n := range b.Nodes {
		f = fl.transfer(n, f)
	}
	return f
}
