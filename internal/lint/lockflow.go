// The lockflow analyzer: in the concurrency-harness packages (sched,
// server, fabric) a sync.Mutex/RWMutex must never be held across a
// blocking operation — an HTTP round-trip, a net dial, a channel send
// or receive, a select with no default, sched.Run / fabric dispatch,
// WaitGroup.Wait, or time.Sleep. A goroutine parked on any of those
// while holding a lock stalls every other goroutine contending for it,
// and under the fabric's lease/re-deal machinery that is a distributed
// stall: one wedged worker connection freezes the whole deal loop.
//
// The analysis is a forward dataflow over the function's CFG: the fact
// is the set of possibly-held locks (may-analysis, union at merges),
// acquired at mu.Lock()/RLock() and released at Unlock()/RUnlock().
// Deferred unlocks are tracked separately — they keep the lock held
// through the body (every blocking op after the Lock is still flagged)
// but satisfy the release-on-return rule. sync.Cond.Wait is exempt by
// design: it atomically releases the mutex it waits under.
//
// lockflow/leak fires when some return path leaves a lock held with no
// deferred unlock — the early-return bug class the CFG exists to catch.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockflowPackages is membership by import-path base, like coreNames:
// the packages where goroutines actually meet.
var lockflowPackages = map[string]bool{"sched": true, "server": true, "fabric": true}

func lockflowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "lockflow",
		Doc:   "forbid holding a mutex across blocking operations, and returning with one held, in sched/server/fabric",
		Rules: []string{RuleLockBlocking, RuleLockLeak},
		Run:   lockflowRun,
	}
}

func lockflowRun(p *Package) []Finding {
	if !lockflowPackages[pkgBase(p)] {
		return nil
	}
	c := &lockflowChecker{p: p}
	for _, fn := range packageFuncs(p) {
		c.checkFunc(fn)
	}
	return c.findings
}

// funcBody is one analyzable body: a declared function or a function
// literal (goroutine bodies, deferred closures, job closures).
type funcBody struct {
	name string
	body *ast.BlockStmt
}

// packageFuncs enumerates every function and function literal body in
// the package. Literals are analyzed as separate functions: their code
// runs under their own control flow, not their parent's.
func packageFuncs(p *Package) []funcBody {
	var out []funcBody
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcName(fd)
			out = append(out, funcBody{name: name, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{name: name + ".func", body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

// lockSet is the dataflow fact: possibly-held locks, keyed by the
// printed receiver expression, mapped to the acquiring position.
type lockSet map[string]token.Pos

func (s lockSet) with(key string, pos token.Pos) lockSet {
	if _, ok := s[key]; ok {
		return s
	}
	out := make(lockSet, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[key] = pos
	return out
}

func (s lockSet) without(key string) lockSet {
	if _, ok := s[key]; !ok {
		return s
	}
	out := make(lockSet, len(s))
	for k, v := range s {
		if k != key {
			out[k] = v
		}
	}
	return out
}

func lockSetEq(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func lockSetJoin(a, b lockSet) lockSet {
	out := a
	for k, pos := range b {
		out = out.with(k, pos)
	}
	return out
}

type lockflowChecker struct {
	p        *Package
	findings []Finding
	// selectComm marks the comm statements of select clauses in the
	// function under analysis: the park (if any) happens at the select
	// head, so the chosen comm itself never blocks and is exempt from
	// the channel-op rules.
	selectComm map[ast.Node]bool
}

func (c *lockflowChecker) report(pos token.Pos, rule, format string, args ...any) {
	c.findings = append(c.findings, c.p.finding(pos, rule, format, args...))
}

func (c *lockflowChecker) checkFunc(fn funcBody) {
	g := FuncCFG(fn.body)

	c.selectComm = map[ast.Node]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own checkFunc pass
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					c.selectComm[cc.Comm] = true
				}
			}
		}
		return true
	})

	// Deferred unlocks satisfy release-on-return; deferred closures
	// releasing a lock inside count too.
	deferReleased := map[string]bool{}
	for _, call := range g.Defers {
		if key, op := c.lockOp(call); op == opUnlock {
			deferReleased[key] = true
		}
		if fl, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.CallExpr); ok {
					if key, op := c.lockOp(inner); op == opUnlock {
						deferReleased[key] = true
					}
				}
				return true
			})
		}
	}

	fl := &flow[lockSet]{
		entry: lockSet{},
		eq:    lockSetEq,
		join:  lockSetJoin,
		transfer: func(n ast.Node, in lockSet) lockSet {
			return c.transfer(fn, n, in, false)
		},
	}
	in := fl.solve(g)

	// Replay every block once from its solved entry fact, emitting
	// findings; then join the facts flowing into Exit for the leak rule.
	exit := lockSet{}
	sawExit := false
	for _, b := range g.Blocks {
		f := in[b.Index]
		for _, n := range b.Nodes {
			f = c.transfer(fn, n, f, true)
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				exit = lockSetJoin(exit, f)
				sawExit = true
			}
		}
	}
	if !sawExit {
		return
	}
	for key, pos := range exit {
		if !deferReleased[key] {
			c.report(pos, RuleLockLeak,
				"%s.Lock() in %s is not released on every return path; unlock before returning or defer the unlock", key, fn.name)
		}
	}
}

// transfer applies one CFG node to the held-lock set; when emit is set
// it also reports blocking operations performed with a lock held.
// Compound statements appearing as CFG nodes (range heads, selects) are
// handled shallowly — their bodies are separate blocks.
func (c *lockflowChecker) transfer(fn funcBody, n ast.Node, in lockSet, emit bool) lockSet {
	switch n := n.(type) {
	case *ast.SelectStmt:
		if emit && !selectHasDefault(n) {
			c.describeHeld(n.Pos(), in, fn, "select with no default case")
		}
		return in
	case *ast.RangeStmt:
		return c.scan(fn, n.X, in, emit)
	case *ast.DeferStmt:
		// The deferred call runs at exit; only its fun/args evaluate now.
		in = c.scan(fn, n.Call.Fun, in, emit)
		for _, a := range n.Call.Args {
			in = c.scan(fn, a, in, emit)
		}
		return in
	case *ast.GoStmt:
		// The goroutine runs elsewhere (its literal body is analyzed as
		// its own function); only the call's operands evaluate here.
		for _, a := range n.Call.Args {
			in = c.scan(fn, a, in, emit)
		}
		return in
	default:
		return c.scan(fn, n, in, emit)
	}
}

// scan walks one node in evaluation order, applying lock transitions
// and flagging blocking operations. Function literals are skipped:
// they execute under their own CFG, not here. Select comm statements
// get no channel-op findings — the park happened at the select head.
func (c *lockflowChecker) scan(fn funcBody, n ast.Node, in lockSet, emit bool) lockSet {
	chanOps := emit && !c.selectComm[n]
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if chanOps {
				c.describeHeld(x.Arrow, in, fn, "channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && chanOps {
				c.describeHeld(x.Pos(), in, fn, "channel receive")
			}
		case *ast.CallExpr:
			switch key, op := c.lockOp(x); op {
			case opLock:
				in = in.with(key, x.Pos())
			case opUnlock:
				in = in.without(key)
			case opNone:
				if emit {
					if desc := c.blockingCall(x); desc != "" {
						c.describeHeld(x.Pos(), in, fn, desc)
					}
				}
			}
		}
		return true
	})
	return in
}

// describeHeld reports one blocking operation per currently-held lock.
func (c *lockflowChecker) describeHeld(pos token.Pos, held lockSet, fn funcBody, what string) {
	for key := range held {
		c.report(pos, RuleLockBlocking,
			"%s while holding %s in %s; release the lock before blocking (lockflow discipline, docs/LINTING.md)", what, key, fn.name)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex acquire/release, returning the
// lock's identity (the printed receiver expression).
func (c *lockflowChecker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	pkgPath, typeName, ok := methodReceiver(c.p, sel)
	if !ok || pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", opNone
	}
	return types.ExprString(unparen(sel.X)), kind
}

// blockingCall describes a call that can block indefinitely, or ""
// when the call is fine under a lock. sync.Cond.Wait is exempt: it
// releases the mutex it waits under.
func (c *lockflowChecker) blockingCall(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if pkgPath, ok := packageQualifier(c.p, sel); ok {
		switch {
		case pkgPath == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
			return "net." + name
		case pkgPath == "net/http" && (name == "Get" || name == "Head" || name == "Post" || name == "PostForm"):
			return "HTTP round-trip http." + name
		case pkgPath == "time" && name == "Sleep":
			return "time.Sleep"
		case strings.HasSuffix(pkgPath, "internal/sched") && name == "Run":
			return "sched.Run (a whole scheduler batch)"
		}
		return ""
	}
	pkgPath, typeName, ok := methodReceiver(c.p, sel)
	if !ok {
		return ""
	}
	switch {
	case pkgPath == "net/http" && typeName == "Client" && name == "Do":
		return "HTTP round-trip (*http.Client).Do"
	case pkgPath == "sync" && typeName == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait"
	case strings.HasSuffix(pkgPath, "internal/fabric") && typeName == "Coordinator" && name == "Run":
		return "fabric dispatch (*Coordinator).Run"
	}
	return ""
}

// methodReceiver resolves a selector call's receiver to its defining
// package path and named type, seeing through pointers.
func methodReceiver(p *Package, sel *ast.SelectorExpr) (pkgPath, typeName string, ok bool) {
	if p.Info == nil {
		return "", "", false
	}
	s, isMethod := p.Info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	t := s.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// selectHasDefault reports whether a select carries a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// pkgBase is the import-path base used for package-set membership.
func pkgBase(p *Package) string { return pathBase(p.ImportPath) }
