package lint

import (
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/frontend"
	"repro/internal/prefetch"
)

// TestBudgetCoversEveryBackend is the acceptance check for `pflint
// -budget`: every registered backend in all three zoos gets a line,
// none of them fails construction, and every backend that claims any
// storage reports a finite nonzero budget.
func TestBudgetCoversEveryBackend(t *testing.T) {
	lines := BudgetReport()
	byKey := map[string]BudgetLine{}
	for _, l := range lines {
		byKey[l.Kind+"/"+l.Name] = l
	}

	expect := map[string][]string{
		"filter":    filter.Kinds(),
		"generator": prefetch.Kinds(),
		"iprefetch": frontend.Kinds(),
	}
	total := 0
	for kind, names := range expect {
		total += len(names)
		for _, name := range names {
			l, ok := byKey[kind+"/"+name]
			if !ok {
				t.Errorf("no budget line for %s/%s", kind, name)
				continue
			}
			for _, n := range l.Notes {
				if strings.HasPrefix(n, "construction failed") {
					t.Errorf("%s/%s: %s", kind, name, n)
				}
			}
		}
	}
	if len(lines) != total {
		t.Errorf("report has %d lines, registries have %d backends", len(lines), total)
	}
}

// TestBudgetDeterministic: the report is built from the default config
// and sorted, so two runs must agree byte for byte (the docs embed it).
func TestBudgetDeterministic(t *testing.T) {
	a := FormatBudget(BudgetReport())
	b := FormatBudget(BudgetReport())
	if a != b {
		t.Fatalf("budget report not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "KIND") {
		t.Fatalf("report missing header:\n%s", a)
	}
}
