// The determinism analyzer: the core packages must produce bit-identical
// state for a given (trace, config, seed) regardless of wall time, host,
// environment, or Go's randomized map iteration order — that is what
// lets TestSeedFingerprintPinned pin sha256s across worker counts. Any
// ambient-input read or order-dependent iteration inside the core is a
// finding; harness packages (sched, experiments, server, trace, metrics)
// are outside the core set and free to use clocks.

package lint

import (
	"go/ast"
	"go/types"
)

// forbiddenTime are the wall-clock entry points of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenEnv are the ambient-environment reads of package os.
var forbiddenEnv = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// allowedRand are the math/rand constructors that take an explicit
// source or seed; everything else in the package draws from the global,
// unseeded generator.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func determinismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, global rand, env reads, and map-order iteration in the deterministic core packages",
		Rules: []string{
			RuleDetTime, RuleDetRand, RuleDetEnv, RuleDetMapRange,
		},
		Run: determinismRun,
	}
}

func determinismRun(p *Package) []Finding {
	if !p.IsCore() {
		return nil
	}
	var out []Finding
	for _, file := range p.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, ok := packageQualifier(p, n)
				if !ok {
					return true
				}
				sel := n.Sel.Name
				switch {
				case pkgPath == "time" && forbiddenTime[sel]:
					out = append(out, p.finding(n.Pos(), RuleDetTime,
						"wall-clock access time.%s in deterministic core package %s; derive timing from simulated cycles", sel, p.Name))
				case pkgPath == "os" && forbiddenEnv[sel]:
					out = append(out, p.finding(n.Pos(), RuleDetEnv,
						"environment read os.%s in deterministic core package %s; thread configuration through config.Config", sel, p.Name))
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !allowedRand[sel]:
					out = append(out, p.finding(n.Pos(), RuleDetRand,
						"global math/rand access rand.%s breaks replay determinism; use the seeded *xrand.Rand plumbed from config.Seed", sel))
				}
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					out = append(out, p.finding(n.Pos(), RuleDetMapRange,
						"map iteration order is nondeterministic; range over sorted keys, or add //pflint:allow determinism/maprange <reason> if the loop is order-insensitive"))
				}
			}
			return true
		})
	}
	return out
}

// packageQualifier resolves sel.X to an imported package path, when the
// selector is a pkg.Name reference.
func packageQualifier(p *Package, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || p.Info == nil {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
