// Ctxflow fixture: a package named "server" so the context-discipline
// rules apply. Exercises taint threading (parameter, context.With*
// derivation, flow-sensitive reassignment, the per-request root),
// forbidden context roots, and goroutine cancellability.
package server

import (
	"context"
	"net/http"
)

// stale is a package-level context — the classic way to sever a
// request's cancellation chain.
var stale context.Context

// done is a package-level shutdown channel.
var done chan struct{}

type ctxKey struct{}

func helper(ctx context.Context) {}

// ThreadOK passes its parameter straight through: clean.
func ThreadOK(ctx context.Context) {
	helper(ctx)
}

// DropStale hands a callee the package-level context instead of the
// one it was given.
func DropStale(ctx context.Context) {
	helper(stale) // want "ctxflow/drop: DropStale accepts a ctx but passes a context not derived from it to helper"
}

// DeriveOK threads through context.WithCancel: derived, clean.
func DeriveOK(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	helper(child)
}

// Reassigned is the flow-sensitive case: cur holds the stale context
// at the first call and is rebound to a derived one before the second.
func Reassigned(ctx context.Context) {
	cur := stale
	helper(cur) // want "ctxflow/drop: Reassigned accepts a ctx but passes a context not derived from it to helper"
	cur = context.WithValue(ctx, ctxKey{}, 1)
	helper(cur)
}

// FromRequest uses the request's own root, the sanctioned alternative
// to the parameter: clean.
func FromRequest(ctx context.Context, r *http.Request) {
	helper(r.Context())
}

// MintRoot mints a root inside the request path.
func MintRoot() context.Context {
	return context.Background() // want "ctxflow/background: context\.Background\(\) in a dispatch-path package"
}

// PassFresh both mints and drops in one expression; the background
// rule owns the finding so ctxflow/drop stays quiet (one finding per
// sin, not two).
func PassFresh(ctx context.Context) {
	helper(context.TODO()) // want "ctxflow/background: context\.TODO\(\) in a dispatch-path package"
}

// FireAndForget spawns a goroutine nothing can stop.
func FireAndForget() {
	go func() { // want "ctxflow/goroutine: goroutine in FireAndForget is not cancellable"
		stale = nil
	}()
}

// Watch selects nothing but blocks on ctx.Done(): cancellable, clean.
func Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Shutdownable receives from the package shutdown channel: clean.
func Shutdownable() {
	go func() {
		<-done
	}()
}
