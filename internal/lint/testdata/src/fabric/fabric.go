// Lockflow fixture: a package named "fabric" so the concurrency
// analyzers apply. Exercises mutexes held across blocking operations
// (channel ops, selects, HTTP, sleeps, waits), defer-unlock and
// early-return paths through the CFG, the sync.Cond exemption, and the
// dispatch-path context rules.
package fabric

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Coord is a toy coordinator with the real one's locking surface.
type Coord struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	work chan int
	done chan struct{}
	seq  uint64
}

// SendLocked holds mu across a channel send.
func (c *Coord) SendLocked(v int) {
	c.mu.Lock()
	c.work <- v // want "lockflow/blocking: channel send while holding c\.mu"
	c.mu.Unlock()
}

// RecvLocked holds mu across a channel receive.
func (c *Coord) RecvLocked() int {
	c.mu.Lock()
	v := <-c.work // want "lockflow/blocking: channel receive while holding c\.mu"
	c.mu.Unlock()
	return v
}

// SendUnlocked releases before blocking: clean.
func (c *Coord) SendUnlocked(v int) {
	c.mu.Lock()
	c.seq++
	c.mu.Unlock()
	c.work <- v
}

// SelectLocked holds the read lock across a select with no default.
func (c *Coord) SelectLocked() {
	c.rw.RLock()
	select { // want "lockflow/blocking: select with no default case while holding c\.rw"
	case <-c.done:
	case v := <-c.work:
		c.seq += uint64(v)
	}
	c.rw.RUnlock()
}

// PollLocked uses a select with a default: never parks, clean.
func (c *Coord) PollLocked() {
	c.rw.RLock()
	select {
	case v := <-c.work:
		c.seq += uint64(v)
	default:
	}
	c.rw.RUnlock()
}

// HTTPLocked holds mu across an HTTP round-trip; the defer keeps the
// lock held for the whole body, which is exactly the point.
func (c *Coord) HTTPLocked(url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := http.Get(url) // want "lockflow/blocking: HTTP round-trip http\.Get while holding c\.mu"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// SleepLocked holds mu across time.Sleep.
func (c *Coord) SleepLocked(d time.Duration) {
	c.mu.Lock()
	time.Sleep(d) // want "lockflow/blocking: time\.Sleep while holding c\.mu"
	c.mu.Unlock()
}

// WaitGroupLocked holds mu across a WaitGroup wait.
func (c *Coord) WaitGroupLocked(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want "lockflow/blocking: sync\.WaitGroup\.Wait while holding c\.mu"
	c.mu.Unlock()
}

// CondWait is the sanctioned pattern: sync.Cond.Wait releases the mutex
// it waits under, so no blocking finding fires.
func (c *Coord) CondWait() {
	c.mu.Lock()
	for c.seq == 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// LeakOnEarlyReturn forgets the unlock on the error path.
func (c *Coord) LeakOnEarlyReturn(ok bool) bool {
	c.mu.Lock() // want "lockflow/leak: c\.mu\.Lock\(\) in \(\*Coord\)\.LeakOnEarlyReturn is not released on every return path"
	if !ok {
		return false
	}
	c.seq++
	c.mu.Unlock()
	return true
}

// DeferCoversEveryPath is the same shape done right: clean.
func (c *Coord) DeferCoversEveryPath(ok bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		return false
	}
	c.seq++
	return true
}

// ShortCircuitLocked parks inside the right operand of an &&; the
// CFG's condition splitting must place the receive in its own block,
// reachable with the lock held.
func (c *Coord) ShortCircuitLocked(a bool) {
	c.mu.Lock()
	if a && <-c.work > 0 { // want "lockflow/blocking: channel receive while holding c\.mu"
		c.seq++
	}
	c.mu.Unlock()
}

// tryLock acquires mu and reports true. The helper itself holds the
// lock at return by design: its whole contract is transferring the
// acquisition to the caller.
func (c *Coord) tryLock() bool {
	//pflint:allow lockflow/leak lock-transfer helper: the caller owns the unlock, mirroring the fixture's contract comment
	c.mu.Lock()
	return true
}

// MintRoot mints a fresh context inside a dispatch-path package.
func (c *Coord) MintRoot() context.Context {
	return context.Background() // want "ctxflow/background: context\.Background\(\) in a dispatch-path package"
}

// Dispatch threads its ctx: clean.
func (c *Coord) Dispatch(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// FireAndForget spawns an uncancellable goroutine.
func (c *Coord) FireAndForget() {
	go func() { // want "ctxflow/goroutine: goroutine in \(\*Coord\)\.FireAndForget is not cancellable"
		c.bump()
	}()
}

// Watchdog spawns a ctx-selecting goroutine: clean.
func (c *Coord) Watchdog(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		case <-c.done:
		}
	}()
}

// Tracked spawns a WaitGroup-registered goroutine: clean.
func (c *Coord) Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.bump()
	}()
}

func (c *Coord) bump() {
	c.mu.Lock()
	c.seq++
	c.mu.Unlock()
}
