// Determinism fixture: a package whose import-path base ("sim") puts it
// in the deterministic core, exercising every determinism rule. The
// want markers are matched by TestAnalyzersGolden against the findings
// on the same line.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Tick reads the wall clock.
func Tick() int64 {
	t := time.Now() // want "determinism/time: wall-clock access time\.Now"
	return t.UnixNano()
}

// Elapsed measures host time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "determinism/time: wall-clock access time\.Since"
}

// Jitter draws from the global, unseeded generator.
func Jitter() int {
	return rand.Intn(8) // want "determinism/rand: global math/rand access rand\.Intn"
}

// SeededJitter uses an explicit source, which is allowed.
func SeededJitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// Home reads the ambient environment.
func Home() string {
	v, _ := os.LookupEnv("HOME") // want "determinism/env: environment read os\.LookupEnv"
	return v
}

// Sum iterates a map in nondeterministic order.
func Sum(m map[uint64]uint64) uint64 {
	var s uint64
	for _, v := range m { // want "determinism/maprange: map iteration order is nondeterministic"
		s += v
	}
	return s
}

// SumAllowed shows the escape hatch for an order-insensitive loop.
func SumAllowed(m map[uint64]uint64) uint64 {
	var s uint64
	//pflint:allow determinism/maprange addition is commutative
	for _, v := range m {
		s += v
	}
	return s
}

// Keys ranges over a slice, which is ordered and therefore fine.
func Keys(xs []uint64) uint64 {
	var s uint64
	for _, v := range xs {
		s += v
	}
	return s
}
