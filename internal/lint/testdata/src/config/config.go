// Config-coverage fixture: a package named "config" whose exported
// struct fields must each be read by a Validate method, carry an allow
// pragma, or be bool (both values always legal).
package config

import "fmt"

// Knobs is an exported config struct.
type Knobs struct {
	// Entries is validated below.
	Entries int
	// Ways is parsed and plumbed but never validated — the bug class
	// this analyzer closes.
	Ways int // want "configcov/unvalidated: exported config field Knobs\.Ways is never read by any Validate method"
	// Debug is bool: exempt.
	Debug bool
	// Seed is explicitly annotated as all-values-legal.
	//pflint:allow configcov any seed is a legal seed
	Seed uint64
	// hidden is unexported: out of scope.
	hidden int
}

// internalKnobs is unexported: out of scope even with exported fields.
type internalKnobs struct {
	Scratch int
}

// Validate checks the validated knobs.
func (k Knobs) Validate() error {
	if k.Entries <= 0 {
		return fmt.Errorf("config: entries must be positive, got %d", k.Entries)
	}
	return nil
}
