// Pragma-hygiene fixture: malformed and stale escapes are engine-level
// findings. The expectations live in TestPragmaHygiene rather than in
// `// want` markers, because these findings sit on the pragma comment
// itself, where a same-line marker cannot coexist with the directive.
package pragmas

//pflint:allow

//pflint:allow errcheck

//pflint:allow nosuchrule the rule does not exist

//pflint:allow determinism/time there is no clock anywhere near this line

//pflint:frobnicate

// Placeholder keeps the package non-empty.
func Placeholder() {}
