// Errcheck fixture: statement-level error discards in every form, plus
// the allowed explicit discards and never-fail sinks.
package errs

import (
	"fmt"
	"os"
	"strings"
)

// Emit exercises the discarded-error forms.
func Emit(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Sync()        // want "errcheck/discard: statement discards the error returned by f\.Sync"
	defer f.Close() // want "errcheck/discard: defer discards the error returned by f\.Close"
	_ = f.Sync()    // explicit discard stays visible in review: allowed
	//pflint:allow errcheck fixture demonstrates the escape hatch
	f.Sync()
	fmt.Fprintln(os.Stderr, "done") // stderr is a never-fail sink: allowed
	fmt.Println("done")             // stdout convention: allowed
	var b strings.Builder
	b.WriteString("ok") // strings.Builder never fails: allowed
}

// Spawn discards the error in a goroutine.
func Spawn(f func() error) {
	go f() // want "errcheck/discard: go statement discards the error returned by f"
}
