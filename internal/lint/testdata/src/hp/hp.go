// Hot-path fixture: //pflint:hotpath functions exercising every hotpath
// rule, plus the allowed patterns (cap-backed appends, unannotated
// functions, struct value literals).
package hp

import "fmt"

// Ring is a reusable buffer pair in the style of the simulator's hot
// structures.
type Ring struct {
	buf []uint64
	out []uint64
}

// Pair is a plain value struct; its literals do not allocate.
type Pair struct{ A, B uint64 }

func sink(v any) { _ = v }

// Grow allocates every way a hot path must not.
//
//pflint:hotpath
func (r *Ring) Grow(v uint64) []uint64 {
	s := make([]uint64, 4)   // want "hotpath/alloc: make allocates in hot path"
	t := []uint64{v}         // want "hotpath/alloc: slice literal allocates in hot path"
	r.buf = append(r.buf, v) // want "hotpath/append: append to capacity-unknown slice"
	fmt.Println(v)           // want "hotpath/fmt: fmt\.Println call in hot path"
	_ = s
	return t
}

// Box boxes every way a hot path must not.
//
//pflint:hotpath
func Box(v uint64) uint64 {
	var a any = v   // want "hotpath/iface: concrete value assigned to interface"
	sink(v)         // want "hotpath/iface: concrete value passed as interface"
	u := a.(uint64) // want "hotpath/iface: type assertion in hot path"
	return u
}

// Each builds a capturing closure on every call.
//
//pflint:hotpath
func Each(xs []uint64) uint64 {
	total := uint64(0)
	add := func(v uint64) { total += v } // want "hotpath/closure: closure captures total"
	for _, x := range xs {
		add(x)
	}
	return total
}

// Filter reuses the output buffer through a [:0] re-slice; the appends
// are capacity-backed and allowed.
//
//pflint:hotpath
func (r *Ring) Filter(keep uint64) {
	out := r.out[:0]
	for _, v := range r.buf {
		if v == keep {
			out = append(out, v)
		}
	}
	r.out = out
}

// Store writes a struct value literal, which does not allocate.
//
//pflint:hotpath
func (r *Ring) Store(i int, a, b uint64) Pair {
	p := Pair{A: a, B: b}
	r.buf[i] = p.A
	return p
}

// Cold is unannotated; none of the hotpath rules apply here.
func Cold() []uint64 {
	xs := make([]uint64, 0, 2)
	return append(xs, 1, 2)
}
