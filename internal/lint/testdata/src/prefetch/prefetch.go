// Hwbudget fixture: a package named "prefetch" so the
// hardware-realizability rules apply. The local Prefetcher interface
// stands in for the real zoo's; every implementer below is a state
// struct, and nested same-package structs are state too.
package prefetch

// Prefetcher is the backend interface the analyzer keys on.
type Prefetcher interface {
	Name() string
}

// BadMap keeps its table in a map: per-key growth, no hardware bound.
type BadMap struct {
	table map[uint64]uint64 // want "hwbudget/map: map field BadMap\.table is unbounded; hardware state needs a table sized by a \*Log2 config field"

	Lookups uint64 // exported: observability counter, exempt
}

func (b *BadMap) Name() string { return "badmap" }

// Unsized declares a slice no constructor ever allocates — the state
// only comes into being by append, so it has no budget.
type Unsized struct {
	rows []uint64 // want "hwbudget/unsized: slice field Unsized\.rows has no sized make\(\.\.\.\) in this package; allocate its budget at construction"
}

func (u *Unsized) Name() string { return "unsized" }

// Grower allocates its budget properly but then outgrows it.
type Grower struct {
	history []uint64
}

// NewGrower sizes the table: the append here is setup, not leakage.
func NewGrower(log2 uint) *Grower {
	g := &Grower{history: make([]uint64, 0, 1<<log2)}
	g.history = append(g.history, 0)
	return g
}

func (g *Grower) Name() string { return "grower" }

// Observe grows the table after construction.
func (g *Grower) Observe(line uint64) {
	g.history = append(g.history, line) // want "hwbudget/growth: append grows state field history outside a constructor; hardware tables do not grow after reset"
}

// bank is not itself a backend, but Good embeds it by field, so its
// state is Good's state.
type bank struct {
	dirty map[uint64]bool // want "hwbudget/map: map field bank\.dirty is unbounded; hardware state needs a table sized by a \*Log2 config field"
	lines []uint64
}

// Good is the sanctioned shape: every table sized at construction.
type Good struct {
	entries []uint64
	b       *bank

	Hits uint64
}

// NewGood allocates every budget up front.
func NewGood(log2 uint) *Good {
	return &Good{
		entries: make([]uint64, 1<<log2),
		b:       &bank{lines: make([]uint64, 1<<log2)},
	}
}

func (g *Good) Name() string { return "good" }
